// Module ppar reproduces "Checkpoint and Run-Time Adaptation with Pluggable
// Parallelisation" (Medeiros & Sobral, ICPP 2011) as a production-quality Go
// library.
//
// Start with package ppar/pp, the public API: engines are assembled from
// functional options (pp.New(factory, pp.WithMode(...), pp.WithThreads(...),
// pp.WithModules(...), ...)); checkpoint transport is a pluggable pp.Store
// (filesystem, in-memory, or gzip-compressing wrapper, selected with
// pp.WithStore); checkpointing is synchronous at the safe-point barrier by
// default, asynchronous and double-buffered with pp.WithAsyncCheckpoint
// (capture at the barrier, encode+persist overlapped with computation), or
// incremental with pp.WithDeltaCheckpoint (persist only the fields/chunks
// whose content hash changed, as a delta chain compacted back into a full
// snapshot every K links — see the migration note in CHANGES.md); run-time
// adaptation and checkpoint-and-stop are decided by a pluggable
// pp.AdaptPolicy (pp.WithAdaptPolicy); and runs are context-aware
// (Engine.RunContext maps cancellation to a graceful checkpoint-and-stop
// that a relaunched engine resumes from, in any mode).
//
// Distributed runs choose between two checkpoint shapes. The default
// gathers partitioned state at the master into one canonical snapshot —
// smallest metadata, restartable anywhere, but the master serialises the
// I/O. pp.WithShardCheckpoints instead has every rank persist its own
// shard as an append-only chain (anchor links plus changed-chunk deltas
// under WithDeltaCheckpoint), committed by a PPCKPS1 manifest written
// after the last shard of each wave lands — so checkpoint bandwidth scales
// with the number of ranks, a mid-write kill never restarts from a torn
// multi-shard save, and because each shard records its partition layouts,
// a sharded run restarts or migrates into a different world size or
// execution mode by repartitioning at load (the shard-reshard example
// runs the whole story). Both shapes compose with the asynchronous and
// incremental pipelines; prefer shards when per-rank state is large and
// the store scales with writers, the canonical gather when state is small
// or the store serialises writers anyway.
//
// The serialization under every one of those pipelines is reflection-free
// on the hot path: the first engine built over a given application type
// and SafeData field set compiles the shape once — a registry of typed
// field accessors keyed by the struct type plus the bound names — and
// every later capture, encode and restore walks those descriptors with
// pooled buffers (sync.Pool-backed capture snapshots, encoder scratch and
// delta chunk payloads recycled across safe points), so a steady-state
// checkpoint allocates near zero. On top of the byte savings of the delta
// pipeline, pp.NewDedupStore wraps any store with content-addressed
// deduplication: large float fields are split on the delta differ's chunk
// grid, each distinct chunk content is stored once under its content key
// with a refcount, and DedupStore.Stats reports the logical-over-physical
// ratio. Dedup pays when consecutive checkpoints, shard ranks or tenants
// (through pp.NamespacedStore, whose chunk keys deliberately pass through
// unprefixed) repeat chunk content — mostly-stable state between captures,
// replicated state across ranks, identical workloads across tenants; it
// only costs hashing when every chunk is new, and small fields bypass it
// entirely. Compose it outermost (dedup of a gzip store, not the reverse)
// so whole-artifact envelopes don't hide the float payloads from the
// chunker.
//
// The execution core itself is a pluggable Executor layer: one executor per
// deployment (sequential, shared, distributed, hybrid, task) owns launch,
// topology, collectives and teardown. A policy returning an AdaptTarget
// with Mode set migrates the running program across deployments at a safe
// point inside a single Run call — snapshot to an internal memory store,
// executor swap, replay — the paper's adaptation-by-restart without the
// restart (the mode-migrate example demonstrates it live).
//
// The fifth deployment, pp.Task, is the work-stealing many-task executor
// for skewed workloads: each rank's partition is overdecomposed into
// pp.WithOverdecompose(k) chunks per worker (default 8), chunks start on
// per-worker deques in Static order and idle workers steal from the back of
// random victims, so a hot band of the index space spreads over the team
// instead of parking on whoever owned it statically. Across ranks a
// balancer samples per-rank loop throughput at safe points and moves Block
// partition boundaries toward starved ranks (bounds travel in checkpoints
// and shard manifests, so restarts and migrations preserve them). Stealing
// drains at the loop barrier — a safe point always sees a deterministic
// assignment — so checkpoints stay byte-identical to a static run, restart
// composes across differing k, and Task migrates to and from every other
// mode. Report.Sched() exposes the chunk/steal/idle counters; `go run
// ./cmd/ppbench -skew` compares the executor against the static smp
// schedule on the skewed crypt and sparse kernels.
//
// Above single engines sits the fleet layer (internal/fleet, served by the
// ppserve command): a Supervisor hosts many concurrent runs in one process,
// each job checkpointing into its own tenant-prefixed namespace of one
// shared pp.Store (pp.NamespacedStore). Jobs are submitted as declarative
// JobSpecs against registered workload factories, scheduled by priority
// against a machine budget with per-tenant quotas, and — when malleable —
// shrunk and regrown at safe points via the engine's run-time adaptation,
// so a high-priority arrival squeezes a low-priority running job instead of
// waiting for it. Every accepted spec is journalled through the store
// before it is acknowledged: after a crash (kill -9 included) a restarted
// supervisor re-admits every unfinished job and resumes it from its newest
// checkpoint. ppserve exposes the supervisor over HTTP (POST /jobs,
// GET /jobs/{id}, DELETE /jobs/{id} for checkpoint-and-stop, GET /status);
// the fleet example walks the whole story in-process.
//
// README.md has the overview and quickstart, DESIGN.md the system inventory
// and per-experiment index, EXPERIMENTS.md the paper-vs-measured comparison
// for every figure. The benchmarks in bench_test.go regenerate each figure
// of the paper's evaluation; the ppbench command prints them as tables, and
// ppsor runs the SOR benchmark under any deployment from the command line
// (including -store=fs|mem|gzip backend selection and -async/-delta
// checkpointing). The benchjson command turns `go test -bench` output into
// the BENCH_*.json documents CI uploads as the perf trajectory.
//
// The runtime's cross-cutting contracts — AdaptPolicy.Decide purity,
// deterministic serialization, collectives reached by every team member,
// atomic store writes in wave order, no blocking work under the Engine or
// Supervisor lock — are machine-checked by the pplint command (backed by
// internal/analysis) and enforced in CI: run `go run ./cmd/pplint ./...`,
// and annotate a justified protocol exemption with
// `//lint:ignore <analyzer> <reason>` on the line above the finding.
package ppar
