// Module ppar reproduces "Checkpoint and Run-Time Adaptation with Pluggable
// Parallelisation" (Medeiros & Sobral, ICPP 2011) as a production-quality Go
// library.
//
// Start with package ppar/pp (the public API), README.md (overview and
// quickstart), DESIGN.md (system inventory and per-experiment index) and
// EXPERIMENTS.md (paper-vs-measured for every figure). The benchmarks in
// bench_test.go regenerate each figure of the paper's evaluation; the
// ppbench command prints them as tables.
package ppar
