package pp

import (
	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

// Store is the pluggable checkpoint backend: it persists canonical and
// per-rank shard snapshots and keeps the crash ledger that decides whether
// the next run must replay. Select one with WithStore; implement it to
// target remote or sharded storage. Implementations must be safe for
// concurrent use by multiple ranks.
type Store = ckpt.Store

// Snapshot is the portable in-memory form of one checkpoint (see
// ppar/internal/serial for the container format). Custom Store
// implementations receive and return snapshots.
type Snapshot = serial.Snapshot

// Delta is the in-memory form of one incremental checkpoint: the fields
// and chunks that changed since the previous capture, anchored to a full
// base snapshot by BaseSP and ordered by Seq (see ppar/internal/serial for
// the PPCKPD1 container format and the chain-consistency rules). Custom
// Store implementations persist deltas in SaveDelta and return them, in
// order, from LoadChain; WithDeltaCheckpoint turns the pipeline on.
//
// Shard chains (WithShardCheckpoints) reuse the same container per rank:
// SaveShardDelta appends one link to a rank's chain — a self-contained
// "anchor" link carrying the rank's full state, or a plain delta — and
// LoadShardDelta reads one back.
type Delta = serial.Delta

// Manifest is the commit record of one complete multi-shard checkpoint
// (the PPCKPS1 container): the safe point, the world size, and per shard
// the committed chain window plus the newest link's fingerprint. Custom
// Store implementations persist it last, atomically, in SaveManifest — a
// shard save without a manifest is not a restart point, which is what
// keeps a torn multi-shard save from ever being mistaken for a complete
// one.
type Manifest = serial.Manifest

// NewFSStore creates the stock filesystem store rooted at dir: one file per
// snapshot, written with temp-then-rename atomicity, plus a marker-file
// crash ledger. WithCheckpointDir(dir) is sugar for WithStore(NewFSStore(dir)).
func NewFSStore(dir string) (Store, error) { return ckpt.NewFS(dir) }

// NewMemStore creates the stock in-memory store: snapshots are held in
// their encoded container form inside the process. It makes tests fast and
// lets embedded uses checkpoint/restart (including across modes) without
// touching a filesystem; share the same value between the runs that must
// see each other's checkpoints.
func NewMemStore() Store { return ckpt.NewMem() }

// NamespacedStore wraps any Store so every application name is keyed under
// "<prefix>~": engines (or whole fleets of them) multiplexed over one
// backend under different prefixes can never see — or Clear — each other's
// checkpoints, even when one prefix is a prefix of another ("t1" vs "t10").
// The prefix must be non-empty and must not contain "~"; snapshots written
// through the wrapper read back with their original application name. It
// composes with the other wrappers in either order (namespacing a gzip
// store, or gzip-compressing a namespaced one).
func NamespacedStore(prefix string, inner Store) (Store, error) {
	return ckpt.NewNamespaced(prefix, inner)
}

// NewGzipStore wraps any Store with transparent gzip compression of the
// encoded snapshot container. Snapshots written without the wrapper are
// still readable through it, so a deployment can be upgraded to compression
// in place.
func NewGzipStore(inner Store) Store { return ckpt.NewGzip(inner, 0) }

// NewGzipStoreLevel is NewGzipStore with an explicit gzip compression level
// (gzip.BestSpeed..gzip.BestCompression; 0 selects the default).
func NewGzipStoreLevel(inner Store, level int) Store { return ckpt.NewGzip(inner, level) }

// DedupStore wraps any Store with content-addressed deduplication: large
// float fields are split on the delta differ's fixed chunk grid and each
// distinct chunk content is stored once via the inner store's PutChunk,
// with reference counts tying chunk lifetime to the artifacts that use
// them. Identical chunks across full snapshots, deltas, shard ranks,
// compaction generations — and across tenants sharing one backend through
// NamespacedStore, whose chunk keys pass through unprefixed — are written
// once. Stats reports the cumulative logical-over-physical ratio.
//
// Compose it outermost (dedup of a gzip store, not the reverse): wrappers
// that envelope whole artifacts hide the float payloads from the chunker.
type DedupStore = ckpt.Dedup

// DedupStats is the cumulative accounting of a DedupStore; see
// DedupStats.Ratio for the headline number.
type DedupStats = ckpt.DedupStats

// NewDedupStore wraps inner with content-addressed deduplication.
func NewDedupStore(inner Store) *DedupStore { return ckpt.NewDedup(inner) }
