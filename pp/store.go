package pp

import (
	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

// Store is the pluggable checkpoint backend: it persists canonical and
// per-rank shard snapshots and keeps the crash ledger that decides whether
// the next run must replay. Select one with WithStore; implement it to
// target remote or sharded storage. Implementations must be safe for
// concurrent use by multiple ranks.
type Store = ckpt.Store

// Snapshot is the portable in-memory form of one checkpoint (see
// ppar/internal/serial for the container format). Custom Store
// implementations receive and return snapshots.
type Snapshot = serial.Snapshot

// Delta is the in-memory form of one incremental checkpoint: the fields
// and chunks that changed since the previous capture, anchored to a full
// base snapshot by BaseSP and ordered by Seq (see ppar/internal/serial for
// the PPCKPD1 container format and the chain-consistency rules). Custom
// Store implementations persist deltas in SaveDelta and return them, in
// order, from LoadChain; WithDeltaCheckpoint turns the pipeline on.
type Delta = serial.Delta

// NewFSStore creates the stock filesystem store rooted at dir: one file per
// snapshot, written with temp-then-rename atomicity, plus a marker-file
// crash ledger. WithCheckpointDir(dir) is sugar for WithStore(NewFSStore(dir)).
func NewFSStore(dir string) (Store, error) { return ckpt.NewFS(dir) }

// NewMemStore creates the stock in-memory store: snapshots are held in
// their encoded container form inside the process. It makes tests fast and
// lets embedded uses checkpoint/restart (including across modes) without
// touching a filesystem; share the same value between the runs that must
// see each other's checkpoints.
func NewMemStore() Store { return ckpt.NewMem() }

// NewGzipStore wraps any Store with transparent gzip compression of the
// encoded snapshot container. Snapshots written without the wrapper are
// still readable through it, so a deployment can be upgraded to compression
// in place.
func NewGzipStore(inner Store) Store { return ckpt.NewGzip(inner, 0) }

// NewGzipStoreLevel is NewGzipStore with an explicit gzip compression level
// (gzip.BestSpeed..gzip.BestCompression; 0 selects the default).
func NewGzipStoreLevel(inner Store, level int) Store { return ckpt.NewGzip(inner, level) }
