package pp

import "ppar/internal/core"

// Option configures one aspect of a deployment. Options are applied in
// order by New; later options win where they overlap.
type Option func(*core.Config)

// New builds an engine for one deployment of the base program, assembled
// from functional options:
//
//	eng, err := pp.New(factory,
//		pp.WithMode(pp.Hybrid), pp.WithProcs(4), pp.WithThreads(2),
//		pp.WithModules(smp, ckpt),
//		pp.WithStore(pp.NewMemStore()), pp.WithCheckpointEvery(10),
//	)
//
// With no options it is the unplugged sequential deployment.
func New(factory Factory, opts ...Option) (*Engine, error) {
	var cfg core.Config
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return core.New(cfg, factory)
}

// NewFromConfig builds an engine from a raw Config — the pre-options entry
// point, kept for callers that assemble configurations as data. New is the
// primary API.
func NewFromConfig(cfg Config, factory Factory) (*Engine, error) {
	return core.New(cfg, factory)
}

// WithName identifies checkpoint snapshots and the run ledger; two runs
// that must see each other's checkpoints need the same name (default
// "app").
func WithName(name string) Option {
	return func(c *core.Config) { c.AppName = name }
}

// WithMode selects the plugged machinery: Sequential, Shared, Distributed,
// Hybrid or Task.
func WithMode(m Mode) Option {
	return func(c *core.Config) { c.Mode = m }
}

// WithOverdecompose sets the Task-mode chunking factor k: every work-sharing
// loop is split into k chunks per worker (default 8), seeded on per-worker
// deques and balanced by randomized stealing. Larger k smooths skew at the
// cost of per-chunk overhead; k is recorded in checkpoints' shard manifests
// only through the resulting boundaries, so a run may restart under a
// different k. Ignored outside Task mode.
func WithOverdecompose(k int) Option {
	return func(c *core.Config) { c.Overdecompose = k }
}

// WithThreads sets the team size for Shared and Hybrid deployments.
func WithThreads(n int) Option {
	return func(c *core.Config) { c.Threads = n }
}

// WithProcs sets the world size for Distributed and Hybrid deployments.
func WithProcs(n int) Option {
	return func(c *core.Config) { c.Procs = n }
}

// WithTCP selects the TCP transport for distributed modes (default: the
// in-process transport, which also supports run-time world resizing).
func WithTCP() Option {
	return func(c *core.Config) { c.TCP = true }
}

// WithDelay injects modelled link costs into the transport.
func WithDelay(d DelayFunc) Option {
	return func(c *core.Config) { c.Delay = d }
}

// WithModules plugs parallelisation/fault-tolerance modules onto the base
// program. Repeated uses accumulate.
func WithModules(mods ...*Module) Option {
	return func(c *core.Config) { c.Modules = append(c.Modules, mods...) }
}

// WithStore selects the checkpoint backend and enables checkpointing. See
// NewFSStore, NewMemStore and NewGzipStore for the stock implementations.
func WithStore(s Store) Option {
	return func(c *core.Config) { c.Store = s }
}

// WithCheckpointDir enables checkpointing into a filesystem store rooted at
// dir — sugar for WithStore over the stock filesystem backend.
func WithCheckpointDir(dir string) Option {
	return func(c *core.Config) { c.CheckpointDir = dir }
}

// WithCheckpointEvery takes a snapshot each time the safe-point count is a
// multiple of every (0 disables periodic checkpoints).
func WithCheckpointEvery(every uint64) Option {
	return func(c *core.Config) { c.CheckpointEvery = every }
}

// WithMaxCheckpoints caps the number of periodic snapshots (0 = no cap).
func WithMaxCheckpoints(n int) Option {
	return func(c *core.Config) { c.MaxCheckpoints = n }
}

// WithShardCheckpoints selects the paper's first distributed alternative:
// each process persists a local snapshot between two barriers, so
// checkpoint I/O parallelises across ranks instead of funnelling through
// the master. Shard saves are per-rank append-only chains committed by a
// manifest written after every shard of a save wave has landed — a
// mid-write kill never restarts from a torn multi-shard save — and each
// shard records how its fields were partitioned, so a sharded run restarts
// (or migrates) into a different world size or execution mode by
// repartitioning at load; same-topology restarts keep the per-rank
// parallel restore.
//
// Composes with WithAsyncCheckpoint (per-rank captures persist through a
// bounded background pool, the wave's manifest committed when the last
// shard lands) and WithDeltaCheckpoint (each rank keeps its own hash cache
// and chain: anchor links every compactEvery captures, changed chunks in
// between). Checkpoint-and-stop snapshots remain canonical. Report gains
// ShardSaves/ShardBytes; prefer shard checkpoints when per-rank state is
// large and store bandwidth scales with writers (per-rank files, object
// stores), and the gather-at-master canonical snapshot when state is small
// or the store serialises writers anyway.
func WithShardCheckpoints() Option {
	return func(c *core.Config) { c.ShardCheckpoints = true }
}

// WithAsyncCheckpoint enables the asynchronous double-buffered checkpoint
// pipeline (default off): at the safe point the master only captures an
// in-memory copy of the safe data and releases the barrier immediately; a
// background writer encodes and persists the copy through the Store while
// computation proceeds. At most one snapshot is in flight — a newer capture
// supersedes one still parked behind the in-flight write. The writer drains
// at Run/RunContext exit and before checkpoint-and-stop snapshots (which
// stay synchronous: they are the restart point); write errors surface at
// the next safe point or at engine exit. With WithShardCheckpoints the
// same double-buffer protocol runs per rank, through a bounded background
// pool.
func WithAsyncCheckpoint() Option {
	return func(c *core.Config) { c.AsyncCheckpoint = true }
}

// WithDeltaCheckpoint enables incremental (delta) checkpointing and takes
// a capture every `every` safe points: the engine keeps per-field content
// hashes — chunk hashes for large float slices and matrices — from the
// previous capture, and persists only the fields/chunks that changed, as a
// PPCKPD1 delta chained onto the last full snapshot. Every compactEvery
// deltas (default 8 when <= 0) the chain is compacted back into a full
// PPCKPT1 snapshot, so restart cost and disk usage stay bounded and
// cross-mode restart always materialises from a canonical snapshot.
// Restore replays base + chain automatically and tolerates torn or
// half-written links by truncating to the last consistent prefix.
//
// Composes with WithAsyncCheckpoint: delta captures then deep-copy only
// the changed chunks at the barrier, and a capture superseded behind an
// in-flight write is folded into the next one (never dropped — a delta
// only carries what changed since the previous capture). Composes with
// WithShardCheckpoints too: each rank keeps its own hash cache and chain,
// diffing its packed shard state. Report splits the accounting into
// FullSaves/DeltaSaves/DeltaBytes.
//
// The win scales with how much of the safe data is stable between
// captures: a workload rewriting its whole state every iteration saves
// little, one with localised updates saves almost everything.
func WithDeltaCheckpoint(every uint64, compactEvery int) Option {
	return func(c *core.Config) {
		c.CheckpointEvery = every
		c.DeltaCheckpoint = true
		c.DeltaCompactEvery = compactEvery
	}
}

// WithAdaptPolicy consults p at every safe point to decide run-time
// adaptations and checkpoint-and-stop. Repeated uses (and the sugar
// WithAdaptAt/WithStopAt) chain; the first non-zero decision wins.
func WithAdaptPolicy(p AdaptPolicy) Option {
	return func(c *core.Config) {
		if c.Policy == nil {
			c.Policy = p
			return
		}
		c.Policy = core.Policies(c.Policy, p)
	}
}

// WithAdaptAt schedules one run-time adaptation at an absolute safe point —
// sugar for WithAdaptPolicy(AdaptAt(sp, target)), so repeated uses chain.
// A target with Mode set migrates the run to another deployment in-process
// (see the package documentation); one without reshapes in place. An
// in-place target the executor cannot honour (resizing a Sequential run, or
// a Hybrid or TCP world) aborts the run with a descriptive error naming the
// migration alternative when it fires. sp 0 is a no-op.
func WithAdaptAt(sp uint64, target AdaptTarget) Option {
	if sp == 0 {
		return nil
	}
	return WithAdaptPolicy(core.AdaptAt(sp, target))
}

// WithStopAt takes a canonical checkpoint at the given safe point and stops
// the run — the paper's adaptation by restart; sugar for
// WithAdaptPolicy(StopAt(sp)), so repeated uses chain. sp 0 is a no-op.
func WithStopAt(sp uint64) Option {
	if sp == 0 {
		return nil
	}
	return WithAdaptPolicy(core.StopAt(sp))
}

// WithAdaptNotify registers fn, invoked once per applied reshaping — an
// in-place thread/world resize or an in-process cross-mode migration —
// after the new topology is in effect, with the safe point it was applied
// at and the resulting mode/team/world sizes. It runs on the coordinating
// line of execution between safe points, so it must not block on the
// engine; external schedulers (the fleet supervisor) use it to learn when
// a requested resize actually landed and give the freed budget away.
func WithAdaptNotify(fn func(sp uint64, mode Mode, threads, procs int)) Option {
	return func(c *core.Config) { c.OnAdapt = fn }
}

// WithAdaptManager attaches an external adaptation driver (such as
// *AdaptManager, the simulated resource manager): it is started when the
// run starts, feeds RequestAdapt/RequestStop asynchronously, and is stopped
// when the run ends.
func WithAdaptManager(d AdaptDriver) Option {
	return func(c *core.Config) { c.Driver = d }
}

// WithFailureAt injects a process failure at the given safe point, on rank
// in distributed modes — the fault-injection harness used to exercise
// restart. The ledger is left dirty so the next run replays from the last
// checkpoint.
func WithFailureAt(sp uint64, rank int) Option {
	return func(c *core.Config) { c.FailAtSafePoint, c.FailRank = sp, rank }
}
