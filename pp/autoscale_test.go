package pp_test

import (
	"testing"
	"time"

	"ppar/pp"
)

// slowCounter is the pp_test counter with a per-cell delay, so a run lives
// long enough for the autoscaler's monitor loop to accumulate evidence.
// (Module-managed fields must be declared directly, so no embedding.)
type slowCounter struct {
	Out    []float64
	Blocks int

	delay time.Duration
	total *float64
}

func (c *slowCounter) Main(ctx *pp.Ctx) {
	ctx.Call("run", c.runSlow)
	ctx.Call("report", func(ctx *pp.Ctx) {
		sum := 0.0
		for _, v := range c.Out {
			sum += v
		}
		*c.total = sum
	})
}

func (c *slowCounter) runSlow(ctx *pp.Ctx) {
	n := len(c.Out)
	per := n / c.Blocks
	for b := 0; b < c.Blocks; b++ {
		lo, hi := b*per, (b+1)*per
		if b == c.Blocks-1 {
			hi = n
		}
		pp.ForSpan(ctx, "cells", lo, hi, func(a, z int) {
			for i := a; i < z; i++ {
				time.Sleep(c.delay)
				c.Out[i] = float64(i) * float64(i)
			}
		})
		ctx.Call("block", func(*pp.Ctx) {})
	}
}

// WithAutoScale end to end through the public API: the autoscaler drives a
// live Shared run, never exceeds the configured capacity, and the result
// stays byte-identical to the unadapted computation.
func TestWithAutoScaleLiveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("live autoscale run")
	}
	as := pp.NewAutoScale(pp.AutoScaleConfig{
		Interval:   2 * time.Millisecond,
		MinWindows: 2,
		MoveCost:   time.Millisecond,
		HorizonSP:  20000,
		Cooldown:   50 * time.Millisecond,
		Capacity:   func() (int, int) { return 3, 1 },
	})
	var total float64
	eng, err := pp.New(func() pp.App {
		return &slowCounter{
			Out: make([]float64, 4000), Blocks: 800, total: &total,
			delay: 50 * time.Microsecond,
		}
	},
		pp.WithName("pp-autoscale"),
		pp.WithMode(pp.Shared),
		pp.WithThreads(1),
		pp.WithModules(modules(pp.Shared)...),
		pp.WithAutoScale(as),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < 4000; i++ {
		want += float64(i) * float64(i)
	}
	if total != want {
		t.Fatalf("autoscaled total=%v want %v", total, want)
	}
	ds := as.Decisions()
	for _, d := range ds {
		if d.Target.Threads > 3 {
			t.Fatalf("decision exceeded capacity: %+v", d)
		}
	}
	if len(ds) == 0 {
		t.Skip("run finished before the autoscaler warmed up (loaded machine)")
	}
	if !eng.Report().Adapted {
		t.Fatalf("decisions issued but run never adapted: %+v", ds)
	}
}
