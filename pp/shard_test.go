package pp_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ppar/internal/ckpt"
	"ppar/pp"
)

// shardVariants maps each checkpoint pipeline flavour onto its options, all
// checkpointing every 2 safe points (the delta variants compact every 2, so
// a run killed at safe point 5 dies mid-chain: anchor wave at 2, delta wave
// at 4).
func shardVariants() map[string][]pp.Option {
	return map[string][]pp.Option{
		"sync":        {pp.WithCheckpointEvery(2)},
		"async":       {pp.WithCheckpointEvery(2), pp.WithAsyncCheckpoint()},
		"delta":       {pp.WithDeltaCheckpoint(2, 2)},
		"delta-async": {pp.WithDeltaCheckpoint(2, 2), pp.WithAsyncCheckpoint()},
	}
}

// TestShardedRestartMatrix extends the cross-mode restart matrix with
// sharded first legs: a dist(3) run with per-rank shard checkpoints under
// every pipeline flavour and store backend, killed mid-chain, restarted
// with a DIFFERENT world size (shrunk and grown) and in different modes —
// always landing on the uninterrupted result via the manifest-gated
// re-sharding restore.
func TestShardedRestartMatrix(t *testing.T) {
	want := run(t, pp.Sequential)
	targets := []struct {
		name string
		mode pp.Mode
		opts []pp.Option
	}{
		{"restart-dist2", pp.Distributed, []pp.Option{pp.WithProcs(2)}},
		{"restart-dist5", pp.Distributed, []pp.Option{pp.WithProcs(5)}},
		{"restart-smp2", pp.Shared, []pp.Option{pp.WithThreads(2)}},
		{"restart-seq", pp.Sequential, nil},
		{"restart-task2", pp.Task, []pp.Option{pp.WithProcs(2), pp.WithThreads(2), pp.WithOverdecompose(4)}},
	}
	for variant, saveOpts := range shardVariants() {
		for storeName, mkStore := range storeFactories() {
			for _, target := range targets {
				name := fmt.Sprintf("%s/%s/%s", variant, storeName, target.name)
				t.Run(name, func(t *testing.T) {
					storeOpts := mkStore(t)
					var total float64
					// Kill a non-master rank at safe point 5: the sp-4 wave
					// (a delta wave in the delta variants) is the newest
					// committed manifest.
					opts := append(append(append([]pp.Option{}, storeOpts...), saveOpts...),
						pp.WithShardCheckpoints(), pp.WithFailureAt(5, 1))
					eng := deploy(t, &total, pp.Distributed, append(opts, pp.WithProcs(3))...)
					if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
						t.Fatalf("first run: %v, want injected failure", err)
					}
					rep := eng.Report()
					if rep.Checkpoints == 0 || rep.ShardSaves < rep.Checkpoints*3 {
						t.Fatalf("first run committed no shard waves: %+v", rep)
					}

					restartOpts := append(append([]pp.Option{}, storeOpts...), saveOpts...)
					restartOpts = append(restartOpts, pp.WithShardCheckpoints())
					eng2 := deploy(t, &total, target.mode, append(restartOpts, target.opts...)...)
					if err := eng2.Run(); err != nil {
						t.Fatalf("restart as %s: %v", target.name, err)
					}
					if !eng2.Report().Restarted {
						t.Fatal("restart not recorded")
					}
					if total != want {
						t.Fatalf("recovered total=%v want %v", total, want)
					}
				})
			}
		}
	}
}

// TestShardFaultSweepLandsOnLastManifest sweeps a fault over EVERY
// shard-path store operation of a sharded async+delta run — each
// SaveShardDelta, SaveManifest and ClearShardDeltas call in turn, as a hard
// error and (for the saves) as a torn write — and verifies that the restart
// after each single injected failure lands on the last complete manifest:
// the relaunched run always finishes with the uninterrupted result. A
// mixture of old and new shards passing for a checkpoint would diverge.
func TestShardFaultSweepLandsOnLastManifest(t *testing.T) {
	want := run(t, pp.Sequential)
	// Kill at safe point 5: with WithDeltaCheckpoint(1, 3), waves land at
	// safe points 1 (anchor), 2-4 (deltas), so the sweep covers anchor
	// writes, every delta chain position, manifest commits and the
	// post-commit GC window.
	const failAt = 5
	newOpts := func(store pp.Store, fail bool) []pp.Option {
		opts := []pp.Option{
			pp.WithProcs(2), pp.WithStore(store),
			pp.WithShardCheckpoints(), pp.WithDeltaCheckpoint(1, 3), pp.WithAsyncCheckpoint(),
		}
		if fail {
			opts = append(opts, pp.WithFailureAt(failAt, 0))
		}
		return opts
	}

	// Dry run: count how many of each op an interrupted run performs. The
	// asynchronous pool makes the exact counts timing-dependent, so treat
	// them as an upper bound — a fault armed past the actual count simply
	// never fires, and the assertion still holds.
	counts := map[ckpt.FaultOp]int{}
	{
		store := ckpt.NewFault()
		var total float64
		eng := deploy(t, &total, pp.Distributed, newOpts(store, true)...)
		if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
			t.Fatalf("dry run: %v", err)
		}
		for _, op := range []ckpt.FaultOp{ckpt.OpSaveShardDelta, ckpt.OpSaveManifest, ckpt.OpClearShardDeltas} {
			counts[op] = store.Ops(op)
		}
		// Folding may collapse intermediate waves, but the exit drain
		// guarantees at least the final wave landed in full: one link per
		// rank plus its manifest.
		if counts[ckpt.OpSaveShardDelta] < 2 || counts[ckpt.OpSaveManifest] < 1 {
			t.Fatalf("dry run exercised too little: %v", counts)
		}
	}

	type injection struct {
		op   ckpt.FaultOp
		torn bool
	}
	var cases []injection
	for _, op := range []ckpt.FaultOp{ckpt.OpSaveShardDelta, ckpt.OpSaveManifest, ckpt.OpClearShardDeltas} {
		cases = append(cases, injection{op, false})
	}
	cases = append(cases, injection{ckpt.OpSaveShardDelta, true}, injection{ckpt.OpSaveManifest, true})

	for _, inj := range cases {
		for n := 1; n <= counts[inj.op]; n++ {
			kind := "fail"
			if inj.torn {
				kind = "tear"
			}
			t.Run(fmt.Sprintf("%s-%s-%d", kind, inj.op, n), func(t *testing.T) {
				store := ckpt.NewFault()
				if inj.torn {
					store.ArmTorn(inj.op, n)
				} else {
					store.Arm(inj.op, n)
				}
				var total float64
				eng := deploy(t, &total, pp.Distributed, newOpts(store, true)...)
				if err := eng.Run(); err == nil {
					t.Fatal("interrupted run reported success")
				}
				store.Disarm()

				eng2 := deploy(t, &total, pp.Distributed, newOpts(store, false)...)
				if err := eng2.Run(); err != nil {
					// Torn writes model a non-atomic store: the one outcome
					// allowed to fail — and only loudly — is a committed
					// artifact (the manifest itself, or a link the manifest
					// references) decoding as damaged at restart. The stock
					// FS store's rename atomicity rules this out; a silent
					// divergence is never allowed.
					if inj.torn && strings.Contains(err.Error(), "decode") {
						return
					}
					t.Fatalf("restart: %v", err)
				}
				if total != want {
					t.Fatalf("recovered total=%v want %v (restart did not land on the last complete manifest)", total, want)
				}
			})
		}
	}
}

// TestShardResizeRoundTrip is the acceptance path of the re-sharding
// restore: smp(8) stops for adaptation, restarts as a SHARDED dist(4) run
// (canonical → shard), is killed mid-chain, and restarts again as dist(6)
// (shard → resized shard world) — landing byte-identically on the result of
// an unmigrated run.
func TestShardResizeRoundTrip(t *testing.T) {
	want := run(t, pp.Sequential)
	store := pp.NewMemStore()
	var total float64

	eng := deploy(t, &total, pp.Shared, pp.WithThreads(8),
		pp.WithStore(store), pp.WithCheckpointEvery(2), pp.WithStopAt(3))
	var stopped *pp.ErrStopped
	if err := eng.Run(); !errors.As(err, &stopped) {
		t.Fatalf("smp leg: %v, want ErrStopped", err)
	}

	eng2 := deploy(t, &total, pp.Distributed, pp.WithProcs(4),
		pp.WithStore(store), pp.WithShardCheckpoints(),
		pp.WithDeltaCheckpoint(1, 2), pp.WithAsyncCheckpoint(),
		pp.WithFailureAt(5, 0))
	if err := eng2.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		t.Fatalf("sharded dist leg: %v, want injected failure", err)
	}
	if !eng2.Report().Restarted {
		t.Fatal("sharded leg did not resume from the stop snapshot")
	}
	if eng2.Report().Checkpoints == 0 {
		t.Fatal("sharded leg committed no waves before the kill")
	}

	eng3 := deploy(t, &total, pp.Distributed, pp.WithProcs(6),
		pp.WithStore(store), pp.WithShardCheckpoints(),
		pp.WithDeltaCheckpoint(1, 2), pp.WithAsyncCheckpoint())
	if err := eng3.Run(); err != nil {
		t.Fatalf("resized sharded leg: %v", err)
	}
	if !eng3.Report().Restarted {
		t.Fatal("resized leg did not restart from the manifest")
	}
	if total != want {
		t.Fatalf("round trip total=%v want %v", total, want)
	}
}

// TestShardMigrationInProcess migrates a sharded run across executors at a
// safe point inside one Run call (shard → canonical migration snapshot →
// shared-memory executor), with the shard pipeline re-anchored afterwards.
func TestShardMigrationInProcess(t *testing.T) {
	want := run(t, pp.Sequential)
	store := pp.NewMemStore()
	var total float64
	eng := deploy(t, &total, pp.Distributed, pp.WithProcs(3),
		pp.WithStore(store), pp.WithShardCheckpoints(),
		pp.WithDeltaCheckpoint(1, 2), pp.WithAsyncCheckpoint(),
		pp.WithAdaptAt(3, pp.AdaptTarget{Mode: pp.Shared, Threads: 2}))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	if rep.Migrations != 1 {
		t.Fatalf("want 1 in-process migration, got %+v", rep)
	}
	if total != want {
		t.Fatalf("migrated total=%v want %v", total, want)
	}
}

// TestShardStopPrefersNewerCanonical: a RequestStop in a sharded async run
// drains the pool and writes a canonical stop snapshot; the relaunch —
// into a different world size — must resume from that snapshot (newer than
// any manifest), not an older shard wave.
func TestShardStopPrefersNewerCanonical(t *testing.T) {
	want := run(t, pp.Sequential)
	for i := 0; i < 6; i++ {
		i := i
		t.Run(fmt.Sprintf("stop-after-%dus", 60*i), func(t *testing.T) {
			store := pp.NewMemStore()
			var total float64
			eng := deploy(t, &total, pp.Distributed, pp.WithProcs(2),
				pp.WithStore(store), pp.WithShardCheckpoints(),
				pp.WithCheckpointEvery(1), pp.WithAsyncCheckpoint())
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(time.Duration(60*i) * time.Microsecond)
				eng.RequestStop()
			}()
			err := eng.Run()
			wg.Wait()
			var stopped *pp.ErrStopped
			switch {
			case err == nil:
				if total != want {
					t.Fatalf("completed total=%v want %v", total, want)
				}
				return
			case errors.As(err, &stopped):
			default:
				t.Fatalf("run: %v", err)
			}

			eng2 := deploy(t, &total, pp.Distributed, pp.WithProcs(3),
				pp.WithStore(store), pp.WithShardCheckpoints(),
				pp.WithCheckpointEvery(1), pp.WithAsyncCheckpoint())
			if rerr := eng2.Run(); rerr != nil {
				t.Fatalf("restart: %v", rerr)
			}
			if total != want {
				t.Fatalf("resumed total=%v want %v", total, want)
			}
		})
	}
}
