package pp_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ppar/internal/ckpt"
	"ppar/pp"
)

// migModules is the full multi-mode module set: parallelisation advice that
// degrades gracefully under Sequential (no teams, no world) plus the
// checkpoint module. In-process migration keeps the modules plugged at New,
// so migration tests deploy the full set in every starting mode.
func migModules() []*pp.Module { return modules(pp.Shared) }

// deployMig builds a counter deployment carrying the full module set, so the
// run stays correct in whatever mode it migrates to.
func deployMig(t *testing.T, total *float64, mode pp.Mode, opts ...pp.Option) *pp.Engine {
	t.Helper()
	opts = append([]pp.Option{
		pp.WithName("pp-counter"),
		pp.WithMode(mode),
		pp.WithModules(migModules()...),
	}, opts...)
	eng, err := pp.New(func() pp.App {
		return &counter{Out: make([]float64, 120), Blocks: 6, total: total}
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// modeLegs enumerates the deployments a migration can start in or move to.
func modeLegs() []struct {
	name string
	mode pp.Mode
	opts []pp.Option
} {
	return []struct {
		name string
		mode pp.Mode
		opts []pp.Option
	}{
		{"seq", pp.Sequential, nil},
		{"smp", pp.Shared, []pp.Option{pp.WithThreads(2)}},
		{"dist", pp.Distributed, []pp.Option{pp.WithProcs(3)}},
		{"hybrid", pp.Hybrid, []pp.Option{pp.WithProcs(2), pp.WithThreads(2)}},
		{"task", pp.Task, []pp.Option{pp.WithProcs(2), pp.WithThreads(2), pp.WithOverdecompose(4)}},
	}
}

// targetFor sizes the migration target like the leg's start-up options.
func targetFor(mode pp.Mode) pp.AdaptTarget {
	switch mode {
	case pp.Shared:
		return pp.AdaptTarget{Mode: pp.Shared, Threads: 2}
	case pp.Distributed:
		return pp.AdaptTarget{Mode: pp.Distributed, Procs: 3}
	case pp.Hybrid:
		return pp.AdaptTarget{Mode: pp.Hybrid, Procs: 2, Threads: 2}
	case pp.Task:
		return pp.AdaptTarget{Mode: pp.Task, Procs: 2, Threads: 2}
	}
	return pp.AdaptTarget{Mode: pp.Sequential}
}

// TestInProcessMigrationMatrix migrates every ordered mode pair mid-run,
// inside a single Run call, and requires the result to be byte-identical to
// an unmigrated run — the acceptance criterion of the executor refactor.
func TestInProcessMigrationMatrix(t *testing.T) {
	want := run(t, pp.Sequential)
	legs := modeLegs()
	for _, from := range legs {
		for _, to := range legs {
			if to.mode == from.mode {
				continue
			}
			t.Run(from.name+"-to-"+to.name, func(t *testing.T) {
				var total float64
				eng := deployMig(t, &total, from.mode, append(append([]pp.Option{},
					from.opts...),
					pp.WithAdaptAt(3, targetFor(to.mode)))...)
				if err := eng.Run(); err != nil {
					t.Fatalf("migrated run: %v", err)
				}
				if total != want {
					t.Fatalf("migrated total=%v want %v", total, want)
				}
				rep := eng.Report()
				if rep.Migrations != 1 || !rep.Adapted {
					t.Fatalf("migration not recorded: %+v", rep)
				}
				if rep.MigrationTotal <= 0 {
					t.Fatalf("migration blocked time not recorded: %+v", rep)
				}
			})
		}
	}
}

// TestMigrationThereAndBack drives smp -> dist -> smp with one Schedule
// policy inside one Run, checking that a migrated-away run can come home.
func TestMigrationThereAndBack(t *testing.T) {
	want := run(t, pp.Sequential)
	var total float64
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(2),
		pp.WithAdaptPolicy(pp.Schedule(
			pp.AdaptStep{At: 2, Target: pp.AdaptTarget{Mode: pp.Distributed, Procs: 3}},
			pp.AdaptStep{At: 4, Target: pp.AdaptTarget{Mode: pp.Shared, Threads: 3}},
		)))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("total=%v want %v", total, want)
	}
	if rep := eng.Report(); rep.Migrations != 2 {
		t.Fatalf("want 2 migrations, got %+v", rep)
	}
}

// TestMigrationMatchesRestartPath pins the migration to the semantics it
// replaces: an in-process smp -> dist migration at safe point 3 must land on
// exactly the result of checkpoint-and-stop at 3 plus a dist relaunch (the
// old kill-and-restart path), which in turn equals the unmigrated run.
func TestMigrationMatchesRestartPath(t *testing.T) {
	want := run(t, pp.Sequential)

	// Old path: stop at 3 in smp, restart in dist from the snapshot.
	store := pp.NewMemStore()
	var restartTotal float64
	stopEng := deployMig(t, &restartTotal, pp.Shared, pp.WithThreads(2),
		pp.WithStore(store), pp.WithStopAt(3))
	var stopped *pp.ErrStopped
	if err := stopEng.Run(); !errors.As(err, &stopped) {
		t.Fatalf("stop run: %v", err)
	}
	restartEng := deployMig(t, &restartTotal, pp.Distributed, pp.WithProcs(3),
		pp.WithStore(store))
	if err := restartEng.Run(); err != nil {
		t.Fatalf("restart run: %v", err)
	}

	// New path: the same move without leaving Run.
	var migTotal float64
	migEng := deployMig(t, &migTotal, pp.Shared, pp.WithThreads(2),
		pp.WithAdaptAt(3, pp.AdaptTarget{Mode: pp.Distributed, Procs: 3}))
	if err := migEng.Run(); err != nil {
		t.Fatalf("migrated run: %v", err)
	}

	if restartTotal != want || migTotal != want {
		t.Fatalf("restart=%v migrate=%v want %v", restartTotal, migTotal, want)
	}
}

// TestMigrationThenKillRestartsInThirdMode kills the run after it migrated
// smp -> dist, then restarts in a THIRD mode from the regular checkpoint
// chain: the chain must have been re-based under the new executor, so the
// relaunched engine replays from a post-migration snapshot.
func TestMigrationThenKillRestartsInThirdMode(t *testing.T) {
	want := run(t, pp.Sequential)
	store := pp.NewMemStore()
	var total float64
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(2),
		pp.WithStore(store), pp.WithCheckpointEvery(2),
		pp.WithAdaptAt(3, pp.AdaptTarget{Mode: pp.Distributed, Procs: 3}),
		pp.WithFailureAt(5, 0))
	if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		t.Fatalf("migrated+killed run: %v, want injected failure", err)
	}
	if rep := eng.Report(); rep.Migrations != 1 {
		t.Fatalf("migration before the kill not recorded: %+v", rep)
	}
	// The post-migration checkpoint at safe point 4 must be the restart
	// point, so the replay happens entirely under the third mode.
	snap, found, err := ckpt.LoadResume(store, "pp-counter")
	if err != nil || !found {
		t.Fatalf("chain after kill: found=%v err=%v", found, err)
	}
	if snap.SafePoints != 4 {
		t.Fatalf("restart point at sp %d, want the re-based post-migration checkpoint at 4", snap.SafePoints)
	}
	eng2 := deployMig(t, &total, pp.Sequential,
		pp.WithStore(store), pp.WithCheckpointEvery(2))
	if err := eng2.Run(); err != nil {
		t.Fatalf("third-mode restart: %v", err)
	}
	if !eng2.Report().Restarted {
		t.Fatal("third-mode run did not restart from the chain")
	}
	if total != want {
		t.Fatalf("recovered total=%v want %v", total, want)
	}
}

// TestMigrationViaRequestAdapt drives the migration through the
// asynchronous coordinator path instead of a deterministic policy.
func TestMigrationViaRequestAdapt(t *testing.T) {
	want := run(t, pp.Sequential)
	var total float64
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(2))
	eng.RequestAdapt(pp.AdaptTarget{Mode: pp.Distributed, Procs: 3})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("total=%v want %v", total, want)
	}
	if rep := eng.Report(); rep.Migrations != 1 {
		t.Fatalf("RequestAdapt migration not applied: %+v", rep)
	}
}

// TestMigrationPersistsDueCheckpoint pins the cadence contract: when a
// migration fires at a safe point where a periodic checkpoint is due, the
// canonical snapshot is also persisted through the regular store — the
// migration must not silently cancel a scheduled checkpoint that the
// cadence counters (and any crash before the next one) rely on.
func TestMigrationPersistsDueCheckpoint(t *testing.T) {
	want := run(t, pp.Sequential)
	store := pp.NewMemStore()
	var total float64
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(2),
		pp.WithStore(store), pp.WithCheckpointEvery(3), pp.WithMaxCheckpoints(1),
		pp.WithAdaptAt(3, pp.AdaptTarget{Mode: pp.Distributed, Procs: 3}))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("total=%v want %v", total, want)
	}
	if rep := eng.Report(); rep.Checkpoints != 1 {
		t.Fatalf("the due checkpoint at the migration safe point was not persisted: %+v", rep)
	}
	snap, found, err := ckpt.LoadResume(store, "pp-counter")
	if err != nil || !found {
		t.Fatalf("no canonical snapshot persisted: found=%v err=%v", found, err)
	}
	if snap.SafePoints != 3 {
		t.Fatalf("persisted checkpoint at sp %d, want the migration safe point 3", snap.SafePoints)
	}
}

// TestMigrationRemembersTopology pins size inheritance across a round trip:
// migrating smp(4) away to a world and back with Threads unset must land on
// the remembered 4-thread team, not a coerced size.
func TestMigrationRemembersTopology(t *testing.T) {
	want := run(t, pp.Sequential)
	rec := &statsRecorder{}
	var total float64
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(4),
		pp.WithAdaptPolicy(rec),
		pp.WithAdaptPolicy(pp.Schedule(
			pp.AdaptStep{At: 2, Target: pp.AdaptTarget{Mode: pp.Distributed, Procs: 3}},
			pp.AdaptStep{At: 4, Target: pp.AdaptTarget{Mode: pp.Shared}}, // Threads unset: inherit
		)))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("total=%v want %v", total, want)
	}
	if len(rec.diff) > 0 {
		t.Fatalf("stats diverged at safe points %v", rec.diff)
	}
	s, ok := rec.seen[5]
	if !ok {
		t.Fatal("no stats at safe point 5")
	}
	if s.Mode != pp.Shared || s.Threads != 4 {
		t.Fatalf("after the round trip: mode=%v threads=%d, want the remembered smp(4)", s.Mode, s.Threads)
	}
}

// TestPendingRequestSurvivesCollidingMigration pins the collision rule: a
// RequestStop whose scheduled safe point is taken over by a policy-driven
// migration is not dropped — the coordinator re-schedules it after the
// replay and the run still checkpoints-and-stops.
func TestPendingRequestSurvivesCollidingMigration(t *testing.T) {
	store := pp.NewMemStore()
	var total float64
	// The coordinator notices RequestStop at sp 1 and schedules it for sp 2
	// — exactly where the policy migration fires and wins.
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(2),
		pp.WithStore(store),
		pp.WithAdaptAt(2, pp.AdaptTarget{Mode: pp.Distributed, Procs: 3}))
	eng.RequestStop()
	err := eng.Run()
	var stopped *pp.ErrStopped
	if !errors.As(err, &stopped) {
		t.Fatalf("colliding RequestStop was dropped: %v", err)
	}
	if eng.Report().Migrations != 1 {
		t.Fatalf("migration did not happen first: %+v", eng.Report())
	}
	if stopped.SafePoint <= 2 {
		t.Fatalf("stopped at sp %d, want after the sp-2 migration", stopped.SafePoint)
	}
}

// TestSharedWorldResizeAbortsLoudly pins the executor contract: a Shared
// run asked to resize its (non-existent) world must abort with an error
// naming the migration path, not silently ignore the target.
func TestSharedWorldResizeAbortsLoudly(t *testing.T) {
	var total float64
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(2),
		pp.WithAdaptPolicy(pp.AdaptAt(2, pp.AdaptTarget{Procs: 4})))
	err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "AdaptTarget.Mode") {
		t.Fatalf("want a loud no-world error naming the migration path, got %v", err)
	}
}

// TestMigrationViaAdaptManager drives the migration from a simulated
// resource manager: a Migrate event fires immediately, so the coordinator
// schedules the executor swap at its next safe point.
func TestMigrationViaAdaptManager(t *testing.T) {
	want := run(t, pp.Sequential)
	var total float64
	mgr := pp.NewAdaptManager(pp.Migrate(0, pp.Distributed, pp.AdaptTarget{Procs: 3}))
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(2),
		pp.WithAdaptManager(mgr))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("total=%v want %v", total, want)
	}
	if rep := eng.Report(); rep.Migrations != 1 {
		t.Fatalf("manager migration not applied: %+v", rep)
	}
	if fired := mgr.Fired(); len(fired) != 1 {
		t.Fatalf("manager fired %d events, want 1", len(fired))
	}
}

// TestMigrationHammer races RequestStop against an async-delta-checkpointing
// run that migrates smp -> dist mid-run (run under -race in CI). Whenever
// the run stops — before, during or after the migration — the drain-before-
// stop invariant must hold for the regular chain, and a relaunched engine
// must land on the uninterrupted result.
func TestMigrationHammer(t *testing.T) {
	want := run(t, pp.Sequential)
	for i := 0; i < 10; i++ {
		t.Run(fmt.Sprintf("stop-after-%dus", 40*i), func(t *testing.T) {
			store := ckpt.NewMem()
			var total float64
			eng := deployMig(t, &total, pp.Shared, pp.WithThreads(4),
				pp.WithStore(store),
				pp.WithDeltaCheckpoint(1, 3), pp.WithAsyncCheckpoint(),
				pp.WithAdaptAt(3, pp.AdaptTarget{Mode: pp.Distributed, Procs: 3}))
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(time.Duration(40*i) * time.Microsecond)
				eng.RequestStop()
			}()
			err := eng.Run()
			wg.Wait()
			var stoppedErr *pp.ErrStopped
			switch {
			case err == nil:
				if total != want {
					t.Fatalf("completed total=%v want %v", total, want)
				}
				return
			case errors.As(err, &stoppedErr):
			default:
				t.Fatalf("run: %v", err)
			}

			snap, found, lerr := ckpt.LoadResume(store, "pp-counter")
			if lerr != nil || !found {
				t.Fatalf("chain after stop: found=%v err=%v", found, lerr)
			}
			if snap.SafePoints != stoppedErr.SafePoint {
				t.Fatalf("materialised chain at sp %d, stop snapshot at %d: drain-before-stop violated",
					snap.SafePoints, stoppedErr.SafePoint)
			}

			eng2 := deployMig(t, &total, pp.Shared, pp.WithThreads(4),
				pp.WithStore(store),
				pp.WithDeltaCheckpoint(1, 3), pp.WithAsyncCheckpoint())
			if rerr := eng2.Run(); rerr != nil {
				t.Fatalf("restart: %v", rerr)
			}
			if total != want {
				t.Fatalf("resumed total=%v want %v", total, want)
			}
		})
	}
}

// TestMigrationTargetValidation pins the static rejections: an AdaptTo.Mode
// outside the four deployments fails at New, while formerly rejected
// combinations that a migration CAN honour are now accepted.
func TestMigrationTargetValidation(t *testing.T) {
	var total float64
	_, err := pp.New(func() pp.App { return &counter{Out: make([]float64, 12), Blocks: 2, total: &total} },
		pp.WithName("pp-counter"), pp.WithMode(pp.Shared), pp.WithThreads(2),
		pp.WithModules(migModules()...))
	if err != nil {
		t.Fatal(err)
	}
	bad := pp.Config{
		Mode: pp.Shared, Threads: 2, Modules: migModules(),
		AdaptAtSafePoint: 2, AdaptTo: pp.AdaptTarget{Mode: pp.Mode(99)},
	}
	if _, err := pp.NewFromConfig(bad, func() pp.App { return &counter{Out: make([]float64, 12), Blocks: 2, total: &total} }); err == nil ||
		!strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("out-of-range AdaptTo.Mode accepted: %v", err)
	}
	// Sequential-source migration is now legal (the old static rejection
	// named only adaptation by restart).
	okSeq := pp.Config{
		Mode: pp.Sequential, Modules: migModules(),
		AdaptAtSafePoint: 2, AdaptTo: pp.AdaptTarget{Mode: pp.Shared, Threads: 2},
	}
	if _, err := pp.NewFromConfig(okSeq, func() pp.App { return &counter{Out: make([]float64, 12), Blocks: 2, total: &total} }); err != nil {
		t.Fatalf("sequential-source migration rejected: %v", err)
	}
	// A TCP world still cannot resize in place, but may migrate.
	okTCP := pp.Config{
		Mode: pp.Distributed, Procs: 2, TCP: true, Modules: migModules(),
		AdaptAtSafePoint: 2, AdaptTo: pp.AdaptTarget{Mode: pp.Shared, Threads: 2},
	}
	if _, err := pp.NewFromConfig(okTCP, func() pp.App { return &counter{Out: make([]float64, 12), Blocks: 2, total: &total} }); err != nil {
		t.Fatalf("TCP-source migration rejected: %v", err)
	}
	badTCP := okTCP
	badTCP.AdaptTo = pp.AdaptTarget{Procs: 4}
	if _, err := pp.NewFromConfig(badTCP, func() pp.App { return &counter{Out: make([]float64, 12), Blocks: 2, total: &total} }); err == nil ||
		!strings.Contains(err.Error(), "AdaptTarget.Mode") {
		t.Fatalf("TCP in-place world resize accepted (or message does not name the migration path): %v", err)
	}
}
