package pp_test

import (
	"encoding/json"
	"strings"
	"testing"

	"ppar/pp"
)

// Mode round-trips through encoding.TextMarshaler/TextUnmarshaler using the
// same names String and ParseMode use — the fleet wire format depends on
// the three agreeing.
func TestModeTextRoundTrip(t *testing.T) {
	for _, m := range []pp.Mode{pp.Sequential, pp.Shared, pp.Distributed, pp.Hybrid} {
		text, err := m.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if string(text) != m.String() {
			t.Errorf("MarshalText %q != String %q", text, m.String())
		}
		parsed, err := pp.ParseMode(string(text))
		if err != nil || parsed != m {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", text, parsed, err, m)
		}
		var back pp.Mode
		if err := back.UnmarshalText(text); err != nil || back != m {
			t.Errorf("UnmarshalText(%q) = %v, %v; want %v", text, back, err, m)
		}
	}
}

// The zero Mode marshals to "" and unmarshals from "" — a JobSpec that
// omits the mode defaults to Sequential downstream, not here.
func TestModeTextZero(t *testing.T) {
	var zero pp.Mode
	text, err := zero.MarshalText()
	if err != nil || len(text) != 0 {
		t.Errorf("zero mode: text=%q err=%v", text, err)
	}
	var back pp.Mode = pp.Shared
	if err := back.UnmarshalText(nil); err != nil || back != 0 {
		t.Errorf("unmarshal empty: %v, %v", back, err)
	}
	if err := back.UnmarshalText([]byte("warp")); err == nil {
		t.Error("unknown mode name accepted")
	}
	if _, err := pp.Mode(99).MarshalText(); err == nil {
		t.Error("unknown mode value marshalled")
	}
}

// Mode embeds in JSON structs as its string name (the JobSpec/JobStatus
// wire format).
func TestModeJSONInStruct(t *testing.T) {
	type doc struct {
		Mode pp.Mode `json:"mode,omitempty"`
	}
	out, err := json.Marshal(doc{Mode: pp.Distributed})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"mode":"dist"}` {
		t.Errorf("marshal: %s", out)
	}
	var back doc
	if err := json.Unmarshal([]byte(`{"mode":"smp"}`), &back); err != nil || back.Mode != pp.Shared {
		t.Errorf("unmarshal: %+v, %v", back, err)
	}
}

// Report marshals with stable snake_case names and integer-nanosecond
// durations — the GET /jobs/{id} payload contract.
func TestReportJSONShape(t *testing.T) {
	eng, err := pp.New(func() pp.App { return &counter{Out: make([]float64, 40), Blocks: 8, total: new(float64)} },
		pp.WithName("json-report"),
		pp.WithModules(modules(pp.Sequential)...),
		pp.WithStore(pp.NewMemStore()),
		pp.WithCheckpointEvery(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"safe_points", "checkpoints", "save_total", "save_bytes", "load_total",
		"replay_time", "elapsed", "adapted", "stopped", "stopped_at", "failed",
		"restarted", "migrations", "migration_total", "capture_total",
		"async_save_total", "drain_total", "superseded", "full_saves",
		"delta_saves", "delta_bytes", "shard_saves", "shard_bytes",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report JSON missing %q:\n%s", key, out)
		}
	}
	if got := doc["safe_points"].(float64); got != float64(rep.SafePoints) {
		t.Errorf("safe_points = %v, want %d", got, rep.SafePoints)
	}
	if rep.Elapsed > 0 && doc["elapsed"].(float64) != float64(rep.Elapsed.Nanoseconds()) {
		t.Errorf("elapsed marshals as %v, want integer nanoseconds %d", doc["elapsed"], rep.Elapsed.Nanoseconds())
	}
	if strings.Contains(string(out), "SafePoints") {
		t.Errorf("report JSON leaks Go field names:\n%s", out)
	}

	var back pp.Report
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.SafePoints != rep.SafePoints || back.Checkpoints != rep.Checkpoints || back.Elapsed != rep.Elapsed {
		t.Errorf("round trip: %+v vs %+v", back, rep)
	}
}
