package pp_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/serial"
	"ppar/pp"
)

// storeFactories builds, per case, a pair of option slices that make two
// consecutive engines share one checkpoint backend: a filesystem directory,
// an in-memory store, or the gzip wrapper over memory.
func storeFactories() map[string]func(t *testing.T) []pp.Option {
	return map[string]func(t *testing.T) []pp.Option{
		"fs": func(t *testing.T) []pp.Option {
			dir := t.TempDir()
			return []pp.Option{pp.WithCheckpointDir(dir)}
		},
		"mem": func(t *testing.T) []pp.Option {
			store := pp.NewMemStore()
			return []pp.Option{pp.WithStore(store)}
		},
		"gzip": func(t *testing.T) []pp.Option {
			store := pp.NewGzipStore(pp.NewMemStore())
			return []pp.Option{pp.WithStore(store)}
		},
	}
}

// saveVariants maps each checkpoint pipeline flavour onto its options (all
// checkpoint every 2 safe points; the delta variants compact every 2, so a
// run interrupted at safe point 5 dies mid-chain: base at 2, delta at 4).
func saveVariants() map[string][]pp.Option {
	return map[string][]pp.Option{
		"sync":        {pp.WithCheckpointEvery(2)},
		"async":       {pp.WithCheckpointEvery(2), pp.WithAsyncCheckpoint()},
		"delta":       {pp.WithDeltaCheckpoint(2, 2)},
		"delta-async": {pp.WithDeltaCheckpoint(2, 2), pp.WithAsyncCheckpoint()},
	}
}

// TestCrossModeRestartMatrix is the full cross-product the checkpoint path
// promises: {Sequential, Shared, Distributed} × {sync, async, delta(+async)}
// × {fs, mem, gzip}, killed mid-run, restarted in EVERY OTHER mode, always
// landing on the uninterrupted result.
func TestCrossModeRestartMatrix(t *testing.T) {
	want := run(t, pp.Sequential)
	modes := []struct {
		name string
		mode pp.Mode
		opts []pp.Option
	}{
		{"seq", pp.Sequential, nil},
		{"smp", pp.Shared, []pp.Option{pp.WithThreads(2)}},
		{"dist", pp.Distributed, []pp.Option{pp.WithProcs(3)}},
	}
	for _, first := range modes {
		for variant, saveOpts := range saveVariants() {
			for storeName, mkStore := range storeFactories() {
				for _, second := range modes {
					if second.mode == first.mode {
						continue
					}
					name := fmt.Sprintf("%s/%s/%s/restart-%s", first.name, variant, storeName, second.name)
					t.Run(name, func(t *testing.T) {
						storeOpts := mkStore(t)
						var total float64
						// Fail on the master rank at safe point 5: the
						// sp-4 checkpoint (a delta in the delta variants)
						// is the newest restart point.
						opts := append(append(append([]pp.Option{}, storeOpts...), saveOpts...),
							pp.WithFailureAt(5, 0))
						eng := deploy(t, &total, first.mode, append(opts, first.opts...)...)
						if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
							t.Fatalf("first run: %v, want injected failure", err)
						}
						if eng.Report().Checkpoints == 0 {
							t.Fatal("first run persisted no checkpoints")
						}

						restartOpts := append(append([]pp.Option{}, storeOpts...), saveOpts...)
						eng2 := deploy(t, &total, second.mode, append(restartOpts, second.opts...)...)
						if err := eng2.Run(); err != nil {
							t.Fatalf("restart in %s: %v", second.name, err)
						}
						if !eng2.Report().Restarted {
							t.Fatal("restart not recorded")
						}
						if total != want {
							t.Fatalf("recovered total=%v want %v", total, want)
						}
					})
				}
			}
		}
	}
}

// TestDeltaFaultInjectionAlwaysConsistent sweeps a fault over EVERY
// checkpoint-path store operation of a delta-checkpointing run — each
// Save, SaveDelta and ClearDeltas call in turn, as a hard error and (for
// the saves) as a torn write — and verifies that the restart after each
// single injected failure loads a consistent snapshot and finishes with
// the uninterrupted result. A half-applied delta chain would diverge.
func TestDeltaFaultInjectionAlwaysConsistent(t *testing.T) {
	want := run(t, pp.Sequential)

	// Kill at safe point 6: checkpoints land at sp 1 (full), 2-4 (deltas)
	// and 5 (compaction full), so the sweep covers a torn base that a later
	// compaction overwrites, a torn final base, torn deltas in every chain
	// position, and both compaction ClearDeltas windows.
	const failAt = 6

	// Dry run: count how many of each op the interrupted run performs.
	counts := map[ckpt.FaultOp]int{}
	{
		store := ckpt.NewFault()
		var total float64
		eng := deploy(t, &total, pp.Shared, pp.WithThreads(2),
			pp.WithStore(store), pp.WithDeltaCheckpoint(1, 3), pp.WithFailureAt(failAt, 0))
		if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
			t.Fatalf("dry run: %v", err)
		}
		for _, op := range []ckpt.FaultOp{ckpt.OpSave, ckpt.OpSaveDelta, ckpt.OpClearDeltas} {
			counts[op] = store.Ops(op)
		}
		if counts[ckpt.OpSave] < 2 || counts[ckpt.OpSaveDelta] == 0 || counts[ckpt.OpClearDeltas] < 2 {
			t.Fatalf("dry run exercised too little: %v", counts)
		}
	}

	type injection struct {
		op   ckpt.FaultOp
		torn bool
	}
	var cases []injection
	for _, op := range []ckpt.FaultOp{ckpt.OpSave, ckpt.OpSaveDelta, ckpt.OpClearDeltas} {
		cases = append(cases, injection{op, false})
	}
	cases = append(cases, injection{ckpt.OpSave, true}, injection{ckpt.OpSaveDelta, true})

	for _, inj := range cases {
		for n := 1; n <= counts[inj.op]; n++ {
			kind := "fail"
			if inj.torn {
				kind = "tear"
			}
			t.Run(fmt.Sprintf("%s-%s-%d", kind, inj.op, n), func(t *testing.T) {
				store := ckpt.NewFault()
				if inj.torn {
					store.ArmTorn(inj.op, n)
				} else {
					store.Arm(inj.op, n)
				}
				var total float64
				eng := deploy(t, &total, pp.Shared, pp.WithThreads(2),
					pp.WithStore(store), pp.WithDeltaCheckpoint(1, 3), pp.WithFailureAt(failAt, 0))
				// The run must end abnormally (the injected process failure,
				// or earlier, the injected store error aborting the run);
				// a torn write is silent, so there the process failure is
				// the only interruption.
				if err := eng.Run(); err == nil {
					t.Fatal("interrupted run reported success")
				}
				store.Disarm()

				eng2 := deploy(t, &total, pp.Shared, pp.WithThreads(2),
					pp.WithStore(store), pp.WithDeltaCheckpoint(1, 3))
				if err := eng2.Run(); err != nil {
					// One outcome is allowed to fail, and only loudly: a
					// torn write of the LAST canonical base (a non-atomic
					// store losing the anchor itself — the stock FS store's
					// rename atomicity rules this out). Torn deltas must
					// never surface: the chain truncates to the consistent
					// prefix instead.
					if inj.torn && inj.op == ckpt.OpSave && strings.Contains(err.Error(), "decode") {
						return
					}
					t.Fatalf("restart: %v", err)
				}
				if total != want {
					t.Fatalf("recovered total=%v want %v (inconsistent restart state)", total, want)
				}
			})
		}
	}
}

// TestAsyncDeltaAdaptStopHammer hammers the async delta pipeline with
// run-time adaptation and RequestStop arriving at varying moments, under
// the race detector in CI. Whenever the run stops, the drain-before-stop
// invariant must hold for the delta chain: the materialised chain is
// exactly the stop snapshot's safe point (a full snapshot written after
// the writer drained), never an older in-flight capture on top of it —
// and the relaunched engine must land on the uninterrupted result.
func TestAsyncDeltaAdaptStopHammer(t *testing.T) {
	want := run(t, pp.Sequential)
	for i := 0; i < 10; i++ {
		i := i
		t.Run(fmt.Sprintf("stop-after-%dus", 40*i), func(t *testing.T) {
			store := ckpt.NewMem()
			var total float64
			eng := deploy(t, &total, pp.Shared, pp.WithThreads(4),
				pp.WithStore(store),
				pp.WithDeltaCheckpoint(1, 3), pp.WithAsyncCheckpoint(),
				pp.WithAdaptAt(3, pp.AdaptTarget{Threads: 2}))
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(time.Duration(40*i) * time.Microsecond)
				eng.RequestStop()
			}()
			err := eng.Run()
			wg.Wait()
			var stopped *pp.ErrStopped
			switch {
			case err == nil:
				// The stop raced past the end of the run.
				if total != want {
					t.Fatalf("completed total=%v want %v", total, want)
				}
				return
			case errors.As(err, &stopped):
			default:
				t.Fatalf("run: %v", err)
			}

			snap, found, lerr := ckpt.LoadResume(store, "pp-counter")
			if lerr != nil || !found {
				t.Fatalf("chain after stop: found=%v err=%v", found, lerr)
			}
			if snap.SafePoints != stopped.SafePoint {
				t.Fatalf("materialised chain at sp %d, stop snapshot at %d: drain-before-stop violated",
					snap.SafePoints, stopped.SafePoint)
			}

			eng2 := deploy(t, &total, pp.Shared, pp.WithThreads(4),
				pp.WithStore(store),
				pp.WithDeltaCheckpoint(1, 3), pp.WithAsyncCheckpoint())
			if rerr := eng2.Run(); rerr != nil {
				t.Fatalf("restart: %v", rerr)
			}
			if total != want {
				t.Fatalf("resumed total=%v want %v", total, want)
			}
		})
	}
}

// stripe is a workload with mostly-stable safe data: a large state vector
// of which each iteration rewrites exactly one chunk (a moving stripe),
// plus a small always-changing field — the shape incremental checkpointing
// is built for.
type stripe struct {
	State []float64
	It    int

	iters int
	total *float64
}

func (s *stripe) Main(ctx *pp.Ctx) {
	ctx.Call("run", func(ctx *pp.Ctx) {
		chunks := len(s.State) / serial.DeltaChunkElems
		for it := 0; it < s.iters; it++ {
			s.It = it
			off := (it % chunks) * serial.DeltaChunkElems
			pp.ForSpan(ctx, "stripe", off, off+serial.DeltaChunkElems, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s.State[i] = float64(it*1000 + i)
				}
			})
			ctx.Call("iter", func(*pp.Ctx) {})
		}
	})
	ctx.Call("report", func(*pp.Ctx) {
		sum := 0.0
		for _, v := range s.State {
			sum += v
		}
		*s.total = sum
	})
}

func stripeModules() []*pp.Module {
	return []*pp.Module{pp.NewModule("stripe/ckpt").
		SafeData("State").SafeData("It").
		SafePointAfter("iter")}
}

func runStripe(t *testing.T, iters int, opts ...pp.Option) (float64, pp.Report) {
	t.Helper()
	var total float64
	opts = append([]pp.Option{
		pp.WithName("pp-stripe"),
		pp.WithModules(stripeModules()...),
	}, opts...)
	eng, err := pp.New(func() pp.App {
		return &stripe{State: make([]float64, 8*serial.DeltaChunkElems), iters: iters, total: &total}
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return total, eng.Report()
}

// TestDeltaBytesSavings pins the acceptance criterion: on a mostly-stable
// workload, bytes written per checkpoint drop at least 3x against full
// snapshots — and the results stay identical.
func TestDeltaBytesSavings(t *testing.T) {
	const iters = 20
	store := pp.NewMemStore()
	fullTotal, fullRep := runStripe(t, iters, pp.WithStore(store), pp.WithCheckpointEvery(1))
	if fullRep.Checkpoints != iters {
		t.Fatalf("full run persisted %d checkpoints, want %d", fullRep.Checkpoints, iters)
	}
	if fullRep.DeltaSaves != 0 || fullRep.FullSaves != fullRep.Checkpoints {
		t.Fatalf("full run accounting off: %+v", fullRep)
	}
	fullSize := fullRep.SaveBytes // every full snapshot has the same payload size
	fullBytes := int64(fullSize) * int64(fullRep.Checkpoints)

	store2 := pp.NewMemStore()
	deltaTotal, deltaRep := runStripe(t, iters, pp.WithStore(store2), pp.WithDeltaCheckpoint(1, 8))
	if deltaTotal != fullTotal {
		t.Fatalf("delta run diverged: %v vs %v", deltaTotal, fullTotal)
	}
	if deltaRep.Checkpoints != iters {
		t.Fatalf("delta run persisted %d checkpoints, want %d", deltaRep.Checkpoints, iters)
	}
	if deltaRep.DeltaSaves == 0 || deltaRep.FullSaves < 2 {
		t.Fatalf("delta run accounting off (want deltas plus compactions): %+v", deltaRep)
	}
	deltaBytes := int64(fullSize)*int64(deltaRep.FullSaves) + int64(deltaRep.DeltaBytes)
	if deltaBytes*3 > fullBytes {
		t.Fatalf("delta checkpointing wrote %d bytes vs %d full (%.2fx), want >= 3x reduction",
			deltaBytes, fullBytes, float64(fullBytes)/float64(deltaBytes))
	}
	t.Logf("bytes per checkpoint: full=%d delta=%d (%.1fx reduction; %d full + %d delta saves)",
		fullBytes/iters, deltaBytes/iters, float64(fullBytes)/float64(deltaBytes),
		deltaRep.FullSaves, deltaRep.DeltaSaves)

	// And a kill mid-chain restarts to the exact uninterrupted result.
	var total float64
	eng, err := pp.New(func() pp.App {
		return &stripe{State: make([]float64, 8*serial.DeltaChunkElems), iters: iters, total: &total}
	}, pp.WithName("pp-stripe"), pp.WithModules(stripeModules()...),
		pp.WithStore(store2), pp.WithDeltaCheckpoint(1, 8), pp.WithFailureAt(iters-3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		t.Fatalf("kill run: %v", err)
	}
	eng2, err := pp.New(func() pp.App {
		return &stripe{State: make([]float64, 8*serial.DeltaChunkElems), iters: iters, total: &total}
	}, pp.WithName("pp-stripe"), pp.WithModules(stripeModules()...),
		pp.WithStore(store2), pp.WithDeltaCheckpoint(1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if total != fullTotal {
		t.Fatalf("restart after mid-chain kill: total=%v want %v", total, fullTotal)
	}
}

// TestDeltaShardConfigComposes pins the lifted exclusion: delta
// checkpointing now runs per shard chain (each rank keeps its own hash
// cache), and the accounting splits waves into anchors and delta links.
func TestDeltaShardConfigComposes(t *testing.T) {
	want := run(t, pp.Sequential)
	store := pp.NewMemStore()
	var total float64
	eng := deploy(t, &total, pp.Distributed, pp.WithProcs(2),
		pp.WithStore(store), pp.WithShardCheckpoints(), pp.WithDeltaCheckpoint(2, 2))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	if rep.DeltaSaves == 0 || rep.FullSaves == 0 {
		t.Fatalf("sharded delta cadence did not split waves: %+v", rep)
	}
	if rep.ShardSaves != rep.Checkpoints*2 {
		t.Fatalf("per-rank link accounting off: %+v", rep)
	}
	if total != want {
		t.Fatalf("total=%v want %v", total, want)
	}
}

// TestDeltaRequiresEvery pins the zero-interval misconfiguration: delta
// checkpointing with every=0 would silently take no checkpoints at all, so
// it must fail loudly at New.
func TestDeltaRequiresEvery(t *testing.T) {
	_, err := pp.New(func() pp.App { return &counter{Out: make([]float64, 12), Blocks: 2} },
		pp.WithMode(pp.Shared), pp.WithThreads(2),
		pp.WithStore(pp.NewMemStore()), pp.WithDeltaCheckpoint(0, 4))
	if err == nil || !strings.Contains(err.Error(), "CheckpointEvery") {
		t.Fatalf("WithDeltaCheckpoint(0, ...) accepted: %v", err)
	}
}
