package pp_test

import (
	"errors"
	"testing"

	"ppar/pp"
)

// nonFSStores builds one of each non-filesystem backend, so every test
// below runs through both the in-memory store and the gzip wrapper.
func nonFSStores() map[string]pp.Store {
	return map[string]pp.Store{
		"mem":      pp.NewMemStore(),
		"gzip-mem": pp.NewGzipStore(pp.NewMemStore()),
	}
}

// TestCanonicalRestartThroughStores injects a failure into a distributed
// run checkpointing through a non-filesystem store and verifies the rerun
// replays from the canonical snapshot and completes correctly.
func TestCanonicalRestartThroughStores(t *testing.T) {
	want := run(t, pp.Sequential)
	for name, store := range nonFSStores() {
		t.Run(name, func(t *testing.T) {
			var total float64
			// Fail on the master rank: it completes its gather-at-master
			// save at safe point 4 before dying at 5, so a snapshot is
			// guaranteed to exist regardless of rank interleaving.
			eng := deploy(t, &total, pp.Distributed, pp.WithProcs(3),
				pp.WithStore(store), pp.WithCheckpointEvery(2),
				pp.WithFailureAt(5, 0))
			if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
				t.Fatalf("want injected failure, got %v", err)
			}
			eng2 := deploy(t, &total, pp.Distributed, pp.WithProcs(3),
				pp.WithStore(store), pp.WithCheckpointEvery(2))
			if err := eng2.Run(); err != nil {
				t.Fatal(err)
			}
			rep := eng2.Report()
			if !rep.Restarted {
				t.Fatal("second run did not replay from the checkpoint")
			}
			if total != want {
				t.Fatalf("recovered total=%v want %v", total, want)
			}
		})
	}
}

// TestShardRestartThroughStores exercises the paper's first distributed
// alternative — per-rank shard snapshots — through the non-filesystem
// backends.
func TestShardRestartThroughStores(t *testing.T) {
	want := run(t, pp.Sequential)
	for name, store := range nonFSStores() {
		t.Run(name, func(t *testing.T) {
			var total float64
			eng := deploy(t, &total, pp.Distributed, pp.WithProcs(3),
				pp.WithStore(store), pp.WithCheckpointEvery(2),
				pp.WithShardCheckpoints(), pp.WithFailureAt(5, 2))
			if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
				t.Fatalf("want injected failure, got %v", err)
			}
			eng2 := deploy(t, &total, pp.Distributed, pp.WithProcs(3),
				pp.WithStore(store), pp.WithCheckpointEvery(2),
				pp.WithShardCheckpoints())
			if err := eng2.Run(); err != nil {
				t.Fatal(err)
			}
			if !eng2.Report().Restarted {
				t.Fatal("second run did not replay from the shard checkpoints")
			}
			if total != want {
				t.Fatalf("recovered total=%v want %v", total, want)
			}
		})
	}
}

// TestCrossModeRestartThroughStores stops a Shared run with a canonical
// checkpoint, then restarts it Distributed from the same non-filesystem
// store — the paper's adaptation by restart across execution modes, with
// the checkpoint never touching a filesystem.
func TestCrossModeRestartThroughStores(t *testing.T) {
	want := run(t, pp.Sequential)
	for name, store := range nonFSStores() {
		t.Run(name, func(t *testing.T) {
			var total float64
			eng := deploy(t, &total, pp.Shared, pp.WithThreads(2),
				pp.WithStore(store), pp.WithStopAt(3))
			err := eng.Run()
			var stopped *pp.ErrStopped
			if !errors.As(err, &stopped) {
				t.Fatalf("want ErrStopped, got %v", err)
			}
			if stopped.SafePoint != 3 {
				t.Fatalf("stopped at %d, want 3", stopped.SafePoint)
			}

			eng2 := deploy(t, &total, pp.Distributed, pp.WithProcs(4),
				pp.WithStore(store))
			if err := eng2.Run(); err != nil {
				t.Fatal(err)
			}
			rep := eng2.Report()
			if !rep.Restarted {
				t.Fatal("distributed run did not replay the shared-mode snapshot")
			}
			if total != want {
				t.Fatalf("cross-mode total=%v want %v", total, want)
			}
		})
	}
}

// TestLedgerCleanFinishNoReplay verifies the crash-ledger semantics through
// a pluggable store: a cleanly finished run leaves a snapshot behind but a
// clean ledger, so the next run must NOT replay.
func TestLedgerCleanFinishNoReplay(t *testing.T) {
	for name, store := range nonFSStores() {
		t.Run(name, func(t *testing.T) {
			var total float64
			eng := deploy(t, &total, pp.Shared, pp.WithThreads(2),
				pp.WithStore(store), pp.WithCheckpointEvery(2))
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if eng.Report().Checkpoints == 0 {
				t.Fatal("no checkpoints taken in the first run")
			}
			// Snapshot exists, but the ledger is clean: fresh start.
			eng2 := deploy(t, &total, pp.Shared, pp.WithThreads(2),
				pp.WithStore(store), pp.WithCheckpointEvery(2))
			if err := eng2.Run(); err != nil {
				t.Fatal(err)
			}
			if eng2.Report().Restarted {
				t.Fatal("clean completion must not trigger replay")
			}
		})
	}
}

// TestHybridCheckpointThroughGzip drives the hybrid deployment (replicas ×
// teams) through the compressing wrapper end to end.
func TestHybridCheckpointThroughGzip(t *testing.T) {
	want := run(t, pp.Sequential)
	store := pp.NewGzipStore(pp.NewMemStore())
	var total float64
	eng := deploy(t, &total, pp.Hybrid, pp.WithProcs(2), pp.WithThreads(2),
		pp.WithStore(store), pp.WithCheckpointEvery(3), pp.WithFailureAt(4, 0))
	if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		t.Fatalf("want injected failure, got %v", err)
	}
	eng2 := deploy(t, &total, pp.Hybrid, pp.WithProcs(2), pp.WithThreads(2),
		pp.WithStore(store), pp.WithCheckpointEvery(3))
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("recovered total=%v want %v", total, want)
	}
}
