package pp_test

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"ppar/internal/jgf"
	"ppar/pp"
)

// Task-mode coverage: the work-stealing executor must be a drop-in fifth
// deployment — same results, same checkpoints, same migration surface — with
// the overdecomposition factor k a pure performance knob.

// TestTaskRestartAcrossOverdecompose kills a Task-mode run mid-chain and
// restarts it under a DIFFERENT chunking factor (and team size): k shapes the
// schedule, never the state, so every k lands on the sequential result.
func TestTaskRestartAcrossOverdecompose(t *testing.T) {
	want := run(t, pp.Sequential)
	for _, restartK := range []int{1, 2, 16} {
		t.Run(fmt.Sprintf("restart-k%d", restartK), func(t *testing.T) {
			store := pp.NewMemStore()
			var total float64
			eng := deploy(t, &total, pp.Task,
				pp.WithProcs(2), pp.WithThreads(2), pp.WithOverdecompose(8),
				pp.WithStore(store), pp.WithCheckpointEvery(2),
				pp.WithFailureAt(5, 0))
			if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
				t.Fatalf("first leg: %v, want injected failure", err)
			}
			eng2 := deploy(t, &total, pp.Task,
				pp.WithProcs(2), pp.WithThreads(3), pp.WithOverdecompose(restartK),
				pp.WithStore(store), pp.WithCheckpointEvery(2))
			if err := eng2.Run(); err != nil {
				t.Fatalf("restart with k=%d: %v", restartK, err)
			}
			if !eng2.Report().Restarted {
				t.Fatal("restart not recorded")
			}
			if total != want {
				t.Fatalf("recovered total=%v want %v", total, want)
			}
		})
	}
}

// TestTaskShardedRestart runs the sharded pipeline with a Task-mode FIRST
// leg (per-rank shards record the chunk→rank boundaries in the manifest),
// kills it mid-chain, and restarts both same-topology (parallel per-rank
// restore) and into a different world (re-sharding restore).
func TestTaskShardedRestart(t *testing.T) {
	want := run(t, pp.Sequential)
	for _, target := range []struct {
		name string
		mode pp.Mode
		opts []pp.Option
	}{
		{"same-topology", pp.Task, []pp.Option{pp.WithProcs(2), pp.WithThreads(2), pp.WithOverdecompose(2)}},
		{"resized-dist3", pp.Distributed, []pp.Option{pp.WithProcs(3)}},
		{"smp", pp.Shared, []pp.Option{pp.WithThreads(2)}},
	} {
		t.Run(target.name, func(t *testing.T) {
			store := pp.NewMemStore()
			var total float64
			eng := deploy(t, &total, pp.Task,
				pp.WithProcs(2), pp.WithThreads(2), pp.WithOverdecompose(8),
				pp.WithStore(store), pp.WithShardCheckpoints(),
				pp.WithCheckpointEvery(2), pp.WithFailureAt(5, 1))
			if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
				t.Fatalf("task leg: %v, want injected failure", err)
			}
			if rep := eng.Report(); rep.Checkpoints == 0 || rep.ShardSaves == 0 {
				t.Fatalf("task leg committed no shard waves: %+v", rep)
			}
			opts := append(append([]pp.Option{}, target.opts...),
				pp.WithStore(store), pp.WithShardCheckpoints(), pp.WithCheckpointEvery(2))
			eng2 := deploy(t, &total, target.mode, opts...)
			if err := eng2.Run(); err != nil {
				t.Fatalf("restart as %s: %v", target.name, err)
			}
			if !eng2.Report().Restarted {
				t.Fatal("restart not recorded")
			}
			if total != want {
				t.Fatalf("recovered total=%v want %v", total, want)
			}
		})
	}
}

// TestTaskWorldResizeAbortsLoudly pins the executor contract: Task mode
// rebalances between its existing ranks and must reject an in-place world
// resize with an error naming the migration path.
func TestTaskWorldResizeAbortsLoudly(t *testing.T) {
	var total float64
	eng := deploy(t, &total, pp.Task, pp.WithProcs(2), pp.WithThreads(2),
		pp.WithAdaptPolicy(pp.AdaptAt(2, pp.AdaptTarget{Procs: 4})))
	err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "AdaptTarget.Mode") {
		t.Fatalf("want a loud no-resize error naming the migration path, got %v", err)
	}
}

// TestTaskThreadAdaptation: in-place team resizing stays available in Task
// mode (only the world is fixed).
func TestTaskThreadAdaptation(t *testing.T) {
	want := run(t, pp.Sequential)
	got := run(t, pp.Task, pp.WithProcs(2), pp.WithThreads(2),
		pp.WithAdaptAt(3, pp.AdaptTarget{Threads: 4}))
	if got != want {
		t.Fatalf("adapted total=%v want %v", got, want)
	}
}

// TestTaskThreadAdaptationIgnorableReplay pins the sequence-alignment half
// of the join protocol. A joining worker replays the region with ignorable
// methods skipped WHOLESALE, so the keyed loop instances inside them never
// consume its loop-sequence counter; without the activation-time alignment
// (Worker.AlignSeqs) the joiner would claim stale sequence keys and
// re-execute whole sweeps against current data. SOR is the shape that
// catches it: its red/black sweeps live inside ignorable calls.
func TestTaskThreadAdaptationIgnorableReplay(t *testing.T) {
	const n, iters = 64, 10
	want := jgf.SORReference(n, iters)
	res := &jgf.SORResult{}
	eng, err := pp.New(func() pp.App { return jgf.NewSOR(n, iters, res) },
		pp.WithName("pp-task-sor"), pp.WithMode(pp.Task),
		pp.WithThreads(2), pp.WithOverdecompose(8),
		pp.WithModules(jgf.SORModules(pp.Task)...),
		pp.WithAdaptAt(5, pp.AdaptTarget{Threads: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Gtotal != want {
		t.Fatalf("expanded Task run diverged: got %v want %v", res.Gtotal, want)
	}
}

// TestTaskSchedulerCounters: a Task run reports its chunk/steal/idle
// counters through Report and the metrics bridge, and RunStats carries the
// deterministic pair (Overdecompose, Rebalances) to policies.
func TestTaskSchedulerCounters(t *testing.T) {
	rec := &statsRecorder{}
	var total float64
	eng := deploy(t, &total, pp.Task, pp.WithThreads(4), pp.WithOverdecompose(5),
		pp.WithAdaptPolicy(rec))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	if rep.TaskChunks == 0 {
		t.Fatalf("no chunks recorded: %+v", rep)
	}
	sched := rep.Sched()
	if sched.Chunks != rep.TaskChunks || sched.Steals != rep.Steals {
		t.Fatalf("metrics bridge disagrees with the report: %+v vs %+v", sched, rep)
	}
	if r := sched.StealRatio(); r < 0 || r > 1 {
		t.Fatalf("steal ratio %v out of range", r)
	}
	if len(rec.seen) == 0 {
		t.Fatal("policy never consulted")
	}
	for sp, s := range rec.seen {
		if s.Overdecompose != 5 {
			t.Fatalf("RunStats at sp %d carries k=%d, want the configured 5", sp, s.Overdecompose)
		}
	}
}

// skewApp is a deliberately imbalanced kernel: the first quarter of the
// Block-partitioned range costs ~20x the rest, so an even two-rank split
// leaves rank 0 doing almost all the work. Element values are pure functions
// of the index, so results are identical however ownership moves.
type skewApp struct {
	Out   []float64
	Iters int
	total *float64
}

func skewWork(i, n int) float64 {
	// Calibrated so BOTH ranks of an even two-rank split clear the
	// balancer's minimum-sample floor each iteration, with the hot quarter
	// still ~5x the rest.
	rounds := 20000
	if i < n/4 {
		rounds = 100000
	}
	v := 0.0
	for k := 0; k < rounds; k++ {
		v += math.Sqrt(float64(i + k))
	}
	return v
}

func (s *skewApp) Main(ctx *pp.Ctx) {
	ctx.Call("run", s.run)
	ctx.Call("report", func(ctx *pp.Ctx) {
		sum := 0.0
		for _, v := range s.Out {
			sum += v
		}
		*s.total = sum
	})
}

func (s *skewApp) run(ctx *pp.Ctx) {
	n := len(s.Out)
	for it := 0; it < s.Iters; it++ {
		pp.ForSpan(ctx, "cells", 0, n, func(a, b int) {
			for i := a; i < b; i++ {
				s.Out[i] += skewWork(i, n)
			}
		})
		ctx.Call("iter", func(*pp.Ctx) {})
	}
}

func skewModules() []*pp.Module {
	par := pp.NewModule("skew/par").
		ParallelMethod("run").
		PartitionedField("Out", pp.Block).
		LoopPartition("cells", "Out").
		GatherAfter("run", "Out").
		OnMaster("report")
	ck := pp.NewModule("skew/ckpt").
		SafeData("Out").
		SafePointAfter("iter")
	return []*pp.Module{par, ck}
}

func runSkew(t *testing.T, mode pp.Mode, opts ...pp.Option) (float64, *pp.Engine) {
	t.Helper()
	var total float64
	opts = append([]pp.Option{
		pp.WithName("pp-skew"), pp.WithMode(mode),
		pp.WithModules(skewModules()...),
	}, opts...)
	eng, err := pp.New(func() pp.App {
		return &skewApp{Out: make([]float64, 64), Iters: 6, total: &total}
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return total, eng
}

// TestTaskCrossRankRebalance drives the skewed kernel through a two-rank
// Task deployment: the balancer must observe the imbalance at a safe point,
// move Block boundary rows from the overloaded rank to the idle one, count
// the move in Report.Rebalances — and leave the result bit-identical to the
// sequential run.
func TestTaskCrossRankRebalance(t *testing.T) {
	want, _ := runSkew(t, pp.Sequential)
	got, eng := runSkew(t, pp.Task, pp.WithProcs(2), pp.WithThreads(2),
		pp.WithOverdecompose(4))
	if got != want {
		t.Fatalf("task total=%v want %v", got, want)
	}
	if eng.Report().Rebalances == 0 {
		t.Fatalf("skewed two-rank run never rebalanced: %+v", eng.Report())
	}
}

// TestTaskRebalanceThenCheckpointRestart checkpoints AFTER boundaries have
// moved and restarts in another mode: the canonical snapshot must capture
// the post-move state exactly (a stale-boundary gather would double- or
// zero-count moved rows).
func TestTaskRebalanceThenCheckpointRestart(t *testing.T) {
	want, _ := runSkew(t, pp.Sequential)
	store := pp.NewMemStore()
	var total float64
	eng, err := pp.New(func() pp.App {
		return &skewApp{Out: make([]float64, 64), Iters: 6, total: &total}
	}, pp.WithName("pp-skew"), pp.WithMode(pp.Task),
		pp.WithProcs(2), pp.WithThreads(2), pp.WithOverdecompose(4),
		pp.WithModules(skewModules()...),
		pp.WithStore(store), pp.WithCheckpointEvery(2), pp.WithFailureAt(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rerr := eng.Run(); !errors.Is(rerr, pp.ErrInjectedFailure) {
		t.Fatalf("first leg: %v, want injected failure", rerr)
	}
	eng2, err := pp.New(func() pp.App {
		return &skewApp{Out: make([]float64, 64), Iters: 6, total: &total}
	}, pp.WithName("pp-skew"), pp.WithMode(pp.Shared), pp.WithThreads(2),
		pp.WithModules(skewModules()...),
		pp.WithStore(store), pp.WithCheckpointEvery(2))
	if err != nil {
		t.Fatal(err)
	}
	if rerr := eng2.Run(); rerr != nil {
		t.Fatalf("smp restart: %v", rerr)
	}
	if total != want {
		t.Fatalf("recovered total=%v want %v", total, want)
	}
}

// TestParseModeTask: the fifth mode round-trips through the string surface
// used by flags and the fleet spec.
func TestParseModeTask(t *testing.T) {
	m, err := pp.ParseMode("task")
	if err != nil || m != pp.Task {
		t.Fatalf("ParseMode(task) = %v, %v", m, err)
	}
	if s := pp.Task.String(); s != "task" {
		t.Fatalf("Task.String() = %q", s)
	}
}
