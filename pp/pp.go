// Package pp is the public API of the pluggable-parallelisation library: a
// Go implementation of "Checkpoint and Run-Time Adaptation with Pluggable
// Parallelisation" (Medeiros & Sobral, ICPP 2011).
//
// # Programming model
//
// Write your program as ordinary sequential Go. Route methods you may want
// to advise through ctx.Call and loops through pp.For / pp.ForSpan:
//
//	type SOR struct {
//		G [][]float64 // exported so modules can manage it
//		N, Iters int
//	}
//
//	func (s *SOR) Main(ctx *pp.Ctx) { ctx.Call("run", s.run) }
//
//	func (s *SOR) run(ctx *pp.Ctx) {
//		for it := 0; it < s.Iters; it++ {
//			ctx.Call("sweep", s.sweep)     // advisable method
//			ctx.Call("iter", func(*pp.Ctx) {})
//		}
//	}
//
//	func (s *SOR) sweep(ctx *pp.Ctx) {
//		pp.ForSpan(ctx, "rows", 1, s.N-1, func(lo, hi int) { ... })
//	}
//
// With no modules plugged this runs strictly sequentially. Parallelisation,
// checkpointing and adaptation are declared in separate modules:
//
//	smp := pp.NewModule("sor/smp").
//		ParallelMethod("run").
//		LoopSchedule("rows", pp.Static, 1)
//
//	ckpt := pp.NewModule("sor/ckpt").
//		SafeData("G").            // what to save
//		SafePointAfter("iter").   // where snapshots may be taken
//		Ignorable("sweep")        // what replay may skip
//
// # Deployments are assembled from functional options
//
//	eng, err := pp.New(func() pp.App { return NewSOR(...) },
//		pp.WithMode(pp.Shared), pp.WithThreads(8),
//		pp.WithModules(smp, ckpt),
//		pp.WithCheckpointDir("/tmp/ckpt"), pp.WithCheckpointEvery(10),
//	)
//	err = eng.Run()
//
// The same base code deploys Sequential, Shared (thread team), Distributed
// (SPMD aggregate replicas) or Hybrid; checkpoints taken by the
// gather-at-master protocol restart in ANY mode; and the running program
// can expand or contract its thread team / replica world at safe points.
//
// # Pluggable checkpoint backends
//
// Checkpoint transport is a Store interface with three stock
// implementations — filesystem (NewFSStore), in-memory (NewMemStore) and a
// gzip-compressing wrapper (NewGzipStore) — selected with WithStore:
//
//	store := pp.NewGzipStore(pp.NewMemStore())
//	eng, err := pp.New(factory, pp.WithMode(pp.Distributed), pp.WithProcs(4),
//		pp.WithModules(mods...), pp.WithStore(store), pp.WithCheckpointEvery(10))
//
// WithCheckpointDir(dir) remains as sugar for WithStore(filesystem store).
// Because the canonical snapshot format is mode-independent, a checkpoint
// written through any Store restarts under any mode — including through a
// purely in-memory store shared by the two engines.
//
// Store guarantees: Save is atomic (the filesystem store writes to a temp
// file, fsyncs it, renames, and fsyncs the directory, so a crash mid-write
// never damages the previous checkpoint), Clear removes only the named
// application's snapshots (never another app whose name shares a prefix),
// and Load reports found=false only when no checkpoint exists — a snapshot
// that exists but fails to decode reports found=true with the error.
// Decoding validates every checksum and bounds every length against the
// data actually present, so corrupt or crafted snapshots fail cleanly.
//
// # Asynchronous checkpointing
//
// By default every save blocks all lines of execution at the safe-point
// barrier for the full encode+persist. WithAsyncCheckpoint switches to a
// double-buffered pipeline: the master captures an in-memory copy at the
// barrier and releases it immediately, while a background writer encodes
// (in parallel, field by field) and persists through the Store. At most
// one snapshot is in flight — a newer capture supersedes one still parked
// behind the in-flight write — and the writer drains at Run/RunContext
// exit and before checkpoint-and-stop snapshots, which stay synchronous
// because they are the restart point. Write errors surface at the next
// safe point or at engine exit. Report splits the accounting: SaveTotal
// (blocked time), AsyncSaveTotal (overlapped background writes),
// DrainTotal and Superseded.
//
// # Incremental (delta) checkpointing
//
// WithDeltaCheckpoint(every, compactEvery) persists only what changed
// between captures: the engine hashes every SafeData field (in fixed-size
// chunks for large float slices and matrices) at each capture and writes a
// small PPCKPD1 delta — changed fields/chunks plus a reference to the
// chain's base snapshot — through Store.SaveDelta. Every compactEvery
// deltas the chain is compacted back into a full snapshot, bounding
// restart cost and disk usage. Restore (Store.LoadChain) replays base +
// deltas automatically, truncating at the first torn, missing or stale
// link, so every restart point is a consistent prefix of the chain; the
// materialised snapshot is an ordinary canonical snapshot, so cross-mode
// restart works unchanged. Deltas compose with WithAsyncCheckpoint: a
// capture superseded behind an in-flight write folds into the next one
// instead of being dropped. Report gains FullSaves, DeltaSaves and
// DeltaBytes.
//
// # Pluggable adaptation policies
//
// Run-time adaptation and checkpoint-and-stop are decided by an
// AdaptPolicy consulted at every safe point. Stock policies: AdaptAt
// (reshape at a safe point), StopAt (checkpoint-and-stop at a safe point,
// the paper's adaptation by restart), Schedule (a fixed sequence of
// reshapings) and Policies (chaining). Asynchronous, wall-clock sources —
// a resource manager granting or revoking nodes — use WithAdaptManager or
// Engine.RequestAdapt / Engine.RequestStop instead. Decide sees
// deterministic RunStats, including checkpoint cadence counters
// (FullSaves/DeltaSaves/LastCheckpointSP) so a policy can, say, stop or
// migrate exactly at a freshly checkpointed safe point.
//
// # In-process cross-mode migration
//
// The engine's deployments are pluggable Executors (sequential, shared,
// distributed, hybrid). Returning an AdaptTarget with Mode set from a
// policy (or passing it to RequestAdapt) migrates the running program to
// another deployment at a safe point WITHOUT leaving Run: the engine takes
// a canonical snapshot into an internal in-memory store, tears down the
// current executor, builds the target-mode executor, and replays to the
// same safe point — the paper's adaptation-by-restart (Figures 6 and 7)
// collapsed into one process:
//
//	eng, _ := pp.New(factory,
//		pp.WithMode(pp.Shared), pp.WithThreads(8), pp.WithModules(mods...),
//		pp.WithAdaptAt(50, pp.AdaptTarget{Mode: pp.Distributed, Procs: 4}),
//	)
//	err := eng.Run() // starts on a thread team, finishes as 4 SPMD replicas
//
// Threads/Procs in the target size the new executor (0 inherits the current
// sizes). Plug the union of the modes' module sets: like a cross-mode
// restart, the target executor uses the partitioning/team advice of the
// mode it lands in (e.g. SORModules(pp.Hybrid) covers all four). Results
// are byte-identical to an unmigrated run. Migration
// composes with checkpointing — the regular chain keeps serving crash
// restarts and is re-based (next periodic save is a full snapshot) under
// the new executor — and with async/delta pipelines (the writer is drained
// before the migration snapshot). Custom Store implementations are not
// involved: migration uses an internal memory store. Report carries the
// cost split as Migrations and MigrationTotal.
//
// # Closed-loop elastic autoscaling
//
// WithAutoScale plugs a feedback controller that closes the adaptation
// loop the paper left manual: it measures the per-safe-point iteration
// rate from live RunStats, fits per-(Mode,Threads,Procs) time and
// efficiency curves against the analytic prior (internal/perfmodel,
// seasoned with the Task executor's queue-pressure counters), and issues
// a resize or cross-mode migration at a safe point only when the
// predicted saving over the remaining horizon clears the measured
// migration cost with hysteresis (confirmation windows + cooldown):
//
//	as := pp.NewAutoScale(pp.AutoScaleConfig{
//		MoveCost: 10 * time.Millisecond,
//		Capacity: churn.Capacity, // live (threads, procs) ceiling
//	})
//	eng, _ := pp.New(factory, pp.WithMode(pp.Shared), pp.WithThreads(8),
//		pp.WithModules(mods...), pp.WithAutoScale(as))
//	err := eng.Run()
//	for _, d := range as.Decisions() { ... } // the audit trail
//
// The Capacity feed is the cluster side of the loop: when it drops below
// the current shape (a node was lost), the very next safe point shrinks
// the run unconditionally — capacity shrinks bypass every profit gate,
// because the cores are gone either way — while regrowth after an arrival
// happens only once the fitted curves say the extra workers pay for the
// move. Decisions carry the predicted saving, the charged cost and a
// human-readable reason.
//
// # Lifecycle
//
// Engine.RunContext(ctx) runs under a context; cancellation maps to a
// graceful checkpoint-and-stop at the next safe point, after which the run
// returns *ErrStopped (wrapping the context cause) and a relaunched engine
// — in any mode — replays from the snapshot.
//
// Callers that still hold a raw Config can use NewFromConfig, the
// compatibility entry point; New with options is the primary API.
package pp

import (
	"ppar/internal/core"
	"ppar/internal/partition"
	"ppar/internal/team"
)

// Re-exported engine types; see ppar/internal/core for full documentation.
type (
	// App is a base program.
	App = core.App
	// Factory creates one application instance (one per replica in
	// distributed modes).
	Factory = core.Factory
	// Ctx is the execution context handed to the base program.
	Ctx = core.Ctx
	// Config assembles one deployment (legacy struct form; prefer the
	// functional options of New).
	Config = core.Config
	// Engine executes one deployment.
	Engine = core.Engine
	// Module is one pluggable parallelisation/fault-tolerance module.
	Module = core.Module
	// Mode selects the plugged machinery.
	Mode = core.Mode
	// AdaptTarget describes a requested reshaping (or, with Stop set, a
	// checkpoint-and-stop).
	AdaptTarget = core.AdaptTarget
	// Report carries a run's measurements.
	Report = core.Report
	// ErrStopped reports a checkpoint-and-stop (adaptation by restart).
	ErrStopped = core.ErrStopped
	// DelayFunc models per-message link costs on the transport.
	DelayFunc = core.DelayFunc
)

// Deployment modes.
const (
	Sequential  = core.Sequential
	Shared      = core.Shared
	Distributed = core.Distributed
	Hybrid      = core.Hybrid
	// Task is the work-stealing many-task deployment: the Hybrid topology
	// with every work-sharing loop overdecomposed into WithOverdecompose(k)
	// chunks per worker, scheduled on per-worker deques with randomized
	// stealing, plus a cross-rank balancer that moves Block partition
	// boundaries between ranks at safe points. Stealing drains at each
	// loop's barrier, so checkpoints stay byte-identical to a static run.
	Task = core.Task
)

// Loop schedules (the for work-sharing construct).
const (
	Static      = team.Static
	StaticChunk = team.StaticChunk
	Dynamic     = team.Dynamic
	Guided      = team.Guided
)

// Partition kinds for PartitionedField.
const (
	Block       = partition.Block
	Cyclic      = partition.Cyclic
	BlockCyclic = partition.BlockCyclic
)

// ErrInjectedFailure reports that a configured failure injection fired.
var ErrInjectedFailure = core.ErrInjectedFailure

// NewModule creates an empty pluggable module.
func NewModule(name string) *Module { return core.NewModule(name) }

// ParseMode parses the mode names used by Mode.String: "seq", "smp", "dist",
// "hybrid" or "task".
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// For executes an advisable loop body per index.
func For(c *Ctx, id string, lo, hi int, body func(i int)) { core.For(c, id, lo, hi, body) }

// ForSpan executes an advisable loop over contiguous sub-ranges.
func ForSpan(c *Ctx, id string, lo, hi int, body func(lo, hi int)) {
	core.ForSpan(c, id, lo, hi, body)
}

// SumAll computes a deterministic global sum over all active lines of
// execution.
func SumAll(c *Ctx, v float64) float64 { return core.SumAll(c, v) }

// MaxAll computes a deterministic global maximum.
func MaxAll(c *Ctx, v float64) float64 { return core.MaxAll(c, v) }
