package pp_test

import (
	"errors"
	"sync"
	"testing"

	"ppar/pp"
)

// statsRecorder is an AdaptPolicy that never adapts but records the RunStats
// it is handed, verifying the identical-on-every-line invariant: every line
// of execution consulting the policy at the same safe point must observe
// exactly the same stats.
type statsRecorder struct {
	mu   sync.Mutex
	seen map[uint64]pp.RunStats
	diff []uint64
}

func (r *statsRecorder) Decide(s pp.RunStats) pp.AdaptTarget {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen == nil {
		r.seen = map[uint64]pp.RunStats{}
	}
	if prev, ok := r.seen[s.SafePoint]; ok {
		if prev != s {
			r.diff = append(r.diff, s.SafePoint)
		}
	} else {
		r.seen[s.SafePoint] = s
	}
	return pp.AdaptTarget{}
}

// TestRunStatsCheckpointCounters pins the deterministic checkpoint cadence
// counters: with delta checkpointing every 2 safe points compacting every 2
// deltas, a policy at safe point sp must see the full/delta split of the
// schedule (captures F D D F D D ...), the newest due checkpoint, and the
// same values on every thread of the team.
func TestRunStatsCheckpointCounters(t *testing.T) {
	rec := &statsRecorder{}
	var total float64
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(3),
		pp.WithStore(pp.NewMemStore()), pp.WithDeltaCheckpoint(2, 2),
		pp.WithAdaptPolicy(rec))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.diff) > 0 {
		t.Fatalf("stats diverged across lines of execution at safe points %v", rec.diff)
	}
	// counter runs 6 safe points; checkpoints due at 2 (full), 4 (delta)
	// and 6 (delta) under compactEvery=2.
	want := map[uint64][3]int{ // sp -> {FullSaves, DeltaSaves, LastCheckpointSP}
		1: {0, 0, 0},
		2: {1, 0, 2},
		3: {1, 0, 2},
		4: {1, 1, 4},
		5: {1, 1, 4},
		6: {1, 2, 6},
	}
	for sp, w := range want {
		s, ok := rec.seen[sp]
		if !ok {
			t.Fatalf("no stats recorded at safe point %d", sp)
		}
		if s.FullSaves != w[0] || s.DeltaSaves != w[1] || s.LastCheckpointSP != uint64(w[2]) {
			t.Fatalf("sp %d: FullSaves=%d DeltaSaves=%d LastCheckpointSP=%d, want %v",
				sp, s.FullSaves, s.DeltaSaves, s.LastCheckpointSP, w)
		}
	}
	// And the persisted chain agrees with the schedule at run end.
	if rep := eng.Report(); rep.FullSaves != 1 || rep.DeltaSaves != 2 {
		t.Fatalf("persisted saves diverge from the schedule: %+v", rep)
	}
}

// TestRunStatsCountersWithoutDelta covers the plain pipeline (every
// checkpoint is a full save) and the MaxCheckpoints cap.
func TestRunStatsCountersWithoutDelta(t *testing.T) {
	rec := &statsRecorder{}
	var total float64
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(2),
		pp.WithStore(pp.NewMemStore()),
		pp.WithCheckpointEvery(2), pp.WithMaxCheckpoints(1),
		pp.WithAdaptPolicy(rec))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.diff) > 0 {
		t.Fatalf("stats diverged across lines of execution at safe points %v", rec.diff)
	}
	s := rec.seen[6]
	if s.FullSaves != 1 || s.DeltaSaves != 0 || s.LastCheckpointSP != 2 {
		t.Fatalf("capped cadence at sp 6: %+v", s)
	}
}

// TestPolicyStopsRightAfterCheckpoint uses the cadence counters the way an
// AdaptPolicy is meant to: stop exactly at a safe point where a checkpoint
// was just taken, so the stop snapshot duplicates minimal work.
func TestPolicyStopsRightAfterCheckpoint(t *testing.T) {
	store := pp.NewMemStore()
	var total float64
	eng := deployMig(t, &total, pp.Shared, pp.WithThreads(2),
		pp.WithStore(store), pp.WithCheckpointEvery(4),
		pp.WithAdaptPolicy(pp.PolicyFunc(func(s pp.RunStats) pp.AdaptTarget {
			if s.LastCheckpointSP == s.SafePoint {
				return pp.AdaptTarget{Stop: true}
			}
			return pp.AdaptTarget{}
		})))
	err := eng.Run()
	var stopped *pp.ErrStopped
	if !errors.As(err, &stopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	if stopped.SafePoint != 4 {
		t.Fatalf("stopped at %d, want the first checkpointed safe point 4", stopped.SafePoint)
	}
}
