package pp_test

import (
	"errors"
	"testing"

	"ppar/pp"
)

// counter is a complete miniature application written against the public
// API only: it accumulates i² over a partitioned range, with a safe point
// per block.
type counter struct {
	Out    []float64
	Blocks int

	total *float64
}

func (c *counter) Main(ctx *pp.Ctx) {
	ctx.Call("run", c.run)
	ctx.Call("report", func(ctx *pp.Ctx) {
		sum := 0.0
		for _, v := range c.Out {
			sum += v
		}
		*c.total = sum
	})
}

func (c *counter) run(ctx *pp.Ctx) {
	n := len(c.Out)
	per := n / c.Blocks
	for b := 0; b < c.Blocks; b++ {
		lo, hi := b*per, (b+1)*per
		if b == c.Blocks-1 {
			hi = n
		}
		pp.ForSpan(ctx, "cells", lo, hi, func(a, z int) {
			for i := a; i < z; i++ {
				c.Out[i] = float64(i) * float64(i)
			}
		})
		ctx.Call("block", func(*pp.Ctx) {})
	}
}

func modules(mode pp.Mode) []*pp.Module {
	par := pp.NewModule("counter/par").
		ParallelMethod("run").
		PartitionedField("Out", pp.Block).
		LoopPartition("cells", "Out").
		GatherAfter("run", "Out").
		OnMaster("report").
		LoopSchedule("cells", pp.Dynamic, 8)
	ck := pp.NewModule("counter/ckpt").
		SafeData("Out").
		SafePointAfter("block")
	if mode == pp.Sequential {
		return []*pp.Module{ck}
	}
	return []*pp.Module{par, ck}
}

func run(t *testing.T, cfg pp.Config) float64 {
	t.Helper()
	var total float64
	cfg.AppName = "pp-counter"
	cfg.Modules = modules(cfg.Mode)
	eng, err := pp.New(cfg, func() pp.App {
		return &counter{Out: make([]float64, 120), Blocks: 6, total: &total}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return total
}

func TestPublicAPIAcrossModes(t *testing.T) {
	want := 0.0
	for i := 0; i < 120; i++ {
		want += float64(i) * float64(i)
	}
	for _, cfg := range []pp.Config{
		{Mode: pp.Sequential},
		{Mode: pp.Shared, Threads: 3},
		{Mode: pp.Distributed, Procs: 4},
		{Mode: pp.Hybrid, Procs: 2, Threads: 2},
	} {
		if got := run(t, cfg); got != want {
			t.Errorf("%v: total=%v want %v", cfg.Mode, got, want)
		}
	}
}

func TestPublicAPIFailureRecovery(t *testing.T) {
	want := run(t, pp.Config{Mode: pp.Sequential})
	dir := t.TempDir()
	var total float64
	factory := func() pp.App {
		return &counter{Out: make([]float64, 120), Blocks: 6, total: &total}
	}
	cfg := pp.Config{
		Mode: pp.Distributed, Procs: 3, AppName: "pp-counter",
		Modules:       modules(pp.Distributed),
		CheckpointDir: dir, CheckpointEvery: 2, FailAtSafePoint: 5,
	}
	eng, err := pp.New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		t.Fatalf("want injected failure, got %v", err)
	}
	cfg.FailAtSafePoint = 0
	eng2, err := pp.New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("recovered total=%v want %v", total, want)
	}
}

func TestPublicAPIAdaptation(t *testing.T) {
	want := run(t, pp.Config{Mode: pp.Sequential})
	got := run(t, pp.Config{
		Mode: pp.Shared, Threads: 2,
		AdaptAtSafePoint: 3, AdaptTo: pp.AdaptTarget{Threads: 4},
	})
	if got != want {
		t.Fatalf("adapted total=%v want %v", got, want)
	}
}

func TestPublicAPIReductions(t *testing.T) {
	var got float64
	mod := pp.NewModule("red").ParallelMethod("run")
	eng, err := pp.New(pp.Config{Mode: pp.Shared, Threads: 4, AppName: "pp-red",
		Modules: []*pp.Module{mod}},
		func() pp.App { return &sumApp{out: &got} })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("SumAll over 4 threads = %v, want 4", got)
	}
}

type sumApp struct{ out *float64 }

func (a *sumApp) Main(ctx *pp.Ctx) {
	ctx.Call("run", func(c *pp.Ctx) {
		s := pp.SumAll(c, 1)
		if c.IsMasterThread() {
			*a.out = s
		}
	})
}
