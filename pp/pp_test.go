package pp_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ppar/pp"
)

// counter is a complete miniature application written against the public
// API only: it accumulates i² over a partitioned range, with a safe point
// per block.
type counter struct {
	Out    []float64
	Blocks int

	total *float64
}

func (c *counter) Main(ctx *pp.Ctx) {
	ctx.Call("run", c.run)
	ctx.Call("report", func(ctx *pp.Ctx) {
		sum := 0.0
		for _, v := range c.Out {
			sum += v
		}
		*c.total = sum
	})
}

func (c *counter) run(ctx *pp.Ctx) {
	n := len(c.Out)
	per := n / c.Blocks
	for b := 0; b < c.Blocks; b++ {
		lo, hi := b*per, (b+1)*per
		if b == c.Blocks-1 {
			hi = n
		}
		pp.ForSpan(ctx, "cells", lo, hi, func(a, z int) {
			for i := a; i < z; i++ {
				c.Out[i] = float64(i) * float64(i)
			}
		})
		ctx.Call("block", func(*pp.Ctx) {})
	}
}

func modules(mode pp.Mode) []*pp.Module {
	par := pp.NewModule("counter/par").
		ParallelMethod("run").
		PartitionedField("Out", pp.Block).
		LoopPartition("cells", "Out").
		GatherAfter("run", "Out").
		OnMaster("report").
		LoopSchedule("cells", pp.Dynamic, 8)
	ck := pp.NewModule("counter/ckpt").
		SafeData("Out").
		SafePointAfter("block")
	if mode == pp.Sequential {
		return []*pp.Module{ck}
	}
	return []*pp.Module{par, ck}
}

// deploy builds the counter deployment from functional options, appending
// the mode's modules and a stable name.
func deploy(t *testing.T, total *float64, mode pp.Mode, opts ...pp.Option) *pp.Engine {
	t.Helper()
	opts = append([]pp.Option{
		pp.WithName("pp-counter"),
		pp.WithMode(mode),
		pp.WithModules(modules(mode)...),
	}, opts...)
	eng, err := pp.New(func() pp.App {
		return &counter{Out: make([]float64, 120), Blocks: 6, total: total}
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func run(t *testing.T, mode pp.Mode, opts ...pp.Option) float64 {
	t.Helper()
	var total float64
	eng := deploy(t, &total, mode, opts...)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return total
}

func wantTotal() float64 {
	want := 0.0
	for i := 0; i < 120; i++ {
		want += float64(i) * float64(i)
	}
	return want
}

func TestPublicAPIAcrossModes(t *testing.T) {
	want := wantTotal()
	for _, d := range []struct {
		mode pp.Mode
		opts []pp.Option
	}{
		{pp.Sequential, nil},
		{pp.Shared, []pp.Option{pp.WithThreads(3)}},
		{pp.Distributed, []pp.Option{pp.WithProcs(4)}},
		{pp.Hybrid, []pp.Option{pp.WithProcs(2), pp.WithThreads(2)}},
		{pp.Task, []pp.Option{pp.WithProcs(2), pp.WithThreads(2)}},
		{pp.Task, []pp.Option{pp.WithThreads(4), pp.WithOverdecompose(3)}},
	} {
		if got := run(t, d.mode, d.opts...); got != want {
			t.Errorf("%v: total=%v want %v", d.mode, got, want)
		}
	}
}

func TestPublicAPIFailureRecovery(t *testing.T) {
	want := run(t, pp.Sequential)
	dir := t.TempDir()
	var total float64
	eng := deploy(t, &total, pp.Distributed, pp.WithProcs(3),
		pp.WithCheckpointDir(dir), pp.WithCheckpointEvery(2),
		pp.WithFailureAt(5, 0))
	if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		t.Fatalf("want injected failure, got %v", err)
	}
	eng2 := deploy(t, &total, pp.Distributed, pp.WithProcs(3),
		pp.WithCheckpointDir(dir), pp.WithCheckpointEvery(2))
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("recovered total=%v want %v", total, want)
	}
}

func TestPublicAPIAdaptation(t *testing.T) {
	want := run(t, pp.Sequential)
	got := run(t, pp.Shared, pp.WithThreads(2),
		pp.WithAdaptAt(3, pp.AdaptTarget{Threads: 4}))
	if got != want {
		t.Fatalf("adapted total=%v want %v", got, want)
	}
}

func TestPublicAPIAdaptPolicy(t *testing.T) {
	want := run(t, pp.Sequential)
	var eng *pp.Engine
	got := func() float64 {
		var total float64
		eng = deploy(t, &total, pp.Shared, pp.WithThreads(2),
			pp.WithAdaptPolicy(pp.Schedule(
				pp.AdaptStep{At: 2, Target: pp.AdaptTarget{Threads: 4}},
				pp.AdaptStep{At: 4, Target: pp.AdaptTarget{Threads: 2}},
			)))
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return total
	}()
	if got != want {
		t.Fatalf("adapted total=%v want %v", got, want)
	}
	if !eng.Report().Adapted {
		t.Fatal("schedule policy did not adapt")
	}
}

func TestChainedAdaptSugar(t *testing.T) {
	// Repeated WithAdaptAt calls chain: both reshapings fire.
	want := run(t, pp.Sequential)
	var total float64
	eng := deploy(t, &total, pp.Shared, pp.WithThreads(2),
		pp.WithAdaptAt(2, pp.AdaptTarget{Threads: 4}),
		pp.WithAdaptAt(4, pp.AdaptTarget{Threads: 2}))
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !eng.Report().Adapted {
		t.Fatal("chained WithAdaptAt did not adapt")
	}
	if total != want {
		t.Fatalf("total=%v want %v", total, want)
	}
}

func TestSequentialAdaptPolicyAbortsLoudly(t *testing.T) {
	// A policy requesting an adaptation that Sequential mode cannot honour
	// must abort the run with a descriptive error, not silently no-op.
	var total float64
	eng := deploy(t, &total, pp.Sequential,
		pp.WithAdaptPolicy(pp.AdaptAt(2, pp.AdaptTarget{Threads: 4})))
	err := eng.Run()
	if err == nil || !strings.Contains(err.Error(), "Sequential mode cannot adapt") {
		t.Fatalf("want a loud Sequential-cannot-adapt error, got %v", err)
	}
}

func TestPublicAPIReductions(t *testing.T) {
	var got float64
	mod := pp.NewModule("red").ParallelMethod("run")
	eng, err := pp.New(func() pp.App { return &sumApp{out: &got} },
		pp.WithName("pp-red"), pp.WithMode(pp.Shared), pp.WithThreads(4),
		pp.WithModules(mod))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("SumAll over 4 threads = %v, want 4", got)
	}
}

type sumApp struct{ out *float64 }

func (a *sumApp) Main(ctx *pp.Ctx) {
	ctx.Call("run", func(c *pp.Ctx) {
		s := pp.SumAll(c, 1)
		if c.IsMasterThread() {
			*a.out = s
		}
	})
}

func TestNewFromConfigCompat(t *testing.T) {
	// The pre-options entry point still assembles the same deployment.
	var total float64
	cfg := pp.Config{
		AppName: "pp-counter", Mode: pp.Shared, Threads: 3,
		Modules: modules(pp.Shared),
	}
	eng, err := pp.NewFromConfig(cfg, func() pp.App {
		return &counter{Out: make([]float64, 120), Blocks: 6, total: &total}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := wantTotal(); total != want {
		t.Fatalf("total=%v want %v", total, want)
	}
}

func TestRunContextCancelStopsAndResumes(t *testing.T) {
	want := run(t, pp.Sequential)
	store := pp.NewMemStore()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run: stop at the first scheduled safe point
	var total float64
	eng := deploy(t, &total, pp.Shared, pp.WithThreads(2), pp.WithStore(store))
	err := eng.RunContext(ctx)
	var stopped *pp.ErrStopped
	if !errors.As(err, &stopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stop error does not wrap the context cause: %v", err)
	}
	if sp := stopped.SafePoint; sp == 0 || sp >= 6 {
		t.Fatalf("stopped at safe point %d, want an early one", sp)
	}

	// Relaunch (any mode): replays from the snapshot and completes.
	eng2 := deploy(t, &total, pp.Shared, pp.WithThreads(4), pp.WithStore(store))
	if err := eng2.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("resumed total=%v want %v", total, want)
	}
	if !eng2.Report().Restarted {
		t.Fatal("second run did not restart from the snapshot")
	}
}

func TestRunContextCancelWithoutStore(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var total float64
	eng := deploy(t, &total, pp.Sequential)
	err := eng.RunContext(ctx)
	var stopped *pp.ErrStopped
	if !errors.As(err, &stopped) {
		t.Fatalf("want graceful stop without a store, got %v", err)
	}
}

func TestRequestStop(t *testing.T) {
	store := pp.NewMemStore()
	var total float64
	eng := deploy(t, &total, pp.Shared, pp.WithThreads(2), pp.WithStore(store))
	eng.RequestStop() // before the run: honoured at the first scheduled safe point
	err := eng.Run()
	var stopped *pp.ErrStopped
	if !errors.As(err, &stopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatal("RequestStop must not report a context cause")
	}
}

// The asynchronous pipeline through the public API: captures overlap
// computation, the writer drains at exit, and crash recovery still lands on
// the uninterrupted result.
func TestPublicAPIAsyncCheckpoint(t *testing.T) {
	want := run(t, pp.Sequential)
	dir := t.TempDir()
	var total float64
	eng := deploy(t, &total, pp.Shared, pp.WithThreads(3),
		pp.WithCheckpointDir(dir), pp.WithCheckpointEvery(2),
		pp.WithAsyncCheckpoint(), pp.WithFailureAt(5, 0))
	if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		t.Fatalf("want injected failure, got %v", err)
	}
	if eng.Report().Checkpoints == 0 {
		t.Fatal("no checkpoint persisted before the failure")
	}
	eng2 := deploy(t, &total, pp.Shared, pp.WithThreads(3),
		pp.WithCheckpointDir(dir), pp.WithCheckpointEvery(2),
		pp.WithAsyncCheckpoint())
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("recovered total=%v want %v", total, want)
	}
	if !eng2.Report().Restarted {
		t.Fatal("restart not recorded")
	}
}

// Shard checkpoints compose with the asynchronous pipeline (the former
// configuration error): per-rank captures persist through the background
// pool and restart lands on the uninterrupted result. The deeper coverage
// lives in shard_test.go; this pins the construction path.
func TestAsyncShardConfigComposes(t *testing.T) {
	want := run(t, pp.Sequential)
	store := pp.NewMemStore()
	var total float64
	eng := deploy(t, &total, pp.Distributed, pp.WithProcs(2),
		pp.WithStore(store), pp.WithCheckpointEvery(2),
		pp.WithShardCheckpoints(), pp.WithAsyncCheckpoint(),
		pp.WithFailureAt(5, 0))
	if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		t.Fatalf("want injected failure, got %v", err)
	}
	eng2 := deploy(t, &total, pp.Distributed, pp.WithProcs(2),
		pp.WithStore(store), pp.WithCheckpointEvery(2),
		pp.WithShardCheckpoints(), pp.WithAsyncCheckpoint())
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if total != want {
		t.Fatalf("recovered total=%v want %v", total, want)
	}
}
