package pp_test

import (
	"errors"
	"testing"

	"ppar/pp"
)

// The scheduler counters feed the autoscaler's queue-pressure estimators, so
// their chunk component must be a pure function of the deployment — not of
// thread timing, restarts or migrations. Steals and idle scans are genuinely
// nondeterministic (randomized stealing); Chunks is the deterministic signal
// the controller leans on.

func taskCounter(t *testing.T, opts ...pp.Option) *pp.Engine {
	t.Helper()
	var total float64
	return deploy(t, &total, pp.Task,
		append([]pp.Option{pp.WithThreads(2), pp.WithOverdecompose(4)}, opts...)...)
}

// TestSchedChunksDeterministicAcrossRestart: a clean checkpoint-and-stop
// (the fleet's suspend path) freezes the chunk counter at the blocks
// actually dispatched, and the restarted leg replays the identical schedule
// — its counter lands exactly on the uninterrupted run's value, however the
// work was split across legs.
func TestSchedChunksDeterministicAcrossRestart(t *testing.T) {
	ref := taskCounter(t)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	want := ref.Report().TaskChunks
	if want == 0 {
		t.Fatal("reference run dispatched no chunks")
	}

	// Repeatability: chunk dispatch is schedule-shaped, not timing-shaped.
	again := taskCounter(t)
	if err := again.Run(); err != nil {
		t.Fatal(err)
	}
	if got := again.Report().TaskChunks; got != want {
		t.Fatalf("uninterrupted chunk count not deterministic: %d vs %d", got, want)
	}

	store := pp.NewMemStore()
	leg1 := taskCounter(t, pp.WithStore(store), pp.WithCheckpointEvery(2), pp.WithStopAt(3))
	var stopped *pp.ErrStopped
	if err := leg1.Run(); !errors.As(err, &stopped) {
		t.Fatalf("first leg: %v, want checkpoint-and-stop", err)
	}
	atStop := leg1.Report().TaskChunks
	if atStop == 0 || atStop >= want {
		t.Fatalf("stopped leg dispatched %d chunks, want a strict prefix of %d", atStop, want)
	}
	if sched := leg1.Report().Sched(); sched.Chunks != atStop {
		t.Fatalf("metrics bridge disagrees with the report: %d vs %d", sched.Chunks, atStop)
	}

	// The stop point is deterministic, so the frozen counter is too.
	leg1b := taskCounter(t, pp.WithStore(pp.NewMemStore()), pp.WithCheckpointEvery(2), pp.WithStopAt(3))
	if err := leg1b.Run(); !errors.As(err, &stopped) {
		t.Fatalf("repeated first leg: %v, want checkpoint-and-stop", err)
	}
	if got := leg1b.Report().TaskChunks; got != atStop {
		t.Fatalf("stopped-leg chunk count not deterministic: %d vs %d", got, atStop)
	}

	leg2 := taskCounter(t, pp.WithStore(store), pp.WithCheckpointEvery(2))
	if err := leg2.Run(); err != nil {
		t.Fatal(err)
	}
	if !leg2.Report().Restarted {
		t.Fatal("restart not recorded")
	}
	if got := leg2.Report().TaskChunks; got != want {
		t.Fatalf("restarted run dispatched %d chunks, want the uninterrupted %d", got, want)
	}
}

// TestSchedChunksFreezeAtMigration: an in-process migration out of Task mode
// stops chunk dispatch at the migration safe point — the counter equals the
// checkpoint-and-stop freeze at the same point, and the post-migration mode
// adds nothing. The autoscaler reads this as "queue pressure up to the
// move", never a mixed-mode hybrid number.
func TestSchedChunksFreezeAtMigration(t *testing.T) {
	leg := taskCounter(t, pp.WithStore(pp.NewMemStore()), pp.WithCheckpointEvery(2), pp.WithStopAt(3))
	var stopped *pp.ErrStopped
	if err := leg.Run(); !errors.As(err, &stopped) {
		t.Fatalf("stop leg: %v, want checkpoint-and-stop", err)
	}
	atStop := leg.Report().TaskChunks

	mig := taskCounter(t, pp.WithAdaptAt(3, pp.AdaptTarget{Mode: pp.Shared, Threads: 2}))
	if err := mig.Run(); err != nil {
		t.Fatal(err)
	}
	rep := mig.Report()
	if rep.Migrations != 1 {
		t.Fatalf("expected one migration, got %+v", rep)
	}
	if rep.TaskChunks != atStop {
		t.Fatalf("migrated run froze at %d chunks, want %d (the stop freeze at the same safe point)",
			rep.TaskChunks, atStop)
	}
	if sched := rep.Sched(); sched.Chunks != rep.TaskChunks || sched.Steals != rep.Steals {
		t.Fatalf("metrics bridge disagrees with the report: %+v vs %+v", sched, rep)
	}
}
