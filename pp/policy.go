package pp

import (
	"time"

	"ppar/internal/adapt"
	"ppar/internal/core"
)

// AdaptPolicy decides, at each safe point, whether the run should reshape
// its parallelism or checkpoint-and-stop. Decide must be a pure function of
// the RunStats (every line of execution evaluates it independently and all
// must agree). Plug one in with WithAdaptPolicy; asynchronous sources use
// WithAdaptManager or Engine.RequestAdapt instead.
type AdaptPolicy = core.AdaptPolicy

// RunStats is the deterministic view of the run handed to an AdaptPolicy.
type RunStats = core.RunStats

// PolicyFunc adapts a plain function to the AdaptPolicy interface.
type PolicyFunc = core.PolicyFunc

// AdaptStep is one step of a Schedule policy.
type AdaptStep = core.AdaptStep

// AdaptAt returns a policy that requests target exactly at safe point sp.
func AdaptAt(sp uint64, target AdaptTarget) AdaptPolicy { return core.AdaptAt(sp, target) }

// StopAt returns a policy that checkpoints and stops the run exactly at
// safe point sp — the paper's adaptation by restart.
func StopAt(sp uint64) AdaptPolicy { return core.StopAt(sp) }

// Schedule returns a policy replaying a fixed sequence of reshapings keyed
// by safe point — the deterministic analogue of a resource-manager trace,
// usable in every mode.
func Schedule(steps ...AdaptStep) AdaptPolicy { return core.Schedule(steps...) }

// Policies chains policies; the first non-zero decision wins.
func Policies(ps ...AdaptPolicy) AdaptPolicy { return core.Policies(ps...) }

// AdaptDriver is an external, asynchronous source of adaptation requests —
// the resource manager the paper assumes. Attach one with WithAdaptManager.
type AdaptDriver = core.AdaptDriver

// AdaptManager replays a wall-clock schedule of resource-availability
// events against the running engine (grants become expansion requests,
// revocations contraction requests). It implements AdaptDriver.
type AdaptManager = adapt.Manager

// AdaptEvent is one change in the resources committed to the application.
type AdaptEvent = adapt.Event

// NewAdaptManager creates a manager for the given schedule.
func NewAdaptManager(events ...AdaptEvent) *AdaptManager { return adapt.NewManager(events...) }

// Grant builds an expansion event for an AdaptManager.
func Grant(after time.Duration, target AdaptTarget) AdaptEvent { return adapt.Grant(after, target) }

// Revoke builds a contraction event for an AdaptManager.
func Revoke(after time.Duration, target AdaptTarget) AdaptEvent { return adapt.Revoke(after, target) }

// Migrate builds a cross-mode migration event for an AdaptManager: at the
// next safe point the coordinator reaches, the run migrates in-process to
// the given mode (target's Threads/Procs size the new executor).
func Migrate(after time.Duration, mode Mode, target AdaptTarget) AdaptEvent {
	return adapt.Migrate(after, mode, target)
}

// StepPolicy recommends a team size that meets a deadline from an observed
// per-safe-point duration — a minimal self-adaptation heuristic to pair
// with a monitoring loop and Engine.RequestAdapt.
type StepPolicy = adapt.StepPolicy
