package pp

import (
	"ppar/internal/autoscale"
	"ppar/internal/core"
)

// AutoScale is the closed-loop elastic autoscaler: an AdaptDriver that
// fits per-(Mode, Threads, Procs) iteration-time and efficiency curves
// from the live run — the analytic performance model as prior, scheduler
// queue-pressure counters as the skew signal — and requests resizes or
// cross-mode migrations at safe points when the predicted saving clears
// the measured migration cost with hysteresis. Create with NewAutoScale,
// attach with WithAutoScale.
type AutoScale = autoscale.AutoScale

// AutoScaleConfig tunes the feedback loop; the zero value is usable.
type AutoScaleConfig = autoscale.Config

// AutoScaleDecision records one issued reconfiguration request.
type AutoScaleDecision = autoscale.Decision

// AutoScaleShape is one observed (Mode, Threads, Procs) configuration.
type AutoScaleShape = autoscale.Shape

// NewAutoScale builds an autoscaler. One AutoScale may drive a sequence
// of engine launches (run → checkpoint-stop → relaunch): its curve table
// and move budget persist across them.
func NewAutoScale(cfg AutoScaleConfig) *AutoScale { return autoscale.New(cfg) }

// WithAutoScale attaches a feedback autoscaler as the run's adaptation
// driver — shorthand for WithAdaptManager(a) that reads as what it does.
func WithAutoScale(a *AutoScale) Option {
	return func(c *core.Config) { c.Driver = a }
}
