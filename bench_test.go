package ppar

// One benchmark per figure of the paper's evaluation (Figures 3-9), running
// the REAL engine at reduced scale, plus ablation benches for the design
// choices DESIGN.md calls out. `go run ./cmd/ppbench` prints the same
// series as tables (modelled at paper scale by default, -real for these
// code paths). Everything is written against the public options API of
// ppar/pp.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"context"

	"ppar/internal/autoscale"
	"ppar/internal/fleet"
	"ppar/internal/jgf"
	"ppar/internal/jgf/invasive"
	"ppar/internal/jgf/refimpl"
	"ppar/internal/md"
	"ppar/internal/metrics"
	"ppar/internal/serial"
	"ppar/internal/team"
	"ppar/pp"
)

const (
	benchN     = 256
	benchIters = 30
)

func benchOpts(mode pp.Mode, pe int, extra ...pp.Option) []pp.Option {
	opts := []pp.Option{
		pp.WithName("bench-sor"),
		pp.WithMode(mode),
		pp.WithModules(jgf.SORModules(mode)...),
	}
	switch mode {
	case pp.Shared:
		opts = append(opts, pp.WithThreads(pe))
	case pp.Distributed:
		opts = append(opts, pp.WithProcs(pe))
	case pp.Task:
		opts = append(opts, pp.WithThreads(pe), pp.WithOverdecompose(8))
	}
	return append(opts, extra...)
}

func runBench(b *testing.B, n, iters int, opts ...pp.Option) pp.Report {
	b.Helper()
	res := &jgf.SORResult{}
	eng, err := pp.New(func() pp.App { return jgf.NewSOR(n, iters, res) }, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	return eng.Report()
}

// --- Figure 3: checkpoint overhead --------------------------------------

func BenchmarkFig3_CheckpointOverhead(b *testing.B) {
	envs := []struct {
		name string
		mode pp.Mode
		pe   int
	}{
		{"seq", pp.Sequential, 1},
		{"2LE", pp.Shared, 2}, {"4LE", pp.Shared, 4},
		{"2P", pp.Distributed, 2}, {"4P", pp.Distributed, 4},
	}
	for _, e := range envs {
		e := e
		b.Run(e.name+"/original", func(b *testing.B) {
			// Parallelisation only, no checkpoint module.
			opts := []pp.Option{pp.WithName("bench-sor"), pp.WithMode(e.mode)}
			switch e.mode {
			case pp.Shared:
				opts = append(opts, pp.WithThreads(e.pe), pp.WithModules(jgf.SORSharedModule()))
			case pp.Distributed:
				opts = append(opts, pp.WithProcs(e.pe), pp.WithModules(jgf.SORDistModule()))
			}
			for i := 0; i < b.N; i++ {
				runBench(b, benchN, benchIters, opts...)
			}
		})
		b.Run(e.name+"/ckpt0", func(b *testing.B) {
			opts := benchOpts(e.mode, e.pe, pp.WithCheckpointDir(b.TempDir()))
			for i := 0; i < b.N; i++ {
				runBench(b, benchN, benchIters, opts...)
			}
		})
		b.Run(e.name+"/ckpt1", func(b *testing.B) {
			opts := benchOpts(e.mode, e.pe,
				pp.WithCheckpointDir(b.TempDir()),
				pp.WithCheckpointEvery(benchIters/2),
				pp.WithMaxCheckpoints(1))
			for i := 0; i < b.N; i++ {
				runBench(b, benchN, benchIters, opts...)
			}
		})
	}
	b.Run("seq/invasive-ckpt1", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			s := invasive.New(benchN, benchIters)
			if err := s.EnableCheckpoints(dir, benchIters/2, 1); err != nil {
				b.Fatal(err)
			}
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 4: time to save checkpoint data ------------------------------

func BenchmarkFig4_SaveCheckpoint(b *testing.B) {
	envs := []struct {
		name string
		mode pp.Mode
		pe   int
	}{
		{"seq", pp.Sequential, 1},
		{"4LE", pp.Shared, 4},
		{"4P-gather", pp.Distributed, 4},
	}
	for _, e := range envs {
		e := e
		b.Run(e.name, func(b *testing.B) {
			opts := benchOpts(e.mode, e.pe,
				pp.WithCheckpointDir(b.TempDir()),
				pp.WithCheckpointEvery(benchIters/2),
				pp.WithMaxCheckpoints(1))
			var save, bytes int64
			for i := 0; i < b.N; i++ {
				rep := runBench(b, benchN, benchIters, opts...)
				save += rep.SaveTotal.Nanoseconds()
				bytes = int64(rep.SaveBytes)
			}
			b.ReportMetric(float64(save)/float64(b.N), "save-ns/op")
			b.ReportMetric(float64(bytes), "ckpt-bytes")
		})
	}
}

// --- Figure 5: restart overhead ------------------------------------------

func BenchmarkFig5_Restart(b *testing.B) {
	for _, e := range []struct {
		name string
		mode pp.Mode
		pe   int
	}{
		{"seq", pp.Sequential, 1},
		{"4LE", pp.Shared, 4},
		{"4P", pp.Distributed, 4},
	} {
		e := e
		b.Run(e.name, func(b *testing.B) {
			var replay, load int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				res := &jgf.SORResult{}
				factory := func() pp.App { return jgf.NewSOR(benchN, benchIters, res) }
				eng, err := pp.New(factory, benchOpts(e.mode, e.pe,
					pp.WithCheckpointDir(dir),
					pp.WithCheckpointEvery(10),
					pp.WithFailureAt(benchIters-5, 0))...)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
					b.Fatalf("failure did not fire: %v", err)
				}
				eng2, err := pp.New(factory, benchOpts(e.mode, e.pe,
					pp.WithCheckpointDir(dir),
					pp.WithCheckpointEvery(10))...)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := eng2.Run(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				rep := eng2.Report()
				replay += rep.ReplayTime.Nanoseconds()
				load += rep.LoadTotal.Nanoseconds()
			}
			b.ReportMetric(float64(replay)/float64(b.N), "replay-ns/op")
			b.ReportMetric(float64(load)/float64(b.N), "load-ns/op")
		})
	}
}

// --- Figure 6: restart on more resources ----------------------------------

func BenchmarkFig6_RestartWider(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		res := &jgf.SORResult{}
		factory := func() pp.App { return jgf.NewSOR(benchN, benchIters, res) }
		eng, err := pp.New(factory, benchOpts(pp.Distributed, 2,
			pp.WithCheckpointDir(dir), pp.WithStopAt(benchIters/2))...)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := eng.Run(); err == nil {
			b.Fatal("did not stop for adaptation")
		}
		eng2, err := pp.New(factory, benchOpts(pp.Distributed, 8,
			pp.WithCheckpointDir(dir))...)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng2.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: run-time expansion vs restart expansion --------------------

func BenchmarkFig7_RuntimeAdapt(b *testing.B) {
	for _, from := range []int{2, 4} {
		from := from
		b.Run(fmt.Sprintf("from-%dLE", from), func(b *testing.B) {
			opts := benchOpts(pp.Shared, from,
				pp.WithAdaptAt(benchIters/2, pp.AdaptTarget{Threads: 8}))
			for i := 0; i < b.N; i++ {
				rep := runBench(b, benchN, benchIters, opts...)
				if !rep.Adapted {
					b.Fatal("did not adapt")
				}
			}
		})
	}
}

func BenchmarkFig7_RestartAdapt(b *testing.B) {
	for _, from := range []int{2, 4} {
		from := from
		b.Run(fmt.Sprintf("from-%dLE", from), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				res := &jgf.SORResult{}
				factory := func() pp.App { return jgf.NewSOR(benchN, benchIters, res) }
				eng, err := pp.New(factory, benchOpts(pp.Shared, from,
					pp.WithCheckpointDir(dir), pp.WithStopAt(benchIters/2))...)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := eng.Run(); err == nil {
					b.Fatal("did not stop")
				}
				eng2, err := pp.New(factory, benchOpts(pp.Shared, 8,
					pp.WithCheckpointDir(dir))...)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng2.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 8: over-decomposition ------------------------------------------

func BenchmarkFig8_OverDecomposition(b *testing.B) {
	const pe = 4
	for _, of := range []int{1, 2, 4, 8, 16} {
		of := of
		b.Run(fmt.Sprintf("of-%d", of), func(b *testing.B) {
			tasks := pe * of
			for i := 0; i < b.N; i++ {
				g := jgf.NewSOR(benchN, benchIters, nil)
				team.OverDecompose(tasks, pe, benchIters, func(task, iter int) {
					lo, hi := team.StaticSpan(task, tasks, 1, benchN-1)
					_ = lo
					_ = hi
					benchSweep(g, lo, hi)
				})
			}
		})
	}
}

func benchSweep(g *jgf.SOR, lo, hi int) {
	omega, oneMinus := g.Omega, 1-g.Omega
	for colour := 0; colour < 2; colour++ {
		for i := lo; i < hi; i++ {
			row := g.G[i]
			up, down := g.G[i-1], g.G[i+1]
			for j := 1 + (i+colour)%2; j < g.N-1; j += 2 {
				row[j] = omega*0.25*(up[j]+down[j]+row[j-1]+row[j+1]) + oneMinus*row[j]
			}
		}
	}
}

// --- Figure 9: adaptability overhead ----------------------------------------

func BenchmarkFig9_JGFSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		refimpl.Sequential(benchN, benchIters)
	}
}

func BenchmarkFig9_JGFThreads(b *testing.B) {
	for _, pe := range []int{2, 4} {
		pe := pe
		b.Run(fmt.Sprintf("%dT", pe), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				refimpl.Threads(benchN, benchIters, pe)
			}
		})
	}
}

func BenchmarkFig9_JGFMPI(b *testing.B) {
	for _, pe := range []int{2, 4} {
		pe := pe
		b.Run(fmt.Sprintf("%dP", pe), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := refimpl.MPI(benchN, benchIters, pe, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig9_Adaptive(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode pp.Mode
		pe   int
	}{{"seq", pp.Sequential, 1}, {"4LE", pp.Shared, 4}, {"4P", pp.Distributed, 4}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			opts := benchOpts(tc.mode, tc.pe)
			for i := 0; i < b.N; i++ {
				runBench(b, benchN, benchIters, opts...)
			}
		})
	}
}

// --- Ablations ---------------------------------------------------------------

// Gather-at-master vs per-rank shard checkpoints (§IV.A's two distributed
// alternatives).
func BenchmarkAblation_DistCheckpointStrategy(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards bool
	}{{"gather-at-master", false}, {"local-shards", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			opts := benchOpts(pp.Distributed, 4,
				pp.WithCheckpointDir(b.TempDir()),
				pp.WithCheckpointEvery(10))
			if tc.shards {
				opts = append(opts, pp.WithShardCheckpoints())
			}
			var save int64
			for i := 0; i < b.N; i++ {
				rep := runBench(b, benchN, benchIters, opts...)
				save += rep.SaveTotal.Nanoseconds()
			}
			b.ReportMetric(float64(save)/float64(b.N), "save-ns/op")
		})
	}
}

// Checkpoint backends: the pluggable Store swap (filesystem vs in-memory vs
// gzip-compressed).
func BenchmarkAblation_StoreBackend(b *testing.B) {
	stores := []struct {
		name string
		mk   func(b *testing.B) pp.Store
	}{
		{"fs", func(b *testing.B) pp.Store {
			s, err := pp.NewFSStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
		{"mem", func(b *testing.B) pp.Store { return pp.NewMemStore() }},
		{"gzip-fs", func(b *testing.B) pp.Store {
			s, err := pp.NewFSStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return pp.NewGzipStore(s)
		}},
		{"gzip-mem", func(b *testing.B) pp.Store { return pp.NewGzipStore(pp.NewMemStore()) }},
	}
	for _, tc := range stores {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			opts := benchOpts(pp.Shared, 4,
				pp.WithStore(tc.mk(b)),
				pp.WithCheckpointEvery(10))
			var save int64
			for i := 0; i < b.N; i++ {
				rep := runBench(b, benchN, benchIters, opts...)
				save += rep.SaveTotal.Nanoseconds()
			}
			b.ReportMetric(float64(save)/float64(b.N), "save-ns/op")
		})
	}
}

// Safe-point interval: checkpoint overhead vs computation lost (the §IV.A
// trade-off).
func BenchmarkAblation_CheckpointInterval(b *testing.B) {
	for _, every := range []uint64{5, 10, 15, 30} {
		every := every
		b.Run(fmt.Sprintf("every-%d", every), func(b *testing.B) {
			opts := benchOpts(pp.Sequential, 1,
				pp.WithCheckpointDir(b.TempDir()),
				pp.WithCheckpointEvery(every))
			for i := 0; i < b.N; i++ {
				runBench(b, benchN, benchIters, opts...)
			}
		})
	}
}

// Loop schedules: the pluggable module swap of §III.B.
func BenchmarkAblation_LoopSchedule(b *testing.B) {
	mods := map[string]*pp.Module{
		"static":     jgf.SORSharedModule(),
		"dynamic-8":  jgf.SORSharedDynamicModule(8),
		"dynamic-32": jgf.SORSharedDynamicModule(32),
	}
	for name, mod := range mods {
		mod := mod
		b.Run(name, func(b *testing.B) {
			opts := []pp.Option{
				pp.WithName("bench-sor"),
				pp.WithMode(pp.Shared), pp.WithThreads(4),
				pp.WithModules(mod, jgf.SORCheckpointModule()),
			}
			for i := 0; i < b.N; i++ {
				runBench(b, benchN, benchIters, opts...)
			}
		})
	}
}

// Transports: in-process channels vs TCP loopback.
func BenchmarkAblation_Transport(b *testing.B) {
	for _, tc := range []struct {
		name string
		tcp  bool
	}{{"inproc", false}, {"tcp", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			opts := benchOpts(pp.Distributed, 4)
			if tc.tcp {
				opts = append(opts, pp.WithTCP())
			}
			for i := 0; i < b.N; i++ {
				runBench(b, benchN, benchIters, opts...)
			}
		})
	}
}

// The cost of an advised call vs the machinery-free base code: what the
// "pluggable" indirection itself costs.
func BenchmarkAblation_CallOverhead(b *testing.B) {
	b.Run("unplugged-engine", func(b *testing.B) {
		opts := []pp.Option{pp.WithName("bench-sor"), pp.WithMode(pp.Sequential)}
		for i := 0; i < b.N; i++ {
			runBench(b, benchN, benchIters, opts...)
		}
	})
	b.Run("hand-written", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refimpl.Sequential(benchN, benchIters)
		}
	})
}

// --- In-process cross-mode migration --------------------------------------

// BenchmarkModeMigration measures the cost of migrating a live run across
// executors at a safe point (snapshot to the internal memory store, executor
// teardown, relaunch, replay to the migration point) against the in-place
// and restart-free baseline. MigrationTotal is the blocked span from the
// snapshot capture to the replay target under the new executor.
func BenchmarkModeMigration(b *testing.B) {
	// The full module set: a migrating run carries the advice of every mode
	// it may land in, exactly like a cross-mode restart.
	base := []pp.Option{
		pp.WithName("bench-sor"),
		pp.WithModules(jgf.SORModules(pp.Hybrid)...),
	}
	for _, tc := range []struct {
		name string
		opts []pp.Option
	}{
		{"smp4-to-dist4", []pp.Option{
			pp.WithMode(pp.Shared), pp.WithThreads(4),
			pp.WithAdaptAt(benchIters/2, pp.AdaptTarget{Mode: pp.Distributed, Procs: 4})}},
		{"dist4-to-smp4", []pp.Option{
			pp.WithMode(pp.Distributed), pp.WithProcs(4),
			pp.WithAdaptAt(benchIters/2, pp.AdaptTarget{Mode: pp.Shared, Threads: 4})}},
		{"smp4-to-dist4-ckpt", []pp.Option{
			pp.WithMode(pp.Shared), pp.WithThreads(4),
			pp.WithStore(pp.NewMemStore()), pp.WithCheckpointEvery(5),
			pp.WithAdaptAt(benchIters/2, pp.AdaptTarget{Mode: pp.Distributed, Procs: 4})}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var blocked int64
			for i := 0; i < b.N; i++ {
				rep := runBench(b, benchN, benchIters, append(append([]pp.Option{}, base...), tc.opts...)...)
				if rep.Migrations != 1 {
					b.Fatalf("want 1 migration, got %+v", rep)
				}
				blocked += rep.MigrationTotal.Nanoseconds()
			}
			b.ReportMetric(float64(blocked)/float64(b.N), "migration-ns/op")
		})
	}
}

// --- Sharded checkpoint pipeline -----------------------------------------

// BenchmarkShardCheckpoint measures per-rank parallel shard persistence on
// the distributed SOR kernel: blocked-ns/ckpt is the time lines of
// execution stand inside the two save barriers. The sync variant pays each
// rank's encode+persist there (concurrently across ranks); the async
// variant only the per-rank double-buffer capture, with the bounded pool
// persisting links and committing the wave manifests in the background; the
// delta variant additionally ships only each rank's changed chunks.
func BenchmarkShardCheckpoint(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts []pp.Option
	}{
		{"sync", []pp.Option{pp.WithCheckpointEvery(5)}},
		{"async", []pp.Option{pp.WithCheckpointEvery(5), pp.WithAsyncCheckpoint()}},
		{"delta-async", []pp.Option{pp.WithDeltaCheckpoint(5, 4), pp.WithAsyncCheckpoint()}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := append(benchOpts(pp.Distributed, 4,
				pp.WithCheckpointDir(b.TempDir()),
				pp.WithShardCheckpoints()), tc.opts...)
			var blocked, background, ckpts, links, bytes int64
			for i := 0; i < b.N; i++ {
				rep := runBench(b, benchN, benchIters, opts...)
				blocked += rep.SaveTotal.Nanoseconds()
				background += rep.AsyncSaveTotal.Nanoseconds()
				ckpts += int64(rep.Checkpoints)
				links += int64(rep.ShardSaves)
				bytes += int64(rep.ShardBytes)
			}
			if ckpts == 0 || links == 0 {
				b.Fatal("no shard waves committed")
			}
			b.ReportMetric(float64(blocked)/float64(ckpts), "blocked-ns/ckpt")
			b.ReportMetric(float64(background)/float64(b.N), "bg-write-ns/op")
			b.ReportMetric(float64(bytes)/float64(ckpts), "shard-bytes/ckpt")
			b.ReportMetric(float64(links)/float64(ckpts), "links/ckpt")
		})
	}
}

// --- Asynchronous checkpoint pipeline -----------------------------------

// Sync vs async checkpointing on the SOR kernel. SaveTotal is the time
// lines of execution stood blocked at the save barrier: synchronous saves
// pay encode+fsync there, the async pipeline only the double-buffer
// capture (the persist overlaps computation and lands in AsyncSaveTotal).
func BenchmarkAsyncCheckpointSOR(b *testing.B) {
	for _, tc := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := benchOpts(pp.Shared, 4,
				pp.WithCheckpointDir(b.TempDir()),
				pp.WithCheckpointEvery(5))
			if tc.async {
				opts = append(opts, pp.WithAsyncCheckpoint())
			}
			var blocked, background, drain, ckpts int64
			for i := 0; i < b.N; i++ {
				rep := runBench(b, benchN, benchIters, opts...)
				blocked += rep.SaveTotal.Nanoseconds()
				background += rep.AsyncSaveTotal.Nanoseconds()
				drain += rep.DrainTotal.Nanoseconds()
				ckpts += int64(rep.Checkpoints)
			}
			if ckpts == 0 {
				b.Fatal("no checkpoints persisted")
			}
			b.ReportMetric(float64(blocked)/float64(b.N), "blocked-ns/op")
			b.ReportMetric(float64(blocked)/float64(ckpts), "blocked-ns/ckpt")
			b.ReportMetric(float64(background)/float64(b.N), "bg-write-ns/op")
			b.ReportMetric(float64(drain)/float64(b.N), "drain-ns/op")
		})
	}
}

// --- Incremental (delta) checkpoint pipeline ------------------------------

// stripeBench is a workload with mostly-stable safe data: one large state
// vector of which each iteration rewrites exactly one diff chunk — the
// shape incremental checkpointing is built for. The benchmark compares
// bytes written per checkpoint (and blocked save time) for full vs delta
// pipelines.
type stripeBench struct {
	State []float64
	It    int
	iters int
}

func (s *stripeBench) Main(ctx *pp.Ctx) {
	ctx.Call("run", func(ctx *pp.Ctx) {
		chunks := len(s.State) / serial.DeltaChunkElems
		for it := 0; it < s.iters; it++ {
			s.It = it
			off := (it % chunks) * serial.DeltaChunkElems
			pp.ForSpan(ctx, "stripe", off, off+serial.DeltaChunkElems, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					s.State[i] = float64(it*1000 + i)
				}
			})
			ctx.Call("iter", func(*pp.Ctx) {})
		}
	})
}

func BenchmarkDeltaCheckpoint(b *testing.B) {
	const stripeChunks, stripeIters = 16, 32
	mods := []*pp.Module{pp.NewModule("stripe/ckpt").
		SafeData("State").SafeData("It").
		SafePointAfter("iter")}
	// The -dedup variants route the same pipeline through a DedupStore over
	// the filesystem store: the stripe state is mostly stable between
	// captures, so consecutive full snapshots share almost every chunk and
	// the reported dedup-ratio must exceed 1 (gated higher-is-better by
	// benchjson -compare).
	for _, tc := range []struct {
		name  string
		dedup bool
		opts  []pp.Option
	}{
		{"full", false, []pp.Option{pp.WithCheckpointEvery(1)}},
		{"full-dedup", true, []pp.Option{pp.WithCheckpointEvery(1)}},
		{"delta", false, []pp.Option{pp.WithDeltaCheckpoint(1, 8)}},
		{"delta-async", false, []pp.Option{pp.WithDeltaCheckpoint(1, 8), pp.WithAsyncCheckpoint()}},
		{"delta-async-dedup", true, []pp.Option{pp.WithDeltaCheckpoint(1, 8), pp.WithAsyncCheckpoint()}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := []pp.Option{
				pp.WithName("bench-stripe"),
				pp.WithModules(mods...),
			}
			var ds *pp.DedupStore
			if tc.dedup {
				fs, err := pp.NewFSStore(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				ds = pp.NewDedupStore(fs)
				opts = append(opts, pp.WithStore(ds))
			} else {
				opts = append(opts, pp.WithCheckpointDir(b.TempDir()))
			}
			opts = append(opts, tc.opts...)
			var blocked, bytes, ckpts int64
			for i := 0; i < b.N; i++ {
				eng, err := pp.New(func() pp.App {
					return &stripeBench{State: make([]float64, stripeChunks*serial.DeltaChunkElems), iters: stripeIters}
				}, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				rep := eng.Report()
				if rep.Checkpoints == 0 {
					b.Fatal("no checkpoints persisted")
				}
				blocked += rep.SaveTotal.Nanoseconds()
				ckpts += int64(rep.Checkpoints)
				full := rep.FullSaves
				if rep.DeltaSaves == 0 {
					// Full pipeline: every persisted snapshot is SaveBytes.
					bytes += int64(rep.SaveBytes) * int64(full)
					continue
				}
				fullSize := stripeChunks*serial.DeltaChunkElems*8 + 8 // State + It payloads
				bytes += int64(fullSize)*int64(full) + int64(rep.DeltaBytes)
			}
			b.ReportMetric(float64(bytes)/float64(ckpts), "bytes/ckpt")
			b.ReportMetric(float64(blocked)/float64(ckpts), "blocked-ns/ckpt")
			if ds != nil {
				st := ds.Stats()
				b.ReportMetric(metrics.Ratio(float64(st.LogicalBytes), float64(st.PhysicalBytes)), "dedup-ratio")
			}
		})
	}
}

// The same comparison on the molecular-dynamics kernel, whose safe data is
// three flat phase-space arrays instead of one matrix.
func BenchmarkAsyncCheckpointMD(b *testing.B) {
	const atoms, steps = 512, 20
	for _, tc := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := []pp.Option{
				pp.WithName("bench-md"),
				pp.WithMode(pp.Shared), pp.WithThreads(4),
				pp.WithModules(md.Modules(pp.Shared)...),
				pp.WithCheckpointDir(b.TempDir()),
				pp.WithCheckpointEvery(5),
			}
			if tc.async {
				opts = append(opts, pp.WithAsyncCheckpoint())
			}
			var blocked, background int64
			for i := 0; i < b.N; i++ {
				res := &md.Observables{}
				eng, err := pp.New(func() pp.App { return md.New(md.LennardJones{}, atoms, steps, res) }, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
				rep := eng.Report()
				if rep.Checkpoints == 0 {
					b.Fatal("no checkpoints persisted")
				}
				blocked += rep.SaveTotal.Nanoseconds()
				background += rep.AsyncSaveTotal.Nanoseconds()
			}
			b.ReportMetric(float64(blocked)/float64(b.N), "blocked-ns/op")
			b.ReportMetric(float64(background)/float64(b.N), "bg-write-ns/op")
		})
	}
}

// --- Fleet hosting overhead ---------------------------------------------

// BenchmarkFleetOverhead prices what the fleet layer adds on top of a bare
// engine: the same sequential SOR job run directly through pp.New(...).Run()
// versus submitted to a warm fleet.Supervisor (journal write, admission,
// budget scheduling, namespaced store, status plumbing) and awaited.
func BenchmarkFleetOverhead(b *testing.B) {
	const n, iters = 64, 50

	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := &jgf.SORResult{}
			eng, err := pp.New(func() pp.App { return jgf.NewSOR(n, iters, res) },
				pp.WithName("bench-fleet-bare"),
				pp.WithModules(jgf.SORModules(pp.Sequential)...),
				pp.WithStore(pp.NewMemStore()),
				pp.WithCheckpointEvery(8),
			)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
			if res.Gtotal == 0 {
				b.Fatal("sor produced no result")
			}
		}
	})

	b.Run("hosted", func(b *testing.B) {
		sup, err := fleet.New(fleet.Config{Store: pp.NewMemStore(), Budget: 1})
		if err != nil {
			b.Fatal(err)
		}
		fleet.StockWorkloads(sup)
		if _, err := sup.Start(); err != nil {
			b.Fatal(err)
		}
		defer sup.Close()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id, err := sup.Submit(fleet.JobSpec{
				Tenant:          "bench",
				Workload:        "sor",
				Params:          map[string]int{"n": n, "iters": iters},
				CheckpointEvery: 8,
			})
			if err != nil {
				b.Fatal(err)
			}
			st, err := sup.WaitJob(ctx, id)
			if err != nil {
				b.Fatal(err)
			}
			if st.State != fleet.Done {
				b.Fatalf("hosted job ended %s: %s", st.State, st.Error)
			}
		}
	})
}

// --- AutoScale controller overhead ----------------------------------------

// BenchmarkAutoScale measures the per-sample cost of the closed-loop
// controller: one Step per monitor tick folds the rate window, re-anchors
// the fitted curves and scores the candidate shapes. The synthetic State
// stream replays a converging run, so the deciding path is paid while the
// controller still moves and the quiet steady-state path dominates the
// tail — the realistic mix a long run sees. Engine-side cost is zero when
// no decision fires, so this IS the autoscaling overhead.
func BenchmarkAutoScale(b *testing.B) {
	b.Run("step", func(b *testing.B) {
		b.ReportAllocs()
		a := autoscale.New(autoscale.Config{MoveCost: 10 * time.Millisecond})
		shape := autoscale.Shape{Mode: pp.Shared, Threads: 1, Procs: 1}
		var now time.Duration
		sp, moves := 0.0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now += 5 * time.Millisecond
			sp += 0.005 / (0.004/float64(shape.Threads) + 0.0001)
			st := autoscale.State{
				SP: uint64(sp), Now: now, Shape: shape,
				Moves: moves, MoveTotal: time.Duration(moves) * 10 * time.Millisecond,
				CapThreads: 8, CapProcs: 1,
			}
			d, ok := a.Step(st)
			if !ok {
				continue
			}
			if d.Target.Threads > 0 {
				shape.Threads = d.Target.Threads
			}
			moves++
		}
	})
}

// --- Skewed workloads: work stealing vs static schedules ------------------

// The Task executor's case: on kernels whose per-iteration cost is skewed
// across the index space, a static split parks the hot band on a few workers
// and every barrier waits for them; overdecomposition plus stealing spreads
// it. Each benchmark runs the skew-blind static smp schedule and the Task
// executor (8 workers, k=8) on the same deterministic kernel. The speedup is
// only observable with real cores (CI pins GOMAXPROCS=1, where both legs
// degenerate to the same serialized work); the gate watches each leg's own
// trajectory, and `go run ./cmd/ppbench -skew` prints the comparison on the
// host machine. chunks/op is deterministic (iterations × workers × k) and
// gated; steal counts are scheduling noise and deliberately unreported.
const (
	skewPE           = 8
	skewK            = 8
	skewCryptN       = 64 * 1024 // bytes: 8192 blocks, first 1024 hot
	skewCryptHotCost = 16
	skewSparseN      = 1024
	skewSparseNNZ    = 4
	skewSparseIters  = 8
)

type skewLeg struct {
	name    string
	mode    pp.Mode
	modules func(pp.Mode) []*pp.Module
	opts    []pp.Option
}

func skewLegs(modules func(pp.Mode) []*pp.Module, static *pp.Module, ckpt *pp.Module) []skewLeg {
	staticSet := func(pp.Mode) []*pp.Module { return []*pp.Module{static, ckpt} }
	return []skewLeg{
		{"smp-static8", pp.Shared, staticSet, []pp.Option{pp.WithThreads(skewPE)}},
		{"task8-k8", pp.Task, modules, []pp.Option{pp.WithThreads(skewPE), pp.WithOverdecompose(skewK)}},
	}
}

func runSkewLeg(b *testing.B, l skewLeg, name string, factory pp.Factory) pp.Report {
	b.Helper()
	opts := append([]pp.Option{
		pp.WithName(name),
		pp.WithMode(l.mode),
		pp.WithModules(l.modules(l.mode)...),
	}, l.opts...)
	eng, err := pp.New(factory, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	return eng.Report()
}

func BenchmarkSkewedCrypt(b *testing.B) {
	for _, l := range skewLegs(jgf.CryptModules, jgf.CryptSharedModule(), jgf.CryptCheckpointModule()) {
		l := l
		b.Run(l.name, func(b *testing.B) {
			var rep pp.Report
			for i := 0; i < b.N; i++ {
				res := &jgf.CryptResult{}
				rep = runSkewLeg(b, l, "bench-skew-crypt", func() pp.App {
					return jgf.NewCryptSkewed(skewCryptN, skewCryptHotCost, res)
				})
				if !res.OK {
					b.Fatal("skewed crypt round-trip failed validation")
				}
			}
			if rep.TaskChunks > 0 {
				b.ReportMetric(float64(rep.TaskChunks), "chunks/op")
			}
		})
	}
}

func BenchmarkSkewedSparse(b *testing.B) {
	for _, l := range skewLegs(jgf.SparseModules, jgf.SparseSharedStaticModule(), jgf.SparseCheckpointModule()) {
		l := l
		b.Run(l.name, func(b *testing.B) {
			var rep pp.Report
			var want float64
			for i := 0; i < b.N; i++ {
				res := &jgf.SparseResult{}
				rep = runSkewLeg(b, l, "bench-skew-sparse", func() pp.App {
					return jgf.NewSparseSkewed(skewSparseN, skewSparseNNZ, skewSparseIters, res)
				})
				if res.Ytotal == 0 {
					b.Fatal("skewed sparse produced no result")
				}
				if want == 0 {
					want = res.Ytotal
				} else if res.Ytotal != want {
					b.Fatalf("skewed sparse diverged: %v vs %v", res.Ytotal, want)
				}
			}
			if rep.TaskChunks > 0 {
				b.ReportMetric(float64(rep.TaskChunks), "chunks/op")
			}
		})
	}
}

// BenchmarkSkewedControl is the other half of the Task executor's contract:
// on REGULAR kernels (uniform SOR), overdecomposition and stealing must cost
// nearly nothing against the static smp schedule. Both legs are gated, so a
// scheduler change that taxes the regular path shows up here even at
// GOMAXPROCS=1.
func BenchmarkSkewedControl(b *testing.B) {
	for _, l := range []struct {
		name string
		mode pp.Mode
	}{
		{"sor-smp8", pp.Shared},
		{"sor-task8-k8", pp.Task},
	} {
		l := l
		b.Run(l.name, func(b *testing.B) {
			opts := benchOpts(l.mode, skewPE)
			for i := 0; i < b.N; i++ {
				runBench(b, benchN, benchIters, opts...)
			}
		})
	}
}
