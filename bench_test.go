package ppar

// One benchmark per figure of the paper's evaluation (Figures 3-9), running
// the REAL engine at reduced scale, plus ablation benches for the design
// choices DESIGN.md calls out. `go run ./cmd/ppbench` prints the same
// series as tables (modelled at paper scale by default, -real for these
// code paths).

import (
	"errors"
	"fmt"
	"testing"

	"ppar/internal/core"
	"ppar/internal/jgf"
	"ppar/internal/jgf/invasive"
	"ppar/internal/jgf/refimpl"
	"ppar/internal/team"
)

const (
	benchN     = 256
	benchIters = 30
)

func benchCfg(mode core.Mode, pe int) core.Config {
	cfg := core.Config{AppName: "bench-sor", Mode: mode, Modules: jgf.SORModules(mode)}
	switch mode {
	case core.Shared:
		cfg.Threads = pe
	case core.Distributed:
		cfg.Procs = pe
	}
	return cfg
}

func runBench(b *testing.B, cfg core.Config, n, iters int) core.Report {
	b.Helper()
	res := &jgf.SORResult{}
	eng, err := core.New(cfg, func() core.App { return jgf.NewSOR(n, iters, res) })
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	return eng.Report()
}

// --- Figure 3: checkpoint overhead --------------------------------------

func BenchmarkFig3_CheckpointOverhead(b *testing.B) {
	envs := []struct {
		name string
		mode core.Mode
		pe   int
	}{
		{"seq", core.Sequential, 1},
		{"2LE", core.Shared, 2}, {"4LE", core.Shared, 4},
		{"2P", core.Distributed, 2}, {"4P", core.Distributed, 4},
	}
	for _, e := range envs {
		e := e
		b.Run(e.name+"/original", func(b *testing.B) {
			cfg := benchCfg(e.mode, e.pe)
			cfg.Modules = nil
			switch e.mode {
			case core.Shared:
				cfg.Modules = []*core.Module{jgf.SORSharedModule()}
			case core.Distributed:
				cfg.Modules = []*core.Module{jgf.SORDistModule()}
			}
			for i := 0; i < b.N; i++ {
				runBench(b, cfg, benchN, benchIters)
			}
		})
		b.Run(e.name+"/ckpt0", func(b *testing.B) {
			cfg := benchCfg(e.mode, e.pe)
			cfg.CheckpointDir = b.TempDir()
			for i := 0; i < b.N; i++ {
				runBench(b, cfg, benchN, benchIters)
			}
		})
		b.Run(e.name+"/ckpt1", func(b *testing.B) {
			cfg := benchCfg(e.mode, e.pe)
			cfg.CheckpointDir = b.TempDir()
			cfg.CheckpointEvery = benchIters / 2
			cfg.MaxCheckpoints = 1
			for i := 0; i < b.N; i++ {
				runBench(b, cfg, benchN, benchIters)
			}
		})
	}
	b.Run("seq/invasive-ckpt1", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			s := invasive.New(benchN, benchIters)
			if err := s.EnableCheckpoints(dir, benchIters/2, 1); err != nil {
				b.Fatal(err)
			}
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 4: time to save checkpoint data ------------------------------

func BenchmarkFig4_SaveCheckpoint(b *testing.B) {
	envs := []struct {
		name string
		mode core.Mode
		pe   int
	}{
		{"seq", core.Sequential, 1},
		{"4LE", core.Shared, 4},
		{"4P-gather", core.Distributed, 4},
	}
	for _, e := range envs {
		e := e
		b.Run(e.name, func(b *testing.B) {
			cfg := benchCfg(e.mode, e.pe)
			cfg.CheckpointDir = b.TempDir()
			cfg.CheckpointEvery = benchIters / 2
			cfg.MaxCheckpoints = 1
			var save, bytes int64
			for i := 0; i < b.N; i++ {
				rep := runBench(b, cfg, benchN, benchIters)
				save += rep.SaveTotal.Nanoseconds()
				bytes = int64(rep.SaveBytes)
			}
			b.ReportMetric(float64(save)/float64(b.N), "save-ns/op")
			b.ReportMetric(float64(bytes), "ckpt-bytes")
		})
	}
}

// --- Figure 5: restart overhead ------------------------------------------

func BenchmarkFig5_Restart(b *testing.B) {
	for _, e := range []struct {
		name string
		mode core.Mode
		pe   int
	}{
		{"seq", core.Sequential, 1},
		{"4LE", core.Shared, 4},
		{"4P", core.Distributed, 4},
	} {
		e := e
		b.Run(e.name, func(b *testing.B) {
			var replay, load int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchCfg(e.mode, e.pe)
				cfg.CheckpointDir = b.TempDir()
				cfg.CheckpointEvery = 10
				cfg.FailAtSafePoint = benchIters - 5
				res := &jgf.SORResult{}
				eng, err := core.New(cfg, func() core.App { return jgf.NewSOR(benchN, benchIters, res) })
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Run(); !errors.Is(err, core.ErrInjectedFailure) {
					b.Fatalf("failure did not fire: %v", err)
				}
				cfg.FailAtSafePoint = 0
				eng2, err := core.New(cfg, func() core.App { return jgf.NewSOR(benchN, benchIters, res) })
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := eng2.Run(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				rep := eng2.Report()
				replay += rep.ReplayTime.Nanoseconds()
				load += rep.LoadTotal.Nanoseconds()
			}
			b.ReportMetric(float64(replay)/float64(b.N), "replay-ns/op")
			b.ReportMetric(float64(load)/float64(b.N), "load-ns/op")
		})
	}
}

// --- Figure 6: restart on more resources ----------------------------------

func BenchmarkFig6_RestartWider(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		res := &jgf.SORResult{}
		factory := func() core.App { return jgf.NewSOR(benchN, benchIters, res) }
		narrow := core.Config{
			AppName: "bench-sor", Mode: core.Distributed, Procs: 2,
			Modules:       jgf.SORModules(core.Distributed),
			CheckpointDir: dir, StopCheckpointAt: benchIters / 2,
		}
		eng, err := core.New(narrow, factory)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := eng.Run(); err == nil {
			b.Fatal("did not stop for adaptation")
		}
		wider := narrow
		wider.StopCheckpointAt = 0
		wider.Procs = 8
		eng2, err := core.New(wider, factory)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng2.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: run-time expansion vs restart expansion --------------------

func BenchmarkFig7_RuntimeAdapt(b *testing.B) {
	for _, from := range []int{2, 4} {
		from := from
		b.Run(fmt.Sprintf("from-%dLE", from), func(b *testing.B) {
			cfg := benchCfg(core.Shared, from)
			cfg.AdaptAtSafePoint = benchIters / 2
			cfg.AdaptTo = core.AdaptTarget{Threads: 8}
			for i := 0; i < b.N; i++ {
				rep := runBench(b, cfg, benchN, benchIters)
				if !rep.Adapted {
					b.Fatal("did not adapt")
				}
			}
		})
	}
}

func BenchmarkFig7_RestartAdapt(b *testing.B) {
	for _, from := range []int{2, 4} {
		from := from
		b.Run(fmt.Sprintf("from-%dLE", from), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				res := &jgf.SORResult{}
				factory := func() core.App { return jgf.NewSOR(benchN, benchIters, res) }
				first := core.Config{
					AppName: "bench-sor", Mode: core.Shared, Threads: from,
					Modules:       jgf.SORModules(core.Shared),
					CheckpointDir: dir, StopCheckpointAt: benchIters / 2,
				}
				eng, err := core.New(first, factory)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := eng.Run(); err == nil {
					b.Fatal("did not stop")
				}
				second := first
				second.StopCheckpointAt = 0
				second.Threads = 8
				eng2, err := core.New(second, factory)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng2.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 8: over-decomposition ------------------------------------------

func BenchmarkFig8_OverDecomposition(b *testing.B) {
	const pe = 4
	for _, of := range []int{1, 2, 4, 8, 16} {
		of := of
		b.Run(fmt.Sprintf("of-%d", of), func(b *testing.B) {
			tasks := pe * of
			for i := 0; i < b.N; i++ {
				g := jgf.NewSOR(benchN, benchIters, nil)
				team.OverDecompose(tasks, pe, benchIters, func(task, iter int) {
					lo, hi := team.StaticSpan(task, tasks, 1, benchN-1)
					_ = lo
					_ = hi
					benchSweep(g, lo, hi)
				})
			}
		})
	}
}

func benchSweep(g *jgf.SOR, lo, hi int) {
	omega, oneMinus := g.Omega, 1-g.Omega
	for colour := 0; colour < 2; colour++ {
		for i := lo; i < hi; i++ {
			row := g.G[i]
			up, down := g.G[i-1], g.G[i+1]
			for j := 1 + (i+colour)%2; j < g.N-1; j += 2 {
				row[j] = omega*0.25*(up[j]+down[j]+row[j-1]+row[j+1]) + oneMinus*row[j]
			}
		}
	}
}

// --- Figure 9: adaptability overhead ----------------------------------------

func BenchmarkFig9_JGFSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		refimpl.Sequential(benchN, benchIters)
	}
}

func BenchmarkFig9_JGFThreads(b *testing.B) {
	for _, pe := range []int{2, 4} {
		pe := pe
		b.Run(fmt.Sprintf("%dT", pe), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				refimpl.Threads(benchN, benchIters, pe)
			}
		})
	}
}

func BenchmarkFig9_JGFMPI(b *testing.B) {
	for _, pe := range []int{2, 4} {
		pe := pe
		b.Run(fmt.Sprintf("%dP", pe), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := refimpl.MPI(benchN, benchIters, pe, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig9_Adaptive(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode core.Mode
		pe   int
	}{{"seq", core.Sequential, 1}, {"4LE", core.Shared, 4}, {"4P", core.Distributed, 4}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := benchCfg(tc.mode, tc.pe)
			for i := 0; i < b.N; i++ {
				runBench(b, cfg, benchN, benchIters)
			}
		})
	}
}

// --- Ablations ---------------------------------------------------------------

// Gather-at-master vs per-rank shard checkpoints (§IV.A's two distributed
// alternatives).
func BenchmarkAblation_DistCheckpointStrategy(b *testing.B) {
	for _, tc := range []struct {
		name   string
		shards bool
	}{{"gather-at-master", false}, {"local-shards", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := benchCfg(core.Distributed, 4)
			cfg.CheckpointDir = b.TempDir()
			cfg.CheckpointEvery = 10
			cfg.ShardCheckpoints = tc.shards
			var save int64
			for i := 0; i < b.N; i++ {
				rep := runBench(b, cfg, benchN, benchIters)
				save += rep.SaveTotal.Nanoseconds()
			}
			b.ReportMetric(float64(save)/float64(b.N), "save-ns/op")
		})
	}
}

// Safe-point interval: checkpoint overhead vs computation lost (the §IV.A
// trade-off).
func BenchmarkAblation_CheckpointInterval(b *testing.B) {
	for _, every := range []uint64{5, 10, 15, 30} {
		every := every
		b.Run(fmt.Sprintf("every-%d", every), func(b *testing.B) {
			cfg := benchCfg(core.Sequential, 1)
			cfg.CheckpointDir = b.TempDir()
			cfg.CheckpointEvery = every
			for i := 0; i < b.N; i++ {
				runBench(b, cfg, benchN, benchIters)
			}
		})
	}
}

// Loop schedules: the pluggable module swap of §III.B.
func BenchmarkAblation_LoopSchedule(b *testing.B) {
	mods := map[string]*core.Module{
		"static":     jgf.SORSharedModule(),
		"dynamic-8":  jgf.SORSharedDynamicModule(8),
		"dynamic-32": jgf.SORSharedDynamicModule(32),
	}
	for name, mod := range mods {
		mod := mod
		b.Run(name, func(b *testing.B) {
			cfg := core.Config{
				AppName: "bench-sor", Mode: core.Shared, Threads: 4,
				Modules: []*core.Module{mod, jgf.SORCheckpointModule()},
			}
			for i := 0; i < b.N; i++ {
				runBench(b, cfg, benchN, benchIters)
			}
		})
	}
}

// Transports: in-process channels vs TCP loopback.
func BenchmarkAblation_Transport(b *testing.B) {
	for _, tc := range []struct {
		name string
		tcp  bool
	}{{"inproc", false}, {"tcp", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := benchCfg(core.Distributed, 4)
			cfg.TCP = tc.tcp
			for i := 0; i < b.N; i++ {
				runBench(b, cfg, benchN, benchIters)
			}
		})
	}
}

// The cost of an advised call vs the machinery-free base code: what the
// "pluggable" indirection itself costs.
func BenchmarkAblation_CallOverhead(b *testing.B) {
	b.Run("unplugged-engine", func(b *testing.B) {
		cfg := core.Config{AppName: "bench-sor", Mode: core.Sequential}
		for i := 0; i < b.N; i++ {
			runBench(b, cfg, benchN, benchIters)
		}
	})
	b.Run("hand-written", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refimpl.Sequential(benchN, benchIters)
		}
	})
}
