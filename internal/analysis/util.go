package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// callee resolves the function or method a call invokes, or nil for
// dynamic calls (function values, interface fields) and conversions.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isCallTo reports whether call invokes the package-level function or
// method pkgPath.name.
func isCallTo(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := callee(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// calleePkg returns the import path of the package owning the called
// function, or "" when unknown.
func calleePkg(info *types.Info, call *ast.CallExpr) string {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeName returns the name of the named type a method call's receiver
// resolves to (pointers dereferenced), or "" for non-method calls.
func recvTypeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok {
		return ""
	}
	return namedName(s.Recv())
}

// namedName unwraps pointers and aliases and returns the type's name, or
// "" for unnamed types.
func namedName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Pointer:
		return namedName(t.Elem())
	}
	return ""
}

// funcRecvName returns the name of a declared method's receiver type, or
// "" for plain functions.
func funcRecvName(info *types.Info, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return ""
	}
	return namedName(tv.Type)
}

// identityNames are the receiver fields and accessor methods that encode a
// team member's identity: which rank/worker it is and whether it is an
// active participant. A branch on any of these can evaluate differently on
// different members of the same team.
var identityNames = map[string]bool{
	"retired": true, "Retired": true,
	"replaying": true, "Replaying": true,
	"IsMaster": true, "IsMasterRank": true, "IsMasterThread": true,
	"Rank": true, "rank": true, "retiredRank": true,
	"ID": true, "id": true,
}

// identityDependent reports whether cond mentions worker/rank identity,
// i.e. whether it can differ across members of one team at the same
// program point.
func identityDependent(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if identityNames[n.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if identityNames[n.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// rangeOverMap reports whether rs ranges over a map value.
func rangeOverMap(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// emissionSinks are method names whose call inside a map range means the
// iteration order leaks into an output stream or hash.
var emissionSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Sum32": true, "Sum64": true, "Encode": true,
}

// mapRangeOrderLeak inspects a range-over-map statement and returns a
// non-empty description when the loop body leaks the (randomized)
// iteration order into an ordered output: writing to a stream or hash,
// appending to an outer slice that is never sorted afterwards in the same
// function, or accumulating a string. Order-insensitive bodies — writes
// into maps, delete, numeric accumulation, collect-then-sort — pass.
// enclosing is the innermost function body containing rs.
func mapRangeOrderLeak(info *types.Info, rs *ast.RangeStmt, enclosing *ast.BlockStmt) string {
	leak := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if leak != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if emissionSinks[sel.Sel.Name] && len(info.Selections) > 0 {
					if _, isMethod := info.Selections[sel]; isMethod {
						leak = "calls " + sel.Sel.Name + " (ordered emission)"
						return false
					}
				}
			}
			if pkg := calleePkg(info, n); pkg == "fmt" {
				if fn := callee(info, n); fn != nil && strings.HasPrefix(fn.Name(), "Fprint") {
					leak = "calls fmt." + fn.Name() + " (ordered emission)"
					return false
				}
			}
		case *ast.AssignStmt:
			leak = assignOrderLeak(info, n, rs, enclosing)
			if leak != "" {
				return false
			}
		}
		return true
	})
	return leak
}

// assignOrderLeak classifies one assignment inside a map-range body.
func assignOrderLeak(info *types.Info, as *ast.AssignStmt, rs *ast.RangeStmt, enclosing *ast.BlockStmt) string {
	for i, lhs := range as.Lhs {
		lhs := ast.Unparen(lhs)
		// s += ... on a string accumulates in iteration order.
		if as.Tok.String() == "+=" {
			if tv, ok := info.Types[lhs]; ok && tv.Type != nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return "accumulates a string in map iteration order"
				}
			}
		}
		// x = append(x, ...) into a slice declared outside the loop:
		// fine only when the slice is sorted later in the same function.
		if i < len(as.Rhs) {
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					dest, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[dest]
					if obj == nil {
						obj = info.Uses[dest]
					}
					if obj == nil || obj.Pos() >= rs.Pos() {
						continue // loop-local scratch
					}
					if !sortedLater(info, obj, rs, enclosing) {
						return "appends map keys/values to " + dest.Name + " without sorting it afterwards"
					}
				}
			}
		}
	}
	return ""
}

// sortedLater reports whether obj is passed to a sort.* or slices.Sort*
// call positioned after the range statement in the enclosing body.
func sortedLater(info *types.Info, obj types.Object, rs *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	if enclosing == nil {
		return false
	}
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		pkg := calleePkg(info, call)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// forEachFuncBody invokes fn for every function and method declaration
// with a body in the pass's files.
func forEachFuncBody(pass *Pass, fn func(*ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// fixturePath reports whether pkgPath is the analyzer's own test fixture
// package (internal/analysis/testdata/src/<name>).
func fixturePath(pkgPath, analyzer string) bool {
	return strings.HasSuffix(pkgPath, "testdata/src/"+analyzer)
}

// rootIdent unwraps selectors, indexes and derefs down to the base
// identifier of an lvalue or receiver chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// bannedTimeFuncs are the wall-clock entry points: anything whose result
// differs between two replays of the same safe point.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// ioPackages hold functions whose call means the function touches the
// outside world. fmt is handled separately (Sprintf is pure, Printf not).
var ioPackages = map[string]bool{
	"os": true, "io": true, "io/fs": true, "bufio": true, "net": true,
	"net/http": true, "log": true, "log/slog": true, "os/exec": true, "syscall": true,
}

// nondeterministicCall classifies a call as a wall-clock read or I/O and
// returns a short description, or "".
func nondeterministicCall(info *types.Info, call *ast.CallExpr) string {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch pkg := fn.Pkg().Path(); {
	case pkg == "time" && bannedTimeFuncs[fn.Name()]:
		return "reads the wall clock (time." + fn.Name() + ")"
	case ioPackages[pkg]:
		return "performs I/O (" + pkg + "." + fn.Name() + ")"
	case pkg == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")):
		return "performs I/O (fmt." + fn.Name() + ")"
	}
	return ""
}

// randPackages are the nondeterministic number sources.
var randPackages = map[string]bool{"math/rand": true, "math/rand/v2": true}

// usesRand reports (with the offending position) whether the node
// references math/rand or math/rand/v2.
func usesRand(info *types.Info, root ast.Node) (ast.Node, bool) {
	var at ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if at != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil && obj.Pkg() != nil && randPackages[obj.Pkg().Path()] {
			at = id
		}
		return at == nil
	})
	return at, at != nil
}
