package analysis

import (
	"regexp"
	"strings"
	"testing"
)

// RunFixture loads the fixture package at testdata/src/<fixture>, runs one
// analyzer over it, and compares the diagnostics against `// want "regex"`
// comments in the fixture source, x/tools-analysistest style: every
// diagnostic must match a want expectation on its line, and every
// expectation must be matched by a diagnostic. Several expectations on one
// line are written as separate quoted regexes after a single want.
func RunFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkgs, fset, err := Load("testdata/src/"+fixture, []string{"."}, false)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := Run([]*Analyzer{a}, fset, pkgs)
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, fixture, err)
	}

	type want struct {
		rx      *regexp.Regexp
		line    int
		matched bool
	}
	quoted := regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
	wants := map[string]map[int][]*want{} // file -> line -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					trimmed := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(trimmed, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, m := range quoted.FindAllStringSubmatch(trimmed, -1) {
						rx, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						if wants[pos.Filename] == nil {
							wants[pos.Filename] = map[int][]*want{}
						}
						wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &want{rx: rx, line: pos.Line})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants[pos.Filename][pos.Line] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for file, lines := range wants {
		for _, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, w.line, w.rx)
				}
			}
		}
	}
}
