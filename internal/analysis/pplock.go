package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// PPLock flags blocking operations — checkpoint-store I/O, WaitGroup or
// Barrier waits, blocking channel operations, sleeps — performed while
// holding a mutex of the core Engine or the fleet Supervisor. Those locks
// sit on the safe-point and scheduling hot paths: store I/O under them
// stalls every worker in the run (or every job in the fleet) for the
// duration of a disk write. Other mutexes (shardSink, asyncWriter) are out
// of scope on purpose — serializing I/O is their documented job.
//
// Two lock shapes are recognized: an explicit recv.<mutex>.Lock() ...
// Unlock() span inside an Engine/Supervisor method, and the repo's
// *Locked naming convention — a method whose name ends in "Locked" is
// called with the lock held, so its whole body is a critical section.
var PPLock = &Analyzer{
	Name: "pplock",
	Doc:  "no blocking operations (store I/O, Wait, channel ops, sleeps) while holding the Engine or Supervisor mutex",
	Run:  runPPLock,
}

var lockGuardedTypes = map[string]bool{"Engine": true, "Supervisor": true}

func runPPLock(pass *Pass) error {
	forEachFuncBody(pass, func(fd *ast.FuncDecl) {
		recvName := funcRecvName(pass.TypesInfo, fd)
		if !lockGuardedTypes[recvName] {
			return
		}
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			checkLockedRegion(pass, fd, recvName, fd.Body.Pos(), fd.Body.End())
			return
		}
		for _, span := range lockSpans(pass, fd) {
			checkLockedRegion(pass, fd, recvName, span.from, span.to)
		}
	})
	return nil
}

type lockSpan struct{ from, to token.Pos }

// lockSpans computes the positional spans of fd's body where a mutex field
// of the receiver is held: from each recv.<field>.Lock() to the next
// matching Unlock, or to the function end when the unlock is deferred.
// Position order approximates control flow, which matches how these
// methods are written (lock, work, unlock — no lock juggling across
// branches).
func lockSpans(pass *Pass, fd *ast.FuncDecl) []lockSpan {
	recv := recvObject(pass, fd)
	if recv == nil {
		return nil
	}
	type event struct {
		pos      token.Pos
		lock     bool
		deferred bool // the unlock itself is deferred: held to function end
		skip     bool // inside a function literal: runs at some other time
	}
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var isLock bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			isLock = true
		case "Unlock", "RUnlock":
		default:
			return true
		}
		switch recvTypeName(pass.TypesInfo, call) {
		case "Mutex", "RWMutex":
		default:
			return true
		}
		root := rootIdent(sel.X)
		if root == nil || pass.TypesInfo.Uses[root] != recv {
			return true
		}
		events = append(events, event{pos: call.Pos(), lock: isLock})
		return true
	})
	// A directly deferred unlock (defer s.mu.Unlock()) holds the lock to
	// the end of the function. Lock/Unlock pairs inside a function literal
	// (including deferred closures) execute at some other time and do not
	// shape this function's spans.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			for i := range events {
				if events[i].pos == n.Call.Pos() {
					events[i].deferred = true
				}
			}
		case *ast.FuncLit:
			for i := range events {
				if events[i].pos >= n.Pos() && events[i].pos < n.End() {
					events[i].skip = true
				}
			}
		}
		return true
	})

	var spans []lockSpan
	var open token.Pos
	depth := 0
	for _, ev := range events {
		switch {
		case ev.skip:
		case ev.lock:
			if depth == 0 {
				open = ev.pos
			}
			depth++
		case ev.deferred:
			// Releases at function exit: the region stays open.
		default:
			if depth > 0 {
				depth--
				if depth == 0 {
					spans = append(spans, lockSpan{open, ev.pos})
				}
			}
		}
	}
	if depth > 0 {
		spans = append(spans, lockSpan{open, fd.Body.End()})
	}
	return spans
}

// checkLockedRegion reports blocking operations positioned inside one held
// span of fd's body.
func checkLockedRegion(pass *Pass, fd *ast.FuncDecl, recvName string, from, to token.Pos) {
	where := fd.Name.Name
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n.Pos() < from || n.Pos() > to {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch name, recv := calleeNameRecv(pass, n); {
			case recv == "Store":
				pass.Reportf(n.Pos(), "checkpoint-store I/O (%s) while holding the %s lock in %s: a disk write stalls every path that needs this lock", name, recvName, where)
			case name == "Wait" && (recv == "WaitGroup" || recv == "Barrier"):
				pass.Reportf(n.Pos(), "%s.Wait while holding the %s lock in %s: waiting under the lock deadlocks against anything that needs the lock to make progress", recv, recvName, where)
			case isCallTo(pass.TypesInfo, n, "time", "Sleep"):
				pass.Reportf(n.Pos(), "time.Sleep while holding the %s lock in %s", recvName, where)
			}
		case *ast.SendStmt:
			if !inNonBlockingSelect(stack) {
				pass.Reportf(n.Pos(), "channel send while holding the %s lock in %s: an unready receiver blocks everyone needing the lock (send from a select with default, or outside the lock)", recvName, where)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inNonBlockingSelect(stack) {
				pass.Reportf(n.Pos(), "channel receive while holding the %s lock in %s", recvName, where)
			}
		}
		return true
	})
}

// calleeNameRecv returns a call's method name and receiver type name.
func calleeNameRecv(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return sel.Sel.Name, recvTypeName(pass.TypesInfo, call)
}

// inNonBlockingSelect reports whether the innermost enclosing select has a
// default clause, making its channel operations non-blocking.
func inNonBlockingSelect(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		sel, ok := stack[i].(*ast.SelectStmt)
		if !ok {
			continue
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return true
			}
		}
		return false
	}
	return false
}
