package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PPCollective targets the bug class behind the PR 6 joiner deadlock: a
// collective operation (team barrier, exchange, safe-point checkpoint)
// that some team members reach and others skip. The shape it flags is a
// return statement guarded by a worker-identity condition (rank, id,
// retired, replaying, IsMaster...) positioned before a collective call in
// the same function: the guarded member returns early, its siblings block
// in a barrier sized for the full cohort, and the run deadlocks one phase
// apart.
//
// "Collective" is computed transitively within each package: a function
// that calls Barrier/MasterResize/ExchangeF64/BroadcastF64 (or
// Barrier.Wait/WaitResize), or calls another function already known to be
// collective, is itself collective. ppar/internal/team is exempt — it is
// the substrate that defines the retired/replaying pass-through semantics
// the rest of the tree must not imitate ad hoc.
var PPCollective = &Analyzer{
	Name: "ppcollective",
	Doc:  "collectives must be reached by every team member: flags identity-guarded returns that skip a later collective call",
	Run:  runPPCollective,
}

func runPPCollective(pass *Pass) error {
	if pass.Pkg.Path() == "ppar/internal/team" {
		return nil
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	forEachFuncBody(pass, func(fd *ast.FuncDecl) {
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			decls[fn] = fd
		}
	})

	marked := map[*types.Func]bool{}
	isCollectiveCall := func(call *ast.CallExpr) bool {
		if fn := callee(pass.TypesInfo, call); fn != nil && marked[fn] {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		switch sel.Sel.Name {
		case "Barrier", "MasterResize", "ExchangeF64", "BroadcastF64":
			_, isMethod := pass.TypesInfo.Selections[sel]
			return isMethod
		case "Wait", "WaitResize":
			return recvTypeName(pass.TypesInfo, call) == "Barrier"
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if marked[fn] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isCollectiveCall(call) {
					found = true
				}
				return !found
			})
			if found {
				marked[fn] = true
				changed = true
			}
		}
	}

	for fn, fd := range decls {
		if marked[fn] {
			checkCollectiveScope(pass, fd.Body, isCollectiveCall)
		}
	}
	return nil
}

// checkCollectiveScope analyzes one function scope (a declaration body or
// a function literal) and reports identity-guarded returns that skip a
// later collective site. It returns whether the scope contains any
// collective site, so a nested literal that performs collectives counts as
// one site in its enclosing scope (the engine invokes such closures
// synchronously from the save protocol).
func checkCollectiveScope(pass *Pass, body *ast.BlockStmt, isCollectiveCall func(*ast.CallExpr) bool) bool {
	var sites []token.Pos
	type guardedReturn struct {
		pos      token.Pos
		guardPos token.Pos
		cond     ast.Expr
	}
	var returns []guardedReturn

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if checkCollectiveScope(pass, n.Body, isCollectiveCall) {
				sites = append(sites, n.Pos())
			}
			return false
		case *ast.CallExpr:
			if isCollectiveCall(n) {
				sites = append(sites, n.Pos())
			}
		case *ast.ReturnStmt:
			if guard, cond := identityGuard(stack); cond != nil {
				returns = append(returns, guardedReturn{n.Pos(), guard.Pos(), cond})
			}
		}
		stack = append(stack, n)
		return true
	})

	for _, r := range returns {
		// A branch that performed a collective of its own before returning
		// is an alternative protocol arm (e.g. "non-masters barrier, then
		// return while the master resizes"), not a collective-free skip.
		participated := false
		for _, site := range sites {
			if site >= r.guardPos && site < r.pos {
				participated = true
				break
			}
		}
		if participated {
			continue
		}
		for _, site := range sites {
			if site > r.pos {
				pass.Reportf(r.pos,
					"return guarded by worker identity (%s) skips the collective at line %d: every team member must reach it or the others deadlock in a barrier sized for the full cohort (PR 6 joiner-deadlock shape)",
					types.ExprString(r.cond), pass.Fset.Position(site).Line)
				break
			}
		}
	}
	return len(sites) > 0
}

// identityGuard returns the innermost enclosing branch node and condition
// that depend on worker identity, or nils.
func identityGuard(stack []ast.Node) (ast.Node, ast.Expr) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if identityDependent(n.Cond) {
				return n, n.Cond
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if identityDependent(e) {
					return n, e
				}
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && identityDependent(n.Tag) {
				return n, n.Tag
			}
		}
	}
	return nil, nil
}
