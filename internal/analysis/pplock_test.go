package analysis

import "testing"

func TestPPLock(t *testing.T) {
	RunFixture(t, PPLock, "pplock")
}
