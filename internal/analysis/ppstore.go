package analysis

import (
	"go/ast"
	"go/token"
)

// PPStore machine-checks the store write contracts PR 5 documents in
// CHANGES.md: blobs land via temp+rename (never a direct write under the
// committed name), every link of a shard wave is written before the
// PPCKPS1 manifest commits it, chain garbage collection runs only after
// that commit, and Clear-style methods match owned artifact names exactly
// instead of by prefix. The content-addressed chunk layer has the same
// shape of contract and is checked the same way: chunks are put before
// any artifact that references them is saved, and released only after
// every referencing artifact is cleared. Store implementations are
// recognized structurally: any type declaring a SaveManifest method.
var PPStore = &Analyzer{
	Name: "ppstore",
	Doc:  "pp.Store implementations and call sites must write atomically, commit manifests last, and GC (chains and chunks) only after the commit",
	Run:  runPPStore,
}

func runPPStore(pass *Pass) error {
	implTypes := map[string]bool{}
	forEachFuncBody(pass, func(fd *ast.FuncDecl) {
		if fd.Name.Name == "SaveManifest" {
			if name := funcRecvName(pass.TypesInfo, fd); name != "" {
				implTypes[name] = true
			}
		}
	})

	forEachFuncBody(pass, func(fd *ast.FuncDecl) {
		if implTypes[funcRecvName(pass.TypesInfo, fd)] {
			switch fd.Name.Name {
			case "Save", "SaveDelta", "SaveManifest", "SaveShardDelta", "PutChunk":
				checkAtomicWrites(pass, fd)
			case "Clear", "ClearDeltas", "ClearShardDeltas":
				checkExactNameMatch(pass, fd)
			}
		}
		checkCommitOrdering(pass, fd, implTypes)
		checkChunkOrdering(pass, fd, implTypes)
	})
	return nil
}

// checkAtomicWrites flags direct writes under a committed name inside a
// store save path; a crash mid-write must leave either the old blob or the
// new one, never a torn file, so saves go through temp+rename(+dirsync).
func checkAtomicWrites(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range []string{"WriteFile", "Create"} {
			if isCallTo(pass.TypesInfo, call, "os", name) {
				pass.Reportf(call.Pos(),
					"%s.%s writes a checkpoint blob with os.%s: save paths must write a temp file and rename it over the committed name so a crash never leaves a torn blob",
					funcRecvName(pass.TypesInfo, fd), fd.Name.Name, name)
			}
		}
		return true
	})
}

// checkExactNameMatch flags prefix matching in Clear-style methods: the
// namespace is flat, so app "sor" must not delete "sor2"'s checkpoints.
// Owned names are parsed exactly (CutPrefix + CutSuffix + validation).
func checkExactNameMatch(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range []string{"HasPrefix", "Contains"} {
			if isCallTo(pass.TypesInfo, call, "strings", name) {
				pass.Reportf(call.Pos(),
					"%s.%s selects files to delete with strings.%s: match owned artifact names exactly (parse the name and validate the remainder) — prefix matching deletes another app's checkpoints",
					funcRecvName(pass.TypesInfo, fd), fd.Name.Name, name)
			}
		}
		return true
	})
}

// checkCommitOrdering enforces, positionally within one function, the wave
// protocol: links before the manifest, GC after it. The receiver of the
// observed calls must be store-like — the Store interface or a local
// implementation — so unrelated methods with the same names don't trip it.
func checkCommitOrdering(pass *Pass, fd *ast.FuncDecl, implTypes map[string]bool) {
	storeRecv := func(call *ast.CallExpr) bool {
		name := recvTypeName(pass.TypesInfo, call)
		return name == "Store" || implTypes[name]
	}
	var links, manifests, clears []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !storeRecv(call) {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "SaveShardDelta":
			links = append(links, call.Pos())
		case "SaveManifest":
			manifests = append(manifests, call.Pos())
		case "ClearShardDeltas":
			clears = append(clears, call.Pos())
		}
		return true
	})
	if len(manifests) == 0 {
		return
	}
	minManifest, maxManifest := manifests[0], manifests[0]
	for _, p := range manifests[1:] {
		if p < minManifest {
			minManifest = p
		}
		if p > maxManifest {
			maxManifest = p
		}
	}
	for _, p := range links {
		if p > minManifest {
			pass.Reportf(p, "shard link written after SaveManifest at line %d: every link of a wave must land before the manifest commits it, or the manifest references a file that may not exist after a crash",
				pass.Fset.Position(minManifest).Line)
		}
	}
	for _, p := range clears {
		if p < maxManifest {
			pass.Reportf(p, "chain GC before the committing SaveManifest at line %d: collecting links first means a crash between the two loses the only restart point",
				pass.Fset.Position(maxManifest).Line)
		}
	}
}

// checkChunkOrdering enforces, positionally within one function, the
// content-addressed chunk protocol: every chunk an artifact references
// must land (PutChunk) before the artifact itself commits, and chunk
// refcounts drop (ReleaseChunks) only after the referencing artifact is
// cleared. Either order makes a crash between the two calls harmless —
// it leaks an unreferenced chunk, reclaimable by a later release — where
// the reverse order commits an artifact whose chunks may be missing, or
// frees chunks a surviving artifact still points at.
func checkChunkOrdering(pass *Pass, fd *ast.FuncDecl, implTypes map[string]bool) {
	storeRecv := func(call *ast.CallExpr) bool {
		name := recvTypeName(pass.TypesInfo, call)
		return name == "Store" || implTypes[name]
	}
	var puts, releases, saves, clears []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !storeRecv(call) {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "PutChunk":
			puts = append(puts, call.Pos())
		case "ReleaseChunks":
			releases = append(releases, call.Pos())
		case "Save", "SaveShard", "SaveDelta", "SaveShardDelta":
			saves = append(saves, call.Pos())
		case "Clear", "ClearDeltas", "ClearShardDeltas":
			clears = append(clears, call.Pos())
		}
		return true
	})
	if len(saves) > 0 {
		minSave := saves[0]
		for _, p := range saves[1:] {
			if p < minSave {
				minSave = p
			}
		}
		for _, p := range puts {
			if p > minSave {
				pass.Reportf(p, "chunk written after the artifact save at line %d: every chunk an artifact references must land before the artifact commits, or a crash leaves a committed artifact pointing at missing chunks",
					pass.Fset.Position(minSave).Line)
			}
		}
	}
	if len(clears) > 0 {
		maxClear := clears[0]
		for _, p := range clears[1:] {
			if p > maxClear {
				maxClear = p
			}
		}
		for _, p := range releases {
			if p < maxClear {
				pass.Reportf(p, "ReleaseChunks before the artifact clear at line %d: chunks are released only after every referencing artifact is cleared, so a crash between the two leaks chunks instead of dangling references",
					pass.Fset.Position(maxClear).Line)
			}
		}
	}
}
