package analysis

import "testing"

func TestPPDeterminism(t *testing.T) {
	RunFixture(t, PPDeterminism, "ppdeterminism")
}
