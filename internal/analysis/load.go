package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath  string
	Name        string
	Dir         string
	Standard    bool
	DepOnly     bool
	ForTest     string
	GoFiles     []string
	TestGoFiles []string
	ImportMap   map[string]string
	Error       *struct{ Err string }
}

// Load resolves patterns with the go tool and type-checks the matched
// packages plus everything they import, bottom-up, using only the standard
// library. It is the offline stand-in for x/tools/go/packages: one
// `go list -e -deps -json` invocation yields the file sets and the import
// graph in dependency order, and go/types does the rest. dir is the
// working directory for the go tool ("" = current). Only non-test files
// are analyzed unless includeTests is set.
//
// Type errors in the standard library are tolerated (the checker still
// produces usable, if incomplete, packages); type errors in this module's
// own packages abort the load, since analyzing a tree that does not
// compile produces garbage findings.
func Load(dir string, patterns []string, includeTests bool) ([]*Package, *token.FileSet, error) {
	args := []string{"list", "-e", "-deps", "-json"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Pure-Go file lists: cgo-conditional files land in IgnoredGoFiles
	// instead of needing a C toolchain at type-check time.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	fset := token.NewFileSet()
	typed := map[string]*types.Package{"unsafe": types.Unsafe}
	var result []*Package
	var loadErrs []error

	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("go list output: %w", err)
		}
		if p.ImportPath == "unsafe" {
			continue
		}
		local := !p.Standard
		if p.Error != nil && local {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err))
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test main: nothing to analyze, nothing imports it
		}

		var files []*ast.File
		var parseErr error
		seen := map[string]bool{}
		names := p.GoFiles
		if p.ForTest != "" {
			names = append(names[:len(names):len(names)], p.TestGoFiles...)
		}
		for _, name := range names {
			if seen[name] {
				continue
			}
			seen[name] = true
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil && local {
				parseErr = err
			}
			if f != nil {
				files = append(files, f)
			}
		}
		if parseErr != nil {
			loadErrs = append(loadErrs, parseErr)
			continue
		}

		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Instances:  map[*ast.Ident]types.Instance{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		var typeErrs []error
		conf := types.Config{
			Importer:    &mapImporter{typed: typed, importMap: p.ImportMap},
			FakeImportC: true,
			Sizes:       types.SizesFor("gc", runtime.GOARCH),
			Error:       func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(p.ImportPath, fset, files, info)
		if tpkg != nil {
			typed[p.ImportPath] = tpkg
		}
		if local && len(typeErrs) > 0 {
			for _, e := range typeErrs {
				loadErrs = append(loadErrs, fmt.Errorf("%s: %v", p.ImportPath, e))
			}
			continue
		}
		if !p.DepOnly && local && tpkg != nil {
			result = append(result, &Package{
				PkgPath:   p.ImportPath,
				Name:      p.Name,
				Dir:       p.Dir,
				Syntax:    files,
				Types:     tpkg,
				TypesInfo: info,
			})
		}
	}
	if len(loadErrs) > 0 {
		return nil, nil, errors.Join(loadErrs...)
	}
	if len(result) == 0 {
		return nil, nil, fmt.Errorf("go list %s: no packages to analyze", strings.Join(patterns, " "))
	}
	return result, fset, nil
}

// mapImporter resolves imports against the packages already checked, via
// the importing package's ImportMap (which rewrites vendored standard
// library paths and, under -test, the "test variant" recompilations).
type mapImporter struct {
	typed     map[string]*types.Package
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.typed[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("package %q not loaded (go list -deps order violated?)", path)
}
