package analysis

import "testing"

// TestPPCollective runs the analyzer over a fixture modeled on the PR 6
// joiner deadlock: a replaying worker returning before the safe-point
// collective its siblings are blocked in. The fixture also pins the two
// refinements that keep the analyzer quiet on the real tree — alternative
// protocol arms that perform their own collective before returning, and
// lint:ignore suppression for documented pass-through exemptions.
func TestPPCollective(t *testing.T) {
	RunFixture(t, PPCollective, "ppcollective")
}
