package analysis

import "testing"

// TestPPCollective runs the analyzer over a fixture modeled on the PR 6
// joiner deadlock: a replaying worker returning before the safe-point
// collective its siblings are blocked in. The fixture also pins the two
// refinements that keep the analyzer quiet on the real tree — alternative
// protocol arms that perform their own collective before returning, and
// lint:ignore suppression for documented pass-through exemptions.
func TestPPCollective(t *testing.T) {
	RunFixture(t, PPCollective, "ppcollective")
}

// TestPPCollectiveDrain covers the Task executor's drain barrier: a
// work-stealing loop has no implicit barrier, so every member — including
// workers whose deques ran dry, retired lines and joiners — must reach the
// drain collective that follows it. The fixture applies the PR 6
// joiner-deadlock shape to stealing workers and pins the balancer's
// alternative-arm protocol as quiet.
func TestPPCollectiveDrain(t *testing.T) {
	RunFixture(t, PPCollective, "ppcollective_drain")
}
