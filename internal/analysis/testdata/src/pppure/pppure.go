// Fixture for the pppure analyzer: AdaptPolicy.Decide implementations and
// checkpoint-cadence functions must be pure. The types mirror the pp
// package shapes the analyzer matches structurally.
package pppure

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

type RunStats struct {
	SafePoint        uint64
	FullSaves        int
	DeltaSaves       int
	LastCheckpointSP uint64
}

type AdaptTarget struct {
	Threads int
	Stop    bool
}

type PolicyFunc func(RunStats) AdaptTarget

func (f PolicyFunc) Decide(s RunStats) AdaptTarget { return f(s) }

var decisions int

// clockPolicy breaks the contract in every way a policy usually does.
type clockPolicy struct {
	last time.Time
}

func (p *clockPolicy) Decide(s RunStats) AdaptTarget {
	if time.Since(p.last) > time.Second { // want "reads the wall clock"
		p.last = time.Now() // want "mutates its receiver" "reads the wall clock"
	}
	decisions++            // want "mutates package-level state"
	if rand.Intn(4) == 0 { // want "uses math/rand"
		return AdaptTarget{Stop: true}
	}
	fmt.Println("deciding at", s.SafePoint)                // want "performs I/O"
	if _, err := os.ReadFile("threads.conf"); err == nil { // want "performs I/O"
		return AdaptTarget{Threads: 8}
	}
	return AdaptTarget{}
}

// weightedPolicy shows the map rules: collect-then-sort passes, leaking
// iteration order into the result does not.
type weightedPolicy struct {
	weights map[string]int
}

func (p weightedPolicy) Decide(s RunStats) AdaptTarget {
	names := make([]string, 0, len(p.weights))
	for k := range p.weights { // collect-then-sort: fine
		names = append(names, k)
	}
	sort.Strings(names)
	key := ""
	for k := range p.weights { // want "map iteration order"
		key += k
	}
	if key != "" && len(names) > int(s.SafePoint) {
		return AdaptTarget{Threads: p.weights[names[0]]}
	}
	return AdaptTarget{}
}

// Closures converted to PolicyFunc inherit the contract.
var sleepy = PolicyFunc(func(s RunStats) AdaptTarget {
	time.Sleep(time.Millisecond) // want "reads the wall clock"
	return AdaptTarget{}
})

// stopAt is the stock-policy shape: pure, nothing to report.
var stopAt = PolicyFunc(func(s RunStats) AdaptTarget {
	if s.SafePoint >= 100 && s.LastCheckpointSP == s.SafePoint {
		return AdaptTarget{Stop: true}
	}
	return AdaptTarget{}
})

// cadence is on the deterministic-counter path (it computes the values
// Decide sees), so it inherits the purity checks.
func cadence(sp, every uint64) RunStats {
	due := sp / every
	stats := RunStats{
		SafePoint:        sp,
		FullSaves:        int(due),
		LastCheckpointSP: due * every,
	}
	if time.Now().Unix()%2 == 0 { // want "reads the wall clock"
		stats.DeltaSaves = 1
	}
	return stats
}
