// Fixture for the ppcollective analyzer on the Task executor's drain
// barrier: a work-stealing loop has NO implicit barrier (a thief may still
// be executing a chunk it stole from a worker that already left the loop),
// so the caller must route EVERY team member — stealing, idle, retired or
// replaying — into the drain barrier that follows. The PR 6 joiner-deadlock
// shape applied to stealing workers: one member returns early on a
// worker-identity test and the rest block in a barrier sized for the full
// cohort.
package ppcollective_drain

type Barrier struct{ n int }

func (b *Barrier) Wait() {}

type Worker struct {
	id        int
	retired   bool
	replaying bool
	barrier   *Barrier
}

func (w *Worker) IsMaster() bool { return w.id == 0 }

func (w *Worker) Barrier() { w.barrier.Wait() }

// forTask schedules chunks by stealing; like the real ForTask it performs
// no collective of its own.
func (w *Worker) forTask(lo, hi int, body func(int, int)) {
	for c := lo; c < hi; c++ {
		body(c, c+1)
	}
}

func exchange(elapsed float64) {}

// taskSweepSkipsDrain is the bug shape: a worker whose deque ran dry (and
// that failed to steal) decides it is "done" and leaves before the drain
// barrier, while a thief still executing one of its chunks — and every
// other member — blocks in a barrier sized for the full cohort.
func (w *Worker) taskSweepSkipsDrain(lo, hi int, body func(int, int)) {
	w.forTask(lo, hi, body)
	if w.retired {
		return // want "skips the collective"
	}
	w.Barrier() // the drain: after it, every stolen chunk has finished
}

// taskSweepDrained is the fixed shape: every member reaches the drain
// barrier and the barrier's own pass-through semantics absorb retired and
// replaying workers.
func (w *Worker) taskSweepDrained(lo, hi int, body func(int, int)) {
	w.forTask(lo, hi, body)
	w.Barrier()
}

// rebalance is the cross-rank balancer's alternative-arm shape, which must
// stay quiet: non-masters bracket the master's exchange with their own
// paired barriers before returning, so nobody skips — the cohorts just run
// different arms of one protocol.
func (w *Worker) rebalance(elapsed float64) {
	if !w.IsMaster() {
		w.Barrier()
		w.Barrier()
		return
	}
	w.Barrier()
	exchange(elapsed)
	w.Barrier()
}

// stealThenRebalance is transitively collective through rebalance: the
// identity-guarded return before it must be flagged even though the
// collective is one call deep.
func (w *Worker) stealThenRebalance(lo, hi int, body func(int, int)) {
	w.forTask(lo, hi, body)
	if w.replaying {
		return // want "skips the collective"
	}
	w.rebalance(1.0)
}

// activateJoiner mirrors the activation safe point: the joining cohort
// performs its own collective (the join handoff) before returning, which is
// participation, not a skip.
func (w *Worker) activateJoiner(join bool) {
	if join {
		w.Barrier() // the join gate's rendezvous
		return
	}
	w.Barrier()
	w.rebalance(0.5)
}
