// Fixture for the ppcollective analyzer, modeled on the PR 6 joiner
// deadlock: a replaying worker skipped the safe-point checkpoint while its
// siblings entered a barrier sized for the full cohort.
package ppcollective

type Barrier struct{ n int }

func (b *Barrier) Wait() {}

type Worker struct {
	id        int
	replaying bool
	barrier   *Barrier
}

func (w *Worker) IsMaster() bool { return w.id == 0 }

func (w *Worker) Barrier() { w.barrier.Wait() }

func save() {}

func grow(n int) {}

// checkpoint is transitively collective: every member must call it
// together or nobody leaves the first barrier.
func (w *Worker) checkpoint() {
	w.barrier.Wait()
	if w.IsMaster() {
		save()
	}
	w.barrier.Wait()
}

// safePoint is the joiner-deadlock shape: replaying workers return before
// the collective their siblings are already blocked in.
func (w *Worker) safePoint(due bool) {
	if !due {
		return
	}
	if w.replaying {
		return // want "skips the collective"
	}
	w.checkpoint()
}

// safePointFixed routes every member into the collective and lets the
// barrier's own pass-through semantics handle replaying workers.
func (w *Worker) safePointFixed(due bool) {
	if !due {
		return
	}
	w.checkpoint()
}

// resize is an alternative protocol arm, not a skip: non-masters perform
// their own paired collective before returning while the master grows the
// team. The analyzer must stay quiet here.
func (w *Worker) resize(n int) {
	if !w.IsMaster() {
		w.barrier.Wait()
		return
	}
	grow(n)
	w.barrier.Wait()
}

// reduce exercises the Barrier-method spelling of a collective site.
func reduce(w *Worker, vals []float64) float64 {
	if w.id != 0 {
		return 0 // want "skips the collective"
	}
	w.Barrier()
	return vals[0]
}

// drain shows the escape hatch: a justified protocol exemption is
// annotated, not silenced.
func (w *Worker) drain() {
	if w.replaying {
		//lint:ignore ppcollective this toy barrier counts only non-replaying members, mirroring the runtime's pass-through
		return
	}
	w.Barrier()
}
