// Fixture for the ppdeterminism analyzer: serialization code whose bytes
// must be a pure function of the captured state.
package ppdeterminism

import (
	"bytes"
	"sort"
	"time"
)

type snapshot struct {
	fields map[string][]byte
}

// encodeBad leaks the randomized map iteration order straight into the
// encoded stream: two captures of identical state produce different bytes.
func encodeBad(s snapshot, buf *bytes.Buffer) {
	for k, v := range s.fields { // want "ordered emission"
		buf.WriteString(k)
		buf.Write(v)
	}
}

// encodeGood is the collect-then-sort idiom the real encoders use.
func encodeGood(s snapshot, buf *bytes.Buffer) {
	names := make([]string, 0, len(s.fields))
	for k := range s.fields {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		buf.WriteString(k)
		buf.Write(s.fields[k])
	}
}

// fieldNamesUnsorted collects keys but never sorts them, so every caller
// inherits the randomized order.
func fieldNamesUnsorted(s snapshot) []string {
	var names []string
	for k := range s.fields { // want "without sorting"
		names = append(names, k)
	}
	return names
}

// dataBytes accumulates an integer: order-insensitive, not a finding.
func dataBytes(s snapshot) int {
	n := 0
	for _, v := range s.fields {
		n += len(v)
	}
	return n
}

// clone writes into a fresh map: order-insensitive, not a finding.
func clone(s snapshot) snapshot {
	out := snapshot{fields: make(map[string][]byte, len(s.fields))}
	for k, v := range s.fields {
		out.fields[k] = append([]byte(nil), v...)
	}
	return out
}

// chunkIndex keys chunks by snapshot pointer: hashes or encodings derived
// from these keys cannot be reproduced in the restarted process.
type chunkIndex struct {
	dirty map[*snapshot]uint64 // want "map keyed by"
}

// stamp embeds capture time in the payload, so re-encoding after restore
// never round-trips.
func stamp(buf *bytes.Buffer) {
	buf.WriteString(time.Now().String()) // want "wall clock"
}
