// Fixture for the pplock analyzer: blocking operations under the Engine or
// Supervisor mutex.
package pplock

import (
	"sync"
	"time"
)

type Snapshot struct{}

type Store interface {
	Save(s Snapshot) error
	Load(app string) (Snapshot, bool, error)
}

type Supervisor struct {
	mu    sync.Mutex
	cond  *sync.Cond
	wg    sync.WaitGroup
	kick  chan struct{}
	store Store
	queue []int
}

// submitBad performs store I/O under the deferred-unlock span.
func (s *Supervisor) submitBad(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = append(s.queue, id)
	return s.store.Save(Snapshot{}) // want "checkpoint-store I/O"
}

// submitGood snapshots under the lock and writes after releasing it.
func (s *Supervisor) submitGood(id int) error {
	s.mu.Lock()
	s.queue = append(s.queue, id)
	snap := Snapshot{}
	s.mu.Unlock()
	return s.store.Save(snap)
}

// saveJournalLocked inherits the whole-body critical section from the
// *Locked naming convention.
func (s *Supervisor) saveJournalLocked() error {
	return s.store.Save(Snapshot{}) // want "checkpoint-store I/O"
}

func (s *Supervisor) drainBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want "Wait while holding"
}

func (s *Supervisor) kickBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kick <- struct{}{} // want "channel send while holding"
}

// kickGood makes the send non-blocking, so the lock can never be held
// behind an unready receiver.
func (s *Supervisor) kickGood() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// waitCond is the one legal wait under a mutex: sync.Cond.Wait releases the
// lock while parked.
func (s *Supervisor) waitCond() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 {
		s.cond.Wait()
	}
}

func (s *Supervisor) napLocked() {
	time.Sleep(time.Millisecond) // want "time.Sleep while holding"
}

type Engine struct {
	mu    sync.Mutex
	saves int
}

// record holds the lock only around pure bookkeeping.
func (e *Engine) record() {
	e.mu.Lock()
	e.saves++
	e.mu.Unlock()
}

// flush locks only inside a deferred closure: the store write itself runs
// unlocked, and the closure's span must not leak into the function body.
func (e *Engine) flush(st Store) error {
	defer func() {
		e.mu.Lock()
		e.saves++
		e.mu.Unlock()
	}()
	return st.Save(Snapshot{})
}
