// Fixture for the ppstore analyzer: store write atomicity, exact-name
// deletion, the links-before-manifest / GC-after-commit wave protocol,
// and the put-before-save / release-after-clear chunk protocol.
package ppstore

import (
	"os"
	"path/filepath"
	"strings"
)

type Manifest struct{ SP uint64 }

type Delta struct{ Name string }

type Store interface {
	Save(name string, data []byte) error
	SaveShardDelta(d Delta) error
	SaveManifest(m Manifest) error
	Clear(app string) error
	ClearShardDeltas(app string) error
	PutChunk(key string, payload []byte) (bool, error)
	ReleaseChunks(keys []string) error
}

func encode(m Manifest) []byte { return nil }

// BadFS breaks every write contract a store has.
type BadFS struct{ dir string }

func (s *BadFS) SaveManifest(m Manifest) error {
	return os.WriteFile(filepath.Join(s.dir, "manifest.ppm"), encode(m), 0o644) // want "temp file and rename"
}

func (s *BadFS) Save(name string, data []byte) error {
	f, err := os.Create(filepath.Join(s.dir, name)) // want "temp file and rename"
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

func (s *BadFS) Clear(app string) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), app) { // want "prefix matching"
			_ = os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	return nil
}

func (s *BadFS) PutChunk(key string, payload []byte) (bool, error) {
	return false, os.WriteFile(filepath.Join(s.dir, "cas-"+key+".chunk"), payload, 0o644) // want "temp file and rename"
}

// GoodFS follows the contracts: temp+rename saves, exact-name deletion.
type GoodFS struct{ dir string }

func (s *GoodFS) SaveManifest(m Manifest) error {
	tmp, err := os.CreateTemp(s.dir, "manifest-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(encode(m)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.dir, "manifest.ppm"))
}

func (s *GoodFS) Clear(app string) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		rest, ok := strings.CutPrefix(e.Name(), app+"-")
		if ok && strings.HasSuffix(rest, ".ppc") {
			_ = os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	return nil
}

// commitWave is the correct wave protocol: every link lands, then the
// manifest commits them, then the superseded chain is collected.
func commitWave(st Store, links []Delta, m Manifest) error {
	for _, d := range links {
		if err := st.SaveShardDelta(d); err != nil {
			return err
		}
	}
	if err := st.SaveManifest(m); err != nil {
		return err
	}
	return st.ClearShardDeltas("app")
}

// commitWrongOrder commits a manifest that references a link not yet on
// disk.
func commitWrongOrder(st Store, d Delta, m Manifest) error {
	if err := st.SaveManifest(m); err != nil {
		return err
	}
	return st.SaveShardDelta(d) // want "after SaveManifest"
}

// gcBeforeCommit collects the old chain before the new manifest commits,
// so a crash between the two loses the only restart point.
func gcBeforeCommit(st Store, m Manifest) error {
	if err := st.ClearShardDeltas("app"); err != nil { // want "GC before the committing"
		return err
	}
	return st.SaveManifest(m)
}

// swapDeduped is the correct chunk protocol: the new artifact's chunks
// land first, then the artifact commits, then the superseded artifact is
// cleared, and only then do its chunks' refcounts drop. A crash anywhere
// in the sequence leaks chunks but never dangles a reference.
func swapDeduped(st Store, keys, old []string, payload, blob []byte) error {
	for _, k := range keys {
		if _, err := st.PutChunk(k, payload); err != nil {
			return err
		}
	}
	if err := st.Save("app", blob); err != nil {
		return err
	}
	if err := st.Clear("app-old"); err != nil {
		return err
	}
	return st.ReleaseChunks(old)
}

// saveThenPut commits an artifact whose chunks are not durable yet: a
// crash before the PutChunk leaves a restart point that cannot load.
func saveThenPut(st Store, key string, payload, blob []byte) error {
	if err := st.Save("app", blob); err != nil {
		return err
	}
	_, err := st.PutChunk(key, payload) // want "must land before the artifact commits"
	return err
}

// releaseBeforeClear drops refcounts while an artifact still referencing
// the chunks survives a crash between the two calls.
func releaseBeforeClear(st Store, keys []string) error {
	if err := st.ReleaseChunks(keys); err != nil { // want "only after every referencing artifact"
		return err
	}
	return st.Clear("app")
}
