package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PPDeterminism guards the serialization invariant the checkpoint formats
// rely on: the encoded bytes (and the StateHash content hashes that drive
// delta checkpoints) are a pure function of the captured state. The
// internal/serial encoders achieve that by collecting map keys and sorting
// them before emission; this analyzer flags the ways that discipline
// erodes — emitting inside a map range, collecting without sorting,
// hashing or keying on pointer identity, reading the clock or random
// numbers anywhere in the package.
var PPDeterminism = &Analyzer{
	Name: "ppdeterminism",
	Doc:  "internal/serial encode/capture/restore paths must produce bytes that are a pure function of state",
	Run:  runPPDeterminism,
}

func runPPDeterminism(pass *Pass) error {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, "ppar/internal/serial") && !fixturePath(path, "ppdeterminism") {
		return nil
	}
	forEachFuncBody(pass, func(fd *ast.FuncDecl) {
		if at, ok := usesRand(pass.TypesInfo, fd.Body); ok {
			pass.Reportf(at.Pos(), "serialization code uses math/rand: encoded bytes must be a pure function of state")
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if msg := nondeterministicCall(pass.TypesInfo, n); strings.Contains(msg, "wall clock") {
					pass.Reportf(n.Pos(), "serialization code %s: two captures of the same state must encode identically", msg)
				}
			case *ast.RangeStmt:
				if rangeOverMap(pass.TypesInfo, n) {
					if leak := mapRangeOrderLeak(pass.TypesInfo, n, fd.Body); leak != "" {
						pass.Reportf(n.Pos(), "map range %s: iteration order is randomized, so the encoded bytes differ between captures (collect the keys and sort them first)", leak)
					}
				}
			}
			return true
		})
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			mt, ok := n.(*ast.MapType)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[mt.Key]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Pointer, *types.Chan, *types.Signature:
				pass.Reportf(mt.Key.Pos(), "map keyed by %s: pointer identity is process-specific, so anything derived from these keys (order, hashes, encodings) cannot be reproduced after restart", tv.Type.String())
			}
			return true
		})
	}
	return nil
}
