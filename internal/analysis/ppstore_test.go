package analysis

import "testing"

func TestPPStore(t *testing.T) {
	RunFixture(t, PPStore, "ppstore")
}
