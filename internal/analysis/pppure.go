package analysis

import (
	"go/ast"
	"go/types"
)

// PPPure enforces the AdaptPolicy.Decide purity contract (pp/policy.go:
// "Decide must be a pure function of the RunStats") and keeps the
// checkpoint-cadence accounting in internal/core — the inputs Decide sees —
// deterministic. A policy that reads the clock, draws random numbers, does
// I/O, leaks map iteration order, or mutates shared state makes the
// engine's adaptation decisions diverge across team members and across
// replays, which is exactly what the safe-point protocol forbids.
var PPPure = &Analyzer{
	Name: "pppure",
	Doc:  "AdaptPolicy.Decide implementations and the cadence-counter paths must be pure functions of deterministic run state",
	Run:  runPPPure,
}

func runPPPure(pass *Pass) error {
	cadenceScope := pass.Pkg.Path() == "ppar/internal/core" || fixturePath(pass.Pkg.Path(), "pppure")
	forEachFuncBody(pass, func(fd *ast.FuncDecl) {
		switch {
		case isDecideMethod(pass, fd):
			checkPure(pass, fd.Body, "AdaptPolicy.Decide", recvObject(pass, fd))
		case cadenceScope && referencesCadence(fd.Body):
			checkPure(pass, fd.Body, "the checkpoint-cadence path", nil)
		}
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit := policyFuncLit(pass, n); lit != nil {
				checkPure(pass, lit.Body, "a PolicyFunc policy", nil)
				return false
			}
			return true
		})
	}
	return nil
}

// isDecideMethod matches methods named Decide taking exactly one parameter
// of a named type RunStats — the AdaptPolicy shape, wherever declared.
func isDecideMethod(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Decide" {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) > 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[params.List[0].Type]
	return ok && namedName(tv.Type) == "RunStats"
}

// policyFuncLit matches the conversion PolicyFunc(func(...) ...{...}) that
// turns a closure into a policy.
func policyFuncLit(pass *Pass, n ast.Node) *ast.FuncLit {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	tn, ok := pass.TypesInfo.Uses[id].(*types.TypeName)
	if !ok || tn.Name() != "PolicyFunc" {
		return nil
	}
	lit, _ := ast.Unparen(call.Args[0]).(*ast.FuncLit)
	return lit
}

// cadenceFields are the deterministic counters RunStats exposes to
// policies; any function computing or updating them is part of the
// decision input and inherits the determinism contract.
var cadenceFields = map[string]bool{"FullSaves": true, "DeltaSaves": true, "LastCheckpointSP": true}

func referencesCadence(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && cadenceFields[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// recvObject resolves the receiver variable of a method declaration.
func recvObject(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// checkPure reports every purity violation in body. recv, when non-nil, is
// the method receiver: mutating it from Decide also breaks the contract
// (policy state would have to be checkpointed, and it is not).
func checkPure(pass *Pass, body *ast.BlockStmt, what string, recv types.Object) {
	if at, ok := usesRand(pass.TypesInfo, body); ok {
		pass.Reportf(at.Pos(), "%s uses math/rand: decisions must be deterministic across team members and replays", what)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if msg := nondeterministicCall(pass.TypesInfo, n); msg != "" {
				pass.Reportf(n.Pos(), "%s %s: it must be a pure function of its deterministic inputs", what, msg)
			}
		case *ast.RangeStmt:
			if rangeOverMap(pass.TypesInfo, n) {
				if leak := mapRangeOrderLeak(pass.TypesInfo, n, body); leak != "" {
					pass.Reportf(n.Pos(), "%s %s: map iteration order is randomized, so the result differs between runs", what, leak)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkPureWrite(pass, lhs, what, recv)
			}
		case *ast.IncDecStmt:
			checkPureWrite(pass, n.X, what, recv)
		}
		return true
	})
}

func checkPureWrite(pass *Pass, lhs ast.Expr, what string, recv types.Object) {
	id := rootIdent(lhs)
	if id == nil {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		pass.Reportf(lhs.Pos(), "%s mutates package-level state (%s): decisions must not depend on or alter shared mutable state", what, id.Name)
		return
	}
	if recv != nil && obj == recv {
		pass.Reportf(lhs.Pos(), "%s mutates its receiver (%s): policy state is not checkpointed, so it diverges on restart", what, id.Name)
	}
}
