// Package analysis is pplint's static-analysis kernel: a small, offline
// mirror of the golang.org/x/tools/go/analysis core (Analyzer, Pass,
// Diagnostic) built on the standard library's go/ast and go/types only.
//
// The repo's correctness contracts — policy purity, serialization
// determinism, collective completeness, store write ordering, no blocking
// I/O under the engine/supervisor locks — are enforced by the five
// analyzers in this package (pppure, ppdeterminism, ppcollective, ppstore,
// pplock), run over every package of the module by cmd/pplint. The API
// deliberately matches go/analysis field for field so the suite can swap to
// the upstream framework (and its multichecker/analysistest) if the module
// ever takes on the x/tools dependency; the build environment for this repo
// is offline, so the kernel vendors nothing and shells out only to the go
// tool already on PATH.
//
// False positives are suppressed at the marked line (or the line below the
// comment) with the staticcheck-style directive
//
//	//lint:ignore pplock the journal write is the admission critical section
//
// naming one or more comma-separated analyzers and a mandatory reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass and how to run it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// All returns the pplint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{PPPure, PPDeterminism, PPCollective, PPStore, PPLock}
}

// Run applies every analyzer to every package, drops findings suppressed by
// lint:ignore directives, and returns the rest sorted by position.
func Run(analyzers []*Analyzer, fset *token.FileSet, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(fset, pkg.Syntax)
		for _, a := range analyzers {
			var found []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &found,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range found {
				if !ignores.suppressed(fset, d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ignoreSet maps file -> line -> analyzer names excused on that line.
type ignoreSet map[string]map[int][]string

var ignoreRx = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+\S`)

// collectIgnores gathers lint:ignore directives. A directive excuses its
// own line and the next one, so it works both at end of line and as a
// whole-line comment above the offending statement. Directives without a
// reason are ignored (and so suppress nothing), matching staticcheck.
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := ignoreSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				names := strings.Split(m[1], ",")
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return set
}

func (set ignoreSet) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, name := range set[pos.Filename][pos.Line] {
		if name == d.Analyzer {
			return true
		}
	}
	return false
}
