package analysis

import "testing"

func TestPPPure(t *testing.T) {
	RunFixture(t, PPPure, "pppure")
}
