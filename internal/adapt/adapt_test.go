package adapt

import (
	"testing"
	"time"

	"ppar/internal/core"
	"ppar/internal/jgf"
)

func TestManagerDrivesExpansion(t *testing.T) {
	ref := jgf.SORReference(64, 40)
	res := &jgf.SORResult{}
	cfg := core.Config{
		Mode: core.Shared, Threads: 2, AppName: "adapt-sor",
		Modules: jgf.SORModules(core.Shared),
	}
	eng, err := core.New(cfg, func() core.App { return jgf.NewSOR(64, 40, res) })
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Grant(0, core.AdaptTarget{Threads: 4}))
	stop := m.Drive(eng)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	stop()
	if len(m.Fired()) != 1 {
		t.Fatalf("fired %d events, want 1", len(m.Fired()))
	}
	if !eng.Report().Adapted {
		t.Error("engine did not adapt")
	}
	if res.Gtotal != ref {
		t.Fatalf("Gtotal=%v want %v", res.Gtotal, ref)
	}
}

func TestManagerStopCancelsPendingEvents(t *testing.T) {
	m := NewManager(Grant(time.Hour, core.AdaptTarget{Threads: 8}))
	res := &jgf.SORResult{}
	cfg := core.Config{Mode: core.Shared, Threads: 2, AppName: "adapt-sor",
		Modules: jgf.SORModules(core.Shared)}
	eng, err := core.New(cfg, func() core.App { return jgf.NewSOR(32, 5, res) })
	if err != nil {
		t.Fatal(err)
	}
	stop := m.Drive(eng)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not cancel the pending event")
	}
	if len(m.Fired()) != 0 {
		t.Errorf("event fired despite one-hour delay")
	}
	stop() // idempotent
}

func TestRevokeThenGrantSequence(t *testing.T) {
	ref := jgf.SORReference(64, 60)
	res := &jgf.SORResult{}
	cfg := core.Config{Mode: core.Shared, Threads: 4, AppName: "adapt-sor",
		Modules: jgf.SORModules(core.Shared)}
	eng, err := core.New(cfg, func() core.App { return jgf.NewSOR(64, 60, res) })
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(
		Revoke(0, core.AdaptTarget{Threads: 2}),
		Grant(2*time.Millisecond, core.AdaptTarget{Threads: 4}),
	)
	stop := m.Drive(eng)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	stop()
	if res.Gtotal != ref {
		t.Fatalf("Gtotal=%v want %v", res.Gtotal, ref)
	}
}

func TestStepPolicy(t *testing.T) {
	p := StepPolicy{Min: 1, Max: 16}
	// Comfortably on schedule: keep the current width.
	if got := p.Recommend(4, time.Millisecond, 10, time.Second); got != 4 {
		t.Errorf("on-schedule recommend = %d, want 4", got)
	}
	// Far behind: scale out (but never past Max).
	if got := p.Recommend(2, 100*time.Millisecond, 1000, time.Second); got != 16 {
		t.Errorf("behind recommend = %d, want 16", got)
	}
	// Clamp to Min.
	if got := p.Recommend(0, time.Nanosecond, 1, time.Hour); got != 1 {
		t.Errorf("min clamp = %d, want 1", got)
	}
}

func TestMigrateEventValidatesMode(t *testing.T) {
	ev := Migrate(0, core.Distributed, core.AdaptTarget{Procs: 4})
	if ev.Target.Mode != core.Distributed || ev.Target.Procs != 4 {
		t.Fatalf("Migrate target = %+v", ev.Target)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Migrate accepted the zero mode (would silently degrade to an in-place reshape)")
		}
	}()
	Migrate(0, 0, core.AdaptTarget{Procs: 4})
}
