// Package adapt simulates the external resource manager the paper assumes
// (§I, §VI: "Current implementation of this approach rely on external tools
// [to] determinate the optimal set of resources to be used by the
// applications", citing self-adaptation systems like [3]).
//
// A Manager replays a schedule of resource-availability events against a
// running engine: "availability of new resources" turns into an expansion
// request, "requests to release allocated resources for use by higher
// priority jobs" into a contraction request. The engine applies each
// request at the next safe point its coordinator reaches — the decoupling
// the paper prescribes (resource *selection* is external; resource
// *adaptation* is the pluggable runtime's job).
package adapt

import (
	"fmt"
	"sync"
	"time"

	"ppar/internal/core"
)

// Event is one change in the resources committed to the application.
type Event struct {
	// After is the delay from Drive until the event fires.
	After time.Duration
	// Target is the new resource allocation.
	Target core.AdaptTarget
	// Reason is free-form (logged by callers).
	Reason string
}

// Grant builds an expansion event.
func Grant(after time.Duration, target core.AdaptTarget) Event {
	return Event{After: after, Target: target, Reason: "resources granted"}
}

// Revoke builds a contraction event.
func Revoke(after time.Duration, target core.AdaptTarget) Event {
	return Event{After: after, Target: target, Reason: "resources revoked for a higher-priority job"}
}

// Migrate builds a cross-mode migration event: a resource manager moving
// the application to a different class of resources (e.g. from a shared
// node to a cluster partition) requests an in-process executor migration
// via AdaptTarget.Mode instead of a kill-and-restart. An invalid mode —
// including the zero value, which would silently degrade the event into an
// in-place reshape — panics: it is a programming error in the schedule.
func Migrate(after time.Duration, mode core.Mode, target core.AdaptTarget) Event {
	if _, err := core.ParseMode(mode.String()); err != nil {
		panic(fmt.Sprintf("adapt: Migrate needs a valid target mode, got %d", int(mode)))
	}
	target.Mode = mode
	return Event{After: after, Target: target, Reason: "resource class changed: cross-mode migration"}
}

// Manager replays availability events against an engine. It implements
// core.AdaptDriver, so it can be attached to a deployment directly (the
// public pp.WithAdaptManager option) instead of being driven by hand.
type Manager struct {
	events []Event

	mu    sync.Mutex
	fired []Event
	stop  chan struct{}
	done  chan struct{}
}

var _ core.AdaptDriver = (*Manager)(nil)

// NewManager creates a manager for the given schedule.
func NewManager(events ...Event) *Manager {
	return &Manager{events: events}
}

// Drive starts replaying the schedule against eng. Events with no delay
// fire synchronously before Drive returns (so a request scheduled "now" is
// pending before the run starts); delayed events fire from a background
// goroutine. Call the returned stop function (idempotent) once the run
// finishes; events whose delay has not elapsed by then never fire — exactly
// like a real resource manager outliving a short job.
func (m *Manager) Drive(eng *core.Engine) (stop func()) {
	m.mu.Lock()
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stopCh, doneCh := m.stop, m.done
	m.mu.Unlock()

	var delayed []Event
	for _, ev := range m.events {
		if ev.After <= 0 {
			eng.RequestAdapt(ev.Target)
			m.mu.Lock()
			m.fired = append(m.fired, ev)
			m.mu.Unlock()
			continue
		}
		delayed = append(delayed, ev)
	}

	go func() {
		defer close(doneCh)
		start := time.Now()
		for _, ev := range delayed {
			wait := ev.After - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-stopCh:
					return
				}
			}
			select {
			case <-stopCh:
				return
			default:
			}
			eng.RequestAdapt(ev.Target)
			m.mu.Lock()
			m.fired = append(m.fired, ev)
			m.mu.Unlock()
		}
	}()

	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-doneCh
	}
}

// Fired reports the events delivered so far.
func (m *Manager) Fired() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.fired...)
}

// StepPolicy is a trivial self-adaptation policy of the kind the paper's
// future work proposes (§VI): given an observed per-safe-point duration and
// a deadline for the remaining work, it recommends a team size between Min
// and Max. It exists to demonstrate how a monitoring loop composes with
// RequestAdapt; sophisticated policies belong to external tools.
type StepPolicy struct {
	Min, Max int
}

// Recommend returns the smallest width within [Min,Max] projected to finish
// remaining safe points before the deadline, assuming linear scaling from
// the observed per-safe-point time at the current width.
func (p StepPolicy) Recommend(current int, perSafePoint time.Duration, remaining int, deadline time.Duration) int {
	if current < 1 {
		current = 1
	}
	need := time.Duration(remaining) * perSafePoint
	width := current
	for width < p.Max && need > deadline {
		width *= 2
		need /= 2
	}
	if width > p.Max {
		width = p.Max
	}
	if width < p.Min {
		width = p.Min
	}
	return width
}
