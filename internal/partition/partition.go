// Package partition implements the data-partitioning layouts the paper's
// distributed-memory abstractions build on (§III.C): primitive data held by
// an object aggregate "can be partitioned among aggregate elements, according
// to a pre-defined partition (block, cyclic and hybrid)".
//
// A Layout describes how N indices are divided among P parts. The package
// also provides scatter/gather/halo plans used by the ScatterBefore /
// GatherAfter / UpdateBoundaryBefore templates and by the checkpoint
// gather-at-master protocol (§IV.A).
package partition

import "fmt"

// Kind selects a partitioning strategy.
type Kind int

const (
	// Block gives each part one contiguous range of indices; the first
	// N mod P parts get one extra element.
	Block Kind = iota
	// Cyclic deals indices round-robin: index i belongs to part i mod P.
	Cyclic
	// BlockCyclic (the paper's "hybrid") deals fixed-size chunks
	// round-robin: chunk k = [k*C, (k+1)*C) belongs to part k mod P.
	BlockCyclic
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case BlockCyclic:
		return "block-cyclic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Layout describes the division of N indices among Parts parts.
// Chunk is only meaningful for BlockCyclic (0 means 1).
//
// Bounds, when non-nil, overrides the even Block division with explicit cut
// points: part p owns [Bounds[p], Bounds[p+1]). It is only meaningful for
// Block layouts and is how the Task executor's cross-rank rebalancer shifts
// work between ranks without changing the partitioning kind.
type Layout struct {
	Kind   Kind
	N      int
	Parts  int
	Chunk  int
	Bounds []int
}

// New builds a layout, validating its parameters.
func New(kind Kind, n, parts int) Layout {
	if n < 0 {
		panic(fmt.Sprintf("partition: negative length %d", n))
	}
	if parts < 1 {
		panic(fmt.Sprintf("partition: need at least one part, got %d", parts))
	}
	return Layout{Kind: kind, N: n, Parts: parts, Chunk: 1}
}

// NewBlockCyclic builds a block-cyclic layout with the given chunk size.
func NewBlockCyclic(n, parts, chunk int) Layout {
	l := New(BlockCyclic, n, parts)
	if chunk < 1 {
		panic(fmt.Sprintf("partition: chunk must be >= 1, got %d", chunk))
	}
	l.Chunk = chunk
	return l
}

// WithBounds returns a copy of the layout using explicit cut points: part p
// owns [bounds[p], bounds[p+1]). Only Block layouts accept bounds; they must
// be non-decreasing, start at 0 and end at N.
func (l Layout) WithBounds(bounds []int) Layout {
	if l.Kind != Block {
		panic("partition: WithBounds is only defined for Block layouts")
	}
	if len(bounds) != l.Parts+1 {
		panic(fmt.Sprintf("partition: got %d bounds, want %d", len(bounds), l.Parts+1))
	}
	if bounds[0] != 0 || bounds[l.Parts] != l.N {
		panic(fmt.Sprintf("partition: bounds must span [0,%d], got [%d,%d]", l.N, bounds[0], bounds[l.Parts]))
	}
	for p := 1; p <= l.Parts; p++ {
		if bounds[p] < bounds[p-1] {
			panic(fmt.Sprintf("partition: bounds must be non-decreasing, got %v", bounds))
		}
	}
	l.Bounds = append([]int(nil), bounds...)
	return l
}

func (l Layout) chunk() int {
	if l.Chunk < 1 {
		return 1
	}
	return l.Chunk
}

// Owner reports which part owns index i.
func (l Layout) Owner(i int) int {
	if i < 0 || i >= l.N {
		panic(fmt.Sprintf("partition: index %d out of range [0,%d)", i, l.N))
	}
	switch l.Kind {
	case Block:
		for p := 0; p < l.Parts; p++ {
			if _, hi := l.Range(p); i < hi {
				return p
			}
		}
		return l.Parts - 1 // unreachable for valid i
	case Cyclic:
		return i % l.Parts
	case BlockCyclic:
		return (i / l.chunk()) % l.Parts
	}
	panic("partition: unknown kind")
}

func (l Layout) blockLen(p int) int {
	if l.Bounds != nil {
		return l.Bounds[p+1] - l.Bounds[p]
	}
	base := l.N / l.Parts
	if p < l.N%l.Parts {
		return base + 1
	}
	return base
}

// Range reports the contiguous index range [lo, hi) owned by part p.
// It is only valid for Block layouts; other kinds panic (use Indices).
func (l Layout) Range(p int) (lo, hi int) {
	if l.Kind != Block {
		panic("partition: Range is only defined for Block layouts")
	}
	l.checkPart(p)
	if l.Bounds != nil {
		return l.Bounds[p], l.Bounds[p+1]
	}
	base := l.N / l.Parts
	rem := l.N % l.Parts
	if p < rem {
		lo = p * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (p-rem)*base
	return lo, lo + base
}

func (l Layout) checkPart(p int) {
	if p < 0 || p >= l.Parts {
		panic(fmt.Sprintf("partition: part %d out of range [0,%d)", p, l.Parts))
	}
}

// Count reports how many indices part p owns.
func (l Layout) Count(p int) int {
	l.checkPart(p)
	switch l.Kind {
	case Block:
		return l.blockLen(p)
	case Cyclic:
		n := l.N / l.Parts
		if p < l.N%l.Parts {
			n++
		}
		return n
	case BlockCyclic:
		c := l.chunk()
		full := l.N / c
		n := (full / l.Parts) * c
		if p < full%l.Parts {
			n += c
		}
		// trailing partial chunk
		if rem := l.N % c; rem != 0 && full%l.Parts == p {
			n += rem
		}
		return n
	}
	panic("partition: unknown kind")
}

// Indices calls fn for every index owned by part p, in increasing order.
func (l Layout) Indices(p int, fn func(i int)) {
	l.checkPart(p)
	switch l.Kind {
	case Block:
		lo, hi := l.Range(p)
		for i := lo; i < hi; i++ {
			fn(i)
		}
	case Cyclic:
		for i := p; i < l.N; i += l.Parts {
			fn(i)
		}
	case BlockCyclic:
		c := l.chunk()
		for start := p * c; start < l.N; start += l.Parts * c {
			end := start + c
			if end > l.N {
				end = l.N
			}
			for i := start; i < end; i++ {
				fn(i)
			}
		}
	}
}

// LocalSpan intersects the half-open global range [lo, hi) with the indices
// part p owns, calling fn once per maximal contiguous sub-range. This is the
// primitive behind distributed work-sharing of a loop over a partitioned
// dimension (the paper's Series/SOR loops run only over local indices).
func (l Layout) LocalSpan(p, lo, hi int, fn func(lo, hi int)) {
	if lo < 0 {
		lo = 0
	}
	if hi > l.N {
		hi = l.N
	}
	if lo >= hi {
		return
	}
	switch l.Kind {
	case Block:
		plo, phi := l.Range(p)
		a, b := max(lo, plo), min(hi, phi)
		if a < b {
			fn(a, b)
		}
	case Cyclic:
		for i := p; i < hi; i += l.Parts {
			if i >= lo {
				fn(i, i+1)
			}
		}
	case BlockCyclic:
		c := l.chunk()
		for start := p * c; start < hi; start += l.Parts * c {
			a, b := max(lo, start), min(hi, start+c)
			if a < b {
				fn(a, b)
			}
		}
	}
}

// Neighbours reports the parts owning the indices adjacent to part p's
// owned range boundaries (for Block layouts) — the halo-exchange partners
// for a five-point stencil partitioned by rows. Missing neighbours are -1.
func (l Layout) Neighbours(p int) (below, above int) {
	if l.Kind != Block {
		panic("partition: Neighbours is only defined for Block layouts")
	}
	lo, hi := l.Range(p)
	below, above = -1, -1
	if lo > 0 {
		below = l.Owner(lo - 1)
	}
	if hi < l.N {
		above = l.Owner(hi)
	}
	return below, above
}

// ScatterF64 splits data into per-part slices according to the layout
// (copies; data is unmodified). Part p's slice holds its owned elements in
// increasing index order.
func ScatterF64(l Layout, data []float64) [][]float64 {
	if len(data) != l.N {
		panic(fmt.Sprintf("partition: data length %d != layout N %d", len(data), l.N))
	}
	parts := make([][]float64, l.Parts)
	for p := 0; p < l.Parts; p++ {
		out := make([]float64, 0, l.Count(p))
		l.Indices(p, func(i int) { out = append(out, data[i]) })
		parts[p] = out
	}
	return parts
}

// GatherF64 reassembles a full slice from per-part slices produced by
// ScatterF64 (or computed locally with the same shape).
func GatherF64(l Layout, parts [][]float64) []float64 {
	if len(parts) != l.Parts {
		panic(fmt.Sprintf("partition: got %d parts, layout has %d", len(parts), l.Parts))
	}
	out := make([]float64, l.N)
	for p := 0; p < l.Parts; p++ {
		if len(parts[p]) != l.Count(p) {
			panic(fmt.Sprintf("partition: part %d has %d elements, want %d", p, len(parts[p]), l.Count(p)))
		}
		k := 0
		l.Indices(p, func(i int) { out[i] = parts[p][k]; k++ })
	}
	return out
}

// ScatterRows splits a matrix by rows according to the layout (row copies
// reference the original backing arrays; callers that need isolation must
// deep-copy).
func ScatterRows(l Layout, m [][]float64) [][][]float64 {
	if len(m) != l.N {
		panic(fmt.Sprintf("partition: matrix has %d rows, layout N %d", len(m), l.N))
	}
	parts := make([][][]float64, l.Parts)
	for p := 0; p < l.Parts; p++ {
		out := make([][]float64, 0, l.Count(p))
		l.Indices(p, func(i int) { out = append(out, m[i]) })
		parts[p] = out
	}
	return parts
}

// Even reports whether every part owns the same number of indices.
func (l Layout) Even() bool {
	c0 := l.Count(0)
	for p := 1; p < l.Parts; p++ {
		if l.Count(p) != c0 {
			return false
		}
	}
	return true
}
