package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func layouts(n, parts int) []Layout {
	return []Layout{
		New(Block, n, parts),
		New(Cyclic, n, parts),
		NewBlockCyclic(n, parts, 1),
		NewBlockCyclic(n, parts, 3),
		NewBlockCyclic(n, parts, 8),
	}
}

// Invariant: every index is owned by exactly one part, Indices enumerates
// exactly the owned set, and Count matches.
func TestDisjointCover(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 16, 100, 101} {
		for _, parts := range []int{1, 2, 3, 7, 16, 33} {
			for _, l := range layouts(n, parts) {
				seen := make([]int, n)
				total := 0
				for p := 0; p < parts; p++ {
					count := 0
					prev := -1
					l.Indices(p, func(i int) {
						if i <= prev {
							t.Fatalf("%v part %d: indices not increasing (%d after %d)", l, p, i, prev)
						}
						prev = i
						seen[i]++
						count++
					})
					if count != l.Count(p) {
						t.Errorf("%v part %d: Indices yields %d, Count says %d", l, p, count, l.Count(p))
					}
					total += count
				}
				if total != n {
					t.Errorf("%v: total owned %d != N %d", l, total, n)
				}
				for i, c := range seen {
					if c != 1 {
						t.Errorf("%v: index %d owned %d times", l, i, c)
					}
				}
			}
		}
	}
}

func TestOwnerMatchesIndices(t *testing.T) {
	for _, l := range layouts(50, 7) {
		for p := 0; p < l.Parts; p++ {
			l.Indices(p, func(i int) {
				if got := l.Owner(i); got != p {
					t.Errorf("%v: Owner(%d) = %d, part %d enumerates it", l, i, got, p)
				}
			})
		}
	}
}

func TestBlockRange(t *testing.T) {
	l := New(Block, 10, 3)
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for p, w := range want {
		lo, hi := l.Range(p)
		if lo != w[0] || hi != w[1] {
			t.Errorf("Range(%d) = [%d,%d), want [%d,%d)", p, lo, hi, w[0], w[1])
		}
	}
}

func TestRangePanicsForCyclic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Range on cyclic layout did not panic")
		}
	}()
	New(Cyclic, 10, 2).Range(0)
}

func TestCyclicOwner(t *testing.T) {
	l := New(Cyclic, 9, 3)
	for i := 0; i < 9; i++ {
		if got := l.Owner(i); got != i%3 {
			t.Errorf("Owner(%d) = %d, want %d", i, got, i%3)
		}
	}
}

func TestBlockCyclicOwner(t *testing.T) {
	l := NewBlockCyclic(12, 2, 3)
	// chunks: [0,3)→0 [3,6)→1 [6,9)→0 [9,12)→1
	wants := []int{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1}
	for i, w := range wants {
		if got := l.Owner(i); got != w {
			t.Errorf("Owner(%d) = %d, want %d", i, got, w)
		}
	}
}

// Invariant: LocalSpan(p, lo, hi) enumerates exactly owned ∩ [lo,hi).
func TestLocalSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, l := range layouts(40, 5) {
		for trial := 0; trial < 50; trial++ {
			lo := rng.Intn(45) - 2
			hi := lo + rng.Intn(45)
			for p := 0; p < l.Parts; p++ {
				want := map[int]bool{}
				l.Indices(p, func(i int) {
					if i >= lo && i < hi {
						want[i] = true
					}
				})
				got := map[int]bool{}
				l.LocalSpan(p, lo, hi, func(a, b int) {
					if a >= b {
						t.Fatalf("%v: empty span [%d,%d)", l, a, b)
					}
					for i := a; i < b; i++ {
						if got[i] {
							t.Fatalf("%v: index %d spanned twice", l, i)
						}
						got[i] = true
					}
				})
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Errorf("%v part %d [%d,%d): got %v want %v", l, p, lo, hi, got, want)
				}
			}
		}
	}
}

func TestNeighbours(t *testing.T) {
	l := New(Block, 10, 3)
	cases := []struct{ p, below, above int }{{0, -1, 1}, {1, 0, 2}, {2, 1, -1}}
	for _, c := range cases {
		b, a := l.Neighbours(c.p)
		if b != c.below || a != c.above {
			t.Errorf("Neighbours(%d) = %d,%d want %d,%d", c.p, b, a, c.below, c.above)
		}
	}
}

func TestNeighboursEmptyParts(t *testing.T) {
	// More parts than elements: some parts own nothing.
	l := New(Block, 2, 4)
	b, a := l.Neighbours(0)
	if b != -1 || a != 1 {
		t.Errorf("Neighbours(0) = %d,%d want -1,1", b, a)
	}
}

// Property: Gather(Scatter(x)) == x for all kinds.
func TestQuickScatterGatherRoundTrip(t *testing.T) {
	f := func(vals []float64, parts uint8, kind uint8, chunk uint8) bool {
		p := int(parts%8) + 1
		var l Layout
		switch kind % 3 {
		case 0:
			l = New(Block, len(vals), p)
		case 1:
			l = New(Cyclic, len(vals), p)
		default:
			l = NewBlockCyclic(len(vals), p, int(chunk%5)+1)
		}
		split := ScatterF64(l, vals)
		joined := GatherF64(l, split)
		return reflect.DeepEqual(joined, vals) || (len(vals) == 0 && len(joined) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScatterRows(t *testing.T) {
	m := [][]float64{{1}, {2}, {3}, {4}, {5}}
	l := New(Block, 5, 2)
	parts := ScatterRows(l, m)
	if len(parts[0]) != 3 || len(parts[1]) != 2 {
		t.Fatalf("part sizes %d,%d want 3,2", len(parts[0]), len(parts[1]))
	}
	if parts[1][0][0] != 4 {
		t.Errorf("parts[1][0][0] = %v, want 4", parts[1][0][0])
	}
}

func TestEven(t *testing.T) {
	if !New(Block, 8, 4).Even() {
		t.Error("8/4 block should be even")
	}
	if New(Block, 9, 4).Even() {
		t.Error("9/4 block should be uneven")
	}
}

func TestCountSums(t *testing.T) {
	f := func(n uint16, parts uint8, chunk uint8) bool {
		nn, pp := int(n%500), int(parts%16)+1
		for _, l := range []Layout{
			New(Block, nn, pp), New(Cyclic, nn, pp),
			NewBlockCyclic(nn, pp, int(chunk%7)+1),
		} {
			sum := 0
			for p := 0; p < pp; p++ {
				sum += l.Count(p)
			}
			if sum != nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidArgs(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative N", func() { New(Block, -1, 2) })
	mustPanic("zero parts", func() { New(Block, 4, 0) })
	mustPanic("zero chunk", func() { NewBlockCyclic(4, 2, 0) })
	mustPanic("owner out of range", func() { New(Block, 4, 2).Owner(4) })
	mustPanic("bad part", func() { New(Block, 4, 2).Count(2) })
	mustPanic("scatter length", func() { ScatterF64(New(Block, 4, 2), make([]float64, 3)) })
	mustPanic("gather shape", func() {
		GatherF64(New(Block, 4, 2), [][]float64{{1}, {2}})
	})
}

func TestKindString(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" || BlockCyclic.String() != "block-cyclic" {
		t.Error("Kind.String mismatch")
	}
}
