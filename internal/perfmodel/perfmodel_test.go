package perfmodel

import (
	"testing"
	"time"
)

// The tests assert the qualitative shapes the paper reports, which is what
// the model exists to reproduce.

func TestComputeSpeedsUpWithPE(t *testing.T) {
	m := Paper()
	prev := m.SORTime(2000, 100, 1, false, false)
	for _, pe := range []int{2, 4, 8, 16} {
		cur := m.SORTime(2000, 100, pe, false, false)
		if cur >= prev {
			t.Fatalf("no speedup at %d LE: %v >= %v", pe, cur, prev)
		}
		prev = cur
	}
}

func TestThreadsCapAtOneMachine(t *testing.T) {
	m := Paper()
	at24 := m.SORTime(2000, 100, 24, false, false)
	at48 := m.SORTime(2000, 100, 48, false, false)
	if at48 < at24 {
		t.Fatalf("threads scaled past one machine: %v < %v", at48, at24)
	}
	// Processes do scale past one machine.
	d24 := m.SORTime(2000, 100, 24, true, false)
	d48 := m.SORTime(2000, 100, 48, true, false)
	if d48 >= d24 {
		t.Fatalf("processes did not scale past one machine: %v >= %v", d48, d24)
	}
}

func TestSafePointCountingUnderOnePercent(t *testing.T) {
	m := Paper()
	plain := m.SORTime(2000, 100, 1, false, false)
	counted := m.SORTime(2000, 100, 1, false, true)
	overhead := float64(counted-plain) / float64(plain)
	if overhead >= 0.01 {
		t.Fatalf("safe-point counting overhead %.2f%%, paper reports <1%%", overhead*100)
	}
}

func TestSaveCostShape(t *testing.T) {
	m := Paper()
	bytes := 2000 * 2000 * 8
	seq := m.SaveTime(bytes, 1, false)
	le16 := m.SaveTime(bytes, 16, false)
	p16 := m.SaveTime(bytes, 16, true)
	p32 := m.SaveTime(bytes, 32, true)
	if le16 <= seq {
		t.Errorf("LE save (%v) should slightly exceed seq (%v): barrier", le16, seq)
	}
	if p16 <= le16 {
		t.Errorf("P save (%v) should exceed LE save (%v): gather at root", p16, le16)
	}
	if p32 <= p16 {
		t.Errorf("32P save (%v) should exceed 16P (%v): crosses machines", p32, p16)
	}
	// But the disk write still dominates ("most time overhead is due to
	// the time required to save the application data").
	if p32 > 3*seq {
		t.Errorf("gather cost should not dwarf the disk write: %v vs %v", p32, seq)
	}
}

func TestRestartLoadDominatesReplay(t *testing.T) {
	m := Paper()
	bytes := 2000 * 2000 * 8
	for _, tc := range []struct {
		pe   int
		dist bool
	}{{1, false}, {16, false}, {16, true}, {32, true}} {
		replay, load := m.RestartTime(bytes, 100, tc.pe, tc.dist)
		if load <= replay {
			t.Errorf("pe=%d dist=%v: load (%v) should dominate replay (%v)", tc.pe, tc.dist, load, replay)
		}
	}
	// Distributed load costs more (scatter), worst at 32P.
	_, l16 := m.RestartTime(bytes, 100, 16, true)
	_, l32 := m.RestartTime(bytes, 100, 32, true)
	_, lseq := m.RestartTime(bytes, 100, 1, false)
	if l16 <= lseq || l32 <= l16 {
		t.Errorf("scatter cost ordering wrong: seq=%v 16P=%v 32P=%v", lseq, l16, l32)
	}
}

func TestOverDecompositionShape(t *testing.T) {
	m := Paper()
	base := m.OverDecompTime(2000, 100, 16, 1)
	of16 := m.OverDecompTime(2000, 100, 16, 16)
	ratio := float64(of16) / float64(base)
	// Paper: 256 tasks on 16 PEs goes from ~5s to ~15s (3x).
	if ratio < 2 || ratio > 5 {
		t.Fatalf("of=16 ratio %.2f, want roughly 3x", ratio)
	}
	// Monotone in the factor.
	prev := base
	for _, of := range []int{2, 4, 8, 16} {
		cur := m.OverDecompTime(2000, 100, 16, of)
		if cur <= prev {
			t.Fatalf("over-decomposition not monotone at of=%d", of)
		}
		prev = cur
	}
	if base < 4*time.Second || base > 7*time.Second {
		t.Errorf("16-PE SOR base %v, paper shows ~5s", base)
	}
}

func TestRuntimeAdaptationBeatsRestart(t *testing.T) {
	m := Paper()
	for _, from := range []int{2, 4, 8} {
		rt := m.AdaptExpandTime(2000, 100, from, 16, false)
		rs := m.AdaptExpandTime(2000, 100, from, 16, true)
		if rt >= rs {
			t.Errorf("from %d LE: run-time (%v) should beat restart (%v)", from, rt, rs)
		}
	}
	// Paper: restarting makes 8 -> 16 not worthwhile.
	stay8 := m.SORTime(2000, 100, 8, false, true)
	rs8 := m.AdaptExpandTime(2000, 100, 8, 16, true)
	if rs8 <= stay8 {
		t.Errorf("restart adaptation 8->16 (%v) should not beat staying at 8 (%v)", rs8, stay8)
	}
}

func TestAdaptiveWithinFivePercentOfBest(t *testing.T) {
	m := Paper()
	for _, pe := range []int{1, 4, 8, 16, 32} {
		th := m.SORTime(2000, 100, pe, false, false)
		mpi := m.SORTime(2000, 100, pe, true, false)
		best := th
		if mpi < best {
			best = mpi
		}
		ad := m.AdaptiveTime(2000, 100, pe)
		if ratio := float64(ad)/float64(best) - 1; ratio > 0.05 {
			t.Errorf("pe=%d: adaptive %.1f%% over best, paper claims <5%%", pe, ratio*100)
		}
	}
}
