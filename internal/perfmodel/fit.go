package perfmodel

import "math"

// This file is the bridge between the analytic model and the *online*
// world: the autoscaler observes per-iteration times at whatever
// configurations a run has actually visited and needs to predict the times
// at configurations it has not. The analytic terms above say what shape
// that extrapolation must take — compute shrinks like 1/PE, a serial floor
// stays put, synchronisation grows linearly in PE — so the online fit uses
// exactly that three-term basis:
//
//	t(p) ≈ A/p + B + C·p
//
// fitted by weighted least squares over observed (PE, time) samples, with
// the calibrated Model providing a prior curve for configurations never
// visited. Only the shape is borrowed from the model; the magnitudes come
// from the live run.

// Curve is a fitted per-iteration time curve t(p) = A/p + B + C·p, with p
// the effective processing-element count and t in seconds.
type Curve struct {
	A float64 // parallel work: seconds of perfectly divisible compute
	B float64 // serial floor: per-iteration cost no parallelism removes
	C float64 // coordination: per-PE barrier/exchange growth
}

// Predict returns the modelled per-iteration seconds at pe effective
// processing elements. The least-squares fit can produce locally negative
// values outside the sampled range; predictions are floored at a nanosecond
// so ratio-based comparisons stay finite.
func (c Curve) Predict(pe int) float64 {
	if pe < 1 {
		pe = 1
	}
	t := c.A/float64(pe) + c.B + c.C*float64(pe)
	if t < 1e-9 {
		return 1e-9
	}
	return t
}

// Best returns the pe in [1, maxPE] minimising the predicted time, and that
// time. The curve is convex in p (for A, C ≥ 0) but cheap enough to scan,
// which also stays correct when the fit strays into non-convex territory.
func (c Curve) Best(maxPE int) (pe int, t float64) {
	if maxPE < 1 {
		maxPE = 1
	}
	pe, t = 1, c.Predict(1)
	for p := 2; p <= maxPE; p++ {
		if tp := c.Predict(p); tp < t {
			pe, t = p, tp
		}
	}
	return pe, t
}

// Efficiency returns the parallel efficiency the curve implies at pe:
// t(1)/(pe·t(pe)). An autoscaler uses it as a growth floor — configurations
// below ~50% efficiency burn capacity other jobs could use for marginal
// speedup, Figure 9's lesson.
func (c Curve) Efficiency(pe int) float64 {
	if pe < 1 {
		pe = 1
	}
	return c.Predict(1) / (float64(pe) * c.Predict(pe))
}

// Scale returns the curve with every coefficient multiplied by s — a pure
// magnitude correction that preserves the shape.
func (c Curve) Scale(s float64) Curve {
	return Curve{A: c.A * s, B: c.B * s, C: c.C * s}
}

// ScaleTo returns the curve uniformly rescaled so it passes through the
// observation (pe, t). This is how a single measurement corrects the
// prior's magnitude while keeping its shape — the paper's model is
// calibrated to a 2011 testbed, so absolute values are always wrong on the
// host actually running.
func (c Curve) ScaleTo(pe int, t float64) Curve {
	p := c.Predict(pe)
	if p <= 0 || t <= 0 {
		return c
	}
	return c.Scale(t / p)
}

// Blend returns the convex combination (1-w)·prior + w·obs, coefficient by
// coefficient. With w = n/(n+k) for n observations, the prior dominates a
// cold start and the data takes over as evidence accumulates.
func Blend(prior, obs Curve, w float64) Curve {
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	return Curve{
		A: (1-w)*prior.A + w*obs.A,
		B: (1-w)*prior.B + w*obs.B,
		C: (1-w)*prior.C + w*obs.C,
	}
}

// Sample is one observed per-iteration time: T seconds at PE effective
// processing elements, weighted W (use 1 when in doubt; the autoscaler
// weights by how many safe points the measurement averaged over).
type Sample struct {
	PE int
	T  float64
	W  float64
}

// Fit least-squares fits the analytic basis {1/p, 1, p} to the samples.
// With fewer than three distinct PE values the basis degrades gracefully:
// two distinct PEs fit {1/p, 1} (no coordination term), one fits the pure
// scaling term {1/p}. ok is false when there are no usable samples or the
// normal equations are singular.
func Fit(samples []Sample) (c Curve, ok bool) {
	distinct := map[int]bool{}
	var use []Sample
	for _, s := range samples {
		if s.PE < 1 || s.T <= 0 {
			continue
		}
		if s.W <= 0 {
			s.W = 1
		}
		distinct[s.PE] = true
		use = append(use, s)
	}
	if len(use) == 0 {
		return Curve{}, false
	}
	k := len(distinct)
	if k > 3 {
		k = 3
	}
	basis := func(p float64) [3]float64 { return [3]float64{1 / p, 1, p} }

	// Normal equations X'WX β = X'Wy over the first k basis columns.
	var m [3][4]float64
	for _, s := range use {
		x := basis(float64(s.PE))
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				m[i][j] += s.W * x[i] * x[j]
			}
			m[i][3] += s.W * x[i] * s.T
		}
	}
	beta, ok := solve(&m, k)
	if !ok {
		return Curve{}, false
	}
	return Curve{A: beta[0], B: beta[1], C: beta[2]}, true
}

// solve runs Gaussian elimination with partial pivoting on the k×k system
// held in the first k rows/columns of m (column 3 is the RHS).
func solve(m *[3][4]float64, k int) ([3]float64, bool) {
	var beta [3]float64
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		if math.Abs(m[col][col]) < 1e-12 {
			return beta, false
		}
		for r := col + 1; r < k; r++ {
			f := m[r][col] / m[col][col]
			for j := col; j <= 3; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	for i := k - 1; i >= 0; i-- {
		sum := m[i][3]
		for j := i + 1; j < k; j++ {
			sum -= m[i][j] * beta[j]
		}
		beta[i] = sum / m[i][i]
	}
	return beta, true
}

// EffectivePE exposes the deployment clamp to the autoscaler: threads are
// confined to one machine, distributed ranks to the whole cluster.
func (m Model) EffectivePE(pe int, dist bool) int { return m.effectivePE(pe, dist) }

// PriorCurve fits the three-term curve to the calibrated model's own
// per-iteration predictions for an n×n stencil, giving the autoscaler a
// shape prior for configurations a run has never visited. The fit samples
// the model across the deployment's usable PE range.
func (m Model) PriorCurve(n int, dist bool) Curve {
	max := m.Top.Cores
	if dist {
		max = m.Top.TotalCores()
	}
	var samples []Sample
	for pe := 1; pe <= max; pe++ {
		samples = append(samples, Sample{PE: pe, T: m.SweepTime(n, pe, dist).Seconds(), W: 1})
	}
	c, ok := Fit(samples)
	if !ok {
		// Degenerate single-core topology: pure serial curve.
		return Curve{B: m.SweepTime(n, 1, dist).Seconds()}
	}
	return c
}
