// Package perfmodel is the calibrated analytic cost model used to
// regenerate the paper's scaling figures for processing-element counts the
// host does not have (the paper used a 48-core, two-machine cluster; CI
// containers often expose a single core). The model's terms are exactly the
// effects the paper attributes its curves to:
//
//   - compute scales with min(PE, capacity) (Figures 3, 7, 8, 9),
//   - thread deployments cannot leave one machine (Figure 9),
//   - per-iteration synchronisation: a barrier for threads, a neighbour
//     halo exchange for processes — crossing machines when ranks do,
//   - checkpoint saving = gathering partitioned data at the root (paying
//     inter-machine links for far ranks, Figure 4) + disk,
//   - restart = replaying safe points (cheap) + loading and scattering the
//     data (Figure 5),
//   - over-decomposition = T tasks on PE elements paying per-task
//     scheduling and a T-wide barrier per iteration (Figure 8).
//
// Absolute values are calibrated to the same order of magnitude as the
// paper's testbed, but only the *shape* — who wins, by what factor, where
// curves cross — is claimed (see EXPERIMENTS.md).
package perfmodel

import (
	"time"

	"ppar/internal/cluster"
)

// Model carries the platform parameters.
type Model struct {
	Top cluster.Topology
	// CellRate is the effective per-core stencil throughput in cell
	// updates per second (it folds flops, memory traffic and the JVM-era
	// overheads of the paper's testbed into one calibrated constant).
	CellRate float64
	// BarrierBase and BarrierPerPE model a central barrier.
	BarrierBase  time.Duration
	BarrierPerPE time.Duration
	// TaskSwitch is the cost of scheduling one surplus task (Figure 8).
	TaskSwitch time.Duration
	// SafePointCost is the counter increment of one safe point (<1% of an
	// iteration — the Figure 3 claim).
	SafePointCost time.Duration
	// RestartFixed is the engine teardown+relaunch cost of
	// adaptation-by-restart (Figure 7).
	RestartFixed time.Duration
}

// Paper returns the model calibrated to the paper's cluster (two 24-core
// Opteron machines; Figure 8's 16-PE SOR takes about 5 s).
func Paper() Model {
	return Model{
		Top:           cluster.PaperCluster(),
		CellRate:      5e6, // 16 PEs finish the 2000x2000, 100-sweep run in ~5s (Fig. 8)
		BarrierBase:   4 * time.Microsecond,
		BarrierPerPE:  600 * time.Nanosecond,
		TaskSwitch:    350 * time.Microsecond, // oversubscribed OS processes, not goroutines
		SafePointCost: 80 * time.Nanosecond,
		RestartFixed:  2500 * time.Millisecond, // JVM relaunch + job resubmission
	}
}

func dur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

// barrier models one barrier across pe parties.
func (m Model) barrier(pe int) time.Duration {
	return m.BarrierBase + time.Duration(pe)*m.BarrierPerPE
}

// effectivePE clamps pe to what the deployment can actually use: threads
// are confined to one machine, processes to the whole cluster.
func (m Model) effectivePE(pe int, dist bool) int {
	cap := m.Top.Cores
	if dist {
		cap = m.Top.TotalCores()
	}
	if pe > cap {
		return cap
	}
	if pe < 1 {
		return 1
	}
	return pe
}

// SweepTime models one red-black iteration (two colour sweeps) of an n×n
// SOR grid on pe processing elements.
func (m Model) SweepTime(n, pe int, dist bool) time.Duration {
	eff := m.effectivePE(pe, dist)
	cells := float64(n) * float64(n)
	compute := dur(cells / (m.CellRate * float64(eff)))
	if eff == 1 {
		return compute
	}
	if !dist {
		// Two colour sweeps, a barrier after each.
		return compute + 2*m.barrier(eff)
	}
	// Processes: halo exchange per colour with both neighbours; the link
	// is inter-machine for ranks at the machine boundary.
	// Two colour sweeps, each with a neighbour halo exchange; sends and
	// receives to the two sides overlap, so one worst-link round trip per
	// colour is charged.
	rowBytes := n * 8
	worstLink := m.Top.LinkCost(0, 1, rowBytes)
	if pe > m.Top.Cores {
		worstLink = m.Top.LinkCost(m.Top.Cores-1, m.Top.Cores, rowBytes)
	}
	return compute + 2*worstLink
}

// SORTime models a full run of iters iterations, including safe-point
// counting when counted is true.
func (m Model) SORTime(n, iters, pe int, dist, counted bool) time.Duration {
	t := time.Duration(iters) * m.SweepTime(n, pe, dist)
	if counted {
		t += time.Duration(iters) * m.SafePointCost
	}
	return t
}

// SaveTime models one checkpoint of dataBytes under each environment
// (Figure 4): sequential pays the disk; threads add two barriers; processes
// gather the partitioned data at the root first — blocks from the second
// machine pay the interconnect.
func (m Model) SaveTime(dataBytes, pe int, dist bool) time.Duration {
	disk := m.Top.DiskCost(dataBytes)
	if pe <= 1 {
		return disk
	}
	if !dist {
		return disk + 2*m.barrier(m.effectivePE(pe, false))
	}
	eff := m.effectivePE(pe, true)
	per := dataBytes / eff
	var gather time.Duration
	for r := 1; r < eff; r++ {
		gather += m.Top.LinkCost(r, 0, per)
	}
	return disk + gather
}

// RestartTime models recovery after a failure (Figure 5): replaying the
// counted safe points, then loading and (for processes) scattering the
// data. It returns the two components separately, as the figure does.
func (m Model) RestartTime(dataBytes, safePoints, pe int, dist bool) (replay, load time.Duration) {
	replay = time.Duration(safePoints) * (m.SafePointCost + 2*time.Microsecond)
	load = m.Top.DiskCost(dataBytes)
	if dist {
		eff := m.effectivePE(pe, true)
		per := dataBytes / max(eff, 1)
		for r := 1; r < eff; r++ {
			load += m.Top.LinkCost(0, r, per)
		}
	} else if pe > 1 {
		load += 2 * m.barrier(m.effectivePE(pe, false))
	}
	return replay, load
}

// OverDecompTime models SOR with factor-times over-decomposition: T =
// factor*pe tasks on pe elements; each iteration pays T-task scheduling and
// a T-wide barrier (Figure 8).
func (m Model) OverDecompTime(n, iters, pe, factor int) time.Duration {
	base := m.SORTime(n, iters, pe, true, false)
	if factor <= 1 {
		return base
	}
	tasks := pe * factor
	perIter := time.Duration(tasks)*m.TaskSwitch + m.barrier(tasks)
	return base + time.Duration(iters)*perIter
}

// AdaptExpandTime models Figure 7: run the first half on `from` LE and the
// second half on `to` LE, switching either at run time (team resize: one
// region replay of the already-executed safe points, cheap) or by
// checkpoint-restart (save + teardown + replay + load).
func (m Model) AdaptExpandTime(n, iters, from, to int, byRestart bool) time.Duration {
	half := iters / 2
	first := m.SORTime(n, half, from, false, true)
	second := m.SORTime(n, iters-half, to, false, true)
	dataBytes := n * n * 8
	if byRestart {
		save := m.SaveTime(dataBytes, from, false)
		replay, load := m.RestartTime(dataBytes, half, to, false)
		return first + save + m.RestartFixed + replay + load + second
	}
	// Run-time adaptation: new threads replay the region's safe points.
	joinReplay := time.Duration(half) * m.SafePointCost * time.Duration(to-from)
	return first + m.barrier(to) + joinReplay + second
}

// AdaptiveTime models the Figure 9 "Adaptative" line: the pluggable version
// picks the best execution mode for the committed resources and pays a
// small plumbing overhead (measured <5% in §V).
func (m Model) AdaptiveTime(n, iters, pe int) time.Duration {
	best := m.SORTime(n, iters, pe, false, true)
	if d := m.SORTime(n, iters, pe, true, true); d < best {
		best = d
	}
	return best + best/25 // 4% plumbing
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
