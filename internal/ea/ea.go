// Package ea is a pluggable evolutionary-computation framework in the
// mould of the paper's case study [20] (Pinho, Rocha & Sobral, "Pluggable
// Parallelization of Evolutionary Algorithms", PDP'10): a generational
// genetic algorithm whose fitness evaluation is the advisable loop and
// whose breeding step is deterministic given the generation number, so the
// same run can be deployed sequentially, on a thread team, or across
// aggregate replicas — and checkpointed/adapted — without changing results.
package ea

import (
	"math"

	"ppar/internal/core"
	"ppar/internal/partition"
	"ppar/internal/team"
)

// Problem is a minimisation problem over [Lo,Hi]^Dim.
type Problem interface {
	Name() string
	Dim() int
	Bounds() (lo, hi float64)
	// Evaluate must be pure: the framework may call it from any line of
	// execution, and replays depend on reproducibility.
	Evaluate(genome []float64) float64
}

// Sphere is the classic convex test problem: sum of squares.
type Sphere struct{ D int }

// Name implements Problem.
func (s Sphere) Name() string { return "sphere" }

// Dim implements Problem.
func (s Sphere) Dim() int { return s.D }

// Bounds implements Problem.
func (s Sphere) Bounds() (float64, float64) { return -5, 5 }

// Evaluate implements Problem.
func (s Sphere) Evaluate(g []float64) float64 {
	sum := 0.0
	for _, x := range g {
		sum += x * x
	}
	return sum
}

// Rastrigin is the classic multi-modal test problem.
type Rastrigin struct{ D int }

// Name implements Problem.
func (r Rastrigin) Name() string { return "rastrigin" }

// Dim implements Problem.
func (r Rastrigin) Dim() int { return r.D }

// Bounds implements Problem.
func (r Rastrigin) Bounds() (float64, float64) { return -5.12, 5.12 }

// Evaluate implements Problem.
func (r Rastrigin) Evaluate(g []float64) float64 {
	sum := 10 * float64(len(g))
	for _, x := range g {
		sum += x*x - 10*math.Cos(2*math.Pi*x)
	}
	return sum
}

// Result receives the master's final outcome.
type Result struct {
	Best       float64
	BestGenome []float64
}

// GA is the base program. Pop is flattened (PopSize×Dim, replicated so
// every aggregate element can breed identically); Fitness is partitioned —
// evaluation is the expensive, distributed part.
type GA struct {
	Pop     []float64
	Fitness []float64

	PopSize int
	Gens    int
	Seed    uint64

	problem Problem
	Result  *Result
}

// New builds a GA for the problem with a deterministic initial population.
func New(p Problem, popSize, gens int, seed uint64, res *Result) *GA {
	g := &GA{
		Pop:     make([]float64, popSize*p.Dim()),
		Fitness: make([]float64, popSize),
		PopSize: popSize, Gens: gens, Seed: seed,
		problem: p, Result: res,
	}
	lo, hi := p.Bounds()
	rng := newRNG(seed)
	for i := range g.Pop {
		g.Pop[i] = lo + (hi-lo)*rng.float()
	}
	return g
}

// Main runs the generational loop.
func (g *GA) Main(ctx *core.Ctx) {
	ctx.Call("ea.run", g.run)
	ctx.Call("ea.finish", g.finish)
}

func (g *GA) run(ctx *core.Ctx) {
	for gen := 0; gen < g.Gens; gen++ {
		ctx.Call("ea.evaluate", g.evaluate)
		gg := gen
		ctx.Call("ea.breed", func(*core.Ctx) { g.breed(gg) })
		ctx.Call("ea.gen", func(*core.Ctx) {})
	}
	ctx.Call("ea.evaluate", g.evaluate)
	ctx.Call("ea.final", func(*core.Ctx) {})
}

// evaluate is the advisable fitness loop — the hot, embarrassingly
// parallel part that every deployment divides differently.
func (g *GA) evaluate(ctx *core.Ctx) {
	dim := g.problem.Dim()
	core.For(ctx, "ea.individuals", 0, g.PopSize, func(i int) {
		g.Fitness[i] = g.problem.Evaluate(g.Pop[i*dim : (i+1)*dim])
	})
}

// breed produces the next population deterministically from the current
// fitness vector and the generation number: tournament selection, blend
// crossover, Gaussian-ish mutation, elitism of the best individual. It
// runs identically on every replica (replicated breeding), and on the team
// master only under shared memory (the Single template).
func (g *GA) breed(gen int) {
	dim := g.problem.Dim()
	lo, hi := g.problem.Bounds()
	rng := newRNG(g.Seed ^ (uint64(gen)+1)*0x9E3779B97F4A7C15)
	next := make([]float64, len(g.Pop))

	best := 0
	for i := 1; i < g.PopSize; i++ {
		if g.Fitness[i] < g.Fitness[best] {
			best = i
		}
	}
	copy(next[:dim], g.Pop[best*dim:(best+1)*dim]) // elitism

	tournament := func() int {
		a := int(rng.next() % uint64(g.PopSize))
		b := int(rng.next() % uint64(g.PopSize))
		if g.Fitness[a] <= g.Fitness[b] {
			return a
		}
		return b
	}
	for i := 1; i < g.PopSize; i++ {
		pa, pb := tournament(), tournament()
		alpha := rng.float()
		for d := 0; d < dim; d++ {
			v := alpha*g.Pop[pa*dim+d] + (1-alpha)*g.Pop[pb*dim+d]
			if rng.float() < 0.05 {
				v += (rng.float() - 0.5) * (hi - lo) * 0.1
			}
			if v < lo {
				v = lo
			} else if v > hi {
				v = hi
			}
			next[i*dim+d] = v
		}
	}
	copy(g.Pop, next)
}

func (g *GA) finish(ctx *core.Ctx) {
	if g.Result == nil {
		return
	}
	dim := g.problem.Dim()
	best := 0
	for i := 1; i < g.PopSize; i++ {
		if g.Fitness[i] < g.Fitness[best] {
			best = i
		}
	}
	g.Result.Best = g.Fitness[best]
	g.Result.BestGenome = append([]float64(nil), g.Pop[best*dim:(best+1)*dim]...)
}

type rng struct{ x uint64 }

func newRNG(seed uint64) *rng { return &rng{x: seed + 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.x += 0x9E3779B97F4A7C15
	z := r.x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// SharedModule plugs the thread-team deployment: evaluation work-shared,
// breeding executed once per team (Single) with a barrier so all threads
// observe the new population.
func SharedModule() *core.Module {
	return core.NewModule("ea/smp").
		ParallelMethod("ea.run").
		LoopSchedule("ea.individuals", team.Dynamic, 4).
		SingleMethod("ea.breed").
		BarrierAfter("ea.breed")
}

// DistModule plugs the aggregate deployment: fitness evaluation is
// partitioned and re-gathered in full each generation (replicated breeding
// then proceeds identically everywhere).
func DistModule() *core.Module {
	return core.NewModule("ea/dist").
		PartitionedField("Fitness", partition.Block).
		ReplicatedField("Pop").
		LoopPartition("ea.individuals", "Fitness").
		AllGatherAfter("ea.evaluate", "Fitness").
		OnMaster("ea.finish")
}

// CheckpointModule plugs fault tolerance: population and fitness are the
// safe data; one safe point per generation; evaluation and breeding are
// replay-skippable.
func CheckpointModule() *core.Module {
	return core.NewModule("ea/ckpt").
		SafeData("Pop", "Fitness").
		SafePointAfter("ea.gen").
		Ignorable("ea.evaluate", "ea.breed")
}

// Modules assembles the module list for a mode.
func Modules(mode core.Mode) []*core.Module {
	switch mode {
	case core.Sequential:
		return []*core.Module{CheckpointModule()}
	case core.Shared:
		return []*core.Module{SharedModule(), CheckpointModule()}
	case core.Distributed:
		return []*core.Module{DistModule(), CheckpointModule()}
	case core.Hybrid:
		return []*core.Module{SharedModule(), DistModule(), CheckpointModule()}
	}
	return nil
}
