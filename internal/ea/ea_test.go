package ea

import (
	"errors"
	"testing"

	"ppar/internal/core"
)

func runGA(t *testing.T, cfg core.Config, p Problem, pop, gens int) *Result {
	t.Helper()
	res := &Result{}
	cfg.AppName = "ea-" + p.Name()
	if cfg.Modules == nil {
		cfg.Modules = Modules(cfg.Mode)
	}
	eng, err := core.New(cfg, func() core.App { return New(p, pop, gens, 7, res) })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllModesAgree(t *testing.T) {
	p := Sphere{D: 6}
	ref := runGA(t, core.Config{Mode: core.Sequential}, p, 40, 15)
	for _, cfg := range []core.Config{
		{Mode: core.Shared, Threads: 3},
		{Mode: core.Distributed, Procs: 2},
		{Mode: core.Distributed, Procs: 4},
		{Mode: core.Hybrid, Procs: 2, Threads: 2},
	} {
		got := runGA(t, cfg, p, 40, 15)
		if got.Best != ref.Best {
			t.Errorf("%v/%dT/%dP: best=%v want %v", cfg.Mode, cfg.Threads, cfg.Procs, got.Best, ref.Best)
		}
	}
}

func TestGAConverges(t *testing.T) {
	p := Sphere{D: 4}
	res := runGA(t, core.Config{Mode: core.Sequential}, p, 60, 60)
	if res.Best > 1.0 {
		t.Errorf("sphere best after 60 gens = %v, want < 1", res.Best)
	}
	// More generations should not be worse (elitism).
	short := runGA(t, core.Config{Mode: core.Sequential}, p, 60, 10)
	if res.Best > short.Best {
		t.Errorf("longer run worse: %v > %v", res.Best, short.Best)
	}
}

func TestRastriginEvaluate(t *testing.T) {
	r := Rastrigin{D: 3}
	if v := r.Evaluate([]float64{0, 0, 0}); v != 0 {
		t.Errorf("rastrigin(0) = %v", v)
	}
	if v := r.Evaluate([]float64{1, 1, 1}); v <= 0 {
		t.Errorf("rastrigin(1) = %v, want > 0", v)
	}
}

func TestCheckpointRestart(t *testing.T) {
	p := Rastrigin{D: 5}
	ref := runGA(t, core.Config{Mode: core.Sequential}, p, 30, 20)

	dir := t.TempDir()
	res := &Result{}
	factory := func() core.App { return New(p, 30, 20, 7, res) }
	cfg := core.Config{
		Mode: core.Shared, Threads: 2, AppName: "ea-rastrigin",
		Modules:       Modules(core.Shared),
		CheckpointDir: dir, CheckpointEvery: 6, FailAtSafePoint: 15,
	}
	eng, _ := core.New(cfg, factory)
	if err := eng.Run(); !errors.Is(err, core.ErrInjectedFailure) {
		t.Fatalf("want failure, got %v", err)
	}
	cfg.FailAtSafePoint = 0
	eng2, _ := core.New(cfg, factory)
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Best != ref.Best {
		t.Fatalf("restarted best=%v want %v", res.Best, ref.Best)
	}
}

func TestAdaptationMidEvolution(t *testing.T) {
	p := Sphere{D: 6}
	ref := runGA(t, core.Config{Mode: core.Sequential}, p, 40, 15)
	got := runGA(t, core.Config{
		Mode: core.Distributed, Procs: 2,
		AdaptAtSafePoint: 8, AdaptTo: core.AdaptTarget{Procs: 4},
	}, p, 40, 15)
	if got.Best != ref.Best {
		t.Fatalf("adapted best=%v want %v", got.Best, ref.Best)
	}
}
