package serial

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleManifest() *Manifest {
	return &Manifest{
		App: "app", Mode: "dist", SafePoints: 42,
		Shards: []ManifestShard{
			{Anchor: 1, Seq: 3, CRC: 0xdeadbeef, Size: 512},
			{Anchor: 1, Seq: 3, CRC: 0x12345678, Size: 480},
			{Anchor: 2, Seq: 2, CRC: 0x9abcdef0, Size: 2048},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip: %+v vs %+v", m, got)
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	m := sampleManifest()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	// A torn write (any strict prefix) and a bit flip anywhere must both be
	// rejected — the manifest is the commit record, so a damaged one must
	// never pass for a complete save.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeManifest(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := range enc {
		flipped := append([]byte(nil), enc...)
		flipped[i] ^= 0x01
		if _, err := DecodeManifest(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
}

func TestManifestRejectsInvalidShapes(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Manifest{App: "a"}).Encode(&buf); err == nil {
		t.Fatal("zero-shard manifest encoded")
	}
	bad := &Manifest{App: "a", Shards: []ManifestShard{{Anchor: 3, Seq: 2}}}
	if err := bad.Encode(&buf); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("inverted chain window encoded: %v", err)
	}
	zero := &Manifest{App: "a", Shards: []ManifestShard{{Anchor: 0, Seq: 2}}}
	if err := zero.Encode(&buf); err == nil {
		t.Fatal("zero anchor encoded")
	}
}

func TestAnchorDeltaMaterialises(t *testing.T) {
	snap := NewSnapshot("app", "shard-1/4", 9)
	snap.Fields["x"] = Float64s([]float64{1, 2, 3})
	snap.Fields["it"] = Int64(5)
	d := AnchorDelta(snap)
	if !d.IsAnchor() {
		t.Fatal("anchor delta not recognised as anchor")
	}
	out := NewSnapshot(snap.App, "", 0)
	if err := d.Apply(out); err != nil {
		t.Fatal(err)
	}
	if out.SafePoints != 9 || !reflect.DeepEqual(out.Fields, snap.Fields) {
		t.Fatalf("anchor apply: %+v vs %+v", out, snap)
	}

	// A plain delta with chunked sections must not pass for an anchor.
	plain := NewDelta("app", "m", 9, 5)
	plain.Slices["x"] = SliceDelta{Len: 3}
	if plain.IsAnchor() {
		t.Fatal("chunked delta recognised as anchor")
	}
}

func TestDeltaFingerprintMatchesEncoding(t *testing.T) {
	d := NewDelta("app", "shard-0/2", 8, 4)
	d.Seq = 2
	d.Full["it"] = Int64(7)
	d.Slices["x"] = SliceDelta{Len: 4, Chunks: []SliceChunk{{Off: 1, Data: []float64{5, 6}}}}
	crc, size, err := d.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if uint64(buf.Len()) != size {
		t.Fatalf("fingerprint size %d, encoding is %d bytes", size, buf.Len())
	}
	// The fingerprint survives a decode/re-encode round trip — the property
	// that lets a manifest CRC be verified through a compressing store.
	d2, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	crc2, size2, err := d2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if crc2 != crc || size2 != size {
		t.Fatalf("fingerprint did not survive a round trip: (%08x,%d) vs (%08x,%d)", crc, size, crc2, size2)
	}
}
