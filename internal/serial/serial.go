// Package serial implements the portable on-disk representation of
// application-level checkpoints.
//
// The paper (§IV.A) requires checkpoint data to be saved "in a portable
// manner to allow an easy application migration across the heterogeneous set
// of resources typical of a Grid environment" and to contain only the data
// the programmer names via the SafeData template. The format defined here is
// a small, versioned, little-endian binary container:
//
//	magic "PPCKPT1\n" | header (app, mode, safe-point count, field count)
//	field*            | name, type tag, shape, payload, CRC-32 of payload
//	trailer           | CRC-32 of everything before it
//
// Because the container is independent of the execution mode that produced
// it, a snapshot gathered at the master of a distributed run can restart a
// sequential, shared-memory or distributed run — the property §IV.A uses to
// adapt across execution modes by checkpoint/restart.
//
// Alongside the full container lives the incremental one: a PPCKPD1 delta
// (see delta.go) holds only the fields — and, for large float slices and
// matrices, only the fixed-size chunks — that changed since the previous
// capture, anchored by (BaseSP, Seq) to the full snapshot at the head of
// its chain. Restoring replays base + d1 + ... + dN; every prefix of a
// chain is itself a consistent checkpoint, which is what lets a store
// truncate at a torn or missing link instead of half-applying it. The
// diffing side (the per-field/per-chunk content-hash cache) is StateHash
// in diff.go.
package serial

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Magic identifies a pluggable-parallelisation checkpoint container.
const Magic = "PPCKPT1\n"

// Type tags for field payloads.
const (
	TFloat64   = uint8(1) // scalar float64
	TInt64     = uint8(2) // scalar int64
	TFloat64s  = uint8(3) // []float64
	TInt64s    = uint8(4) // []int64
	TFloat64_2 = uint8(5) // [][]float64 (rectangular)
	TBytes     = uint8(6) // raw []byte
	TGob       = uint8(7) // arbitrary value via encoding/gob
)

// Value is one named datum inside a snapshot. Exactly one of the typed
// fields is meaningful, selected by Tag.
type Value struct {
	Tag  uint8
	F    float64
	I    int64
	Fs   []float64
	Is   []int64
	F2   [][]float64
	B    []byte
	Rows int // for F2
	Cols int // for F2
}

// Float64 wraps a scalar float64.
func Float64(v float64) Value { return Value{Tag: TFloat64, F: v} }

// Int64 wraps a scalar int64.
func Int64(v int64) Value { return Value{Tag: TInt64, I: v} }

// Float64s wraps a float64 slice (not copied).
func Float64s(v []float64) Value { return Value{Tag: TFloat64s, Fs: v} }

// Int64s wraps an int64 slice (not copied).
func Int64s(v []int64) Value { return Value{Tag: TInt64s, Is: v} }

// Float64Matrix wraps a rectangular [][]float64 (not copied).
func Float64Matrix(v [][]float64) Value {
	rows := len(v)
	cols := 0
	if rows > 0 {
		cols = len(v[0])
	}
	return Value{Tag: TFloat64_2, F2: v, Rows: rows, Cols: cols}
}

// Bytes wraps a raw byte slice (not copied).
func Bytes(v []byte) Value { return Value{Tag: TBytes, B: v} }

// Gob wraps an arbitrary value via encoding/gob. The concrete type must be
// gob-encodable and the caller must decode into the same type.
func Gob(v any) (Value, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return Value{}, fmt.Errorf("serial: gob encode: %w", err)
	}
	return Value{Tag: TGob, B: buf.Bytes()}, nil
}

// DecodeGob decodes a TGob value into out (a pointer).
func (v Value) DecodeGob(out any) error {
	if v.Tag != TGob {
		return fmt.Errorf("serial: value tag %d is not gob", v.Tag)
	}
	return gob.NewDecoder(bytes.NewReader(v.B)).Decode(out)
}

// ByteLen reports the payload size in bytes (excluding per-field framing).
func (v Value) ByteLen() int {
	switch v.Tag {
	case TFloat64, TInt64:
		return 8
	case TFloat64s:
		return 8 * len(v.Fs)
	case TInt64s:
		return 8 * len(v.Is)
	case TFloat64_2:
		return 8 * v.Rows * v.Cols
	case TBytes, TGob:
		return len(v.B)
	}
	return 0
}

// Snapshot is the in-memory form of one checkpoint.
type Snapshot struct {
	App        string
	Mode       string
	SafePoints uint64
	Fields     map[string]Value
}

// NewSnapshot allocates an empty snapshot for app.
func NewSnapshot(app, mode string, safePoints uint64) *Snapshot {
	return &Snapshot{App: app, Mode: mode, SafePoints: safePoints, Fields: map[string]Value{}}
}

// DataBytes reports the total payload bytes across all fields — the quantity
// Figures 4 and 5 of the paper account as "time to save/load the data".
func (s *Snapshot) DataBytes() int {
	n := 0
	for _, v := range s.Fields {
		n += v.ByteLen()
	}
	return n
}

// Clone deep-copies the snapshot: every slice, matrix row and byte payload
// gets fresh backing storage. The asynchronous checkpoint pipeline captures
// a clone at the safe point so computation can keep mutating the live
// fields while the copy is encoded and persisted in the background. Backing
// storage is drawn from the package pools, so a clone the pipeline recycles
// (RecycleSnapshot) makes the next capture allocation-free.
func (s *Snapshot) Clone() *Snapshot {
	c := snapPool.Get().(*Snapshot)
	c.App, c.Mode, c.SafePoints = s.App, s.Mode, s.SafePoints
	for name, v := range s.Fields {
		c.Fields[name] = v.clone()
	}
	return c
}

func (v Value) clone() Value {
	out := v
	if v.Fs != nil {
		out.Fs = getF64s(len(v.Fs))
		copy(out.Fs, v.Fs)
	}
	if v.Is != nil {
		out.Is = getI64s(len(v.Is))
		copy(out.Is, v.Is)
	}
	if v.B != nil {
		out.B = getBytes(len(v.B))
		copy(out.B, v.B)
	}
	if v.F2 != nil {
		out.F2 = getRows(len(v.F2))
		for i, row := range v.F2 {
			r := getF64s(len(row))
			copy(r, row)
			out.F2[i] = r
		}
	}
	return out
}

var order = binary.LittleEndian

type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

func writeU8(w io.Writer, v uint8) error { _, err := w.Write([]byte{v}); return err }
func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	order.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}
func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	order.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// writeF64s streams v through a fixed pooled conversion block instead of
// materialising an 8*len(v) buffer per call — on the checkpoint hot path
// that per-field allocation used to dominate allocs/ckpt.
func writeF64s(w io.Writer, v []float64) error {
	sp := scratchPool.Get().(*[]byte)
	b := *sp
	var err error
	for len(v) > 0 && err == nil {
		n := len(v)
		if max := len(b) / 8; n > max {
			n = max
		}
		for i := 0; i < n; i++ {
			order.PutUint64(b[8*i:], math.Float64bits(v[i]))
		}
		_, err = w.Write(b[:8*n])
		v = v[n:]
	}
	scratchPool.Put(sp)
	return err
}

func writeI64s(w io.Writer, v []int64) error {
	sp := scratchPool.Get().(*[]byte)
	b := *sp
	var err error
	for len(v) > 0 && err == nil {
		n := len(v)
		if max := len(b) / 8; n > max {
			n = max
		}
		for i := 0; i < n; i++ {
			order.PutUint64(b[8*i:], uint64(v[i]))
		}
		_, err = w.Write(b[:8*n])
		v = v[n:]
	}
	scratchPool.Put(sp)
	return err
}

// Encode writes the snapshot to w in the container format. Snapshots large
// enough to make encoding a bottleneck are encoded with a worker pool (see
// EncodeParallel); the bytes produced are identical either way.
func (s *Snapshot) Encode(w io.Writer) error {
	if s.DataBytes() >= parallelEncodeThreshold && len(s.Fields) > 1 {
		return s.EncodeParallel(w, 0)
	}
	return s.encodeSequential(w)
}

func (s *Snapshot) encodeSequential(w io.Writer) error {
	cw := &crcWriter{w: w}
	if err := s.encodeHeader(cw); err != nil {
		return err
	}
	for _, name := range s.fieldNames() {
		if err := encodeField(cw, name, s.Fields[name]); err != nil {
			return fmt.Errorf("serial: field %q: %w", name, err)
		}
	}
	// Trailer: CRC of everything written so far.
	return writeU32(w, cw.crc)
}

// encodeHeader writes the magic and header through the container CRC.
func (s *Snapshot) encodeHeader(cw *crcWriter) error {
	if _, err := io.WriteString(cw, Magic); err != nil {
		return err
	}
	if err := writeString(cw, s.App); err != nil {
		return err
	}
	if err := writeString(cw, s.Mode); err != nil {
		return err
	}
	if err := writeU64(cw, s.SafePoints); err != nil {
		return err
	}
	return writeU32(cw, uint32(len(s.Fields)))
}

// fieldNames returns the field names in the canonical (sorted) container
// order.
func (s *Snapshot) fieldNames() []string {
	names := make([]string, 0, len(s.Fields))
	for k := range s.Fields {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func encodeField(w io.Writer, name string, v Value) error {
	if err := writeString(w, name); err != nil {
		return err
	}
	if err := writeU8(w, v.Tag); err != nil {
		return err
	}
	payload := getBuf()
	defer putBuf(payload)
	switch v.Tag {
	case TFloat64:
		if err := writeF64s(payload, []float64{v.F}); err != nil {
			return err
		}
	case TInt64:
		if err := writeI64s(payload, []int64{v.I}); err != nil {
			return err
		}
	case TFloat64s:
		if err := writeU64(payload, uint64(len(v.Fs))); err != nil {
			return err
		}
		if err := writeF64s(payload, v.Fs); err != nil {
			return err
		}
	case TInt64s:
		if err := writeU64(payload, uint64(len(v.Is))); err != nil {
			return err
		}
		if err := writeI64s(payload, v.Is); err != nil {
			return err
		}
	case TFloat64_2:
		if v.Cols == 0 && v.Rows > maxEmptyRows {
			// The decoder bounds zero-column row counts (the payload
			// cannot), so refusing here keeps every encoder-produced
			// container decodable.
			return fmt.Errorf("%d empty rows exceed the container's zero-column row limit (%d)", v.Rows, maxEmptyRows)
		}
		if err := writeU64(payload, uint64(v.Rows)); err != nil {
			return err
		}
		if err := writeU64(payload, uint64(v.Cols)); err != nil {
			return err
		}
		for r := 0; r < v.Rows; r++ {
			row := v.F2[r]
			if len(row) != v.Cols {
				return fmt.Errorf("ragged matrix: row %d has %d cols, want %d", r, len(row), v.Cols)
			}
			if err := writeF64s(payload, row); err != nil {
				return err
			}
		}
	case TBytes, TGob:
		if err := writeU64(payload, uint64(len(v.B))); err != nil {
			return err
		}
		if _, err := payload.Write(v.B); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown tag %d", v.Tag)
	}
	if uint64(payload.Len()) > math.MaxUint32 {
		// The container frames each payload with a u32 length; silently
		// truncating the cast would write a corrupt field.
		return fmt.Errorf("payload is %d bytes, exceeding the container's 4 GiB field limit", payload.Len())
	}
	if err := writeU32(w, uint32(payload.Len())); err != nil {
		return err
	}
	if err := writeU32(w, crc32.ChecksumIEEE(payload.Bytes())); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func readU8(r io.Reader) (uint8, error) {
	var b [1]byte
	_, err := io.ReadFull(r, b[:])
	return b[0], err
}
func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	_, err := io.ReadFull(r, b[:])
	return order.Uint32(b[:]), err
}
func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	_, err := io.ReadFull(r, b[:])
	return order.Uint64(b[:]), err
}

const maxStringLen = 1 << 20

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("serial: string length %d exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func readF64s(r io.Reader, n int) ([]float64, error) {
	b := make([]byte, 8*n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(order.Uint64(b[8*i:]))
	}
	return v, nil
}

func readI64s(r io.Reader, n int) ([]int64, error) {
	b := make([]byte, 8*n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(order.Uint64(b[8*i:]))
	}
	return v, nil
}

// Decode reads a snapshot in the container format, verifying all checksums.
func Decode(r io.Reader) (*Snapshot, error) {
	cr := &crcReader{r: r}
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("serial: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("serial: bad magic %q", magic)
	}
	app, err := readString(cr)
	if err != nil {
		return nil, err
	}
	mode, err := readString(cr)
	if err != nil {
		return nil, err
	}
	sp, err := readU64(cr)
	if err != nil {
		return nil, err
	}
	nf, err := readU32(cr)
	if err != nil {
		return nil, err
	}
	s := NewSnapshot(app, mode, sp)
	for i := uint32(0); i < nf; i++ {
		name, v, err := decodeField(cr)
		if err != nil {
			return nil, fmt.Errorf("serial: field %d: %w", i, err)
		}
		s.Fields[name] = v
	}
	want := cr.crc
	got, err := readU32(r) // trailer read outside the crc reader
	if err != nil {
		return nil, fmt.Errorf("serial: reading trailer: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("serial: container checksum mismatch: file %08x computed %08x", got, want)
	}
	return s, nil
}

func decodeField(r io.Reader) (string, Value, error) {
	name, err := readString(r)
	if err != nil {
		return "", Value{}, err
	}
	tag, err := readU8(r)
	if err != nil {
		return "", Value{}, err
	}
	plen, err := readU32(r)
	if err != nil {
		return "", Value{}, err
	}
	pcrc, err := readU32(r)
	if err != nil {
		return "", Value{}, err
	}
	payload, err := readPayload(r, plen)
	if err != nil {
		return "", Value{}, err
	}
	if c := crc32.ChecksumIEEE(payload); c != pcrc {
		return "", Value{}, fmt.Errorf("%q: payload checksum mismatch: file %08x computed %08x", name, pcrc, c)
	}
	pr := bytes.NewReader(payload)
	v := Value{Tag: tag}
	switch tag {
	case TFloat64:
		fs, err := readF64s(pr, 1)
		if err != nil {
			return "", Value{}, err
		}
		v.F = fs[0]
	case TInt64:
		is, err := readI64s(pr, 1)
		if err != nil {
			return "", Value{}, err
		}
		v.I = is[0]
	case TFloat64s:
		n, err := readCount(pr, name, 8)
		if err != nil {
			return "", Value{}, err
		}
		if v.Fs, err = readF64s(pr, n); err != nil {
			return "", Value{}, err
		}
	case TInt64s:
		n, err := readCount(pr, name, 8)
		if err != nil {
			return "", Value{}, err
		}
		if v.Is, err = readI64s(pr, n); err != nil {
			return "", Value{}, err
		}
	case TFloat64_2:
		rows, cols, err := readMatrixShape(pr, name)
		if err != nil {
			return "", Value{}, err
		}
		v.Rows, v.Cols = rows, cols
		v.F2 = make([][]float64, v.Rows)
		for i := 0; i < v.Rows; i++ {
			if v.F2[i], err = readF64s(pr, v.Cols); err != nil {
				return "", Value{}, err
			}
		}
	case TBytes, TGob:
		n, err := readCount(pr, name, 1)
		if err != nil {
			return "", Value{}, err
		}
		v.B = make([]byte, n)
		if _, err := io.ReadFull(pr, v.B); err != nil {
			return "", Value{}, err
		}
	default:
		return "", Value{}, fmt.Errorf("%q: unknown tag %d", name, tag)
	}
	return name, v, nil
}

// maxEagerPayload is the largest field payload read with a single up-front
// allocation; larger (claimed) payloads are read incrementally so that a
// corrupt length cannot force a huge allocation before the data runs out.
const maxEagerPayload = 16 << 20

func readPayload(r io.Reader, plen uint32) ([]byte, error) {
	if plen <= maxEagerPayload {
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(plen)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf.Bytes(), nil
}

// readCount reads an element count and bounds it by the payload bytes that
// remain: counts are untrusted input, and a crafted 2^60 must error cleanly
// instead of attempting the allocation.
func readCount(pr *bytes.Reader, name string, elemSize uint64) (int, error) {
	n, err := readU64(pr)
	if err != nil {
		return 0, err
	}
	if rem := uint64(pr.Len()); n > rem/elemSize {
		return 0, fmt.Errorf("%q: element count %d exceeds the %d payload bytes that remain", name, n, rem)
	}
	return int(n), nil
}

// readMatrixShape reads and bounds a matrix shape: rows*cols*8 must fit in
// the remaining payload, and a zero-column matrix may not claim more rows
// than could plausibly have been framed.
func readMatrixShape(pr *bytes.Reader, name string) (int, int, error) {
	rows, err := readU64(pr)
	if err != nil {
		return 0, 0, err
	}
	cols, err := readU64(pr)
	if err != nil {
		return 0, 0, err
	}
	rem := uint64(pr.Len())
	if cols > rem/8 {
		return 0, 0, fmt.Errorf("%q: column count %d exceeds the %d payload bytes that remain", name, cols, rem)
	}
	if cols > 0 && rows > rem/(8*cols) {
		return 0, 0, fmt.Errorf("%q: %dx%d matrix exceeds the %d payload bytes that remain", name, rows, cols, rem)
	}
	if cols == 0 && rows > maxEmptyRows {
		return 0, 0, fmt.Errorf("%q: %d empty rows exceed the zero-column row limit", name, rows)
	}
	return int(rows), int(cols), nil
}

// maxEmptyRows bounds the row count of a zero-column matrix, enforced
// symmetrically at encode and decode: cols == 0 carries no per-row bytes,
// so the payload cannot bound rows on the way in — and the cap must be
// small, because each claimed empty row costs a decode loop iteration
// while consuming no input, so a stream of such fields would otherwise
// turn a few bytes into seconds of work.
const maxEmptyRows = 1 << 12
