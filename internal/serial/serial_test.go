package serial

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestRoundTripScalars(t *testing.T) {
	s := NewSnapshot("app", "seq", 42)
	s.Fields["x"] = Float64(math.Pi)
	s.Fields["n"] = Int64(-7)
	got := roundTrip(t, s)
	if got.App != "app" || got.Mode != "seq" || got.SafePoints != 42 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Fields["x"].F != math.Pi {
		t.Errorf("x = %v, want pi", got.Fields["x"].F)
	}
	if got.Fields["n"].I != -7 {
		t.Errorf("n = %v, want -7", got.Fields["n"].I)
	}
}

func TestRoundTripSlices(t *testing.T) {
	s := NewSnapshot("a", "smp", 1)
	s.Fields["fs"] = Float64s([]float64{1, 2.5, -3, math.Inf(1), math.SmallestNonzeroFloat64})
	s.Fields["is"] = Int64s([]int64{0, 1, -1, math.MaxInt64, math.MinInt64})
	got := roundTrip(t, s)
	if !reflect.DeepEqual(got.Fields["fs"].Fs, s.Fields["fs"].Fs) {
		t.Errorf("fs mismatch: %v", got.Fields["fs"].Fs)
	}
	if !reflect.DeepEqual(got.Fields["is"].Is, s.Fields["is"].Is) {
		t.Errorf("is mismatch: %v", got.Fields["is"].Is)
	}
}

func TestRoundTripMatrix(t *testing.T) {
	m := [][]float64{{1, 2, 3}, {4, 5, 6}}
	s := NewSnapshot("a", "dist", 9)
	s.Fields["m"] = Float64Matrix(m)
	got := roundTrip(t, s)
	if !reflect.DeepEqual(got.Fields["m"].F2, m) {
		t.Errorf("matrix mismatch: %v", got.Fields["m"].F2)
	}
}

func TestRoundTripEmptyMatrix(t *testing.T) {
	s := NewSnapshot("a", "seq", 0)
	s.Fields["m"] = Float64Matrix(nil)
	got := roundTrip(t, s)
	if got.Fields["m"].Rows != 0 || got.Fields["m"].Cols != 0 {
		t.Errorf("empty matrix mismatch: %+v", got.Fields["m"])
	}
}

func TestRaggedMatrixRejected(t *testing.T) {
	s := NewSnapshot("a", "seq", 0)
	s.Fields["m"] = Float64Matrix([][]float64{{1, 2}, {3}})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err == nil {
		t.Fatal("encode of ragged matrix succeeded, want error")
	}
}

func TestRoundTripBytesAndGob(t *testing.T) {
	s := NewSnapshot("a", "seq", 3)
	s.Fields["b"] = Bytes([]byte{0, 255, 1, 2})
	type st struct{ X, Y int }
	gv, err := Gob(st{3, 4})
	if err != nil {
		t.Fatalf("gob: %v", err)
	}
	s.Fields["g"] = gv
	got := roundTrip(t, s)
	if !bytes.Equal(got.Fields["b"].B, []byte{0, 255, 1, 2}) {
		t.Errorf("bytes mismatch: %v", got.Fields["b"].B)
	}
	var out st
	if err := got.Fields["g"].DecodeGob(&out); err != nil {
		t.Fatalf("decode gob: %v", err)
	}
	if out != (st{3, 4}) {
		t.Errorf("gob value = %+v", out)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := NewSnapshot("app", "seq", 5)
	s.Fields["fs"] = Float64s([]float64{1, 2, 3, 4})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, pos := range []int{len(Magic) + 2, len(raw) / 2, len(raw) - 2} {
		cp := append([]byte(nil), raw...)
		cp[pos] ^= 0x40
		if _, err := Decode(bytes.NewReader(cp)); err == nil {
			t.Errorf("flip at %d: decode succeeded, want checksum error", pos)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	s := NewSnapshot("app", "seq", 5)
	s.Fields["fs"] = Float64s([]float64{1, 2, 3})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < buf.Len(); cut += 7 {
		if _, err := Decode(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d: decode succeeded, want error", cut)
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOTMAGIC rest"))); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestDataBytes(t *testing.T) {
	s := NewSnapshot("a", "seq", 0)
	s.Fields["x"] = Float64(1)
	s.Fields["fs"] = Float64s(make([]float64, 10))
	s.Fields["m"] = Float64Matrix([][]float64{{1, 2}, {3, 4}})
	if got, want := s.DataBytes(), 8+80+32; got != want {
		t.Errorf("DataBytes = %d, want %d", got, want)
	}
}

// Property: encode∘decode is the identity on float64 slices, including NaN
// payload bit patterns being preserved byte-for-byte.
func TestQuickRoundTripFloat64s(t *testing.T) {
	f := func(vals []float64, sp uint64) bool {
		s := NewSnapshot("q", "seq", sp)
		s.Fields["v"] = Float64s(vals)
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		g := got.Fields["v"].Fs
		if len(g) != len(vals) || got.SafePoints != sp {
			return false
		}
		for i := range vals {
			if math.Float64bits(g[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: snapshots with the same contents encode identically (field order
// is canonicalised), so checkpoint files are reproducible.
func TestDeterministicEncoding(t *testing.T) {
	build := func() *Snapshot {
		s := NewSnapshot("a", "seq", 7)
		s.Fields["b"] = Float64(2)
		s.Fields["a"] = Float64(1)
		s.Fields["c"] = Int64s([]int64{1, 2})
		return s
	}
	var b1, b2 bytes.Buffer
	if err := build().Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same snapshot produced different encodings")
	}
}

func TestQuickRoundTripMatrix(t *testing.T) {
	f := func(rows, cols uint8, seed int64) bool {
		r, c := int(rows%16), int(cols%16)
		m := make([][]float64, r)
		x := float64(seed)
		for i := range m {
			m[i] = make([]float64, c)
			for j := range m[i] {
				x = x*1.1 + 1
				m[i][j] = x
			}
		}
		s := NewSnapshot("q", "seq", 0)
		s.Fields["m"] = Float64Matrix(m)
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Fields["m"].F2, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// craftContainer hand-assembles a one-field container so tests can plant
// hostile values (the per-field CRC is made valid so decoding reaches the
// count checks; the trailer CRC is valid too).
func craftContainer(t *testing.T, tag uint8, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := &crcWriter{w: &buf}
	for _, step := range []error{
		func() error { _, err := io.WriteString(cw, Magic); return err }(),
		writeString(cw, "app"),
		writeString(cw, "seq"),
		writeU64(cw, 1),
		writeU32(cw, 1), // one field
		writeString(cw, "f"),
		writeU8(cw, tag),
		writeU32(cw, uint32(len(payload))),
		writeU32(cw, crc32.ChecksumIEEE(payload)),
		func() error { _, err := cw.Write(payload); return err }(),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	if err := writeU32(&buf, cw.crc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func u64le(v uint64) []byte {
	var b [8]byte
	order.PutUint64(b[:], v)
	return b[:]
}

// Crafted element counts far beyond the payload must error cleanly instead
// of attempting the allocation (a claimed 2^60 would otherwise try an
// 8-exabyte make before any read could fail).
func TestOversizedCountsRejected(t *testing.T) {
	huge := uint64(1) << 60
	cases := []struct {
		name    string
		tag     uint8
		payload []byte
	}{
		{"float64s", TFloat64s, append(u64le(huge), make([]byte, 16)...)},
		{"int64s", TInt64s, append(u64le(huge), make([]byte, 16)...)},
		{"bytes", TBytes, append(u64le(huge), []byte("xx")...)},
		{"gob", TGob, u64le(huge)},
		{"matrix-rows", TFloat64_2, append(append(u64le(1<<40), u64le(8)...), make([]byte, 64)...)},
		{"matrix-cols", TFloat64_2, append(append(u64le(2), u64le(huge)...), make([]byte, 64)...)},
		{"matrix-empty-rows", TFloat64_2, append(u64le(1<<40), u64le(0)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := craftContainer(t, tc.tag, tc.payload)
			done := make(chan error, 1)
			go func() {
				_, err := Decode(bytes.NewReader(raw))
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("decode accepted an oversized count")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("decode hung (or allocated its way to a crawl) on an oversized count")
			}
		})
	}
}

// A claimed payload length far beyond the actual data must fail on the read
// rather than allocate the claimed size up front.
func TestOversizedPayloadLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	cw := &crcWriter{w: &buf}
	io.WriteString(cw, Magic)
	writeString(cw, "app")
	writeString(cw, "seq")
	writeU64(cw, 1)
	writeU32(cw, 1)
	writeString(cw, "f")
	writeU8(cw, TBytes)
	writeU32(cw, 1<<31) // 2 GiB claimed, nothing behind it
	writeU32(cw, 0)
	if _, err := Decode(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("decode accepted a truncated 2 GiB payload claim")
	}
}

// EncodeParallel must produce byte-identical output to the sequential
// encoder — the on-disk container format is the contract.
func TestParallelEncodeMatchesSequential(t *testing.T) {
	s := NewSnapshot("app", "smp", 99)
	s.Fields["a"] = Float64(1.5)
	s.Fields["b"] = Int64(-3)
	s.Fields["c"] = Float64s([]float64{1, 2, 3, math.NaN()})
	s.Fields["d"] = Int64s([]int64{-1, 0, 1})
	s.Fields["e"] = Float64Matrix([][]float64{{1, 2}, {3, 4}, {5, 6}})
	s.Fields["f"] = Bytes([]byte("hello"))
	for i := 0; i < 40; i++ {
		big := make([]float64, 4096)
		for j := range big {
			big[j] = float64(i*j) * 0.25
		}
		s.Fields[fmt.Sprintf("g%02d", i)] = Float64s(big)
	}
	var seq bytes.Buffer
	if err := s.encodeSequential(&seq); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7} {
		var par bytes.Buffer
		if err := s.EncodeParallel(&par, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Fatalf("workers=%d: parallel encoding diverged from sequential (%d vs %d bytes)",
				workers, par.Len(), seq.Len())
		}
	}
	// And the auto-selecting Encode (this snapshot crosses the threshold)
	// still round-trips.
	if s.DataBytes() < parallelEncodeThreshold {
		t.Fatalf("test snapshot too small (%d bytes) to exercise the parallel path", s.DataBytes())
	}
	got := roundTrip(t, s)
	if len(got.Fields) != len(s.Fields) {
		t.Fatalf("round trip lost fields: %d vs %d", len(got.Fields), len(s.Fields))
	}
}

// Clone must produce fully independent storage: the async checkpoint
// pipeline mutates the originals while the clone is being persisted.
func TestCloneIndependent(t *testing.T) {
	fs := []float64{1, 2}
	is := []int64{3, 4}
	bs := []byte{5, 6}
	m := [][]float64{{7, 8}, {9, 10}}
	s := NewSnapshot("app", "seq", 1)
	s.Fields["fs"] = Float64s(fs)
	s.Fields["is"] = Int64s(is)
	s.Fields["bs"] = Bytes(bs)
	s.Fields["m"] = Float64Matrix(m)
	c := s.Clone()
	fs[0], is[0], bs[0], m[0][0] = 99, 99, 99, 99
	if c.Fields["fs"].Fs[0] != 1 || c.Fields["is"].Is[0] != 3 ||
		c.Fields["bs"].B[0] != 5 || c.Fields["m"].F2[0][0] != 7 {
		t.Fatalf("clone aliased the original: %+v", c.Fields)
	}
}
