package serial

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestRoundTripScalars(t *testing.T) {
	s := NewSnapshot("app", "seq", 42)
	s.Fields["x"] = Float64(math.Pi)
	s.Fields["n"] = Int64(-7)
	got := roundTrip(t, s)
	if got.App != "app" || got.Mode != "seq" || got.SafePoints != 42 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Fields["x"].F != math.Pi {
		t.Errorf("x = %v, want pi", got.Fields["x"].F)
	}
	if got.Fields["n"].I != -7 {
		t.Errorf("n = %v, want -7", got.Fields["n"].I)
	}
}

func TestRoundTripSlices(t *testing.T) {
	s := NewSnapshot("a", "smp", 1)
	s.Fields["fs"] = Float64s([]float64{1, 2.5, -3, math.Inf(1), math.SmallestNonzeroFloat64})
	s.Fields["is"] = Int64s([]int64{0, 1, -1, math.MaxInt64, math.MinInt64})
	got := roundTrip(t, s)
	if !reflect.DeepEqual(got.Fields["fs"].Fs, s.Fields["fs"].Fs) {
		t.Errorf("fs mismatch: %v", got.Fields["fs"].Fs)
	}
	if !reflect.DeepEqual(got.Fields["is"].Is, s.Fields["is"].Is) {
		t.Errorf("is mismatch: %v", got.Fields["is"].Is)
	}
}

func TestRoundTripMatrix(t *testing.T) {
	m := [][]float64{{1, 2, 3}, {4, 5, 6}}
	s := NewSnapshot("a", "dist", 9)
	s.Fields["m"] = Float64Matrix(m)
	got := roundTrip(t, s)
	if !reflect.DeepEqual(got.Fields["m"].F2, m) {
		t.Errorf("matrix mismatch: %v", got.Fields["m"].F2)
	}
}

func TestRoundTripEmptyMatrix(t *testing.T) {
	s := NewSnapshot("a", "seq", 0)
	s.Fields["m"] = Float64Matrix(nil)
	got := roundTrip(t, s)
	if got.Fields["m"].Rows != 0 || got.Fields["m"].Cols != 0 {
		t.Errorf("empty matrix mismatch: %+v", got.Fields["m"])
	}
}

func TestRaggedMatrixRejected(t *testing.T) {
	s := NewSnapshot("a", "seq", 0)
	s.Fields["m"] = Float64Matrix([][]float64{{1, 2}, {3}})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err == nil {
		t.Fatal("encode of ragged matrix succeeded, want error")
	}
}

func TestRoundTripBytesAndGob(t *testing.T) {
	s := NewSnapshot("a", "seq", 3)
	s.Fields["b"] = Bytes([]byte{0, 255, 1, 2})
	type st struct{ X, Y int }
	gv, err := Gob(st{3, 4})
	if err != nil {
		t.Fatalf("gob: %v", err)
	}
	s.Fields["g"] = gv
	got := roundTrip(t, s)
	if !bytes.Equal(got.Fields["b"].B, []byte{0, 255, 1, 2}) {
		t.Errorf("bytes mismatch: %v", got.Fields["b"].B)
	}
	var out st
	if err := got.Fields["g"].DecodeGob(&out); err != nil {
		t.Fatalf("decode gob: %v", err)
	}
	if out != (st{3, 4}) {
		t.Errorf("gob value = %+v", out)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := NewSnapshot("app", "seq", 5)
	s.Fields["fs"] = Float64s([]float64{1, 2, 3, 4})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, pos := range []int{len(Magic) + 2, len(raw) / 2, len(raw) - 2} {
		cp := append([]byte(nil), raw...)
		cp[pos] ^= 0x40
		if _, err := Decode(bytes.NewReader(cp)); err == nil {
			t.Errorf("flip at %d: decode succeeded, want checksum error", pos)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	s := NewSnapshot("app", "seq", 5)
	s.Fields["fs"] = Float64s([]float64{1, 2, 3})
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < buf.Len(); cut += 7 {
		if _, err := Decode(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d: decode succeeded, want error", cut)
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOTMAGIC rest"))); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestDataBytes(t *testing.T) {
	s := NewSnapshot("a", "seq", 0)
	s.Fields["x"] = Float64(1)
	s.Fields["fs"] = Float64s(make([]float64, 10))
	s.Fields["m"] = Float64Matrix([][]float64{{1, 2}, {3, 4}})
	if got, want := s.DataBytes(), 8+80+32; got != want {
		t.Errorf("DataBytes = %d, want %d", got, want)
	}
}

// Property: encode∘decode is the identity on float64 slices, including NaN
// payload bit patterns being preserved byte-for-byte.
func TestQuickRoundTripFloat64s(t *testing.T) {
	f := func(vals []float64, sp uint64) bool {
		s := NewSnapshot("q", "seq", sp)
		s.Fields["v"] = Float64s(vals)
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		g := got.Fields["v"].Fs
		if len(g) != len(vals) || got.SafePoints != sp {
			return false
		}
		for i := range vals {
			if math.Float64bits(g[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: snapshots with the same contents encode identically (field order
// is canonicalised), so checkpoint files are reproducible.
func TestDeterministicEncoding(t *testing.T) {
	build := func() *Snapshot {
		s := NewSnapshot("a", "seq", 7)
		s.Fields["b"] = Float64(2)
		s.Fields["a"] = Float64(1)
		s.Fields["c"] = Int64s([]int64{1, 2})
		return s
	}
	var b1, b2 bytes.Buffer
	if err := build().Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same snapshot produced different encodings")
	}
}

func TestQuickRoundTripMatrix(t *testing.T) {
	f := func(rows, cols uint8, seed int64) bool {
		r, c := int(rows%16), int(cols%16)
		m := make([][]float64, r)
		x := float64(seed)
		for i := range m {
			m[i] = make([]float64, c)
			for j := range m[i] {
				x = x*1.1 + 1
				m[i][j] = x
			}
		}
		s := NewSnapshot("q", "seq", 0)
		s.Fields["m"] = Float64Matrix(m)
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Fields["m"].F2, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
