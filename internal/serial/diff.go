package serial

import (
	"math"
	"sort"
)

// StateHash is the safe-point hash cache behind incremental checkpointing:
// it remembers a content hash per SafeData field — and per fixed-size chunk
// for large float fields — from the previous capture, so the next capture
// can ship only what changed. The hashes never leave the process (deltas
// carry CRCs for integrity instead), so a fast non-cryptographic mix is
// used; hashing is a linear scan of the state, which is the floor any
// content-addressed diff pays, and is still far cheaper than encoding and
// persisting the unchanged bytes it avoids.
type StateHash struct {
	chunkElems int
	fields     map[string]*fieldState
}

type fieldState struct {
	tag        uint8
	n          int // slice length (TFloat64s) or byte length (TBytes/TGob)
	rows, cols int // matrix shape (TFloat64_2)
	whole      uint64
	chunks     []uint64
}

// NewStateHash creates an empty cache diffing at the DeltaChunkElems
// granularity. The first Diff after creation replaces every field whole, so
// a fresh cache must be paired with a full base snapshot (see Rehash).
func NewStateHash() *StateHash {
	return &StateHash{chunkElems: DeltaChunkElems, fields: map[string]*fieldState{}}
}

// mix64 folds one 64-bit word into the running hash (splitmix64-style
// finalisation: multiplicative diffusion plus xor-shifts).
func mix64(h, x uint64) uint64 {
	h = (h ^ x) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return h
}

func hashF64s(v []float64) uint64 {
	h := uint64(1)
	for _, f := range v {
		h = mix64(h, math.Float64bits(f))
	}
	return h
}

func hashBytes(b []byte) uint64 {
	h := uint64(2)
	for _, c := range b {
		h = mix64(h, uint64(c))
	}
	return h
}

func hashI64s(v []int64) uint64 {
	h := uint64(3)
	for _, x := range v {
		h = mix64(h, uint64(x))
	}
	return h
}

// chunked reports whether a field is diffed chunk-wise (large float slices
// and matrices) rather than replaced whole.
func (h *StateHash) chunked(v Value) bool {
	switch v.Tag {
	case TFloat64s:
		return len(v.Fs) > h.chunkElems
	case TFloat64_2:
		return v.Rows*v.Cols > h.chunkElems && v.Cols > 0
	}
	return false
}

// chunkRows reports how many consecutive matrix rows one chunk covers:
// about chunkElems elements, at least one row.
func (h *StateHash) chunkRows(cols int) int {
	n := h.chunkElems / cols
	if n < 1 {
		n = 1
	}
	return n
}

// hashField computes the fresh hash state of one field value.
func (h *StateHash) hashField(v Value) *fieldState {
	st := &fieldState{tag: v.Tag}
	switch v.Tag {
	case TFloat64:
		st.whole = mix64(1, math.Float64bits(v.F))
	case TInt64:
		st.whole = mix64(1, uint64(v.I))
	case TInt64s:
		st.n = len(v.Is)
		st.whole = hashI64s(v.Is)
	case TBytes, TGob:
		st.n = len(v.B)
		st.whole = hashBytes(v.B)
	case TFloat64s:
		st.n = len(v.Fs)
		if !h.chunked(v) {
			st.whole = hashF64s(v.Fs)
			break
		}
		for off := 0; off < len(v.Fs); off += h.chunkElems {
			end := off + h.chunkElems
			if end > len(v.Fs) {
				end = len(v.Fs)
			}
			st.chunks = append(st.chunks, hashF64s(v.Fs[off:end]))
		}
	case TFloat64_2:
		st.rows, st.cols = v.Rows, v.Cols
		if !h.chunked(v) {
			hh := uint64(4)
			for _, row := range v.F2 {
				hh = mix64(hh, hashF64s(row))
			}
			st.whole = hh
			break
		}
		per := h.chunkRows(v.Cols)
		for r := 0; r < v.Rows; r += per {
			end := r + per
			if end > v.Rows {
				end = v.Rows
			}
			hh := uint64(4)
			for _, row := range v.F2[r:end] {
				hh = mix64(hh, hashF64s(row))
			}
			st.chunks = append(st.chunks, hh)
		}
	}
	return st
}

// Rehash replaces the cache with snap's hashes without producing a delta —
// the full-capture path: the snapshot itself is persisted whole and becomes
// the new chain base.
func (h *StateHash) Rehash(snap *Snapshot) {
	h.fields = map[string]*fieldState{}
	for name, v := range snap.Fields {
		h.fields[name] = h.hashField(v)
	}
}

// Diff computes the delta from the cached previous capture to snap and
// updates the cache to snap. baseSP anchors the delta to its chain's base
// snapshot. With clone set, changed data is deep-copied into the delta so
// the caller may keep mutating the live arrays (the asynchronous capture
// path — and the reason a mostly-stable state makes delta captures much
// cheaper than Snapshot.Clone); without it the delta aliases snap's
// backing arrays and must be persisted before they change again.
//
// Fields whose shape or tag changed — and fields never seen before — are
// replaced whole; large float fields otherwise ship only the chunks whose
// content hash moved.
func (h *StateHash) Diff(snap *Snapshot, baseSP uint64, clone bool) *Delta {
	d := NewDelta(snap.App, snap.Mode, snap.SafePoints, baseSP)
	next := map[string]*fieldState{}
	for name, v := range snap.Fields {
		st := h.hashField(v)
		next[name] = st
		prev := h.fields[name]
		if prev == nil || prev.tag != st.tag || !h.chunked(v) {
			if prev == nil || prev.tag != st.tag || prev.whole != st.whole ||
				prev.n != st.n || prev.rows != st.rows || prev.cols != st.cols {
				d.Full[name] = cloneValue(v, clone)
			}
			continue
		}
		// Chunked field: a shape change forces a whole replacement (chunk
		// grids of different shapes do not line up); otherwise ship only
		// the chunks whose hash moved.
		if prev.n != st.n || prev.rows != st.rows || prev.cols != st.cols {
			d.Full[name] = cloneValue(v, clone)
			continue
		}
		switch v.Tag {
		case TFloat64s:
			var sd SliceDelta
			sd.Len = len(v.Fs)
			for i, hh := range st.chunks {
				if prev.chunks[i] == hh {
					continue
				}
				off := i * h.chunkElems
				end := off + h.chunkElems
				if end > len(v.Fs) {
					end = len(v.Fs)
				}
				data := v.Fs[off:end]
				if clone {
					cp := getF64s(len(data))
					copy(cp, data)
					data = cp
				}
				sd.Chunks = append(sd.Chunks, SliceChunk{Off: off, Data: data})
			}
			if len(sd.Chunks) > 0 {
				d.Slices[name] = sd
			}
		case TFloat64_2:
			per := h.chunkRows(v.Cols)
			md := MatrixDelta{Rows: v.Rows, Cols: v.Cols}
			for i, hh := range st.chunks {
				if prev.chunks[i] == hh {
					continue
				}
				r := i * per
				end := r + per
				if end > v.Rows {
					end = v.Rows
				}
				rows := v.F2[r:end]
				if clone {
					cp := getRows(len(rows))
					for ri, row := range rows {
						cr := getF64s(len(row))
						copy(cr, row)
						cp[ri] = cr
					}
					rows = cp
				}
				md.Chunks = append(md.Chunks, MatrixChunk{Row: r, Rows: rows})
			}
			if len(md.Chunks) > 0 {
				d.Matrices[name] = md
			}
		}
	}
	// Fields present at the previous capture but absent now must leave a
	// deletion record: the cache forgetting them is not enough, because a
	// chain replay after restart would resurrect them from an earlier link.
	for name := range h.fields {
		if _, ok := next[name]; !ok {
			d.Removed = append(d.Removed, name)
		}
	}
	sort.Strings(d.Removed)
	h.fields = next
	return d
}

func cloneValue(v Value, clone bool) Value {
	if clone {
		return v.clone()
	}
	return v
}
