// Content-addressed chunk keys.
//
// The dedup store layer (ppar/internal/ckpt) stores the fixed-grid chunks
// of large float fields once per distinct content, keyed by a digest of the
// chunk payload. Keys never leave the local store and carry no security
// guarantee — every chunk read is still covered by the container CRCs on
// the artifacts that reference it — so the digest only has to make
// accidental collisions negligible. Two independently seeded passes of the
// same mix64 permutation the diffing cache uses, plus the payload length in
// the key itself, give an effective 128-bit+length identity at memory
// bandwidth, with no dependencies.
package serial

import (
	"fmt"
	"math"
)

// ChunkKey returns the content address of one chunk payload: two
// independently seeded 64-bit digests and the payload length, formatted as
// "%016x%016x-%x". The key alphabet is lower-case hex plus '-', so keys are
// safe as file-name components on every supported platform.
func ChunkKey(payload []byte) string {
	h1 := uint64(0x9E3779B97F4A7C15)
	h2 := uint64(0xC2B2AE3D27D4EB4F)
	i := 0
	for ; i+8 <= len(payload); i += 8 {
		w := order.Uint64(payload[i:])
		h1 = mix64(h1, w)
		h2 = mix64(h2, w^0xA5A5A5A5A5A5A5A5)
	}
	var tail uint64
	for j := i; j < len(payload); j++ {
		tail = tail<<8 | uint64(payload[j])
	}
	h1 = mix64(h1, tail)
	h2 = mix64(h2, tail^0xA5A5A5A5A5A5A5A5)
	return fmt.Sprintf("%016x%016x-%x", h1, h2, len(payload))
}

// PackF64s appends v little-endian to dst — the canonical byte form of a
// float chunk, identical to the payload framing inside the containers, so a
// chunk shipped in a delta and the same grid chunk of a full snapshot hash
// to the same key.
func PackF64s(dst []byte, v []float64) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(v))...)
	for i, f := range v {
		order.PutUint64(dst[off+8*i:], math.Float64bits(f))
	}
	return dst
}

// UnpackF64s decodes a packed float chunk.
func UnpackF64s(payload []byte) ([]float64, error) {
	if len(payload)%8 != 0 {
		return nil, fmt.Errorf("serial: chunk payload of %d bytes is not a float array", len(payload))
	}
	v := make([]float64, len(payload)/8)
	for i := range v {
		v[i] = math.Float64frombits(order.Uint64(payload[8*i:]))
	}
	return v, nil
}
