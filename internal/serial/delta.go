// Delta (incremental) checkpoint container.
//
// A full snapshot re-encodes every SafeData field at every checkpoint, so
// checkpoint bandwidth scales with total state size even when most fields
// are unchanged between safe points. The delta container complements the
// full PPCKPT1 format with an incremental one, versioned independently:
//
//	magic "PPCKPD1\n" | header (app, mode, safe-point count, base safe
//	                    point, chain sequence number, section counts)
//	full field*       | whole-field replacements, framed exactly like the
//	                    PPCKPT1 fields (name, tag, length, CRC, payload)
//	slice section*    | name, full length, changed chunks of a []float64
//	                    field: (element offset, element count, CRC, payload)
//	matrix section*   | name, rows, cols, changed row-chunks of a
//	                    [][]float64 field: (start row, row count, CRC, payload)
//	trailer           | CRC-32 of everything before it
//
// A delta chain is anchored at a full PPCKPT1 snapshot (the "base"). Each
// delta records BaseSP — the safe-point count of that base — and Seq, its
// 1-based position in the chain. Restoring applies base + d1 + ... + dN in
// order; each prefix of the chain is itself a consistent checkpoint (the
// exact state at that delta's safe point), which is what makes truncating a
// chain at a torn or missing delta crash-safe. Large []float64 fields are
// diffed in fixed chunks of DeltaChunkElems elements and [][]float64 fields
// in groups of consecutive rows covering about the same element count;
// everything else (scalars, int slices, bytes, gob) is replaced whole when
// its content hash changes. See StateHash for the diffing side.
package serial

import (
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// DeltaMagic identifies an incremental (delta) checkpoint container.
const DeltaMagic = "PPCKPD1\n"

// DeltaMagicV2 identifies a delta container carrying a removed-field
// section. The encoder only emits it when the delta actually removes
// fields, so chains written by state shapes that never drop a field stay
// byte-identical to (and readable by) PPCKPD1 consumers; the decoder
// accepts both magics.
const DeltaMagicV2 = "PPCKPD2\n"

// DeltaChunkElems is the fixed diffing granularity for large float fields:
// chunks of this many float64 elements (64 KiB) are hashed and shipped
// independently, so a localised update re-persists only the chunks it
// touched. Fields at or below this size are replaced whole.
const DeltaChunkElems = 8192

// SliceChunk is one changed chunk of a []float64 field: Data replaces the
// elements at [Off, Off+len(Data)).
type SliceChunk struct {
	Off  int
	Data []float64
}

// SliceDelta is the changed portion of a chunk-diffed []float64 field. Len
// is the full slice length at capture time; a shape change is shipped as a
// whole-field replacement instead, so Apply can require Len to match.
type SliceDelta struct {
	Len    int
	Chunks []SliceChunk
}

// MatrixChunk is one changed row group of a [][]float64 field: Rows
// replaces the consecutive rows starting at Row.
type MatrixChunk struct {
	Row  int
	Rows [][]float64
}

// MatrixDelta is the changed portion of a chunk-diffed [][]float64 field.
type MatrixDelta struct {
	Rows, Cols int
	Chunks     []MatrixChunk
}

// Delta is the in-memory form of one incremental checkpoint: the fields and
// chunks that changed since the previous capture in the same chain.
type Delta struct {
	App  string
	Mode string
	// SafePoints is the safe-point count of the state this delta brings a
	// restore to (the replay target when it is the last applied link).
	SafePoints uint64
	// BaseSP is the safe-point count of the full snapshot anchoring the
	// chain; a delta whose BaseSP does not match the stored base is stale
	// (left over from before a compaction) and must be ignored.
	BaseSP uint64
	// Seq is the 1-based position in the chain, assigned when the delta is
	// persisted; chains are applied in Seq order with no gaps.
	Seq uint64

	Full     map[string]Value
	Slices   map[string]SliceDelta
	Matrices map[string]MatrixDelta
	// Removed names the fields that existed at the previous capture of the
	// chain and are absent from this one. Without it, replaying base + d1 +
	// ... + dN after a restart would resurrect a field the application had
	// dropped. Deltas that remove fields are encoded under DeltaMagicV2.
	Removed []string
}

// NewDelta allocates an empty delta for app at safe point sp, anchored at
// the base snapshot taken at baseSP.
func NewDelta(app, mode string, sp, baseSP uint64) *Delta {
	return &Delta{
		App: app, Mode: mode, SafePoints: sp, BaseSP: baseSP,
		Full:     map[string]Value{},
		Slices:   map[string]SliceDelta{},
		Matrices: map[string]MatrixDelta{},
	}
}

// Empty reports whether the delta carries no changes at all.
func (d *Delta) Empty() bool {
	return len(d.Full) == 0 && len(d.Slices) == 0 && len(d.Matrices) == 0 &&
		len(d.Removed) == 0
}

// DataBytes reports the total payload bytes across all entries — the
// incremental analogue of Snapshot.DataBytes, and the quantity the delta
// pipeline is built to shrink.
func (d *Delta) DataBytes() int {
	n := 0
	for _, v := range d.Full {
		n += v.ByteLen()
	}
	for _, sd := range d.Slices {
		for _, c := range sd.Chunks {
			n += 8 * len(c.Data)
		}
	}
	for _, md := range d.Matrices {
		for _, c := range md.Chunks {
			n += 8 * len(c.Rows) * md.Cols
		}
	}
	return n
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Encode writes the delta to w in the PPCKPD1 container format.
func (d *Delta) Encode(w io.Writer) error {
	cw := &crcWriter{w: w}
	if err := d.encodeBody(cw); err != nil {
		return err
	}
	return writeU32(w, cw.crc)
}

// encodeBody writes everything up to (not including) the trailer through
// the container CRC.
func (d *Delta) encodeBody(cw *crcWriter) error {
	magic := DeltaMagic
	if len(d.Removed) > 0 {
		magic = DeltaMagicV2
	}
	if _, err := io.WriteString(cw, magic); err != nil {
		return err
	}
	if err := writeString(cw, d.App); err != nil {
		return err
	}
	if err := writeString(cw, d.Mode); err != nil {
		return err
	}
	for _, v := range []uint64{d.SafePoints, d.BaseSP, d.Seq} {
		if err := writeU64(cw, v); err != nil {
			return err
		}
	}
	for _, n := range []int{len(d.Full), len(d.Slices), len(d.Matrices)} {
		if err := writeU32(cw, uint32(n)); err != nil {
			return err
		}
	}
	if len(d.Removed) > 0 {
		if err := writeU32(cw, uint32(len(d.Removed))); err != nil {
			return err
		}
		names := append([]string(nil), d.Removed...)
		sort.Strings(names)
		for _, name := range names {
			if err := writeString(cw, name); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(d.Full) {
		if err := encodeField(cw, name, d.Full[name]); err != nil {
			return fmt.Errorf("serial: delta field %q: %w", name, err)
		}
	}
	for _, name := range sortedKeys(d.Slices) {
		if err := encodeSliceDelta(cw, name, d.Slices[name]); err != nil {
			return fmt.Errorf("serial: delta slice %q: %w", name, err)
		}
	}
	for _, name := range sortedKeys(d.Matrices) {
		if err := encodeMatrixDelta(cw, name, d.Matrices[name]); err != nil {
			return fmt.Errorf("serial: delta matrix %q: %w", name, err)
		}
	}
	return nil
}

func encodeSliceDelta(w io.Writer, name string, sd SliceDelta) error {
	if err := writeString(w, name); err != nil {
		return err
	}
	if err := writeU64(w, uint64(sd.Len)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(sd.Chunks))); err != nil {
		return err
	}
	for _, c := range sd.Chunks {
		if c.Off < 0 || c.Off+len(c.Data) > sd.Len {
			return fmt.Errorf("chunk [%d,%d) outside slice of length %d", c.Off, c.Off+len(c.Data), sd.Len)
		}
		if err := writeU64(w, uint64(c.Off)); err != nil {
			return err
		}
		if err := writeU64(w, uint64(len(c.Data))); err != nil {
			return err
		}
		// The chunk payload is framed by a u32 CRC+length pair on the wire
		// (readPayload bounds it by u32), so mirror encodeField's guard: a
		// chunk that would not round-trip must fail here, not corrupt the
		// container. Size the check in uint64 — 8*len overflows int on
		// 32-bit platforms long before it overflows the frame.
		if n := 8 * uint64(len(c.Data)); n > math.MaxUint32 {
			return fmt.Errorf("chunk payload is %d bytes, exceeding the container's 4 GiB field limit", n)
		}
		payload := getBytes(8 * len(c.Data))
		for i, f := range c.Data {
			order.PutUint64(payload[8*i:], math.Float64bits(f))
		}
		err := writeU32(w, crc32.ChecksumIEEE(payload))
		if err == nil {
			_, err = w.Write(payload)
		}
		putBytes(payload)
		if err != nil {
			return err
		}
	}
	return nil
}

func encodeMatrixDelta(w io.Writer, name string, md MatrixDelta) error {
	if err := writeString(w, name); err != nil {
		return err
	}
	if err := writeU64(w, uint64(md.Rows)); err != nil {
		return err
	}
	if err := writeU64(w, uint64(md.Cols)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(md.Chunks))); err != nil {
		return err
	}
	for _, c := range md.Chunks {
		if c.Row < 0 || c.Row+len(c.Rows) > md.Rows {
			return fmt.Errorf("row chunk [%d,%d) outside %d-row matrix", c.Row, c.Row+len(c.Rows), md.Rows)
		}
		if err := writeU64(w, uint64(c.Row)); err != nil {
			return err
		}
		if err := writeU64(w, uint64(len(c.Rows))); err != nil {
			return err
		}
		// Same u32-frame guard as the slice chunks; computed in uint64
		// because 8*rows*cols can overflow int on 32-bit platforms.
		if n := 8 * uint64(len(c.Rows)) * uint64(md.Cols); n > math.MaxUint32 {
			return fmt.Errorf("row chunk payload is %d bytes, exceeding the container's 4 GiB field limit", n)
		}
		payload := getBytes(8 * len(c.Rows) * md.Cols)
		var err error
		for i, row := range c.Rows {
			if len(row) != md.Cols {
				err = fmt.Errorf("ragged row chunk: row %d has %d cols, want %d", c.Row+i, len(row), md.Cols)
				break
			}
			for j, f := range row {
				order.PutUint64(payload[8*(i*md.Cols+j):], math.Float64bits(f))
			}
		}
		if err == nil {
			err = writeU32(w, crc32.ChecksumIEEE(payload))
		}
		if err == nil {
			_, err = w.Write(payload)
		}
		putBytes(payload)
		if err != nil {
			return err
		}
	}
	return nil
}

// DecodeDelta reads a delta in the PPCKPD1 container format, verifying all
// checksums and bounding every count by the encoder's own invariants, so a
// corrupt or crafted delta fails cleanly instead of over-allocating.
func DecodeDelta(r io.Reader) (*Delta, error) {
	cr := &crcReader{r: r}
	magic := make([]byte, len(DeltaMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("serial: reading delta magic: %w", err)
	}
	if string(magic) != DeltaMagic && string(magic) != DeltaMagicV2 {
		return nil, fmt.Errorf("serial: bad delta magic %q", magic)
	}
	app, err := readString(cr)
	if err != nil {
		return nil, err
	}
	mode, err := readString(cr)
	if err != nil {
		return nil, err
	}
	var hdr [3]uint64
	for i := range hdr {
		if hdr[i], err = readU64(cr); err != nil {
			return nil, err
		}
	}
	var counts [3]uint32
	for i := range counts {
		if counts[i], err = readU32(cr); err != nil {
			return nil, err
		}
	}
	d := NewDelta(app, mode, hdr[0], hdr[1])
	d.Seq = hdr[2]
	if string(magic) == DeltaMagicV2 {
		// V2 inserts the removed-field section between the counts and the
		// full-field section. The loop is input-bounded: every name consumes
		// at least the 4-byte length prefix from the reader, and readString
		// caps each at maxStringLen, so a crafted count cannot over-allocate.
		nr, err := readU32(cr)
		if err != nil {
			return nil, err
		}
		if nr == 0 {
			return nil, fmt.Errorf("serial: v2 delta with an empty removed section")
		}
		for i := uint32(0); i < nr; i++ {
			name, err := readString(cr)
			if err != nil {
				return nil, fmt.Errorf("serial: delta removed name %d: %w", i, err)
			}
			d.Removed = append(d.Removed, name)
		}
	}
	for i := uint32(0); i < counts[0]; i++ {
		name, v, err := decodeField(cr)
		if err != nil {
			return nil, fmt.Errorf("serial: delta field %d: %w", i, err)
		}
		d.Full[name] = v
	}
	for i := uint32(0); i < counts[1]; i++ {
		name, sd, err := decodeSliceDelta(cr)
		if err != nil {
			return nil, fmt.Errorf("serial: delta slice %d: %w", i, err)
		}
		d.Slices[name] = sd
	}
	for i := uint32(0); i < counts[2]; i++ {
		name, md, err := decodeMatrixDelta(cr)
		if err != nil {
			return nil, fmt.Errorf("serial: delta matrix %d: %w", i, err)
		}
		d.Matrices[name] = md
	}
	want := cr.crc
	got, err := readU32(r) // trailer read outside the crc reader
	if err != nil {
		return nil, fmt.Errorf("serial: reading delta trailer: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("serial: delta checksum mismatch: file %08x computed %08x", got, want)
	}
	return d, nil
}

func decodeSliceDelta(r io.Reader) (string, SliceDelta, error) {
	name, err := readString(r)
	if err != nil {
		return "", SliceDelta{}, err
	}
	total, err := readU64(r)
	if err != nil {
		return "", SliceDelta{}, err
	}
	if total > math.MaxInt64/8 {
		return "", SliceDelta{}, fmt.Errorf("%q: slice length %d overflows", name, total)
	}
	nc, err := readU32(r)
	if err != nil {
		return "", SliceDelta{}, err
	}
	sd := SliceDelta{Len: int(total)}
	for i := uint32(0); i < nc; i++ {
		off, err := readU64(r)
		if err != nil {
			return "", SliceDelta{}, err
		}
		count, err := readU64(r)
		if err != nil {
			return "", SliceDelta{}, err
		}
		// The encoder never emits a chunk larger than the diff granularity
		// or outside the slice; counts are untrusted input and must honour
		// the same invariants before any allocation happens.
		if count > DeltaChunkElems || off > total || count > total-off {
			return "", SliceDelta{}, fmt.Errorf("%q: chunk [%d,+%d) invalid for slice length %d", name, off, count, total)
		}
		pcrc, err := readU32(r)
		if err != nil {
			return "", SliceDelta{}, err
		}
		payload, err := readPayload(r, uint32(8*count))
		if err != nil {
			return "", SliceDelta{}, err
		}
		if c := crc32.ChecksumIEEE(payload); c != pcrc {
			return "", SliceDelta{}, fmt.Errorf("%q: chunk checksum mismatch: file %08x computed %08x", name, pcrc, c)
		}
		data := make([]float64, count)
		for j := range data {
			data[j] = math.Float64frombits(order.Uint64(payload[8*j:]))
		}
		sd.Chunks = append(sd.Chunks, SliceChunk{Off: int(off), Data: data})
	}
	return name, sd, nil
}

func decodeMatrixDelta(r io.Reader) (string, MatrixDelta, error) {
	name, err := readString(r)
	if err != nil {
		return "", MatrixDelta{}, err
	}
	rows, err := readU64(r)
	if err != nil {
		return "", MatrixDelta{}, err
	}
	cols, err := readU64(r)
	if err != nil {
		return "", MatrixDelta{}, err
	}
	if cols == 0 || cols > math.MaxUint32/8 || rows > math.MaxInt64/8/cols {
		return "", MatrixDelta{}, fmt.Errorf("%q: %dx%d matrix shape invalid for a chunked delta", name, rows, cols)
	}
	nc, err := readU32(r)
	if err != nil {
		return "", MatrixDelta{}, err
	}
	md := MatrixDelta{Rows: int(rows), Cols: int(cols)}
	// The encoder groups rows so one chunk covers about DeltaChunkElems
	// elements (at least one row); enforce the same bound on the way in.
	maxRows := uint64(DeltaChunkElems) / cols
	if maxRows == 0 {
		maxRows = 1
	}
	for i := uint32(0); i < nc; i++ {
		start, err := readU64(r)
		if err != nil {
			return "", MatrixDelta{}, err
		}
		n, err := readU64(r)
		if err != nil {
			return "", MatrixDelta{}, err
		}
		if n > maxRows || start > rows || n > rows-start {
			return "", MatrixDelta{}, fmt.Errorf("%q: row chunk [%d,+%d) invalid for %dx%d matrix", name, start, n, rows, cols)
		}
		pcrc, err := readU32(r)
		if err != nil {
			return "", MatrixDelta{}, err
		}
		payload, err := readPayload(r, uint32(8*n*cols))
		if err != nil {
			return "", MatrixDelta{}, err
		}
		if c := crc32.ChecksumIEEE(payload); c != pcrc {
			return "", MatrixDelta{}, fmt.Errorf("%q: row chunk checksum mismatch: file %08x computed %08x", name, pcrc, c)
		}
		block := make([][]float64, n)
		for ri := range block {
			row := make([]float64, cols)
			for j := range row {
				row[j] = math.Float64frombits(order.Uint64(payload[8*(ri*int(cols)+j):]))
			}
			block[ri] = row
		}
		md.Chunks = append(md.Chunks, MatrixChunk{Row: int(start), Rows: block})
	}
	return name, md, nil
}

// Apply overlays the delta onto base, mutating it in place: whole-field
// replacements are installed verbatim, chunked entries are copied into the
// existing arrays. Chunked entries require the base field to exist with the
// exact shape the delta was diffed against — a mismatch means the chain is
// inconsistent (e.g. a delta applied out of order) and is an error, never a
// silent partial apply. On success base describes the exact state at
// d.SafePoints.
func (d *Delta) Apply(base *Snapshot) error {
	if base.App != d.App {
		return fmt.Errorf("serial: delta for app %q applied to snapshot of %q", d.App, base.App)
	}
	// Deletions first: a name can legitimately appear in both Removed and
	// Full after a merge (dropped, then re-added), and the re-add must win.
	for _, name := range d.Removed {
		delete(base.Fields, name)
	}
	for name, v := range d.Full {
		base.Fields[name] = v
	}
	for name, sd := range d.Slices {
		cur, ok := base.Fields[name]
		if !ok || cur.Tag != TFloat64s || len(cur.Fs) != sd.Len {
			return fmt.Errorf("serial: slice delta %q does not match the base field (len %d vs %d)", name, sd.Len, len(cur.Fs))
		}
		for _, c := range sd.Chunks {
			copy(cur.Fs[c.Off:], c.Data)
		}
	}
	for name, md := range d.Matrices {
		cur, ok := base.Fields[name]
		if !ok || cur.Tag != TFloat64_2 || cur.Rows != md.Rows || cur.Cols != md.Cols {
			return fmt.Errorf("serial: matrix delta %q does not match the base field (%dx%d vs %dx%d)",
				name, md.Rows, md.Cols, cur.Rows, cur.Cols)
		}
		for _, c := range md.Chunks {
			for i, row := range c.Rows {
				copy(cur.F2[c.Row+i], row)
			}
		}
	}
	base.SafePoints = d.SafePoints
	base.Mode = d.Mode
	return nil
}

// MergeDeltas folds two consecutive deltas of the same chain into one that
// carries the union of their changes and lands on the newer state — the
// asynchronous pipeline's supersede rule for deltas: a capture parked behind
// an in-flight write must FOLD into the next capture, because dropping it
// would lose the chunks the newer delta did not touch again. newer's
// entries win where the two overlap. Merging takes ownership of both
// arguments (their backing arrays may be reused or mutated); Seq is left
// zero for the persist layer to assign.
func MergeDeltas(older, newer *Delta) (*Delta, error) {
	if older.App != newer.App || older.BaseSP != newer.BaseSP {
		return nil, fmt.Errorf("serial: merging deltas of different chains (app %q base %d vs app %q base %d)",
			older.App, older.BaseSP, newer.App, newer.BaseSP)
	}
	out := NewDelta(newer.App, newer.Mode, newer.SafePoints, newer.BaseSP)
	removed := make(map[string]bool, len(older.Removed)+len(newer.Removed))
	for _, name := range older.Removed {
		removed[name] = true
	}
	for name, v := range older.Full {
		out.Full[name] = v
	}
	for name, sd := range older.Slices {
		out.Slices[name] = sd
	}
	for name, md := range older.Matrices {
		out.Matrices[name] = md
	}
	// Mirror Apply's ordering: removals land before the newer delta's
	// whole-field installs, so a field dropped and re-added between the two
	// captures comes out present with the newer value.
	for _, name := range newer.Removed {
		removed[name] = true
		delete(out.Full, name)
		delete(out.Slices, name)
		delete(out.Matrices, name)
	}
	for name, v := range newer.Full {
		// A whole-field replacement is cumulative state: it wins over
		// anything the older delta carried for the field, including a
		// pending removal.
		out.Full[name] = v
		delete(out.Slices, name)
		delete(out.Matrices, name)
		delete(removed, name)
	}
	for name, sd := range newer.Slices {
		if old, ok := out.Full[name]; ok {
			// The older delta replaced the field whole; overlaying the
			// newer chunks onto that (owned) value keeps it whole.
			if old.Tag != TFloat64s || len(old.Fs) != sd.Len {
				return nil, fmt.Errorf("serial: merge: slice delta %q does not match the older replacement", name)
			}
			for _, c := range sd.Chunks {
				copy(old.Fs[c.Off:], c.Data)
			}
			continue
		}
		out.Slices[name] = mergeSliceDeltas(out.Slices[name], sd)
	}
	for name, md := range newer.Matrices {
		if old, ok := out.Full[name]; ok {
			if old.Tag != TFloat64_2 || old.Rows != md.Rows || old.Cols != md.Cols {
				return nil, fmt.Errorf("serial: merge: matrix delta %q does not match the older replacement", name)
			}
			for _, c := range md.Chunks {
				for i, row := range c.Rows {
					copy(old.F2[c.Row+i], row)
				}
			}
			continue
		}
		merged, err := mergeMatrixDeltas(name, out.Matrices[name], md)
		if err != nil {
			return nil, err
		}
		out.Matrices[name] = merged
	}
	if len(removed) > 0 {
		out.Removed = make([]string, 0, len(removed))
		for name := range removed {
			out.Removed = append(out.Removed, name)
		}
		sort.Strings(out.Removed)
	}
	return out, nil
}

// mergeSliceDeltas unions two chunk lists for the same field; chunks are
// aligned to the fixed diffing grid, so equal offsets describe the same
// chunk and the newer data wins.
func mergeSliceDeltas(older, newer SliceDelta) SliceDelta {
	if older.Len == 0 && len(older.Chunks) == 0 {
		return newer
	}
	byOff := map[int]SliceChunk{}
	for _, c := range older.Chunks {
		byOff[c.Off] = c
	}
	for _, c := range newer.Chunks {
		byOff[c.Off] = c
	}
	out := SliceDelta{Len: newer.Len}
	for _, off := range sortedChunkOffsets(byOff) {
		out.Chunks = append(out.Chunks, byOff[off])
	}
	return out
}

func sortedChunkOffsets[C any](m map[int]C) []int {
	offs := make([]int, 0, len(m))
	for off := range m {
		offs = append(offs, off)
	}
	sort.Ints(offs)
	return offs
}

func mergeMatrixDeltas(name string, older, newer MatrixDelta) (MatrixDelta, error) {
	if older.Rows == 0 && len(older.Chunks) == 0 {
		return newer, nil
	}
	if older.Rows != newer.Rows || older.Cols != newer.Cols {
		// A shape change between captures is shipped as a whole-field
		// replacement, so chunked entries in one chain always agree.
		return MatrixDelta{}, fmt.Errorf("serial: merge: matrix delta %q changed shape (%dx%d vs %dx%d)",
			name, older.Rows, older.Cols, newer.Rows, newer.Cols)
	}
	byRow := map[int]MatrixChunk{}
	for _, c := range older.Chunks {
		byRow[c.Row] = c
	}
	for _, c := range newer.Chunks {
		byRow[c.Row] = c
	}
	out := MatrixDelta{Rows: newer.Rows, Cols: newer.Cols}
	for _, row := range sortedChunkOffsets(byRow) {
		out.Chunks = append(out.Chunks, byRow[row])
	}
	return out, nil
}
