package serial

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// parallelEncodeThreshold is the snapshot payload size above which Encode
// switches to the worker-pool encoder. Below it the fan-out costs more than
// the float-to-byte conversion it parallelises.
const parallelEncodeThreshold = 1 << 20

// EncodeParallel writes the snapshot to w in the container format, encoding
// the fields with a pool of workers (0 selects GOMAXPROCS). Each field —
// name, tag, length, payload CRC and payload — is framed independently, so
// workers encode into private buffers that are streamed out in the
// canonical field order; the bytes written are identical to Encode's.
//
// Only the per-field work (float conversion, payload CRC) runs in parallel;
// the trailing container CRC is accumulated over the assembled stream,
// which is cheap relative to encoding. Memory stays bounded: at most
// 2×workers encoded fields exist at once — buffers are released as soon as
// they are written, rather than materialising the whole container.
func (s *Snapshot) EncodeParallel(w io.Writer, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	names := s.fieldNames()
	if workers > len(names) {
		workers = len(names)
	}
	if workers <= 1 {
		return s.encodeSequential(w)
	}

	n := len(names)
	bufs := make([]*bytes.Buffer, n)
	errs := make([]error, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	// sem bounds the number of encoded-but-unwritten buffers; the feeder
	// below blocks dispatching new fields until the writer loop catches up.
	sem := make(chan struct{}, 2*workers)
	next := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				b := getBuf()
				errs[idx] = encodeField(b, names[idx], s.Fields[names[idx]])
				bufs[idx] = b
				close(ready[idx])
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			sem <- struct{}{}
			next <- i
		}
		close(next)
	}()

	cw := &crcWriter{w: w}
	err := s.encodeHeader(cw)
	for i := 0; i < n; i++ {
		// Consume every field in order even after an error, so the feeder
		// and workers always drain.
		<-ready[i]
		if err == nil && errs[i] != nil {
			err = fmt.Errorf("serial: field %q: %w", names[i], errs[i])
		}
		if err == nil {
			_, err = cw.Write(bufs[i].Bytes())
		}
		putBuf(bufs[i]) // release to the pool as soon as written
		bufs[i] = nil
		<-sem
	}
	wg.Wait()
	if err != nil {
		return err
	}
	return writeU32(w, cw.crc)
}
