// Shard-checkpoint manifest container.
//
// The paper's first distributed checkpointing alternative saves one local
// snapshot per rank. On its own that protocol has a torn-save problem the
// canonical path does not: the multi-shard save is only a restart point once
// EVERY rank's artifact is on stable storage, and a crash mid-way must never
// leave a mixture of old and new shards looking like a complete checkpoint.
// The manifest is the commit record that closes that window: it is written
// last, atomically, after every shard of a save wave has been persisted, and
// restore refuses to read shard state that is not reachable from it.
//
//	magic "PPCKPS1\n" | header (app, mode, safe-point count, world size)
//	shard entry*      | per rank: anchor seq, newest seq, CRC-32 and byte
//	                    size of the plain encoding of the newest chain link
//	trailer           | CRC-32 of everything before it
//
// Shard chains are append-only: each rank's checkpoints are a sequence of
// PPCKPD1 links (app.rN.dM.ckpt) whose Seq only ever grows — an "anchor"
// link carries the rank's full shard state (every field in its Full
// section, BaseSP equal to its own SafePoints), a plain link carries the
// chunks that changed since the previous capture. Because committed links
// are never overwritten in place, the artifacts a manifest references
// survive any crash of a later save; garbage collection of links below the
// newest anchor happens only after the manifest referencing that anchor has
// committed.
package serial

import (
	"fmt"
	"io"
)

// ManifestMagic identifies a shard-checkpoint manifest container.
const ManifestMagic = "PPCKPS1\n"

// maxManifestWorld bounds the world size a manifest may claim; counts are
// untrusted input and each claimed shard costs a decode loop iteration.
const maxManifestWorld = 1 << 16

// ManifestShard is one rank's entry in a manifest: the chain window
// [Anchor, Seq] that materialises the committed state, plus the CRC-32 and
// size of the plain PPCKPD1 encoding of the newest link, so restore can
// tell a committed artifact from one a crashed later save left behind.
type ManifestShard struct {
	// Anchor is the Seq of the chain's newest committed anchor link (the
	// self-contained full shard state materialisation starts from).
	Anchor uint64
	// Seq is the Seq of the newest committed link; materialisation applies
	// links Anchor..Seq in order.
	Seq uint64
	// CRC and Size fingerprint the plain container encoding of link Seq.
	CRC  uint32
	Size uint64
}

// Manifest is the commit record of one complete multi-shard checkpoint: the
// state of application App at safe point SafePoints, sharded across World
// ranks. A save wave only becomes a restart point when its manifest lands.
type Manifest struct {
	App        string
	Mode       string
	SafePoints uint64
	Shards     []ManifestShard
}

// World reports the number of shards the manifest commits.
func (m *Manifest) World() int { return len(m.Shards) }

// Encode writes the manifest to w in the PPCKPS1 container format.
func (m *Manifest) Encode(w io.Writer) error {
	if len(m.Shards) == 0 || len(m.Shards) > maxManifestWorld {
		return fmt.Errorf("serial: manifest world size %d outside [1,%d]", len(m.Shards), maxManifestWorld)
	}
	cw := &crcWriter{w: w}
	if _, err := io.WriteString(cw, ManifestMagic); err != nil {
		return err
	}
	if err := writeString(cw, m.App); err != nil {
		return err
	}
	if err := writeString(cw, m.Mode); err != nil {
		return err
	}
	if err := writeU64(cw, m.SafePoints); err != nil {
		return err
	}
	if err := writeU32(cw, uint32(len(m.Shards))); err != nil {
		return err
	}
	for i, sh := range m.Shards {
		if sh.Anchor == 0 || sh.Seq < sh.Anchor {
			return fmt.Errorf("serial: manifest shard %d window [%d,%d] invalid", i, sh.Anchor, sh.Seq)
		}
		for _, v := range []uint64{sh.Anchor, sh.Seq} {
			if err := writeU64(cw, v); err != nil {
				return err
			}
		}
		if err := writeU32(cw, sh.CRC); err != nil {
			return err
		}
		if err := writeU64(cw, sh.Size); err != nil {
			return err
		}
	}
	return writeU32(w, cw.crc)
}

// DecodeManifest reads a manifest in the PPCKPS1 container format,
// verifying the trailer checksum and bounding every count, so a torn or
// crafted manifest fails cleanly instead of over-allocating.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	cr := &crcReader{r: r}
	magic := make([]byte, len(ManifestMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("serial: reading manifest magic: %w", err)
	}
	if string(magic) != ManifestMagic {
		return nil, fmt.Errorf("serial: bad manifest magic %q", magic)
	}
	app, err := readString(cr)
	if err != nil {
		return nil, err
	}
	mode, err := readString(cr)
	if err != nil {
		return nil, err
	}
	sp, err := readU64(cr)
	if err != nil {
		return nil, err
	}
	world, err := readU32(cr)
	if err != nil {
		return nil, err
	}
	if world == 0 || world > maxManifestWorld {
		return nil, fmt.Errorf("serial: manifest world size %d outside [1,%d]", world, maxManifestWorld)
	}
	m := &Manifest{App: app, Mode: mode, SafePoints: sp, Shards: make([]ManifestShard, world)}
	for i := range m.Shards {
		sh := &m.Shards[i]
		for _, dst := range []*uint64{&sh.Anchor, &sh.Seq} {
			if *dst, err = readU64(cr); err != nil {
				return nil, err
			}
		}
		if sh.CRC, err = readU32(cr); err != nil {
			return nil, err
		}
		if sh.Size, err = readU64(cr); err != nil {
			return nil, err
		}
		if sh.Anchor == 0 || sh.Seq < sh.Anchor {
			return nil, fmt.Errorf("serial: manifest shard %d window [%d,%d] invalid", i, sh.Anchor, sh.Seq)
		}
	}
	want := cr.crc
	got, err := readU32(r) // trailer read outside the crc reader
	if err != nil {
		return nil, fmt.Errorf("serial: reading manifest trailer: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("serial: manifest checksum mismatch: file %08x computed %08x", got, want)
	}
	return m, nil
}

// AnchorDelta wraps a full shard snapshot as a self-contained chain link:
// every field rides in the Full section and BaseSP equals the snapshot's own
// safe point, so applying it to an empty snapshot reproduces the full state
// — no earlier link (or base file) is needed. The delta aliases snap's
// fields; callers that keep mutating snap must clone first.
func AnchorDelta(snap *Snapshot) *Delta {
	d := NewDelta(snap.App, snap.Mode, snap.SafePoints, snap.SafePoints)
	for name, v := range snap.Fields {
		d.Full[name] = v
	}
	return d
}

// IsAnchor reports whether the delta is a self-contained anchor link.
func (d *Delta) IsAnchor() bool {
	return d.BaseSP == d.SafePoints && len(d.Slices) == 0 && len(d.Matrices) == 0
}

// Fingerprint computes the CRC-32 and byte size of the delta's plain
// container encoding — the store-independent identity a manifest records
// for its newest link. The CRC covers the body only (it equals the
// container's own trailer): including the trailer would collapse every
// valid container onto the CRC-32 residue constant, since CRC(data ||
// CRC(data)) is input-independent. The encoding is deterministic (fields
// are written in sorted order), so decoding an artifact and re-encoding it
// reproduces the fingerprint even when the store persisted a compressed
// envelope.
func (d *Delta) Fingerprint() (crc uint32, size uint64, err error) {
	cw := &crcWriter{w: io.Discard}
	if err := d.encodeBody(cw); err != nil {
		return 0, 0, err
	}
	return cw.crc, uint64(cw.n) + 4, nil
}
