package serial

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// bigState builds a snapshot with one chunked slice, one chunked matrix and
// a few whole-replacement fields, deterministically seeded.
func bigState(sp uint64) *Snapshot {
	rng := rand.New(rand.NewSource(42))
	s := NewSnapshot("dapp", "seq", sp)
	fs := make([]float64, 3*DeltaChunkElems+17)
	for i := range fs {
		fs[i] = rng.Float64()
	}
	m := make([][]float64, 200)
	for i := range m {
		m[i] = make([]float64, 128)
		for j := range m[i] {
			m[i][j] = rng.Float64()
		}
	}
	s.Fields["vec"] = Float64s(fs)
	s.Fields["grid"] = Float64Matrix(m)
	s.Fields["it"] = Int64(int64(sp))
	s.Fields["tol"] = Float64(0.5)
	s.Fields["tags"] = Bytes([]byte("abc"))
	return s
}

func TestDeltaRoundTrip(t *testing.T) {
	d := NewDelta("dapp", "smp", 20, 10)
	d.Seq = 3
	d.Full["it"] = Int64(20)
	d.Slices["vec"] = SliceDelta{Len: 3 * DeltaChunkElems, Chunks: []SliceChunk{
		{Off: 0, Data: []float64{1, 2, 3}},
		{Off: DeltaChunkElems, Data: make([]float64, DeltaChunkElems)},
	}}
	d.Matrices["grid"] = MatrixDelta{Rows: 100, Cols: 128, Chunks: []MatrixChunk{
		{Row: 64, Rows: [][]float64{make([]float64, 128), make([]float64, 128)}},
	}}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("delta did not round-trip:\nin:  %+v\nout: %+v", d, got)
	}
}

func TestDeltaDecodeRejectsCorruption(t *testing.T) {
	d := NewDelta("dapp", "smp", 20, 10)
	d.Slices["vec"] = SliceDelta{Len: 100, Chunks: []SliceChunk{{Off: 10, Data: []float64{4, 5}}}}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, tc := range []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-10] ^= 0xff
			return out
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad magic", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[0] = 'X'
			return out
		}},
	} {
		if _, err := DecodeDelta(bytes.NewReader(tc.mangle(raw))); err == nil {
			t.Errorf("%s: decode accepted a corrupt delta", tc.name)
		}
	}
}

func TestDiffApplyReconstructsState(t *testing.T) {
	base := bigState(10)
	h := NewStateHash()
	h.Rehash(base)
	persisted := base.Clone() // what a store would hold as the chain base

	// Mutate a localised stripe: a few vec chunks, a band of grid rows, and
	// the scalar iteration counter.
	cur := base // live state, mutated in place
	for i := DeltaChunkElems; i < DeltaChunkElems+100; i++ {
		cur.Fields["vec"].Fs[i] = -1
	}
	for r := 10; r < 20; r++ {
		for j := range cur.Fields["grid"].F2[r] {
			cur.Fields["grid"].F2[r][j] = float64(r + j)
		}
	}
	cur.Fields["it"] = Int64(15)
	cur.SafePoints = 15

	d := h.Diff(cur, 10, true)
	if d.Empty() {
		t.Fatal("diff of a mutated state is empty")
	}
	if _, whole := d.Full["vec"]; whole {
		t.Fatal("chunked slice was replaced whole")
	}
	if got := d.DataBytes(); got >= cur.DataBytes() {
		t.Fatalf("delta bytes %d not smaller than full state %d", got, cur.DataBytes())
	}
	if err := d.Apply(persisted); err != nil {
		t.Fatal(err)
	}
	if persisted.SafePoints != 15 {
		t.Fatalf("applied safe point %d, want 15", persisted.SafePoints)
	}
	assertSameState(t, persisted, cur)

	// A second capture with no changes diffs to an empty delta.
	d2 := h.Diff(cur, 10, true)
	if !d2.Empty() {
		t.Fatalf("unchanged state produced a non-empty delta: %+v", d2)
	}
}

func TestDiffShapeChangeReplacesWhole(t *testing.T) {
	base := bigState(10)
	h := NewStateHash()
	h.Rehash(base)
	grown := make([]float64, 4*DeltaChunkElems)
	copy(grown, base.Fields["vec"].Fs)
	base.Fields["vec"] = Float64s(grown)
	d := h.Diff(base, 10, false)
	if _, ok := d.Full["vec"]; !ok {
		t.Fatalf("shape change did not replace the field whole: %+v", d)
	}
	if _, ok := d.Slices["vec"]; ok {
		t.Fatal("shape change also emitted chunks")
	}
}

func TestMergeDeltasFoldsSupersededCapture(t *testing.T) {
	base := bigState(10)
	persisted := base.Clone()
	h := NewStateHash()
	h.Rehash(base)

	// Capture 1: mutate chunk 0 of vec and row band A.
	for i := 0; i < 50; i++ {
		base.Fields["vec"].Fs[i] = 111
	}
	for j := range base.Fields["grid"].F2[5] {
		base.Fields["grid"].F2[5][j] = 5
	}
	base.SafePoints = 12
	d1 := h.Diff(base, 10, true)

	// Capture 2: mutate chunk 2 of vec (disjoint) and re-touch chunk 0.
	for i := 0; i < 10; i++ {
		base.Fields["vec"].Fs[i] = 222
	}
	for i := 2 * DeltaChunkElems; i < 2*DeltaChunkElems+30; i++ {
		base.Fields["vec"].Fs[i] = 333
	}
	base.SafePoints = 14
	d2 := h.Diff(base, 10, true)

	merged, err := MergeDeltas(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.SafePoints != 14 || merged.BaseSP != 10 {
		t.Fatalf("merged header sp=%d base=%d, want 14/10", merged.SafePoints, merged.BaseSP)
	}
	if err := merged.Apply(persisted); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, persisted, base)
}

func TestMergeDeltasRejectsDifferentChains(t *testing.T) {
	a := NewDelta("dapp", "seq", 12, 10)
	b := NewDelta("dapp", "seq", 14, 13) // different base: not consecutive links
	if _, err := MergeDeltas(a, b); err == nil {
		t.Fatal("merge across chains must fail")
	}
}

func TestApplyRejectsShapeMismatch(t *testing.T) {
	base := NewSnapshot("dapp", "seq", 10)
	base.Fields["vec"] = Float64s(make([]float64, 10))
	d := NewDelta("dapp", "seq", 12, 10)
	d.Slices["vec"] = SliceDelta{Len: 20, Chunks: []SliceChunk{{Off: 0, Data: []float64{1}}}}
	if err := d.Apply(base); err == nil {
		t.Fatal("apply with a mismatched shape must fail, not half-apply")
	}
}

// assertSameState compares every field payload of two snapshots.
func assertSameState(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if len(got.Fields) != len(want.Fields) {
		t.Fatalf("field count %d vs %d", len(got.Fields), len(want.Fields))
	}
	for name, w := range want.Fields {
		g, ok := got.Fields[name]
		if !ok {
			t.Fatalf("field %q missing", name)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("field %q diverged", name)
		}
	}
}

func TestDeltaRemovedRoundTrip(t *testing.T) {
	d := NewDelta("dapp", "smp", 20, 10)
	d.Seq = 3
	d.Full["kept"] = Int64(20)
	d.Removed = []string{"gone", "also-gone"}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:len(DeltaMagicV2)]); got != DeltaMagicV2 {
		t.Fatalf("removal-carrying delta encoded under magic %q, want %q", got, DeltaMagicV2)
	}
	got, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"also-gone", "gone"} // encoder canonicalises to sorted order
	if !reflect.DeepEqual(got.Removed, want) {
		t.Fatalf("Removed did not round-trip: %v, want %v", got.Removed, want)
	}

	// A delta with no removals must stay byte-identical to the v1 format.
	d1 := NewDelta("dapp", "smp", 20, 10)
	d1.Seq = 3
	d1.Full["kept"] = Int64(20)
	var buf1 bytes.Buffer
	if err := d1.Encode(&buf1); err != nil {
		t.Fatal(err)
	}
	if got := string(buf1.Bytes()[:len(DeltaMagic)]); got != DeltaMagic {
		t.Fatalf("removal-free delta encoded under magic %q, want %q", got, DeltaMagic)
	}
}

func TestDiffEmitsRemovedForVanishedField(t *testing.T) {
	base := NewSnapshot("dapp", "seq", 10)
	base.Fields["stays"] = Float64(1)
	base.Fields["vanishes"] = Int64s([]int64{1, 2, 3})
	h := NewStateHash()
	h.Rehash(base)
	persisted := base.Clone()

	cur := NewSnapshot("dapp", "seq", 12)
	cur.Fields["stays"] = Float64(1)
	d := h.Diff(cur, 10, true)
	if !reflect.DeepEqual(d.Removed, []string{"vanishes"}) {
		t.Fatalf("Diff Removed = %v, want [vanishes]", d.Removed)
	}
	if err := d.Apply(persisted); err != nil {
		t.Fatal(err)
	}
	if _, ok := persisted.Fields["vanishes"]; ok {
		t.Fatal("replaying the chain resurrected a removed field")
	}
	assertSameState(t, persisted, cur)

	// The next capture must not report the field again.
	d2 := h.Diff(cur, 10, true)
	if !d2.Empty() {
		t.Fatalf("unchanged state after a removal produced a non-empty delta: %+v", d2)
	}
}

func TestMergeDeltasRemovedSemantics(t *testing.T) {
	// Removed then re-added: the newer whole-field replacement wins.
	older := NewDelta("dapp", "seq", 12, 10)
	older.Removed = []string{"a", "b"}
	newer := NewDelta("dapp", "seq", 14, 10)
	newer.Full["a"] = Float64(7)
	merged, err := MergeDeltas(older, newer)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Removed, []string{"b"}) {
		t.Fatalf("merged Removed = %v, want [b]", merged.Removed)
	}
	if v, ok := merged.Full["a"]; !ok || v.F != 7 {
		t.Fatalf("re-added field lost in merge: %+v", merged.Full)
	}

	// Added (or changed) then removed: the removal cancels the older entry.
	older2 := NewDelta("dapp", "seq", 12, 10)
	older2.Full["c"] = Float64(3)
	newer2 := NewDelta("dapp", "seq", 14, 10)
	newer2.Removed = []string{"c"}
	merged2, err := MergeDeltas(older2, newer2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged2.Removed, []string{"c"}) {
		t.Fatalf("merged Removed = %v, want [c]", merged2.Removed)
	}
	if _, ok := merged2.Full["c"]; ok {
		t.Fatal("removed field still carried as a replacement after merge")
	}

	// End to end: base + merged must equal base + older + newer.
	base := NewSnapshot("dapp", "seq", 10)
	base.Fields["c"] = Float64(0)
	seqApplied := base.Clone()
	if err := older2.Apply(seqApplied); err != nil {
		t.Fatal(err)
	}
	if err := newer2.Apply(seqApplied); err != nil {
		t.Fatal(err)
	}
	mergedApplied := base.Clone()
	if err := merged2.Apply(mergedApplied); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, mergedApplied, seqApplied)
}

func TestEncodeDeltaRejectsOversizedChunk(t *testing.T) {
	// A row chunk whose payload frame exceeds u32: 8*rows*cols is computed
	// in uint64 by the guard, so empty rows with a huge declared width
	// exercise the overflow without allocating gigabytes.
	d := NewDelta("dapp", "seq", 12, 10)
	d.Matrices["grid"] = MatrixDelta{Rows: 4, Cols: 1 << 30, Chunks: []MatrixChunk{
		{Row: 0, Rows: make([][]float64, 4)},
	}}
	var buf bytes.Buffer
	err := d.Encode(&buf)
	if err == nil {
		t.Fatal("encoding a >4 GiB row chunk must fail, not corrupt the frame")
	}
	if !strings.Contains(err.Error(), "4 GiB") {
		t.Fatalf("unexpected error: %v", err)
	}
}
