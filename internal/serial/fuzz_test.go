package serial

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
)

// corpusSnapshots builds a spread of real snapshots — every tag, empty and
// chunk-sized payloads, gob values — whose encodings seed the fuzzers so
// coverage starts from structurally valid containers rather than noise.
func corpusSnapshots(t testing.TB) []*Snapshot {
	small := NewSnapshot("app", "seq", 7)
	small.Fields["f"] = Float64(3.25)
	small.Fields["i"] = Int64(-9)
	small.Fields["fs"] = Float64s([]float64{1, 2, 3})
	small.Fields["is"] = Int64s([]int64{-1, 0, 1})
	small.Fields["m"] = Float64Matrix([][]float64{{1, 2}, {3, 4}})
	small.Fields["b"] = Bytes([]byte("raw"))
	gobv, err := Gob(map[string]int{"k": 1})
	if err != nil {
		t.Fatal(err)
	}
	small.Fields["g"] = gobv

	empty := NewSnapshot("", "", 0)

	big := NewSnapshot("big", "dist", 1<<20)
	big.Fields["vec"] = Float64s(make([]float64, DeltaChunkElems+3))
	m := make([][]float64, 64)
	for i := range m {
		m[i] = make([]float64, 130)
	}
	big.Fields["grid"] = Float64Matrix(m)
	big.Fields["none"] = Float64s(nil)
	big.Fields["zrows"] = Float64Matrix([][]float64{})

	return []*Snapshot{small, empty, big}
}

// corpusDeltas mirrors corpusSnapshots for the incremental container.
func corpusDeltas(t testing.TB) []*Delta {
	plain := NewDelta("app", "seq", 9, 5)
	plain.Seq = 2
	plain.Full["i"] = Int64(12)
	plain.Full["fs"] = Float64s([]float64{5, 6})
	plain.Slices["vec"] = SliceDelta{Len: 2 * DeltaChunkElems, Chunks: []SliceChunk{
		{Off: 0, Data: []float64{1}},
		{Off: DeltaChunkElems, Data: make([]float64, DeltaChunkElems)},
	}}
	plain.Matrices["grid"] = MatrixDelta{Rows: 64, Cols: 130, Chunks: []MatrixChunk{
		{Row: 62, Rows: [][]float64{make([]float64, 130), make([]float64, 130)}},
	}}

	empty := NewDelta("", "", 0, 0)
	empty.Seq = 1

	// A v2 (PPCKPD2) container: carries a removed-field section, alone and
	// alongside ordinary sections.
	removed := NewDelta("app", "seq", 11, 5)
	removed.Seq = 3
	removed.Removed = []string{"gone", "also-gone"}
	removed.Full["kept"] = Float64(1.5)

	onlyRemoved := NewDelta("app", "seq", 12, 5)
	onlyRemoved.Seq = 4
	onlyRemoved.Removed = []string{"x"}

	return []*Delta{plain, empty, removed, onlyRemoved}
}

func encodeSnap(t testing.TB, s *Snapshot) []byte {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecode feeds arbitrary bytes to the full-container decoder, seeded
// with real encodings. It must never panic; on any accepted input the
// decoded payload must be bounded by the input (no over-allocation from
// crafted counts) and must re-encode and decode to the identical snapshot
// (decode(encode(s)) round-trips).
func FuzzDecode(f *testing.F) {
	for _, s := range corpusSnapshots(f) {
		f.Add(encodeSnap(f, s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		if got := s.DataBytes(); got > len(data) {
			t.Fatalf("decoded %d payload bytes from %d input bytes: over-allocation", got, len(data))
		}
		var buf bytes.Buffer
		if err := s.Encode(&buf); err != nil {
			t.Fatalf("re-encode of an accepted snapshot failed: %v", err)
		}
		s2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode(encode(s)) failed: %v", err)
		}
		if s.App != s2.App || s.Mode != s2.Mode || s.SafePoints != s2.SafePoints {
			t.Fatalf("header did not round-trip: %+v vs %+v", s, s2)
		}
		if !reflect.DeepEqual(normalise(s.Fields), normalise(s2.Fields)) {
			t.Fatalf("fields did not round-trip")
		}
	})
}

// FuzzDecodeDelta is FuzzDecode for the incremental container.
func FuzzDecodeDelta(f *testing.F) {
	for _, d := range corpusDeltas(f) {
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// A full container must be rejected by the delta decoder, not crash it.
	for _, s := range corpusSnapshots(f) {
		f.Add(encodeSnap(f, s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got := d.DataBytes(); got > len(data) {
			t.Fatalf("decoded %d payload bytes from %d input bytes: over-allocation", got, len(data))
		}
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			t.Fatalf("re-encode of an accepted delta failed: %v", err)
		}
		d2, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode(encode(d)) failed: %v", err)
		}
		if !reflect.DeepEqual(normaliseDelta(d), normaliseDelta(d2)) {
			t.Fatalf("delta did not round-trip")
		}
	})
}

// FuzzDecodeManifest is FuzzDecode for the shard-checkpoint commit record.
// The manifest gates every sharded restart, so a crafted or torn one must be
// rejected cleanly, never panic, over-allocate or pass for a complete save.
func FuzzDecodeManifest(f *testing.F) {
	seeds := []*Manifest{
		{App: "app", Mode: "dist", SafePoints: 42, Shards: []ManifestShard{
			{Anchor: 1, Seq: 3, CRC: 0xdeadbeef, Size: 512},
			{Anchor: 2, Seq: 2, CRC: 0x9abcdef0, Size: 2048},
		}},
		{App: "", Mode: "", SafePoints: 0, Shards: []ManifestShard{{Anchor: 1, Seq: 1}}},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// The sibling containers must be rejected by this decoder, not crash it.
	for _, s := range corpusSnapshots(f) {
		f.Add(encodeSnap(f, s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		if got := 28 * len(m.Shards); got > len(data) {
			t.Fatalf("decoded %d shard-entry bytes from %d input bytes: over-allocation", got, len(data))
		}
		for i, sh := range m.Shards {
			if sh.Anchor == 0 || sh.Seq < sh.Anchor {
				t.Fatalf("accepted shard %d with invalid window [%d,%d]", i, sh.Anchor, sh.Seq)
			}
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatalf("re-encode of an accepted manifest failed: %v", err)
		}
		m2, err := DecodeManifest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode(encode(m)) failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("manifest did not round-trip")
		}
	})
}

// normalise maps empty and nil slices onto one representation: the decoder
// materialises empty payloads as non-nil zero-length slices, which
// DeepEqual would otherwise distinguish from the nil the encoder accepted.
func normalise(fields map[string]Value) map[string]Value {
	out := make(map[string]Value, len(fields))
	for k, v := range fields {
		if len(v.Fs) == 0 {
			v.Fs = nil
		}
		if len(v.Is) == 0 {
			v.Is = nil
		}
		if len(v.B) == 0 {
			v.B = nil
		}
		if len(v.F2) == 0 {
			v.F2 = nil
		}
		out[k] = v
	}
	return out
}

func normaliseDelta(d *Delta) *Delta {
	out := NewDelta(d.App, d.Mode, d.SafePoints, d.BaseSP)
	out.Seq = d.Seq
	out.Full = normalise(d.Full)
	for k, v := range d.Slices {
		out.Slices[k] = v
	}
	for k, v := range d.Matrices {
		out.Matrices[k] = v
	}
	if len(d.Removed) > 0 {
		out.Removed = append([]string(nil), d.Removed...)
		sort.Strings(out.Removed)
	}
	return out
}
