// Buffer and backing-array pools for the checkpoint hot path.
//
// Every safe point used to allocate afresh: an encode buffer per field, a
// byte block per chunk payload, and new backing arrays for each asynchronous
// capture clone. A long run checkpoints the same state shape thousands of
// times, so all of that memory is recyclable — the pools below hand the
// previous checkpoint's buffers to the next one, taking the steady-state
// allocation count per checkpoint to (near) zero.
//
// Ownership discipline: only artifacts the checkpoint pipeline provably owns
// are recycled — the deep-copied capture clones and clone-mode deltas after
// the background writer has persisted them. Snapshots that alias live
// application arrays (the synchronous capture path) are never recycled, and
// a merged delta is recycled only once, after it lands, never its inputs
// (MergeDeltas carries their arrays by reference).
package serial

import (
	"bytes"
	"sync"
)

// maxPooledBytes bounds what any pool retains: a one-off giant field must
// not pin its buffer for the rest of the process.
const maxPooledBytes = 16 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxPooledBytes {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// scratchBlockBytes is the fixed conversion-block size for streaming float
// and int payloads: big enough to amortise Write calls, small enough that a
// pool of them costs nothing to keep around.
const scratchBlockBytes = 64 << 10

var scratchPool = sync.Pool{New: func() any {
	b := make([]byte, scratchBlockBytes)
	return &b
}}

// bytesPool recycles whole chunk-payload blocks (delta encoding).
var bytesPool sync.Pool

func getBytes(n int) []byte {
	if p, _ := bytesPool.Get().(*[]byte); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

func putBytes(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBytes {
		return
	}
	b = b[:0]
	bytesPool.Put(&b)
}

// f64Pool / i64Pool recycle the backing arrays of capture clones and cloned
// delta chunks. A pooled slice whose capacity does not fit the request is
// simply dropped — in steady state the same state shape recurs every safe
// point, so the fit is exact from the second checkpoint on.
var (
	f64Pool  sync.Pool
	i64Pool  sync.Pool
	rowsPool sync.Pool
)

func getF64s(n int) []float64 {
	if p, _ := f64Pool.Get().(*[]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]float64, n)
}

func putF64s(v []float64) {
	if cap(v) == 0 || cap(v) > maxPooledBytes/8 {
		return
	}
	v = v[:0]
	f64Pool.Put(&v)
}

func getI64s(n int) []int64 {
	if p, _ := i64Pool.Get().(*[]int64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]int64, n)
}

func putI64s(v []int64) {
	if cap(v) == 0 || cap(v) > maxPooledBytes/8 {
		return
	}
	v = v[:0]
	i64Pool.Put(&v)
}

func getRows(n int) [][]float64 {
	if p, _ := rowsPool.Get().(*[][]float64); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([][]float64, n)
}

func putRows(v [][]float64) {
	if cap(v) == 0 {
		return
	}
	for i := range v {
		v[i] = nil
	}
	v = v[:0]
	rowsPool.Put(&v)
}

// snapPool recycles Snapshot shells (struct + field map) between capture
// clones.
var snapPool = sync.Pool{New: func() any {
	return &Snapshot{Fields: map[string]Value{}}
}}

// RecycleSnapshot returns a deep-copied snapshot's backing storage to the
// pools for the next capture to reuse. The caller must own every array the
// snapshot references — only pass snapshots produced by Clone (or built from
// pooled storage) that nothing else retains; never pass a snapshot that
// aliases live application state.
func RecycleSnapshot(s *Snapshot) {
	if s == nil {
		return
	}
	for name, v := range s.Fields {
		recycleValue(v)
		delete(s.Fields, name)
	}
	s.App, s.Mode, s.SafePoints = "", "", 0
	snapPool.Put(s)
}

// RecycleDelta returns a clone-mode delta's backing storage to the pools.
// The same ownership rule as RecycleSnapshot applies: only deltas captured
// with clone=true (or a merged delta after it was persisted — never the
// merge inputs, whose arrays the merged delta carries by reference).
func RecycleDelta(d *Delta) {
	if d == nil {
		return
	}
	for name, v := range d.Full {
		recycleValue(v)
		delete(d.Full, name)
	}
	for name, sd := range d.Slices {
		for _, c := range sd.Chunks {
			putF64s(c.Data)
		}
		delete(d.Slices, name)
	}
	for name, md := range d.Matrices {
		for _, c := range md.Chunks {
			for _, row := range c.Rows {
				putF64s(row)
			}
			putRows(c.Rows)
		}
		delete(d.Matrices, name)
	}
	d.Removed = nil
}

func recycleValue(v Value) {
	putF64s(v.Fs)
	putI64s(v.Is)
	putBytes(v.B)
	if v.F2 != nil {
		for _, row := range v.F2 {
			putF64s(row)
		}
		putRows(v.F2)
	}
}
