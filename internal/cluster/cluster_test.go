package cluster

import (
	"testing"
	"time"
)

func TestMachinePlacement(t *testing.T) {
	top := Topology{Machines: 2, Cores: 24}
	cases := []struct{ rank, machine int }{
		{0, 0}, {23, 0}, {24, 1}, {31, 1}, {47, 1},
		{48, 0}, // oversubscription wraps
	}
	for _, c := range cases {
		if got := top.Machine(c.rank); got != c.machine {
			t.Errorf("Machine(%d) = %d, want %d", c.rank, got, c.machine)
		}
	}
}

func TestLinkCostOrdering(t *testing.T) {
	top := PaperCluster()
	self := top.LinkCost(3, 3, 1<<20)
	intra := top.LinkCost(0, 1, 1<<20)
	inter := top.LinkCost(0, 24, 1<<20)
	if self != 0 {
		t.Errorf("self cost = %v, want 0", self)
	}
	if intra >= inter {
		t.Errorf("intra (%v) should be cheaper than inter (%v)", intra, inter)
	}
	// Larger messages cost more.
	if top.LinkCost(0, 24, 1<<24) <= inter {
		t.Error("bigger message should cost more")
	}
}

func TestDiskCostGrowsWithSize(t *testing.T) {
	top := PaperCluster()
	small := top.DiskCost(1 << 10)
	big := top.DiskCost(1 << 26)
	if small >= big {
		t.Errorf("disk cost should grow with size: %v vs %v", small, big)
	}
	if small < top.DiskLatency {
		t.Errorf("disk cost %v below latency floor %v", small, top.DiskLatency)
	}
}

func TestDelayFuncScaling(t *testing.T) {
	top := PaperCluster()
	if top.DelayFunc(0) != nil {
		t.Error("scale 0 should disable delays")
	}
	df := top.DelayFunc(0.5)
	full := top.LinkCost(0, 24, 1000)
	if got := df(0, 24, 1000); got != time.Duration(float64(full)*0.5) {
		t.Errorf("scaled delay = %v, want half of %v", got, full)
	}
}

func TestZeroBandwidthMeansLatencyOnly(t *testing.T) {
	top := Topology{Machines: 1, Cores: 4, IntraLatency: time.Millisecond}
	if got := top.LinkCost(0, 1, 1<<30); got != time.Millisecond {
		t.Errorf("cost = %v, want latency only", got)
	}
}

func TestTotalCoresAndString(t *testing.T) {
	top := Topology{Machines: 2, Cores: 24}
	if top.TotalCores() != 48 {
		t.Errorf("TotalCores = %d", top.TotalCores())
	}
	if top.String() == "" {
		t.Error("empty String()")
	}
}
