// Package cluster models the execution platform of the paper's evaluation:
// a cluster of multi-core machines (two dual-Opteron 6174 nodes, 24 cores
// each, in §V) connected by a network that is much slower than shared
// memory, plus remote storage for checkpoints.
//
// A Topology places ranks onto machines and derives per-message link costs;
// the mp transports consult the resulting DelayFunc so that in-process
// simulated runs exhibit the paper's qualitative effects (e.g. the 32-process
// configurations pay inter-machine transfers in Figures 3–5). The same
// parameters feed internal/perfmodel for configurations larger than the
// host.
package cluster

import (
	"fmt"
	"time"

	"ppar/internal/mp"
)

// Topology describes a homogeneous cluster.
type Topology struct {
	Machines int // number of nodes
	Cores    int // cores per node

	// Link parameters. Intra-machine messages model shared-memory
	// transfers; inter-machine messages model the interconnect.
	IntraLatency time.Duration
	InterLatency time.Duration
	IntraBW      float64 // bytes per second; 0 means infinite
	InterBW      float64 // bytes per second; 0 means infinite

	// Disk parameters for checkpoint storage (Grids use remote storage
	// elements, §I, so latency is substantial).
	DiskLatency time.Duration
	DiskBW      float64 // bytes per second; 0 means infinite
}

// PaperCluster returns a topology calibrated to the paper's testbed: two
// 24-core machines, gigabit-class interconnect, local-disk class storage.
func PaperCluster() Topology {
	return Topology{
		Machines:     2,
		Cores:        24,
		IntraLatency: 2 * time.Microsecond,
		InterLatency: 60 * time.Microsecond,
		IntraBW:      4e9, // shared memory copy bandwidth
		InterBW:      1e8, // ~1 Gb/s effective
		DiskLatency:  5 * time.Millisecond,
		DiskBW:       8e7, // ~80 MB/s
	}
}

// TotalCores reports the processing-element capacity of the cluster.
func (t Topology) TotalCores() int { return t.Machines * t.Cores }

// Machine reports which machine hosts the given rank under block placement
// (ranks fill one machine before spilling to the next), the placement the
// paper's 32-process runs imply: with 24 cores per machine, ranks 24..31
// land on the second machine.
func (t Topology) Machine(rank int) int {
	if t.Cores <= 0 {
		return 0
	}
	m := rank / t.Cores
	if t.Machines > 0 && m >= t.Machines {
		m = m % t.Machines // oversubscription wraps around
	}
	return m
}

// SameMachine reports whether two ranks share a machine.
func (t Topology) SameMachine(a, b int) bool { return t.Machine(a) == t.Machine(b) }

// LinkCost reports the modelled cost of an n-byte message between ranks.
func (t Topology) LinkCost(from, to, n int) time.Duration {
	if from == to {
		return 0
	}
	var lat time.Duration
	var bw float64
	if t.SameMachine(from, to) {
		lat, bw = t.IntraLatency, t.IntraBW
	} else {
		lat, bw = t.InterLatency, t.InterBW
	}
	d := lat
	if bw > 0 {
		d += time.Duration(float64(n) / bw * float64(time.Second))
	}
	return d
}

// DiskCost reports the modelled cost of writing or reading n bytes of
// checkpoint data.
func (t Topology) DiskCost(n int) time.Duration {
	d := t.DiskLatency
	if t.DiskBW > 0 {
		d += time.Duration(float64(n) / t.DiskBW * float64(time.Second))
	}
	return d
}

// DelayFunc adapts the topology to the mp transport hook. scale compresses
// modelled time so simulated runs finish quickly (e.g. scale=0.01 sleeps 1%
// of the modelled cost); scale <= 0 disables the delays entirely.
func (t Topology) DelayFunc(scale float64) mp.DelayFunc {
	if scale <= 0 {
		return nil
	}
	return func(from, to, n int) time.Duration {
		return time.Duration(float64(t.LinkCost(from, to, n)) * scale)
	}
}

// String summarises the topology.
func (t Topology) String() string {
	return fmt.Sprintf("%d machine(s) × %d core(s)", t.Machines, t.Cores)
}
