package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestChurnAtPlaysSchedule(t *testing.T) {
	top := PaperCluster()
	c := NewChurnSim(top,
		ChurnEvent{At: 10 * time.Millisecond, Threads: 4, Procs: 8},
		ChurnEvent{At: 30 * time.Millisecond, Threads: top.Cores, Procs: top.TotalCores()},
	)
	if th, pr := c.At(0); th != top.Cores || pr != top.TotalCores() {
		t.Fatalf("before first event: got (%d,%d)", th, pr)
	}
	if th, pr := c.At(15 * time.Millisecond); th != 4 || pr != 8 {
		t.Fatalf("after loss: got (%d,%d), want (4,8)", th, pr)
	}
	if th, pr := c.At(time.Hour); th != top.Cores || pr != top.TotalCores() {
		t.Fatalf("after arrival: got (%d,%d)", th, pr)
	}
}

func TestChurnClampsCapacities(t *testing.T) {
	top := PaperCluster()
	c := NewChurnSim(top,
		ChurnEvent{At: time.Millisecond, Threads: -3, Procs: 10 * top.TotalCores()},
	)
	th, pr := c.At(time.Millisecond)
	if th != 1 || pr != top.TotalCores() {
		t.Fatalf("clamp: got (%d,%d), want (1,%d)", th, pr, top.TotalCores())
	}
}

func TestChurnUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted schedule accepted")
		}
	}()
	NewChurnSim(PaperCluster(),
		ChurnEvent{At: time.Second, Threads: 1, Procs: 1},
		ChurnEvent{At: time.Millisecond, Threads: 2, Procs: 2},
	)
}

func TestChurnStartUpdatesCapacityAndHook(t *testing.T) {
	top := PaperCluster()
	c := NewChurnSim(top,
		ChurnEvent{At: time.Millisecond, Threads: 2, Procs: 3},
	)
	var mu sync.Mutex
	var gotT, gotP int
	fired := make(chan struct{})
	c.OnChange(func(th, pr int) {
		mu.Lock()
		gotT, gotP = th, pr
		mu.Unlock()
		close(fired)
	})
	stop := c.Start()
	defer stop()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("event never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if gotT != 2 || gotP != 3 {
		t.Fatalf("hook saw (%d,%d), want (2,3)", gotT, gotP)
	}
	if th, pr := c.Capacity(); th != 2 || pr != 3 {
		t.Fatalf("Capacity: got (%d,%d), want (2,3)", th, pr)
	}
}

func TestChurnStopHaltsPlayback(t *testing.T) {
	c := NewChurnSim(PaperCluster(),
		ChurnEvent{At: time.Hour, Threads: 1, Procs: 1},
	)
	stop := c.Start()
	stop()
	stop() // idempotent
	if th, _ := c.Capacity(); th != PaperCluster().Cores {
		t.Fatalf("stopped playback still fired: threads=%d", th)
	}
}

func TestLossArrivalShape(t *testing.T) {
	top := PaperCluster()
	evs := LossArrival(top, 10*time.Millisecond, 3)
	if len(evs) != 6 {
		t.Fatalf("want 6 events, got %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Threads < 1 || ev.Procs < 1 {
			t.Fatalf("event %d under floor: %+v", i, ev)
		}
		if i > 0 && ev.At <= evs[i-1].At {
			t.Fatalf("events not strictly ordered: %+v", evs)
		}
	}
	// Odd events restore full capacity.
	if evs[1].Threads != top.Cores || evs[1].Procs != top.TotalCores() {
		t.Fatalf("arrival does not restore: %+v", evs[1])
	}
	// Even events lose one machine's worth.
	if evs[0].Procs != top.TotalCores()-top.Cores {
		t.Fatalf("loss shape: %+v", evs[0])
	}
}

func TestFlappingDeterministic(t *testing.T) {
	top := PaperCluster()
	a := Flapping(top, time.Millisecond, 50, 7)
	b := Flapping(top, time.Millisecond, 50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Flapping(top, time.Millisecond, 50, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, ev := range a {
		if ev.Threads < 1 || ev.Threads > top.Cores || ev.Procs < 1 || ev.Procs > top.TotalCores() {
			t.Fatalf("out-of-range capacity: %+v", ev)
		}
	}
}
