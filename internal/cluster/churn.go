package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// ChurnEvent is one scripted capacity change: at offset At from playback
// start, the cluster's usable capacity becomes Threads cores on the
// biggest machine and Procs total slots. Node loss is an event with less
// capacity than the previous one, node arrival one with more.
type ChurnEvent struct {
	At      time.Duration
	Threads int
	Procs   int
}

// ChurnSim plays a scripted node-loss/node-arrival schedule against the
// topology — the flapping-capacity harness the autoscaler is proven
// against. It has two faces:
//
//   - At(elapsed) is the pure playback: capacity as a function of offset,
//     for deterministic tests and for generating expected traces.
//   - Start() runs the schedule on the wall clock, updating the capacity
//     read by Capacity() (safe for concurrent use; plugs directly into
//     autoscale.Config.Capacity) and invoking the OnChange hook — the
//     fleet supervisor re-budgets from it.
type ChurnSim struct {
	top    Topology
	events []ChurnEvent // sorted by At; normalised capacities

	threads atomic.Int64
	procs   atomic.Int64

	mu       sync.Mutex
	onChange func(threads, procs int)
}

// NewChurnSim builds a simulator over top playing events. Events are
// applied in At order; capacities are clamped to [1, topology size].
// Playback starts at the topology's full capacity.
func NewChurnSim(top Topology, events ...ChurnEvent) *ChurnSim {
	c := &ChurnSim{top: top}
	c.events = append(c.events, events...)
	for i := range c.events {
		c.events[i].Threads = clampCap(c.events[i].Threads, top.Cores)
		c.events[i].Procs = clampCap(c.events[i].Procs, top.TotalCores())
	}
	for i := 1; i < len(c.events); i++ {
		if c.events[i].At < c.events[i-1].At {
			panic("cluster: churn events must be sorted by At")
		}
	}
	c.threads.Store(int64(top.Cores))
	c.procs.Store(int64(top.TotalCores()))
	return c
}

func clampCap(v, max int) int {
	if v < 1 {
		return 1
	}
	if v > max {
		return max
	}
	return v
}

// At returns the scripted capacity at the given playback offset — the
// deterministic view: full capacity before the first event, then the
// newest event at or before elapsed.
func (c *ChurnSim) At(elapsed time.Duration) (threads, procs int) {
	threads, procs = c.top.Cores, c.top.TotalCores()
	for _, ev := range c.events {
		if ev.At > elapsed {
			break
		}
		threads, procs = ev.Threads, ev.Procs
	}
	return threads, procs
}

// Capacity returns the live capacity under Start playback (full capacity
// before Start). Safe for concurrent use; matches the
// autoscale.Config.Capacity contract.
func (c *ChurnSim) Capacity() (threads, procs int) {
	return int(c.threads.Load()), int(c.procs.Load())
}

// OnChange registers a hook invoked (from the playback goroutine) after
// each applied event — the fleet supervisor re-budgets here. Register
// before Start.
func (c *ChurnSim) OnChange(f func(threads, procs int)) {
	c.mu.Lock()
	c.onChange = f
	c.mu.Unlock()
}

// Start plays the schedule on the wall clock. The returned stop function
// (idempotent) halts playback; events not yet due never fire. Capacity()
// reflects every applied event immediately.
func (c *ChurnSim) Start() (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		for _, ev := range c.events {
			wait := ev.At - time.Since(start)
			if wait > 0 {
				select {
				case <-stopCh:
					return
				case <-time.After(wait):
				}
			} else {
				select {
				case <-stopCh:
					return
				default:
				}
			}
			c.threads.Store(int64(ev.Threads))
			c.procs.Store(int64(ev.Procs))
			c.mu.Lock()
			f := c.onChange
			c.mu.Unlock()
			if f != nil {
				f(ev.Threads, ev.Procs)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-done
		})
	}
}

// LossArrival generates the canonical churn script: every period, one
// machine's worth of capacity is lost, then arrives back one period later,
// repeated for the given number of cycles. The shrunken capacity is what
// remains after losing one machine (floored at one core).
func LossArrival(top Topology, period time.Duration, cycles int) []ChurnEvent {
	fullT, fullP := top.Cores, top.TotalCores()
	lostP := fullP - top.Cores // one machine gone
	if lostP < 1 {
		lostP = 1
	}
	lostT := top.Cores / 2 // the survivor is shared with displaced work
	if lostT < 1 {
		lostT = 1
	}
	var evs []ChurnEvent
	at := period
	for i := 0; i < cycles; i++ {
		evs = append(evs,
			ChurnEvent{At: at, Threads: lostT, Procs: lostP},
			ChurnEvent{At: at + period, Threads: fullT, Procs: fullP},
		)
		at += 2 * period
	}
	return evs
}

// Flapping generates a deterministic pseudo-random capacity walk from the
// seed: n events, one per period, each drawing thread and proc capacity
// uniformly from [1, full]. The same seed always yields the same schedule,
// so soak failures reproduce.
func Flapping(top Topology, period time.Duration, n int, seed uint64) []ChurnEvent {
	r := seed*6364136223846793005 + 1442695040888963407
	next := func(max int) int {
		r = r*6364136223846793005 + 1442695040888963407
		return 1 + int((r>>33)%uint64(max))
	}
	var evs []ChurnEvent
	for i := 1; i <= n; i++ {
		evs = append(evs, ChurnEvent{
			At:      time.Duration(i) * period,
			Threads: next(top.Cores),
			Procs:   next(top.TotalCores()),
		})
	}
	return evs
}
