// Package figures regenerates every figure of the paper's evaluation
// section (§V, Figures 3–9). Each figure has two generators:
//
//   - Model: the calibrated analytic model at the paper's scale (2000×2000
//     grid, 100 iterations, up to 32 processes on the two-machine cluster).
//     This is the default — the reproduction container typically has a
//     single core, so wall-clock scaling cannot be observed directly.
//   - Real: the actual engine running a scaled-down workload, measuring
//     real protocol costs (checkpoint saves, replays, adaptations). Real
//     generators exercise every code path the figure is about.
//
// The table each generator returns has the same rows/series as the paper's
// figure; EXPERIMENTS.md records the comparison.
package figures

import (
	"fmt"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/cluster"
	"ppar/internal/core"
	"ppar/internal/jgf"
	"ppar/internal/jgf/invasive"
	"ppar/internal/jgf/refimpl"
	"ppar/internal/metrics"
	"ppar/internal/perfmodel"
	"ppar/internal/team"
)

// Paper-scale workload (JGF SOR size C-ish, as §V uses).
const (
	paperN     = 2000
	paperIters = 100
)

// RealScale is the scaled-down workload for real runs.
type RealScale struct {
	N     int
	Iters int
	// MaxPE caps the environment list (goroutine worlds beyond the host's
	// cores still execute correctly, just without wall-clock speedup).
	MaxPE int
	Dir   string // checkpoint directory (used when Store is nil)
	// Store, when non-nil, is the checkpoint backend used instead of a
	// filesystem store in Dir (the ppbench -store flag plugs in the
	// in-memory or gzip store here).
	Store ckpt.Store
	// Async selects the asynchronous double-buffered checkpoint pipeline
	// for the checkpointing runs (the ppbench -async flag).
	Async bool
	// Delta selects incremental (delta) checkpointing for the
	// checkpointing runs (the ppbench -delta flag); chains compact every 8
	// deltas.
	Delta bool
	// Shards selects per-rank shard checkpoints for the distributed
	// checkpointing runs (the ppbench -shards flag); composes with Async
	// and Delta.
	Shards bool
}

// DefaultRealScale suits a small container.
func DefaultRealScale(dir string) RealScale {
	return RealScale{N: 400, Iters: 60, MaxPE: 8, Dir: dir}
}

// environments is the x-axis of Figures 3–5: sequential, 2–16 threads
// ("LE"), 2–32 processes ("P").
type env struct {
	label string
	pe    int
	dist  bool
}

func paperEnvs() []env {
	return []env{
		{"seq", 1, false},
		{"2 LE", 2, false}, {"4 LE", 4, false}, {"8 LE", 8, false}, {"16 LE", 16, false},
		{"2 P", 2, true}, {"4 P", 4, true}, {"8 P", 8, true}, {"16 P", 16, true}, {"32 P", 32, true},
	}
}

func realEnvs(maxPE int) []env {
	out := []env{{"seq", 1, false}}
	for _, pe := range []int{2, 4, 8, 16} {
		if pe <= maxPE {
			out = append(out, env{fmt.Sprintf("%d LE", pe), pe, false})
		}
	}
	for _, pe := range []int{2, 4, 8, 16, 32} {
		if pe <= maxPE {
			out = append(out, env{fmt.Sprintf("%d P", pe), pe, true})
		}
	}
	return out
}

func cfgFor(e env, scale RealScale, withCkpt bool, every uint64, maxCkpt int) core.Config {
	cfg := core.Config{AppName: "fig-sor"}
	switch {
	case e.pe == 1:
		cfg.Mode = core.Sequential
	case e.dist:
		cfg.Mode = core.Distributed
		cfg.Procs = e.pe
	default:
		cfg.Mode = core.Shared
		cfg.Threads = e.pe
	}
	if withCkpt {
		cfg.Modules = jgf.SORModules(cfg.Mode)
		cfg.Store = scale.Store
		cfg.CheckpointDir = scale.Dir
		cfg.CheckpointEvery = every
		cfg.MaxCheckpoints = maxCkpt
		cfg.AsyncCheckpoint = scale.Async
		cfg.DeltaCheckpoint = scale.Delta
		cfg.ShardCheckpoints = scale.Shards && cfg.Mode == core.Distributed
	} else {
		// "Original": parallelisation only, no checkpoint module.
		switch cfg.Mode {
		case core.Shared:
			cfg.Modules = []*core.Module{jgf.SORSharedModule()}
		case core.Distributed:
			cfg.Modules = []*core.Module{jgf.SORDistModule()}
		}
	}
	return cfg
}

// runReal executes one real SOR deployment and returns its report.
func runReal(cfg core.Config, n, iters int) (core.Report, float64, error) {
	res := &jgf.SORResult{}
	eng, err := core.New(cfg, func() core.App { return jgf.NewSOR(n, iters, res) })
	if err != nil {
		return core.Report{}, 0, err
	}
	if err := eng.Run(); err != nil {
		return core.Report{}, 0, err
	}
	return eng.Report(), res.Gtotal, nil
}

// Fig3Model regenerates "Checkpoint overhead" at paper scale.
func Fig3Model() *metrics.Table {
	m := perfmodel.Paper()
	t := metrics.NewTable(
		"Figure 3 — Checkpoint overhead (modelled, 2000x2000, 100 iterations)",
		"environment", "original", "ckpt-0 (counting)", "ckpt-1 (counting+save)", "count-overhead")
	bytes := paperN * paperN * 8
	for _, e := range paperEnvs() {
		orig := m.SORTime(paperN, paperIters, e.pe, e.dist, false)
		counted := m.SORTime(paperN, paperIters, e.pe, e.dist, true)
		withSave := counted + m.SaveTime(bytes, e.pe, e.dist)
		t.AddRow(e.label, orig, counted, withSave,
			fmt.Sprintf("%.3f%%", 100*float64(counted-orig)/float64(orig)))
	}
	return t
}

// Fig3Real measures original vs invasive vs pluggable checkpointing on the
// real engine at reduced scale.
func Fig3Real(scale RealScale) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 3 — Checkpoint overhead (real, %dx%d, %d iterations)", scale.N, scale.N, scale.Iters),
		"environment", "original", "pluggable ckpt-0", "pluggable ckpt-1", "invasive ckpt-1")
	for _, e := range realEnvs(scale.MaxPE) {
		orig, _, err := runReal(cfgFor(e, scale, false, 0, 0), scale.N, scale.Iters)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s original: %w", e.label, err)
		}
		ck0, _, err := runReal(cfgFor(e, scale, true, 0, 0), scale.N, scale.Iters)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s ckpt-0: %w", e.label, err)
		}
		ck1, _, err := runReal(cfgFor(e, scale, true, uint64(scale.Iters/2), 1), scale.N, scale.Iters)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s ckpt-1: %w", e.label, err)
		}
		invCell := "-"
		if e.pe == 1 {
			inv := invasive.New(scale.N, scale.Iters)
			if err := inv.EnableCheckpoints(scale.Dir, uint64(scale.Iters/2), 1); err != nil {
				return nil, err
			}
			start := time.Now()
			if err := inv.Run(); err != nil {
				return nil, err
			}
			invCell = fmt.Sprintf("%.3fms", float64(time.Since(start).Microseconds())/1000)
			inv.RemoveCheckpoint()
		}
		t.AddRow(e.label, orig.Elapsed, ck0.Elapsed, ck1.Elapsed, invCell)
	}
	return t, nil
}

// Fig4Model regenerates "Time to save checkpoint data".
func Fig4Model() *metrics.Table {
	m := perfmodel.Paper()
	t := metrics.NewTable(
		"Figure 4 — Time to save checkpoint data (modelled, 32 MB grid)",
		"environment", "save time")
	bytes := paperN * paperN * 8
	for _, e := range paperEnvs() {
		t.AddRow(e.label, m.SaveTime(bytes, e.pe, e.dist))
	}
	return t
}

// Fig4Real measures the save protocols on the real engine. The "blocked"
// column is the time lines of execution stood at the save barrier — with
// the asynchronous pipeline it covers only the double-buffer capture, and
// the encode+persist moves to the overlapped "background" column (plus the
// exit drain).
// With the incremental pipeline (RealScale.Delta) the saves/full/delta
// split and cumulative delta bytes appear in the last three columns; the
// delta runs checkpoint frequently (instead of the paper's single mid-run
// save, whose only capture would always be the full chain base) so the
// chain actually carries deltas.
func Fig4Real(scale RealScale) (*metrics.Table, error) {
	every, maxCkpt := uint64(scale.Iters/2), 1
	if scale.Delta {
		if every = uint64(scale.Iters / 8); every == 0 {
			every = 1
		}
		maxCkpt = 0
	}
	t := metrics.NewTable(
		fmt.Sprintf("Figure 4 — Time to save checkpoint data (real, %d KB grid)", scale.N*scale.N*8/1024),
		"environment", "blocked", "background", "drain", "bytes", "full-saves", "delta-saves", "delta-bytes")
	for _, e := range realEnvs(scale.MaxPE) {
		rep, _, err := runReal(cfgFor(e, scale, true, every, maxCkpt), scale.N, scale.Iters)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", e.label, err)
		}
		t.AddRow(e.label, rep.SaveTotal, rep.AsyncSaveTotal, rep.DrainTotal, rep.SaveBytes,
			rep.FullSaves, rep.DeltaSaves, rep.DeltaBytes)
	}
	return t, nil
}

// Fig5Model regenerates "Restart overhead" (failure after 100 safe points).
func Fig5Model() *metrics.Table {
	m := perfmodel.Paper()
	t := metrics.NewTable(
		"Figure 5 — Restart overhead after failure at 100 safe points (modelled)",
		"environment", "replay", "load", "total")
	bytes := paperN * paperN * 8
	for _, e := range paperEnvs() {
		replay, load := m.RestartTime(bytes, 100, e.pe, e.dist)
		t.AddRow(e.label, replay, load, replay+load)
	}
	return t
}

// Fig5Real injects a failure and measures the real replay/load split.
func Fig5Real(scale RealScale) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Figure 5 — Restart overhead (real)",
		"environment", "replay", "load")
	failAt := uint64(scale.Iters - 5)
	for _, e := range realEnvs(scale.MaxPE) {
		cfg := cfgFor(e, scale, true, failAt-5, 1)
		cfg.FailAtSafePoint = failAt
		if _, _, err := runReal(cfg, scale.N, scale.Iters); err == nil {
			return nil, fmt.Errorf("fig5 %s: failure did not fire", e.label)
		}
		cfg.FailAtSafePoint = 0
		rep, _, err := runReal(cfg, scale.N, scale.Iters)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s restart: %w", e.label, err)
		}
		t.AddRow(e.label, rep.ReplayTime, rep.LoadTotal)
	}
	return t, nil
}

// Fig6Model regenerates "Application restart increasing more resources":
// per-iteration time, 2 P restarted as 8 P at iteration 26.
func Fig6Model() *metrics.Table {
	m := perfmodel.Paper()
	t := metrics.NewTable(
		"Figure 6 — Per-iteration time: 2 P, restarted on 8 P at iteration 26 (modelled)",
		"iteration", "time/iter")
	t2 := m.SweepTime(paperN, 2, true)
	t8 := m.SweepTime(paperN, 8, true)
	bytes := paperN * paperN * 8
	for it := 1; it <= paperIters; it++ {
		switch {
		case it < 26:
			t.AddRow(it, t2)
		case it == 26:
			replay, load := m.RestartTime(bytes, 26, 8, true)
			t.AddRow(it, t2+m.SaveTime(bytes, 2, true)+m.RestartFixed+replay+load)
		default:
			t.AddRow(it, t8)
		}
	}
	return t
}

// Fig6Real performs the actual stop-checkpoint + wider restart and records
// real per-iteration times.
func Fig6Real(scale RealScale) (*metrics.Table, error) {
	rec := &metrics.IterRecorder{}
	res := &jgf.SORResult{Iters: rec}
	factory := func() core.App { return jgf.NewSOR(scale.N, scale.Iters, res) }
	stopAt := uint64(scale.Iters / 2)

	cfg := core.Config{
		Mode: core.Distributed, Procs: 2, AppName: "fig6-sor",
		Modules: jgf.SORModules(core.Distributed),
		Store:   scale.Store, CheckpointDir: scale.Dir, StopCheckpointAt: stopAt,
	}
	eng, err := core.New(cfg, factory)
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err == nil {
		return nil, fmt.Errorf("fig6: run did not stop for adaptation")
	}
	rec.Break()
	wider := cfg
	wider.StopCheckpointAt = 0
	wider.Procs = 8
	eng2, err := core.New(wider, factory)
	if err != nil {
		return nil, err
	}
	if err := eng2.Run(); err != nil {
		return nil, fmt.Errorf("fig6 restart: %w", err)
	}
	t := metrics.NewTable(
		fmt.Sprintf("Figure 6 — Per-iteration time: 2 P -> 8 P restart at iteration %d (real)", stopAt),
		"iteration", "time/iter")
	for i, d := range rec.Times() {
		t.AddRow(i+1, d)
	}
	return t, nil
}

// Fig7Model regenerates "Benefits of resource expansion": adapting from
// 2/4/8 LE to 16 LE by run-time adaptation vs by restart.
func Fig7Model() *metrics.Table {
	m := perfmodel.Paper()
	t := metrics.NewTable(
		"Figure 7 — Expansion to 16 LE: run-time adaptation vs restart (modelled)",
		"start", "no adaptation", "run-time", "restart")
	for _, from := range []int{2, 4, 8} {
		stay := m.SORTime(paperN, paperIters, from, false, true)
		rt := m.AdaptExpandTime(paperN, paperIters, from, 16, false)
		rs := m.AdaptExpandTime(paperN, paperIters, from, 16, true)
		t.AddRow(fmt.Sprintf("%d LE", from), stay, rt, rs)
	}
	return t
}

// Fig7Real compares real run-time team expansion against real
// checkpoint-restart expansion.
func Fig7Real(scale RealScale) (*metrics.Table, error) {
	t := metrics.NewTable(
		"Figure 7 — Expansion to wider team: run-time vs restart (real)",
		"start", "run-time", "restart")
	to := scale.MaxPE
	adaptAt := uint64(scale.Iters / 2)
	for _, from := range []int{2, 4} {
		if from >= to {
			continue
		}
		// Run-time adaptation.
		cfg := core.Config{
			Mode: core.Shared, Threads: from, AppName: "fig7-sor",
			Modules:          jgf.SORModules(core.Shared),
			AdaptAtSafePoint: adaptAt, AdaptTo: core.AdaptTarget{Threads: to},
		}
		rep, _, err := runReal(cfg, scale.N, scale.Iters)
		if err != nil {
			return nil, fmt.Errorf("fig7 runtime from %d: %w", from, err)
		}
		// Restart adaptation.
		res := &jgf.SORResult{}
		factory := func() core.App { return jgf.NewSOR(scale.N, scale.Iters, res) }
		first := core.Config{
			Mode: core.Shared, Threads: from, AppName: "fig7-sor",
			Modules: jgf.SORModules(core.Shared),
			Store:   scale.Store, CheckpointDir: scale.Dir, StopCheckpointAt: adaptAt,
		}
		start := time.Now()
		eng, err := core.New(first, factory)
		if err != nil {
			return nil, err
		}
		if err := eng.Run(); err == nil {
			return nil, fmt.Errorf("fig7: first run did not stop")
		}
		second := first
		second.StopCheckpointAt = 0
		second.Threads = to
		eng2, err := core.New(second, factory)
		if err != nil {
			return nil, err
		}
		if err := eng2.Run(); err != nil {
			return nil, fmt.Errorf("fig7 restart from %d: %w", from, err)
		}
		restartTotal := time.Since(start)
		t.AddRow(fmt.Sprintf("%d LE", from), rep.Elapsed, restartTotal)
	}
	return t, nil
}

// Fig8Model regenerates "Overhead of over-decomposition".
func Fig8Model() *metrics.Table {
	m := perfmodel.Paper()
	t := metrics.NewTable(
		"Figure 8 — Over-decomposition on 16 PEs (modelled)",
		"factor", "tasks", "time", "slowdown")
	base := m.OverDecompTime(paperN, paperIters, 16, 1)
	for _, of := range []int{1, 2, 4, 8, 16} {
		d := m.OverDecompTime(paperN, paperIters, 16, of)
		t.AddRow(of, 16*of, d, fmt.Sprintf("%.2fx", float64(d)/float64(base)))
	}
	return t
}

// Fig8Real measures real over-decomposed execution (goroutine tasks with a
// tasks-wide barrier per iteration).
func Fig8Real(scale RealScale) (*metrics.Table, error) {
	pe := scale.MaxPE / 2
	if pe < 2 {
		pe = 2
	}
	t := metrics.NewTable(
		fmt.Sprintf("Figure 8 — Over-decomposition on %d PEs (real, %dx%d)", pe, scale.N, scale.N),
		"factor", "tasks", "time", "slowdown")
	var base time.Duration
	for _, of := range []int{1, 2, 4, 8, 16} {
		tasks := pe * of
		g := jgf.NewSOR(scale.N, scale.Iters, nil)
		rows := scale.N - 2
		start := time.Now()
		team.OverDecompose(tasks, pe, scale.Iters, func(task, iter int) {
			lo, hi := team.StaticSpan(task, tasks, 1, 1+rows)
			for colour := 0; colour < 2; colour++ {
				sorSweepRows(g, lo, hi, colour)
			}
		})
		d := time.Since(start)
		if of == 1 {
			base = d
		}
		t.AddRow(of, tasks, d, fmt.Sprintf("%.2fx", float64(d)/float64(base)))
	}
	return t, nil
}

func sorSweepRows(g *jgf.SOR, lo, hi, colour int) {
	omega, oneMinus := g.Omega, 1-g.Omega
	for i := lo; i < hi; i++ {
		row := g.G[i]
		up, down := g.G[i-1], g.G[i+1]
		for j := 1 + (i+colour)%2; j < g.N-1; j += 2 {
			row[j] = omega*0.25*(up[j]+down[j]+row[j-1]+row[j+1]) + oneMinus*row[j]
		}
	}
}

// Fig9Model regenerates "Overhead of adaptability": JGF Sequential /
// Threads / MPI vs the adaptive pluggable version, on the eight-core
// machines §V uses for this figure.
func Fig9Model() *metrics.Table {
	m := perfmodel.Paper()
	m.Top = cluster.Topology{
		Machines: 4, Cores: 8,
		IntraLatency: m.Top.IntraLatency, InterLatency: m.Top.InterLatency,
		IntraBW: m.Top.IntraBW, InterBW: m.Top.InterBW,
		DiskLatency: m.Top.DiskLatency, DiskBW: m.Top.DiskBW,
	}
	t := metrics.NewTable(
		"Figure 9 — Overhead of adaptability (modelled, 8-core machines)",
		"PEs", "JGF-Sequential", "JGF-Threads", "JGF-MPI", "Adaptive", "adaptive vs best")
	for _, pe := range []int{1, 4, 8, 16, 32} {
		seq := m.SORTime(paperN, paperIters, 1, false, false)
		th := m.SORTime(paperN, paperIters, pe, false, false)
		mpi := m.SORTime(paperN, paperIters, pe, true, false)
		ad := m.AdaptiveTime(paperN, paperIters, pe)
		best := th
		if mpi < best {
			best = mpi
		}
		t.AddRow(pe, seq, th, mpi, ad, fmt.Sprintf("+%.1f%%", 100*(float64(ad)/float64(best)-1)))
	}
	return t
}

// Fig9Real runs the hand-written JGF ports and the adaptive version on the
// real substrates at reduced scale.
func Fig9Real(scale RealScale) (*metrics.Table, error) {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 9 — Overhead of adaptability (real, %dx%d)", scale.N, scale.N),
		"PEs", "JGF-Sequential", "JGF-Threads", "JGF-MPI", "Adaptive")
	ref := refimpl.Sequential(scale.N, scale.Iters)
	for _, pe := range []int{1, 2, 4, 8} {
		if pe > scale.MaxPE {
			break
		}
		start := time.Now()
		refimpl.Sequential(scale.N, scale.Iters)
		seqT := time.Since(start)

		start = time.Now()
		gt := refimpl.Threads(scale.N, scale.Iters, pe)
		thT := time.Since(start)
		if gt != ref {
			return nil, fmt.Errorf("fig9: threads(%d) diverged", pe)
		}

		start = time.Now()
		gm, err := refimpl.MPI(scale.N, scale.Iters, pe, nil)
		if err != nil {
			return nil, err
		}
		mpiT := time.Since(start)
		if gm != ref {
			return nil, fmt.Errorf("fig9: mpi(%d) diverged", pe)
		}

		// Adaptive: the pluggable version deployed to match pe.
		e := env{pe: pe, dist: pe > scale.MaxPE/2}
		if pe == 1 {
			e = env{pe: 1}
		}
		rep, g, err := runReal(cfgFor(e, scale, false, 0, 0), scale.N, scale.Iters)
		if err != nil {
			return nil, err
		}
		if g != ref {
			return nil, fmt.Errorf("fig9: adaptive(%d) diverged", pe)
		}
		t.AddRow(pe, seqT, thT, mpiT, rep.Elapsed)
	}
	return t, nil
}
