package figures

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func parseDur(t *testing.T, cell string) time.Duration {
	t.Helper()
	switch {
	case strings.HasSuffix(cell, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "ms"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return time.Duration(v * float64(time.Millisecond))
	case strings.HasSuffix(cell, "µs"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "µs"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return time.Duration(v * float64(time.Microsecond))
	case strings.HasSuffix(cell, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return time.Duration(v * float64(time.Second))
	}
	t.Fatalf("cell %q has no duration suffix", cell)
	return 0
}

func TestModelFiguresHaveExpectedSeries(t *testing.T) {
	if rows := Fig3Model().Rows(); len(rows) != 10 {
		t.Errorf("Fig3: %d environments, want 10", len(rows))
	}
	if rows := Fig4Model().Rows(); len(rows) != 10 {
		t.Errorf("Fig4: %d environments, want 10", len(rows))
	}
	if rows := Fig5Model().Rows(); len(rows) != 10 {
		t.Errorf("Fig5: %d environments, want 10", len(rows))
	}
	if rows := Fig6Model().Rows(); len(rows) != 100 {
		t.Errorf("Fig6: %d iterations, want 100", len(rows))
	}
	if rows := Fig7Model().Rows(); len(rows) != 3 {
		t.Errorf("Fig7: %d starting points, want 3", len(rows))
	}
	if rows := Fig8Model().Rows(); len(rows) != 5 {
		t.Errorf("Fig8: %d factors, want 5", len(rows))
	}
	if rows := Fig9Model().Rows(); len(rows) != 5 {
		t.Errorf("Fig9: %d PE counts, want 5", len(rows))
	}
}

// Fig 6's modelled series must show the paper's shape: flat at the 2-P
// rate, a restart spike at iteration 26, then flat at the faster 8-P rate.
func TestFig6ModelShape(t *testing.T) {
	rows := Fig6Model().Rows()
	before := parseDur(t, rows[0][1])
	spike := parseDur(t, rows[25][1])
	after := parseDur(t, rows[30][1])
	if !(after < before) {
		t.Errorf("8-P iterations (%v) should beat 2-P iterations (%v)", after, before)
	}
	if !(spike > 3*before) {
		t.Errorf("restart iteration (%v) should spike well above %v", spike, before)
	}
	// Overall time shortened "to more than half": compare totals of
	// adapting vs staying on 2 P.
	var adapted time.Duration
	for _, r := range rows {
		adapted += parseDur(t, r[1])
	}
	stay := time.Duration(len(rows)) * before
	if !(adapted < stay*6/10) {
		t.Errorf("adapted total %v not roughly half of staying %v", adapted, stay)
	}
}

func TestFig9ModelShape(t *testing.T) {
	rows := Fig9Model().Rows()
	// Threads best at 4 and 8 PEs (single machine); MPI best at 16/32.
	get := func(r, c int) time.Duration { return parseDur(t, rows[r][c]) }
	if !(get(1, 2) <= get(1, 3)) {
		t.Errorf("at 4 PEs threads (%v) should not lose to MPI (%v)", get(1, 2), get(1, 3))
	}
	if !(get(4, 3) < get(4, 2)) {
		t.Errorf("at 32 PEs MPI (%v) must beat capped threads (%v)", get(4, 3), get(4, 2))
	}
	// Sequential flat.
	if get(0, 1) != get(4, 1) {
		t.Error("sequential time should be flat across PE counts")
	}
	// Adaptive within 5% of best everywhere.
	for r := 0; r < 5; r++ {
		best := get(r, 2)
		if m := get(r, 3); m < best {
			best = m
		}
		if ad := get(r, 4); float64(ad) > 1.055*float64(best) {
			t.Errorf("row %d: adaptive %v more than 5%% over best %v", r, ad, best)
		}
	}
}

// Real generators run end to end at a tiny scale (every code path they
// exist to exercise: checkpoint saves, failures, replays, adaptations).
func TestRealFiguresTinyScale(t *testing.T) {
	scale := RealScale{N: 64, Iters: 16, MaxPE: 4, Dir: t.TempDir()}
	if _, err := Fig3Real(scale); err != nil {
		t.Errorf("Fig3Real: %v", err)
	}
	if _, err := Fig4Real(scale); err != nil {
		t.Errorf("Fig4Real: %v", err)
	}
	if _, err := Fig5Real(scale); err != nil {
		t.Errorf("Fig5Real: %v", err)
	}
	if tbl, err := Fig6Real(scale); err != nil {
		t.Errorf("Fig6Real: %v", err)
	} else if len(tbl.Rows()) < scale.Iters-3 {
		t.Errorf("Fig6Real recorded %d iterations", len(tbl.Rows()))
	}
	if _, err := Fig7Real(scale); err != nil {
		t.Errorf("Fig7Real: %v", err)
	}
	if _, err := Fig8Real(scale); err != nil {
		t.Errorf("Fig8Real: %v", err)
	}
	if _, err := Fig9Real(scale); err != nil {
		t.Errorf("Fig9Real: %v", err)
	}
}
