package team

// xchgState is the shared buffer of one all-to-all value exchange.
type xchgState struct {
	vals    []float64
	visits  int
	parties int
}

// ExchangeF64 lets every active worker contribute one float64 and returns
// the full vector indexed by worker id, identical on all workers. It is the
// team-level primitive behind deterministic reductions: callers fold the
// returned vector in index order so the result is independent of thread
// scheduling. Retired and replaying workers consume the exchange instance
// but return nil.
//
// The exchange includes a barrier, so all contributions happen-before all
// reads.
func (w *Worker) ExchangeF64(v float64) []float64 {
	w.xchgSeq++
	if w.retired || w.replaying.Load() {
		return nil
	}
	seq := w.xchgSeq
	t := w.t
	t.mu.Lock()
	st, ok := t.xchgs[seq]
	if !ok {
		st = &xchgState{vals: make([]float64, t.Size()), parties: t.Size()}
		t.xchgs[seq] = st
	}
	st.vals[w.id] = v
	t.mu.Unlock()
	w.Barrier()
	out := make([]float64, len(st.vals))
	copy(out, st.vals)
	t.mu.Lock()
	st.visits++
	if st.visits >= st.parties {
		delete(t.xchgs, seq)
	}
	t.mu.Unlock()
	return out
}

// BroadcastF64 distributes the master's value to every active worker.
func (w *Worker) BroadcastF64(v float64) float64 {
	vals := w.ExchangeF64(v)
	if vals == nil {
		return v
	}
	return vals[0]
}
