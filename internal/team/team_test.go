package team

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestBarrierReleasesTogether(t *testing.T) {
	const n = 8
	b := NewBarrier(n)
	var before, after atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 100; round++ {
				before.Add(1)
				b.Wait()
				// Everyone must have incremented before anyone proceeds.
				if got := before.Load(); got < int64((round+1)*n) {
					t.Errorf("round %d: released with before=%d", round, got)
					return
				}
				after.Add(1)
				b.Wait()
			}
		}()
	}
	wg.Wait()
	if before.Load() != n*100 || after.Load() != n*100 {
		t.Fatalf("counts %d/%d", before.Load(), after.Load())
	}
}

func TestBarrierPhaseNumbers(t *testing.T) {
	b := NewBarrier(2)
	var wg sync.WaitGroup
	phases := make([][]uint64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				phases[id] = append(phases[id], b.Wait())
			}
		}(i)
	}
	wg.Wait()
	for r := 0; r < 10; r++ {
		if phases[0][r] != uint64(r) || phases[1][r] != uint64(r) {
			t.Fatalf("round %d: phases %d,%d", r, phases[0][r], phases[1][r])
		}
	}
}

func TestBarrierResizeGrow(t *testing.T) {
	b := NewBarrier(2)
	done := make(chan struct{})
	go func() {
		b.Wait() // phase 0 with 2 parties
		b.Wait() // phase 1 with 3 parties
		close(done)
	}()
	var applied atomic.Bool
	b.WaitResize(3, func() { applied.Store(true) })
	if !applied.Load() {
		t.Fatal("resize apply did not run")
	}
	if got := b.Parties(); got != 3 {
		t.Fatalf("parties = %d, want 3", got)
	}
	// Third party joins for phase 1.
	go func() { b.Wait() }()
	b.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never released after grow")
	}
}

func TestTeamRunAllWorkers(t *testing.T) {
	tm := New(4)
	var ids sync.Map
	tm.Run(func(w *Worker) {
		ids.Store(w.ID(), true)
		if w.ID() == 0 && !w.IsMaster() {
			t.Error("worker 0 is not master")
		}
	})
	for i := 0; i < 4; i++ {
		if _, ok := ids.Load(i); !ok {
			t.Errorf("worker %d never ran", i)
		}
	}
}

func forCovers(t *testing.T, size int, sched Schedule, chunk, lo, hi int) {
	t.Helper()
	tm := New(size)
	counts := make([]atomic.Int64, hi-lo+1)
	tm.Run(func(w *Worker) {
		w.For(lo, hi, sched, chunk, func(a, b int) {
			if a >= b {
				t.Errorf("empty span [%d,%d)", a, b)
			}
			for i := a; i < b; i++ {
				counts[i-lo].Add(1)
			}
		})
	})
	for i := lo; i < hi; i++ {
		if c := counts[i-lo].Load(); c != 1 {
			t.Errorf("size=%d sched=%v chunk=%d: index %d executed %d times", size, sched, chunk, i, c)
		}
	}
}

// Invariant: every schedule executes each iteration exactly once.
func TestForCoversExactlyOnce(t *testing.T) {
	for _, size := range []int{1, 2, 3, 7} {
		for _, sched := range []Schedule{Static, StaticChunk, Dynamic, Guided} {
			for _, chunk := range []int{1, 3, 16} {
				forCovers(t, size, sched, chunk, 0, 100)
				forCovers(t, size, sched, chunk, 5, 7)
				forCovers(t, size, sched, chunk, 3, 3) // empty
			}
		}
	}
}

func TestForMoreWorkersThanIterations(t *testing.T) {
	forCovers(t, 7, Static, 1, 0, 3)
	forCovers(t, 7, Dynamic, 2, 0, 3)
}

func TestConsecutiveLoopsStayAligned(t *testing.T) {
	tm := New(3)
	var sum atomic.Int64
	tm.Run(func(w *Worker) {
		for round := 0; round < 20; round++ {
			w.For(0, 50, Dynamic, 4, func(a, b int) {
				for i := a; i < b; i++ {
					sum.Add(int64(i))
				}
			})
			w.Barrier()
		}
	})
	want := int64(20 * (49 * 50 / 2))
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
	tm.mu.Lock()
	leaked := len(tm.loops)
	tm.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d loop states leaked", leaked)
	}
}

func TestSingleRunsOnce(t *testing.T) {
	tm := New(5)
	var count atomic.Int64
	tm.Run(func(w *Worker) {
		for i := 0; i < 10; i++ {
			w.Single(func() { count.Add(1) })
			w.Barrier()
		}
	})
	if count.Load() != 10 {
		t.Fatalf("single ran %d times, want 10", count.Load())
	}
	tm.mu.Lock()
	leaked := len(tm.singles)
	tm.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d single states leaked", leaked)
	}
}

func TestMasterOnly(t *testing.T) {
	tm := New(4)
	var ran sync.Map
	tm.Run(func(w *Worker) {
		w.Master(func() { ran.Store(w.ID(), true) })
	})
	n := 0
	ran.Range(func(k, v any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("master block ran on %d workers", n)
	}
	if _, ok := ran.Load(0); !ok {
		t.Fatal("master block did not run on worker 0")
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	tm := New(6)
	var inside atomic.Int64
	var max atomic.Int64
	tm.Run(func(w *Worker) {
		for i := 0; i < 50; i++ {
			w.Critical("c", func() {
				cur := inside.Add(1)
				if cur > max.Load() {
					max.Store(cur)
				}
				inside.Add(-1)
			})
		}
	})
	if max.Load() != 1 {
		t.Fatalf("max concurrency in critical = %d", max.Load())
	}
}

func TestCriticalDifferentNamesIndependent(t *testing.T) {
	tm := New(2)
	// Two different critical names must not deadlock when nested in
	// opposite order... we simply check both run.
	var a, b atomic.Int64
	tm.Run(func(w *Worker) {
		w.Critical("a", func() { a.Add(1) })
		w.Critical("b", func() { b.Add(1) })
	})
	if a.Load() != 2 || b.Load() != 2 {
		t.Fatalf("a=%d b=%d", a.Load(), b.Load())
	}
}

func TestTLS(t *testing.T) {
	tm := New(4)
	var mu sync.Mutex
	got := map[int]int{}
	tm.Run(func(w *Worker) {
		v := w.TLS("acc", func() any { return new(int) }).(*int)
		for i := 0; i < 100; i++ {
			*v++ // no synchronisation needed: thread-local
		}
		mu.Lock()
		got[w.ID()] = *v
		mu.Unlock()
	})
	for id, v := range got {
		if v != 100 {
			t.Errorf("worker %d accumulated %d", id, v)
		}
	}
}

// Shrink: resize 4 -> 2 at a barrier; retired workers run "empty
// operations" (no loop iterations) to region end; remaining work is
// redistributed over 2 workers.
func TestShrinkAtBarrier(t *testing.T) {
	tm := New(4)
	var phase2 sync.Map
	tm.Run(func(w *Worker) {
		w.For(0, 8, Static, 1, func(a, b int) {})
		if w.IsMaster() {
			w.MasterResize(2)
		} else {
			w.Barrier()
		}
		// Workers 2,3 are retired now.
		w.For(0, 8, Static, 1, func(a, b int) {
			for i := a; i < b; i++ {
				if _, dup := phase2.LoadOrStore(i, w.ID()); dup {
					t.Errorf("iteration %d executed twice", i)
				}
			}
		})
		w.Barrier() // only 2 parties now; retired ones skip
	})
	count := 0
	phase2.Range(func(k, v any) bool {
		count++
		if v.(int) >= 2 {
			t.Errorf("retired worker %v executed iteration %v", v, k)
		}
		return true
	})
	if count != 8 {
		t.Fatalf("phase-2 iterations executed: %d, want 8", count)
	}
	if tm.Size() != 2 {
		t.Fatalf("team size = %d, want 2", tm.Size())
	}
}

// Grow: resize 2 -> 4; new workers replay (skipping loops) then join.
func TestGrowAtBarrier(t *testing.T) {
	tm := New(2)
	var phase2 sync.Map
	region := func(w *Worker) {
		w.For(0, 8, Static, 1, func(a, b int) {
			if w.Replaying() {
				t.Error("replaying worker executed a loop body")
			}
		})
		if w.IsMaster() {
			ready := make(chan *Worker, 2)
			for i := 0; i < 2; i++ {
				tm.Spawn(func(nw *Worker) {
					// Replay: the new worker consumes the loop
					// instance without executing, then signals.
					nw.For(0, 8, Static, 1, func(a, b int) {
						t.Error("replay executed body")
					})
					ready <- nw
					// Wait for activation then continue below.
					for nw.Replaying() {
						time.Sleep(time.Millisecond)
					}
					afterJoin(nw, &phase2)
				})
			}
			nws := []*Worker{<-ready, <-ready}
			w.MasterResize(4)
			for _, nw := range nws {
				nw.SetReplaying(false)
			}
		} else {
			w.Barrier()
		}
		afterJoin(w, &phase2)
	}
	tm.Run(region)
	count := 0
	workers := map[int]bool{}
	phase2.Range(func(k, v any) bool {
		count++
		workers[v.(int)] = true
		return true
	})
	if count != 8 {
		t.Fatalf("phase-2 iterations: %d, want 8", count)
	}
	if len(workers) != 4 {
		t.Fatalf("phase-2 used %d workers (%v), want 4", len(workers), workers)
	}
	if tm.Size() != 4 {
		t.Fatalf("team size = %d, want 4", tm.Size())
	}
}

func afterJoin(w *Worker, rec *sync.Map) {
	w.For(0, 8, Static, 1, func(a, b int) {
		for i := a; i < b; i++ {
			if _, dup := rec.LoadOrStore(i, w.ID()); dup {
				// duplicate iteration
				rec.Store(-i, w.ID())
			}
		}
	})
	w.Barrier()
}

func TestStaticSpanProperties(t *testing.T) {
	f := func(size8, lo16, n16 uint8) bool {
		size := int(size8%8) + 1
		lo := int(lo16)
		hi := lo + int(n16)
		covered := 0
		prevHi := lo
		for id := 0; id < size; id++ {
			a, b := StaticSpan(id, size, lo, hi)
			if a < prevHi || b < a || b > hi {
				return false
			}
			covered += b - a
			if b > a {
				prevHi = b
			}
		}
		return covered == hi-lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverDecompose(t *testing.T) {
	var runs atomic.Int64
	var inFlight, maxInFlight atomic.Int64
	OverDecompose(16, 4, 5, func(task, iter int) {
		cur := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
				break
			}
		}
		runs.Add(1)
		inFlight.Add(-1)
	})
	if runs.Load() != 16*5 {
		t.Fatalf("runs = %d, want 80", runs.Load())
	}
	if maxInFlight.Load() > 4 {
		t.Fatalf("max in-flight = %d, exceeds 4 PEs", maxInFlight.Load())
	}
}

func TestScheduleString(t *testing.T) {
	for s, want := range map[Schedule]string{Static: "static", StaticChunk: "static-chunk", Dynamic: "dynamic", Guided: "guided"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestInvalidSizes(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero team", func() { New(0) })
	mustPanic("zero barrier", func() { NewBarrier(0) })
	mustPanic("overdecompose", func() { OverDecompose(0, 1, 1, nil) })
}
