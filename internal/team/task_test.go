package team

import (
	"sync/atomic"
	"testing"
)

// taskCovers runs one ForTask loop on a fresh team and checks every index is
// executed exactly once, whatever the steal interleaving.
func taskCovers(t *testing.T, size, nchunks, lo, hi int) {
	t.Helper()
	tm := New(size)
	counts := make([]atomic.Int64, hi-lo)
	tm.Run(func(w *Worker) {
		w.ForTask(lo, hi, nchunks, func(a, b int) {
			if a >= b {
				t.Errorf("empty span [%d,%d)", a, b)
			}
			for i := a; i < b; i++ {
				counts[i-lo].Add(1)
			}
		})
		w.Barrier() // ForTask has no implicit barrier; drain before exit
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("size=%d nchunks=%d: index %d executed %d times", size, nchunks, lo+i, c)
		}
	}
}

// Invariant: work stealing changes who executes a chunk, never whether it
// executes — every iteration runs exactly once.
func TestForTaskCoversExactlyOnce(t *testing.T) {
	for _, size := range []int{1, 2, 3, 8} {
		for _, nchunks := range []int{1, 4, 16, 100, 1000} {
			taskCovers(t, size, nchunks, 0, 100)
			taskCovers(t, size, nchunks, 5, 7)
		}
	}
}

func TestForTaskMoreWorkersThanIterations(t *testing.T) {
	taskCovers(t, 8, 32, 0, 3)
	taskCovers(t, 4, 4, 0, 1)
}

func TestForTaskEmptyRange(t *testing.T) {
	tm := New(4)
	ran := atomic.Int64{}
	tm.Run(func(w *Worker) {
		w.ForTask(3, 3, 8, func(a, b int) { ran.Add(1) })
		w.Barrier()
	})
	if ran.Load() != 0 {
		t.Fatalf("empty range ran %d spans", ran.Load())
	}
	if chunks, _, _ := tm.TaskCounters(); chunks != 0 {
		t.Fatalf("empty range counted %d chunks", chunks)
	}
}

// The chunk counter equals the (clamped) chunk count, accumulated across
// consecutive loops, and a single-worker team never steals.
func TestForTaskCounters(t *testing.T) {
	tm := New(1)
	tm.Run(func(w *Worker) {
		w.ForTask(0, 100, 16, func(a, b int) {})
		w.Barrier()
		w.ForTask(0, 10, 64, func(a, b int) {}) // clamped to 10 chunks
		w.Barrier()
	})
	chunks, steals, _ := tm.TaskCounters()
	if chunks != 16+10 {
		t.Fatalf("chunks=%d want %d", chunks, 16+10)
	}
	if steals != 0 {
		t.Fatalf("single worker stole %d chunks", steals)
	}
}

// Skewed spans: one chunk carries almost all the work. With
// overdecomposition the idle workers must steal it away from their busy
// peers' deques; the loop still covers the range exactly once and the sum is
// deterministic.
func TestForTaskSkewedStealing(t *testing.T) {
	const n, iters = 256, 20
	tm := New(4)
	var sum atomic.Int64
	tm.Run(func(w *Worker) {
		for it := 0; it < iters; it++ {
			w.ForTask(0, n, 8*4, func(a, b int) {
				local := int64(0)
				for i := a; i < b; i++ {
					cost := 1
					if i < n/8 {
						cost = 400 // hot head
					}
					for k := 0; k < cost; k++ {
						local += int64(i%7) + 1
					}
				}
				sum.Add(local)
			})
			w.Barrier()
		}
	})
	want := int64(0)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			cost := 1
			if i < n/8 {
				cost = 400
			}
			want += int64(cost) * int64(i%7+1)
		}
	}
	if got := sum.Load(); got != want {
		t.Fatalf("sum=%d want %d", got, want)
	}
	chunks, _, _ := tm.TaskCounters()
	if chunks != int64(iters*8*4) {
		t.Fatalf("chunks=%d want %d", chunks, iters*8*4)
	}
}

// A worker joining or retiring mid-run must stay aligned with loops it did
// not execute: ForTask participates in the loop-sequence accounting like For.
func TestForTaskAfterResize(t *testing.T) {
	tm := New(3)
	counts := make([]atomic.Int64, 120)
	tm.Run(func(w *Worker) {
		w.ForTask(0, 60, 12, func(a, b int) {
			for i := a; i < b; i++ {
				counts[i].Add(1)
			}
		})
		if w.IsMaster() {
			w.MasterResize(2)
		} else {
			w.Barrier()
		}
		// Workers beyond the new size are retired and must skip the loop
		// without consuming chunks.
		w.ForTask(60, 120, 12, func(a, b int) {
			for i := a; i < b; i++ {
				counts[i].Add(1)
			}
		})
		w.Barrier()
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d executed %d times across the resize", i, c)
		}
	}
}

// The deprecated OverDecompose shim still covers every (task, iter) pair
// exactly once on top of ForTask.
func TestOverDecomposeShimCoverage(t *testing.T) {
	const tasks, iters = 37, 5
	var counts [tasks * iters]atomic.Int64
	OverDecompose(tasks, 3, iters, func(task, iter int) {
		counts[iter*tasks+task].Add(1)
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("pair %d executed %d times", i, c)
		}
	}
}
