package team

import "sync/atomic"

// loopState is the shared descriptor of one dynamic/guided work-sharing
// loop instance. All active workers reach the same loops in the same order,
// so a per-worker sequence number identifies the instance.
type loopState struct {
	next      atomic.Int64 // next unclaimed iteration
	hi        int64
	chunk     int64
	guided    bool
	size      int64        // active team size at creation
	remaining atomic.Int64 // workers still to finish (for cleanup)
}

// For executes the work-sharing loop over [lo, hi) with the given schedule.
// body receives maximal contiguous sub-ranges. Retired and replaying workers
// consume the loop instance (keeping sequence numbers aligned) but execute
// nothing — retirement's "empty operations" and replay's skipping are both
// realised here. For does not include an implicit barrier; callers that need
// one (e.g. stencil sweeps) add it explicitly or via the core engine's
// loop advice.
func (w *Worker) For(lo, hi int, sched Schedule, chunk int, body func(lo, hi int)) {
	w.loopSeq++
	if w.retired || w.replaying.Load() {
		return
	}
	if lo >= hi {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	size := w.t.Size()
	switch sched {
	case Static:
		n := hi - lo
		base, rem := n/size, n%size
		var mylo int
		if w.id < rem {
			mylo = lo + w.id*(base+1)
			body(mylo, mylo+base+1)
		} else {
			mylo = lo + rem*(base+1) + (w.id-rem)*base
			if base > 0 {
				body(mylo, mylo+base)
			}
		}
	case StaticChunk:
		for start := lo + w.id*chunk; start < hi; start += size * chunk {
			end := start + chunk
			if end > hi {
				end = hi
			}
			body(start, end)
		}
	case Dynamic, Guided:
		st := w.claimLoop(lo, hi, chunk, sched == Guided, size)
		for {
			a, b, ok := st.grab()
			if !ok {
				break
			}
			body(a, b)
		}
		if st.remaining.Add(-1) == 0 {
			w.t.mu.Lock()
			delete(w.t.loops, w.loopSeq)
			w.t.mu.Unlock()
		}
	}
}

func (w *Worker) claimLoop(lo, hi, chunk int, guided bool, size int) *loopState {
	t := w.t
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.loops[w.loopSeq]
	if !ok {
		st = &loopState{hi: int64(hi), chunk: int64(chunk), guided: guided, size: int64(size)}
		st.next.Store(int64(lo))
		st.remaining.Store(int64(size))
		t.loops[w.loopSeq] = st
	}
	return st
}

// grab claims the next chunk of iterations, returning ok=false when the
// loop is exhausted.
func (st *loopState) grab() (lo, hi int, ok bool) {
	for {
		cur := st.next.Load()
		if cur >= st.hi {
			return 0, 0, false
		}
		step := st.chunk
		if st.guided {
			rem := st.hi - cur
			step = rem / (2 * st.size)
			if step < st.chunk {
				step = st.chunk
			}
		}
		end := cur + step
		if end > st.hi {
			end = st.hi
		}
		if st.next.CompareAndSwap(cur, end) {
			return int(cur), int(end), true
		}
	}
}

// StaticSpan reports the contiguous block of [lo,hi) a worker with the given
// id would receive under the Static schedule in a team of the given size.
// It is exported for the distributed/hybrid engine, which nests a static
// split inside each rank's local range.
func StaticSpan(id, size, lo, hi int) (mylo, myhi int) {
	n := hi - lo
	if n <= 0 {
		return lo, lo
	}
	base, rem := n/size, n%size
	if id < rem {
		mylo = lo + id*(base+1)
		return mylo, mylo + base + 1
	}
	mylo = lo + rem*(base+1) + (id-rem)*base
	return mylo, mylo + base
}
