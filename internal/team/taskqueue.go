package team

import "sync/atomic"

// This file implements the many-task work-sharing loop behind the engine's
// Task mode: the iteration space is overdecomposed into many more chunks
// than workers, each worker owns a contiguous run of chunks on a deque, and
// idle workers steal chunks from the back of victims' deques (the classic
// Chase–Lev discipline, compressed here to one atomic word per deque because
// chunk ids are dense integers rather than pointers). With no steals the
// chunk→worker assignment degenerates to exactly the Static schedule, so a
// drained Task loop is indistinguishable from a static one — the property
// the checkpoint protocol relies on (stealing changes who computes a chunk,
// never what is computed or where results land).

// chunkDeque is a double-ended queue over a contiguous range of chunk ids,
// packed into one atomic word: the owner's next chunk in the high 32 bits
// (head) and one past the last unclaimed chunk in the low 32 bits (tail).
// The owner claims from the front, thieves from the back; both sides CAS the
// whole word, so the two ends cannot race past each other.
type chunkDeque struct {
	bounds atomic.Uint64
}

func (d *chunkDeque) reset(head, tail int) {
	d.bounds.Store(uint64(uint32(head))<<32 | uint64(uint32(tail)))
}

// popFront claims the owner's next chunk, reporting ok=false when the deque
// is empty.
func (d *chunkDeque) popFront() (chunk int, ok bool) {
	for {
		v := d.bounds.Load()
		h, t := uint32(v>>32), uint32(v)
		if h >= t {
			return 0, false
		}
		if d.bounds.CompareAndSwap(v, uint64(h+1)<<32|uint64(t)) {
			return int(h), true
		}
	}
}

// popBack steals the victim's last chunk, reporting ok=false when the deque
// is empty.
func (d *chunkDeque) popBack() (chunk int, ok bool) {
	for {
		v := d.bounds.Load()
		h, t := uint32(v>>32), uint32(v)
		if h >= t {
			return 0, false
		}
		if d.bounds.CompareAndSwap(v, uint64(h)<<32|uint64(t-1)) {
			return int(t - 1), true
		}
	}
}

// taskState is the shared descriptor of one ForTask loop instance. Like
// loopState it is keyed by the per-worker loop sequence number: all active
// workers reach the same loops in the same order.
type taskState struct {
	deques    []chunkDeque // indexed by worker id (active ids are contiguous)
	steals    atomic.Int64 // chunks executed by a non-home worker
	idle      atomic.Int64 // steal probes that found an empty deque
	chunks    int64
	remaining atomic.Int64 // workers still to finish (for cleanup)
}

// ForTask executes [lo, hi) as nchunks contiguous chunks scheduled by work
// stealing: worker w starts with the Static share of the chunk ids and turns
// to randomized stealing from the back of other workers' deques once its own
// runs dry. body receives each chunk's sub-range exactly once. nchunks is
// clamped to at least the team size and at most the iteration count.
//
// Like For, ForTask has no implicit barrier — but callers that need the
// post-loop state to be complete (safe points, stencil sweeps) MUST add one:
// a worker can leave ForTask while a thief is still executing a chunk it
// stole from this worker's deque, and only the team barrier guarantees every
// chunk has finished. Retired and replaying workers consume the loop
// instance and execute nothing.
func (w *Worker) ForTask(lo, hi, nchunks int, body func(lo, hi int)) {
	w.loopSeq++
	if w.retired || w.replaying.Load() {
		return
	}
	if lo >= hi {
		return
	}
	size := w.t.Size()
	if nchunks < size {
		nchunks = size
	}
	if nchunks > hi-lo {
		nchunks = hi - lo
	}
	if nchunks < 1 {
		nchunks = 1
	}
	st := w.claimTask(nchunks, size)
	// Drain the home deque front-to-back: absent steals this executes the
	// worker's Static share in increasing order.
	for {
		c, ok := st.deques[w.id].popFront()
		if !ok {
			break
		}
		a, b := StaticSpan(c, nchunks, lo, hi)
		body(a, b)
	}
	// Steal from the back of random victims until a full scan finds every
	// deque empty — then every chunk is claimed by someone who will run it.
	if size > 1 {
		rng := uint64(w.id+1)*0x9E3779B97F4A7C15 ^ (w.loopSeq << 1) | 1
		for {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			stolen := false
			start := int(rng % uint64(size))
			for k := 0; k < size; k++ {
				v := (start + k) % size
				if v == w.id {
					continue
				}
				c, ok := st.deques[v].popBack()
				if !ok {
					st.idle.Add(1)
					continue
				}
				st.steals.Add(1)
				a, b := StaticSpan(c, nchunks, lo, hi)
				body(a, b)
				stolen = true
				break
			}
			if !stolen {
				break
			}
		}
	}
	if st.remaining.Add(-1) == 0 {
		t := w.t
		t.taskChunks.Add(st.chunks)
		t.taskSteals.Add(st.steals.Load())
		t.taskIdle.Add(st.idle.Load())
		t.mu.Lock()
		delete(t.tasks, w.loopSeq)
		t.mu.Unlock()
	}
}

func (w *Worker) claimTask(nchunks, size int) *taskState {
	t := w.t
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.tasks[w.loopSeq]
	if !ok {
		st = &taskState{deques: make([]chunkDeque, size), chunks: int64(nchunks)}
		for id := 0; id < size; id++ {
			a, b := StaticSpan(id, size, 0, nchunks)
			st.deques[id].reset(a, b)
		}
		st.remaining.Store(int64(size))
		t.tasks[w.loopSeq] = st
	}
	return st
}

// TaskCounters reports the scheduler counters accumulated by completed
// ForTask loops on this team: total chunks scheduled, chunks executed by a
// non-home worker (steals), and steal probes that found an empty deque
// (idle). The counters are timing-dependent — they feed Report and the
// metrics surface, never RunStats (which must stay identical on every line
// of execution).
func (t *Team) TaskCounters() (chunks, steals, idle int64) {
	return t.taskChunks.Load(), t.taskSteals.Load(), t.taskIdle.Load()
}
