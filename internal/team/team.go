// Package team implements the shared-memory execution substrate of pluggable
// parallelisation (§III.B of the paper): an OpenMP-style thread team whose
// size can change at run time.
//
// Execution starts in a master thread that spawns a team to run a parallel
// region. Inside the region the package provides work-sharing loops with
// static, chunked, dynamic and guided schedules, single/master/critical
// sections, barriers and thread-local storage — the counterparts of the
// paper's ParallelMethod, for, single, master, synchronised, barrier and
// thread-local-field templates.
//
// Run-time adaptation support: the team can grow (new workers join after
// replaying the region, see §IV.B "Expansion of Resource Usage") and shrink
// (surplus workers "retire" and run empty operations to the region end, the
// paper's graceful shutdown). Both changes take effect exactly at a barrier
// phase boundary.
package team

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Schedule selects how a work-sharing loop divides iterations.
type Schedule int

const (
	// Static divides [lo,hi) into size contiguous blocks, one per worker.
	Static Schedule = iota
	// StaticChunk deals fixed-size chunks round-robin.
	StaticChunk
	// Dynamic hands out fixed-size chunks first-come first-served.
	Dynamic
	// Guided hands out shrinking chunks (remaining / 2·size, floored at
	// the chunk parameter).
	Guided
)

// String returns the lower-case schedule name.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case StaticChunk:
		return "static-chunk"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// Team is a resizable group of workers executing one parallel region.
type Team struct {
	barrier *Barrier
	size    atomic.Int64 // active workers; ids 0..size-1 are active
	nextID  atomic.Int64 // next worker id ever to be assigned
	wg      sync.WaitGroup

	mu      sync.Mutex
	loops   map[uint64]*loopState
	tasks   map[uint64]*taskState
	singles map[uint64]*singleState
	xchgs   map[uint64]*xchgState
	crits   map[string]*sync.Mutex
	freeIDs []int // ids of retired workers, reusable by Spawn

	decision atomic.Pointer[decision]

	// ForTask scheduler counters, folded in as each loop instance completes
	// (see TaskCounters).
	taskChunks atomic.Int64
	taskSteals atomic.Int64
	taskIdle   atomic.Int64
}

type decision struct {
	phase   uint64
	newSize int
}

// New creates a team of the given initial size. The team is inert until Run.
func New(size int) *Team {
	if size < 1 {
		panic("team: size must be >= 1")
	}
	t := &Team{
		barrier: NewBarrier(size),
		loops:   map[uint64]*loopState{},
		tasks:   map[uint64]*taskState{},
		singles: map[uint64]*singleState{},
		xchgs:   map[uint64]*xchgState{},
		crits:   map[string]*sync.Mutex{},
	}
	t.size.Store(int64(size))
	t.nextID.Store(int64(size))
	return t
}

// Size reports the current active team size. Reading it after a barrier
// observes any resize applied at that barrier.
func (t *Team) Size() int { return int(t.size.Load()) }

// Poison tears the team down: every worker blocked (now or later) on the
// team barrier panics with Poisoned instead of waiting forever. Used when
// one worker unwinds abnormally and its siblings must follow.
func (t *Team) Poison() { t.barrier.Poison() }

// Run executes region on every worker: worker 0 runs on the calling
// goroutine (it is the master, as in OpenMP the encountering thread joins
// the team) and size-1 further goroutines are spawned. Run returns when all
// workers — including any spawned later by Grow — have returned.
func (t *Team) Run(region func(w *Worker)) {
	n := t.Size()
	for id := 1; id < n; id++ {
		w := &Worker{id: id, t: t}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			region(w)
		}()
	}
	master := &Worker{id: 0, t: t}
	region(master)
	t.wg.Wait()
}

// Spawn launches an additional goroutine running start on a fresh worker.
// The worker is NOT yet active: it does not count towards barriers until a
// MasterResize activates it. The core engine uses Spawn+MasterResize to
// implement region replay for expansion. Ids of previously retired workers
// are reused (smallest first) so that the active id set stays contiguous —
// the static work-sharing schedule depends on that invariant.
func (t *Team) Spawn(start func(w *Worker)) *Worker {
	t.mu.Lock()
	var id int
	if len(t.freeIDs) > 0 {
		min := 0
		for i := 1; i < len(t.freeIDs); i++ {
			if t.freeIDs[i] < t.freeIDs[min] {
				min = i
			}
		}
		id = t.freeIDs[min]
		t.freeIDs = append(t.freeIDs[:min], t.freeIDs[min+1:]...)
	} else {
		id = int(t.nextID.Add(1) - 1)
	}
	t.mu.Unlock()
	w := &Worker{id: id, t: t}
	w.replaying.Store(true)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		start(w)
	}()
	return w
}

// Worker is one line of execution inside a team.
type Worker struct {
	id        int
	t         *Team
	retired   bool
	replaying atomic.Bool

	loopSeq   uint64
	singleSeq uint64
	xchgSeq   uint64
	tls       map[string]any
}

// ID reports the worker's id; id 0 is the master.
func (w *Worker) ID() int { return w.id }

// IsMaster reports whether this worker is the team master.
func (w *Worker) IsMaster() bool { return w.id == 0 }

// Retired reports whether this worker has been shut down by a contraction
// and is running empty operations to the region end.
func (w *Worker) Retired() bool { return w.retired }

// Replaying reports whether the worker is replaying the region to join an
// expanded team (it skips loop bodies and barriers until activated).
func (w *Worker) Replaying() bool { return w.replaying.Load() }

// SetReplaying flips the replay flag; the core engine calls this when a
// replaying worker reaches the adaptation safe point and becomes active.
func (w *Worker) SetReplaying(v bool) { w.replaying.Store(v) }

// Team returns the worker's team.
func (w *Worker) Team() *Team { return w.t }

// Barrier synchronises the active team. Retired and replaying workers pass
// through without synchronising (the former run "empty operations until the
// thread gets to the end of the parallel region", §IV.B; the latter have not
// yet joined). After the barrier the worker applies any team-resize decision
// published for that phase, possibly retiring itself.
func (w *Worker) Barrier() {
	if w.retired || w.replaying.Load() {
		return
	}
	phase := w.t.barrier.Wait()
	w.applyDecision(phase)
}

func (w *Worker) applyDecision(phase uint64) {
	d := w.t.decision.Load()
	if d != nil && d.phase == phase && w.id >= d.newSize {
		w.retired = true
		w.t.mu.Lock()
		w.t.freeIDs = append(w.t.freeIDs, w.id)
		w.t.mu.Unlock()
	}
}

// MasterResize must be called by the master in place of Barrier at an
// adaptation point: it publishes the new team size, resizes the barrier at
// this phase boundary, and updates Team.Size under the barrier lock so every
// worker released from this barrier observes the new size. Workers whose id
// is >= newSize retire. Newly spawned (replaying) workers must be activated
// by the caller after MasterResize returns.
func (w *Worker) MasterResize(newSize int) {
	if !w.IsMaster() {
		panic("team: MasterResize called by non-master worker")
	}
	if newSize < 1 {
		panic("team: cannot resize team below 1")
	}
	t := w.t
	// The phase about to complete is the barrier's current phase; workers
	// blocked in it will compare against this number.
	t.decision.Store(&decision{phase: t.barrier.phaseUnderLock(), newSize: newSize})
	phase := t.barrier.WaitResize(newSize, func() {
		t.size.Store(int64(newSize))
	})
	w.applyDecision(phase)
}

// phaseUnderLock reads the barrier phase. Publishing the decision with this
// phase before the master arrives is safe: no release of the current phase
// can happen until the master (a party) arrives.
func (b *Barrier) phaseUnderLock() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.phase
}

// Master runs fn only on the master worker (the paper's master template).
func (w *Worker) Master(fn func()) {
	if w.retired || w.replaying.Load() {
		return
	}
	if w.IsMaster() {
		fn()
	}
}

// Critical runs fn in mutual exclusion with all other workers executing a
// Critical of the same name (the paper's synchronised template).
func (w *Worker) Critical(name string, fn func()) {
	if w.retired || w.replaying.Load() {
		return
	}
	w.t.mu.Lock()
	m, ok := w.t.crits[name]
	if !ok {
		m = &sync.Mutex{}
		w.t.crits[name] = m
	}
	w.t.mu.Unlock()
	m.Lock()
	defer m.Unlock()
	fn()
}

type singleState struct {
	claimed bool
	visits  int
	parties int
}

// Single runs fn on exactly one worker — the first to arrive (the paper's
// single template). All workers consume one "single instance" so that their
// per-worker sequence numbers stay aligned; retired and replaying workers
// skip without consuming shared state.
func (w *Worker) Single(fn func()) {
	w.singleSeq++
	if w.retired || w.replaying.Load() {
		return
	}
	seq := w.singleSeq
	t := w.t
	t.mu.Lock()
	st, ok := t.singles[seq]
	if !ok {
		st = &singleState{parties: t.Size()}
		t.singles[seq] = st
	}
	claim := !st.claimed
	st.claimed = true
	st.visits++
	if st.visits >= st.parties {
		delete(t.singles, seq)
	}
	t.mu.Unlock()
	if claim {
		fn()
	}
}

// TLS returns the worker-local value stored under key, creating it with
// mk on first access (the paper's thread-local-field template).
func (w *Worker) TLS(key string, mk func() any) any {
	if w.tls == nil {
		w.tls = map[string]any{}
	}
	v, ok := w.tls[key]
	if !ok {
		v = mk()
		w.tls[key] = v
	}
	return v
}

// SetTLS overwrites the worker-local value under key. The adaptation
// protocol uses it to seed new workers "with the value of the main thread"
// (§IV.B).
func (w *Worker) SetTLS(key string, v any) {
	if w.tls == nil {
		w.tls = map[string]any{}
	}
	w.tls[key] = v
}

// TLSSnapshot returns a shallow copy of the worker's thread-local values.
func (w *Worker) TLSSnapshot() map[string]any {
	out := make(map[string]any, len(w.tls))
	for k, v := range w.tls {
		out[k] = v
	}
	return out
}

// AlignSeqs copies the per-worker sequence counters (loop and single
// instances consumed) from src. The engine calls it when activating a
// joining worker: replay skips ignorable methods wholesale, so the loops
// and singles inside them never consumed the joiner's counters, and a
// stale counter would make the joiner claim — and re-execute — keyed loop
// instances the incumbents already completed. From the activation point on
// both cohorts sit at the same program position, so the incumbent counters
// are exactly the joiner's future. Only safe while w's goroutine is parked
// at the join gate.
func (w *Worker) AlignSeqs(src *Worker) {
	w.loopSeq = src.loopSeq
	w.singleSeq = src.singleSeq
}
