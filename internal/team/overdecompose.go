package team

// OverDecompose runs tasks logical tasks on pe processing elements, with a
// tasks-wide barrier between iterations — the execution structure of the
// paper's Figure 8 experiment ("Overhead of over-decomposition").
//
// Deprecated: OverDecompose predates the work-stealing chunk scheduler and
// survives only as a shim over it, so the Figure 8 reproduction keeps
// running. New code should use Worker.ForTask inside a Team region (or the
// engine's Task mode), which overdecomposes the same way but schedules
// chunks on per-worker deques with randomized stealing instead of one
// goroutine per task behind a semaphore.
//
// Each task t executes body(t, it) for it = 0..iters-1, with at most pe
// tasks running simultaneously and a full barrier between iterations (as
// SOR's data dependences require).
func OverDecompose(tasks, pe, iters int, body func(task, iter int)) {
	if tasks < 1 || pe < 1 {
		panic("team: OverDecompose needs tasks >= 1 and pe >= 1")
	}
	tm := New(pe)
	tm.Run(func(w *Worker) {
		for it := 0; it < iters; it++ {
			iter := it
			w.ForTask(0, tasks, tasks, func(lo, hi int) {
				for task := lo; task < hi; task++ {
					body(task, iter)
				}
			})
			w.Barrier()
		}
	})
}
