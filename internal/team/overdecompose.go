package team

import "sync"

// OverDecompose runs tasks logical tasks on pe processing elements, with a
// tasks-wide barrier between iterations — the execution structure of the
// paper's Figure 8 experiment ("Overhead of over-decomposition"): traditional
// adaptive approaches create many more parallel tasks than processing
// elements and coalesce them onto the available resources, paying task
// scheduling and wide-barrier costs on every iteration.
//
// Each task t executes body(t, it) for it = 0..iters-1; a semaphore caps the
// number of simultaneously running tasks at pe and a tasks-party barrier
// separates iterations (as SOR's data dependences require).
func OverDecompose(tasks, pe, iters int, body func(task, iter int)) {
	if tasks < 1 || pe < 1 {
		panic("team: OverDecompose needs tasks >= 1 and pe >= 1")
	}
	sem := make(chan struct{}, pe)
	bar := NewBarrier(tasks)
	var wg sync.WaitGroup
	for t := 0; t < tasks; t++ {
		wg.Add(1)
		go func(task int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				sem <- struct{}{} // acquire a processing element
				body(task, it)
				<-sem
				bar.Wait()
			}
		}(t)
	}
	wg.Wait()
}
