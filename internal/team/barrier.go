package team

import "sync"

// Barrier is a reusable (cyclic) barrier whose party count can change
// exactly at a phase boundary. That property is what the paper's run-time
// adaptation protocol needs (§IV.B): when the application expands or
// contracts the number of "lines of execution", the change is applied while
// every thread is synchronised in a global barrier, so no thread can observe
// a half-resized team.
type Barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	parties  int
	arrived  int
	phase    uint64
	pending  []func() // run under mu at the next release
	poisoned bool
}

// Poisoned is the panic value raised from Wait when the barrier has been
// poisoned: some team member unwound abnormally (failure injection, stop
// token) and everyone blocked on it must unwind too instead of waiting for
// an arrival that will never come.
type Poisoned struct{}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("team: barrier needs at least one party")
	}
	b := &Barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Parties reports the current party count.
func (b *Barrier) Parties() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.parties
}

// Wait blocks until all parties have arrived, then releases them together.
// It returns the phase number that completed.
func (b *Barrier) Wait() uint64 {
	return b.wait(nil)
}

// WaitResize is Wait, but when this phase releases, the party count becomes
// newParties and apply (if non-nil) runs under the barrier lock. The resize
// is applied exactly once, at the phase boundary, regardless of arrival
// order.
func (b *Barrier) WaitResize(newParties int, apply func()) uint64 {
	if newParties < 1 {
		panic("team: barrier resize needs at least one party")
	}
	return b.wait(func() {
		b.parties = newParties
		if apply != nil {
			apply()
		}
	})
}

func (b *Barrier) wait(atRelease func()) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic(Poisoned{})
	}
	if atRelease != nil {
		b.pending = append(b.pending, atRelease)
	}
	ph := b.phase
	b.arrived++
	if b.arrived == b.parties {
		for _, f := range b.pending {
			f()
		}
		b.pending = nil
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
		return ph
	}
	for b.phase == ph && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic(Poisoned{})
	}
	return ph
}

// Poison wakes every current waiter and makes every current and future Wait
// panic with Poisoned. There is no antidote: a poisoned barrier (and its
// team) is being torn down.
func (b *Barrier) Poison() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.poisoned = true
	b.cond.Broadcast()
}
