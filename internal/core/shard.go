package core

import (
	"fmt"
	"sync"

	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

// shardCapture is one rank's contribution to a shard checkpoint wave,
// produced at the safe point and persisted (inline or by the background
// pool) as one chain link. Exactly one of full/delta is set: full is an
// anchor capture (the rank's complete shard state), delta holds only the
// chunks that changed since the rank's previous capture.
type shardCapture struct {
	rank  int
	sp    uint64
	world int
	full  *serial.Snapshot
	delta *serial.Delta
}

// dataBytes reports the capture's payload size (the blocked-copy cost in
// the asynchronous pipeline).
func (c *shardCapture) dataBytes() int {
	if c.full != nil {
		return c.full.DataBytes()
	}
	return c.delta.DataBytes()
}

// shardRankState is one rank's chain bookkeeping inside the sink.
type shardRankState struct {
	// Capture side: the per-rank content-hash cache and compaction cadence.
	hash        *serial.StateHash
	primed      bool
	sinceAnchor uint64
	baseSP      uint64 // safe point of the rank's current anchor link

	// Persist side: chain positions and the newest written link's identity.
	seq       uint64 // newest written link (0 = none this run)
	anchorSeq uint64 // newest written anchor link
	anchorSP  uint64 // safe point of that anchor AS WRITTEN (folds may advance it past the capture's)
	gcBelow   uint64 // links below this are already garbage-collected
	lastSP    uint64 // safe point of the newest written link
	lastCRC   uint32
	lastSize  uint64
	lastBytes int
	lastDelta bool
}

// shardSink owns the persist side of sharded checkpointing: per-rank
// append-only chains of PPCKPD1 links (an anchor link carrying the full
// shard state every compaction period, delta links in between), committed
// by a PPCKPS1 manifest written only once EVERY rank's link of a save wave
// has landed. Because links are never overwritten in place — sequence
// numbers grow monotonically, continuing past the newest committed manifest
// after a restart — the artifacts a manifest references survive any crash
// of a later save, which is what makes the manifest a torn-save gate rather
// than a hint. Garbage collection of links below the newest anchor runs
// only after the manifest referencing that anchor has committed.
//
// The sink is shared by every rank of the run (and by the background pool
// in the asynchronous pipeline); the mutex serialises chain bookkeeping and
// the commit decision, while the link writes themselves run concurrently —
// per-rank parallel checkpoint I/O is the point of the shard protocol.
type shardSink struct {
	store        ckpt.Store
	app          string
	deltaEnabled bool
	compactEvery uint64
	// onCommit reports one committed wave: link count, summed payload bytes
	// across all shards, the master shard's payload bytes, and the wave kind
	// (kindDelta only when EVERY link of the wave is a delta — a fold can
	// turn one rank's wave contribution into an anchor).
	onCommit func(links, waveBytes, masterBytes int, kindDelta bool)

	mu          sync.Mutex
	mode        string
	world       int
	ranks       []*shardRankState
	seq0        uint64 // floor under every new chain position (committed history)
	committedSP uint64
	committing  bool // a commit's store I/O is running outside the lock
}

func newShardSink(store ckpt.Store, app string, deltaEnabled bool, compactEvery int,
	onCommit func(links, waveBytes, masterBytes int, kindDelta bool)) *shardSink {
	return &shardSink{
		store: store, app: app,
		deltaEnabled: deltaEnabled, compactEvery: uint64(compactEvery),
		onCommit: onCommit,
	}
}

// seed raises the chain-position floor past a committed manifest, so links
// an earlier run committed are never overwritten before a new commit
// supersedes the record — even when the earlier run finished cleanly.
func (k *shardSink) seed(m *serial.Manifest) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, sh := range m.Shards {
		if sh.Seq > k.seq0 {
			k.seq0 = sh.Seq
		}
	}
	if m.SafePoints > k.committedSP {
		k.committedSP = m.SafePoints
	}
}

// rebase resets the capture state for a new topology (or a migration's
// replayed state): every rank's next capture is a fresh anchor, and chain
// positions continue above everything written so far. The caller must have
// drained the background pool first.
func (k *shardSink) rebase(world int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.resetLocked(world)
}

func (k *shardSink) resetLocked(world int) {
	floor := k.seq0
	for _, st := range k.ranks {
		if st.seq > floor {
			floor = st.seq
		}
	}
	k.seq0 = floor
	k.world = world
	k.ranks = make([]*shardRankState, world)
	for r := range k.ranks {
		k.ranks[r] = &shardRankState{hash: serial.NewStateHash(), seq: floor, anchorSeq: floor, gcBelow: floor}
	}
}

// capture turns one rank's shard snapshot into its chain capture, updating
// the rank's hash cache and cadence. The anchor cadence is a deterministic
// function of per-rank state that advances in lockstep across ranks, so a
// wave is all-anchor or all-delta. clone selects deep-copied captures for
// the asynchronous pipeline.
func (k *shardSink) capture(rank, world int, mode string, snap *serial.Snapshot, clone bool) *shardCapture {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.mode = mode
	if k.ranks == nil || world != k.world {
		k.resetLocked(world)
	}
	st := k.ranks[rank]
	if !k.deltaEnabled || !st.primed || st.sinceAnchor >= k.compactEvery {
		st.hash.Rehash(snap)
		st.baseSP = snap.SafePoints
		st.sinceAnchor = 0
		st.primed = true
		s := snap
		if clone {
			s = snap.Clone()
		}
		return &shardCapture{rank: rank, sp: snap.SafePoints, world: world, full: s}
	}
	st.sinceAnchor++
	return &shardCapture{rank: rank, sp: snap.SafePoints, world: world, delta: st.hash.Diff(snap, st.baseSP, clone)}
}

// write persists one capture as the rank's next chain link and, when it
// completes a wave, commits the manifest. It is called concurrently by
// every rank (synchronous protocol) or by the background pool; at most one
// write per rank is in flight at a time (the save barriers guarantee it for
// the synchronous path, the pool's per-shard in-flight tracking for the
// asynchronous one).
func (k *shardSink) write(cap *shardCapture) error {
	var d *serial.Delta
	if cap.full != nil {
		d = serial.AnchorDelta(cap.full)
	} else {
		d = cap.delta
	}
	k.mu.Lock()
	if cap.world != k.world {
		k.mu.Unlock()
		return fmt.Errorf("core: shard %d capture for world %d written after a rebase to %d", cap.rank, cap.world, k.world)
	}
	st := k.ranks[cap.rank]
	seq := st.seq + 1
	anchorSP := st.anchorSP
	k.mu.Unlock()

	d.Seq = seq
	if cap.full == nil {
		// BaseSP is assigned at write time, like Seq: a fold can advance
		// the on-disk anchor past the safe point the capture diffed
		// against, and the chain's validity is defined by the links as
		// written. The delta's CONTENT is unaffected — each delta carries
		// the change since the previous capture, and every written prefix
		// of the chain materialises that capture's exact state.
		if anchorSP == 0 {
			return fmt.Errorf("core: shard %d delta link %d has no written anchor", cap.rank, seq)
		}
		d.BaseSP = anchorSP
	}
	crc, size, err := d.Fingerprint()
	if err != nil {
		return fmt.Errorf("core: shard %d link %d: %w", cap.rank, seq, err)
	}
	if err := k.store.SaveShardDelta(d, cap.rank); err != nil {
		return fmt.Errorf("core: shard %d link %d: %w", cap.rank, seq, err)
	}

	k.mu.Lock()
	st.seq = seq
	if cap.full != nil {
		st.anchorSeq = seq
		st.anchorSP = d.SafePoints
	}
	st.lastSP, st.lastCRC, st.lastSize = cap.sp, crc, size
	st.lastBytes = d.DataBytes()
	st.lastDelta = cap.full == nil
	err = k.commitLoopLocked()
	k.mu.Unlock()
	return err
}

// shardCommit is one planned manifest commit: the record plus the per-rank
// garbage-collection bounds to apply once it lands.
type shardCommit struct {
	sp          uint64
	m           *serial.Manifest
	gcBelow     []uint64 // per rank; 0 = nothing new to collect
	links       int
	waveBytes   int
	masterBytes int
	kindDelta   bool
}

// commitLoopLocked commits every complete wave, newest bookkeeping first
// planned under the lock, the store I/O (manifest write, chain GC) with
// the lock RELEASED — so per-rank link writes keep flowing while a commit
// is in flight — then the bookkeeping updated under the lock again. At
// most one committer runs at a time; whoever else completes a wave
// meanwhile leaves it for the active committer's next loop iteration.
//
// A wave commits when every rank's newest link lands on the same (new)
// safe point. Waves a rank skipped (its capture was folded into a newer
// one while parked) simply never commit; the next complete wave does.
// After an anchor commit the stale links below each rank's anchor are
// garbage-collected — in that order, so a crash in between leaves
// unreferenced files, never a missing restart point.
func (k *shardSink) commitLoopLocked() error {
	if k.committing {
		return nil
	}
	k.committing = true
	defer func() { k.committing = false }()
	for {
		c := k.planCommitLocked()
		if c == nil {
			return nil
		}
		k.mu.Unlock()
		var err error
		committed := false
		gcDone := make([]bool, len(c.gcBelow))
		if merr := k.store.SaveManifest(c.m); merr != nil {
			err = fmt.Errorf("core: shard manifest at safe point %d: %w", c.sp, merr)
		} else {
			committed = true
			for r, below := range c.gcBelow {
				if below == 0 {
					continue
				}
				if gcErr := k.store.ClearShardDeltas(k.app, r, below); gcErr != nil {
					err = fmt.Errorf("core: shard %d chain GC: %w", r, gcErr)
					break
				}
				gcDone[r] = true
			}
		}
		k.mu.Lock()
		// Only advance bookkeeping for I/O that actually happened: a failed
		// manifest write leaves the previous commit current, and a rank
		// whose GC did not run keeps its links eligible for the next pass.
		if committed {
			if c.sp > k.committedSP {
				k.committedSP = c.sp
			}
			// The bounds check is insurance against a rebase shrinking the
			// world mid-commit; the engine drains the pool before every
			// rebase, so it should never fire.
			for r, below := range c.gcBelow {
				if gcDone[r] && r < len(k.ranks) && below > k.ranks[r].gcBelow {
					k.ranks[r].gcBelow = below
				}
			}
		}
		if err != nil {
			return err
		}
		if k.onCommit != nil {
			k.onCommit(c.links, c.waveBytes, c.masterBytes, c.kindDelta)
		}
	}
}

// planCommitLocked assembles the next commit from the current bookkeeping,
// or nil when no new complete wave exists.
func (k *shardSink) planCommitLocked() *shardCommit {
	sp := k.ranks[0].lastSP
	if sp <= k.committedSP {
		return nil
	}
	for _, st := range k.ranks {
		if st.lastSP != sp || st.seq == 0 {
			return nil
		}
	}
	c := &shardCommit{
		sp: sp,
		m: &serial.Manifest{App: k.app, Mode: k.mode, SafePoints: sp,
			Shards: make([]serial.ManifestShard, len(k.ranks))},
		gcBelow:     make([]uint64, len(k.ranks)),
		links:       len(k.ranks),
		masterBytes: k.ranks[0].lastBytes,
		kindDelta:   true,
	}
	for r, st := range k.ranks {
		c.m.Shards[r] = serial.ManifestShard{Anchor: st.anchorSeq, Seq: st.seq, CRC: st.lastCRC, Size: st.lastSize}
		c.waveBytes += st.lastBytes
		if !st.lastDelta {
			// One anchor in the wave (e.g. a fold absorbed a delta into a
			// parked anchor) makes it a full save for the accounting: its
			// bytes are full-state bytes, not incremental ones.
			c.kindDelta = false
		}
		if st.anchorSeq > st.gcBelow {
			c.gcBelow[r] = st.anchorSeq
		}
	}
	return c
}
