package core

import (
	"fmt"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/mp"
	"ppar/internal/team"
)

// Ctx is the execution context handed to the base program. It carries the
// identity of the current line of execution (rank and thread), the plugged
// advice, and the replay state. The base code only ever uses Call, For,
// SafePoint and the identity accessors; everything else is engine plumbing.
type Ctx struct {
	eng    *Engine
	app    App
	fields *boundFields

	comm   *mp.Comm
	worker *team.Worker

	spCount uint64

	restart *ckpt.Replay // restart-after-failure replay (§IV.A)
	join    *ckpt.Replay // run-time expansion replay (§IV.B)
	joinVia *smpJoin     // the team expansion this joiner belongs to

	inRegion      bool
	regionFn      func(*Ctx)
	regionStartSp uint64

	retiredRank bool

	// Task-mode balancer samples: wall time and owned iterations of the
	// partitioned loops this rank ran since the last rebalance decision.
	// Only the rank's master line of execution contributes (worker clones
	// accumulate their own copies, which the balancer never reads).
	taskElapsed time.Duration
	taskIters   int64
}

// Rank reports this replica's aggregate id (0 outside distributed modes).
func (c *Ctx) Rank() int {
	if c.comm == nil {
		return 0
	}
	return c.comm.Rank()
}

// Procs reports the current world size (1 outside distributed modes). It
// changes when a run-time adaptation resizes the world.
func (c *Ctx) Procs() int {
	if c.comm == nil {
		return 1
	}
	return c.comm.Size()
}

// ThreadID reports the team-thread id (0 outside regions).
func (c *Ctx) ThreadID() int {
	if c.worker == nil {
		return 0
	}
	return c.worker.ID()
}

// Threads reports the current team size (1 outside regions). It changes
// when a run-time adaptation resizes the team.
func (c *Ctx) Threads() int {
	if c.worker == nil {
		return 1
	}
	return c.worker.Team().Size()
}

// IsMasterRank reports whether this replica is aggregate element 0.
func (c *Ctx) IsMasterRank() bool { return c.Rank() == 0 }

// IsMasterThread reports whether this line of execution is the team master
// (or is outside any region).
func (c *Ctx) IsMasterThread() bool { return c.worker == nil || c.worker.IsMaster() }

// SafePointCount reports how many safe points this line of execution has
// passed.
func (c *Ctx) SafePointCount() uint64 { return c.spCount }

// Mode reports the deployment mode of the running executor. It changes when
// an in-process migration (AdaptTarget.Mode) relaunches the run under a
// different mode.
func (c *Ctx) Mode() Mode { return c.eng.curMode }

// Replaying reports whether the context is replaying (restart or join).
func (c *Ctx) Replaying() bool { return c.restart.Active() || c.join.Active() }

// Retired reports whether this line of execution has been contracted away
// and is running empty operations to the end.
func (c *Ctx) Retired() bool {
	return c.retiredRank || (c.worker != nil && c.worker.Retired())
}

// commActive reports whether this context participates in collectives:
// joined-but-not-yet-active replicas and retired replicas must not
// communicate.
func (c *Ctx) commActive() bool {
	return c.comm != nil && !c.join.Active() && !c.retiredRank
}

// Call executes fn under the advice plugged for name. With no advice it is
// a direct call — the sequential deployment pays nothing but a map lookup.
func (c *Ctx) Call(name string, fn func(*Ctx)) {
	adv := c.eng.adv.methods[name]
	if adv == nil {
		fn(c)
		return
	}
	if adv.Ignorable && (c.Replaying() || c.Retired()) {
		// IgnorableMethods template: skipped during replay (§IV.A) and
		// by retired lines of execution (§IV.B "empty operations").
		//lint:ignore ppcollective ignorable methods are skipped whole by replaying/retired lines; the active members' barriers pass those workers through (team.Worker.Barrier)
		return
	}
	if adv.SafePointBefore {
		c.SafePoint()
	}
	if len(adv.UpdateBefore) > 0 || len(adv.ScatterBefore) > 0 {
		c.commPhase(func() {
			for _, f := range adv.UpdateBefore {
				c.must(c.fields.haloExchange(f, c.comm, c.Procs()))
			}
			for _, f := range adv.ScatterBefore {
				c.must(c.fields.scatterFrom(f, c.comm, 0, c.Procs()))
			}
		})
	}
	if adv.BarrierBefore {
		c.barrier()
	}

	run := true
	if adv.OnMasterRank && c.comm != nil && !c.IsMasterRank() {
		run = false // aggregate calls execute on element 0 (§III.C)
	}
	body := func() {
		if !run {
			return
		}
		if adv.Synchronised && c.worker != nil {
			c.worker.Critical(name, func() { fn(c) })
			return
		}
		fn(c)
	}

	switch {
	case c.worker != nil && adv.Single:
		c.worker.Single(body)
	case c.worker != nil && adv.Master:
		c.worker.Master(body)
	case adv.Parallel && c.worker == nil && c.teamCapable() && !c.Retired():
		c.runRegion(fn)
	default:
		body()
	}

	if adv.BarrierAfter {
		c.barrier()
	}
	if len(adv.GatherAfter) > 0 || len(adv.AllGatherAfter) > 0 {
		c.commPhase(func() {
			for _, f := range adv.GatherAfter {
				c.must(c.fields.gatherAt(f, c.comm, 0, c.Procs()))
			}
			for _, f := range adv.AllGatherAfter {
				c.must(c.fields.gatherAt(f, c.comm, 0, c.Procs()))
				c.must(c.fields.bcastField(f, c.comm, 0))
			}
		})
	}
	if adv.SafePointAfter {
		c.SafePoint()
	}
}

// commPhase runs a communication step under the single-communicator rule:
// outside regions the rank's control thread runs it directly; inside a
// region only the team master communicates, bracketed by barriers so the
// team observes the moved data afterwards.
func (c *Ctx) commPhase(fn func()) {
	if !c.commActive() {
		return
	}
	if c.worker == nil {
		fn()
		return
	}
	c.worker.Barrier()
	if c.worker.IsMaster() {
		fn()
	}
	c.worker.Barrier()
}

// teamCapable reports whether the running executor spawns thread teams.
func (c *Ctx) teamCapable() bool { return c.eng.exec.Teams() }

// barrier synchronises whatever machinery is plugged: the team inside a
// region, the world across ranks (master thread only, to respect the
// single-communicator rule).
func (c *Ctx) barrier() {
	if c.Retired() || c.join.Active() {
		//lint:ignore ppcollective this is the pass-through the protocol defines: the team barrier counts only active workers, and joining lines synchronise via the join gate instead
		return
	}
	if c.worker != nil {
		c.worker.Barrier()
		if c.commActive() && c.worker.IsMaster() {
			c.must(c.comm.Barrier())
		}
		c.worker.Barrier()
		return
	}
	if c.commActive() {
		c.must(c.comm.Barrier())
	}
}

// For executes an advisable loop body per index. See ForSpan.
func For(c *Ctx, id string, lo, hi int, body func(i int)) {
	ForSpan(c, id, lo, hi, func(a, b int) {
		for i := a; i < b; i++ {
			body(i)
		}
	})
}

// ForSpan executes an advisable loop over [lo, hi), calling body with
// maximal contiguous sub-ranges. The plugged machinery decides the split:
//
//   - Sequential: one call, body(lo, hi) — a plain loop.
//   - Shared: work-shared over the team with the loop's schedule advice,
//     followed by a team barrier unless LoopNoWait.
//   - Distributed with LoopPartition advice: each rank iterates only the
//     indices of the named partitioned field it owns.
//   - Distributed without partition advice: every rank runs the full range
//     (replicated computation, the SPMD default).
//   - Hybrid: the rank-local range is further work-shared over the team.
func ForSpan(c *Ctx, id string, lo, hi int, body func(lo, hi int)) {
	adv := c.eng.adv.loops[id]
	if adv == nil {
		adv = &defaultLoop
	}
	if c.worker == nil && (c.retiredRank || c.join.Active()) {
		// Retired replicas run empty loops; joining replicas skip work
		// during replay (data arrives with the join handoff).
		//lint:ignore ppcollective the barrier below is team-level and this branch only runs without a team (worker == nil); rank-level loops have no loop-end collective
		return
	}
	task := c.eng.curMode == Task
	if c.comm != nil && adv.PartitionField != "" && !c.retiredRank && (c.worker != nil || !c.join.Active()) {
		l, err := c.fields.layoutFor(adv.PartitionField, c.Procs())
		c.must(err)
		start := time.Now()
		owned := 0
		if c.worker != nil {
			l.LocalSpan(c.Rank(), lo, hi, func(a, b int) {
				owned += b - a
				if task {
					c.worker.ForTask(a, b, c.overdecompose(), body)
				} else {
					c.worker.For(a, b, adv.Schedule, adv.Chunk, body)
				}
			})
			// Task loops drain even under NoWait advice: a thief may still be
			// executing a stolen chunk when its victim leaves ForTask, and
			// only the barrier makes the post-loop state complete.
			if task || !adv.NoWait {
				c.worker.Barrier()
			}
			if task {
				c.noteTaskSpan(owned, time.Since(start))
			}
			return
		}
		l.LocalSpan(c.Rank(), lo, hi, func(a, b int) {
			owned += b - a
			body(a, b)
		})
		if task {
			c.noteTaskSpan(owned, time.Since(start))
		}
		return
	}
	if c.worker != nil {
		if task {
			c.worker.ForTask(lo, hi, c.overdecompose(), body)
			c.worker.Barrier()
			return
		}
		c.worker.For(lo, hi, adv.Schedule, adv.Chunk, body)
		if !adv.NoWait {
			c.worker.Barrier()
		}
		return
	}
	body(lo, hi)
}

// overdecompose is the Task-mode chunk count for one work-sharing loop:
// Config.Overdecompose chunks per worker of the current team.
func (c *Ctx) overdecompose() int {
	return c.eng.cfg.Overdecompose * c.worker.Team().Size()
}

// noteTaskSpan accumulates one partitioned Task-mode loop execution into the
// balancer samples (distributed topologies only — with no world there is
// nothing to rebalance).
func (c *Ctx) noteTaskSpan(owned int, d time.Duration) {
	if !c.commActive() {
		return
	}
	c.taskIters += int64(owned)
	c.taskElapsed += d
}

var defaultLoop = LoopAdvice{Schedule: team.Static, Chunk: 1}

// SumAll computes the global sum of v over every active line of execution,
// deterministically (team contributions fold in thread-id order, rank
// contributions in rank order), and returns it everywhere. During replay or
// retirement it returns v unchanged.
func SumAll(c *Ctx, v float64) float64 {
	return combineAll(c, v, func(a, b float64) float64 { return a + b })
}

// MaxAll computes the global maximum of v, like SumAll.
func MaxAll(c *Ctx, v float64) float64 {
	return combineAll(c, v, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

func combineAll(c *Ctx, v float64, op func(a, b float64) float64) float64 {
	if c.Retired() || c.Replaying() {
		//lint:ignore ppcollective documented pass-through: reductions return the input on retired/replaying lines, and ExchangeF64 consumes the instance without synchronising for exactly this cohort
		return v
	}
	if c.worker != nil {
		vals := c.worker.ExchangeF64(v)
		if vals == nil {
			return v
		}
		v = vals[0]
		for _, x := range vals[1:] {
			v = op(v, x)
		}
	}
	if c.commActive() {
		if c.worker == nil {
			out, err := c.comm.AllreduceF64s([]float64{v}, op)
			c.must(err)
			v = out[0]
		} else {
			if c.worker.IsMaster() {
				out, err := c.comm.AllreduceF64s([]float64{v}, op)
				c.must(err)
				v = out[0]
			}
			v = c.worker.BroadcastF64(v)
		}
	}
	return v
}

// must converts unrecoverable engine-plumbing errors into panics; they are
// programming or environment errors (a failed collective after transport
// teardown surfaces through the failure path instead).
func (c *Ctx) must(err error) {
	if err == nil {
		return
	}
	if c.eng.failed.Load() || c.eng.stopped.Load() != nil {
		// Collateral error of an injected failure/stop: unwind quietly.
		panic(failToken{sp: c.spCount, rank: c.Rank()})
	}
	// A genuine communication/storage error: abort this line of execution
	// and tear the job down (siblings unblock through the transport).
	panic(abortToken{msg: fmt.Sprintf("core: rank %d: %v", c.Rank(), err)})
}
