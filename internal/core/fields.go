package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ppar/internal/ckpt"
	"ppar/internal/mp"
	"ppar/internal/partition"
	"ppar/internal/serial"
)

// boundFields resolves the field names used by modules against one
// application instance. Reflection runs exactly once per (application type,
// field set) shape: the resolved field offsets and kinds are cached in a
// package registry, and binding an instance compiles each field into a
// typed-pointer accessor. Data-movement points (scatter/gather/halo/
// checkpoint) then read and write through the accessors without touching
// reflection at all — in a fleet of identical runs, only the very first
// bind pays the reflective walk.
//
// Supported field kinds: float64, int, int64, []float64, []int,
// [][]float64 (rectangular).
type boundFields struct {
	app   App
	specs map[string]*FieldSpec
	acc   map[string]*fieldAccessor

	// bounds holds per-field explicit Block cut points installed by the
	// Task-mode rebalancer (nil entries mean the even division). All data
	// movement goes through layoutFor, so gather/scatter/halo/shard paths
	// observe moved boundaries automatically. Written only at safe points,
	// between the collective barriers of the rebalance protocol.
	bounds map[string][]int
	// rebalances counts the cross-rank rebalances applied on this rank; all
	// ranks increment it in lockstep (the decision is computed from
	// allgathered data), which is what lets RunStats expose it.
	rebalances atomic.Int64
}

// fieldKind discriminates the compiled accessors; the per-call type-switch
// on an interface value is replaced by this small integer dispatch.
type fieldKind uint8

const (
	kindFloat64 fieldKind = iota
	kindInt
	kindInt64
	kindFloat64s
	kindInts
	kindMatrix
)

// fieldAccessor is one field's compiled access path: a typed pointer into
// the application struct, extracted once at bind time. Exactly one pointer
// is set, per kind. []int fields additionally keep a reusable []int64
// conversion buffer so repeated captures of the same field allocate nothing
// once the buffer has grown to size.
type fieldAccessor struct {
	kind fieldKind
	f64  *float64
	i    *int
	i64  *int64
	fs   *[]float64
	is   *[]int
	f2   *[][]float64

	i64buf []int64 // kindInts: reused by value(); aliased by the returned Value
}

// value extracts the field as a serial.Value sharing the live backing
// arrays (for kindInts, sharing the accessor's conversion buffer, which is
// overwritten by the next value() call — the same "persist before the next
// capture" contract the other aliasing kinds already carry).
func (a *fieldAccessor) value() serial.Value {
	switch a.kind {
	case kindFloat64:
		return serial.Float64(*a.f64)
	case kindInt:
		return serial.Int64(int64(*a.i))
	case kindInt64:
		return serial.Int64(*a.i64)
	case kindFloat64s:
		return serial.Float64s(*a.fs)
	case kindInts:
		v := *a.is
		if cap(a.i64buf) < len(v) {
			a.i64buf = make([]int64, len(v))
		}
		buf := a.i64buf[:len(v)]
		for i, x := range v {
			buf[i] = int64(x)
		}
		return serial.Int64s(buf)
	default:
		return serial.Float64Matrix(*a.f2)
	}
}

// setValue writes a serial.Value back into the field. Slice and matrix
// contents are copied into the existing backing arrays when shapes match,
// so that other references to the same arrays (e.g. the red/black views of
// a stencil) observe the restored data.
func (a *fieldAccessor) setValue(v serial.Value) {
	switch a.kind {
	case kindFloat64:
		*a.f64 = v.F
	case kindInt:
		*a.i = int(v.I)
	case kindInt64:
		*a.i64 = v.I
	case kindFloat64s:
		if cur := *a.fs; len(cur) == len(v.Fs) {
			copy(cur, v.Fs)
		} else {
			*a.fs = append([]float64(nil), v.Fs...)
		}
	case kindInts:
		if cur := *a.is; len(cur) == len(v.Is) {
			for i, x := range v.Is {
				cur[i] = int(x)
			}
		} else {
			is := make([]int, len(v.Is))
			for i, x := range v.Is {
				is[i] = int(x)
			}
			*a.is = is
		}
	default:
		cur := *a.f2
		if len(cur) == v.Rows && (v.Rows == 0 || len(cur[0]) == v.Cols) {
			for i := range cur {
				copy(cur[i], v.F2[i])
			}
		} else {
			m := make([][]float64, v.Rows)
			for i := range m {
				m[i] = append([]float64(nil), v.F2[i]...)
			}
			*a.f2 = m
		}
	}
}

// shapeField is one entry of a compiled shape: where the field lives in the
// struct and what kind it is.
type shapeField struct {
	index int
	kind  fieldKind
}

// shapeKey identifies a compiled shape: the concrete application struct
// type plus the signature of the bound field set. Two modules binding
// different field subsets of the same struct compile separately.
type shapeKey struct {
	typ reflect.Type
	sig string
}

// shapeRegistry caches compiled shapes process-wide. Values are
// map[string]shapeField, immutable once stored.
var shapeRegistry sync.Map

// specSignature is the field-set half of a shape key: the sorted bound
// names. Kinds are a property of the struct type, so names suffice.
func specSignature(specs map[string]*FieldSpec) string {
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "\x00")
}

// compileShape resolves every bound field against the struct type by
// reflection — the only reflective walk in the package, performed once per
// shape and cached.
func compileShape(st reflect.Type, specs map[string]*FieldSpec) (map[string]shapeField, error) {
	shape := make(map[string]shapeField, len(specs))
	for name := range specs {
		sf, ok := st.FieldByName(name)
		if !ok {
			return nil, fmt.Errorf("core: field %q named by a module does not exist on *%s", name, st)
		}
		if sf.PkgPath != "" {
			return nil, fmt.Errorf("core: field %q on *%s is unexported; module-managed fields must be exported", name, st)
		}
		if len(sf.Index) != 1 {
			return nil, fmt.Errorf("core: field %q on *%s is promoted from an embedded struct; module-managed fields must be declared directly", name, st)
		}
		kind, err := fieldKindOf(sf.Type)
		if err != nil {
			return nil, fmt.Errorf("core: field %q: %w", name, err)
		}
		shape[name] = shapeField{index: sf.Index[0], kind: kind}
	}
	return shape, nil
}

var (
	typFloat64  = reflect.TypeOf(float64(0))
	typInt      = reflect.TypeOf(int(0))
	typInt64    = reflect.TypeOf(int64(0))
	typFloat64s = reflect.TypeOf([]float64(nil))
	typInts     = reflect.TypeOf([]int(nil))
	typMatrix   = reflect.TypeOf([][]float64(nil))
)

func fieldKindOf(t reflect.Type) (fieldKind, error) {
	switch t {
	case typFloat64:
		return kindFloat64, nil
	case typInt:
		return kindInt, nil
	case typInt64:
		return kindInt64, nil
	case typFloat64s:
		return kindFloat64s, nil
	case typInts:
		return kindInts, nil
	case typMatrix:
		return kindMatrix, nil
	}
	return 0, fmt.Errorf("unsupported kind %s (supported: float64, int, int64, []float64, []int, [][]float64)", t)
}

func bindFields(app App, specs map[string]*FieldSpec) (*boundFields, error) {
	b := &boundFields{app: app, specs: specs, acc: map[string]*fieldAccessor{}}
	rv := reflect.ValueOf(app)
	if rv.Kind() != reflect.Pointer || rv.Elem().Kind() != reflect.Struct {
		if len(specs) == 0 {
			return b, nil
		}
		return nil, fmt.Errorf("core: application must be a pointer to struct to use field templates, got %T", app)
	}
	sv := rv.Elem()
	key := shapeKey{typ: sv.Type(), sig: specSignature(specs)}
	cached, ok := shapeRegistry.Load(key)
	if !ok {
		shape, err := compileShape(sv.Type(), specs)
		if err != nil {
			return nil, err
		}
		cached, _ = shapeRegistry.LoadOrStore(key, shape)
	}
	for name, sf := range cached.(map[string]shapeField) {
		a := &fieldAccessor{kind: sf.kind}
		p := sv.Field(sf.index).Addr().Interface()
		switch sf.kind {
		case kindFloat64:
			a.f64 = p.(*float64)
		case kindInt:
			a.i = p.(*int)
		case kindInt64:
			a.i64 = p.(*int64)
		case kindFloat64s:
			a.fs = p.(*[]float64)
		case kindInts:
			a.is = p.(*[]int)
		default:
			a.f2 = p.(*[][]float64)
		}
		b.acc[name] = a
	}
	return b, nil
}

// names returns the sorted field names matching pred — iteration order must
// be deterministic because distributed ranks perform the same collective
// sequence field by field.
func (b *boundFields) names(pred func(*FieldSpec) bool) []string {
	var out []string
	for n, s := range b.specs {
		if pred(s) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func (b *boundFields) safeDataNames() []string {
	return b.names(func(s *FieldSpec) bool { return s.SafeData })
}

func (b *boundFields) partitionedNames() []string {
	return b.names(func(s *FieldSpec) bool { return s.Class == Partitioned })
}

func (b *boundFields) replicatedNames() []string {
	return b.names(func(s *FieldSpec) bool { return s.Class == Replicated })
}

// value extracts a field as a serial.Value (sharing backing arrays).
func (b *boundFields) value(name string) (serial.Value, error) {
	a, ok := b.acc[name]
	if !ok {
		return serial.Value{}, fmt.Errorf("core: field %q not bound", name)
	}
	return a.value(), nil
}

// setValue writes a serial.Value back into the field.
func (b *boundFields) setValue(name string, v serial.Value) error {
	a, ok := b.acc[name]
	if !ok {
		return fmt.Errorf("core: field %q not bound", name)
	}
	a.setValue(v)
	return nil
}

// layoutFor builds the partition layout of a partitioned field for the
// given number of parts. Matrices partition by rows, slices by elements.
func (b *boundFields) layoutFor(name string, parts int) (partition.Layout, error) {
	spec, ok := b.specs[name]
	if !ok || spec.Class != Partitioned {
		return partition.Layout{}, fmt.Errorf("core: field %q is not partitioned", name)
	}
	n, err := b.length(name)
	if err != nil {
		return partition.Layout{}, err
	}
	if spec.Layout == partition.BlockCyclic {
		return partition.NewBlockCyclic(n, parts, spec.ChunkSize), nil
	}
	l := partition.New(spec.Layout, n, parts)
	if bs := b.bounds[name]; spec.Layout == partition.Block && len(bs) == parts+1 {
		l = l.WithBounds(bs)
	}
	return l, nil
}

// setBounds installs (or, with nil, clears) the explicit Block cut points of
// a partitioned field. The rebalance protocol calls it on every rank with
// identical values, after the data movement that makes them true.
func (b *boundFields) setBounds(name string, bounds []int) {
	if b.bounds == nil {
		b.bounds = map[string][]int{}
	}
	b.bounds[name] = bounds
}

// length reports the partitionable extent of a field.
func (b *boundFields) length(name string) (int, error) {
	a, ok := b.acc[name]
	if !ok {
		return 0, fmt.Errorf("core: field %q not bound", name)
	}
	switch a.kind {
	case kindFloat64s:
		return len(*a.fs), nil
	case kindInts:
		return len(*a.is), nil
	case kindMatrix:
		return len(*a.f2), nil
	}
	return 0, fmt.Errorf("core: field %q is scalar and cannot be partitioned", name)
}

// packOwned flattens the indices of a partitioned field owned by part p
// into a float64 vector (matrices flatten row-major).
func (b *boundFields) packOwned(name string, l partition.Layout, p int) ([]float64, error) {
	a := b.acc[name]
	switch a.kind {
	case kindFloat64s:
		v := *a.fs
		out := make([]float64, 0, l.Count(p))
		l.Indices(p, func(i int) { out = append(out, v[i]) })
		return out, nil
	case kindInts:
		v := *a.is
		out := make([]float64, 0, l.Count(p))
		l.Indices(p, func(i int) { out = append(out, float64(v[i])) })
		return out, nil
	case kindMatrix:
		v := *a.f2
		cols := 0
		if len(v) > 0 {
			cols = len(v[0])
		}
		out := make([]float64, 0, l.Count(p)*cols)
		l.Indices(p, func(i int) { out = append(out, v[i]...) })
		return out, nil
	}
	return nil, fmt.Errorf("core: field %q cannot be packed", name)
}

// unpackOwned writes a packed vector back into the indices owned by part p.
func (b *boundFields) unpackOwned(name string, l partition.Layout, p int, data []float64) error {
	a := b.acc[name]
	switch a.kind {
	case kindFloat64s:
		v := *a.fs
		k := 0
		l.Indices(p, func(i int) { v[i] = data[k]; k++ })
		return nil
	case kindInts:
		v := *a.is
		k := 0
		l.Indices(p, func(i int) { v[i] = int(data[k]); k++ })
		return nil
	case kindMatrix:
		v := *a.f2
		cols := 0
		if len(v) > 0 {
			cols = len(v[0])
		}
		k := 0
		l.Indices(p, func(i int) {
			copy(v[i], data[k:k+cols])
			k += cols
		})
		return nil
	}
	return fmt.Errorf("core: field %q cannot be unpacked", name)
}

// packSpan flattens the contiguous index range [lo, hi) of a partitioned
// field into a float64 vector (matrices flatten row-major) — the transfer
// unit of the Task-mode cross-rank rebalancer, which moves spans between the
// old and new Block boundaries.
func (b *boundFields) packSpan(name string, lo, hi int) ([]float64, error) {
	a := b.acc[name]
	if a == nil {
		return nil, fmt.Errorf("core: field %q not bound", name)
	}
	switch a.kind {
	case kindFloat64s:
		return append([]float64(nil), (*a.fs)[lo:hi]...), nil
	case kindInts:
		v := *a.is
		out := make([]float64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, float64(v[i]))
		}
		return out, nil
	case kindMatrix:
		v := *a.f2
		cols := 0
		if len(v) > 0 {
			cols = len(v[0])
		}
		out := make([]float64, 0, (hi-lo)*cols)
		for i := lo; i < hi; i++ {
			out = append(out, v[i]...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: field %q cannot be packed", name)
}

// unpackSpan writes a packed vector back into the contiguous index range
// [lo, hi) of a partitioned field.
func (b *boundFields) unpackSpan(name string, lo, hi int, data []float64) error {
	a := b.acc[name]
	if a == nil {
		return fmt.Errorf("core: field %q not bound", name)
	}
	switch a.kind {
	case kindFloat64s:
		copy((*a.fs)[lo:hi], data)
		return nil
	case kindInts:
		v := *a.is
		for i := lo; i < hi; i++ {
			v[i] = int(data[i-lo])
		}
		return nil
	case kindMatrix:
		v := *a.f2
		cols := 0
		if len(v) > 0 {
			cols = len(v[0])
		}
		k := 0
		for i := lo; i < hi; i++ {
			copy(v[i], data[k:k+cols])
			k += cols
		}
		return nil
	}
	return fmt.Errorf("core: field %q cannot be unpacked", name)
}

// gatherAt collects the owned blocks of a partitioned field at root,
// leaving root's copy of the field fully populated.
func (b *boundFields) gatherAt(name string, c *mp.Comm, root, parts int) error {
	l, err := b.layoutFor(name, parts)
	if err != nil {
		return err
	}
	mine, err := b.packOwned(name, l, c.Rank())
	if err != nil {
		return err
	}
	got, err := c.Gather(root, mp.EncodeF64s(mine))
	if err != nil {
		return fmt.Errorf("core: gathering field %q: %w", name, err)
	}
	if c.Rank() != root {
		return nil
	}
	for r := 0; r < parts; r++ {
		if r == root {
			continue // root's block is already in place
		}
		if err := b.unpackOwned(name, l, r, mp.DecodeF64s(got[r])); err != nil {
			return err
		}
	}
	return nil
}

// scatterFrom distributes root's full copy of a partitioned field: every
// rank receives (only) its owned block.
func (b *boundFields) scatterFrom(name string, c *mp.Comm, root, parts int) error {
	l, err := b.layoutFor(name, parts)
	if err != nil {
		return err
	}
	var frames [][]byte
	if c.Rank() == root {
		frames = make([][]byte, parts)
		for r := 0; r < parts; r++ {
			blk, err := b.packOwned(name, l, r)
			if err != nil {
				return err
			}
			frames[r] = mp.EncodeF64s(blk)
		}
	}
	mine, err := c.Scatter(root, frames)
	if err != nil {
		return fmt.Errorf("core: scattering field %q: %w", name, err)
	}
	if c.Rank() == root {
		return nil // root's block never left
	}
	return b.unpackOwned(name, l, c.Rank(), mp.DecodeF64s(mine))
}

// bcastField broadcasts root's full copy of a (typically replicated) field.
func (b *boundFields) bcastField(name string, c *mp.Comm, root int) error {
	var payload []byte
	if c.Rank() == root {
		v, err := b.value(name)
		if err != nil {
			return err
		}
		snap := serial.NewSnapshot("bcast", "f", 0)
		snap.Fields[name] = v
		payload = encodeSnapshot(snap)
	}
	payload, err := c.Bcast(root, payload)
	if err != nil {
		return fmt.Errorf("core: broadcasting field %q: %w", name, err)
	}
	if c.Rank() == root {
		return nil
	}
	snap, err := decodeSnapshot(payload)
	if err != nil {
		return err
	}
	return b.setValue(name, snap.Fields[name])
}

// Halo tags: exchanges between one rank pair are strictly ordered by the
// SPMD control flow and the transport preserves per-(sender,tag) FIFO
// order, so fixed tags are unambiguous. (They must NOT depend on how many
// exchanges a rank has performed: a replica that joins at run time skipped
// all earlier exchanges during its replay.)
const (
	haloTagDown = 0x3000
	haloTagUp   = 0x3001
)

// haloExchange refreshes the boundary rows of a block-partitioned matrix
// field: each rank sends its first/last owned row to the neighbouring rank
// and installs the neighbour's edge row next to its own block — the
// paper's "update" primitive, required by five-point stencils.
func (b *boundFields) haloExchange(name string, c *mp.Comm, parts int) error {
	spec := b.specs[name]
	if spec == nil || spec.Class != Partitioned || spec.Layout != partition.Block {
		return fmt.Errorf("core: halo exchange requires a block-partitioned field, got %q", name)
	}
	a := b.acc[name]
	if a == nil || a.kind != kindMatrix {
		return fmt.Errorf("core: halo exchange requires a [][]float64 field, got %q", name)
	}
	fv := *a.f2
	l, err := b.layoutFor(name, parts)
	if err != nil {
		return err
	}
	lo, hi := l.Range(c.Rank())
	tagDown, tagUp := haloTagDown, haloTagUp
	if lo >= hi {
		return nil // empty part: no rows, no neighbours
	}
	below, above := l.Neighbours(c.Rank())
	// Post sends first (transports buffer), then receive.
	if below >= 0 {
		if err := c.SendF64s(below, tagDown, fv[lo]); err != nil {
			return fmt.Errorf("core: halo send down %q: %w", name, err)
		}
	}
	if above >= 0 {
		if err := c.SendF64s(above, tagUp, fv[hi-1]); err != nil {
			return fmt.Errorf("core: halo send up %q: %w", name, err)
		}
	}
	if below >= 0 {
		row, err := c.RecvF64s(below, tagUp)
		if err != nil {
			return fmt.Errorf("core: halo recv from below %q: %w", name, err)
		}
		copy(fv[lo-1], row)
	}
	if above >= 0 {
		row, err := c.RecvF64s(above, tagDown)
		if err != nil {
			return fmt.Errorf("core: halo recv from above %q: %w", name, err)
		}
		copy(fv[hi], row)
	}
	return nil
}

// snapshot builds a serial snapshot of all SafeData fields.
func (b *boundFields) snapshot(app, mode string, sp uint64) (*serial.Snapshot, error) {
	snap := serial.NewSnapshot(app, mode, sp)
	for _, name := range b.safeDataNames() {
		v, err := b.value(name)
		if err != nil {
			return nil, err
		}
		snap.Fields[name] = v
	}
	return snap, nil
}

// restore writes a snapshot's fields back into the application.
func (b *boundFields) restore(snap *serial.Snapshot) error {
	for name, v := range snap.Fields {
		if _, ok := b.acc[name]; !ok {
			return fmt.Errorf("core: snapshot field %q does not exist on the application", name)
		}
		if err := b.setValue(name, v); err != nil {
			return err
		}
	}
	return nil
}

// shardSnapshot builds one rank's local snapshot: owned blocks of
// partitioned SafeData fields plus full copies of everything else. Each
// partitioned field also records its partition layout (ckpt.LayoutField
// metadata), so a manifest-committed save can be repartitioned into a
// different world size or execution mode at restart.
func (b *boundFields) shardSnapshot(app string, sp uint64, rank, parts int) (*serial.Snapshot, error) {
	snap := serial.NewSnapshot(app, fmt.Sprintf("shard-%d/%d", rank, parts), sp)
	for _, name := range b.safeDataNames() {
		if b.specs[name].Class == Partitioned {
			l, err := b.layoutFor(name, parts)
			if err != nil {
				return nil, err
			}
			blk, err := b.packOwned(name, l, rank)
			if err != nil {
				return nil, err
			}
			sl, err := b.shardLayout(name)
			if err != nil {
				return nil, err
			}
			snap.Fields[name] = serial.Float64s(blk)
			snap.Fields[ckpt.LayoutField(name)] = ckpt.LayoutValue(sl)
			continue
		}
		v, err := b.value(name)
		if err != nil {
			return nil, err
		}
		snap.Fields[name] = v
	}
	return snap, nil
}

// shardLayout describes how a partitioned field is split, in the form the
// re-sharding restore consumes.
func (b *boundFields) shardLayout(name string) (ckpt.ShardLayout, error) {
	spec := b.specs[name]
	sl := ckpt.ShardLayout{Kind: spec.Layout, Chunk: spec.ChunkSize}
	if sl.Chunk < 1 {
		sl.Chunk = 1
	}
	a := b.acc[name]
	switch a.kind {
	case kindFloat64s:
		sl.Elem, sl.N = ckpt.ElemFloats, len(*a.fs)
	case kindInts:
		sl.Elem, sl.N = ckpt.ElemInts, len(*a.is)
	case kindMatrix:
		v := *a.f2
		sl.Elem, sl.N = ckpt.ElemMatrix, len(v)
		if len(v) > 0 {
			sl.Cols = len(v[0])
		}
	default:
		return ckpt.ShardLayout{}, fmt.Errorf("core: partitioned field %q has unsupported kind", name)
	}
	if spec.Layout == partition.Block {
		// Record any rebalanced cut points: a same-topology restore must
		// unpack (and keep computing) under the boundaries the shards were
		// packed with, and a re-shard must reassemble through them.
		sl.Bounds = b.bounds[name]
	}
	return sl, nil
}

// restoreShard writes a rank-local snapshot back: partitioned fields into
// owned blocks, the rest verbatim; layout metadata is restore-time input
// for re-sharding, not application data.
func (b *boundFields) restoreShard(snap *serial.Snapshot, rank, parts int) error {
	for name, v := range snap.Fields {
		if ckpt.IsLayoutField(name) {
			continue
		}
		spec, ok := b.specs[name]
		if !ok {
			return fmt.Errorf("core: shard field %q unknown", name)
		}
		if spec.Class == Partitioned {
			l, err := b.layoutFor(name, parts)
			if err != nil {
				return err
			}
			// A shard packed under rebalanced boundaries must be unpacked
			// under them too: the recorded layout metadata wins over the
			// fresh (even) live layout, and its cut points are installed so
			// the resumed run keeps computing — and checkpointing — under
			// the boundaries the save captured.
			if lv, ok := snap.Fields[ckpt.LayoutField(name)]; ok {
				sl, perr := ckpt.ParseLayout(name, lv)
				if perr != nil {
					return perr
				}
				if spec.Layout == partition.Block && len(sl.Bounds) == parts+1 {
					l = l.WithBounds(sl.Bounds)
					b.setBounds(name, sl.Bounds)
				}
			}
			if err := b.unpackOwned(name, l, rank, v.Fs); err != nil {
				return err
			}
			continue
		}
		if err := b.setValue(name, v); err != nil {
			return err
		}
	}
	return nil
}

func encodeSnapshot(s *serial.Snapshot) []byte {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		panic(fmt.Sprintf("core: in-memory snapshot encode failed: %v", err))
	}
	return buf.Bytes()
}

func decodeSnapshot(b []byte) (*serial.Snapshot, error) {
	return serial.Decode(bytes.NewReader(b))
}
