package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"

	"ppar/internal/ckpt"
	"ppar/internal/mp"
	"ppar/internal/partition"
	"ppar/internal/serial"
)

// boundFields resolves the field names used by modules against one
// application instance via reflection. Reflection is used only at plug time
// and at data-movement points (scatter/gather/halo/checkpoint), never in
// compute loops — the hot path touches the fields directly.
//
// Supported field kinds: float64, int, int64, []float64, []int,
// [][]float64 (rectangular).
type boundFields struct {
	app   App
	specs map[string]*FieldSpec
	vals  map[string]reflect.Value
}

func bindFields(app App, specs map[string]*FieldSpec) (*boundFields, error) {
	b := &boundFields{app: app, specs: specs, vals: map[string]reflect.Value{}}
	rv := reflect.ValueOf(app)
	if rv.Kind() != reflect.Pointer || rv.Elem().Kind() != reflect.Struct {
		if len(specs) == 0 {
			return b, nil
		}
		return nil, fmt.Errorf("core: application must be a pointer to struct to use field templates, got %T", app)
	}
	sv := rv.Elem()
	for name := range specs {
		fv := sv.FieldByName(name)
		if !fv.IsValid() {
			return nil, fmt.Errorf("core: field %q named by a module does not exist on %T", name, app)
		}
		if !fv.CanSet() {
			return nil, fmt.Errorf("core: field %q on %T is unexported; module-managed fields must be exported", name, app)
		}
		if err := checkFieldKind(fv); err != nil {
			return nil, fmt.Errorf("core: field %q: %w", name, err)
		}
		b.vals[name] = fv
	}
	return b, nil
}

func checkFieldKind(fv reflect.Value) error {
	switch fv.Interface().(type) {
	case float64, int, int64, []float64, []int, [][]float64:
		return nil
	}
	return fmt.Errorf("unsupported kind %s (supported: float64, int, int64, []float64, []int, [][]float64)", fv.Type())
}

// names returns the sorted field names matching pred — iteration order must
// be deterministic because distributed ranks perform the same collective
// sequence field by field.
func (b *boundFields) names(pred func(*FieldSpec) bool) []string {
	var out []string
	for n, s := range b.specs {
		if pred(s) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func (b *boundFields) safeDataNames() []string {
	return b.names(func(s *FieldSpec) bool { return s.SafeData })
}

func (b *boundFields) partitionedNames() []string {
	return b.names(func(s *FieldSpec) bool { return s.Class == Partitioned })
}

func (b *boundFields) replicatedNames() []string {
	return b.names(func(s *FieldSpec) bool { return s.Class == Replicated })
}

// value extracts a field as a serial.Value (sharing backing arrays).
func (b *boundFields) value(name string) (serial.Value, error) {
	fv, ok := b.vals[name]
	if !ok {
		return serial.Value{}, fmt.Errorf("core: field %q not bound", name)
	}
	switch v := fv.Interface().(type) {
	case float64:
		return serial.Float64(v), nil
	case int:
		return serial.Int64(int64(v)), nil
	case int64:
		return serial.Int64(v), nil
	case []float64:
		return serial.Float64s(v), nil
	case []int:
		is := make([]int64, len(v))
		for i, x := range v {
			is[i] = int64(x)
		}
		return serial.Int64s(is), nil
	case [][]float64:
		return serial.Float64Matrix(v), nil
	}
	return serial.Value{}, fmt.Errorf("core: field %q has unsupported kind", name)
}

// setValue writes a serial.Value back into the field. Slice and matrix
// contents are copied into the existing backing arrays when shapes match, so
// that other references to the same arrays (e.g. the red/black views of a
// stencil) observe the restored data.
func (b *boundFields) setValue(name string, v serial.Value) error {
	fv, ok := b.vals[name]
	if !ok {
		return fmt.Errorf("core: field %q not bound", name)
	}
	switch cur := fv.Interface().(type) {
	case float64:
		fv.SetFloat(v.F)
	case int:
		fv.SetInt(v.I)
	case int64:
		fv.SetInt(v.I)
	case []float64:
		if len(cur) == len(v.Fs) {
			copy(cur, v.Fs)
		} else {
			fv.Set(reflect.ValueOf(append([]float64(nil), v.Fs...)))
		}
	case []int:
		if len(cur) == len(v.Is) {
			for i, x := range v.Is {
				cur[i] = int(x)
			}
		} else {
			is := make([]int, len(v.Is))
			for i, x := range v.Is {
				is[i] = int(x)
			}
			fv.Set(reflect.ValueOf(is))
		}
	case [][]float64:
		if len(cur) == v.Rows && (v.Rows == 0 || len(cur[0]) == v.Cols) {
			for i := range cur {
				copy(cur[i], v.F2[i])
			}
		} else {
			m := make([][]float64, v.Rows)
			for i := range m {
				m[i] = append([]float64(nil), v.F2[i]...)
			}
			fv.Set(reflect.ValueOf(m))
		}
	default:
		return fmt.Errorf("core: field %q has unsupported kind", name)
	}
	return nil
}

// layoutFor builds the partition layout of a partitioned field for the
// given number of parts. Matrices partition by rows, slices by elements.
func (b *boundFields) layoutFor(name string, parts int) (partition.Layout, error) {
	spec, ok := b.specs[name]
	if !ok || spec.Class != Partitioned {
		return partition.Layout{}, fmt.Errorf("core: field %q is not partitioned", name)
	}
	n, err := b.length(name)
	if err != nil {
		return partition.Layout{}, err
	}
	if spec.Layout == partition.BlockCyclic {
		return partition.NewBlockCyclic(n, parts, spec.ChunkSize), nil
	}
	return partition.New(spec.Layout, n, parts), nil
}

// length reports the partitionable extent of a field.
func (b *boundFields) length(name string) (int, error) {
	fv, ok := b.vals[name]
	if !ok {
		return 0, fmt.Errorf("core: field %q not bound", name)
	}
	switch v := fv.Interface().(type) {
	case []float64:
		return len(v), nil
	case []int:
		return len(v), nil
	case [][]float64:
		return len(v), nil
	}
	return 0, fmt.Errorf("core: field %q is scalar and cannot be partitioned", name)
}

// packOwned flattens the indices of a partitioned field owned by part p
// into a float64 vector (matrices flatten row-major).
func (b *boundFields) packOwned(name string, l partition.Layout, p int) ([]float64, error) {
	fv := b.vals[name]
	switch v := fv.Interface().(type) {
	case []float64:
		out := make([]float64, 0, l.Count(p))
		l.Indices(p, func(i int) { out = append(out, v[i]) })
		return out, nil
	case []int:
		out := make([]float64, 0, l.Count(p))
		l.Indices(p, func(i int) { out = append(out, float64(v[i])) })
		return out, nil
	case [][]float64:
		cols := 0
		if len(v) > 0 {
			cols = len(v[0])
		}
		out := make([]float64, 0, l.Count(p)*cols)
		l.Indices(p, func(i int) { out = append(out, v[i]...) })
		return out, nil
	}
	return nil, fmt.Errorf("core: field %q cannot be packed", name)
}

// unpackOwned writes a packed vector back into the indices owned by part p.
func (b *boundFields) unpackOwned(name string, l partition.Layout, p int, data []float64) error {
	fv := b.vals[name]
	switch v := fv.Interface().(type) {
	case []float64:
		k := 0
		l.Indices(p, func(i int) { v[i] = data[k]; k++ })
		return nil
	case []int:
		k := 0
		l.Indices(p, func(i int) { v[i] = int(data[k]); k++ })
		return nil
	case [][]float64:
		cols := 0
		if len(v) > 0 {
			cols = len(v[0])
		}
		k := 0
		l.Indices(p, func(i int) {
			copy(v[i], data[k:k+cols])
			k += cols
		})
		return nil
	}
	return fmt.Errorf("core: field %q cannot be unpacked", name)
}

// gatherAt collects the owned blocks of a partitioned field at root,
// leaving root's copy of the field fully populated.
func (b *boundFields) gatherAt(name string, c *mp.Comm, root, parts int) error {
	l, err := b.layoutFor(name, parts)
	if err != nil {
		return err
	}
	mine, err := b.packOwned(name, l, c.Rank())
	if err != nil {
		return err
	}
	got, err := c.Gather(root, mp.EncodeF64s(mine))
	if err != nil {
		return fmt.Errorf("core: gathering field %q: %w", name, err)
	}
	if c.Rank() != root {
		return nil
	}
	for r := 0; r < parts; r++ {
		if r == root {
			continue // root's block is already in place
		}
		if err := b.unpackOwned(name, l, r, mp.DecodeF64s(got[r])); err != nil {
			return err
		}
	}
	return nil
}

// scatterFrom distributes root's full copy of a partitioned field: every
// rank receives (only) its owned block.
func (b *boundFields) scatterFrom(name string, c *mp.Comm, root, parts int) error {
	l, err := b.layoutFor(name, parts)
	if err != nil {
		return err
	}
	var frames [][]byte
	if c.Rank() == root {
		frames = make([][]byte, parts)
		for r := 0; r < parts; r++ {
			blk, err := b.packOwned(name, l, r)
			if err != nil {
				return err
			}
			frames[r] = mp.EncodeF64s(blk)
		}
	}
	mine, err := c.Scatter(root, frames)
	if err != nil {
		return fmt.Errorf("core: scattering field %q: %w", name, err)
	}
	if c.Rank() == root {
		return nil // root's block never left
	}
	return b.unpackOwned(name, l, c.Rank(), mp.DecodeF64s(mine))
}

// bcastField broadcasts root's full copy of a (typically replicated) field.
func (b *boundFields) bcastField(name string, c *mp.Comm, root int) error {
	var payload []byte
	if c.Rank() == root {
		v, err := b.value(name)
		if err != nil {
			return err
		}
		snap := serial.NewSnapshot("bcast", "f", 0)
		snap.Fields[name] = v
		payload = encodeSnapshot(snap)
	}
	payload, err := c.Bcast(root, payload)
	if err != nil {
		return fmt.Errorf("core: broadcasting field %q: %w", name, err)
	}
	if c.Rank() == root {
		return nil
	}
	snap, err := decodeSnapshot(payload)
	if err != nil {
		return err
	}
	return b.setValue(name, snap.Fields[name])
}

// Halo tags: exchanges between one rank pair are strictly ordered by the
// SPMD control flow and the transport preserves per-(sender,tag) FIFO
// order, so fixed tags are unambiguous. (They must NOT depend on how many
// exchanges a rank has performed: a replica that joins at run time skipped
// all earlier exchanges during its replay.)
const (
	haloTagDown = 0x3000
	haloTagUp   = 0x3001
)

// haloExchange refreshes the boundary rows of a block-partitioned matrix
// field: each rank sends its first/last owned row to the neighbouring rank
// and installs the neighbour's edge row next to its own block — the
// paper's "update" primitive, required by five-point stencils.
func (b *boundFields) haloExchange(name string, c *mp.Comm, parts int) error {
	spec := b.specs[name]
	if spec == nil || spec.Class != Partitioned || spec.Layout != partition.Block {
		return fmt.Errorf("core: halo exchange requires a block-partitioned field, got %q", name)
	}
	fv, ok := b.vals[name].Interface().([][]float64)
	if !ok {
		return fmt.Errorf("core: halo exchange requires a [][]float64 field, got %q", name)
	}
	l, err := b.layoutFor(name, parts)
	if err != nil {
		return err
	}
	lo, hi := l.Range(c.Rank())
	tagDown, tagUp := haloTagDown, haloTagUp
	if lo >= hi {
		return nil // empty part: no rows, no neighbours
	}
	below, above := l.Neighbours(c.Rank())
	// Post sends first (transports buffer), then receive.
	if below >= 0 {
		if err := c.SendF64s(below, tagDown, fv[lo]); err != nil {
			return fmt.Errorf("core: halo send down %q: %w", name, err)
		}
	}
	if above >= 0 {
		if err := c.SendF64s(above, tagUp, fv[hi-1]); err != nil {
			return fmt.Errorf("core: halo send up %q: %w", name, err)
		}
	}
	if below >= 0 {
		row, err := c.RecvF64s(below, tagUp)
		if err != nil {
			return fmt.Errorf("core: halo recv from below %q: %w", name, err)
		}
		copy(fv[lo-1], row)
	}
	if above >= 0 {
		row, err := c.RecvF64s(above, tagDown)
		if err != nil {
			return fmt.Errorf("core: halo recv from above %q: %w", name, err)
		}
		copy(fv[hi], row)
	}
	return nil
}

// snapshot builds a serial snapshot of all SafeData fields.
func (b *boundFields) snapshot(app, mode string, sp uint64) (*serial.Snapshot, error) {
	snap := serial.NewSnapshot(app, mode, sp)
	for _, name := range b.safeDataNames() {
		v, err := b.value(name)
		if err != nil {
			return nil, err
		}
		snap.Fields[name] = v
	}
	return snap, nil
}

// restore writes a snapshot's fields back into the application.
func (b *boundFields) restore(snap *serial.Snapshot) error {
	for name, v := range snap.Fields {
		if _, ok := b.vals[name]; !ok {
			return fmt.Errorf("core: snapshot field %q does not exist on the application", name)
		}
		if err := b.setValue(name, v); err != nil {
			return err
		}
	}
	return nil
}

// shardSnapshot builds one rank's local snapshot: owned blocks of
// partitioned SafeData fields plus full copies of everything else. Each
// partitioned field also records its partition layout (ckpt.LayoutField
// metadata), so a manifest-committed save can be repartitioned into a
// different world size or execution mode at restart.
func (b *boundFields) shardSnapshot(app string, sp uint64, rank, parts int) (*serial.Snapshot, error) {
	snap := serial.NewSnapshot(app, fmt.Sprintf("shard-%d/%d", rank, parts), sp)
	for _, name := range b.safeDataNames() {
		if b.specs[name].Class == Partitioned {
			l, err := b.layoutFor(name, parts)
			if err != nil {
				return nil, err
			}
			blk, err := b.packOwned(name, l, rank)
			if err != nil {
				return nil, err
			}
			sl, err := b.shardLayout(name)
			if err != nil {
				return nil, err
			}
			snap.Fields[name] = serial.Float64s(blk)
			snap.Fields[ckpt.LayoutField(name)] = ckpt.LayoutValue(sl)
			continue
		}
		v, err := b.value(name)
		if err != nil {
			return nil, err
		}
		snap.Fields[name] = v
	}
	return snap, nil
}

// shardLayout describes how a partitioned field is split, in the form the
// re-sharding restore consumes.
func (b *boundFields) shardLayout(name string) (ckpt.ShardLayout, error) {
	spec := b.specs[name]
	sl := ckpt.ShardLayout{Kind: spec.Layout, Chunk: spec.ChunkSize}
	if sl.Chunk < 1 {
		sl.Chunk = 1
	}
	switch v := b.vals[name].Interface().(type) {
	case []float64:
		sl.Elem, sl.N = ckpt.ElemFloats, len(v)
	case []int:
		sl.Elem, sl.N = ckpt.ElemInts, len(v)
	case [][]float64:
		sl.Elem, sl.N = ckpt.ElemMatrix, len(v)
		if len(v) > 0 {
			sl.Cols = len(v[0])
		}
	default:
		return ckpt.ShardLayout{}, fmt.Errorf("core: partitioned field %q has unsupported kind", name)
	}
	return sl, nil
}

// restoreShard writes a rank-local snapshot back: partitioned fields into
// owned blocks, the rest verbatim; layout metadata is restore-time input
// for re-sharding, not application data.
func (b *boundFields) restoreShard(snap *serial.Snapshot, rank, parts int) error {
	for name, v := range snap.Fields {
		if ckpt.IsLayoutField(name) {
			continue
		}
		spec, ok := b.specs[name]
		if !ok {
			return fmt.Errorf("core: shard field %q unknown", name)
		}
		if spec.Class == Partitioned {
			l, err := b.layoutFor(name, parts)
			if err != nil {
				return err
			}
			if err := b.unpackOwned(name, l, rank, v.Fs); err != nil {
				return err
			}
			continue
		}
		if err := b.setValue(name, v); err != nil {
			return err
		}
	}
	return nil
}

func encodeSnapshot(s *serial.Snapshot) []byte {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		panic(fmt.Sprintf("core: in-memory snapshot encode failed: %v", err))
	}
	return buf.Bytes()
}

func decodeSnapshot(b []byte) (*serial.Snapshot, error) {
	return serial.Decode(bytes.NewReader(b))
}
