package core

import (
	"sync"

	"ppar/internal/ckpt"
	"ppar/internal/team"
)

// runRegion executes a ParallelMethod: a fresh team of the engine's current
// width runs fn, with the encountering context becoming the master worker
// (§III.B: "Execution starts in a main thread that can spawn a team of
// threads to execute a block of code"). Control-flow tokens raised inside
// workers are collected and re-raised on the encountering goroutine after
// the team drains, so injected failures and checkpoint-stops unwind cleanly.
func (c *Ctx) runRegion(fn func(*Ctx)) {
	n := int(c.eng.curThreads.Load())
	tm := team.New(n)

	var tokMu chanToken
	saveWorker := c.worker
	saveInRegion, saveRegionFn, saveStart := c.inRegion, c.regionFn, c.regionStartSp

	// Capture the region-entry state BEFORE any worker starts: the master
	// runs the region body on this goroutine concurrently with the spawned
	// workers, so cloning from the live master context would fork replay
	// progress and counters the master has already advanced.
	entry := regionEntry{sp: c.spCount}
	if c.restart != nil {
		entry.restart = c.restart.Fork()
	}

	tm.Run(func(w *team.Worker) {
		var rc *Ctx
		if w.IsMaster() {
			rc = c
			rc.worker = w
		} else {
			rc = c.cloneForWorker(w, entry)
		}
		rc.inRegion = true
		rc.regionFn = fn
		rc.regionStartSp = entry.sp
		if tok := c.eng.guard(func() { fn(rc) }); tok != nil {
			tokMu.set(tok)
			// Release any siblings blocked on the team barrier: they
			// must unwind too (the process is going down or stopping).
			tm.Poison()
		}
	})

	c.worker = saveWorker
	c.inRegion, c.regionFn, c.regionStartSp = saveInRegion, saveRegionFn, saveStart
	if chunks, steals, idle := tm.TaskCounters(); chunks > 0 {
		// Fold the drained team's work-stealing counters into the report
		// (non-zero only under the Task executor).
		c.eng.recordTaskCounters(chunks, steals, idle)
	}
	if tok := tokMu.get(); tok != nil {
		panic(tok)
	}
}

// regionEntry is the master context state snapshotted at region entry, from
// which worker contexts are derived.
type regionEntry struct {
	sp      uint64
	restart *ckpt.Replay
}

// cloneForWorker derives a context for a non-master team worker: its own
// safe-point counter and replay progress starting from the region-entry
// snapshot, sharing the application, fields and communicator.
func (c *Ctx) cloneForWorker(w *team.Worker, entry regionEntry) *Ctx {
	rc := &Ctx{
		eng:     c.eng,
		app:     c.app,
		fields:  c.fields,
		comm:    c.comm,
		worker:  w,
		spCount: entry.sp,
	}
	if entry.restart != nil {
		rc.restart = entry.restart.Fork()
	}
	return rc
}

// cloneForJoin derives a context for a worker spawned by a run-time
// expansion: it replays the region from its start until it has passed the
// same number of safe points as the incumbents (§IV.B: "we replay the
// execution inside parallel region for each new thread ... to build the
// correct calling stack on each thread in the team"). The join object is
// carried in the context — in hybrid deployments every rank's team adapts
// concurrently, so join coordination must be team-local, never
// engine-global.
func (c *Ctx) cloneForJoin(w *team.Worker, regionSafePoints uint64, join *smpJoin) *Ctx {
	rc := &Ctx{
		eng:      c.eng,
		app:      c.app,
		fields:   c.fields,
		comm:     c.comm,
		worker:   w,
		spCount:  c.regionStartSp,
		inRegion: true,
		joinVia:  join,
	}
	rc.regionFn = c.regionFn
	rc.regionStartSp = c.regionStartSp
	rc.join = newJoinReplay(regionSafePoints)
	return rc
}

// chanToken is a tiny once-set token holder safe for concurrent workers.
type chanToken struct {
	mu  sync.Mutex
	tok any
}

func (t *chanToken) set(tok any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tok == nil {
		t.tok = tok
	}
}

func (t *chanToken) get() any {
	return t.tok // called after tm.Run joined all workers
}
