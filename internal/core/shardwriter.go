package core

import (
	"runtime"
	"sync"
	"time"

	"ppar/internal/serial"
)

// shardWriter is the background half of the asynchronous shard-checkpoint
// pipeline: a bounded pool of workers persists the per-rank captures of a
// save wave concurrently through the shardSink, while computation proceeds
// past the safe-point barriers. The sink commits the wave's manifest when
// the last shard of the wave lands, so the commit record is always written
// last — exactly as in the synchronous protocol.
//
// Backpressure mirrors the canonical asyncWriter, per shard: at most one
// capture of each rank is parked behind that rank's in-flight write. A
// newer ANCHOR capture supersedes whatever is parked (it is cumulative
// state). A newer DELTA capture must never replace a parked delta — each
// delta only carries the chunks changed since the previous capture, so
// dropping the parked one would lose the chunks the newer capture did not
// touch again; instead the parked delta is FOLDED into the newer one
// (serial.MergeDeltas), or applied onto a parked anchor, and the combined
// capture lands in the rank's next chain position. A wave some rank folded
// away simply never commits a manifest; the next complete wave does.
//
// A failed link write POISONS that rank's chain: later delta captures of
// the rank are dropped (a successor would silently take the missing link's
// chain position, and a structurally valid chain missing one link's changes
// is exactly the corruption the pipeline exists to prevent) until an anchor
// capture starts a fresh committed window. The error itself surfaces at the
// next safe point the coordinator reaches, or at engine exit.
type shardWriter struct {
	sink        *shardSink
	onSave      func(d time.Duration, delta bool) // successful background link write
	onSupersede func()

	mu       sync.Mutex
	cond     *sync.Cond
	parked   map[int]*shardCapture
	inFlight map[int]bool
	poisoned map[int]bool
	err      error // first write error since the last takeErr/drain
	closed   bool
	wg       sync.WaitGroup
}

// shardWriterPool bounds the worker pool: one writer per rank up to the
// machine's parallelism, capped so a wide world cannot oversubscribe I/O.
func shardWriterPool(world int) int {
	n := runtime.GOMAXPROCS(0)
	if n > world {
		n = world
	}
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

func newShardWriter(sink *shardSink, workers int, onSave func(time.Duration, bool), onSupersede func()) *shardWriter {
	w := &shardWriter{
		sink: sink, onSave: onSave, onSupersede: onSupersede,
		parked:   map[int]*shardCapture{},
		inFlight: map[int]bool{},
		poisoned: map[int]bool{},
	}
	w.cond = sync.NewCond(&w.mu)
	for i := 0; i < workers; i++ {
		w.wg.Add(1)
		go w.worker()
	}
	return w
}

func (w *shardWriter) worker() {
	defer w.wg.Done()
	for {
		w.mu.Lock()
		var cap *shardCapture
		for {
			cap = w.takeLocked()
			if cap != nil || (w.closed && len(w.parked) == 0) {
				break
			}
			w.cond.Wait()
		}
		if cap == nil {
			w.mu.Unlock()
			return // closed and drained
		}
		w.inFlight[cap.rank] = true
		w.mu.Unlock()

		start := time.Now()
		err := w.sink.write(cap)

		w.mu.Lock()
		delete(w.inFlight, cap.rank)
		var droppedSuccessor *shardCapture
		if err != nil {
			if w.err == nil {
				w.err = err
			}
			w.poisoned[cap.rank] = true
			// A parked successor delta of the poisoned chain must not be
			// written either — it would take the failed link's position.
			if p := w.parked[cap.rank]; p != nil && p.full == nil {
				droppedSuccessor = p
				delete(w.parked, cap.rank)
			}
		} else if w.onSave != nil {
			w.onSave(time.Since(start), cap.full == nil)
		}
		w.cond.Broadcast()
		w.mu.Unlock()
		// Written (or failed and ownerless) captures feed the pools for the
		// next wave's clones; see asyncWriter.loop for the ownership rules.
		recycleShardCapture(cap)
		recycleShardCapture(droppedSuccessor)
	}
}

// recycleShardCapture hands a dead capture's backing arrays to the serial
// pools. Callers must own the capture outright: never pass one whose delta
// was folded into a parked anchor (Apply installs whole-field values into
// the anchor by reference) or whose delta fed a merge.
func recycleShardCapture(c *shardCapture) {
	if c == nil {
		return
	}
	serial.RecycleSnapshot(c.full)
	serial.RecycleDelta(c.delta)
}

// takeLocked removes and returns a parked capture whose rank has no write
// in flight (lowest rank first, for deterministic draining), or nil.
func (w *shardWriter) takeLocked() *shardCapture {
	best := -1
	for rank := range w.parked {
		if !w.inFlight[rank] && (best < 0 || rank < best) {
			best = rank
		}
	}
	if best < 0 {
		return nil
	}
	cap := w.parked[best]
	delete(w.parked, best)
	return cap
}

// submit hands one rank's capture to the pool without blocking, folding it
// with anything still parked for the rank (see the type comment).
func (w *shardWriter) submit(cap *shardCapture) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.poisoned[cap.rank] {
		if cap.full == nil {
			recycleShardCapture(cap)
			return // this chain is missing a link on disk; see the type comment
		}
		delete(w.poisoned, cap.rank)
	}
	p := w.parked[cap.rank]
	switch {
	case p == nil:
		w.parked[cap.rank] = cap
	case cap.full != nil:
		// An anchor capture is cumulative: whatever is parked carries
		// nothing the new full state does not.
		w.parked[cap.rank] = cap
		w.noteSupersedeLocked()
		recycleShardCapture(p)
	case p.full != nil:
		// Fold the newer delta onto the parked anchor snapshot: the anchor
		// stays self-contained and lands on the newer state.
		if err := cap.delta.Apply(p.full); err != nil {
			// Consecutive captures of one rank always match in shape; a
			// fold failure is a protocol bug. Record it like a write error
			// so the next safe point aborts, and drop the parked capture
			// rather than persist a state of unknown provenance.
			if w.err == nil {
				w.err = err
			}
			delete(w.parked, cap.rank)
			break
		}
		p.sp = cap.sp
		w.noteSupersedeLocked()
	default:
		merged, err := serial.MergeDeltas(p.delta, cap.delta)
		if err != nil {
			if w.err == nil {
				w.err = err
			}
			delete(w.parked, cap.rank)
			break
		}
		w.parked[cap.rank] = &shardCapture{rank: cap.rank, sp: cap.sp, world: cap.world, delta: merged}
		w.noteSupersedeLocked()
	}
	w.cond.Broadcast()
}

func (w *shardWriter) noteSupersedeLocked() {
	if w.onSupersede != nil {
		w.onSupersede()
	}
}

// drain blocks until no capture is parked or in flight, then returns (and
// clears) the first write error recorded since the last drain/takeErr.
func (w *shardWriter) drain() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.parked) > 0 || len(w.inFlight) > 0 {
		w.cond.Wait()
	}
	err := w.err
	w.err = nil
	return err
}

// takeErr returns (and clears) the first write error without waiting.
func (w *shardWriter) takeErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	w.err = nil
	return err
}

// close drains outstanding writes, stops the pool and returns any write
// error. Called once, at engine exit.
func (w *shardWriter) close() error {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	w.err = nil
	return err
}
