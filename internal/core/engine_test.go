package core

import (
	"errors"
	"testing"
)

const (
	tN     = 24
	tIters = 12
)

// runStencil executes one deployment and returns the master's final grid.
func runStencil(t *testing.T, cfg Config) ([][]float64, Report) {
	t.Helper()
	sink := &resultSink{}
	if cfg.Modules == nil {
		cfg.Modules = modulesFor(cfg.Mode)
	}
	if cfg.AppName == "" {
		cfg.AppName = "stencil"
	}
	eng, err := New(cfg, func() App { return newStencil(tN, tIters, sink) })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run(%v): %v", cfg.Mode, err)
	}
	g := sink.get()
	if g == nil {
		t.Fatalf("Run(%v): no result reported", cfg.Mode)
	}
	return g, eng.Report()
}

func gridsEqual(t *testing.T, what string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d rows vs %d", what, len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("%s: mismatch at (%d,%d): %v vs %v", what, i, j, a[i][j], b[i][j])
			}
		}
	}
}

// The headline property of pluggable parallelisation: the same base code
// produces bit-identical results under every plugged deployment.
func TestAllModesAgree(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	cases := []Config{
		{Mode: Shared, Threads: 1},
		{Mode: Shared, Threads: 3},
		{Mode: Shared, Threads: 8},
		{Mode: Distributed, Procs: 2},
		{Mode: Distributed, Procs: 5},
		{Mode: Hybrid, Procs: 2, Threads: 3},
		{Mode: Hybrid, Procs: 3, Threads: 2},
	}
	for _, cfg := range cases {
		got, _ := runStencil(t, cfg)
		gridsEqual(t, cfg.Mode.String(), ref, got)
	}
}

func TestTCPTransportAgrees(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	got, _ := runStencil(t, Config{Mode: Distributed, Procs: 3, TCP: true})
	gridsEqual(t, "tcp", ref, got)
}

func TestSafePointsCounted(t *testing.T) {
	_, rep := runStencil(t, Config{Mode: Sequential})
	if rep.SafePoints != tIters {
		t.Fatalf("safe points = %d, want %d", rep.SafePoints, tIters)
	}
}

func TestCheckpointTaken(t *testing.T) {
	dir := t.TempDir()
	_, rep := runStencil(t, Config{
		Mode: Shared, Threads: 2,
		CheckpointDir: dir, CheckpointEvery: 5,
	})
	if rep.Checkpoints != 2 { // at sp 5 and 10 (12 iters)
		t.Fatalf("checkpoints = %d, want 2", rep.Checkpoints)
	}
	if rep.SaveBytes == 0 || rep.SaveTotal == 0 {
		t.Fatalf("save accounting empty: %+v", rep)
	}
}

func TestMaxCheckpointsCap(t *testing.T) {
	dir := t.TempDir()
	_, rep := runStencil(t, Config{
		Mode:          Sequential,
		CheckpointDir: dir, CheckpointEvery: 3, MaxCheckpoints: 1,
	})
	if rep.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", rep.Checkpoints)
	}
}

// Failure + restart in every mode: the restarted run must produce exactly
// the uninterrupted result, replaying to the checkpoint then continuing.
func TestFailureRestartEquivalence(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"seq", Config{Mode: Sequential}},
		{"smp", Config{Mode: Shared, Threads: 3}},
		{"dist", Config{Mode: Distributed, Procs: 3}},
		{"dist-shards", Config{Mode: Distributed, Procs: 3, ShardCheckpoints: true}},
		{"hybrid", Config{Mode: Hybrid, Procs: 2, Threads: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			sink := &resultSink{}
			cfg := tc.cfg
			cfg.AppName = "stencil"
			cfg.Modules = modulesFor(cfg.Mode)
			cfg.CheckpointDir = dir
			cfg.CheckpointEvery = 4
			cfg.FailAtSafePoint = 9 // after the sp-8 checkpoint

			eng, err := New(cfg, func() App { return newStencil(tN, tIters, sink) })
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Run(); !errors.Is(err, ErrInjectedFailure) {
				t.Fatalf("first run: %v, want injected failure", err)
			}

			// Relaunch without the failure: pcr detects the crash and replays.
			cfg2 := cfg
			cfg2.FailAtSafePoint = 0
			eng2, err := New(cfg2, func() App { return newStencil(tN, tIters, sink) })
			if err != nil {
				t.Fatal(err)
			}
			if err := eng2.Run(); err != nil {
				t.Fatalf("restart run: %v", err)
			}
			rep := eng2.Report()
			if !rep.Restarted {
				t.Error("restart not recorded")
			}
			if rep.LoadTotal == 0 {
				t.Error("load time not recorded")
			}
			gridsEqual(t, tc.name, ref, sink.get())
		})
	}
}

func TestCrashBeforeAnyCheckpointRerunsFromScratch(t *testing.T) {
	dir := t.TempDir()
	sink := &resultSink{}
	cfg := Config{
		Mode: Sequential, AppName: "stencil", Modules: modulesFor(Sequential),
		CheckpointDir: dir, CheckpointEvery: 100, // never due
		FailAtSafePoint: 3,
	}
	eng, _ := New(cfg, func() App { return newStencil(tN, tIters, sink) })
	if err := eng.Run(); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("first run: %v", err)
	}
	cfg.FailAtSafePoint = 0
	eng2, _ := New(cfg, func() App { return newStencil(tN, tIters, sink) })
	if err := eng2.Run(); err != nil {
		t.Fatalf("re-run: %v", err)
	}
	ref, _ := runStencil(t, Config{Mode: Sequential})
	gridsEqual(t, "from-scratch", ref, sink.get())
}

// Run-time thread adaptation (§IV.B): grow and shrink mid-region, results
// unchanged.
func TestThreadAdaptation(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	cases := []struct {
		name     string
		from, to int
	}{
		{"grow-1-to-4", 1, 4},
		{"grow-2-to-3", 2, 3},
		{"shrink-4-to-2", 4, 2},
		{"shrink-3-to-1", 3, 1},
		{"same-2-to-2", 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, rep := runStencil(t, Config{
				Mode: Shared, Threads: tc.from,
				AdaptAtSafePoint: 6,
				AdaptTo:          AdaptTarget{Threads: tc.to},
			})
			gridsEqual(t, tc.name, ref, got)
			if tc.from != tc.to && !rep.Adapted {
				t.Error("adaptation not recorded")
			}
		})
	}
}

// The RequestAdapt path: the coordinator notices the pending request at its
// next safe point and schedules the adaptation one safe point later.
func TestRequestAdaptPath(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	sink := &resultSink{}
	cfg := Config{Mode: Shared, Threads: 2, AppName: "stencil", Modules: modulesFor(Shared)}
	eng, err := New(cfg, func() App { return newStencil(tN, tIters, sink) })
	if err != nil {
		t.Fatal(err)
	}
	eng.RequestAdapt(AdaptTarget{Threads: 4})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !eng.Report().Adapted {
		t.Error("adaptation not applied")
	}
	gridsEqual(t, "request-adapt", ref, sink.get())
}

// Run-time world adaptation: grow and shrink the number of replicas.
func TestProcAdaptation(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	cases := []struct {
		name     string
		from, to int
	}{
		{"grow-1-to-3", 1, 3},
		{"grow-2-to-4", 2, 4},
		{"shrink-4-to-2", 4, 2},
		{"shrink-3-to-1", 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, rep := runStencil(t, Config{
				Mode: Distributed, Procs: tc.from,
				AdaptAtSafePoint: 6,
				AdaptTo:          AdaptTarget{Procs: tc.to},
			})
			gridsEqual(t, tc.name, ref, got)
			if !rep.Adapted {
				t.Error("adaptation not recorded")
			}
		})
	}
}

// Adaptation by restart (Figures 6/7): checkpoint-and-stop in one mode,
// relaunch in ANOTHER mode from the canonical snapshot. This is the
// cross-mode malleability §IV.A claims for gather-at-master checkpoints.
func TestStopRestartAcrossModes(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	transitions := []struct {
		name string
		from Config
		to   Config
	}{
		{"seq-to-smp", Config{Mode: Sequential}, Config{Mode: Shared, Threads: 3}},
		{"smp-to-dist", Config{Mode: Shared, Threads: 2}, Config{Mode: Distributed, Procs: 3}},
		{"dist-to-seq", Config{Mode: Distributed, Procs: 3}, Config{Mode: Sequential}},
		{"dist-to-dist-wider", Config{Mode: Distributed, Procs: 2}, Config{Mode: Distributed, Procs: 4}},
		{"dist-to-hybrid", Config{Mode: Distributed, Procs: 2}, Config{Mode: Hybrid, Procs: 2, Threads: 2}},
	}
	for _, tr := range transitions {
		t.Run(tr.name, func(t *testing.T) {
			dir := t.TempDir()
			sink := &resultSink{}
			from := tr.from
			from.AppName = "stencil"
			from.Modules = modulesFor(from.Mode)
			from.CheckpointDir = dir
			from.StopCheckpointAt = 7
			eng, err := New(from, func() App { return newStencil(tN, tIters, sink) })
			if err != nil {
				t.Fatal(err)
			}
			err = eng.Run()
			var stopped *ErrStopped
			if !errors.As(err, &stopped) {
				t.Fatalf("first run: %v, want ErrStopped", err)
			}
			if stopped.SafePoint != 7 {
				t.Fatalf("stopped at %d, want 7", stopped.SafePoint)
			}

			to := tr.to
			to.AppName = "stencil"
			to.Modules = modulesFor(to.Mode)
			to.CheckpointDir = dir
			eng2, err := New(to, func() App { return newStencil(tN, tIters, sink) })
			if err != nil {
				t.Fatal(err)
			}
			if err := eng2.Run(); err != nil {
				t.Fatalf("restart run: %v", err)
			}
			if !eng2.Report().Restarted {
				t.Error("restart not recorded")
			}
			gridsEqual(t, tr.name, ref, sink.get())
		})
	}
}

// In-process migration on the stencil app, whose checkpoint module marks
// the sweeps Ignorable: the post-migration replay must skip them and
// restore the grid purely from the migration snapshot — the strongest
// fidelity check of the canonical capture.
func TestInProcessMigrationStencil(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	full := []*Module{stencilSMP(), stencilDist(), stencilCkpt()}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"smp-to-dist", Config{Mode: Shared, Threads: 2, Modules: full,
			AdaptAtSafePoint: 5, AdaptTo: AdaptTarget{Mode: Distributed, Procs: 3}}},
		{"dist-to-smp", Config{Mode: Distributed, Procs: 3, Modules: full,
			AdaptAtSafePoint: 5, AdaptTo: AdaptTarget{Mode: Shared, Threads: 3}}},
		{"seq-to-hybrid", Config{Mode: Sequential, Modules: full,
			AdaptAtSafePoint: 5, AdaptTo: AdaptTarget{Mode: Hybrid, Procs: 2, Threads: 2}}},
		{"hybrid-to-seq", Config{Mode: Hybrid, Procs: 2, Threads: 2, Modules: full,
			AdaptAtSafePoint: 5, AdaptTo: AdaptTarget{Mode: Sequential}}},
		{"tcp-to-smp", Config{Mode: Distributed, Procs: 2, TCP: true, Modules: full,
			AdaptAtSafePoint: 5, AdaptTo: AdaptTarget{Mode: Shared, Threads: 2}}},
		// With TCP configured, the migration target's world is built over a
		// fresh TCP transport — the fixed-world constraint only ever bound
		// in-place resizing, not executor rebuilds.
		{"smp-to-tcp", Config{Mode: Shared, Threads: 2, TCP: true, Modules: full,
			AdaptAtSafePoint: 5, AdaptTo: AdaptTarget{Mode: Distributed, Procs: 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, rep := runStencil(t, tc.cfg)
			gridsEqual(t, tc.name, ref, got)
			if rep.Migrations != 1 || !rep.Adapted {
				t.Fatalf("migration not recorded: %+v", rep)
			}
		})
	}
}

// Migration composes with in-place adaptation: reshape the team, migrate to
// a world, reshape the world — all inside one Run.
func TestMigrationComposesWithResizing(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	full := []*Module{stencilSMP(), stencilDist(), stencilCkpt()}
	got, rep := runStencil(t, Config{
		Mode: Shared, Threads: 2, Modules: full,
		Policy: Schedule(
			AdaptStep{At: 3, Target: AdaptTarget{Threads: 4}},
			AdaptStep{At: 6, Target: AdaptTarget{Mode: Distributed, Procs: 2}},
			AdaptStep{At: 9, Target: AdaptTarget{Procs: 4}},
		),
	})
	gridsEqual(t, "resize-migrate-resize", ref, got)
	if rep.Migrations != 1 {
		t.Fatalf("want 1 migration, got %+v", rep)
	}
}

func TestParseMode(t *testing.T) {
	for m := Sequential; m <= Hybrid; m++ {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("mpi"); err == nil {
		t.Fatal("ParseMode accepted an unknown name")
	}
}

// The four stock executors expose the deployment they implement and whether
// they spawn teams; the engine builds them from the current topology.
func TestStockExecutors(t *testing.T) {
	for _, tc := range []struct {
		mode  Mode
		teams bool
	}{
		{Sequential, false}, {Shared, true}, {Distributed, false}, {Hybrid, true},
	} {
		e := &Engine{curMode: tc.mode}
		x, err := newExecutor(e)
		if err != nil {
			t.Fatalf("%v: %v", tc.mode, err)
		}
		if x.Mode() != tc.mode || x.Teams() != tc.teams {
			t.Fatalf("%v: Mode()=%v Teams()=%v", tc.mode, x.Mode(), x.Teams())
		}
	}
	if _, err := newExecutor(&Engine{curMode: Mode(7)}); err == nil {
		t.Fatal("executor built for an unknown mode")
	}
}

func TestConfigValidation(t *testing.T) {
	mk := func(cfg Config) error {
		_, err := New(cfg, func() App { return newStencil(4, 1, &resultSink{}) })
		return err
	}
	if err := mk(Config{Mode: Sequential, AdaptAtSafePoint: 1, AdaptTo: AdaptTarget{Threads: 2}}); err == nil {
		t.Error("sequential runtime adaptation accepted")
	}
	if err := mk(Config{Mode: Hybrid, AdaptAtSafePoint: 1, AdaptTo: AdaptTarget{Procs: 2}}); err == nil {
		t.Error("hybrid world resizing accepted")
	}
	if err := mk(Config{Mode: Distributed, TCP: true, AdaptAtSafePoint: 1, AdaptTo: AdaptTarget{Procs: 4}}); err == nil {
		t.Error("TCP world resizing accepted")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	bad := NewModule("bad").SafeData("NoSuchField")
	sink := &resultSink{}
	eng, err := New(Config{Mode: Sequential, Modules: []*Module{bad}},
		func() App { return newStencil(4, 1, sink) })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err == nil {
		t.Error("unknown field accepted")
	}
}

// Sequential deployment with zero modules must work: that is the
// "unplugged" base program.
func TestUnpluggedSequential(t *testing.T) {
	sink := &resultSink{}
	eng, err := New(Config{Mode: Sequential}, func() App { return newStencil(8, 3, sink) })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.get() == nil {
		t.Fatal("no result")
	}
}
