package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

func trackerState(sp uint64, vec []float64) *serial.Snapshot {
	s := serial.NewSnapshot("tapp", "seq", sp)
	s.Fields["vec"] = serial.Float64s(vec)
	s.Fields["it"] = serial.Int64(int64(sp))
	return s
}

// TestDeltaTrackerCadence verifies the full/delta rhythm: a full base
// first, then compactEvery deltas, then a full compaction again.
func TestDeltaTrackerCadence(t *testing.T) {
	tr := newDeltaTracker(2)
	vec := make([]float64, 2*serial.DeltaChunkElems)
	kinds := ""
	for sp := uint64(1); sp <= 6; sp++ {
		vec[0] = float64(sp) // one chunk changes per capture
		full, delta := tr.capture(trackerState(sp, vec), false)
		switch {
		case full != nil && delta == nil:
			kinds += "F"
		case delta != nil && full == nil:
			kinds += "d"
			if delta.BaseSP == 0 || delta.BaseSP >= sp {
				t.Fatalf("capture %d: delta BaseSP=%d", sp, delta.BaseSP)
			}
		default:
			t.Fatalf("capture %d returned both or neither", sp)
		}
	}
	if kinds != "FddFdd" {
		t.Fatalf("capture cadence %q, want FddFdd", kinds)
	}
}

// TestDeltaTrackerDeltaCarriesOnlyChanges checks the capture-side
// bandwidth win: an untouched large field contributes nothing.
func TestDeltaTrackerDeltaCarriesOnlyChanges(t *testing.T) {
	tr := newDeltaTracker(8)
	vec := make([]float64, 4*serial.DeltaChunkElems)
	tr.capture(trackerState(1, vec), false)
	vec[0] = 42 // touch exactly one chunk
	_, d := tr.capture(trackerState(2, vec), true)
	if d == nil {
		t.Fatal("second capture was not a delta")
	}
	maxBytes := 8*serial.DeltaChunkElems + 64 // one chunk + the scalar
	if got := d.DataBytes(); got > maxBytes {
		t.Fatalf("delta carries %d bytes for a one-chunk change (max %d)", got, maxBytes)
	}
}

// gateStore blocks every save until released, so tests can park captures
// behind an in-flight write deterministically.
type gateStore struct {
	*ckpt.Mem
	mu   sync.Mutex
	gate chan struct{}
}

func newGateStore() *gateStore {
	return &gateStore{Mem: ckpt.NewMem(), gate: make(chan struct{})}
}

func (s *gateStore) release() {
	s.mu.Lock()
	close(s.gate)
	s.gate = make(chan struct{})
	s.mu.Unlock()
}

func (s *gateStore) open() {
	s.mu.Lock()
	close(s.gate)
	s.gate = nil
	s.mu.Unlock()
}

func (s *gateStore) Save(snap *serial.Snapshot) error {
	s.maybeWait()
	return s.Mem.Save(snap)
}

func (s *gateStore) SaveDelta(d *serial.Delta) error {
	s.maybeWait()
	return s.Mem.SaveDelta(d)
}

func (s *gateStore) maybeWait() {
	s.mu.Lock()
	gate := s.gate
	s.mu.Unlock()
	if gate != nil {
		<-gate
	}
}

// TestAsyncWriterFoldsSupersededDelta parks two delta captures behind an
// in-flight full save and verifies they are folded into ONE chain link that
// carries both captures' changes — never dropped — and that the on-disk
// chain has no gaps.
func TestAsyncWriterFoldsSupersededDelta(t *testing.T) {
	store := newGateStore()
	sink := newCkptSink(store)
	var mu sync.Mutex
	saves := 0
	folds := 0
	w := newAsyncWriter(sink,
		func(time.Duration, int, bool) { mu.Lock(); saves++; mu.Unlock() },
		func() { mu.Lock(); folds++; mu.Unlock() })
	defer w.close()

	tr := newDeltaTracker(8)
	vec := make([]float64, 2*serial.DeltaChunkElems)
	full, _ := tr.capture(trackerState(1, vec), true)
	w.submitFull(full) // writer blocks inside store.Save

	vec[0] = 1 // chunk 0
	_, d1 := tr.capture(trackerState(2, vec), true)
	w.submitDelta(d1)
	vec[serial.DeltaChunkElems] = 2 // chunk 1, disjoint from d1's change
	_, d2 := tr.capture(trackerState(3, vec), true)
	w.submitDelta(d2) // must fold with the parked d1

	store.release() // let the full land
	store.open()    // and everything after flow freely
	if err := w.drain(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	gotSaves, gotFolds := saves, folds
	mu.Unlock()
	if gotSaves != 2 {
		t.Fatalf("%d saves persisted, want 2 (full + folded delta)", gotSaves)
	}
	if gotFolds != 1 {
		t.Fatalf("%d folds recorded, want 1", gotFolds)
	}
	snap, found, err := ckpt.LoadResume(store, "tapp")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if snap.SafePoints != 3 {
		t.Fatalf("materialised sp=%d, want 3", snap.SafePoints)
	}
	if snap.Fields["vec"].Fs[0] != 1 {
		t.Fatal("folded delta lost the superseded capture's chunk")
	}
	if snap.Fields["vec"].Fs[serial.DeltaChunkElems] != 2 {
		t.Fatal("folded delta lost the newer capture's chunk")
	}
}

// failDeltaStore fails the first SaveDelta and succeeds afterwards.
type failDeltaStore struct {
	*ckpt.Mem
	mu    sync.Mutex
	fails int
}

func (s *failDeltaStore) SaveDelta(d *serial.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fails == 0 {
		s.fails++
		return errDeltaGone
	}
	return s.Mem.SaveDelta(d)
}

var errDeltaGone = fmt.Errorf("backend dropped the delta")

// TestAsyncWriterFailedDeltaPoisonsChain pins the failed-link rule: when a
// delta write fails, a parked or later successor must NOT be written — it
// would silently take the failed link's sequence number and yield a
// structurally valid chain missing that link's changes. The chain must
// stay at the base until a full snapshot starts a fresh one, and the error
// must surface.
func TestAsyncWriterFailedDeltaPoisonsChain(t *testing.T) {
	store := &failDeltaStore{Mem: ckpt.NewMem()}
	sink := newCkptSink(store)
	w := newAsyncWriter(sink, nil, nil)
	defer w.close()

	tr := newDeltaTracker(8)
	vec := make([]float64, 2*serial.DeltaChunkElems)
	full, _ := tr.capture(trackerState(1, vec), true)
	w.submitFull(full)
	if err := w.drain(); err != nil {
		t.Fatal(err)
	}

	vec[0] = 1
	_, d1 := tr.capture(trackerState(2, vec), true)
	w.submitDelta(d1) // fails inside the store
	vec[serial.DeltaChunkElems] = 2
	_, d2 := tr.capture(trackerState(3, vec), true)
	w.submitDelta(d2) // must be refused or dropped, never written as seq 1

	if err := w.drain(); !errors.Is(err, errDeltaGone) {
		t.Fatalf("drain: %v, want the delta write error", err)
	}
	snap, found, err := ckpt.LoadResume(store, "tapp")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if snap.SafePoints != 1 {
		t.Fatalf("chain advanced to sp %d past a failed link, want the base at 1", snap.SafePoints)
	}
	if snap.Fields["vec"].Fs[serial.DeltaChunkElems] == 2 {
		t.Fatal("a successor delta was written into the broken chain")
	}

	// A full capture starts a fresh chain and re-enables deltas.
	vec[9] = 9
	tr.sinceFull = tr.compactEvery // force the next capture full
	full2, _ := tr.capture(trackerState(4, vec), true)
	if full2 == nil {
		t.Fatal("expected a full capture")
	}
	w.submitFull(full2)
	vec[11] = 11
	_, d3 := tr.capture(trackerState(5, vec), true)
	w.submitDelta(d3)
	if err := w.drain(); err != nil {
		t.Fatal(err)
	}
	snap, _, err = ckpt.LoadResume(store, "tapp")
	if err != nil {
		t.Fatal(err)
	}
	if snap.SafePoints != 5 || snap.Fields["vec"].Fs[11] != 11 {
		t.Fatalf("fresh chain after recovery not materialised: sp=%d", snap.SafePoints)
	}
}

// TestAsyncWriterFullSupersedesDelta checks that a full capture drops a
// parked delta (a full snapshot is cumulative) and resets the chain.
func TestAsyncWriterFullSupersedesDelta(t *testing.T) {
	store := newGateStore()
	sink := newCkptSink(store)
	w := newAsyncWriter(sink, nil, nil)
	defer w.close()

	tr := newDeltaTracker(2)
	vec := make([]float64, 2*serial.DeltaChunkElems)
	full, _ := tr.capture(trackerState(1, vec), true)
	w.submitFull(full)

	vec[0] = 1
	_, d := tr.capture(trackerState(2, vec), true)
	w.submitDelta(d)
	vec[7] = 2
	_, d2 := tr.capture(trackerState(3, vec), true)
	if d2 == nil {
		t.Fatal("capture 3 should still be a delta")
	}
	w.submitDelta(d2)
	vec[9] = 3
	full2, _ := tr.capture(trackerState(4, vec), true) // compaction capture
	if full2 == nil {
		t.Fatal("capture 4 should be a full compaction")
	}
	w.submitFull(full2)

	store.open()
	if err := w.drain(); err != nil {
		t.Fatal(err)
	}
	snap, found, err := ckpt.LoadResume(store, "tapp")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if snap.SafePoints != 4 {
		t.Fatalf("materialised sp=%d, want the compacted base at 4", snap.SafePoints)
	}
	if got := snap.Fields["vec"].Fs; got[0] != 1 || got[7] != 2 || got[9] != 3 {
		t.Fatal("compacted base lost earlier changes")
	}
}
