package core

import (
	"sync"

	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

// deltaTracker is the capture half of incremental checkpointing: it owns
// the safe-point hash cache and decides, per periodic checkpoint, whether
// to capture a full snapshot (the first capture of a run, and every
// compactEvery-th thereafter — the compaction cadence that bounds chain
// length, restart cost and disk usage) or a delta holding only the
// fields/chunks whose content hash moved since the previous capture.
//
// It is only ever touched by the one line of execution that performs the
// save protocol (the master thread / master rank inside the safe-point
// barriers), so it needs no locking of its own.
type deltaTracker struct {
	hashes       *serial.StateHash
	compactEvery uint64
	baseSP       uint64 // safe point of the current chain's base snapshot
	sinceFull    uint64 // deltas captured since that base
	primed       bool   // a base has been captured this run
}

func newDeltaTracker(compactEvery int) *deltaTracker {
	return &deltaTracker{hashes: serial.NewStateHash(), compactEvery: uint64(compactEvery)}
}

// capture turns one snapshot into either a full capture (returned first)
// or a delta capture (returned second), updating the hash cache either way.
// clone selects deep-copied captures for the asynchronous pipeline; without
// it the returned capture aliases snap's live arrays and must be persisted
// before the barrier releases.
func (t *deltaTracker) capture(snap *serial.Snapshot, clone bool) (*serial.Snapshot, *serial.Delta) {
	if !t.primed || t.sinceFull >= t.compactEvery {
		// Full capture: becomes the new chain base. The hash cache is
		// refreshed so the next delta diffs against exactly this state.
		t.hashes.Rehash(snap)
		t.baseSP = snap.SafePoints
		t.sinceFull = 0
		t.primed = true
		if clone {
			snap = snap.Clone()
		}
		return snap, nil
	}
	d := t.hashes.Diff(snap, t.baseSP, clone)
	t.sinceFull++
	return nil, d
}

// ckptSink owns the persist side of the canonical checkpoint chain: it
// assigns contiguous chain sequence numbers at write time (so captures that
// were folded while parked in the asynchronous writer leave no gaps) and
// performs crash-safe compaction — a full save first persists the new base
// atomically, then clears the now-stale delta chain; a crash in between
// leaves stale deltas that LoadChain filters by BaseSP.
//
// The mutex serialises the asynchronous writer goroutine against the
// synchronous stop-snapshot path (which runs after a drain, but the lock
// keeps the invariant local rather than protocol-dependent).
type ckptSink struct {
	mu    sync.Mutex
	store ckpt.Store
	seq   uint64 // deltas persisted since the last full snapshot
}

func newCkptSink(store ckpt.Store) *ckptSink { return &ckptSink{store: store} }

// saveFull persists a full snapshot and resets the chain.
func (s *ckptSink) saveFull(snap *serial.Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.store.Save(snap); err != nil {
		return err
	}
	s.seq = 0
	return s.store.ClearDeltas(snap.App)
}

// saveDelta persists one delta as the next link of the chain.
func (s *ckptSink) saveDelta(d *serial.Delta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d.Seq = s.seq + 1
	if err := s.store.SaveDelta(d); err != nil {
		return err
	}
	s.seq++
	return nil
}
