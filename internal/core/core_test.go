package core

import (
	"sync"

	"ppar/internal/partition"
	"ppar/internal/team"
)

// stencilApp is the base program used throughout the engine tests: a
// red-black five-point stencil over an N×N grid, the structure of the
// paper's JGF SOR benchmark. It is written as plain sequential code with
// advisable calls/loops; every parallel, checkpoint and adaptation
// behaviour comes from the modules below.
type stencilApp struct {
	G     [][]float64
	N     int
	Iters int

	sink *resultSink
}

// resultSink receives the master's final grid, so tests can compare
// deployments (distributed modes have one app instance per rank; only the
// master's matters after the final gather).
type resultSink struct {
	mu sync.Mutex
	G  [][]float64
}

func (s *resultSink) put(g [][]float64) {
	cp := make([][]float64, len(g))
	for i := range g {
		cp[i] = append([]float64(nil), g[i]...)
	}
	s.mu.Lock()
	s.G = cp
	s.mu.Unlock()
}

func (s *resultSink) get() [][]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.G
}

func newStencil(n, iters int, sink *resultSink) *stencilApp {
	a := &stencilApp{N: n, Iters: iters, sink: sink}
	a.G = make([][]float64, n)
	for i := range a.G {
		a.G[i] = make([]float64, n)
		for j := range a.G[i] {
			a.G[i][j] = float64((i*31+j*17)%100) / 100
		}
	}
	return a
}

func (a *stencilApp) Main(ctx *Ctx) {
	ctx.Call("run", a.run)
	ctx.Call("report", func(*Ctx) { a.sink.put(a.G) })
}

func (a *stencilApp) run(ctx *Ctx) {
	for it := 0; it < a.Iters; it++ {
		ctx.Call("red", a.red)
		ctx.Call("black", a.black)
		ctx.Call("iter", func(*Ctx) {})
	}
}

func (a *stencilApp) red(ctx *Ctx)   { a.sweep(ctx, 0) }
func (a *stencilApp) black(ctx *Ctx) { a.sweep(ctx, 1) }

func (a *stencilApp) sweep(ctx *Ctx, colour int) {
	ForSpan(ctx, "rows", 1, a.N-1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			start := 1 + (i+colour)%2
			row := a.G[i]
			up, down := a.G[i-1], a.G[i+1]
			for j := start; j < a.N-1; j += 2 {
				row[j] = 0.25 * (up[j] + down[j] + row[j-1] + row[j+1])
			}
		}
	})
}

// Modules: each is the Go analogue of one of the paper's aspect files.

func stencilSMP() *Module {
	return NewModule("stencil/smp").
		ParallelMethod("run").
		LoopSchedule("rows", team.Static, 1)
}

func stencilDist() *Module {
	return NewModule("stencil/dist").
		PartitionedField("G", partition.Block).
		LoopPartition("rows", "G").
		UpdateBefore("red", "G").
		UpdateBefore("black", "G").
		ScatterBefore("run", "G").
		GatherAfter("run", "G").
		OnMaster("report")
}

func stencilCkpt() *Module {
	return NewModule("stencil/ckpt").
		SafeData("G").
		SafePointAfter("iter").
		Ignorable("red", "black")
}

func modulesFor(mode Mode) []*Module {
	switch mode {
	case Sequential:
		// The checkpoint module plugs into the strict sequential base
		// too — that is the paper's whole point (§IV.A: the programmer
		// specifies checkpointing on the sequential version only).
		return []*Module{stencilCkpt()}
	case Shared:
		return []*Module{stencilSMP(), stencilCkpt()}
	case Distributed:
		return []*Module{stencilDist(), stencilCkpt()}
	case Hybrid:
		return []*Module{stencilSMP(), stencilDist(), stencilCkpt()}
	}
	return nil
}
