package core

import (
	"ppar/internal/ckpt"
	"ppar/internal/team"
)

func newJoinReplay(target uint64) *ckpt.Replay { return ckpt.NewReplay(target) }

// In-place reshaping constraints, shared between the static normalize
// checks and the executors' run-time ResizeErr. Each names the in-process
// migration path (AdaptTarget.Mode) where it now applies.
const (
	seqCannotResizeMsg = "core: Sequential mode cannot adapt in place (it has no machinery); " +
		"migrate in-process to another mode with AdaptTarget.Mode, use Shared with Threads=1, or adaptation by restart"
	smpCannotResizeWorldMsg = "core: shared mode has no world to resize; " +
		"migrate in-process to Distributed or Hybrid with AdaptTarget.Mode, or use adaptation by restart"
	hybridCannotResizeMsg = "core: hybrid mode supports run-time thread adaptation, in-process migration " +
		"(AdaptTarget.Mode) and restart-based adaptation, not in-place world resizing"
	tcpCannotResizeMsg = "core: the TCP transport has a fixed world size; use the in-process transport, " +
		"an in-process migration (AdaptTarget.Mode, which rebuilds the transport), or adaptation by restart"
	taskCannotResizeWorldMsg = "core: task mode supports run-time thread adaptation and in-process migration " +
		"(AdaptTarget.Mode), not in-place world resizing — its balancer moves work between the existing ranks instead"
)

// adaptNow applies an in-place adaptation at safe point sp. Inside a region
// it reshapes the thread team; at rank level it reshapes the world. Targets
// the executor cannot honour abort the run loudly: the legacy config fields
// are rejected statically in normalize, but policy- and RequestAdapt-
// sourced targets are only seen here. (Targets with a different Mode never
// reach this point — SafePoint routes them to migrateCheckpoint.)
func (c *Ctx) adaptNow(sp uint64, t AdaptTarget) {
	e := c.eng
	if t.Threads > 0 || t.Procs > 0 {
		if err := e.exec.ResizeErr(t, c.Procs()); err != nil {
			panic(abortToken{msg: err.Error()})
		}
	}
	if c.worker != nil {
		if t.Threads > 0 {
			c.adaptThreads(sp, t.Threads)
		}
		return
	}
	if c.comm != nil && t.Procs > 0 {
		c.adaptProcs(sp, t.Procs)
	}
}

// adaptThreads implements §IV.B for shared memory. Expansion: new workers
// are spawned, replay the region (skipping ignorable methods and loop
// bodies) up to the current safe point, then join the team at a resize
// barrier — "each thread will get the call stack that it would have if the
// program ran with concurrency activated from the start". Contraction:
// surplus workers retire at the resize barrier and run empty operations to
// the region end — "shutdown is made gracefully by executing methods with
// empty operations until the thread gets to the end of the parallel
// region". Thread-local values of new workers are seeded from the master
// ("thread local variables are updated with the value of the main thread").
func (c *Ctx) adaptThreads(sp uint64, m int) {
	e := c.eng
	w := c.worker
	w.Barrier() // entry rendezvous: every worker is at safe point sp
	if !w.IsMaster() {
		w.Barrier() // pairs with the master's resize barrier
		return
	}

	n := w.Team().Size()
	if m == n {
		w.MasterResize(n) // still a barrier so the others stay paired
		return
	}
	if m > n {
		// The join object is team-local: in hybrid deployments every
		// rank's team adapts concurrently and must not share state.
		join := &smpJoin{ready: make(chan *Ctx, m-n), gate: make(chan struct{}), sp: sp}
		regionSP := sp - c.regionStartSp
		for i := 0; i < m-n; i++ {
			w.Team().Spawn(func(nw *team.Worker) {
				jc := c.cloneForJoin(nw, regionSP, join)
				if tok := e.guard(func() { c.regionFn(jc) }); tok != nil {
					e.noteToken(tok)
				}
			})
		}
		joined := make([]*Ctx, 0, m-n)
		for len(joined) < m-n {
			joined = append(joined, <-join.ready)
		}
		w.MasterResize(m)
		tls := w.TLSSnapshot()
		for _, jc := range joined {
			for k, v := range tls {
				jc.worker.SetTLS(k, v)
			}
			jc.spCount = sp
			jc.worker.AlignSeqs(w)
			jc.worker.SetReplaying(false)
		}
		close(join.gate)
	} else {
		w.MasterResize(m)
	}
	e.curThreads.Store(int64(m))
	e.recordAdapted()
	if c.IsMasterRank() {
		e.notifyAdapt(sp)
	}
}

// completeJoin is reached when a replaying line of execution has counted
// enough safe points. Team joiners hand themselves to the master and wait
// at the gate; world joiners take part in the data handoff (the scatter of
// partitioned fields and broadcast of replicated fields that the incumbents
// perform on their side of the protocol).
func (c *Ctx) completeJoin() {
	if c.worker != nil {
		if c.joinVia == nil {
			panic("core: worker completed join replay with no active expansion")
		}
		c.joinVia.ready <- c
		<-c.joinVia.gate
		return
	}
	// World joiner: the incumbents are executing the matching collectives
	// inside adaptProcs.
	for _, f := range c.fields.partitionedNames() {
		c.must(c.fields.scatterFrom(f, c.comm, 0, c.Procs()))
	}
	for _, f := range c.fields.replicatedNames() {
		c.must(c.fields.bcastField(f, c.comm, 0))
	}
	c.spCount = c.join.Target()
}

// Control-message byte values for the world-resize protocol.
const (
	ctlResized = byte(1)
	ctlRetire  = byte(2)
	ctlTag     = 0x3F0F
)

// adaptProcs implements §IV.B for distributed memory. The state of the
// aggregate is first merged at element 0 using the partition information;
// the world is resized; new replicas replay to the adaptation safe point;
// finally the partitioned state is redistributed under the new layout.
// Contraction retires the surplus replicas after the merge — "there are
// remote data that must migrate to the local node".
func (c *Ctx) adaptProcs(sp uint64, m int) {
	e := c.eng
	n := c.Procs()
	c.must(c.comm.Barrier())
	if e.sw != nil && m != n && c.IsMasterRank() {
		// A world resize changes every shard's packed shape: drain the
		// background pool so no old-world capture is folded with (or
		// written after) a new-world one. The sink itself re-anchors
		// lazily at the first capture under the new world.
		c.drainAsync()
	}
	// Merge: collect every partitioned field at element 0.
	for _, f := range c.fields.partitionedNames() {
		c.must(c.fields.gatherAt(f, c.comm, 0, n))
	}
	if c.IsMasterRank() {
		if m != n {
			c.must(c.comm.Group().Resize(m))
		}
		for r := n; r < m; r++ {
			c.must(e.exec.Spawn(e, r, c.comm.Seq(), sp))
		}
		// Tell the other incumbents the resize is visible.
		for r := 1; r < n; r++ {
			flag := ctlResized
			if r >= m {
				flag = ctlRetire
			}
			c.must(c.comm.Send(r, ctlTag, []byte{flag}))
		}
	} else {
		msg, err := c.comm.Recv(0, ctlTag)
		c.must(err)
		if len(msg) == 1 && msg[0] == ctlRetire {
			c.retiredRank = true
			return // empty operations to the end of Main
		}
	}
	// Redistribute under the new layout; the joiners execute the matching
	// collectives in completeJoin.
	for _, f := range c.fields.partitionedNames() {
		c.must(c.fields.scatterFrom(f, c.comm, 0, c.Procs()))
	}
	for _, f := range c.fields.replicatedNames() {
		c.must(c.fields.bcastField(f, c.comm, 0))
	}
	if m != n {
		e.curProcs.Store(int64(m))
		e.recordAdapted()
		if c.IsMasterRank() {
			e.notifyAdapt(sp)
		}
	}
}
