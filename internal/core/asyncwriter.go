package core

import (
	"sync"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

// asyncWriter is the background half of the asynchronous double-buffered
// checkpoint pipeline (Config.AsyncCheckpoint). The safe-point protocol
// only captures a deep copy of the safe data (the "double buffer") and
// hands it here; a single goroutine encodes and persists snapshots through
// the Store while computation proceeds.
//
// Backpressure: at most one snapshot is in flight. A capture submitted
// while a write is running parks in the pending slot; a newer capture
// supersedes a parked one (the superseded snapshot is never persisted —
// only the most recent capture matters as a restart point).
type asyncWriter struct {
	store       ckpt.Store
	onSave      func(d time.Duration, bytes int) // successful background write
	onSupersede func()

	mu       sync.Mutex
	cond     *sync.Cond
	pending  *serial.Snapshot
	inFlight bool
	err      error // first write error since the last takeErr/drain
	closed   bool
	done     chan struct{}
}

func newAsyncWriter(store ckpt.Store, onSave func(time.Duration, int), onSupersede func()) *asyncWriter {
	w := &asyncWriter{store: store, onSave: onSave, onSupersede: onSupersede, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

func (w *asyncWriter) loop() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for w.pending == nil && !w.closed {
			w.cond.Wait()
		}
		if w.pending == nil {
			w.mu.Unlock()
			return // closed and drained
		}
		snap := w.pending
		w.pending = nil
		w.inFlight = true
		w.mu.Unlock()

		start := time.Now()
		err := w.store.Save(snap)

		w.mu.Lock()
		w.inFlight = false
		if err != nil {
			if w.err == nil {
				w.err = err
			}
		} else if w.onSave != nil {
			w.onSave(time.Since(start), snap.DataBytes())
		}
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

// submit hands a captured snapshot to the writer without blocking; a
// capture already parked behind the in-flight write is superseded.
func (w *asyncWriter) submit(snap *serial.Snapshot) {
	w.mu.Lock()
	if w.pending != nil && w.onSupersede != nil {
		w.onSupersede()
	}
	w.pending = snap
	w.cond.Broadcast()
	w.mu.Unlock()
}

// drain blocks until no snapshot is pending or in flight, then returns
// (and clears) the first write error recorded since the last drain/takeErr.
// Stop snapshots are written synchronously AFTER a drain so that an older
// in-flight snapshot can never land on top of them.
func (w *asyncWriter) drain() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.pending != nil || w.inFlight {
		w.cond.Wait()
	}
	err := w.err
	w.err = nil
	return err
}

// takeErr returns (and clears) the first write error without waiting — the
// safe-point hook that surfaces failures while the run is still going.
func (w *asyncWriter) takeErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	w.err = nil
	return err
}

// close drains outstanding writes, stops the goroutine and returns any
// write error. Called once, at engine exit.
func (w *asyncWriter) close() error {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	w.err = nil
	return err
}
