package core

import (
	"sync"
	"time"

	"ppar/internal/serial"
)

// asyncWriter is the background half of the asynchronous double-buffered
// checkpoint pipeline (Config.AsyncCheckpoint). The safe-point protocol
// only captures a deep copy of the safe data (the "double buffer") and
// hands it here; a single goroutine encodes and persists captures through
// the chain sink while computation proceeds.
//
// Backpressure: at most one capture of each kind is parked. A newer FULL
// capture supersedes both parked slots — a full snapshot is cumulative
// state, so neither an older full nor an older delta matters as a restart
// point once it lands. A newer DELTA capture must never simply replace a
// parked delta: each delta only carries the chunks that changed since the
// previous capture, so dropping the parked one would silently lose the
// chunks the newer delta did not touch again. Instead the parked delta is
// FOLDED into the newer one (serial.MergeDeltas) and the merged link —
// covering both captures' changes, landing on the newer state — is written
// in the next free chain position; the sink assigns sequence numbers at
// write time, so folding leaves no gaps in the on-disk chain.
//
// When both slots are occupied the full snapshot is written first: a parked
// delta is always anchored at that parked full (captures are produced in
// order by one master), so the chain on disk stays base-then-links.
type asyncWriter struct {
	sink        *ckptSink
	onSave      func(d time.Duration, bytes int, delta bool) // successful background write
	onSupersede func()

	mu           sync.Mutex
	cond         *sync.Cond
	pendingFull  *serial.Snapshot
	pendingDelta *serial.Delta
	inFlight     bool
	err          error // first write error since the last takeErr/drain
	// brokenBase, when non-nil, is the BaseSP of a chain that lost a delta
	// write; later deltas of the SAME chain must not be written (see loop).
	brokenBase *uint64
	closed     bool
	done       chan struct{}
}

func newAsyncWriter(sink *ckptSink, onSave func(time.Duration, int, bool), onSupersede func()) *asyncWriter {
	w := &asyncWriter{sink: sink, onSave: onSave, onSupersede: onSupersede, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

func (w *asyncWriter) loop() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for w.pendingFull == nil && w.pendingDelta == nil && !w.closed {
			w.cond.Wait()
		}
		var full *serial.Snapshot
		var delta *serial.Delta
		switch {
		case w.pendingFull != nil:
			full = w.pendingFull
			w.pendingFull = nil
		case w.pendingDelta != nil:
			delta = w.pendingDelta
			w.pendingDelta = nil
		default:
			w.mu.Unlock()
			return // closed and drained
		}
		w.inFlight = true
		w.mu.Unlock()

		start := time.Now()
		var err error
		var bytes int
		if full != nil {
			err = w.sink.saveFull(full)
			bytes = full.DataBytes()
		} else {
			err = w.sink.saveDelta(delta)
			bytes = delta.DataBytes()
		}

		w.mu.Lock()
		w.inFlight = false
		var droppedSuccessor *serial.Delta
		switch {
		case err != nil:
			if w.err == nil {
				w.err = err
			}
			if delta != nil {
				// The failed link never landed, so the sink never assigned
				// its sequence number; a successor of the SAME chain would
				// silently take its place — a structurally valid chain
				// missing this link's changes. Drop such a successor and
				// refuse further same-chain deltas until a full snapshot
				// starts a fresh chain on disk (the engine aborts at the
				// next safe point anyway, via takeErr). Deltas anchored at
				// a newer base are safe either way: if that base's own
				// write failed too, their BaseSP cannot match the on-disk
				// base and LoadChain filters them.
				base := delta.BaseSP
				if w.pendingDelta != nil && w.pendingDelta.BaseSP == base {
					droppedSuccessor = w.pendingDelta
					w.pendingDelta = nil
				}
				w.brokenBase = &base
			}
		default:
			if full != nil {
				w.brokenBase = nil
			}
			if w.onSave != nil {
				w.onSave(time.Since(start), bytes, delta != nil)
			}
		}
		w.cond.Broadcast()
		w.mu.Unlock()
		// The written (or failed — it never landed and has no other owner)
		// capture is dead either way: hand its backing arrays to the pools so
		// the next safe point's clone allocates nothing. Deltas are recycled
		// whole — a merged delta carries its inputs' arrays by reference and
		// is the single owner by the time it reaches the writer.
		serial.RecycleSnapshot(full)
		serial.RecycleDelta(delta)
		serial.RecycleDelta(droppedSuccessor)
	}
}

// submitFull hands a captured full snapshot to the writer without blocking.
// It supersedes anything still parked: a full snapshot is cumulative, so an
// unwritten older full or delta carries nothing the new base does not.
func (w *asyncWriter) submitFull(snap *serial.Snapshot) {
	w.mu.Lock()
	supersededFull := w.pendingFull
	supersededDelta := w.pendingDelta
	if supersededFull != nil && w.onSupersede != nil {
		w.onSupersede()
	}
	if supersededDelta != nil {
		w.pendingDelta = nil
		if w.onSupersede != nil {
			w.onSupersede()
		}
	}
	w.pendingFull = snap
	w.cond.Broadcast()
	w.mu.Unlock()
	// Superseded captures were never written and have no other owner.
	serial.RecycleSnapshot(supersededFull)
	serial.RecycleDelta(supersededDelta)
}

// submitDelta hands a captured delta to the writer without blocking. A
// delta already parked behind the in-flight write is folded in, never
// dropped — see the type comment for why.
func (w *asyncWriter) submitDelta(d *serial.Delta) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.brokenBase != nil && d.BaseSP == *w.brokenBase {
		serial.RecycleDelta(d)
		return // see loop(): this chain is missing a link on disk
	}
	if w.pendingDelta != nil {
		merged, err := serial.MergeDeltas(w.pendingDelta, d)
		if err != nil {
			// Consecutive captures from one master always share a chain;
			// a merge failure is a protocol bug. Keep the chain honest by
			// recording it as a write error (the next safe point aborts).
			if w.err == nil {
				w.err = err
			}
			w.pendingDelta = nil
			w.cond.Broadcast()
			return
		}
		d = merged
		if w.onSupersede != nil {
			w.onSupersede()
		}
	}
	w.pendingDelta = d
	w.cond.Broadcast()
}

// drain blocks until no capture is pending or in flight, then returns
// (and clears) the first write error recorded since the last drain/takeErr.
// Stop snapshots are written synchronously AFTER a drain so that an older
// in-flight capture can never land on top of them.
func (w *asyncWriter) drain() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.pendingFull != nil || w.pendingDelta != nil || w.inFlight {
		w.cond.Wait()
	}
	err := w.err
	w.err = nil
	return err
}

// takeErr returns (and clears) the first write error without waiting — the
// safe-point hook that surfaces failures while the run is still going.
func (w *asyncWriter) takeErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	w.err = nil
	return err
}

// close drains outstanding writes, stops the goroutine and returns any
// write error. Called once, at engine exit.
func (w *asyncWriter) close() error {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	w.err = nil
	return err
}
