package core

import (
	"errors"
	"testing"
)

// TCP transport with checkpointing: the fixed-world transport must still
// checkpoint and recover (restart-based paths only).
func TestTCPCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	ref, _ := runStencil(t, Config{Mode: Sequential})
	sink := &resultSink{}
	cfg := Config{
		Mode: Distributed, Procs: 2, TCP: true, AppName: "stencil",
		Modules:       modulesFor(Distributed),
		CheckpointDir: dir, CheckpointEvery: 4, FailAtSafePoint: 9, FailRank: 1,
	}
	factory := func() App { return newStencil(tN, tIters, sink) }
	eng, err := New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("want failure, got %v", err)
	}
	cfg.FailAtSafePoint = 0
	eng2, err := New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	gridsEqual(t, "tcp-restart", ref, sink.get())
}

// Hybrid thread adaptation: every rank's team resizes at the same safe
// point; results unchanged.
func TestHybridThreadAdaptation(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	got, rep := runStencil(t, Config{
		Mode: Hybrid, Procs: 2, Threads: 2,
		AdaptAtSafePoint: 6, AdaptTo: AdaptTarget{Threads: 4},
	})
	gridsEqual(t, "hybrid-thread-adapt", ref, got)
	if !rep.Adapted {
		t.Error("hybrid adaptation not recorded")
	}
}

// Shard checkpoints restart into a DIFFERENT world size by repartitioning
// the manifest-committed shards through their recorded layouts — the
// re-sharding restore that used to be a loud failure.
func TestShardRestartResizedWorldResharded(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	dir := t.TempDir()
	sink := &resultSink{}
	factory := func() App { return newStencil(tN, tIters, sink) }
	cfg := Config{
		Mode: Distributed, Procs: 3, AppName: "stencil",
		Modules:          modulesFor(Distributed),
		CheckpointDir:    dir,
		CheckpointEvery:  4,
		ShardCheckpoints: true,
		FailAtSafePoint:  9,
	}
	eng, _ := New(cfg, factory)
	if err := eng.Run(); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("want failure, got %v", err)
	}
	wider := cfg
	wider.FailAtSafePoint = 0
	wider.Procs = 5
	eng2, err := New(wider, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatalf("widened shard restart: %v", err)
	}
	if !eng2.Report().Restarted {
		t.Error("widened shard restart not recorded as a restart")
	}
	gridsEqual(t, "resharded-restart", ref, sink.get())
}

// Back-to-back adaptations: grow then shrink in one run via the request
// queue.
func TestSequentialAdaptations(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	sink := &resultSink{}
	cfg := Config{Mode: Shared, Threads: 2, AppName: "stencil", Modules: modulesFor(Shared)}
	eng, err := New(cfg, func() App { return newStencil(tN, tIters, sink) })
	if err != nil {
		t.Fatal(err)
	}
	eng.RequestAdapt(AdaptTarget{Threads: 4})
	go func() {
		// A second request lands while the run progresses; it is applied
		// at a later safe point (or harmlessly missed on a fast run).
		eng.RequestAdapt(AdaptTarget{Threads: 3})
	}()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	gridsEqual(t, "requeued-adaptations", ref, sink.get())
}

// A second run after a clean finish must NOT replay (ledger cleared).
func TestCleanFinishClearsLedger(t *testing.T) {
	dir := t.TempDir()
	sink := &resultSink{}
	cfg := Config{
		Mode: Sequential, AppName: "stencil", Modules: modulesFor(Sequential),
		CheckpointDir: dir, CheckpointEvery: 4,
	}
	factory := func() App { return newStencil(tN, tIters, sink) }
	eng, _ := New(cfg, factory)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	eng2, _ := New(cfg, factory)
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if eng2.Report().Restarted {
		t.Error("clean second run replayed from a stale checkpoint")
	}
}

// Failure during the replay of a restart (double failure) recovers on the
// third run.
func TestDoubleFailure(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	dir := t.TempDir()
	sink := &resultSink{}
	factory := func() App { return newStencil(tN, tIters, sink) }
	cfg := Config{
		Mode: Sequential, AppName: "stencil", Modules: modulesFor(Sequential),
		CheckpointDir: dir, CheckpointEvery: 4, FailAtSafePoint: 9,
	}
	eng, _ := New(cfg, factory)
	if err := eng.Run(); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("first failure missing: %v", err)
	}
	// Second run fails again AFTER the replayed region (safe point 11 of
	// live execution resumes after loading sp 8).
	cfg.FailAtSafePoint = 11
	eng2, _ := New(cfg, factory)
	if err := eng2.Run(); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("second failure missing: %v", err)
	}
	cfg.FailAtSafePoint = 0
	eng3, _ := New(cfg, factory)
	if err := eng3.Run(); err != nil {
		t.Fatal(err)
	}
	gridsEqual(t, "double-failure", ref, sink.get())
}

// Checkpoints remain valid when taken after an adaptation changed the
// world: the canonical snapshot is mode-independent.
func TestCheckpointAfterAdaptation(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	dir := t.TempDir()
	sink := &resultSink{}
	factory := func() App { return newStencil(tN, tIters, sink) }
	cfg := Config{
		Mode: Distributed, Procs: 2, AppName: "stencil",
		Modules:          modulesFor(Distributed),
		CheckpointDir:    dir,
		CheckpointEvery:  4, // checkpoints at 4 and 8 bracket the adaptation
		AdaptAtSafePoint: 6, AdaptTo: AdaptTarget{Procs: 4},
		FailAtSafePoint: 10,
	}
	eng, _ := New(cfg, factory)
	if err := eng.Run(); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("failure missing: %v", err)
	}
	// Recover on yet another world size from the post-adaptation snapshot.
	rec := cfg
	rec.FailAtSafePoint = 0
	rec.AdaptAtSafePoint = 0
	rec.AdaptTo = AdaptTarget{}
	rec.Procs = 3
	eng2, err := New(rec, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	gridsEqual(t, "ckpt-after-adapt", ref, sink.get())
}
