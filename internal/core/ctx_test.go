package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"ppar/internal/partition"
)

// reduceApp is the shared result sink for the reduction tests.
type reduceApp struct {
	sum atomic.Uint64 // scaled integer form of the reduced sum
	max atomic.Uint64
}

func uint64FromFloat(f float64) uint64 { return uint64(int64(f * 1000)) }

func reduceModules(mode Mode) []*Module {
	par := NewModule("r/par").
		ParallelMethod("r.run").
		PartitionedField("Vals", partition.Block).
		LoopPartition("r.vals", "Vals")
	switch mode {
	case Sequential:
		return nil
	default:
		return []*Module{par}
	}
}

func TestSumAllMaxAllAcrossModes(t *testing.T) {
	vals := make([]float64, 37)
	wantSum, wantMax := 0.0, 0.0
	for i := range vals {
		vals[i] = float64((i*13)%17) / 4
		wantSum += vals[i]
		if vals[i] > wantMax {
			wantMax = vals[i]
		}
	}
	for _, cfg := range []Config{
		{Mode: Sequential},
		{Mode: Shared, Threads: 4},
		{Mode: Distributed, Procs: 3},
		{Mode: Hybrid, Procs: 2, Threads: 2},
	} {
		sink := &reduceApp{}
		cfg.AppName = "reduce"
		cfg.Modules = reduceModules(cfg.Mode)
		eng, err := New(cfg, func() App {
			// Each replica gets the full value array; the loop
			// partition keeps contributions disjoint.
			return &reduceShim{Vals: append([]float64(nil), vals...), out: sink}
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("%v: %v", cfg.Mode, err)
		}
		if got := sink.sum.Load(); got != uint64FromFloat(wantSum) {
			t.Errorf("%v: sum bits %d, want %d", cfg.Mode, got, uint64FromFloat(wantSum))
		}
		if got := sink.max.Load(); got != uint64FromFloat(wantMax) {
			t.Errorf("%v: max bits %d, want %d", cfg.Mode, got, uint64FromFloat(wantMax))
		}
	}
}

// reduceShim runs the same logic but reports into a shared sink.
type reduceShim struct {
	Vals []float64
	out  *reduceApp
}

func (a *reduceShim) Main(ctx *Ctx) { ctx.Call("r.run", a.run) }

func (a *reduceShim) run(ctx *Ctx) {
	local, localMax := 0.0, 0.0
	For(ctx, "r.vals", 0, len(a.Vals), func(i int) {
		local += a.Vals[i]
		if a.Vals[i] > localMax {
			localMax = a.Vals[i]
		}
	})
	s := SumAll(ctx, local)
	m := MaxAll(ctx, localMax)
	if ctx.IsMasterRank() && ctx.IsMasterThread() {
		a.out.sum.Store(uint64FromFloat(s))
		a.out.max.Store(uint64FromFloat(m))
	}
}

// adviceApp exercises Single / Master / Synchronised / barriers in a region.
type adviceApp struct {
	singles atomic.Int64
	masters atomic.Int64
	crit    atomic.Int64
	critMax atomic.Int64

	mu      sync.Mutex
	callers map[int]bool
}

func (a *adviceApp) Main(ctx *Ctx) { ctx.Call("a.region", a.region) }

func (a *adviceApp) region(ctx *Ctx) {
	a.mu.Lock()
	if a.callers == nil {
		a.callers = map[int]bool{}
	}
	a.callers[ctx.ThreadID()] = true
	a.mu.Unlock()
	for i := 0; i < 5; i++ {
		ctx.Call("a.single", func(*Ctx) { a.singles.Add(1) })
		ctx.Call("a.master", func(*Ctx) { a.masters.Add(1) })
		ctx.Call("a.sync", func(*Ctx) {
			cur := a.crit.Add(1)
			if cur > a.critMax.Load() {
				a.critMax.Store(cur)
			}
			a.crit.Add(-1)
		})
	}
}

func TestRegionAdviceSemantics(t *testing.T) {
	mod := NewModule("a").
		ParallelMethod("a.region").
		SingleMethod("a.single").
		BarrierAfter("a.single").
		MasterMethod("a.master").
		Synchronised("a.sync")
	app := &adviceApp{}
	eng, err := New(Config{Mode: Shared, Threads: 4, AppName: "advice", Modules: []*Module{mod}},
		func() App { return app })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := app.singles.Load(); got != 5 {
		t.Errorf("single ran %d times, want 5 (once per instance)", got)
	}
	if got := app.masters.Load(); got != 5 {
		t.Errorf("master ran %d times, want 5", got)
	}
	if app.critMax.Load() != 1 {
		t.Errorf("synchronised section concurrency %d", app.critMax.Load())
	}
	if len(app.callers) != 4 {
		t.Errorf("region ran on %d workers, want 4", len(app.callers))
	}
}

// In Sequential mode the same advice degrades to plain calls.
func TestAdviceDegradesSequentially(t *testing.T) {
	mod := NewModule("a").
		ParallelMethod("a.region").
		SingleMethod("a.single").
		MasterMethod("a.master").
		Synchronised("a.sync")
	app := &adviceApp{}
	eng, err := New(Config{Mode: Sequential, AppName: "advice", Modules: []*Module{mod}},
		func() App { return app })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if app.singles.Load() != 5 || app.masters.Load() != 5 {
		t.Errorf("sequential advice changed semantics: singles=%d masters=%d",
			app.singles.Load(), app.masters.Load())
	}
}

// OnMaster advice restricts a call to aggregate element 0.
func TestOnMasterRank(t *testing.T) {
	var ranks sync.Map
	mod := NewModule("a").OnMaster("a.io")
	eng, err := New(Config{Mode: Distributed, Procs: 4, AppName: "onmaster", Modules: []*Module{mod}},
		func() App { return &onMasterApp{ranks: &ranks} })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	count := 0
	ranks.Range(func(k, v any) bool { count++; return true })
	if count != 1 {
		t.Fatalf("OnMaster call ran on %d ranks", count)
	}
	if _, ok := ranks.Load(0); !ok {
		t.Fatal("OnMaster call did not run on rank 0")
	}
}

type onMasterApp struct{ ranks *sync.Map }

func (a *onMasterApp) Main(ctx *Ctx) {
	ctx.Call("a.io", func(c *Ctx) { a.ranks.Store(c.Rank(), true) })
}

// Unadvised loops in distributed mode run replicated (the SPMD default).
func TestUnpartitionedLoopRunsReplicated(t *testing.T) {
	var per sync.Map
	eng, err := New(Config{Mode: Distributed, Procs: 3, AppName: "repl"},
		func() App { return &replLoopApp{per: &per} })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		v, ok := per.Load(r)
		if !ok || v.(int) != 10 {
			t.Errorf("rank %d executed %v iterations, want 10", r, v)
		}
	}
}

type replLoopApp struct{ per *sync.Map }

func (a *replLoopApp) Main(ctx *Ctx) {
	n := 0
	For(ctx, "repl.loop", 0, 10, func(int) { n++ })
	a.per.Store(ctx.Rank(), n)
}

// Ctx identity accessors.
func TestCtxAccessors(t *testing.T) {
	var checked atomic.Bool
	mod := NewModule("a").ParallelMethod("a.region")
	eng, err := New(Config{Mode: Hybrid, Procs: 2, Threads: 3, AppName: "ids", Modules: []*Module{mod}},
		func() App { return &idsApp{checked: &checked, t: t} })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked.Load() {
		t.Fatal("no worker checked its identity")
	}
}

type idsApp struct {
	checked *atomic.Bool
	t       *testing.T
}

func (a *idsApp) Main(ctx *Ctx) {
	if ctx.Procs() != 2 {
		a.t.Errorf("Procs() = %d", ctx.Procs())
	}
	ctx.Call("a.region", func(c *Ctx) {
		if c.Threads() != 3 {
			a.t.Errorf("Threads() = %d", c.Threads())
		}
		if c.ThreadID() < 0 || c.ThreadID() >= 3 {
			a.t.Errorf("ThreadID() = %d", c.ThreadID())
		}
		if c.Mode() != Hybrid {
			a.t.Errorf("Mode() = %v", c.Mode())
		}
		a.checked.Store(true)
	})
}
