// Package core implements pluggable parallelisation with checkpointing and
// run-time adaptation — the programming model of Medeiros & Sobral (ICPP'11).
//
// The base program is ordinary sequential Go code whose advisable methods
// are routed through Ctx.Call and whose advisable loops through For/ForSpan.
// Parallelisation, checkpointing and adaptation behaviour is attached to
// those *names* by Module values kept in separate source files — the Go
// equivalent of the paper's separately-woven aspect modules (Go has no AOP,
// so the join points are explicit; see DESIGN.md). With no modules plugged
// and Sequential mode, Call is a direct function call and For a plain loop:
// the base code runs strictly sequentially, exactly as the paper's
// "unplugged" deployment.
//
// The same base code then runs:
//
//   - in Shared mode, where ParallelMethod regions execute on an OpenMP-style
//     resizable thread team (§III.B),
//   - in Distributed mode, SPMD over an MPI-like world with object-aggregate
//     semantics, partitioned fields and scatter/gather/halo templates
//     (§III.C),
//   - in Hybrid mode, both combined,
//
// with application-level checkpointing (SafeData / SafePoints /
// IgnorableMethods, §IV.A) and run-time adaptation (§IV.B) provided by the
// engine.
package core

import (
	"fmt"

	"ppar/internal/partition"
	"ppar/internal/team"
)

// FieldClass is the paper's run-time adaptation classification (§IV.B):
// "each class field must be marked as Replicated, Partitioned or Local (by
// default, fields are considered Local)".
type FieldClass int

const (
	// Local fields belong to each replica alone and are never moved.
	Local FieldClass = iota
	// Replicated fields hold the same value on every replica; adaptation
	// and restart broadcast the master's copy.
	Replicated
	// Partitioned fields are arrays whose ownership follows a partition
	// layout; adaptation and restart scatter/gather owned blocks.
	Partitioned
)

// String returns the class name.
func (c FieldClass) String() string {
	switch c {
	case Local:
		return "local"
	case Replicated:
		return "replicated"
	case Partitioned:
		return "partitioned"
	}
	return fmt.Sprintf("FieldClass(%d)", int(c))
}

// MethodAdvice collects every template attached to one advisable method
// name. It is assembled by merging Modules at engine start.
type MethodAdvice struct {
	// Parallel marks the method as a parallel region (ParallelMethod
	// template): in Shared/Hybrid modes a thread team executes it.
	Parallel bool
	// Synchronised executes the method in mutual exclusion among team
	// threads (the paper's synchronised template).
	Synchronised bool
	// Single executes the method on the first-arriving team thread only.
	Single bool
	// Master executes the method on the team master thread only.
	Master bool
	// OnMasterRank executes the method on aggregate element 0 only
	// (distributed modes); other ranks skip it.
	OnMasterRank bool
	// BarrierBefore/BarrierAfter insert team (and rank, in distributed
	// modes) barriers around the method.
	BarrierBefore bool
	BarrierAfter  bool
	// ScatterBefore/GatherAfter name partitioned fields whose owned
	// blocks are distributed from / collected at aggregate element 0
	// around the method (the paper's ScatterBefore/GatherAfter).
	ScatterBefore []string
	GatherAfter   []string
	// AllGatherAfter names partitioned fields whose owned blocks are
	// collected at element 0 and re-broadcast in full after the method —
	// the "update" flavour all-to-all codes (e.g. molecular dynamics,
	// where every replica needs all positions) use.
	AllGatherAfter []string
	// UpdateBefore names partitioned matrix fields whose halo rows are
	// exchanged with neighbour ranks before the method (the paper's
	// "updated" primitive, needed by stencils).
	UpdateBefore []string
	// SafePointBefore/SafePointAfter attach a safe point to the method
	// boundary (the SafePoints template).
	SafePointBefore bool
	SafePointAfter  bool
	// Ignorable marks the method as skippable during replay (the
	// IgnorableMethods template).
	Ignorable bool
}

// LoopAdvice collects the templates attached to one advisable loop id.
type LoopAdvice struct {
	// Schedule and Chunk select the team work-sharing schedule.
	Schedule team.Schedule
	Chunk    int
	// PartitionField restricts the loop to the indices of the named
	// partitioned field owned by this rank (distributed modes).
	PartitionField string
	// NoWait suppresses the implicit team barrier after the loop.
	NoWait bool
}

// FieldSpec describes one application field named by modules.
type FieldSpec struct {
	Name      string
	Class     FieldClass
	Layout    partition.Kind
	ChunkSize int // for block-cyclic layouts
	SafeData  bool
}

// Module is one pluggable parallelisation/fault-tolerance module: a named
// bundle of template declarations that the engine merges and applies to the
// base program. Modules are plugged by listing them in Config.Modules —
// selecting a different list yields a different deployment of the same base
// code.
type Module struct {
	Name    string
	methods map[string]*MethodAdvice
	loops   map[string]*LoopAdvice
	fields  map[string]*FieldSpec
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:    name,
		methods: map[string]*MethodAdvice{},
		loops:   map[string]*LoopAdvice{},
		fields:  map[string]*FieldSpec{},
	}
}

func (m *Module) method(name string) *MethodAdvice {
	a, ok := m.methods[name]
	if !ok {
		a = &MethodAdvice{}
		m.methods[name] = a
	}
	return a
}

func (m *Module) loop(id string) *LoopAdvice {
	a, ok := m.loops[id]
	if !ok {
		a = &LoopAdvice{Schedule: team.Static, Chunk: 1}
		m.loops[id] = a
	}
	return a
}

func (m *Module) field(name string) *FieldSpec {
	f, ok := m.fields[name]
	if !ok {
		f = &FieldSpec{Name: name, Class: Local, Layout: partition.Block, ChunkSize: 1}
		m.fields[name] = f
	}
	return f
}

// ParallelMethod declares the method a parallel region.
func (m *Module) ParallelMethod(name string) *Module {
	m.method(name).Parallel = true
	return m
}

// Synchronised declares mutual exclusion for the method.
func (m *Module) Synchronised(name string) *Module {
	m.method(name).Synchronised = true
	return m
}

// SingleMethod declares first-arriving-thread execution.
func (m *Module) SingleMethod(name string) *Module {
	m.method(name).Single = true
	return m
}

// MasterMethod declares master-thread-only execution.
func (m *Module) MasterMethod(name string) *Module {
	m.method(name).Master = true
	return m
}

// OnMaster declares aggregate-element-0-only execution.
func (m *Module) OnMaster(name string) *Module {
	m.method(name).OnMasterRank = true
	return m
}

// BarrierBefore inserts a barrier before the method.
func (m *Module) BarrierBefore(name string) *Module {
	m.method(name).BarrierBefore = true
	return m
}

// BarrierAfter inserts a barrier after the method.
func (m *Module) BarrierAfter(name string) *Module {
	m.method(name).BarrierAfter = true
	return m
}

// ScatterBefore distributes the named partitioned fields before the method.
func (m *Module) ScatterBefore(name string, fields ...string) *Module {
	a := m.method(name)
	a.ScatterBefore = append(a.ScatterBefore, fields...)
	return m
}

// GatherAfter collects the named partitioned fields after the method.
func (m *Module) GatherAfter(name string, fields ...string) *Module {
	a := m.method(name)
	a.GatherAfter = append(a.GatherAfter, fields...)
	return m
}

// UpdateBefore exchanges halo rows of the named fields before the method.
func (m *Module) UpdateBefore(name string, fields ...string) *Module {
	a := m.method(name)
	a.UpdateBefore = append(a.UpdateBefore, fields...)
	return m
}

// AllGatherAfter collects and re-broadcasts the named partitioned fields in
// full after the method.
func (m *Module) AllGatherAfter(name string, fields ...string) *Module {
	a := m.method(name)
	a.AllGatherAfter = append(a.AllGatherAfter, fields...)
	return m
}

// SafePointAfter attaches a safe point after the method.
func (m *Module) SafePointAfter(name string) *Module {
	m.method(name).SafePointAfter = true
	return m
}

// SafePointBefore attaches a safe point before the method.
func (m *Module) SafePointBefore(name string) *Module {
	m.method(name).SafePointBefore = true
	return m
}

// Ignorable marks methods skippable during replay.
func (m *Module) Ignorable(names ...string) *Module {
	for _, n := range names {
		m.method(n).Ignorable = true
	}
	return m
}

// LoopSchedule sets the team schedule of a loop.
func (m *Module) LoopSchedule(id string, sched team.Schedule, chunk int) *Module {
	a := m.loop(id)
	a.Schedule = sched
	a.Chunk = chunk
	return m
}

// LoopPartition associates the loop with a partitioned field: in
// distributed modes each rank iterates only its owned indices.
func (m *Module) LoopPartition(id, field string) *Module {
	m.loop(id).PartitionField = field
	return m
}

// LoopNoWait removes the implicit barrier after the loop.
func (m *Module) LoopNoWait(id string) *Module {
	m.loop(id).NoWait = true
	return m
}

// PartitionedField classifies a field as partitioned with the given layout.
func (m *Module) PartitionedField(name string, kind partition.Kind) *Module {
	f := m.field(name)
	f.Class = Partitioned
	f.Layout = kind
	return m
}

// PartitionedBlockCyclic classifies a field as block-cyclic partitioned.
func (m *Module) PartitionedBlockCyclic(name string, chunk int) *Module {
	f := m.field(name)
	f.Class = Partitioned
	f.Layout = partition.BlockCyclic
	f.ChunkSize = chunk
	return m
}

// ReplicatedField classifies a field as replicated.
func (m *Module) ReplicatedField(name string) *Module {
	m.field(name).Class = Replicated
	return m
}

// LocalField classifies a field as local (the default).
func (m *Module) LocalField(name string) *Module {
	m.field(name).Class = Local
	return m
}

// SafeData marks fields to be saved in checkpoints.
func (m *Module) SafeData(names ...string) *Module {
	for _, n := range names {
		m.field(n).SafeData = true
	}
	return m
}

// adviceTable is the merged view over all plugged modules.
type adviceTable struct {
	methods map[string]*MethodAdvice
	loops   map[string]*LoopAdvice
	fields  map[string]*FieldSpec
}

// mergeModules combines modules in order; later modules extend (and for
// scalar settings override) earlier ones, enabling the paper's module
// composition ("modules can also be composed to attain complex forms of
// parallelisation").
func mergeModules(mods []*Module) *adviceTable {
	t := &adviceTable{
		methods: map[string]*MethodAdvice{},
		loops:   map[string]*LoopAdvice{},
		fields:  map[string]*FieldSpec{},
	}
	for _, m := range mods {
		if m == nil {
			continue
		}
		for name, a := range m.methods {
			dst, ok := t.methods[name]
			if !ok {
				dst = &MethodAdvice{}
				t.methods[name] = dst
			}
			dst.Parallel = dst.Parallel || a.Parallel
			dst.Synchronised = dst.Synchronised || a.Synchronised
			dst.Single = dst.Single || a.Single
			dst.Master = dst.Master || a.Master
			dst.OnMasterRank = dst.OnMasterRank || a.OnMasterRank
			dst.BarrierBefore = dst.BarrierBefore || a.BarrierBefore
			dst.BarrierAfter = dst.BarrierAfter || a.BarrierAfter
			dst.SafePointBefore = dst.SafePointBefore || a.SafePointBefore
			dst.SafePointAfter = dst.SafePointAfter || a.SafePointAfter
			dst.Ignorable = dst.Ignorable || a.Ignorable
			dst.ScatterBefore = append(dst.ScatterBefore, a.ScatterBefore...)
			dst.GatherAfter = append(dst.GatherAfter, a.GatherAfter...)
			dst.UpdateBefore = append(dst.UpdateBefore, a.UpdateBefore...)
			dst.AllGatherAfter = append(dst.AllGatherAfter, a.AllGatherAfter...)
		}
		for id, a := range m.loops {
			cp := *a
			t.loops[id] = &cp
		}
		for name, f := range m.fields {
			dst, ok := t.fields[name]
			if !ok {
				cp := *f
				t.fields[name] = &cp
				continue
			}
			if f.Class != Local {
				dst.Class = f.Class
				dst.Layout = f.Layout
				dst.ChunkSize = f.ChunkSize
			}
			dst.SafeData = dst.SafeData || f.SafeData
		}
	}
	return t
}
