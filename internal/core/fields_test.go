package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"ppar/internal/mp"
	"ppar/internal/partition"
	"ppar/internal/serial"
	"ppar/internal/team"
)

type fieldApp struct {
	Scalar  float64
	Count   int
	Big     int64
	Vec     []float64
	Ints    []int
	Grid    [][]float64
	private int
}

func (a *fieldApp) Main(*Ctx) {}

func specsOf(m *Module) map[string]*FieldSpec { return mergeModules([]*Module{m}).fields }

func newFieldApp() *fieldApp {
	return &fieldApp{
		Scalar: 1.5, Count: 7, Big: 1 << 40,
		Vec:  []float64{1, 2, 3, 4, 5, 6},
		Ints: []int{10, 20, 30, 40},
		Grid: [][]float64{{1, 2}, {3, 4}, {5, 6}},
	}
}

func TestBindAndRoundTripAllKinds(t *testing.T) {
	m := NewModule("t").SafeData("Scalar", "Count", "Big", "Vec", "Ints", "Grid")
	app := newFieldApp()
	b, err := bindFields(app, specsOf(m))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := b.snapshot("t", "seq", 9)
	if err != nil {
		t.Fatal(err)
	}
	if snap.DataBytes() == 0 {
		t.Fatal("empty snapshot")
	}
	// A live snapshot aliases the application arrays (it is always encoded
	// immediately in real flows); round-trip through the wire form before
	// mutating, exactly as the engine does.
	frozen, err := decodeSnapshot(encodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	app.Scalar, app.Count, app.Big = 0, 0, 0
	app.Vec[0], app.Ints[0], app.Grid[0][0] = -1, -1, -1
	if err := b.restore(frozen); err != nil {
		t.Fatal(err)
	}
	want := newFieldApp()
	if app.Scalar != want.Scalar || app.Count != want.Count || app.Big != want.Big {
		t.Errorf("scalars not restored: %+v", app)
	}
	if !reflect.DeepEqual(app.Vec, want.Vec) || !reflect.DeepEqual(app.Ints, want.Ints) ||
		!reflect.DeepEqual(app.Grid, want.Grid) {
		t.Errorf("slices not restored: %+v", app)
	}
}

func TestRestoreWritesIntoExistingBackingArrays(t *testing.T) {
	m := NewModule("t").SafeData("Grid")
	app := newFieldApp()
	alias := app.Grid[1] // another reference to row 1
	b, err := bindFields(app, specsOf(m))
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := b.snapshot("t", "seq", 0)
	// Deep-copy the snapshot payload so mutation below does not alias it.
	cp := serial.Float64Matrix([][]float64{
		append([]float64(nil), snap.Fields["Grid"].F2[0]...),
		append([]float64(nil), snap.Fields["Grid"].F2[1]...),
		append([]float64(nil), snap.Fields["Grid"].F2[2]...),
	})
	snap.Fields["Grid"] = cp
	app.Grid[1][0] = 99
	if err := b.restore(snap); err != nil {
		t.Fatal(err)
	}
	if alias[0] != 3 {
		t.Errorf("restore did not write through existing backing array: alias[0]=%v", alias[0])
	}
}

func TestBindErrors(t *testing.T) {
	app := newFieldApp()
	if _, err := bindFields(app, specsOf(NewModule("t").SafeData("Nope"))); err == nil {
		t.Error("missing field accepted")
	}
	if _, err := bindFields(app, specsOf(NewModule("t").SafeData("private"))); err == nil {
		t.Error("unexported field accepted")
	}
	sa := &strAppT{S: "x"}
	if _, err := bindFields(sa, specsOf(NewModule("t").SafeData("S"))); err == nil {
		t.Error("string field accepted")
	}
	_ = app.private
}

type strAppT struct{ S string }

func (a *strAppT) Main(*Ctx) {}

func TestLayoutForMatrixAndSlice(t *testing.T) {
	m := NewModule("t").
		PartitionedField("Grid", partition.Block).
		PartitionedField("Vec", partition.Cyclic)
	b, err := bindFields(newFieldApp(), specsOf(m))
	if err != nil {
		t.Fatal(err)
	}
	lg, err := b.layoutFor("Grid", 2)
	if err != nil {
		t.Fatal(err)
	}
	if lg.N != 3 || lg.Kind != partition.Block {
		t.Errorf("grid layout %+v", lg)
	}
	lv, err := b.layoutFor("Vec", 3)
	if err != nil {
		t.Fatal(err)
	}
	if lv.N != 6 || lv.Kind != partition.Cyclic {
		t.Errorf("vec layout %+v", lv)
	}
	if _, err := b.layoutFor("Scalar", 2); err == nil {
		t.Error("scalar field accepted as partitionable")
	}
}

// Property: pack/unpack of owned blocks is the identity for every layout
// kind and rank count.
func TestQuickPackUnpackOwned(t *testing.T) {
	f := func(vals []float64, parts uint8, kindSel uint8) bool {
		p := int(parts%6) + 1
		kind := partition.Kind(kindSel % 3)
		app := &fieldApp{Vec: append([]float64(nil), vals...)}
		mod := NewModule("q")
		if kind == partition.BlockCyclic {
			mod.PartitionedBlockCyclic("Vec", 2)
		} else {
			mod.PartitionedField("Vec", kind)
		}
		b, err := bindFields(app, specsOf(mod))
		if err != nil {
			return false
		}
		l, err := b.layoutFor("Vec", p)
		if err != nil {
			return false
		}
		// Zero the array, then unpack every rank's packed block back.
		blocks := make([][]float64, p)
		for r := 0; r < p; r++ {
			blocks[r], err = b.packOwned("Vec", l, r)
			if err != nil {
				return false
			}
		}
		for i := range app.Vec {
			app.Vec[i] = -12345
		}
		for r := 0; r < p; r++ {
			if err := b.unpackOwned("Vec", l, r, blocks[r]); err != nil {
				return false
			}
		}
		return reflect.DeepEqual(app.Vec, vals) || len(vals) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// gather/scatter over a real communicator must reassemble the master's view
// and redistribute it unchanged.
func TestGatherScatterOverComm(t *testing.T) {
	const n, parts = 10, 3
	tr := mp.NewInProc(parts, nil)
	defer tr.Close()
	world := mp.NewWorld(tr, parts)
	mod := NewModule("t").PartitionedField("Vec", partition.Block)
	master := make(chan []float64, 1)
	err := world.Run(func(c *mp.Comm) error {
		app := &fieldApp{Vec: make([]float64, n)}
		b, err := bindFields(app, specsOf(mod))
		if err != nil {
			return err
		}
		l, _ := b.layoutFor("Vec", parts)
		// Each rank fills only its owned block with rank-tagged values.
		l.Indices(c.Rank(), func(i int) { app.Vec[i] = float64(100*c.Rank() + i) })
		if err := b.gatherAt("Vec", c, 0, parts); err != nil {
			return err
		}
		if c.Rank() == 0 {
			master <- append([]float64(nil), app.Vec...)
		}
		// Master overwrites, then scatters the new view.
		if c.Rank() == 0 {
			for i := range app.Vec {
				app.Vec[i] = float64(-i)
			}
		}
		if err := b.scatterFrom("Vec", c, 0, parts); err != nil {
			return err
		}
		ok := true
		l.Indices(c.Rank(), func(i int) {
			if app.Vec[i] != float64(-i) {
				ok = false
			}
		})
		if !ok {
			t.Errorf("rank %d: scatter did not deliver the master view", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := <-master
	l := partition.New(partition.Block, n, parts)
	for i := 0; i < n; i++ {
		want := float64(100*l.Owner(i) + i)
		if got[i] != want {
			t.Errorf("gathered[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestHaloExchangeUpdatesBoundaryRows(t *testing.T) {
	const rows, cols, parts = 6, 4, 2
	tr := mp.NewInProc(parts, nil)
	defer tr.Close()
	world := mp.NewWorld(tr, parts)
	mod := NewModule("t").PartitionedField("Grid", partition.Block)
	err := world.Run(func(c *mp.Comm) error {
		app := &fieldApp{Grid: make([][]float64, rows)}
		for i := range app.Grid {
			app.Grid[i] = make([]float64, cols)
		}
		b, err := bindFields(app, specsOf(mod))
		if err != nil {
			return err
		}
		l, _ := b.layoutFor("Grid", parts)
		lo, hi := l.Range(c.Rank())
		for i := lo; i < hi; i++ {
			for j := range app.Grid[i] {
				app.Grid[i][j] = float64(10*i + j)
			}
		}
		if err := b.haloExchange("Grid", c, parts); err != nil {
			return err
		}
		// Rank 0 owns rows [0,3): it must now hold row 3 from rank 1.
		// Rank 1 owns rows [3,6): it must now hold row 2 from rank 0.
		var ghost int
		if c.Rank() == 0 {
			ghost = hi
		} else {
			ghost = lo - 1
		}
		for j := 0; j < cols; j++ {
			if app.Grid[ghost][j] != float64(10*ghost+j) {
				t.Errorf("rank %d ghost row %d col %d = %v", c.Rank(), ghost, j, app.Grid[ghost][j])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShardSnapshotRoundTrip(t *testing.T) {
	const parts = 2
	mod := NewModule("t").
		PartitionedField("Vec", partition.Block).
		SafeData("Vec", "Scalar")
	app := newFieldApp()
	b, err := bindFields(app, specsOf(mod))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := b.shardSnapshot("t", 5, 1, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1's shard of Vec (block over 6, part 1 = indices 3..5).
	if got := snap.Fields["Vec"].Fs; !reflect.DeepEqual(got, []float64{4, 5, 6}) {
		t.Fatalf("shard payload %v", got)
	}
	// Wipe and restore the shard.
	app.Vec[3], app.Vec[4], app.Vec[5] = 0, 0, 0
	app.Scalar = 0
	if err := b.restoreShard(snap, 1, parts); err != nil {
		t.Fatal(err)
	}
	if app.Vec[3] != 4 || app.Vec[5] != 6 || app.Scalar != 1.5 {
		t.Fatalf("shard restore failed: %+v", app)
	}
	// The unowned block stays untouched.
	if app.Vec[0] != 1 {
		t.Fatal("restoreShard touched an unowned index")
	}
}

func TestModuleMerging(t *testing.T) {
	a := NewModule("a").ParallelMethod("run").SafeData("Vec").
		PartitionedField("Vec", partition.Block)
	b := NewModule("b").Ignorable("run").ScatterBefore("run", "Vec").
		LoopSchedule("l", team.Dynamic, 8)
	tbl := mergeModules([]*Module{a, b, nil})
	adv := tbl.methods["run"]
	if !adv.Parallel || !adv.Ignorable || len(adv.ScatterBefore) != 1 {
		t.Errorf("merged advice %+v", adv)
	}
	spec := tbl.fields["Vec"]
	if spec.Class != Partitioned || !spec.SafeData {
		t.Errorf("merged field %+v", spec)
	}
	if tbl.loops["l"].Chunk != 8 {
		t.Errorf("merged loop %+v", tbl.loops["l"])
	}
}

func TestFieldClassString(t *testing.T) {
	for c, want := range map[FieldClass]string{Local: "local", Replicated: "replicated", Partitioned: "partitioned"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Sequential: "seq", Shared: "smp", Distributed: "dist", Hybrid: "hybrid"} {
		if m.String() != want {
			t.Errorf("Mode.String() = %q, want %q", m.String(), want)
		}
	}
}
