package core

import (
	"fmt"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

// SafePoint marks a point in execution where a checkpoint can be taken and
// adaptation requests are serviced (§IV.A). In normal execution it costs
// one counter increment plus three atomic loads — the paper measures this
// as "less than 1% in most cases" (Figure 3). During replay it only counts
// progress toward the saved target.
func (c *Ctx) SafePoint() {
	if c.Retired() {
		//lint:ignore ppcollective §IV.B graceful shutdown: retired lines run empty operations to the region end, and every collective below passes retired workers through
		return
	}
	if c.join.Active() {
		if c.join.Step() {
			c.completeJoin()
			// The incumbents finish the activation safe point with the
			// Task-mode rebalance round and the periodic checkpoint when
			// one is due. A freshly joined line of execution must take part
			// in those collectives too — their barriers and gathers are
			// sized for the grown team — or the cohorts desync one phase
			// apart and deadlock.
			if c.eng.curMode == Task && c.comm != nil {
				c.maybeRebalance()
			}
			if sp := c.spCount; c.eng.dueAt(sp) {
				c.checkpoint(sp)
			}
		}
		return
	}
	if c.restart.Active() {
		if c.restart.Step() {
			c.loadAtTarget()
		}
		return
	}
	c.spCount++
	sp := c.spCount
	e := c.eng

	// Surface background checkpoint-write failures at the next safe point
	// the coordinator reaches, rather than only at engine exit.
	if c.isCoordinator() {
		e.liveSP.Store(sp)
		if err := e.takeAsyncErr(); err != nil {
			c.must(fmt.Errorf("async checkpoint write failed: %w", err))
		}
	}

	if e.cfg.FailAtSafePoint == sp && c.failHere() {
		e.failed.Store(true)
		panic(failToken{sp: sp, rank: c.Rank()})
	}
	// Policy-driven adaptation: Decide is a pure function of deterministic
	// run stats, so every line of execution (and, in hybrid deployments,
	// every rank's team) triggers independently without shared mutable
	// state — exactly like the former config-scheduled triggers it
	// subsumes. A target whose Mode differs from the running executor's is
	// an in-process migration; one naming the current mode (or none) is an
	// in-place reshaping.
	fired := false
	if p := e.policy; p != nil {
		switch t := p.Decide(c.runStats(sp)); {
		case t.Stop:
			c.stopCheckpoint(sp)
		case t.Mode != 0 && t.Mode != e.curMode:
			c.migrateCheckpoint(sp, t, nil)
		case !t.IsZero():
			c.adaptNow(sp, t)
			fired = true
		}
	}
	if at := e.scheduled.Load(); at != 0 && at == sp {
		// Dynamically scheduled request (RequestAdapt / RequestStop /
		// context cancellation path).
		if t := e.pending.Load(); t != nil && !fired {
			switch {
			case t.Stop:
				c.stopCheckpoint(sp)
			case t.Mode != 0 && t.Mode != e.curMode:
				c.migrateCheckpoint(sp, *t, t)
			default:
				c.adaptNow(sp, *t)
			}
		}
	} else if c.isCoordinator() {
		switch {
		case at == 0:
			if e.cancelled.Load() && e.pending.Load() == nil {
				// Context cancellation / RequestStop turns into a
				// scheduled checkpoint-and-stop request.
				e.pending.Store(&AdaptTarget{Stop: true})
			}
			if t := e.pending.Load(); t != nil {
				// Schedule for the NEXT safe point: every other thread
				// is guaranteed to observe the schedule before reaching
				// it, because consecutive safe points are separated by
				// a team barrier (the loop advice inserts one per
				// sweep).
				//
				// That guarantee covers thread teams only. Comm-coupled
				// ranks synchronise at collectives, not safe points —
				// buffered sends let a rank race far ahead of the
				// coordinator — so a stop or migration request is
				// aligned to the checkpoint cadence instead: at a due
				// safe point every rank takes the identical canonical
				// gather, so the stop/migration gather of the ranks
				// that saw the request is wire-compatible with the
				// periodic gather of any rank that had already raced
				// past it, and the collected snapshot is consistent.
				// (In shard mode the cadence collective is a barrier,
				// so the service point goes one past it — the barrier
				// orders the schedule before every rank's arrival.)
				// Racing ranks that never see the request unwind when
				// the master tears the transport down on its way out
				// (worldCore.rankMain). In-place resizes keep the
				// sp+1 schedule: their service leaves the run live, so
				// a misaligned collective cannot strand a peer.
				at := sp + 1
				if c.comm != nil && (t.Stop || (t.Mode != 0 && t.Mode != e.curMode)) {
					if due := e.nextDueAfter(sp); due != 0 {
						at = due
						if e.cfg.ShardCheckpoints {
							at = due + 1
						}
					}
				}
				e.scheduled.CompareAndSwap(0, at)
			}
		case sp > at:
			// The scheduled point has passed on every thread (team
			// lockstep); clear the dynamic state so a future
			// RequestAdapt can be scheduled.
			e.scheduled.Store(0)
			e.pending.Store(nil)
		}
	}
	// Task-mode cross-rank rebalancing runs before any periodic checkpoint,
	// so a due snapshot captures the post-move boundaries. The gate is the
	// same on every rank and thread (mode and topology are engine state), as
	// the collective inside requires.
	if e.curMode == Task && c.comm != nil {
		c.maybeRebalance()
	}
	if e.dueAt(sp) {
		c.checkpoint(sp)
	}
}

// runStats assembles the deterministic policy view at safe point sp. Every
// field is identical on every line of execution at the same safe point, as
// AdaptPolicy.Decide requires.
func (c *Ctx) runStats(sp uint64) RunStats {
	e := c.eng
	fulls, deltas, last := e.ckptCadence(sp)
	return RunStats{
		SafePoint:        sp,
		Mode:             e.curMode,
		Threads:          c.Threads(),
		Procs:            c.Procs(),
		Restarted:        e.restarted,
		FullSaves:        fulls,
		DeltaSaves:       deltas,
		LastCheckpointSP: last,
		Overdecompose:    e.cfg.Overdecompose,
		Rebalances:       int(c.fields.rebalances.Load()),
	}
}

// failHere decides whether this line of execution hosts the injected
// failure: the configured rank in distributed modes; every team thread (the
// process dies as a whole) in shared mode.
func (c *Ctx) failHere() bool {
	if c.comm != nil {
		return c.Rank() == c.eng.cfg.FailRank
	}
	return true
}

// isCoordinator reports whether this line of execution services the
// adaptation request queue: the master thread of rank 0.
func (c *Ctx) isCoordinator() bool {
	return c.IsMasterRank() && c.IsMasterThread()
}

// collectiveSave runs a save protocol under the mode-specific §IV.A
// synchronisation — the skeleton shared by periodic checkpoints, stop
// snapshots and migration snapshots. In shared memory (and hybrid) "we
// introduce a barrier before and another after the safe point. When all
// threads have reached the first barrier the master thread saves the data";
// on comm-active control lines the distributed leaf runs, elsewhere the
// local one.
func (c *Ctx) collectiveSave(local, dist func()) {
	switch {
	case c.worker != nil:
		c.worker.Barrier()
		if c.worker.IsMaster() {
			if c.commActive() {
				dist()
			} else {
				local()
			}
		}
		c.worker.Barrier()
	case c.commActive():
		dist()
	default:
		local()
	}
}

// gatherCanonical collects every partitioned field at the master rank — the
// collective half of the gather-at-master snapshot protocol. All ranks
// participate; afterwards the master's field copies are fully populated.
func (c *Ctx) gatherCanonical() {
	for _, f := range c.fields.partitionedNames() {
		c.must(c.fields.gatherAt(f, c.comm, 0, c.Procs()))
	}
}

// checkpoint runs the mode-specific save protocol of §IV.A at safe point
// sp. With AsyncCheckpoint the master only captures the double buffer
// between the barriers; the encode+persist overlaps computation.
func (c *Ctx) checkpoint(sp uint64) {
	c.collectiveSave(
		func() { c.localSave(sp, true) },
		func() { c.distSave(sp) },
	)
}

// localSave writes a canonical snapshot from this process's fields. With no
// store configured (a context-cancelled run without checkpointing) it is a
// no-op: the run still stops gracefully, it just leaves nothing to replay.
// periodic selects the configured pipeline (delta diffing and/or the
// asynchronous double buffer); checkpoint-and-stop saves pass false — a
// stop snapshot is the restart point and must be a full snapshot on stable
// storage before the run unwinds.
func (c *Ctx) localSave(sp uint64, periodic bool) {
	if c.eng.store == nil {
		return
	}
	start := time.Now()
	snap, err := c.fields.snapshot(c.eng.cfg.AppName, c.eng.curMode.String(), sp)
	c.must(err)
	if periodic {
		c.persistCanonical(snap, start)
		return
	}
	c.must(c.eng.sink.saveFull(snap))
	c.eng.recordSave(time.Since(start), snap.DataBytes(), false)
}

// persistCanonical routes one periodic canonical snapshot through the
// configured checkpoint pipeline: the delta tracker decides full vs
// incremental capture (and keeps the hash cache current), and the capture
// is either persisted synchronously under the barrier or handed to the
// background writer. Delta captures in the asynchronous path clone only
// the changed chunks — the bandwidth win the incremental pipeline exists
// for; full captures clone the whole snapshot as before.
func (c *Ctx) persistCanonical(snap *serial.Snapshot, start time.Time) {
	e := c.eng
	async := e.aw != nil
	full, delta := snap, (*serial.Delta)(nil)
	if e.tracker != nil {
		full, delta = e.tracker.capture(snap, async)
	} else if async {
		// Capture: deep-copy the named fields so computation can mutate
		// the live arrays the moment the barrier releases.
		full = snap.Clone()
	}
	switch {
	case async && full != nil:
		// Account the capture BEFORE handing it over: the background writer
		// owns it from the submit on and recycles its storage after writing.
		bytes := full.DataBytes()
		e.aw.submitFull(full)
		e.recordCapture(time.Since(start), bytes)
	case async:
		bytes := delta.DataBytes()
		e.aw.submitDelta(delta)
		e.recordCapture(time.Since(start), bytes)
	case full != nil:
		c.must(e.sink.saveFull(full))
		e.recordSave(time.Since(start), full.DataBytes(), false)
	default:
		c.must(e.sink.saveDelta(delta))
		e.recordSave(time.Since(start), delta.DataBytes(), true)
	}
}

// distSave implements the two distributed alternatives of §IV.A: local
// shards between two global barriers, or collection of partitioned data at
// the master — the latter "has the advantage of making it possible to
// restart the application on any of the execution modes". The shard path
// now keeps that advantage too: every shard records its field layouts, so
// a manifest-committed save repartitions into any mode at restart.
func (c *Ctx) distSave(sp uint64) {
	e := c.eng
	start := time.Now()
	if e.cfg.ShardCheckpoints {
		c.must(c.comm.Barrier())
		snap, err := c.fields.shardSnapshot(e.cfg.AppName, sp, c.Rank(), c.Procs())
		c.must(err)
		async := e.sw != nil
		cap := e.ssink.capture(c.Rank(), c.Procs(), e.curMode.String(), snap, async)
		capBytes := cap.dataBytes()
		if async {
			// Double-buffered per rank: only the capture happens between
			// the barriers; the bounded pool persists the links and commits
			// the wave's manifest in the background (and owns — then
			// recycles — the capture from the submit on).
			e.sw.submit(cap)
		} else {
			// Every rank persists its own link concurrently between the
			// barriers; whichever write completes the wave commits the
			// manifest, so the commit record is always written last.
			c.must(e.ssink.write(cap))
		}
		c.must(c.comm.Barrier())
		if c.IsMasterRank() {
			if async {
				e.recordCapture(time.Since(start), capBytes)
			} else {
				e.recordShardBlocked(time.Since(start), capBytes)
			}
		}
		return
	}
	c.gatherCanonical()
	if c.IsMasterRank() {
		snap, err := c.fields.snapshot(e.cfg.AppName, "canonical", sp)
		c.must(err)
		c.persistCanonical(snap, start)
	}
}

// stopCheckpoint takes a canonical snapshot and stops the run — the
// adaptation-by-restart path (Figures 6 and 7). All lines of execution
// reach the same safe point and unwind together. Stop snapshots are always
// written synchronously — they are the restart point — after draining the
// asynchronous writer, so an older in-flight snapshot can never land on
// top of them.
func (c *Ctx) stopCheckpoint(sp uint64) {
	c.collectiveSave(
		func() {
			c.drainAsync()
			c.localSave(sp, false)
		},
		func() { c.stopSaveDist(sp) },
	)
	panic(stopToken{sp: sp})
}

// drainAsync blocks until the background checkpoint machinery (canonical
// writer or shard pool) is idle, surfacing any write error it was holding.
func (c *Ctx) drainAsync() {
	e := c.eng
	if e.aw == nil && e.sw == nil {
		return
	}
	start := time.Now()
	var err error
	if e.aw != nil {
		err = e.aw.drain()
	}
	if e.sw != nil {
		if serr := e.sw.drain(); err == nil {
			err = serr
		}
	}
	e.recordDrain(time.Since(start))
	if err != nil {
		c.must(fmt.Errorf("async checkpoint write failed: %w", err))
	}
}

// takeAsyncErr collects (and clears) the first background write error from
// whichever asynchronous pipeline is active, without waiting.
func (e *Engine) takeAsyncErr() error {
	if e.aw != nil {
		if err := e.aw.takeErr(); err != nil {
			return err
		}
	}
	if e.sw != nil {
		if err := e.sw.takeErr(); err != nil {
			return err
		}
	}
	return nil
}

func (c *Ctx) stopSaveDist(sp uint64) {
	if c.eng.store == nil {
		return // all ranks agree: stop without a snapshot
	}
	start := time.Now()
	c.gatherCanonical()
	if c.IsMasterRank() {
		c.drainAsync()
		snap, err := c.fields.snapshot(c.eng.cfg.AppName, "canonical", sp)
		c.must(err)
		c.must(c.eng.sink.saveFull(snap))
		c.eng.recordSave(time.Since(start), snap.DataBytes(), false)
	}
}

// loadAtTarget restores the checkpointed data once replay reaches the saved
// safe-point count (§IV.A, Fig. 2b step 4). The restore protocol mirrors
// the save protocol of each mode.
func (c *Ctx) loadAtTarget() {
	e := c.eng
	replayDone := time.Now()
	target := c.restart.Target()
	switch {
	case c.worker != nil:
		// "A barrier is introduced after the safe point where the
		// checkpoint was taken. The master thread reads the saved data
		// when reaching that safe point and then releases the other
		// threads waiting at the barrier."
		c.worker.Barrier()
		if c.worker.IsMaster() {
			start := time.Now()
			if c.commActive() {
				c.distLoad()
			} else {
				c.must(c.fields.restore(c.mustSnap()))
			}
			if c.IsMasterRank() {
				e.recordLoad(replayDone, time.Since(start))
			}
		}
		c.worker.Barrier()
	case c.commActive():
		start := time.Now()
		c.distLoad()
		if c.IsMasterRank() {
			e.recordLoad(replayDone, time.Since(start))
		}
	default:
		start := time.Now()
		c.must(c.fields.restore(c.mustSnap()))
		e.recordLoad(replayDone, time.Since(start))
	}
	c.spCount = target
}

// mustSnap returns the canonical snapshot found at start-up (materialising
// it from the store — base plus delta chain — if the engine deferred that).
func (c *Ctx) mustSnap() *serial.Snapshot {
	e := c.eng
	if e.resumeSnap != nil {
		return e.resumeSnap
	}
	snap, found, err := ckpt.LoadResume(e.store, e.cfg.AppName)
	c.must(err)
	if !found {
		panic(abortToken{msg: fmt.Sprintf("core: replay reached target %d but no canonical snapshot exists", c.restart.Target())})
	}
	return snap
}

// distLoad restores a distributed run: from the canonical snapshot (rank 0
// loads, partitioned fields are scattered, replicated fields broadcast —
// "the data must be scattered across processors after being loaded",
// Figure 5) or from per-rank shards.
func (c *Ctx) distLoad() {
	e := c.eng
	if e.shardResume {
		var snap *serial.Snapshot
		if e.shardSnaps != nil {
			snap = e.shardSnaps[c.Rank()] // manifest-gated materialised chain
		} else {
			// Legacy pre-manifest snapshots: one file per rank, loadable
			// only into the identical world.
			var found bool
			var err error
			snap, found, err = e.store.LoadShard(e.cfg.AppName, c.Rank())
			c.must(err)
			if !found {
				panic(abortToken{msg: fmt.Sprintf("core: rank %d has no shard snapshot (pre-manifest shard checkpoints require restarting with the same number of processes)", c.Rank())})
			}
		}
		c.must(c.fields.restoreShard(snap, c.Rank(), c.Procs()))
		c.must(c.comm.Barrier())
		return
	}
	if c.IsMasterRank() {
		c.must(c.fields.restore(c.mustSnap()))
	}
	for _, f := range c.fields.partitionedNames() {
		c.must(c.fields.scatterFrom(f, c.comm, 0, c.Procs()))
	}
	for _, f := range c.fields.replicatedNames() {
		c.must(c.fields.bcastField(f, c.comm, 0))
	}
}
