package core

import (
	"math"
	"time"

	"ppar/internal/mp"
	"ppar/internal/partition"
)

// Cross-rank dynamic rebalancing for the Task executor. Work stealing evens
// load out within a rank, but a rank whose deques run persistently dry (its
// partition is cheaper than its siblings') can only be helped by moving
// partition boundaries — whole chunks of the iteration space — between
// ranks. At every safe point the ranks allgather (wall time, owned
// iterations) samples of the partitioned loops they ran since the last
// decision; each rank then computes the SAME decision from the SAME data:
// skip while any sample is too small to trust or the imbalance is below
// threshold, otherwise cut every Block-partitioned field proportionally to
// the measured per-rank throughput, migrate the spans between old and new
// boundaries over the existing transport, and install the new cut points.
// Because the decision is a pure function of allgathered data, no extra
// coordination round is needed and the applied-rebalance count stays in
// lockstep on every rank — which is what lets RunStats expose it.

const (
	// rebalanceMinSample is the smallest per-rank loop time worth acting
	// on: below it the samples are noise and moving data costs more than
	// the imbalance does.
	rebalanceMinSample = 200 * time.Microsecond
	// rebalanceRatio is the slowest/fastest elapsed ratio that triggers a
	// move.
	rebalanceRatio = 1.25
	// rebalanceTag carries span migrations; like the halo tags it is fixed
	// (per-pair transfers are strictly ordered by the SPMD control flow).
	rebalanceTag = 0x3100
)

// maybeRebalance is the safe-point entry of the balancer: on rank control
// lines it runs the collective directly, inside regions the team master runs
// it between two team barriers (the commPhase shape), so the workers observe
// the moved data and boundaries afterwards.
func (c *Ctx) maybeRebalance() {
	if c.Procs() < 2 {
		return
	}
	if c.worker != nil {
		c.worker.Barrier()
		if c.worker.IsMaster() {
			c.rebalanceNow()
		}
		c.worker.Barrier()
		return
	}
	c.rebalanceNow()
}

// rebalanceNow runs one decision round on the rank's communicating line.
func (c *Ctx) rebalanceNow() {
	e := c.eng
	elapsed, iters := c.taskElapsed, c.taskIters
	c.taskElapsed, c.taskIters = 0, 0
	frames, err := c.comm.Allgather(mp.EncodeF64s([]float64{elapsed.Seconds(), float64(iters)}))
	c.must(err)
	parts := c.Procs()
	weights := make([]float64, parts)
	minEl, maxEl := math.MaxFloat64, 0.0
	for r := 0; r < parts; r++ {
		s := mp.DecodeF64s(frames[r])
		if len(s) != 2 {
			return
		}
		el, it := s[0], s[1]
		if el < rebalanceMinSample.Seconds() || it <= 0 {
			return // every rank sees the same samples and skips together
		}
		weights[r] = it / el
		minEl = math.Min(minEl, el)
		maxEl = math.Max(maxEl, el)
	}
	if maxEl < minEl*rebalanceRatio {
		return
	}
	applied := false
	for _, name := range c.fields.partitionedNames() {
		if c.fields.specs[name].Layout != partition.Block {
			continue // cyclic layouts already interleave; only Block moves
		}
		old, err := c.fields.layoutFor(name, parts)
		c.must(err)
		nb := proportionalBounds(old.N, parts, weights)
		if nb == nil || sameBounds(old, nb) {
			continue
		}
		c.transferSpans(name, old, nb)
		c.fields.setBounds(name, nb)
		applied = true
	}
	if applied {
		c.fields.rebalances.Add(1)
		if c.IsMasterRank() {
			e.recordRebalance()
		}
	}
}

// transferSpans moves the data between the old and the new Block boundaries
// of one field: each rank sends every span it owned that another rank now
// owns, then receives every span it now owns that another rank owned. All
// sends are posted before any receive (transports buffer, as in the halo
// exchange), so no pairwise ordering can deadlock; at most one span moves
// per (field, rank pair), so the fixed tag is unambiguous.
func (c *Ctx) transferSpans(name string, old partition.Layout, newBounds []int) {
	me := c.Rank()
	parts := old.Parts
	olo, ohi := old.Range(me)
	for s := 0; s < parts; s++ {
		if s == me {
			continue
		}
		a, b := max(olo, newBounds[s]), min(ohi, newBounds[s+1])
		if a >= b {
			continue
		}
		blk, err := c.fields.packSpan(name, a, b)
		c.must(err)
		c.must(c.comm.Send(s, rebalanceTag, mp.EncodeF64s(blk)))
	}
	nlo, nhi := newBounds[me], newBounds[me+1]
	for s := 0; s < parts; s++ {
		if s == me {
			continue
		}
		slo, shi := old.Range(s)
		a, b := max(nlo, slo), min(nhi, shi)
		if a >= b {
			continue
		}
		frame, err := c.comm.Recv(s, rebalanceTag)
		c.must(err)
		c.must(c.fields.unpackSpan(name, a, b, mp.DecodeF64s(frame)))
	}
}

// proportionalBounds cuts [0, n) into parts spans sized proportionally to
// the per-rank throughput weights, every part keeping at least one element.
// It is deterministic in its inputs — every rank feeds it the same
// allgathered weights and must produce the same cuts.
func proportionalBounds(n, parts int, weights []float64) []int {
	if n < parts {
		return nil
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return nil
	}
	b := make([]int, parts+1)
	cum := 0.0
	for r := 0; r < parts-1; r++ {
		cum += weights[r]
		b[r+1] = int(math.Round(float64(n) * cum / total))
	}
	b[parts] = n
	for r := 1; r < parts; r++ {
		// Clamp each cut into the window that leaves every part >= 1
		// element, keeping the cuts strictly increasing.
		if lo := r; b[r] < lo {
			b[r] = lo
		}
		if hi := n - (parts - r); b[r] > hi {
			b[r] = hi
		}
		if b[r] < b[r-1]+1 {
			b[r] = b[r-1] + 1
		}
	}
	return b
}

// sameBounds reports whether the new cut points match the layout's current
// division (explicit or even) — in which case there is nothing to move.
func sameBounds(l partition.Layout, bounds []int) bool {
	for p := 0; p < l.Parts; p++ {
		lo, hi := l.Range(p)
		if bounds[p] != lo || bounds[p+1] != hi {
			return false
		}
	}
	return true
}
