package core

import (
	"fmt"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

// migrateToken unwinds a line of execution after the migration snapshot has
// been captured: like stopToken every line reaches the same safe point and
// unwinds together, but instead of returning from Run the engine tears the
// executor down and relaunches under the target mode.
type migrateToken struct{ sp uint64 }

// migrationSpec is the resolved in-process migration, published by the
// coordinator at the safe point and consumed by the executor loop. The
// canonical snapshot travels through an internal in-memory store so the
// relaunch reads it back through the ordinary serial round-trip — no
// aliasing of the old executor's live arrays, and no interaction with the
// user's configured Store (whose chain keeps serving crash restarts).
type migrationSpec struct {
	sp      uint64
	mode    Mode
	threads int
	procs   int
	store   ckpt.Store
	start   time.Time // snapshot capture time, for Report.MigrationTotal
	// pending is the scheduled RequestAdapt/RequestStop target this
	// migration consumed, if it was pending-sourced: applyMigration clears
	// exactly that request (CAS) so a colliding request from another
	// source survives the relaunch and is re-scheduled after the replay.
	pending *AdaptTarget
}

// migrateCheckpoint performs an in-process cross-mode migration at safe
// point sp: the same collective save protocol as stopCheckpoint — barriers
// in shared memory, gather-at-master in distributed memory, asynchronous
// writer drained first so the regular chain stays consistent — except that
// the canonical snapshot lands in an internal in-memory store, and the
// unwind relaunches the run instead of ending it (Figures 6 and 7 without
// the restart).
func (c *Ctx) migrateCheckpoint(sp uint64, t AdaptTarget, pending *AdaptTarget) {
	if !validMode(t.Mode) {
		panic(abortToken{msg: fmt.Sprintf("core: migration requests unknown mode %d", int(t.Mode))})
	}
	c.collectiveSave(
		func() { c.migrateSaveLocal(sp, t, pending) },
		func() { c.migrateSaveDist(sp, t, pending) },
	)
	panic(migrateToken{sp: sp})
}

// migrateSaveLocal captures the migration snapshot from this process's
// fields (the Sequential and Shared save protocol).
func (c *Ctx) migrateSaveLocal(sp uint64, t AdaptTarget, pending *AdaptTarget) {
	start := time.Now()
	c.drainAsync()
	snap, err := c.fields.snapshot(c.eng.cfg.AppName, "canonical", sp)
	c.must(err)
	c.publishMigration(sp, t, snap, start, pending)
}

// migrateSaveDist captures the migration snapshot with the gather-at-master
// protocol of §IV.A — the canonical form that "makes it possible to restart
// the application on any of the execution modes", which is exactly what the
// relaunch does. Every rank participates in the gathers; the master
// publishes.
func (c *Ctx) migrateSaveDist(sp uint64, t AdaptTarget, pending *AdaptTarget) {
	start := time.Now()
	c.gatherCanonical()
	if c.IsMasterRank() {
		c.drainAsync()
		snap, err := c.fields.snapshot(c.eng.cfg.AppName, "canonical", sp)
		c.must(err)
		c.publishMigration(sp, t, snap, start, pending)
	}
}

// publishMigration resolves the target topology and parks the snapshot for
// the executor loop. Unset sizes inherit the engine's remembered topology —
// and deliberately stay un-coerced for modes without the machinery: a
// Shared(8) run migrating to Distributed keeps Threads=8 remembered, so a
// later migration back to Shared with Threads unset lands on 8 again
// (executors simply ignore the sizes they have no machinery for). When a
// periodic checkpoint is due at this very safe point, the snapshot is also
// persisted through the regular sink: the migration unwinds before the
// ordinary dueAt save could run, and silently skipping a scheduled
// checkpoint would contradict the cadence counters policies rely on.
func (c *Ctx) publishMigration(sp uint64, t AdaptTarget, snap *serial.Snapshot, start time.Time, pending *AdaptTarget) {
	e := c.eng
	threads, procs := t.Threads, t.Procs
	if threads <= 0 {
		threads = int(e.curThreads.Load())
	}
	if procs <= 0 {
		procs = int(e.curProcs.Load())
	}
	if e.dueAt(sp) {
		c.must(e.sink.saveFull(snap))
		e.recordSave(time.Since(start), snap.DataBytes(), false)
	}
	st := ckpt.NewMem()
	c.must(st.Save(snap))
	e.migration.Store(&migrationSpec{
		sp: sp, mode: t.Mode, threads: threads, procs: procs,
		store: st, start: start, pending: pending,
	})
}

// applyMigration moves the engine to the migration target between launches:
// the parked snapshot becomes the replay source, the topology becomes the
// target's, and the incremental-checkpoint tracker is re-based so the first
// periodic checkpoint under the new executor persists a full snapshot (the
// old chain's hashes described the old capture sequence).
func (e *Engine) applyMigration(m *migrationSpec) error {
	snap, found, err := m.store.Load(e.cfg.AppName)
	if err != nil {
		return fmt.Errorf("core: migration snapshot: %w", err)
	}
	if !found {
		return fmt.Errorf("core: migration at safe point %d left no snapshot", m.sp)
	}
	e.resumeSnap = snap
	e.shardResume = false
	e.shardSnaps = nil
	e.replayTarget = m.sp
	e.curMode = m.mode
	e.curThreads.Store(int64(m.threads))
	e.curProcs.Store(int64(m.procs))
	e.liveMode.Store(int64(m.mode))
	if e.tracker != nil {
		e.tracker = newDeltaTracker(e.cfg.DeltaCompactEvery)
	}
	if e.ssink != nil {
		// Re-anchor every shard chain: the migration's replayed state is a
		// fresh capture sequence (and the world may have changed size).
		// The background pool was drained before the migration snapshot,
		// so no capture of the old topology is still in flight.
		e.ssink.rebase(m.procs)
	}
	// A request scheduled for the migration safe point itself never got its
	// turn (the migration unwound SafePoint first). Clear the schedule — and
	// the request only if this migration WAS that request — so a colliding
	// RequestAdapt/RequestStop from another source survives the relaunch
	// and is re-scheduled by the coordinator after the replay. A schedule
	// for a later safe point is left untouched and fires on time.
	e.scheduled.CompareAndSwap(m.sp, 0)
	if m.pending != nil {
		e.pending.CompareAndSwap(m.pending, nil)
	}
	e.repMu.Lock()
	e.report.Adapted = true
	e.report.Migrations++
	e.migStart = m.start
	e.repMu.Unlock()
	// The relaunch runs between launches on the engine's own goroutine, so
	// this is the coordinating line of execution by construction.
	e.notifyAdapt(m.sp)
	return nil
}
