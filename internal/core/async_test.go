package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

// slowStore delays every canonical save, so captures pile up behind the
// in-flight write and the double-buffer backpressure paths are exercised.
type slowStore struct {
	ckpt.Store
	delay time.Duration
}

func (s *slowStore) Save(snap *serial.Snapshot) error {
	time.Sleep(s.delay)
	return s.Store.Save(snap)
}

// failStore fails every canonical save after the first, so the run has one
// good restart point and a surfaced write error.
type failStore struct {
	ckpt.Store
	saves    int
	failFrom int
}

func (s *failStore) Save(snap *serial.Snapshot) error {
	s.saves++
	if s.saves >= s.failFrom {
		return errors.New("backend gone")
	}
	return s.Store.Save(snap)
}

// Async checkpointing must not change results in any mode, and the drain at
// engine exit must leave the last capture persisted.
func TestAsyncCheckpointMatchesSync(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"seq", Config{Mode: Sequential}},
		{"smp", Config{Mode: Shared, Threads: 3}},
		{"dist", Config{Mode: Distributed, Procs: 3}},
		{"hybrid", Config{Mode: Hybrid, Procs: 2, Threads: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store := ckpt.NewMem()
			cfg := tc.cfg
			cfg.Store = store
			cfg.CheckpointEvery = 4
			cfg.AsyncCheckpoint = true
			g, rep := runStencil(t, cfg)
			gridsEqual(t, tc.name, ref, g)
			if rep.Checkpoints == 0 {
				t.Fatal("no checkpoints persisted")
			}
			snap, found, err := store.Load("stencil")
			if err != nil || !found {
				t.Fatalf("drained snapshot: found=%v err=%v", found, err)
			}
			if snap.SafePoints != 12 { // tIters safe points, last multiple of 4
				t.Fatalf("last persisted snapshot at sp %d, want 12", snap.SafePoints)
			}
		})
	}
}

// With a writer slower than the inter-checkpoint interval, captures must
// supersede the parked snapshot instead of queueing unboundedly, and the
// exit drain must still persist the newest capture.
func TestAsyncSupersedeAndDrainOnExit(t *testing.T) {
	store := &slowStore{Store: ckpt.NewMem(), delay: 30 * time.Millisecond}
	cfg := Config{Mode: Sequential, Store: store, CheckpointEvery: 1, AsyncCheckpoint: true}
	_, rep := runStencil(t, cfg)
	if rep.Superseded == 0 {
		t.Fatalf("no capture superseded despite a slow writer: %+v", rep)
	}
	if rep.Checkpoints >= int(rep.SafePoints) {
		t.Fatalf("all %d captures persisted; backpressure did not coalesce", rep.SafePoints)
	}
	snap, found, err := store.Load("stencil")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if snap.SafePoints != 12 {
		t.Fatalf("exit drain persisted sp %d, want the final capture at 12", snap.SafePoints)
	}
	if rep.DrainTotal == 0 {
		t.Error("drain time not recorded")
	}
}

// A background write failure must fail the run (at a later safe point or at
// exit), never be dropped.
func TestAsyncWriteErrorSurfaces(t *testing.T) {
	store := &failStore{Store: ckpt.NewMem(), failFrom: 1}
	cfg := Config{Mode: Sequential, AppName: "stencil", Store: store,
		CheckpointEvery: 2, AsyncCheckpoint: true, Modules: modulesFor(Sequential)}
	eng, err := New(cfg, func() App { return newStencil(tN, tIters, &resultSink{}) })
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Run()
	if err == nil {
		t.Fatal("run succeeded despite every checkpoint write failing")
	}
	if !strings.Contains(err.Error(), "async checkpoint write failed") {
		t.Fatalf("error does not identify the async write: %v", err)
	}
}

// Crash-restart with async checkpointing: the failure leaves the ledger
// dirty while the exit drain persists the last capture, and the relaunched
// engine replays to exactly the uninterrupted result.
func TestAsyncCrashRestartEquivalence(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"seq", Config{Mode: Sequential}},
		{"smp", Config{Mode: Shared, Threads: 3}},
		{"dist", Config{Mode: Distributed, Procs: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sink := &resultSink{}
			cfg := tc.cfg
			cfg.AppName = "stencil"
			cfg.Modules = modulesFor(cfg.Mode)
			cfg.CheckpointDir = t.TempDir()
			cfg.CheckpointEvery = 4
			cfg.AsyncCheckpoint = true
			cfg.FailAtSafePoint = 9 // the sp-8 capture may still be in flight

			eng, err := New(cfg, func() App { return newStencil(tN, tIters, sink) })
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Run(); !errors.Is(err, ErrInjectedFailure) {
				t.Fatalf("first run: %v, want injected failure", err)
			}

			cfg2 := cfg
			cfg2.FailAtSafePoint = 0
			eng2, err := New(cfg2, func() App { return newStencil(tN, tIters, sink) })
			if err != nil {
				t.Fatal(err)
			}
			if err := eng2.Run(); err != nil {
				t.Fatalf("restart run: %v", err)
			}
			if !eng2.Report().Restarted {
				t.Error("restart not recorded")
			}
			gridsEqual(t, tc.name, ref, sink.get())
		})
	}
}

// Checkpoint-and-stop under async checkpointing: the stop snapshot must be
// synchronous and must not be overwritten by an older in-flight capture, so
// the restarted run resumes from exactly the stop point.
func TestAsyncStopSnapshotSynchronous(t *testing.T) {
	inner := ckpt.NewMem()
	store := &slowStore{Store: inner, delay: 20 * time.Millisecond}
	sink := &resultSink{}
	cfg := Config{
		Mode: Shared, Threads: 2, AppName: "stencil",
		Modules: modulesFor(Shared),
		Store:   store, CheckpointEvery: 2, AsyncCheckpoint: true,
		StopCheckpointAt: 7,
	}
	eng, err := New(cfg, func() App { return newStencil(tN, tIters, sink) })
	if err != nil {
		t.Fatal(err)
	}
	var stopped *ErrStopped
	if err := eng.Run(); !errors.As(err, &stopped) {
		t.Fatalf("run: %v, want ErrStopped", err)
	}
	snap, found, err := inner.Load("stencil")
	if err != nil || !found {
		t.Fatalf("stop snapshot: found=%v err=%v", found, err)
	}
	if snap.SafePoints != 7 {
		t.Fatalf("persisted snapshot at sp %d, want the stop point 7", snap.SafePoints)
	}

	ref, _ := runStencil(t, Config{Mode: Sequential})
	cfg2 := cfg
	cfg2.StopCheckpointAt = 0
	eng2, err := New(cfg2, func() App { return newStencil(tN, tIters, sink) })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	gridsEqual(t, "stop-restart", ref, sink.get())
}

// Async now composes with the shard protocol: per-rank captures persist
// through the bounded background pool, the manifest commits each complete
// wave, and a crash restart lands on the uninterrupted result.
func TestAsyncShardsCompose(t *testing.T) {
	ref, _ := runStencil(t, Config{Mode: Sequential})
	sink := &resultSink{}
	store := ckpt.NewMem()
	cfg := Config{
		Mode: Distributed, Procs: 2, AppName: "stencil",
		Modules: modulesFor(Distributed),
		Store:   store, CheckpointEvery: 3,
		ShardCheckpoints: true, AsyncCheckpoint: true,
		FailAtSafePoint: 8,
	}
	eng, err := New(cfg, func() App { return newStencil(tN, tIters, sink) })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("want injected failure, got %v", err)
	}
	if rep := eng.Report(); rep.Checkpoints == 0 || rep.ShardSaves != rep.Checkpoints*2 {
		t.Fatalf("shard wave accounting off: %+v", rep)
	}
	cfg2 := cfg
	cfg2.FailAtSafePoint = 0
	eng2, err := New(cfg2, func() App { return newStencil(tN, tIters, sink) })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	gridsEqual(t, "async-shard-restart", ref, sink.get())
}
