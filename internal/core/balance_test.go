package core

import (
	"math"
	"testing"

	"ppar/internal/partition"
)

// proportionalBounds is the heart of the cross-rank balancer: every rank
// computes it independently from allgathered weights, so it must be total,
// deterministic, and always produce a valid strictly-increasing cut.
func TestProportionalBoundsValid(t *testing.T) {
	cases := []struct {
		n       int
		weights []float64
	}{
		{100, []float64{1, 1}},
		{100, []float64{1, 99}},
		{100, []float64{99, 1}},
		{7, []float64{5, 1, 1}},
		{3, []float64{1000, 1, 1000}},
		{64, []float64{0.001, 10, 0.001, 10}},
		{5, []float64{1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		b := proportionalBounds(tc.n, len(tc.weights), tc.weights)
		if b == nil {
			t.Fatalf("n=%d weights=%v: nil bounds", tc.n, tc.weights)
		}
		if b[0] != 0 || b[len(b)-1] != tc.n {
			t.Fatalf("n=%d weights=%v: bounds %v do not span [0,n]", tc.n, tc.weights, b)
		}
		for r := 1; r < len(b); r++ {
			if b[r] <= b[r-1] {
				t.Fatalf("n=%d weights=%v: bounds %v leave part %d empty", tc.n, tc.weights, b, r-1)
			}
		}
	}
}

func TestProportionalBoundsDegenerate(t *testing.T) {
	if b := proportionalBounds(2, 3, []float64{1, 1, 1}); b != nil {
		t.Fatalf("n < parts produced %v", b)
	}
	if b := proportionalBounds(10, 2, []float64{0, 0}); b != nil {
		t.Fatalf("zero total weight produced %v", b)
	}
	if b := proportionalBounds(10, 2, []float64{math.NaN(), 1}); b != nil {
		t.Fatalf("NaN weight produced %v", b)
	}
	if b := proportionalBounds(10, 2, []float64{math.Inf(1), 1}); b != nil {
		t.Fatalf("Inf weight produced %v", b)
	}
}

// A faster rank (higher weight) must receive at least as many elements as a
// slower one when the cut moves.
func TestProportionalBoundsFollowThroughput(t *testing.T) {
	b := proportionalBounds(100, 2, []float64{3, 1})
	if got := b[1]; got != 75 {
		t.Fatalf("3:1 weights cut at %d, want 75", got)
	}
}

func TestSameBounds(t *testing.T) {
	l := partition.Layout{Kind: partition.Block, N: 10, Parts: 2}
	if !sameBounds(l, []int{0, 5, 10}) {
		t.Fatal("even cut not recognised as unchanged")
	}
	if sameBounds(l, []int{0, 7, 10}) {
		t.Fatal("moved cut reported as unchanged")
	}
	moved := l.WithBounds([]int{0, 7, 10})
	if !sameBounds(moved, []int{0, 7, 10}) {
		t.Fatal("explicit bounds not recognised as unchanged")
	}
}
