package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/metrics"
	"ppar/internal/mp"
	"ppar/internal/serial"
	"ppar/internal/team"
)

// Mode selects which parallelisation machinery is plugged in. The same base
// program runs under every mode — the paper's central claim. The zero value
// is deliberately not a mode: in AdaptTarget.Mode it means "unchanged", and
// a zero Config.Mode is normalised to Sequential.
type Mode int

const (
	// Sequential runs the base code with no machinery at all: Call is a
	// plain function call, For a plain loop (the "unplugged" deployment).
	Sequential Mode = iota + 1
	// Shared plugs the thread-team machinery: ParallelMethod regions
	// execute on a team of Config.Threads workers.
	Shared
	// Distributed plugs the object-aggregate machinery: Config.Procs SPMD
	// replicas over a message-passing world.
	Distributed
	// Hybrid plugs both: Procs replicas, each running regions on teams of
	// Threads workers.
	Hybrid
	// Task plugs the many-task machinery: the same topology as Hybrid, but
	// work-sharing loops are overdecomposed into Config.Overdecompose chunks
	// per worker and scheduled by randomized work stealing, and a cross-rank
	// rebalancer may move Block partition boundaries between ranks at safe
	// points. With Procs == 1 it degenerates to a work-stealing Shared
	// deployment.
	Task
)

// validMode reports whether m names one of the five deployments.
func validMode(m Mode) bool { return m >= Sequential && m <= Task }

// String names the mode as the paper does (LE = lines of execution,
// P = processes).
func (m Mode) String() string {
	switch m {
	case Sequential:
		return "seq"
	case Shared:
		return "smp"
	case Distributed:
		return "dist"
	case Hybrid:
		return "hybrid"
	case Task:
		return "task"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the paper-style mode names used by Mode.String
// ("seq", "smp", "dist", "hybrid", "task").
func ParseMode(s string) (Mode, error) {
	for m := Sequential; m <= Task; m++ {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q (want seq, smp, dist, hybrid or task)", s)
}

// MarshalText encodes the mode symbolically ("seq", "smp", "dist",
// "hybrid"), so job specs and status payloads carry mode names instead of
// bare ints. The zero Mode — "unset" in AdaptTarget-style structs —
// encodes as the empty string; modes outside the known range refuse to
// marshal rather than emit a name no parser accepts.
func (m Mode) MarshalText() ([]byte, error) {
	if m == 0 {
		return []byte(nil), nil
	}
	if !validMode(m) {
		return nil, fmt.Errorf("core: cannot marshal unknown mode %d", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText parses the names accepted by ParseMode; the empty string
// decodes to the zero ("unset") Mode, matching MarshalText.
func (m *Mode) UnmarshalText(text []byte) error {
	if len(text) == 0 {
		*m = 0
		return nil
	}
	v, err := ParseMode(string(text))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// App is a base program: plain domain-specific code whose advisable methods
// run through ctx.Call and loops through For.
type App interface {
	Main(ctx *Ctx)
}

// Factory creates a fresh application instance. Distributed modes call it
// once per rank, mirroring the paper's aggregates ("a class of objects that
// have a single instance on each node").
type Factory func() App

// AdaptTarget describes a requested reshaping of the parallelism structure.
// The zero value requests nothing.
type AdaptTarget struct {
	// Threads is the desired team size (0 = unchanged).
	Threads int
	// Procs is the desired world size (0 = unchanged).
	Procs int
	// Mode, when non-zero and different from the current mode, requests an
	// in-process cross-mode migration at the safe point: the engine takes a
	// canonical snapshot into an internal in-memory store, tears down the
	// current executor, constructs the target-mode executor inside the same
	// Run/RunContext call, and replays to the same safe point — the paper's
	// adaptation-by-restart (Figures 6 and 7) without the restart. Threads
	// and Procs then size the new executor (0 = inherit the current sizes).
	// A Mode equal to the current mode is a plain in-place reshaping.
	Mode Mode
	// Stop requests a canonical checkpoint followed by a stop of the run —
	// the paper's adaptation-by-restart: the caller relaunches a
	// differently-configured engine which replays from the snapshot
	// (Figures 6 and 7). When Stop is set, Threads/Procs/Mode are ignored.
	Stop bool
}

// IsZero reports whether the target requests no change at all.
func (t AdaptTarget) IsZero() bool {
	return !t.Stop && t.Threads == 0 && t.Procs == 0 && t.Mode == 0
}

// DelayFunc models per-message link costs on the transport.
type DelayFunc = mp.DelayFunc

// Config assembles one deployment of a base program.
type Config struct {
	// AppName identifies checkpoint files and the run ledger.
	AppName string
	// Mode, Threads, Procs select the plugged machinery.
	Mode    Mode
	Threads int
	Procs   int
	// Overdecompose is the Task-mode chunking factor k: each work-sharing
	// loop is split into k chunks per worker and scheduled by work stealing
	// (<= 0 selects the default of 8). Ignored by the other modes.
	Overdecompose int
	// TCP selects the TCP transport for distributed modes (default: the
	// in-process transport, which also supports run-time world resizing).
	TCP bool
	// Delay optionally injects modelled link costs into the transport.
	Delay mp.DelayFunc
	// Modules are the pluggable parallelisation/fault-tolerance modules.
	Modules []*Module

	// Store, when non-nil, is the pluggable checkpoint backend. Set it to
	// an in-memory or compressing store (or any custom implementation) to
	// decouple checkpointing from the filesystem.
	Store ckpt.Store
	// CheckpointDir is sugar for Store: when Store is nil and
	// CheckpointDir is non-empty, a filesystem store rooted there is used.
	// Either one enables checkpointing.
	CheckpointDir string
	// CheckpointEvery takes a snapshot each time the safe-point count is a
	// multiple of this value (0 disables periodic checkpoints).
	CheckpointEvery uint64
	// MaxCheckpoints caps the number of periodic snapshots (0 = no cap).
	// The decision is a pure function of the safe-point count so that all
	// ranks/threads agree without synchronising.
	MaxCheckpoints int
	// ShardCheckpoints selects the paper's first distributed alternative —
	// each process persists a local snapshot between two barriers, in
	// parallel — instead of the default gather-at-master canonical
	// snapshot. Shard saves are per-rank append-only chains gated by a
	// commit manifest written after every shard of a save wave has landed,
	// so a mid-write kill never restarts from a torn multi-shard save; and
	// because each shard records how its fields were partitioned, a
	// sharded run can restart (or migrate) into a different world size or
	// execution mode by repartitioning at load. Composes with
	// AsyncCheckpoint (captures persist through a bounded background pool)
	// and DeltaCheckpoint (each rank keeps its own hash cache and chain).
	ShardCheckpoints bool
	// AsyncCheckpoint enables the asynchronous double-buffered checkpoint
	// pipeline: at the safe point the master only captures an in-memory
	// copy of the safe data and releases the barrier immediately; a
	// background writer encodes and persists the copy through the Store
	// while computation proceeds. At most one snapshot is in flight — a
	// newer capture supersedes one still parked behind the in-flight
	// write. The writer is drained at Run/RunContext exit and before
	// checkpoint-and-stop snapshots (which stay synchronous: they are the
	// restart point); write errors surface at the next safe point the
	// coordinator reaches or at engine exit. With ShardCheckpoints the
	// same double-buffer protocol runs per rank: captures persist through
	// a bounded worker pool and the wave's commit manifest is written when
	// the last shard lands.
	AsyncCheckpoint bool
	// DeltaCheckpoint enables incremental checkpointing: the engine keeps
	// per-field content hashes (chunk hashes for large float fields) from
	// the previous capture and persists only what changed, as a PPCKPD1
	// delta chained onto the last full snapshot. Every DeltaCompactEvery
	// deltas the chain is compacted back into a full PPCKPT1 snapshot, so
	// restart cost and disk usage stay bounded and cross-mode restart
	// always has a materialisable canonical snapshot. Composes with
	// AsyncCheckpoint (delta captures clone only the changed chunks; a
	// capture superseded behind an in-flight write folds into the next
	// one) and with ShardCheckpoints (each rank keeps its own hash cache
	// and chain, and compaction re-anchors every chain in lockstep).
	DeltaCheckpoint bool
	// DeltaCompactEvery is the number of deltas between full snapshots
	// (default 8 when DeltaCheckpoint is set).
	DeltaCompactEvery int

	// Policy, when non-nil, is consulted at every safe point to decide
	// run-time adaptations and checkpoint-and-stop (see AdaptPolicy). It
	// composes with the legacy one-shot fields below: all are folded into
	// one chained policy, legacy fields first.
	Policy AdaptPolicy
	// OnAdapt, when non-nil, is invoked once per applied reshaping — an
	// in-place thread/world resize or an in-process cross-mode migration —
	// after the new topology is in effect, with the safe point it was
	// applied at and the resulting mode/team/world sizes. It runs on the
	// coordinating line of execution between safe points, so it must not
	// block on the engine; external schedulers (the fleet supervisor) use
	// it to learn when a requested resize actually landed and re-budget.
	OnAdapt func(sp uint64, mode Mode, threads, procs int)
	// Driver, when non-nil, is started when the run starts and stopped
	// when it ends. It models an external resource manager feeding
	// RequestAdapt/RequestStop from outside the deterministic policy path
	// (ppar/internal/adapt.Manager implements it).
	Driver AdaptDriver

	// AdaptAt schedules a run-time adaptation at an absolute safe point.
	//
	// Deprecated-style sugar: equivalent to Policy: AdaptAt(sp, AdaptTo).
	AdaptAtSafePoint uint64
	// AdaptTo is the target applied at AdaptAtSafePoint.
	AdaptTo AdaptTarget
	// StopCheckpointAt takes a canonical checkpoint at the given safe
	// point and stops the run — the paper's adaptation-by-restart: the
	// caller relaunches a differently-configured engine which replays
	// from the snapshot (Figures 6 and 7). Sugar for Policy: StopAt(sp).
	StopCheckpointAt uint64

	// FailAtSafePoint injects a failure (process death) at the given safe
	// point, on rank FailRank in distributed modes. The ledger is left
	// dirty so the next run restarts from the last checkpoint.
	FailAtSafePoint uint64
	FailRank        int
}

func (c *Config) normalize() error {
	if c.AppName == "" {
		c.AppName = "app"
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.Procs < 1 {
		c.Procs = 1
	}
	switch c.Mode {
	case 0:
		// The zero Config is the unplugged sequential deployment.
		c.Mode = Sequential
		c.Threads, c.Procs = 1, 1
	case Sequential:
		c.Threads, c.Procs = 1, 1
	case Shared:
		c.Procs = 1
	case Distributed:
		c.Threads = 1
	case Hybrid:
	case Task:
	default:
		return fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	if c.Overdecompose <= 0 {
		c.Overdecompose = 8
	}
	if c.AdaptTo.Mode != 0 && !validMode(c.AdaptTo.Mode) {
		return fmt.Errorf("core: AdaptTo requests migration to unknown mode %d", int(c.AdaptTo.Mode))
	}
	// migrates reports whether the scheduled one-shot target leaves the
	// current executor behind; a migration rebuilds the machinery from
	// scratch, so the in-place resizing constraints below do not apply.
	migrates := c.AdaptTo.Mode != 0 && c.AdaptTo.Mode != c.Mode
	if c.Mode == Sequential && c.AdaptAtSafePoint > 0 && !migrates {
		return errors.New(seqCannotResizeMsg)
	}
	if c.Mode == Hybrid && c.AdaptTo.Procs > 0 && !migrates {
		return errors.New(hybridCannotResizeMsg)
	}
	if c.Mode == Task && c.AdaptTo.Procs > 0 && c.AdaptTo.Procs != c.Procs && !migrates {
		return errors.New(taskCannotResizeWorldMsg)
	}
	if c.TCP && c.AdaptTo.Procs > 0 && !migrates {
		return errors.New(tcpCannotResizeMsg)
	}
	if c.DeltaCheckpoint && c.CheckpointEvery == 0 {
		// Silently taking zero checkpoints would make the option a no-op;
		// incremental checkpointing only means something periodically.
		return errors.New("core: DeltaCheckpoint requires CheckpointEvery > 0 (pass the interval to WithDeltaCheckpoint)")
	}
	if c.DeltaCheckpoint && c.DeltaCompactEvery <= 0 {
		c.DeltaCompactEvery = 8
	}
	return nil
}

// Report carries the measurements the figure harness consumes. The JSON
// field names are stable — status endpoints and benchmark tooling parse
// them — and time.Duration fields marshal as integer nanoseconds.
type Report struct {
	SafePoints  uint64        `json:"safe_points"` // safe points executed by the master
	Checkpoints int           `json:"checkpoints"` // snapshots persisted
	SaveTotal   time.Duration `json:"save_total"`  // time lines of execution were blocked in save protocols (sync: gather+encode+persist; async: gather+capture only)
	SaveBytes   int           `json:"save_bytes"`  // payload bytes of the last snapshot
	LoadTotal   time.Duration `json:"load_total"`  // time restoring data at the replay target
	ReplayTime  time.Duration `json:"replay_time"` // run start -> replay target reached (excl. load)
	Elapsed     time.Duration `json:"elapsed"`     // total wall time of Run
	Adapted     bool          `json:"adapted"`     // a run-time adaptation was applied
	Stopped     bool          `json:"stopped"`     // stopped by StopCheckpointAt
	StoppedAt   uint64        `json:"stopped_at"`
	Failed      bool          `json:"failed"`    // an injected failure occurred
	Restarted   bool          `json:"restarted"` // this run replayed from a checkpoint

	// In-process cross-mode migration measurements (AdaptTarget.Mode).
	Migrations     int           `json:"migrations"`      // executor migrations performed inside this Run
	MigrationTotal time.Duration `json:"migration_total"` // snapshot capture -> replay target reached under the new executor, summed over migrations

	// Asynchronous checkpoint pipeline measurements (AsyncCheckpoint).
	CaptureTotal   time.Duration `json:"capture_total"`    // blocked time capturing double buffers (a subset of SaveTotal)
	AsyncSaveTotal time.Duration `json:"async_save_total"` // background encode+persist time, overlapped with computation
	DrainTotal     time.Duration `json:"drain_total"`      // blocked time draining the writer (stop snapshots and engine exit)
	Superseded     int           `json:"superseded"`       // captures superseded (full) or folded (delta) before being persisted

	// Incremental checkpoint measurements (DeltaCheckpoint).
	FullSaves  int `json:"full_saves"`  // full snapshots persisted (chain bases, compactions, stop snapshots)
	DeltaSaves int `json:"delta_saves"` // delta links persisted
	DeltaBytes int `json:"delta_bytes"` // cumulative payload bytes across all persisted deltas

	// Shard checkpoint measurements (ShardCheckpoints). A committed wave
	// counts once in Checkpoints; ShardSaves counts its per-rank links.
	ShardSaves int `json:"shard_saves"` // shard chain links persisted across all committed waves
	ShardBytes int `json:"shard_bytes"` // cumulative payload bytes across those links

	// Task-mode scheduler measurements (Mode Task). The chunk/steal/idle
	// counters are timing-dependent (they depend on which worker won each
	// race), so they live here and in the metrics surface, never in RunStats.
	TaskChunks int64 `json:"task_chunks"` // chunks scheduled by ForTask loops
	Steals     int64 `json:"steals"`      // chunks executed by a non-home worker
	StealIdle  int64 `json:"steal_idle"`  // steal probes that found an empty deque
	Rebalances int   `json:"rebalances"`  // cross-rank partition rebalances applied
}

// Sched bundles the Task-mode scheduler counters as a metrics.SchedStats —
// the derived-ratio surface the autoscaling policy consumes.
func (r Report) Sched() metrics.SchedStats {
	return metrics.SchedStats{
		Chunks:     r.TaskChunks,
		Steals:     r.Steals,
		Idle:       r.StealIdle,
		Rebalances: r.Rebalances,
	}
}

// ErrInjectedFailure reports that the configured failure fired.
var ErrInjectedFailure = errors.New("core: injected failure")

// ErrStopped reports that the run checkpointed and stopped for
// adaptation-by-restart. When the stop was triggered by context
// cancellation, Cause carries the context's cause so that
// errors.Is(err, context.Canceled) (or DeadlineExceeded) holds.
type ErrStopped struct {
	SafePoint uint64
	Cause     error
}

func (e *ErrStopped) Error() string {
	msg := fmt.Sprintf("core: run checkpointed and stopped at safe point %d for adaptation by restart", e.SafePoint)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the cancellation cause, if any.
func (e *ErrStopped) Unwrap() error { return e.Cause }

type stopToken struct{ sp uint64 }
type failToken struct {
	sp   uint64
	rank int
}

// abortToken unwinds a line of execution on an unrecoverable configuration
// or protocol error (e.g. a shard checkpoint restarted with a different
// world size). Unlike failToken it surfaces as an error from Run; like it,
// the transport is torn down so no sibling blocks forever.
type abortToken struct{ msg string }

// smpJoin coordinates thread-team expansion.
type smpJoin struct {
	ready chan *Ctx
	gate  chan struct{}
	sp    uint64 // absolute safe point of the adaptation
}

// Engine executes one deployment.
type Engine struct {
	cfg     Config
	factory Factory
	adv     *adviceTable
	policy  AdaptPolicy

	store   ckpt.Store
	sink    *ckptSink     // chain-aware persist side (seq assignment, compaction)
	tracker *deltaTracker // capture-side hash cache (DeltaCheckpoint)
	aw      *asyncWriter  // background canonical writer (AsyncCheckpoint)
	ssink   *shardSink    // per-rank chain persist side (ShardCheckpoints)
	sw      *shardWriter  // background shard pool (AsyncCheckpoint + ShardCheckpoints)

	resumeSnap   *serial.Snapshot   // replay source: crash restart or migration
	shardResume  bool               // restart from per-rank shards instead
	shardSnaps   []*serial.Snapshot // manifest-gated materialised shard states
	replayTarget uint64
	restarted    bool // this Run replayed from a persisted checkpoint

	// exec is the live deployment machinery. It is swapped only between
	// launches (no line of execution is running), so Ctx reads need no
	// synchronisation beyond goroutine creation order.
	exec Executor
	// curMode/curThreads/curProcs track the topology the NEXT executor is
	// built with; adaptations and migrations update them.
	curMode    Mode
	curThreads atomic.Int64
	curProcs   atomic.Int64

	scheduled atomic.Uint64
	pending   atomic.Pointer[AdaptTarget]
	migration atomic.Pointer[migrationSpec]

	// liveSP/liveMode publish the coordinator's progress for external
	// observers (Progress): the newest safe point executed and the mode it
	// executed under. They exist because Report.SafePoints only lands when
	// a launch ends, while an adaptation driver needs to watch throughput
	// while the run is in flight. liveMode mirrors curMode, which is only
	// written between launches and so needs no synchronisation for the
	// engine itself — but Progress is called from foreign goroutines.
	liveSP   atomic.Uint64
	liveMode atomic.Int64

	syncMu sync.Mutex
	crits  map[string]*sync.Mutex

	stopped   atomic.Pointer[stopToken]
	failed    atomic.Bool
	cancelled atomic.Bool

	repMu    sync.Mutex
	report   Report
	started  time.Time
	migStart time.Time // capture time of an in-flight migration (repMu)
}

// New builds an engine for one deployment of the base program.
func New(cfg Config, factory Factory) (*Engine, error) {
	if factory == nil {
		return nil, errors.New("core: nil factory")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		factory: factory,
		adv:     mergeModules(cfg.Modules),
		crits:   map[string]*sync.Mutex{},
	}
	// Fold the legacy one-shot trigger fields and the pluggable policy
	// into one chain (legacy triggers first, matching their old priority).
	var ps []AdaptPolicy
	if cfg.StopCheckpointAt > 0 {
		ps = append(ps, StopAt(cfg.StopCheckpointAt))
	}
	if cfg.AdaptAtSafePoint > 0 {
		ps = append(ps, AdaptAt(cfg.AdaptAtSafePoint, cfg.AdaptTo))
	}
	if cfg.Policy != nil {
		ps = append(ps, cfg.Policy)
	}
	e.policy = Policies(ps...)
	e.curMode = cfg.Mode
	e.curThreads.Store(int64(cfg.Threads))
	e.curProcs.Store(int64(cfg.Procs))
	e.liveMode.Store(int64(cfg.Mode))
	return e, nil
}

// Progress reports the run's live position for external observers: the
// newest safe point the coordinator has executed and the topology it
// executed under. Unlike Report (whose SafePoints lands only when a launch
// ends) Progress moves while the run is in flight, so an adaptation driver
// — the autoscaler, a resource manager — can measure throughput online:
// sample (sp, time) pairs and divide. During a replay (crash restart or an
// in-process migration) the safe-point counter parks at its pre-replay
// value until execution passes the replay target, so a driver sees replays
// as a stall, never as backwards progress. Safe for concurrent use.
func (e *Engine) Progress() (sp uint64, mode Mode, threads, procs int) {
	return e.liveSP.Load(), Mode(e.liveMode.Load()),
		int(e.curThreads.Load()), int(e.curProcs.Load())
}

// RequestAdapt asks for a run-time adaptation; it is applied at the next
// safe point the coordinator reaches (Shared mode) — the path a resource
// manager uses when "availability of new resources" is detected (§I).
// Distributed adaptation must be scheduled at an absolute safe point via an
// AdaptPolicy (AdaptAt, Schedule, ...), because ranks only synchronise
// their safe-point counters at collectives. A target with Stop set is a
// graceful checkpoint-and-stop request (see RequestStop); one with Mode set
// is an in-process cross-mode migration (see AdaptTarget.Mode).
func (e *Engine) RequestAdapt(t AdaptTarget) {
	e.pending.Store(&t)
}

// RequestStop asks the run to take a canonical checkpoint and stop at the
// next safe point the coordinator reaches — programmatic graceful shutdown,
// equivalent to cancelling the context passed to RunContext.
func (e *Engine) RequestStop() {
	e.cancelled.Store(true)
}

// Report returns the measurements collected by the last Run.
func (e *Engine) Report() Report {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	return e.report
}

// Run executes the deployment to completion, restart, stop or failure.
func (e *Engine) Run() error { return e.RunContext(context.Background()) }

// RunContext is Run under a context. Cancellation maps to graceful
// checkpoint-and-stop: at the next safe point the coordinator reaches, a
// canonical snapshot is taken (if a store is configured) and every line of
// execution unwinds; RunContext then returns an *ErrStopped wrapping the
// context's cause, and a relaunched engine replays from the snapshot. In
// distributed modes the stop is scheduled at the coordinator's next safe
// point, so — like RequestAdapt — it relies on ranks keeping in loose
// lockstep through the application's collectives.
func (e *Engine) RunContext(ctx context.Context) error {
	e.started = time.Now()
	defer func() {
		e.repMu.Lock()
		e.report.Elapsed = time.Since(e.started)
		e.repMu.Unlock()
	}()
	if e.cfg.Store != nil || e.cfg.CheckpointDir != "" {
		if err := e.openCheckpointing(); err != nil {
			return err
		}
		if err := e.store.LedgerStart(e.cfg.AppName); err != nil {
			return err
		}
		if e.cfg.AsyncCheckpoint {
			// The canonical writer is created even for shard-configured
			// runs: a sharded run re-sharded (or migrated) into a
			// non-distributed mode takes canonical periodic snapshots, and
			// the async request must keep applying to them rather than
			// silently degrading to blocking saves.
			e.aw = newAsyncWriter(e.sink, e.recordAsyncSave, e.recordSuperseded)
			if e.cfg.ShardCheckpoints {
				e.sw = newShardWriter(e.ssink, shardWriterPool(e.cfg.Procs), e.recordShardAsyncSave, e.recordSuperseded)
			}
		}
	}
	if ctx.Err() != nil {
		// Already cancelled: stop at the first scheduled safe point.
		e.cancelled.Store(true)
	} else if ctx.Done() != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-ctx.Done():
				e.cancelled.Store(true)
			case <-finished:
			}
		}()
	}
	if e.cfg.Driver != nil {
		stop := e.cfg.Driver.Drive(e)
		defer stop()
	}
	// The executor loop: each iteration launches one deployment of the base
	// program. An in-process migration (AdaptTarget.Mode) ends the launch
	// with a canonical snapshot parked in memory; the loop tears the
	// executor down, applies the migration (target mode/topology, replay
	// state) and launches the target-mode executor — adaptation-by-restart
	// without the restart.
	var err error
	for {
		exec, xerr := newExecutor(e)
		if xerr != nil {
			err = xerr
			break
		}
		e.exec = exec
		err = exec.Launch(e)
		exec.Teardown()
		mig := e.migration.Swap(nil)
		if err != nil || mig == nil {
			break
		}
		if err = e.applyMigration(mig); err != nil {
			break
		}
	}
	// Drain the asynchronous checkpoint writer before deciding the run's
	// outcome: the last capture must persist even when the run failed (it
	// is the restart point), and write errors must surface instead of
	// being dropped with the goroutine. When the run itself also erred,
	// the run's outcome wins but carries the write failure in its message
	// — whoever acts on the error must know the newest snapshot is not
	// the one on disk. errors.Is/As still see the wrapped outcome.
	var drainErr error
	if e.aw != nil {
		start := time.Now()
		drainErr = e.aw.close()
		e.aw = nil
		e.recordDrain(time.Since(start))
	}
	if e.sw != nil {
		start := time.Now()
		swErr := e.sw.close()
		e.sw = nil
		e.recordDrain(time.Since(start))
		if drainErr == nil {
			drainErr = swErr
		}
	}
	withDrain := func(base error) error {
		if drainErr != nil {
			return fmt.Errorf("%w (additionally, an async checkpoint write failed, so the last persisted snapshot is older than the last capture: %v)", base, drainErr)
		}
		return base
	}
	if err != nil {
		return withDrain(err)
	}
	if tok := e.stopped.Load(); tok != nil {
		// Ledger stays dirty: the relaunched engine must replay.
		e.repMu.Lock()
		e.report.Stopped = true
		e.report.StoppedAt = tok.sp
		e.repMu.Unlock()
		serr := &ErrStopped{SafePoint: tok.sp}
		if ctx.Err() != nil {
			serr.Cause = context.Cause(ctx)
		}
		return withDrain(serr)
	}
	if e.failed.Load() {
		e.repMu.Lock()
		e.report.Failed = true
		e.repMu.Unlock()
		return withDrain(ErrInjectedFailure)
	}
	if drainErr != nil {
		// The ledger stays dirty too: the run's final snapshot never
		// persisted, so the previous checkpoint must remain the replay
		// point for whoever acts on this error.
		return fmt.Errorf("core: async checkpoint write failed: %w", drainErr)
	}
	if e.store != nil {
		if err := e.store.LedgerFinish(e.cfg.AppName); err != nil {
			return err
		}
	}
	return nil
}

// openCheckpointing sets up the store and the pcr module, detecting whether
// the previous execution crashed and, if so, arming replay (§IV.A, Fig. 2b).
func (e *Engine) openCheckpointing() error {
	e.store = e.cfg.Store
	if e.store == nil {
		fsStore, err := ckpt.NewFS(e.cfg.CheckpointDir)
		if err != nil {
			return err
		}
		e.store = fsStore
	}
	e.sink = newCkptSink(e.store)
	if e.cfg.DeltaCheckpoint {
		e.tracker = newDeltaTracker(e.cfg.DeltaCompactEvery)
	}
	if e.cfg.ShardCheckpoints {
		e.ssink = newShardSink(e.store, e.cfg.AppName, e.cfg.DeltaCheckpoint,
			e.cfg.DeltaCompactEvery, e.recordShardCommit)
		// Seed chain positions past any committed manifest — even one of a
		// cleanly finished run: its links must not be overwritten before
		// this run's first commit supersedes the record.
		if man, found, merr := e.store.LoadManifest(e.cfg.AppName); merr == nil && found {
			e.ssink.seed(man)
		}
	}
	crashed, err := e.store.Crashed(e.cfg.AppName)
	if err != nil {
		return err
	}
	if !crashed {
		return nil
	}
	// Two restart points may exist: the canonical snapshot (with any delta
	// chain replayed on top) and the manifest-gated shard save. The choice
	// is made from the manifest HEADER alone — the shard chains are only
	// materialised when the shard point actually wins, so a canonical
	// restart neither pays for replaying every rank's chain nor is blocked
	// by damage in a stale shard save it would not use. The newer safe
	// point wins; on a tie the canonical one (it needs no repartitioning).
	snap, found, err := ckpt.LoadResume(e.store, e.cfg.AppName)
	if err != nil {
		return err
	}
	man, mfound, merr := e.store.LoadManifest(e.cfg.AppName)
	if merr != nil && !found {
		// The shard commit record exists but is damaged, and there is no
		// canonical point to fall back to: refuse loudly rather than
		// silently re-run from scratch.
		return merr
	}
	switch {
	case mfound && merr == nil && (!found || man.SafePoints > snap.SafePoints):
		shards, _, sfound, serr := ckpt.LoadShardResume(e.store, e.cfg.AppName)
		if serr != nil {
			return serr
		}
		if !sfound {
			return fmt.Errorf("core: shard manifest for %q vanished during restart", e.cfg.AppName)
		}
		if (e.cfg.Mode == Distributed || e.cfg.Mode == Hybrid ||
			(e.cfg.Mode == Task && e.cfg.Procs > 1)) && e.cfg.Procs == man.World() {
			// Same topology: every rank restores its own shard in parallel.
			e.shardResume = true
			e.shardSnaps = shards
		} else {
			// Different world size or mode: repartition the shards through
			// their recorded layouts into a canonical snapshot, which every
			// restart path (and the scatter at load) already understands.
			canon, rerr := ckpt.Reshard(shards, e.cfg.AppName, man.SafePoints)
			if rerr != nil {
				return rerr
			}
			e.resumeSnap = canon
		}
		e.replayTarget = man.SafePoints
	case found:
		e.resumeSnap = snap
		e.replayTarget = snap.SafePoints
	default:
		// Pre-manifest stores: fall back to the legacy one-file-per-rank
		// shard snapshots, restartable only into the identical world.
		shard, lfound, lerr := e.store.LoadShard(e.cfg.AppName, 0)
		if lerr != nil {
			return lerr
		}
		if !lfound {
			return nil // crashed before any checkpoint: plain re-run
		}
		e.shardResume = true
		e.replayTarget = shard.SafePoints
	}
	e.restarted = true
	e.repMu.Lock()
	e.report.Restarted = true
	e.repMu.Unlock()
	return nil
}

// guard runs fn, converting the engine's control-flow tokens (injected
// failure, checkpoint-and-stop, in-process migration, poisoned team
// barriers) from panics into values. Any other panic is a genuine bug and
// is re-raised.
func (e *Engine) guard(fn func()) (tok any) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case stopToken, failToken, migrateToken, abortToken, team.Poisoned:
				tok = r
			default:
				panic(r)
			}
		}
	}()
	fn()
	return nil
}

func (e *Engine) noteToken(tok any) {
	switch t := tok.(type) {
	case stopToken:
		e.stopped.CompareAndSwap(nil, &t)
	case failToken:
		e.failed.Store(true)
	}
}

// dueAt reports whether a periodic checkpoint is due at safe point sp. It
// is a pure function of sp so every thread and rank reaches the same
// decision independently — required for the collective save protocols.
func (e *Engine) dueAt(sp uint64) bool {
	every := e.cfg.CheckpointEvery
	if e.store == nil || every == 0 || sp == 0 || sp%every != 0 {
		return false
	}
	if e.cfg.MaxCheckpoints > 0 && sp/every > uint64(e.cfg.MaxCheckpoints) {
		return false
	}
	return true
}

// nextDueAfter returns the first safe point strictly after sp at which a
// periodic checkpoint is due, or 0 when the cadence has none left (no
// store, no cadence, or the MaxCheckpoints budget is spent). The scheduler
// uses it to align stop and migration requests with the collective every
// rank already takes at a due safe point.
func (e *Engine) nextDueAfter(sp uint64) uint64 {
	if e.store == nil || e.cfg.CheckpointEvery == 0 {
		return 0
	}
	next := (sp/e.cfg.CheckpointEvery + 1) * e.cfg.CheckpointEvery
	if !e.dueAt(next) {
		return 0
	}
	return next
}

// ckptCadence is the scheduled-checkpoint view at safe point sp: how many
// periodic snapshots are due by sp, split into full saves and delta links by
// the compaction cadence, and the safe point of the newest one. Like dueAt
// it is a pure function of sp and the configuration, so every line of
// execution computes identical values without synchronising — the property
// RunStats requires. It deliberately describes the schedule, not the store:
// restart and migration re-base the persisted chain early, and the
// asynchronous writer may fold captures, without changing the cadence.
func (e *Engine) ckptCadence(sp uint64) (fulls, deltas int, last uint64) {
	every := e.cfg.CheckpointEvery
	if e.store == nil || every == 0 {
		return 0, 0, 0
	}
	n := sp / every
	if max := e.cfg.MaxCheckpoints; max > 0 && n > uint64(max) {
		n = uint64(max)
	}
	if n == 0 {
		return 0, 0, 0
	}
	last = n * every
	if !e.cfg.DeltaCheckpoint {
		return int(n), 0, last
	}
	// Captures cycle full, then DeltaCompactEvery deltas, then full again.
	period := uint64(e.cfg.DeltaCompactEvery) + 1
	f := (n + period - 1) / period
	return int(f), int(n - f), last
}

func (e *Engine) critical(name string) *sync.Mutex {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()
	m, ok := e.crits[name]
	if !ok {
		m = &sync.Mutex{}
		e.crits[name] = m
	}
	return m
}

func (e *Engine) recordSave(d time.Duration, bytes int, delta bool) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.SaveTotal += d
	e.report.SaveBytes = bytes
	e.report.Checkpoints++
	e.countSaveLocked(bytes, delta)
}

// countSaveLocked splits the persisted-checkpoint accounting into full
// snapshots vs delta links; callers hold repMu.
func (e *Engine) countSaveLocked(bytes int, delta bool) {
	if delta {
		e.report.DeltaSaves++
		e.report.DeltaBytes += bytes
	} else {
		e.report.FullSaves++
	}
}

// recordCapture accounts the blocked portion of an asynchronous checkpoint:
// the in-memory double-buffer copy taken at the safe point. The matching
// persist is recorded by recordAsyncSave when the background write lands.
func (e *Engine) recordCapture(d time.Duration, bytes int) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.SaveTotal += d
	e.report.CaptureTotal += d
	e.report.SaveBytes = bytes
}

func (e *Engine) recordAsyncSave(d time.Duration, bytes int, delta bool) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.AsyncSaveTotal += d
	e.report.SaveBytes = bytes // the persisted size, in case the capture was superseded/folded
	e.report.Checkpoints++
	e.countSaveLocked(bytes, delta)
}

// recordShardCommit accounts one committed shard save wave: the wave is one
// checkpoint (one restart point), its links and payload bytes are the
// sharded I/O the protocol parallelises.
func (e *Engine) recordShardCommit(links, waveBytes, masterBytes int, kindDelta bool) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.Checkpoints++
	e.report.SaveBytes = masterBytes
	e.report.ShardSaves += links
	e.report.ShardBytes += waveBytes
	if kindDelta {
		e.report.DeltaSaves++
		e.report.DeltaBytes += waveBytes
	} else {
		e.report.FullSaves++
	}
}

// recordShardBlocked accounts the blocked span of one synchronous shard
// wave on the master (the persisted-side counters land in
// recordShardCommit when the wave's manifest commits).
func (e *Engine) recordShardBlocked(d time.Duration, bytes int) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.SaveTotal += d
	e.report.SaveBytes = bytes
}

// recordShardAsyncSave accounts one background shard link write.
func (e *Engine) recordShardAsyncSave(d time.Duration, delta bool) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.AsyncSaveTotal += d
}

func (e *Engine) recordSuperseded() {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.Superseded++
}

func (e *Engine) recordDrain(d time.Duration) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.DrainTotal += d
}

func (e *Engine) recordLoad(replayDone time.Time, load time.Duration) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.LoadTotal += load
	if rt := replayDone.Sub(e.started); rt > e.report.ReplayTime {
		e.report.ReplayTime = rt
	}
	if !e.migStart.IsZero() {
		// This load completed a migration replay: the blocked span runs
		// from the snapshot capture under the old executor to here.
		e.report.MigrationTotal += time.Since(e.migStart)
		e.migStart = time.Time{}
	}
}

// recordTaskCounters folds one team's work-stealing counters into the
// report when its parallel region ends.
func (e *Engine) recordTaskCounters(chunks, steals, idle int64) {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.TaskChunks += chunks
	e.report.Steals += steals
	e.report.StealIdle += idle
}

// recordRebalance counts one applied cross-rank partition rebalance (rank 0
// reports for the world).
func (e *Engine) recordRebalance() {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.Rebalances++
}

func (e *Engine) recordAdapted() {
	e.repMu.Lock()
	defer e.repMu.Unlock()
	e.report.Adapted = true
}

// notifyAdapt delivers the Config.OnAdapt callback for a reshaping applied
// at safe point sp. Call sites gate on the coordinating line of execution
// so the hook fires exactly once per applied reshaping.
func (e *Engine) notifyAdapt(sp uint64) {
	if f := e.cfg.OnAdapt; f != nil {
		f(sp, e.curMode, int(e.curThreads.Load()), int(e.curProcs.Load()))
	}
}
