package core

import (
	"errors"
	"fmt"
	"sync"

	"ppar/internal/ckpt"
	"ppar/internal/mp"
)

// Executor is the pluggable deployment layer of the engine: one executor
// owns launching the lines of execution of a base program, their topology
// (thread teams, the SPMD world and its transport), the collective machinery
// behind barriers and data movement, and teardown. The engine runs exactly
// one executor at a time; an in-process migration (AdaptTarget.Mode) tears
// the current one down and launches another inside the same Run call.
//
// Stock executors cover the paper's four deployments — seqExec (unplugged),
// smpExec (thread team), distExec (SPMD replicas over a message-passing
// world) and hybridExec (both) — plus taskExec, the work-stealing many-task
// deployment layered on the hybrid topology.
type Executor interface {
	// Mode reports which deployment this executor implements.
	Mode() Mode
	// Launch runs one pass of the application: every line of execution
	// executes Main to completion, stop, failure or migration. Engine-level
	// problems (field binding, transport setup) are returned as errors;
	// control-flow outcomes (stop/fail/migrate tokens) are recorded on the
	// engine and reported by Run.
	Launch(e *Engine) error
	// Teams reports whether ParallelMethod regions run on thread teams
	// under this executor.
	Teams() bool
	// ResizeErr reports whether the executor can honour target t as an
	// in-place reshaping (team resize, world resize) at a safe point,
	// given the current world size. A non-nil error names the constraint
	// and the supported alternative; t.Mode is ignored — cross-mode moves
	// go through migration instead.
	ResizeErr(t AdaptTarget, curProcs int) error
	// Spawn launches an additional line of execution at the given rank,
	// replaying to joinTarget before joining — the world-expansion half of
	// §IV.B. Executors without a resizable world reject it.
	Spawn(e *Engine, rank int, seq int64, joinTarget uint64) error
	// Teardown releases the executor's machinery (transports, worlds). It
	// is idempotent: the engine calls it after every launch, and failure
	// paths may have called it already to unblock sibling ranks.
	Teardown()
}

// newExecutor builds the executor for the engine's current topology
// (curMode/curThreads/curProcs — the config at start-up, or the migration
// target afterwards).
func newExecutor(e *Engine) (Executor, error) {
	switch e.curMode {
	case Sequential:
		return &seqExec{}, nil
	case Shared:
		return &smpExec{}, nil
	case Distributed:
		return &distExec{worldCore: worldCore{mode: Distributed, tcp: e.cfg.TCP}}, nil
	case Hybrid:
		return &hybridExec{worldCore: worldCore{mode: Hybrid, tcp: e.cfg.TCP}}, nil
	case Task:
		return &taskExec{worldCore: worldCore{mode: Task, tcp: e.cfg.TCP}}, nil
	}
	return nil, fmt.Errorf("core: no executor for mode %d", int(e.curMode))
}

// launchLocal runs the single control line of execution shared by the
// Sequential and Shared executors (regions spawn their teams on demand).
func launchLocal(e *Engine) error {
	app := e.factory()
	fields, err := bindFields(app, e.adv.fields)
	if err != nil {
		return err
	}
	c := &Ctx{eng: e, app: app, fields: fields}
	if e.replayTarget > 0 {
		c.restart = ckpt.NewReplay(e.replayTarget)
	}
	tok := e.guard(func() { app.Main(c) })
	if ab, ok := tok.(abortToken); ok {
		return errors.New(ab.msg)
	}
	e.noteToken(tok)
	e.repMu.Lock()
	e.report.SafePoints = c.spCount
	e.repMu.Unlock()
	return nil
}

// seqExec is the unplugged deployment: Call is a plain function call, For a
// plain loop, and there is no machinery to reshape — adaptation of a
// sequential run is either an in-process migration or a restart.
type seqExec struct{}

func (x *seqExec) Mode() Mode             { return Sequential }
func (x *seqExec) Launch(e *Engine) error { return launchLocal(e) }
func (x *seqExec) Teams() bool            { return false }
func (x *seqExec) ResizeErr(AdaptTarget, int) error {
	return errors.New(seqCannotResizeMsg)
}
func (x *seqExec) Spawn(*Engine, int, int64, uint64) error {
	return errors.New("core: sequential executor has no world to expand")
}
func (x *seqExec) Teardown() {}

// smpExec is the shared-memory deployment: ParallelMethod regions execute
// on resizable thread teams (§III.B, §IV.B expansion/contraction).
type smpExec struct{}

func (x *smpExec) Mode() Mode             { return Shared }
func (x *smpExec) Launch(e *Engine) error { return launchLocal(e) }
func (x *smpExec) Teams() bool            { return true }
func (x *smpExec) ResizeErr(t AdaptTarget, curProcs int) error {
	// Team resizes are this executor's speciality; a world resize cannot
	// be honoured in place (asking for the current trivial world of 1 is
	// a no-op, matching the distributed executor's same-size rule).
	if t.Procs > 0 && t.Procs != curProcs {
		return errors.New(smpCannotResizeWorldMsg)
	}
	return nil
}
func (x *smpExec) Spawn(*Engine, int, int64, uint64) error {
	return errors.New("core: shared executor has no world to expand")
}
func (x *smpExec) Teardown() {}

// worldCore is the SPMD machinery shared by the Distributed and Hybrid
// executors: the transport, the world of rank goroutines, and the per-rank
// launch protocol.
type worldCore struct {
	mode      Mode
	tcp       bool
	transport mp.Transport
	world     *mp.World
	closeOnce sync.Once
}

func (x *worldCore) Mode() Mode { return x.mode }

func (x *worldCore) Launch(e *Engine) error {
	n := int(e.curProcs.Load())
	if x.tcp {
		tr, err := mp.NewTCP(n, e.cfg.Delay)
		if err != nil {
			return err
		}
		x.transport = tr
	} else {
		x.transport = mp.NewInProc(n, e.cfg.Delay)
	}
	x.world = mp.NewWorld(x.transport, n)
	err := x.world.Run(func(c *mp.Comm) error {
		return x.rankMain(e, c, 0)
	})
	if err != nil && (e.failed.Load() || e.stopped.Load() != nil || e.migration.Load() != nil) {
		// Collective errors are collateral damage of the injected
		// failure/stop/migration (the transport was torn down, or ranks
		// unwound mid-collective); the primary outcome is reported by Run.
		err = nil
	}
	return err
}

// rankMain runs one SPMD replica. joinTarget > 0 means this rank was
// launched by a run-time expansion and must replay to that safe point
// before joining (§IV.B: "replaying the application on the additional nodes
// until they reach the same safe point").
func (x *worldCore) rankMain(e *Engine, c *mp.Comm, joinTarget uint64) error {
	app := e.factory()
	fields, err := bindFields(app, e.adv.fields)
	if err != nil {
		return err
	}
	ctx := &Ctx{eng: e, app: app, fields: fields, comm: c}
	switch {
	case joinTarget > 0:
		ctx.join = ckpt.NewReplay(joinTarget)
	case e.replayTarget > 0:
		ctx.restart = ckpt.NewReplay(e.replayTarget)
	}
	tok := e.guard(func() { app.Main(ctx) })
	if _, isFail := tok.(failToken); isFail {
		// The failed process takes the whole job down; closing the
		// transport unblocks every other rank (their collectives error
		// out), like a scheduler killing the job.
		e.noteToken(tok)
		x.Teardown()
		return nil
	}
	if ab, ok := tok.(abortToken); ok {
		x.Teardown()
		return errors.New(ab.msg)
	}
	e.noteToken(tok)
	switch tok.(type) {
	case stopToken, migrateToken:
		if c.Rank() == 0 {
			// The master unwinds last in the stop and migration protocols:
			// by the time it panics, its gather has consumed every
			// sibling's contribution and the snapshot is persisted. Ranks
			// synchronise only at collectives, so a rank that raced past
			// the scheduled safe point never saw the request and is still
			// computing — or blocked sending into a world that is gone.
			// Closing the transport turns those sends into ErrDead, and
			// Launch suppresses the resulting rank errors as collateral of
			// the recorded stop/migration, like the failure path above.
			x.Teardown()
		}
	}
	if c.Rank() == 0 {
		e.repMu.Lock()
		e.report.SafePoints = ctx.spCount
		e.repMu.Unlock()
	}
	return nil
}

func (x *worldCore) Spawn(e *Engine, rank int, seq int64, joinTarget uint64) error {
	x.world.Launch(rank, seq, func(nc *mp.Comm) error {
		return x.rankMain(e, nc, joinTarget)
	})
	return nil
}

func (x *worldCore) Teardown() {
	x.closeOnce.Do(func() {
		if x.transport != nil {
			x.transport.Close()
		}
	})
}

// distExec is the distributed-memory deployment: curProcs SPMD replicas,
// one application instance each, over a message-passing world whose size
// can change at run time (in-process transport only).
type distExec struct{ worldCore }

func (x *distExec) Teams() bool { return false }

func (x *distExec) ResizeErr(t AdaptTarget, curProcs int) error {
	// The TCP world is fixed once established: real processes cannot be
	// spawned into it at run time (resizing to the current size is a
	// no-op and stays allowed).
	if t.Procs > 0 && t.Procs != curProcs && x.tcp {
		return errors.New(tcpCannotResizeMsg)
	}
	return nil
}

// hybridExec plugs both machineries: replicas over a world, each running
// regions on thread teams. The team side reshapes at run time; the world
// side is fixed (merging two worlds mid-region has no safe protocol), so
// world growth goes through migration or restart.
type hybridExec struct{ worldCore }

func (x *hybridExec) Teams() bool { return true }

func (x *hybridExec) ResizeErr(t AdaptTarget, _ int) error {
	if t.Procs > 0 {
		return errors.New(hybridCannotResizeMsg)
	}
	return nil
}

// taskExec is the many-task deployment: the Hybrid topology (replicas over a
// world, regions on thread teams) with work-sharing loops overdecomposed
// into k chunks per worker and scheduled by randomized work stealing, plus a
// cross-rank rebalancer that moves Block partition boundaries between ranks
// at safe points. A trivial world of one rank skips the transport entirely
// and runs the work-stealing teams locally.
type taskExec struct{ worldCore }

func (x *taskExec) Teams() bool { return true }

func (x *taskExec) Launch(e *Engine) error {
	if int(e.curProcs.Load()) == 1 {
		return launchLocal(e)
	}
	return x.worldCore.Launch(e)
}

func (x *taskExec) ResizeErr(t AdaptTarget, curProcs int) error {
	// Team resizes reshape in place, like Hybrid; the world side is fixed —
	// the Task load balancer moves work between the existing ranks instead
	// of changing their number (resizing to the current size stays a no-op).
	if t.Procs > 0 && t.Procs != curProcs {
		return errors.New(taskCannotResizeWorldMsg)
	}
	return nil
}
