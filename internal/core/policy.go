package core

// RunStats is the view of the run handed to an AdaptPolicy at each safe
// point. It deliberately contains only values that are identical on every
// line of execution at the same safe point (no wall-clock time, no rank or
// thread identity): the engine consults the policy independently on every
// thread and rank, and the collective adaptation/checkpoint protocols
// require all of them to reach the same decision without synchronising —
// the same property the paper demands of the checkpoint policy (§IV.A).
type RunStats struct {
	// SafePoint is the safe-point counter at which the policy is asked.
	SafePoint uint64
	// Mode is the mode of the running executor; after an in-process
	// migration it reports the migration target, so mode-conditional
	// policies ("while Shared, migrate to Distributed") quiesce once the
	// move has happened.
	Mode Mode
	// Threads is the current team size (1 outside regions).
	Threads int
	// Procs is the current world size.
	Procs int
	// Restarted reports whether this run replayed from a persisted
	// checkpoint (in-process migrations do not count).
	Restarted bool

	// Checkpoint cadence counters: how many periodic checkpoints the
	// schedule has made due by this safe point — FullSaves full snapshots
	// and DeltaSaves delta links under the configured compaction cadence —
	// and the safe point of the newest one (0 when none yet). They are
	// pure functions of the safe point and the configuration, so they stay
	// identical on every line of execution; they describe the schedule,
	// not the store (restart and migration re-base the persisted chain
	// early, and the asynchronous writer may fold captures — Report holds
	// the persist-side truth).
	FullSaves        int
	DeltaSaves       int
	LastCheckpointSP uint64

	// Overdecompose is the Task-mode chunking factor k (the normalised
	// Config.Overdecompose; meaningful only when Mode is Task).
	Overdecompose int
	// Rebalances counts the cross-rank partition rebalances the Task-mode
	// balancer has applied. Every rank computes the rebalance decision from
	// allgathered data and increments in lockstep, so the count stays
	// identical on every line of execution — unlike the raw steal/idle
	// counters, which are timing-dependent and therefore live only in
	// Report and the metrics surface.
	Rebalances int
}

// AdaptPolicy decides, at each safe point, whether the run should reshape
// its parallelism or checkpoint-and-stop. Decide must be a pure function of
// its argument (every line of execution evaluates it independently and all
// must agree); return the zero AdaptTarget to leave the run unchanged.
//
// Policies subsume the former one-shot Config fields: AdaptAtSafePoint +
// AdaptTo is AdaptAt, StopCheckpointAt is StopAt. Time-driven, external or
// otherwise non-deterministic decisions must instead go through
// Engine.RequestAdapt / Engine.RequestStop, which serialise the request
// through the coordinator.
type AdaptPolicy interface {
	Decide(RunStats) AdaptTarget
}

// PolicyFunc adapts a plain function to the AdaptPolicy interface.
type PolicyFunc func(RunStats) AdaptTarget

// Decide calls f.
func (f PolicyFunc) Decide(s RunStats) AdaptTarget { return f(s) }

// AdaptAt returns a policy that requests target exactly at safe point sp —
// the pluggable form of the former Config.AdaptAtSafePoint/AdaptTo pair.
func AdaptAt(sp uint64, target AdaptTarget) AdaptPolicy {
	return PolicyFunc(func(s RunStats) AdaptTarget {
		if s.SafePoint == sp {
			return target
		}
		return AdaptTarget{}
	})
}

// StopAt returns a policy that checkpoints and stops the run exactly at
// safe point sp — the pluggable form of the former Config.StopCheckpointAt
// (adaptation by restart, Figures 6 and 7).
func StopAt(sp uint64) AdaptPolicy {
	return PolicyFunc(func(s RunStats) AdaptTarget {
		if s.SafePoint == sp {
			return AdaptTarget{Stop: true}
		}
		return AdaptTarget{}
	})
}

// AdaptStep is one step of a Schedule: at safe point At, request Target.
type AdaptStep struct {
	At     uint64
	Target AdaptTarget
}

// Schedule returns a policy that replays a fixed sequence of reshapings
// keyed by safe point — the deterministic analogue of the wall-clock
// resource-manager simulation in ppar/internal/adapt, usable in every mode
// (including distributed, where wall-clock triggers cannot be agreed on).
func Schedule(steps ...AdaptStep) AdaptPolicy {
	return PolicyFunc(func(s RunStats) AdaptTarget {
		for _, st := range steps {
			if st.At == s.SafePoint {
				return st.Target
			}
		}
		return AdaptTarget{}
	})
}

// AdaptDriver is an external source of adaptation requests — the resource
// manager of §I, living outside the run. Drive is called when the run
// starts; the returned stop function is called (once) when it ends. A
// driver feeds Engine.RequestAdapt / Engine.RequestStop asynchronously;
// requests are serialised through the coordinator, so unlike an
// AdaptPolicy it need not be deterministic.
type AdaptDriver interface {
	Drive(e *Engine) (stop func())
}

// Policies chains policies: the first non-zero decision wins. A nil slice
// (or all-zero decisions) leaves the run unchanged.
func Policies(ps ...AdaptPolicy) AdaptPolicy {
	switch len(ps) {
	case 0:
		return nil
	case 1:
		return ps[0]
	}
	return PolicyFunc(func(s RunStats) AdaptTarget {
		for _, p := range ps {
			if p == nil {
				continue
			}
			if t := p.Decide(s); !t.IsZero() {
				return t
			}
		}
		return AdaptTarget{}
	})
}
