package metrics

import (
	"math"
	"testing"
)

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 100; i++ {
		e.Observe(5)
	}
	if e.Mean() != 5 {
		t.Fatalf("mean: got %g, want 5", e.Mean())
	}
	if e.StdDev() != 0 {
		t.Fatalf("stddev of constant: got %g", e.StdDev())
	}
	if e.Count() != 100 {
		t.Fatalf("count: got %d", e.Count())
	}
}

func TestEWMATracksRegimeShift(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 50; i++ {
		e.Observe(1)
	}
	for i := 0; i < 50; i++ {
		e.Observe(10)
	}
	if math.Abs(e.Mean()-10) > 0.01 {
		t.Fatalf("post-shift mean: got %g, want ~10", e.Mean())
	}
}

func TestEWMAFirstSampleInitialises(t *testing.T) {
	e := NewEWMA(0.01)
	e.Observe(42)
	if e.Mean() != 42 {
		t.Fatalf("first sample should set the mean, got %g", e.Mean())
	}
}

func TestEWMAStdDevSeesNoise(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Observe(10 + float64(1-2*(i%2))) // alternating 9, 11
	}
	if e.StdDev() < 0.5 || e.StdDev() > 2 {
		t.Fatalf("stddev of ±1 signal: got %g", e.StdDev())
	}
	e.Reset()
	if e.Mean() != 0 || e.StdDev() != 0 || e.Count() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestRateWindowPerUnit(t *testing.T) {
	w := NewRateWindow(0.5)
	// Cumulative trace: 10 safe points per second.
	for i := 0; i <= 10; i++ {
		w.Observe(uint64(i*10), float64(i))
	}
	if math.Abs(w.PerUnit()-0.1) > 1e-9 {
		t.Fatalf("per-unit: got %g, want 0.1", w.PerUnit())
	}
	if w.Count() != 10 {
		t.Fatalf("intervals: got %d, want 10", w.Count())
	}
}

func TestRateWindowIgnoresStalls(t *testing.T) {
	w := NewRateWindow(0.5)
	w.Observe(0, 0)
	w.Observe(10, 1)
	// A replaying run: time passes, the counter parks. Folding this in as
	// a rate would record an infinite per-unit cost.
	w.Observe(10, 5)
	w.Observe(10, 9)
	w.Observe(20, 10) // progress resumes at the same underlying rate
	if w.PerUnit() > 0.6 {
		t.Fatalf("stall leaked into the rate: %g", w.PerUnit())
	}
	if w.Count() != 2 {
		t.Fatalf("intervals: got %d, want 2", w.Count())
	}
}

func TestRateWindowRegressRePrimes(t *testing.T) {
	w := NewRateWindow(0.5)
	w.Observe(100, 10)
	w.Observe(110, 11)
	// A restore rewound the safe-point counter; the next delta must be
	// measured from the new baseline, not the stale one.
	w.Observe(50, 12)
	w.Observe(60, 13)
	if math.Abs(w.PerUnit()-0.1) > 1e-9 {
		t.Fatalf("per-unit after rewind: got %g, want 0.1", w.PerUnit())
	}
}

func TestRateWindowZeroElapsedIgnored(t *testing.T) {
	w := NewRateWindow(0.5)
	w.Observe(0, 1)
	w.Observe(5, 1) // counter moved, clock did not (coarse clock tick)
	if w.Count() != 0 {
		t.Fatalf("zero-elapsed interval recorded: count=%d", w.Count())
	}
}
