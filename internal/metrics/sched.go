package metrics

// SchedStats aggregates the work-stealing scheduler counters of one run
// (Task mode): chunk executions, steals, idle probe rounds and applied
// cross-rank rebalances. The engine folds per-team counters in here after
// each region drains; the future autoscaling policy consumes the derived
// ratios — a high StealRatio with low IdleRatio means overdecomposition is
// absorbing skew, a high IdleRatio means the run wants fewer workers (or a
// rebalance, in dist mode).
type SchedStats struct {
	// Chunks is the number of overdecomposed chunks executed.
	Chunks int64
	// Steals is how many of those chunks were executed by a worker other
	// than the one whose deque they were seeded on.
	Steals int64
	// Idle counts failed full steal scans (every victim empty) — the
	// scheduler's measure of starvation.
	Idle int64
	// Rebalances counts applied cross-rank partition moves.
	Rebalances int
}

// StealRatio is the fraction of chunks that were stolen rather than run by
// their seeded owner (0 when nothing ran).
func (s SchedStats) StealRatio() float64 {
	if s.Chunks == 0 {
		return 0
	}
	return float64(s.Steals) / float64(s.Chunks)
}

// IdleRatio is idle probe rounds per executed chunk — roughly how much
// scanning workers did per unit of useful work (0 when nothing ran).
func (s SchedStats) IdleRatio() float64 {
	if s.Chunks == 0 {
		return 0
	}
	return float64(s.Idle) / float64(s.Chunks)
}

// Add folds another sample into s.
func (s *SchedStats) Add(o SchedStats) {
	s.Chunks += o.Chunks
	s.Steals += o.Steals
	s.Idle += o.Idle
	s.Rebalances += o.Rebalances
}
