// Package metrics provides the small measurement and reporting utilities
// used by the figure-regeneration harness: stopwatches, per-iteration
// recorders (Figure 6 plots time per iteration), and aligned-table / CSV
// emitters that print the same rows and series the paper reports.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Stopwatch measures one duration.
type Stopwatch struct {
	start time.Time
}

// Start begins (or restarts) the stopwatch.
func (s *Stopwatch) Start() { s.start = time.Now() }

// Elapsed reports time since Start.
func (s *Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// Ratio returns logical/physical, the headline figure for space-saving
// layers (the dedup store's logical-over-physical bytes, a compressor's
// raw-over-compressed). A zero physical denominator means nothing was
// stored yet, which reads as "no savings": the ratio is defined as 1
// there rather than dividing by zero.
func Ratio(logical, physical float64) float64 {
	if physical == 0 {
		return 1
	}
	return logical / physical
}

// IterRecorder collects per-iteration wall times (thread-safe: in shared
// deployments only the master records, but restarted engines may record
// from fresh goroutines).
type IterRecorder struct {
	mu    sync.Mutex
	last  time.Time
	times []time.Duration
}

// Tick records the time since the previous Tick (the first Tick only arms
// the recorder).
func (r *IterRecorder) Tick() {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	if !r.last.IsZero() {
		r.times = append(r.times, now.Sub(r.last))
	}
	r.last = now
}

// Break interrupts the sequence (e.g. across a restart) without recording
// an interval.
func (r *IterRecorder) Break() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.last = time.Time{}
}

// Times returns the recorded intervals.
func (r *IterRecorder) Times() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.times...)
}

// Table accumulates rows and prints them with aligned columns, matching the
// row/series structure of the paper's figures.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Fprint writes the aligned table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("-", len(t.Title)))
	}
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w)
	for _, row := range t.rows {
		for i, cell := range row {
			fmt.Fprintf(w, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
}

// FprintCSV writes the table as CSV (no quoting needed for our numeric
// content; commas in cells are replaced by semicolons defensively).
func (t *Table) FprintCSV(w io.Writer) {
	clean := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = clean(c)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = clean(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// FprintJSON writes the table as one JSON document:
//
//	{"title": "...", "columns": ["...", ...], "rows": [["...", ...], ...]}
//
// Cells keep the same formatting as the aligned-table and CSV emitters, so
// the three outputs agree on every value; an empty table emits "rows": []
// rather than null, keeping consumers free of nil checks.
func (t *Table) FprintJSON(w io.Writer) error {
	doc := struct {
		Title   string     `json:"title,omitempty"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Title: t.Title, Columns: t.Columns, Rows: t.rows}
	if doc.Columns == nil {
		doc.Columns = []string{}
	}
	if doc.Rows == nil {
		doc.Rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Rows exposes the accumulated rows (for tests).
func (t *Table) Rows() [][]string { return t.rows }
