package metrics

import "math"

// EWMA is an exponentially weighted moving average with a companion
// variance estimate, the standard online smoother for noisy rate signals
// (per-safe-point time, steal ratios). Alpha is the weight of the newest
// observation; 2/(N+1) tracks roughly the last N samples. The zero value is
// unusable — construct with NewEWMA. Not safe for concurrent use; callers
// sample from a single monitor goroutine.
type EWMA struct {
	alpha float64
	mean  float64
	vari  float64
	n     uint64
}

// NewEWMA returns an estimator weighting the newest sample by alpha,
// clamped to (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.1
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample in. The first sample initialises the mean
// directly so a cold estimator does not drag a zero prior.
func (e *EWMA) Observe(x float64) {
	e.n++
	if e.n == 1 {
		e.mean = x
		return
	}
	d := x - e.mean
	e.mean += e.alpha * d
	// West-style EWM variance: decays like the mean, measures spread
	// around the *current* mean.
	e.vari = (1 - e.alpha) * (e.vari + e.alpha*d*d)
}

// Mean returns the current estimate (0 before any sample).
func (e *EWMA) Mean() float64 { return e.mean }

// StdDev returns the smoothed standard deviation around the mean.
func (e *EWMA) StdDev() float64 { return math.Sqrt(e.vari) }

// Count returns how many samples have been observed — the evidence weight
// a consumer uses to blend this estimate against a prior.
func (e *EWMA) Count() uint64 { return e.n }

// Reset discards all state, for reuse after the measured regime changes
// (a migration lands, the window must not mix configurations).
func (e *EWMA) Reset() { e.mean, e.vari, e.n = 0, 0, 0 }

// RateWindow turns cumulative (count, seconds) checkpoints into a smoothed
// rate: feed it monotone totals — safe points executed and elapsed seconds —
// and it maintains an EWMA of the incremental rate between observations.
// This is the shape the autoscaler needs: Engine.Progress gives cumulative
// safe points, and the seconds-per-safe-point rate is what the perf model
// fits. Not safe for concurrent use.
type RateWindow struct {
	ewma      *EWMA
	lastCount uint64
	lastTime  float64
	lastRaw   float64
	primed    bool
}

// NewRateWindow returns a rate smoother with the given EWMA alpha.
func NewRateWindow(alpha float64) *RateWindow {
	return &RateWindow{ewma: NewEWMA(alpha)}
}

// Observe records cumulative totals. The first call only establishes the
// baseline; later calls with count progress fold (Δseconds/Δcount) — the
// per-unit cost — into the average. Calls with no progress (a stalled or
// replaying run) are ignored rather than recorded as an infinite cost.
// Regressing counts (a restore rewound the baseline) re-prime the window.
func (w *RateWindow) Observe(count uint64, seconds float64) {
	if !w.primed || count < w.lastCount {
		w.lastCount, w.lastTime, w.primed = count, seconds, true
		return
	}
	if count == w.lastCount {
		return
	}
	dc := float64(count - w.lastCount)
	dt := seconds - w.lastTime
	w.lastCount, w.lastTime = count, seconds
	if dt <= 0 {
		return
	}
	w.lastRaw = dt / dc
	w.ewma.Observe(w.lastRaw)
}

// LastRaw returns the unsmoothed per-unit cost of the newest complete
// interval (0 before the first). Consumers that maintain their own spread
// estimates feed on this — smoothing twice hides the measurement noise a
// decision gate needs to see.
func (w *RateWindow) LastRaw() float64 { return w.lastRaw }

// PerUnit returns the smoothed seconds per counted unit (0 before the
// first complete interval).
func (w *RateWindow) PerUnit() float64 { return w.ewma.Mean() }

// StdDev returns the smoothed spread of the per-unit cost.
func (w *RateWindow) StdDev() float64 { return w.ewma.StdDev() }

// Count returns how many complete intervals have been folded in.
func (w *RateWindow) Count() uint64 { return w.ewma.Count() }

// Reset discards the average and the baseline, for regime changes.
func (w *RateWindow) Reset() { w.ewma.Reset(); w.primed = false; w.lastRaw = 0 }
