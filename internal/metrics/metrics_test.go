package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestIterRecorder(t *testing.T) {
	var r IterRecorder
	r.Tick()
	time.Sleep(time.Millisecond)
	r.Tick()
	time.Sleep(time.Millisecond)
	r.Tick()
	times := r.Times()
	if len(times) != 2 {
		t.Fatalf("recorded %d intervals, want 2", len(times))
	}
	for _, d := range times {
		if d <= 0 {
			t.Errorf("non-positive interval %v", d)
		}
	}
}

func TestIterRecorderBreak(t *testing.T) {
	var r IterRecorder
	r.Tick()
	r.Break()
	r.Tick() // arms again, records nothing
	if n := len(r.Times()); n != 0 {
		t.Fatalf("recorded %d intervals across a break, want 0", n)
	}
	r.Tick()
	if n := len(r.Times()); n != 1 {
		t.Fatalf("recorded %d intervals, want 1", n)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("Fig X", "mode", "time", "ratio")
	tbl.AddRow("seq", 1500*time.Millisecond, 1.0)
	tbl.AddRow("smp-16", 120*time.Microsecond, 0.123456)
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Fig X", "mode", "seq", "1.500s", "120µs", "0.1235"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if len(tbl.Rows()) != 2 {
		t.Errorf("rows = %d", len(tbl.Rows()))
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("x,y", 2)
	var sb strings.Builder
	tbl.FprintCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "x;y,2" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestTableJSON(t *testing.T) {
	tbl := NewTable("Fig X", "mode", "time")
	tbl.AddRow("seq", 1500*time.Millisecond)
	tbl.AddRow("smp-16", 120*time.Microsecond)
	var sb strings.Builder
	if err := tbl.FprintJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if doc.Title != "Fig X" || len(doc.Columns) != 2 || doc.Columns[0] != "mode" {
		t.Errorf("header: %+v", doc)
	}
	if len(doc.Rows) != 2 || doc.Rows[0][1] != "1.500s" {
		t.Errorf("rows disagree with Rows(): %+v vs %+v", doc.Rows, tbl.Rows())
	}
}

func TestTableJSONEmpty(t *testing.T) {
	tbl := NewTable("", "a")
	var sb strings.Builder
	if err := tbl.FprintJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(sb.String())
	if !strings.Contains(out, `"rows": []`) {
		t.Errorf("empty table must emit an empty rows array, got:\n%s", out)
	}
	if strings.Contains(out, "title") {
		t.Errorf("empty title must be omitted, got:\n%s", out)
	}
}

func TestStopwatch(t *testing.T) {
	var sw Stopwatch
	sw.Start()
	time.Sleep(time.Millisecond)
	if sw.Elapsed() < time.Millisecond {
		t.Error("stopwatch under-reports")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(80, 10); got != 8 {
		t.Fatalf("Ratio(80,10) = %v", got)
	}
	if got := Ratio(0, 0); got != 1 {
		t.Fatalf("Ratio(0,0) = %v, want 1 (empty store reads as no savings)", got)
	}
}
