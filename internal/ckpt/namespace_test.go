package ckpt

import (
	"testing"

	"ppar/internal/serial"
)

// nsStores returns every backend wrapped by two adversarial namespaces —
// "t1" and "t10", where one prefix is a string prefix of the other — plus
// the raw backend, so the isolation tests can check all three views of one
// store.
func nsStores(t *testing.T) map[string]struct{ inner, t1, t10 Store } {
	t.Helper()
	out := map[string]struct{ inner, t1, t10 Store }{}
	for name, inner := range stores(t) {
		t1, err := NewNamespaced("t1", inner)
		if err != nil {
			t.Fatal(err)
		}
		t10, err := NewNamespaced("t10", inner)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = struct{ inner, t1, t10 Store }{inner, t1, t10}
	}
	return out
}

func TestNamespacedRejectsBadPrefixes(t *testing.T) {
	if _, err := NewNamespaced("", NewMem()); err == nil {
		t.Error("empty prefix accepted")
	}
	if _, err := NewNamespaced("a~b", NewMem()); err == nil {
		t.Error("prefix containing the separator accepted")
	}
	if _, err := NewNamespaced("ok", nil); err == nil {
		t.Error("nil inner store accepted")
	}
}

// The canonical round trip through every backend: a snapshot saved through
// a namespace reads back with its original App name, and is invisible both
// to the raw store under the plain name and to a sibling namespace.
func TestNamespacedRoundTrip(t *testing.T) {
	for name, ns := range nsStores(t) {
		t.Run(name, func(t *testing.T) {
			snap := serial.NewSnapshot("app", "seq", 7)
			snap.Fields["x"] = serial.Float64s([]float64{1, 2, 3})
			if err := ns.t1.Save(snap); err != nil {
				t.Fatal(err)
			}
			if snap.App != "app" {
				t.Fatalf("Save mutated the caller's snapshot App to %q", snap.App)
			}
			got, found, err := ns.t1.Load("app")
			if err != nil || !found {
				t.Fatalf("load: found=%v err=%v", found, err)
			}
			if got.App != "app" || got.SafePoints != 7 || got.Fields["x"].Fs[2] != 3 {
				t.Fatalf("bad snapshot through namespace: %+v", got)
			}
			if _, found, _ := ns.inner.Load("app"); found {
				t.Error("namespaced snapshot visible under the raw name")
			}
			if _, found, _ := ns.t10.Load("app"); found {
				t.Error("namespaced snapshot visible in a sibling namespace")
			}
			if inner, found, _ := ns.inner.Load("t1~app"); !found || inner.App != "t1~app" {
				t.Errorf("inner store should hold the prefixed key (found=%v app=%q)", found, inner.App)
			}
		})
	}
}

func TestNamespacedDeltaChain(t *testing.T) {
	for name, ns := range nsStores(t) {
		t.Run(name, func(t *testing.T) {
			base := serial.NewSnapshot("app", "seq", 10)
			base.Fields["x"] = serial.Float64s([]float64{1, 2, 3})
			if err := ns.t1.Save(base); err != nil {
				t.Fatal(err)
			}
			d := serial.NewDelta("app", "seq", 12, 10)
			d.Seq = 1
			d.Full["x"] = serial.Float64s([]float64{4, 5, 6})
			if err := ns.t1.SaveDelta(d); err != nil {
				t.Fatal(err)
			}
			if d.App != "app" {
				t.Fatalf("SaveDelta mutated the caller's delta App to %q", d.App)
			}
			gotBase, deltas, found, err := ns.t1.LoadChain("app")
			if err != nil || !found {
				t.Fatalf("chain: found=%v err=%v", found, err)
			}
			if gotBase.App != "app" || len(deltas) != 1 || deltas[0].App != "app" {
				t.Fatalf("chain came back renamed: base=%q deltas=%d", gotBase.App, len(deltas))
			}
			if deltas[0].SafePoints != 12 {
				t.Fatalf("delta safe points %d, want 12", deltas[0].SafePoints)
			}
			// Sibling namespaces see no chain; ClearDeltas in one namespace
			// leaves the other's chain alone.
			if _, _, found, _ := ns.t10.LoadChain("app"); found {
				t.Error("chain visible in a sibling namespace")
			}
			if err := ns.t10.ClearDeltas("app"); err != nil {
				t.Fatal(err)
			}
			if _, deltas, _, _ := ns.t1.LoadChain("app"); len(deltas) != 1 {
				t.Error("sibling ClearDeltas removed this namespace's chain")
			}
		})
	}
}

func TestNamespacedShardsAndManifest(t *testing.T) {
	for name, ns := range nsStores(t) {
		t.Run(name, func(t *testing.T) {
			for r := 0; r < 2; r++ {
				snap := serial.NewSnapshot("app", "dist", 4)
				snap.Fields["r"] = serial.Int64(int64(r))
				if err := ns.t1.SaveShard(snap, r); err != nil {
					t.Fatal(err)
				}
				d := serial.NewDelta("app", "dist", 4, 0)
				d.Seq = 1
				d.Full["r"] = serial.Int64(int64(r))
				if err := ns.t1.SaveShardDelta(d, r); err != nil {
					t.Fatal(err)
				}
			}
			m := &serial.Manifest{App: "app", Mode: "dist", SafePoints: 4,
				Shards: []serial.ManifestShard{{Anchor: 1, Seq: 1}, {Anchor: 1, Seq: 1}}}
			if err := ns.t1.SaveManifest(m); err != nil {
				t.Fatal(err)
			}
			if m.App != "app" {
				t.Fatalf("SaveManifest mutated the caller's manifest App to %q", m.App)
			}
			got, found, err := ns.t1.LoadManifest("app")
			if err != nil || !found {
				t.Fatalf("manifest: found=%v err=%v", found, err)
			}
			if got.App != "app" || got.World() != 2 {
				t.Fatalf("manifest came back as app=%q world=%d", got.App, got.World())
			}
			if shard, found, _ := ns.t1.LoadShard("app", 1); !found || shard.App != "app" {
				t.Fatalf("shard: found=%v", found)
			}
			if d, found, _ := ns.t1.LoadShardDelta("app", 0, 1); !found || d.App != "app" {
				t.Fatalf("shard delta: found=%v", found)
			}
			if _, found, _ := ns.t10.LoadManifest("app"); found {
				t.Error("manifest visible in a sibling namespace")
			}
			if err := ns.t10.ClearShardDeltas("app", 0, 0); err != nil {
				t.Fatal(err)
			}
			if _, found, _ := ns.t1.LoadShardDelta("app", 0, 1); !found {
				t.Error("sibling ClearShardDeltas removed this namespace's chain link")
			}
		})
	}
}

// The PR 2 exact-name Clear guarantee, lifted to namespaces: Clear through
// "t1" must not touch "t10" even though the prefixes share a prefix, and
// the raw backend's own artifacts survive too.
func TestNamespacedClearIsolation(t *testing.T) {
	for name, ns := range nsStores(t) {
		t.Run(name, func(t *testing.T) {
			for _, s := range []Store{ns.inner, ns.t1, ns.t10} {
				snap := serial.NewSnapshot("app", "seq", 3)
				if err := s.Save(snap); err != nil {
					t.Fatal(err)
				}
				if err := s.SaveShard(snap, 0); err != nil {
					t.Fatal(err)
				}
			}
			if err := ns.t1.Clear("app"); err != nil {
				t.Fatal(err)
			}
			if _, found, _ := ns.t1.Load("app"); found {
				t.Error("snapshot survived Clear in its own namespace")
			}
			if _, found, _ := ns.t1.LoadShard("app", 0); found {
				t.Error("shard survived Clear in its own namespace")
			}
			if _, found, _ := ns.t10.Load("app"); !found {
				t.Error("Clear(\"t1\") removed the \"t10\" namespace's snapshot")
			}
			if _, found, _ := ns.inner.Load("app"); !found {
				t.Error("Clear through a namespace removed the raw store's snapshot")
			}
		})
	}
}

// The crash ledger is per-namespace: a dirty run in one namespace must not
// make a sibling (or the raw store) replay.
func TestNamespacedLedgerIsolation(t *testing.T) {
	for name, ns := range nsStores(t) {
		t.Run(name, func(t *testing.T) {
			if err := ns.t1.LedgerStart("app"); err != nil {
				t.Fatal(err)
			}
			if crashed, _ := ns.t1.Crashed("app"); !crashed {
				t.Error("dirty ledger not visible in its own namespace")
			}
			if crashed, _ := ns.t10.Crashed("app"); crashed {
				t.Error("dirty ledger leaked into a sibling namespace")
			}
			if crashed, _ := ns.inner.Crashed("app"); crashed {
				t.Error("dirty ledger leaked into the raw store")
			}
			if err := ns.t1.LedgerFinish("app"); err != nil {
				t.Fatal(err)
			}
			if crashed, _ := ns.t1.Crashed("app"); crashed {
				t.Error("ledger still dirty after finish")
			}
		})
	}
}
