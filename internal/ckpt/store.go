// Package ckpt implements the checkpoint machinery of §IV.A: pluggable
// snapshot stores (filesystem, in-memory, and a gzip-compressing wrapper),
// the run ledger (the paper's pcr module, which "verifies if the last
// execution was concluded without failures" by rewriting main), the
// checkpoint policy ("a checkpoint might be taken only after a set of safe
// points"), and the replay state machine used for restart and for
// bootstrapping new threads/processes during run-time adaptation.
package ckpt

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"ppar/internal/serial"
)

// Store is a pluggable checkpoint backend: it persists canonical and
// per-rank shard snapshots and keeps the crash ledger that decides whether
// the next run must replay. Implementations must be safe for concurrent use
// by multiple ranks (SaveShard/LoadShard are called from every replica of a
// distributed run).
type Store interface {
	// Save atomically writes the canonical (whole-application) snapshot,
	// replacing any previous one for the same application.
	Save(snap *serial.Snapshot) error
	// SaveShard atomically writes one rank's local snapshot (the paper's
	// first distributed-memory alternative, where "each process takes a
	// local snapshot").
	SaveShard(snap *serial.Snapshot, rank int) error
	// SaveDelta atomically appends one incremental checkpoint to the
	// canonical delta chain. The caller assigns Seq contiguously from 1
	// after each full Save; a crash mid-write must never damage earlier
	// links.
	SaveDelta(d *serial.Delta) error
	// Load reads the canonical snapshot for app. found=false (with nil
	// error) means no checkpoint exists.
	Load(app string) (snap *serial.Snapshot, found bool, err error)
	// LoadChain reads the canonical snapshot plus the longest consistent
	// prefix of its delta chain: deltas are returned in Seq order starting
	// at 1 and the chain is truncated at the first missing, corrupt (e.g.
	// torn write) or stale link — a stale delta is one whose BaseSP does
	// not match the base snapshot, left behind by a compaction that
	// crashed between writing the new base and clearing old deltas. Each
	// returned prefix is itself a consistent checkpoint, so truncation is
	// always safe. found and err describe the base snapshot exactly as in
	// Load.
	LoadChain(app string) (base *serial.Snapshot, deltas []*serial.Delta, found bool, err error)
	// LoadShard reads rank's local snapshot.
	LoadShard(app string, rank int) (snap *serial.Snapshot, found bool, err error)

	// SaveShardDelta atomically appends one link to rank's shard chain
	// (app.rN.dM.ckpt for chain position M = d.Seq). Shard chains are
	// append-only: the caller assigns Seq monotonically — continuing past
	// the newest committed manifest after a restart — so a committed link
	// is never overwritten in place; anchor links (serial.AnchorDelta)
	// carry the rank's full state, plain links only the changed chunks.
	SaveShardDelta(d *serial.Delta, rank int) error
	// LoadShardDelta reads one link of rank's shard chain. found=false with
	// nil error means the link does not exist; a link that exists but is
	// damaged (torn write) reports found=true with the decode error.
	LoadShardDelta(app string, rank int, seq uint64) (*serial.Delta, bool, error)
	// ClearShardDeltas removes the links of rank's shard chain with Seq
	// below the given bound (0 removes every link) — the per-chain garbage
	// collection run after a manifest referencing a newer anchor has
	// committed, in that order, so a crash in between leaves stale links
	// the manifest never references rather than a missing restart point.
	ClearShardDeltas(app string, rank int, below uint64) error
	// SaveManifest atomically replaces the shard-checkpoint commit record
	// for m.App. It is written last, after every shard artifact of a save
	// wave has been persisted: a save without a manifest is not a restart
	// point, which is what keeps a torn multi-shard save from ever being
	// mistaken for a complete one.
	SaveManifest(m *serial.Manifest) error
	// LoadManifest reads the commit record, following the Load conventions
	// (found=false means no sharded restart point exists).
	LoadManifest(app string) (*serial.Manifest, bool, error)

	// Clear removes all snapshots (canonical, deltas, shards, shard chains
	// and the manifest) for app.
	Clear(app string) error
	// ClearDeltas removes only the delta chain for app — compaction's
	// garbage collection, called after a new full snapshot has been
	// persisted (in that order, so a crash in between leaves stale deltas
	// that LoadChain filters out rather than a missing restart point).
	ClearDeltas(app string) error

	// PutChunk stores one content-addressed chunk payload under key
	// (serial.ChunkKey of the payload) and takes one reference to it. If a
	// chunk with the key already exists its reference count is incremented
	// instead and dup reports true — the deduplication mechanism: identical
	// chunks across deltas, shards, applications and (via Namespaced)
	// tenants are stored once. Implementations must not retain payload
	// after the call returns. Callers must put every chunk BEFORE saving an
	// artifact that references it, so a crash can only ever leak an
	// unreferenced chunk, never persist a dangling reference.
	PutChunk(key string, payload []byte) (dup bool, err error)
	// GetChunk reads one chunk payload. found=false with nil error means no
	// chunk with the key exists.
	GetChunk(key string) (payload []byte, found bool, err error)
	// ReleaseChunks drops one reference from each named chunk, deleting a
	// chunk when its count reaches zero. Callers must release only AFTER
	// the last artifact referencing the chunks has been cleared (mirroring
	// the manifest-then-GC ordering of the shard chains): a crash between
	// the two leaks chunks rather than dangling references. Releasing an
	// unknown key is not an error (a leaked chunk may already be gone).
	ReleaseChunks(keys []string) error

	// LedgerStart marks a run of app as in progress (the pcr module).
	LedgerStart(app string) error
	// LedgerFinish marks the run as cleanly completed.
	LedgerFinish(app string) error
	// Crashed reports whether the previous run of app failed to conclude —
	// a start marker with no matching finish.
	Crashed(app string) (bool, error)
}

// FS is the filesystem Store: one file per snapshot inside Dir, with
// write-to-temp-then-rename atomicity so a failure during checkpointing
// never destroys the previous valid checkpoint. The ledger is a marker
// file created at LedgerStart and removed at LedgerFinish.
type FS struct {
	Dir string

	// casMu serialises the read-modify-write of chunk reference counts.
	// Chunk bookkeeping assumes one *FS value per directory per process,
	// the same single-writer discipline every other artifact already
	// relies on.
	casMu sync.Mutex
}

var _ Store = (*FS)(nil)

// NewFS creates a filesystem store rooted at dir, creating it if needed.
func NewFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating store dir: %w", err)
	}
	return &FS{Dir: dir}, nil
}

func (s *FS) path(app string, shard int) string {
	if shard < 0 {
		return filepath.Join(s.Dir, app+".ckpt")
	}
	return filepath.Join(s.Dir, fmt.Sprintf("%s.r%d.ckpt", app, shard))
}

func (s *FS) deltaPath(app string, seq uint64) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s.d%d.ckpt", app, seq))
}

func (s *FS) shardDeltaPath(app string, rank int, seq uint64) string {
	return filepath.Join(s.Dir, fmt.Sprintf("%s.r%d.d%d.ckpt", app, rank, seq))
}

func (s *FS) manifestPath(app string) string {
	return filepath.Join(s.Dir, app+".manifest.ckpt")
}

// Save atomically writes a canonical (whole-application) snapshot.
func (s *FS) Save(snap *serial.Snapshot) error {
	return s.save(snap, -1)
}

// SaveShard atomically writes one rank's local snapshot.
func (s *FS) SaveShard(snap *serial.Snapshot, rank int) error {
	return s.save(snap, rank)
}

func (s *FS) save(snap *serial.Snapshot, shard int) error {
	return s.writeAtomic(s.path(snap.App, shard), snap.Encode)
}

// SaveDelta atomically appends one delta checkpoint (app.dN.ckpt for chain
// position N) with the same temp-then-rename-then-dirsync discipline as
// full snapshots, so a torn write leaves either a complete link or none.
func (s *FS) SaveDelta(d *serial.Delta) error {
	if d.Seq == 0 {
		return fmt.Errorf("ckpt: delta for %q has no chain sequence number", d.App)
	}
	return s.writeAtomic(s.deltaPath(d.App, d.Seq), d.Encode)
}

func (s *FS) writeAtomic(final string, encode func(io.Writer) error) error {
	tmp, err := os.CreateTemp(s.Dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: encoding snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	// The rename is only durable once the directory entry itself is on
	// disk: without the parent fsync a power failure can lose the
	// just-renamed checkpoint even though the data blocks were synced.
	if err := syncDir(s.Dir); err != nil {
		return fmt.Errorf("ckpt: sync dir: %w", err)
	}
	return nil
}

func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		// Directory handles cannot be fsynced on Windows; the rename
		// itself is the best durability available there.
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load reads the canonical snapshot for app.
func (s *FS) Load(app string) (snap *serial.Snapshot, found bool, err error) {
	return s.load(app, -1)
}

// LoadChain reads the canonical snapshot plus the longest consistent
// prefix of its delta chain (see Store.LoadChain for the truncation rules).
func (s *FS) LoadChain(app string) (*serial.Snapshot, []*serial.Delta, bool, error) {
	base, found, err := s.load(app, -1)
	if err != nil || !found {
		return nil, nil, found, err
	}
	var deltas []*serial.Delta
	for seq := uint64(1); ; seq++ {
		f, err := os.Open(s.deltaPath(app, seq))
		if errors.Is(err, fs.ErrNotExist) {
			break
		}
		if err != nil {
			break // unreadable link ends the (still consistent) prefix
		}
		d, derr := serial.DecodeDelta(f)
		f.Close()
		if derr != nil || !chainLink(base, d, seq) {
			break
		}
		deltas = append(deltas, d)
	}
	return base, deltas, true, nil
}

// chainLink reports whether d is the valid next link of base's chain: the
// right application, anchored at this base (not a stale pre-compaction
// delta), in the expected position.
func chainLink(base *serial.Snapshot, d *serial.Delta, seq uint64) bool {
	return d.App == base.App && d.BaseSP == base.SafePoints && d.Seq == seq
}

// LoadShard reads rank's local snapshot.
func (s *FS) LoadShard(app string, rank int) (snap *serial.Snapshot, found bool, err error) {
	return s.load(app, rank)
}

// SaveShardDelta atomically appends one link to rank's shard chain with the
// same temp-then-rename-then-dirsync discipline as every other artifact.
func (s *FS) SaveShardDelta(d *serial.Delta, rank int) error {
	if d.Seq == 0 {
		return fmt.Errorf("ckpt: shard delta for %q has no chain sequence number", d.App)
	}
	return s.writeAtomic(s.shardDeltaPath(d.App, rank, d.Seq), d.Encode)
}

// LoadShardDelta reads one link of rank's shard chain.
func (s *FS) LoadShardDelta(app string, rank int, seq uint64) (*serial.Delta, bool, error) {
	f, err := os.Open(s.shardDeltaPath(app, rank, seq))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: open: %w", err)
	}
	defer f.Close()
	d, err := serial.DecodeDelta(f)
	if err != nil {
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", s.shardDeltaPath(app, rank, seq), err)
	}
	return d, true, nil
}

// ClearShardDeltas removes rank's chain links below the given sequence
// number (0 removes all of them).
func (s *FS) ClearShardDeltas(app string, rank int, below uint64) error {
	return s.clearMatching(func(name string) bool {
		seq, ok := shardChainSeq(name, app, rank)
		return ok && (below == 0 || seq < below)
	})
}

// SaveManifest atomically replaces the shard-checkpoint commit record.
func (s *FS) SaveManifest(m *serial.Manifest) error {
	return s.writeAtomic(s.manifestPath(m.App), m.Encode)
}

// LoadManifest reads the shard-checkpoint commit record. A manifest that
// exists but is damaged reports found=true with the decode error, so
// callers can distinguish "no sharded restart point" from "commit record
// corrupt".
func (s *FS) LoadManifest(app string) (*serial.Manifest, bool, error) {
	f, err := os.Open(s.manifestPath(app))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: open: %w", err)
	}
	defer f.Close()
	m, err := serial.DecodeManifest(f)
	if err != nil {
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", s.manifestPath(app), err)
	}
	return m, true, nil
}

func (s *FS) load(app string, shard int) (*serial.Snapshot, bool, error) {
	f, err := os.Open(s.path(app, shard))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: open: %w", err)
	}
	defer f.Close()
	snap, err := serial.Decode(f)
	if err != nil {
		// The snapshot exists but is damaged: found=true, so callers can
		// distinguish "no restart point" from "restart point corrupt".
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", s.path(app, shard), err)
	}
	return snap, true, nil
}

// Clear removes all snapshots (canonical, deltas, shards, shard chains and
// the manifest) for app. Only the exact app.ckpt / app.rN.ckpt /
// app.dN.ckpt / app.rN.dM.ckpt / app.manifest.ckpt names are matched: a
// prefix glob would also delete checkpoints of any application whose name
// merely starts with app (clearing "sor" must not wipe "sor-large").
func (s *FS) Clear(app string) error {
	return s.clearMatching(func(name string) bool { return ownedName(name, app) })
}

// ownedName reports whether name is one of app's checkpoint artifacts.
func ownedName(name, app string) bool {
	return name == app+".ckpt" || name == app+".manifest.ckpt" ||
		isSeqFile(name, app, 'r') || isSeqFile(name, app, 'd') ||
		isShardChainFile(name, app)
}

// ClearDeltas removes only the app.dN.ckpt delta chain.
func (s *FS) ClearDeltas(app string) error {
	return s.clearMatching(func(name string) bool { return isSeqFile(name, app, 'd') })
}

func (s *FS) clearMatching(match func(string) bool) error {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return fmt.Errorf("ckpt: clear: %w", err)
	}
	for _, e := range entries {
		if !match(e.Name()) {
			continue
		}
		if err := os.Remove(filepath.Join(s.Dir, e.Name())); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("ckpt: clear: %w", err)
		}
	}
	return nil
}

// isSeqFile reports whether name is exactly app.<kind>N.ckpt for a decimal
// N — the shard ('r') and delta ('d') naming schemes.
func isSeqFile(name, app string, kind byte) bool {
	rest, ok := strings.CutPrefix(name, app+"."+string(kind))
	if !ok {
		return false
	}
	digits, ok := strings.CutSuffix(rest, ".ckpt")
	return ok && allDigits(digits)
}

// isShardChainFile reports whether name is exactly app.rN.dM.ckpt for
// decimal N and M — a link of any rank's shard chain.
func isShardChainFile(name, app string) bool {
	rest, ok := strings.CutPrefix(name, app+".r")
	if !ok {
		return false
	}
	rank, rest, ok := strings.Cut(rest, ".d")
	if !ok || !allDigits(rank) {
		return false
	}
	digits, ok := strings.CutSuffix(rest, ".ckpt")
	return ok && allDigits(digits)
}

// shardChainSeq parses name as a link of ONE rank's chain, returning its
// sequence number.
func shardChainSeq(name, app string, rank int) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, fmt.Sprintf("%s.r%d.d", app, rank))
	if !ok {
		return 0, false
	}
	digits, ok := strings.CutSuffix(rest, ".ckpt")
	if !ok || !allDigits(digits) {
		return 0, false
	}
	var seq uint64
	for _, c := range digits {
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func (s *FS) ledgerPath(app string) string { return filepath.Join(s.Dir, app+".run") }

// LedgerStart marks the run as in progress.
func (s *FS) LedgerStart(app string) error {
	f, err := os.OpenFile(s.ledgerPath(app), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: ledger start: %w", err)
	}
	_, werr := f.WriteString("running\n")
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("ckpt: ledger write: %w", werr)
	}
	return cerr
}

// LedgerFinish marks the run as cleanly completed; it is idempotent.
func (s *FS) LedgerFinish(app string) error {
	if err := os.Remove(s.ledgerPath(app)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("ckpt: ledger finish: %w", err)
	}
	return nil
}

// Crashed reports whether the previous execution failed to conclude.
func (s *FS) Crashed(app string) (bool, error) {
	_, err := os.Stat(s.ledgerPath(app))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	return false, fmt.Errorf("ckpt: ledger stat: %w", err)
}

// Chunk files live beside the checkpoint artifacts as cas-<key>.chunk with
// a cas-<key>.ref sidecar holding the decimal reference count. Neither name
// ends in ".ckpt", so Clear and the exact-name matchers never touch them:
// chunks are shared across applications (and tenants) and are reclaimed
// only by explicit ReleaseChunks calls from the layer that tracks the
// references.
func (s *FS) chunkPath(key string) string {
	return filepath.Join(s.Dir, "cas-"+key+".chunk")
}

func (s *FS) refPath(key string) string {
	return filepath.Join(s.Dir, "cas-"+key+".ref")
}

func (s *FS) readRef(key string) (int64, bool, error) {
	b, err := os.ReadFile(s.refPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("ckpt: chunk ref: %w", err)
	}
	var n int64
	if _, err := fmt.Sscanf(string(b), "%d", &n); err != nil || n < 1 {
		return 0, false, fmt.Errorf("ckpt: chunk ref %s is corrupt", s.refPath(key))
	}
	return n, true, nil
}

func (s *FS) writeRef(key string, n int64) error {
	return s.writeAtomic(s.refPath(key), func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%d\n", n)
		return err
	})
}

// PutChunk stores one content-addressed chunk, or bumps its reference
// count if the content is already present. The payload file is written
// before the reference sidecar; a crash in between leaves a chunk that a
// later put of the same content simply rewrites (content-addressed writes
// are idempotent), never a reference without data.
func (s *FS) PutChunk(key string, payload []byte) (bool, error) {
	s.casMu.Lock()
	defer s.casMu.Unlock()
	refs, exists, err := s.readRef(key)
	if err != nil {
		return false, err
	}
	if exists {
		return true, s.writeRef(key, refs+1)
	}
	err = s.writeAtomic(s.chunkPath(key), func(w io.Writer) error {
		_, werr := w.Write(payload)
		return werr
	})
	if err != nil {
		return false, err
	}
	return false, s.writeRef(key, 1)
}

// GetChunk reads one chunk payload.
func (s *FS) GetChunk(key string) ([]byte, bool, error) {
	b, err := os.ReadFile(s.chunkPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: chunk read: %w", err)
	}
	return b, true, nil
}

// ReleaseChunks drops one reference from each chunk, deleting payload and
// sidecar when the count reaches zero. Unknown keys are skipped.
func (s *FS) ReleaseChunks(keys []string) error {
	s.casMu.Lock()
	defer s.casMu.Unlock()
	var first error
	for _, key := range keys {
		refs, exists, err := s.readRef(key)
		if err == nil && exists && refs > 1 {
			err = s.writeRef(key, refs-1)
		} else if err == nil {
			// Last reference (or a half-put chunk with no sidecar): remove
			// both files; missing ones are already gone.
			for _, p := range []string{s.refPath(key), s.chunkPath(key)} {
				if rerr := os.Remove(p); rerr != nil && !errors.Is(rerr, fs.ErrNotExist) && err == nil {
					err = fmt.Errorf("ckpt: chunk release: %w", rerr)
				}
			}
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Mem is an in-memory Store for fast tests and embedded use. Snapshots are
// kept in their encoded container form, so Save/Load exercise the same
// serialisation path as the filesystem store and loaded snapshots never
// alias the saver's field slices. A Mem value must be shared (not copied)
// between the runs that are meant to see each other's checkpoints.
type Mem struct {
	mu        sync.Mutex
	blobs     map[string][]byte
	running   map[string]bool
	chunks    map[string][]byte
	chunkRefs map[string]int
}

var _ Store = (*Mem)(nil)

// NewMem creates an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		blobs: map[string][]byte{}, running: map[string]bool{},
		chunks: map[string][]byte{}, chunkRefs: map[string]int{},
	}
}

// Size reports the store's live footprint: how many artifacts it holds
// (snapshot/delta/manifest blobs plus dedup chunks) and their total encoded
// bytes. Soak tests assert this stays bounded across arbitrarily long
// churn — a chain that is never compacted or a relaunch that leaks old
// artifacts shows up here as monotone growth.
func (s *Mem) Size() (items int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.blobs {
		bytes += int64(len(b))
	}
	for _, b := range s.chunks {
		bytes += int64(len(b))
	}
	return len(s.blobs) + len(s.chunks), bytes
}

// PutChunk stores one content-addressed chunk, or bumps its reference count
// if the content is already present. The payload is copied: stores must not
// retain caller memory (the serialisation pools recycle it).
func (s *Mem) PutChunk(key string, payload []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.chunks[key]; ok {
		s.chunkRefs[key]++
		return true, nil
	}
	s.chunks[key] = append([]byte(nil), payload...)
	s.chunkRefs[key] = 1
	return false, nil
}

// GetChunk reads one chunk payload.
func (s *Mem) GetChunk(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.chunks[key]
	return b, ok, nil
}

// ReleaseChunks drops one reference from each chunk, deleting chunks whose
// count reaches zero; unknown keys are skipped.
func (s *Mem) ReleaseChunks(keys []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, key := range keys {
		if _, ok := s.chunks[key]; !ok {
			continue
		}
		if s.chunkRefs[key]--; s.chunkRefs[key] <= 0 {
			delete(s.chunks, key)
			delete(s.chunkRefs, key)
		}
	}
	return nil
}

func memKey(app string, shard int) string {
	if shard < 0 {
		return app + ".ckpt"
	}
	return fmt.Sprintf("%s.r%d.ckpt", app, shard)
}

func (s *Mem) put(snap *serial.Snapshot, shard int) error {
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		return fmt.Errorf("ckpt: encoding snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[memKey(snap.App, shard)] = buf.Bytes()
	return nil
}

func (s *Mem) get(app string, shard int) (*serial.Snapshot, bool, error) {
	s.mu.Lock()
	blob, ok := s.blobs[memKey(app, shard)]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	snap, err := serial.Decode(bytes.NewReader(blob))
	if err != nil {
		// Exists but damaged: found=true, matching FS and Gzip.
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", memKey(app, shard), err)
	}
	return snap, true, nil
}

// Save stores the canonical snapshot.
func (s *Mem) Save(snap *serial.Snapshot) error { return s.put(snap, -1) }

// SaveShard stores one rank's snapshot.
func (s *Mem) SaveShard(snap *serial.Snapshot, rank int) error { return s.put(snap, rank) }

// SaveDelta stores one delta checkpoint in its encoded container form, so
// loads exercise the same decode path as the filesystem store.
func (s *Mem) SaveDelta(d *serial.Delta) error {
	if d.Seq == 0 {
		return fmt.Errorf("ckpt: delta for %q has no chain sequence number", d.App)
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		return fmt.Errorf("ckpt: encoding delta: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[memDeltaKey(d.App, d.Seq)] = buf.Bytes()
	return nil
}

func memDeltaKey(app string, seq uint64) string {
	return fmt.Sprintf("%s.d%d.ckpt", app, seq)
}

// Load reads the canonical snapshot.
func (s *Mem) Load(app string) (*serial.Snapshot, bool, error) { return s.get(app, -1) }

// LoadChain reads the canonical snapshot plus the longest consistent
// prefix of its delta chain (see Store.LoadChain for the truncation rules).
func (s *Mem) LoadChain(app string) (*serial.Snapshot, []*serial.Delta, bool, error) {
	base, found, err := s.get(app, -1)
	if err != nil || !found {
		return nil, nil, found, err
	}
	var deltas []*serial.Delta
	for seq := uint64(1); ; seq++ {
		s.mu.Lock()
		blob, ok := s.blobs[memDeltaKey(app, seq)]
		s.mu.Unlock()
		if !ok {
			break
		}
		d, derr := serial.DecodeDelta(bytes.NewReader(blob))
		if derr != nil || !chainLink(base, d, seq) {
			break
		}
		deltas = append(deltas, d)
	}
	return base, deltas, true, nil
}

// LoadShard reads rank's snapshot.
func (s *Mem) LoadShard(app string, rank int) (*serial.Snapshot, bool, error) {
	return s.get(app, rank)
}

func memShardDeltaKey(app string, rank int, seq uint64) string {
	return fmt.Sprintf("%s.r%d.d%d.ckpt", app, rank, seq)
}

// SaveShardDelta appends one link to rank's shard chain, stored in its
// encoded container form like every other artifact.
func (s *Mem) SaveShardDelta(d *serial.Delta, rank int) error {
	if d.Seq == 0 {
		return fmt.Errorf("ckpt: shard delta for %q has no chain sequence number", d.App)
	}
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		return fmt.Errorf("ckpt: encoding shard delta: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[memShardDeltaKey(d.App, rank, d.Seq)] = buf.Bytes()
	return nil
}

// LoadShardDelta reads one link of rank's shard chain.
func (s *Mem) LoadShardDelta(app string, rank int, seq uint64) (*serial.Delta, bool, error) {
	s.mu.Lock()
	blob, ok := s.blobs[memShardDeltaKey(app, rank, seq)]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	d, err := serial.DecodeDelta(bytes.NewReader(blob))
	if err != nil {
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", memShardDeltaKey(app, rank, seq), err)
	}
	return d, true, nil
}

// ClearShardDeltas removes rank's chain links below the given sequence
// number (0 removes all of them).
func (s *Mem) ClearShardDeltas(app string, rank int, below uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.blobs {
		if seq, ok := shardChainSeq(k, app, rank); ok && (below == 0 || seq < below) {
			delete(s.blobs, k)
		}
	}
	return nil
}

// SaveManifest replaces the shard-checkpoint commit record.
func (s *Mem) SaveManifest(m *serial.Manifest) error {
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return fmt.Errorf("ckpt: encoding manifest: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[m.App+".manifest.ckpt"] = buf.Bytes()
	return nil
}

// LoadManifest reads the shard-checkpoint commit record.
func (s *Mem) LoadManifest(app string) (*serial.Manifest, bool, error) {
	s.mu.Lock()
	blob, ok := s.blobs[app+".manifest.ckpt"]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	m, err := serial.DecodeManifest(bytes.NewReader(blob))
	if err != nil {
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", app+".manifest.ckpt", err)
	}
	return m, true, nil
}

// Clear removes all snapshots for app. Keys are matched exactly (canonical,
// shards, deltas, shard chains and the manifest): parsing with Sscanf would
// treat app as format text (mangling names containing %) and accept keys
// with trailing junk.
func (s *Mem) Clear(app string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.blobs {
		if ownedName(k, app) {
			delete(s.blobs, k)
		}
	}
	return nil
}

// ClearDeltas removes only app's delta chain.
func (s *Mem) ClearDeltas(app string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.blobs {
		if isSeqFile(k, app, 'd') {
			delete(s.blobs, k)
		}
	}
	return nil
}

// LedgerStart marks the run as in progress.
func (s *Mem) LedgerStart(app string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running[app] = true
	return nil
}

// LedgerFinish marks the run as cleanly completed.
func (s *Mem) LedgerFinish(app string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running, app)
	return nil
}

// Crashed reports whether a run was started and never finished.
func (s *Mem) Crashed(app string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running[app], nil
}

// gzipMode marks envelope snapshots written by the Gzip wrapper.
const gzipMode = "gzip"

// gzipField is the single field of an envelope snapshot, holding the
// compressed container bytes of the real snapshot.
const gzipField = "__gz"

// Gzip wraps an inner Store with transparent gzip compression: snapshots
// are encoded, compressed, and stored through the inner store as a small
// envelope snapshot (one bytes field holding the compressed container).
// Loads pass envelopes back through gunzip and decode; snapshots written
// without the wrapper are returned unchanged, so a store can be upgraded to
// compression without invalidating existing checkpoints.
type Gzip struct {
	inner Store
	// Level is the gzip compression level (gzip.DefaultCompression when 0
	// is passed to NewGzip).
	level int
}

var _ Store = (*Gzip)(nil)

// NewGzip wraps inner with gzip compression at the given level; level 0
// selects gzip.DefaultCompression.
func NewGzip(inner Store, level int) *Gzip {
	if level == 0 {
		level = gzip.DefaultCompression
	}
	return &Gzip{inner: inner, level: level}
}

func (s *Gzip) compress(snap *serial.Snapshot) (*serial.Snapshot, error) {
	// Stream the container straight through the codec: no uncompressed
	// copy of the (potentially large) application state is materialised.
	var gz bytes.Buffer
	zw, err := gzip.NewWriterLevel(&gz, s.level)
	if err != nil {
		return nil, fmt.Errorf("ckpt: gzip writer: %w", err)
	}
	if err := snap.Encode(zw); err != nil {
		return nil, fmt.Errorf("ckpt: gzip encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("ckpt: gzip close: %w", err)
	}
	env := serial.NewSnapshot(snap.App, gzipMode, snap.SafePoints)
	env.Fields[gzipField] = serial.Bytes(gz.Bytes())
	return env, nil
}

func decompress(env *serial.Snapshot) (*serial.Snapshot, error) {
	v, ok := env.Fields[gzipField]
	if env.Mode != gzipMode || !ok {
		return env, nil // written without the wrapper: pass through
	}
	zr, err := gzip.NewReader(bytes.NewReader(v.B))
	if err != nil {
		return nil, fmt.Errorf("ckpt: gunzip: %w", err)
	}
	defer zr.Close()
	snap, err := serial.Decode(zr)
	if err != nil {
		return nil, fmt.Errorf("ckpt: decode compressed snapshot: %w", err)
	}
	return snap, nil
}

// Save compresses and stores the canonical snapshot.
func (s *Gzip) Save(snap *serial.Snapshot) error {
	env, err := s.compress(snap)
	if err != nil {
		return err
	}
	return s.inner.Save(env)
}

// SaveDelta compresses and stores one delta checkpoint. The envelope is
// itself a delta whose chain header (App/SafePoints/BaseSP/Seq) mirrors the
// real one in cleartext, so the inner store's LoadChain can validate link
// order and staleness without decompressing.
func (s *Gzip) SaveDelta(d *serial.Delta) error {
	env, err := s.compressDelta(d)
	if err != nil {
		return err
	}
	return s.inner.SaveDelta(env)
}

func (s *Gzip) compressDelta(d *serial.Delta) (*serial.Delta, error) {
	var gz bytes.Buffer
	zw, err := gzip.NewWriterLevel(&gz, s.level)
	if err != nil {
		return nil, fmt.Errorf("ckpt: gzip writer: %w", err)
	}
	if err := d.Encode(zw); err != nil {
		return nil, fmt.Errorf("ckpt: gzip delta encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("ckpt: gzip close: %w", err)
	}
	env := serial.NewDelta(d.App, gzipMode, d.SafePoints, d.BaseSP)
	env.Seq = d.Seq
	env.Full[gzipField] = serial.Bytes(gz.Bytes())
	return env, nil
}

// LoadChain reads and decompresses the canonical snapshot and its delta
// chain. An envelope that fails to decompress or decode truncates the
// chain at that link, exactly like a torn write in the inner store.
func (s *Gzip) LoadChain(app string) (*serial.Snapshot, []*serial.Delta, bool, error) {
	base, envs, found, err := s.inner.LoadChain(app)
	if err != nil || !found {
		return nil, nil, found, err
	}
	snap, err := decompress(base)
	if err != nil {
		return nil, nil, true, err
	}
	var deltas []*serial.Delta
	for _, env := range envs {
		d, derr := decompressDelta(env)
		if derr != nil || !chainLink(snap, d, env.Seq) {
			break
		}
		deltas = append(deltas, d)
	}
	return snap, deltas, true, nil
}

func decompressDelta(env *serial.Delta) (*serial.Delta, error) {
	v, ok := env.Full[gzipField]
	if env.Mode != gzipMode || !ok {
		return env, nil // written without the wrapper: pass through
	}
	zr, err := gzip.NewReader(bytes.NewReader(v.B))
	if err != nil {
		return nil, fmt.Errorf("ckpt: gunzip delta: %w", err)
	}
	defer zr.Close()
	d, err := serial.DecodeDelta(zr)
	if err != nil {
		return nil, fmt.Errorf("ckpt: decode compressed delta: %w", err)
	}
	return d, nil
}

// SaveShard compresses and stores one rank's snapshot.
func (s *Gzip) SaveShard(snap *serial.Snapshot, rank int) error {
	env, err := s.compress(snap)
	if err != nil {
		return err
	}
	return s.inner.SaveShard(env, rank)
}

// Load reads and decompresses the canonical snapshot. A snapshot that
// exists but fails to decompress reports found=true alongside the error —
// found=false means (only) that no checkpoint exists, and callers use it to
// decide whether a restart point is available at all.
func (s *Gzip) Load(app string) (*serial.Snapshot, bool, error) {
	env, found, err := s.inner.Load(app)
	if err != nil || !found {
		return nil, found, err
	}
	snap, err := decompress(env)
	if err != nil {
		return nil, true, err
	}
	return snap, true, nil
}

// LoadShard reads and decompresses rank's snapshot; like Load, a corrupt
// snapshot reports found=true with the error.
func (s *Gzip) LoadShard(app string, rank int) (*serial.Snapshot, bool, error) {
	env, found, err := s.inner.LoadShard(app, rank)
	if err != nil || !found {
		return nil, found, err
	}
	snap, err := decompress(env)
	if err != nil {
		return nil, true, err
	}
	return snap, true, nil
}

// SaveShardDelta compresses and appends one shard-chain link, using the
// same cleartext-header envelope as SaveDelta.
func (s *Gzip) SaveShardDelta(d *serial.Delta, rank int) error {
	env, err := s.compressDelta(d)
	if err != nil {
		return err
	}
	return s.inner.SaveShardDelta(env, rank)
}

// LoadShardDelta reads and decompresses one shard-chain link; like Load, a
// corrupt link reports found=true with the error.
func (s *Gzip) LoadShardDelta(app string, rank int, seq uint64) (*serial.Delta, bool, error) {
	env, found, err := s.inner.LoadShardDelta(app, rank, seq)
	if err != nil || !found {
		return nil, found, err
	}
	d, err := decompressDelta(env)
	if err != nil {
		return nil, true, err
	}
	return d, true, nil
}

// ClearShardDeltas delegates to the inner store.
func (s *Gzip) ClearShardDeltas(app string, rank int, below uint64) error {
	return s.inner.ClearShardDeltas(app, rank, below)
}

// SaveManifest delegates to the inner store: the commit record is a few
// dozen bytes and must stay independently decodable, so it is never
// compressed.
func (s *Gzip) SaveManifest(m *serial.Manifest) error { return s.inner.SaveManifest(m) }

// LoadManifest delegates to the inner store.
func (s *Gzip) LoadManifest(app string) (*serial.Manifest, bool, error) {
	return s.inner.LoadManifest(app)
}

// Clear delegates to the inner store.
func (s *Gzip) Clear(app string) error { return s.inner.Clear(app) }

// ClearDeltas delegates to the inner store.
func (s *Gzip) ClearDeltas(app string) error { return s.inner.ClearDeltas(app) }

// LedgerStart delegates to the inner store.
func (s *Gzip) LedgerStart(app string) error { return s.inner.LedgerStart(app) }

// LedgerFinish delegates to the inner store.
func (s *Gzip) LedgerFinish(app string) error { return s.inner.LedgerFinish(app) }

// Crashed delegates to the inner store.
func (s *Gzip) Crashed(app string) (bool, error) { return s.inner.Crashed(app) }

// PutChunk delegates to the inner store: chunk payloads are keyed by their
// exact content, so compressing them here would break the content address;
// a backend wanting compressed chunks compresses below the key.
func (s *Gzip) PutChunk(key string, payload []byte) (bool, error) {
	return s.inner.PutChunk(key, payload)
}

// GetChunk delegates to the inner store.
func (s *Gzip) GetChunk(key string) ([]byte, bool, error) { return s.inner.GetChunk(key) }

// ReleaseChunks delegates to the inner store.
func (s *Gzip) ReleaseChunks(keys []string) error { return s.inner.ReleaseChunks(keys) }
