// Package ckpt implements the checkpoint machinery of §IV.A: a snapshot
// store with atomic writes, the run ledger (the paper's pcr module, which
// "verifies if the last execution was concluded without failures" by
// rewriting main), the checkpoint policy ("a checkpoint might be taken only
// after a set of safe points"), and the replay state machine used for
// restart and for bootstrapping new threads/processes during run-time
// adaptation.
package ckpt

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"ppar/internal/serial"
)

// Store persists snapshots in a directory, one file per application, with
// write-to-temp-then-rename atomicity so a failure during checkpointing
// never destroys the previous valid checkpoint.
type Store struct {
	Dir string
}

// NewStore creates the directory if needed.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating store dir: %w", err)
	}
	return &Store{Dir: dir}, nil
}

func (s *Store) path(app string, shard int) string {
	if shard < 0 {
		return filepath.Join(s.Dir, app+".ckpt")
	}
	return filepath.Join(s.Dir, fmt.Sprintf("%s.r%d.ckpt", app, shard))
}

// Save atomically writes a canonical (whole-application) snapshot.
func (s *Store) Save(snap *serial.Snapshot) error {
	return s.save(snap, -1)
}

// SaveShard atomically writes one rank's local snapshot (the paper's first
// distributed-memory alternative, where "each process takes a local
// snapshot").
func (s *Store) SaveShard(snap *serial.Snapshot, rank int) error {
	return s.save(snap, rank)
}

func (s *Store) save(snap *serial.Snapshot, shard int) error {
	final := s.path(snap.App, shard)
	tmp, err := os.CreateTemp(s.Dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := snap.Encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: encoding snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	return nil
}

// Load reads the canonical snapshot for app. found=false (with nil error)
// means no checkpoint exists.
func (s *Store) Load(app string) (snap *serial.Snapshot, found bool, err error) {
	return s.load(app, -1)
}

// LoadShard reads rank's local snapshot.
func (s *Store) LoadShard(app string, rank int) (snap *serial.Snapshot, found bool, err error) {
	return s.load(app, rank)
}

func (s *Store) load(app string, shard int) (*serial.Snapshot, bool, error) {
	f, err := os.Open(s.path(app, shard))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: open: %w", err)
	}
	defer f.Close()
	snap, err := serial.Decode(f)
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: decode %s: %w", s.path(app, shard), err)
	}
	return snap, true, nil
}

// Clear removes all snapshots (canonical and shards) for app.
func (s *Store) Clear(app string) error {
	matches, err := filepath.Glob(filepath.Join(s.Dir, app+"*.ckpt"))
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("ckpt: clear: %w", err)
		}
	}
	return nil
}

// Ledger is the pcr module: a marker file records that a run started; the
// marker is removed on clean completion. A marker left behind at start-up
// means the previous execution failed, which activates replay mode.
type Ledger struct {
	path string
}

// NewLedger creates a ledger for app inside dir.
func NewLedger(dir, app string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: ledger dir: %w", err)
	}
	return &Ledger{path: filepath.Join(dir, app+".run")}, nil
}

// Crashed reports whether the previous execution failed to conclude.
func (l *Ledger) Crashed() (bool, error) {
	_, err := os.Stat(l.path)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	return false, fmt.Errorf("ckpt: ledger stat: %w", err)
}

// Start marks the run as in progress.
func (l *Ledger) Start() error {
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: ledger start: %w", err)
	}
	_, werr := f.WriteString("running\n")
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("ckpt: ledger write: %w", werr)
	}
	return cerr
}

// Finish marks the run as cleanly completed.
func (l *Ledger) Finish() error {
	if err := os.Remove(l.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("ckpt: ledger finish: %w", err)
	}
	return nil
}
