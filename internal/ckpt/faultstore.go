package ckpt

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"ppar/internal/serial"
)

// FaultOp names one Store operation class for fault injection.
type FaultOp int

// Operation classes a FaultStore can inject faults into.
const (
	OpSave FaultOp = iota
	OpSaveDelta
	OpSaveShard
	OpSaveShardDelta
	OpSaveManifest
	OpLoad
	OpLoadChain
	OpLoadShard
	OpLoadShardDelta
	OpLoadManifest
	OpClearDeltas
	OpClearShardDeltas
	OpPutChunk
	OpGetChunk
	OpReleaseChunks
	numFaultOps
)

func (op FaultOp) String() string {
	switch op {
	case OpSave:
		return "Save"
	case OpSaveDelta:
		return "SaveDelta"
	case OpSaveShard:
		return "SaveShard"
	case OpSaveShardDelta:
		return "SaveShardDelta"
	case OpSaveManifest:
		return "SaveManifest"
	case OpLoad:
		return "Load"
	case OpLoadChain:
		return "LoadChain"
	case OpLoadShard:
		return "LoadShard"
	case OpLoadShardDelta:
		return "LoadShardDelta"
	case OpLoadManifest:
		return "LoadManifest"
	case OpClearDeltas:
		return "ClearDeltas"
	case OpClearShardDeltas:
		return "ClearShardDeltas"
	case OpPutChunk:
		return "PutChunk"
	case OpGetChunk:
		return "GetChunk"
	case OpReleaseChunks:
		return "ReleaseChunks"
	}
	return fmt.Sprintf("FaultOp(%d)", int(op))
}

// ErrInjectedFault is the error a FaultStore returns from an operation it
// was armed to fail.
type ErrInjectedFault struct {
	Op FaultOp
	N  int
}

func (e *ErrInjectedFault) Error() string {
	return fmt.Sprintf("ckpt: injected fault: %s call %d failed", e.Op, e.N)
}

// FaultStore is a Store for fault-injection tests: it keeps snapshots
// in-memory in their encoded container form (so every load exercises the
// real decode path) and can fail the Nth call of any operation class with
// an injected error, or simulate a TORN WRITE on the Nth save — the write
// "succeeds" but persists only a truncated prefix of the container, the
// way a crash mid-write without atomic rename would. Torn snapshots and
// deltas must be detected at load time by the container checksums and, for
// deltas, truncate the chain at the damaged link rather than half-applying
// it — the invariant the checkpoint path's crash-safety tests pin down.
//
// Counters are 1-based: Arm(OpSave, 2, ...) fails the second Save. A
// FaultStore is safe for concurrent use, like any Store.
type FaultStore struct {
	mu        sync.Mutex
	blobs     map[string][]byte
	running   map[string]bool
	chunks    map[string][]byte
	chunkRefs map[string]int
	counts    [numFaultOps]int
	failAt    [numFaultOps]int
	tearAt    [numFaultOps]int
}

var _ Store = (*FaultStore)(nil)

// NewFault creates an empty FaultStore with no faults armed.
func NewFault() *FaultStore {
	return &FaultStore{
		blobs: map[string][]byte{}, running: map[string]bool{},
		chunks: map[string][]byte{}, chunkRefs: map[string]int{},
	}
}

// Arm makes the Nth call (1-based, counted from now) of op fail with an
// *ErrInjectedFault. Arming with n <= 0 disarms the class.
func (s *FaultStore) Arm(op FaultOp, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAt[op] = s.offset(op, n)
}

// ArmTorn makes the Nth call (1-based, counted from now) of a save-class
// op report success while persisting only half the encoded container.
func (s *FaultStore) ArmTorn(op FaultOp, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tearAt[op] = s.offset(op, n)
}

func (s *FaultStore) offset(op FaultOp, n int) int {
	if n <= 0 {
		return 0
	}
	return s.counts[op] + n
}

// Disarm clears every armed fault; stored snapshots survive.
func (s *FaultStore) Disarm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAt = [numFaultOps]int{}
	s.tearAt = [numFaultOps]int{}
}

// Ops reports how many calls of op have been made so far (including the
// failed and torn ones) — used to size exhaustive every-Nth-call sweeps.
func (s *FaultStore) Ops(op FaultOp) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[op]
}

// step counts one call of op and reports whether it must fail or tear.
func (s *FaultStore) step(op FaultOp) (fail error, tear bool) {
	s.counts[op]++
	if s.failAt[op] == s.counts[op] {
		return &ErrInjectedFault{Op: op, N: s.counts[op]}, false
	}
	return nil, s.tearAt[op] == s.counts[op]
}

func (s *FaultStore) putBlob(op FaultOp, key string, encode func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fail, tear := s.step(op)
	if fail != nil {
		return fail
	}
	blob := buf.Bytes()
	if tear {
		blob = blob[:len(blob)/2]
	}
	s.blobs[key] = blob
	return nil
}

// Save stores the canonical snapshot (subject to OpSave faults).
func (s *FaultStore) Save(snap *serial.Snapshot) error {
	return s.putBlob(OpSave, memKey(snap.App, -1), snap.Encode)
}

// SaveShard stores one rank's snapshot (subject to OpSaveShard faults).
func (s *FaultStore) SaveShard(snap *serial.Snapshot, rank int) error {
	return s.putBlob(OpSaveShard, memKey(snap.App, rank), snap.Encode)
}

// SaveDelta appends one delta link (subject to OpSaveDelta faults).
func (s *FaultStore) SaveDelta(d *serial.Delta) error {
	if d.Seq == 0 {
		return fmt.Errorf("ckpt: delta for %q has no chain sequence number", d.App)
	}
	return s.putBlob(OpSaveDelta, memDeltaKey(d.App, d.Seq), d.Encode)
}

// SaveShardDelta appends one shard-chain link (subject to OpSaveShardDelta
// faults, including torn writes — the mid-write kill of one rank of a
// multi-shard save that the manifest gate exists for).
func (s *FaultStore) SaveShardDelta(d *serial.Delta, rank int) error {
	if d.Seq == 0 {
		return fmt.Errorf("ckpt: shard delta for %q has no chain sequence number", d.App)
	}
	return s.putBlob(OpSaveShardDelta, memShardDeltaKey(d.App, rank, d.Seq), d.Encode)
}

// SaveManifest replaces the commit record (subject to OpSaveManifest
// faults; a torn manifest is the one artifact whose damage surfaces loudly
// at restart, exactly like a torn canonical base — the stock FS store's
// rename atomicity rules both out).
func (s *FaultStore) SaveManifest(m *serial.Manifest) error {
	return s.putBlob(OpSaveManifest, m.App+".manifest.ckpt", m.Encode)
}

// LoadShardDelta reads one shard-chain link (subject to OpLoadShardDelta
// faults); a torn link reports found=true with the decode error.
func (s *FaultStore) LoadShardDelta(app string, rank int, seq uint64) (*serial.Delta, bool, error) {
	blob, ok, err := s.getBlob(OpLoadShardDelta, memShardDeltaKey(app, rank, seq))
	if err != nil || !ok {
		return nil, false, err
	}
	d, err := serial.DecodeDelta(bytes.NewReader(blob))
	if err != nil {
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", memShardDeltaKey(app, rank, seq), err)
	}
	return d, true, nil
}

// LoadManifest reads the commit record (subject to OpLoadManifest faults).
func (s *FaultStore) LoadManifest(app string) (*serial.Manifest, bool, error) {
	blob, ok, err := s.getBlob(OpLoadManifest, app+".manifest.ckpt")
	if err != nil || !ok {
		return nil, false, err
	}
	m, err := serial.DecodeManifest(bytes.NewReader(blob))
	if err != nil {
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", app+".manifest.ckpt", err)
	}
	return m, true, nil
}

// ClearShardDeltas removes rank's chain links below the bound (subject to
// OpClearShardDeltas faults — the post-commit GC window, where a crash must
// only ever leave stale links the manifest no longer references).
func (s *FaultStore) ClearShardDeltas(app string, rank int, below uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail, _ := s.step(OpClearShardDeltas); fail != nil {
		return fail
	}
	for k := range s.blobs {
		if seq, ok := shardChainSeq(k, app, rank); ok && (below == 0 || seq < below) {
			delete(s.blobs, k)
		}
	}
	return nil
}

func (s *FaultStore) getBlob(op FaultOp, key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail, _ := s.step(op); fail != nil {
		return nil, false, fail
	}
	blob, ok := s.blobs[key]
	return blob, ok, nil
}

// Load reads the canonical snapshot (subject to OpLoad faults). A torn
// snapshot reports found=true with the decode error, matching FS.
func (s *FaultStore) Load(app string) (*serial.Snapshot, bool, error) {
	blob, ok, err := s.getBlob(OpLoad, memKey(app, -1))
	if err != nil || !ok {
		return nil, false, err
	}
	snap, err := serial.Decode(bytes.NewReader(blob))
	if err != nil {
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", memKey(app, -1), err)
	}
	return snap, true, nil
}

// LoadShard reads rank's snapshot (subject to OpLoadShard faults).
func (s *FaultStore) LoadShard(app string, rank int) (*serial.Snapshot, bool, error) {
	blob, ok, err := s.getBlob(OpLoadShard, memKey(app, rank))
	if err != nil || !ok {
		return nil, false, err
	}
	snap, err := serial.Decode(bytes.NewReader(blob))
	if err != nil {
		return nil, true, fmt.Errorf("ckpt: decode %s: %w", memKey(app, rank), err)
	}
	return snap, true, nil
}

// LoadChain reads the canonical snapshot plus the longest consistent
// prefix of its delta chain (subject to OpLoadChain faults); torn links
// truncate the chain exactly as they do in the stock stores.
func (s *FaultStore) LoadChain(app string) (*serial.Snapshot, []*serial.Delta, bool, error) {
	s.mu.Lock()
	fail, _ := s.step(OpLoadChain)
	baseBlob, ok := s.blobs[memKey(app, -1)]
	s.mu.Unlock()
	if fail != nil {
		return nil, nil, false, fail
	}
	if !ok {
		return nil, nil, false, nil
	}
	base, err := serial.Decode(bytes.NewReader(baseBlob))
	if err != nil {
		return nil, nil, true, fmt.Errorf("ckpt: decode %s: %w", memKey(app, -1), err)
	}
	var deltas []*serial.Delta
	for seq := uint64(1); ; seq++ {
		s.mu.Lock()
		blob, ok := s.blobs[memDeltaKey(app, seq)]
		s.mu.Unlock()
		if !ok {
			break
		}
		d, derr := serial.DecodeDelta(bytes.NewReader(blob))
		if derr != nil || !chainLink(base, d, seq) {
			break
		}
		deltas = append(deltas, d)
	}
	return base, deltas, true, nil
}

// Clear removes all snapshots for app (never faulted: tests use it for
// setup, not as part of the exercised path).
func (s *FaultStore) Clear(app string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.blobs {
		if ownedName(k, app) {
			delete(s.blobs, k)
		}
	}
	return nil
}

// ClearDeltas removes app's delta chain (subject to OpClearDeltas faults —
// a compaction that persists its new base and then fails to GC the old
// chain is exactly the crash window LoadChain's staleness rules cover).
func (s *FaultStore) ClearDeltas(app string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail, _ := s.step(OpClearDeltas); fail != nil {
		return fail
	}
	for k := range s.blobs {
		if isSeqFile(k, app, 'd') {
			delete(s.blobs, k)
		}
	}
	return nil
}

// PutChunk stores (or refcounts) one content-addressed chunk, subject to
// OpPutChunk faults — the put-before-link window: a failed put must abort
// the save before any artifact references the missing chunk. A torn put
// persists only half the payload, the way a crash mid-chunk-write without
// atomic rename would.
func (s *FaultStore) PutChunk(key string, payload []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fail, tear := s.step(OpPutChunk)
	if fail != nil {
		return false, fail
	}
	if _, ok := s.chunks[key]; ok {
		s.chunkRefs[key]++
		return true, nil
	}
	blob := append([]byte(nil), payload...)
	if tear {
		blob = blob[:len(blob)/2]
	}
	s.chunks[key] = blob
	s.chunkRefs[key] = 1
	return false, nil
}

// GetChunk reads one chunk payload (subject to OpGetChunk faults).
func (s *FaultStore) GetChunk(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail, _ := s.step(OpGetChunk); fail != nil {
		return nil, false, fail
	}
	b, ok := s.chunks[key]
	return b, ok, nil
}

// ReleaseChunks drops references (subject to OpReleaseChunks faults — the
// clear-before-release GC window, where a crash must only ever leak chunks,
// never dangle a reference).
func (s *FaultStore) ReleaseChunks(keys []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fail, _ := s.step(OpReleaseChunks); fail != nil {
		return fail
	}
	for _, key := range keys {
		if _, ok := s.chunks[key]; !ok {
			continue
		}
		if s.chunkRefs[key]--; s.chunkRefs[key] <= 0 {
			delete(s.chunks, key)
			delete(s.chunkRefs, key)
		}
	}
	return nil
}

// LedgerStart marks the run as in progress.
func (s *FaultStore) LedgerStart(app string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running[app] = true
	return nil
}

// LedgerFinish marks the run as cleanly completed.
func (s *FaultStore) LedgerFinish(app string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running, app)
	return nil
}

// Crashed reports whether a run was started and never finished.
func (s *FaultStore) Crashed(app string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running[app], nil
}
