package ckpt

import "sync/atomic"

// Policy decides at which safe points a snapshot is taken. The paper notes
// the trade-off (§IV.A): "The selection of the set of safe points is a
// trade-off between checkpointing overhead and computation lost when a
// failure occurs. Note that a checkpoint might be taken only after a set of
// safe points."
type Policy struct {
	// Every takes a checkpoint each time the safe-point counter is a
	// multiple of Every. Zero disables periodic checkpoints.
	Every uint64
	// MaxCheckpoints, when positive, stops checkpointing after that many
	// snapshots have been taken (used by the Figure 3 experiment, which
	// compares runs with exactly 0 or 1 checkpoints).
	MaxCheckpoints int

	taken atomic.Int64
}

// Due reports whether a checkpoint should be taken at safe point sp, and if
// so records that one was taken.
func (p *Policy) Due(sp uint64) bool {
	if p == nil || p.Every == 0 || sp == 0 || sp%p.Every != 0 {
		return false
	}
	if p.MaxCheckpoints > 0 {
		if n := p.taken.Add(1); n > int64(p.MaxCheckpoints) {
			return false
		}
		return true
	}
	p.taken.Add(1)
	return true
}

// Taken reports how many checkpoints have been recorded.
func (p *Policy) Taken() int {
	if p == nil {
		return 0
	}
	n := p.taken.Load()
	if p.MaxCheckpoints > 0 && n > int64(p.MaxCheckpoints) {
		return p.MaxCheckpoints
	}
	return int(n)
}

// Reset clears the taken counter (used between benchmark repetitions).
func (p *Policy) Reset() {
	if p != nil {
		p.taken.Store(0)
	}
}

// Counter is the safe-point counter of §IV.A step 3: "the safepoints module
// increments the number of executed safe points". During restart the same
// counter tracks replay progress toward the saved target.
type Counter struct {
	n atomic.Uint64
}

// Inc advances the counter and returns the new value.
func (c *Counter) Inc() uint64 { return c.n.Add(1) }

// Load reads the counter.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Set forces the counter (used when checkpoint data is loaded).
func (c *Counter) Set(v uint64) { c.n.Store(v) }

// Replay tracks restart progress. The paper's restart protocol (§IV.A,
// Figure 2b): with replay active, ignorable methods are skipped and safe
// points are only counted; when the count saved in the checkpoint file is
// reached, the data is loaded and execution proceeds normally.
type Replay struct {
	target uint64
	active atomic.Bool
	count  atomic.Uint64
}

// NewReplay creates a replay toward the given safe-point target. A zero
// target means replay is inactive.
func NewReplay(target uint64) *Replay {
	r := &Replay{target: target}
	if target > 0 {
		r.active.Store(true)
	}
	return r
}

// Active reports whether replay mode is on.
func (r *Replay) Active() bool { return r != nil && r.active.Load() }

// Target reports the safe-point count at which replay completes.
func (r *Replay) Target() uint64 { return r.target }

// Step counts one replayed safe point; it reports true exactly when the
// target is reached (at which point replay deactivates and the caller loads
// the checkpoint data).
func (r *Replay) Step() (done bool) {
	if !r.Active() {
		return false
	}
	if r.count.Add(1) >= r.target {
		r.active.Store(false)
		return true
	}
	return false
}

// Count reports how many safe points have been replayed.
func (r *Replay) Count() uint64 { return r.count.Load() }

// Fork returns an independent replay with the same target and the current
// progress — used when a parallel region starts mid-replay and each team
// thread must continue replaying on its own (§IV.A: "parallel methods are
// still executed to rebuild the number of threads and their corresponding
// call stack").
func (r *Replay) Fork() *Replay {
	nr := NewReplay(r.target)
	nr.count.Store(r.count.Load())
	nr.active.Store(r.active.Load())
	return nr
}
