package ckpt

import (
	"os"
	"path/filepath"
	"testing"

	"ppar/internal/serial"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := newStore(t)
	snap := serial.NewSnapshot("app", "seq", 50)
	snap.Fields["x"] = serial.Float64s([]float64{1, 2, 3})
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.Load("app")
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	if got.SafePoints != 50 || got.Fields["x"].Fs[2] != 3 {
		t.Fatalf("bad snapshot: %+v", got)
	}
}

func TestLoadMissing(t *testing.T) {
	s := newStore(t)
	_, found, err := s.Load("nothing")
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("found a snapshot that was never saved")
	}
}

func TestShards(t *testing.T) {
	s := newStore(t)
	for r := 0; r < 3; r++ {
		snap := serial.NewSnapshot("app", "dist", 10)
		snap.Fields["r"] = serial.Int64(int64(r))
		if err := s.SaveShard(snap, r); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 3; r++ {
		got, found, err := s.LoadShard("app", r)
		if err != nil || !found {
			t.Fatalf("shard %d: found=%v err=%v", r, found, err)
		}
		if got.Fields["r"].I != int64(r) {
			t.Errorf("shard %d holds %d", r, got.Fields["r"].I)
		}
	}
	// Canonical and shard namespaces are separate.
	if _, found, _ := s.Load("app"); found {
		t.Error("canonical snapshot should not exist")
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	s := newStore(t)
	for i := uint64(1); i <= 3; i++ {
		snap := serial.NewSnapshot("app", "seq", i)
		if err := s.Save(snap); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := s.Load("app")
	if err != nil {
		t.Fatal(err)
	}
	if got.SafePoints != 3 {
		t.Fatalf("latest snapshot has %d safe points, want 3", got.SafePoints)
	}
}

func TestCorruptFileSurfacesError(t *testing.T) {
	s := newStore(t)
	snap := serial.NewSnapshot("app", "seq", 1)
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir, "app.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load("app"); err == nil {
		t.Fatal("corrupt checkpoint loaded without error")
	}
}

func TestClear(t *testing.T) {
	s := newStore(t)
	snap := serial.NewSnapshot("app", "seq", 1)
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveShard(snap, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear("app"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := s.Load("app"); found {
		t.Error("canonical snapshot survived Clear")
	}
	if _, found, _ := s.LoadShard("app", 0); found {
		t.Error("shard survived Clear")
	}
}

func TestLedgerLifecycle(t *testing.T) {
	dir := t.TempDir()
	l, err := NewLedger(dir, "app")
	if err != nil {
		t.Fatal(err)
	}
	if crashed, _ := l.Crashed(); crashed {
		t.Fatal("fresh ledger reports crash")
	}
	if err := l.Start(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: a new ledger instance sees the marker.
	l2, _ := NewLedger(dir, "app")
	if crashed, _ := l2.Crashed(); !crashed {
		t.Fatal("crash not detected")
	}
	if err := l2.Finish(); err != nil {
		t.Fatal(err)
	}
	if crashed, _ := l2.Crashed(); crashed {
		t.Fatal("crash reported after clean finish")
	}
	// Finish is idempotent.
	if err := l2.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyEvery(t *testing.T) {
	p := &Policy{Every: 10}
	var due []uint64
	for sp := uint64(1); sp <= 35; sp++ {
		if p.Due(sp) {
			due = append(due, sp)
		}
	}
	want := []uint64{10, 20, 30}
	if len(due) != len(want) {
		t.Fatalf("due at %v, want %v", due, want)
	}
	for i := range want {
		if due[i] != want[i] {
			t.Fatalf("due at %v, want %v", due, want)
		}
	}
	if p.Taken() != 3 {
		t.Errorf("taken = %d", p.Taken())
	}
}

func TestPolicyMaxCheckpoints(t *testing.T) {
	p := &Policy{Every: 5, MaxCheckpoints: 1}
	n := 0
	for sp := uint64(1); sp <= 100; sp++ {
		if p.Due(sp) {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d checkpoints taken, want 1", n)
	}
	p.Reset()
	if !p.Due(5) {
		t.Fatal("after Reset the policy should fire again")
	}
}

func TestPolicyDisabled(t *testing.T) {
	var p *Policy
	if p.Due(10) {
		t.Fatal("nil policy fired")
	}
	p2 := &Policy{}
	if p2.Due(10) {
		t.Fatal("zero policy fired")
	}
}

func TestReplayStateMachine(t *testing.T) {
	r := NewReplay(3)
	if !r.Active() {
		t.Fatal("replay should start active")
	}
	if r.Step() {
		t.Fatal("done after 1 step")
	}
	if r.Step() {
		t.Fatal("done after 2 steps")
	}
	if !r.Step() {
		t.Fatal("not done after 3 steps")
	}
	if r.Active() {
		t.Fatal("still active after completion")
	}
	if r.Step() {
		t.Fatal("Step after completion reported done again")
	}
}

func TestReplayInactive(t *testing.T) {
	r := NewReplay(0)
	if r.Active() {
		t.Fatal("zero-target replay is active")
	}
	var nilReplay *Replay
	if nilReplay.Active() {
		t.Fatal("nil replay is active")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Inc() != 1 || c.Inc() != 2 {
		t.Fatal("Inc sequence wrong")
	}
	c.Set(100)
	if c.Load() != 100 {
		t.Fatal("Set/Load wrong")
	}
}
