package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ppar/internal/serial"
)

// stores returns one instance of every Store implementation, keyed by name,
// so the shared conformance tests below cover all of them.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	fsStore, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dedupFS, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"fs":         fsStore,
		"mem":        NewMem(),
		"gzip-mem":   NewGzip(NewMem(), 0),
		"gzip-fs":    newGzipFS(t),
		"gzip-fast":  NewGzip(NewMem(), 1),
		"dedup-mem":  NewDedup(NewMem()),
		"dedup-fs":   NewDedup(dedupFS),
		"dedup-gzip": NewDedup(NewGzip(NewMem(), 0)),
	}
}

func newGzipFS(t *testing.T) Store {
	t.Helper()
	fsStore, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewGzip(fsStore, 0)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			snap := serial.NewSnapshot("app", "seq", 50)
			snap.Fields["x"] = serial.Float64s([]float64{1, 2, 3})
			if err := s.Save(snap); err != nil {
				t.Fatal(err)
			}
			got, found, err := s.Load("app")
			if err != nil || !found {
				t.Fatalf("load: found=%v err=%v", found, err)
			}
			if got.SafePoints != 50 || got.Fields["x"].Fs[2] != 3 {
				t.Fatalf("bad snapshot: %+v", got)
			}
			if got.Mode != "seq" {
				t.Fatalf("mode %q survived round-trip as %q", "seq", got.Mode)
			}
		})
	}
}

func TestLoadMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, found, err := s.Load("nothing"); err != nil || found {
				t.Fatalf("found=%v err=%v for a snapshot that was never saved", found, err)
			}
			if _, found, err := s.LoadShard("nothing", 3); err != nil || found {
				t.Fatalf("shard: found=%v err=%v for a shard that was never saved", found, err)
			}
		})
	}
}

func TestShards(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for r := 0; r < 3; r++ {
				snap := serial.NewSnapshot("app", "dist", 10)
				snap.Fields["r"] = serial.Int64(int64(r))
				if err := s.SaveShard(snap, r); err != nil {
					t.Fatal(err)
				}
			}
			for r := 0; r < 3; r++ {
				got, found, err := s.LoadShard("app", r)
				if err != nil || !found {
					t.Fatalf("shard %d: found=%v err=%v", r, found, err)
				}
				if got.Fields["r"].I != int64(r) {
					t.Errorf("shard %d holds %d", r, got.Fields["r"].I)
				}
			}
			// Canonical and shard namespaces are separate.
			if _, found, _ := s.Load("app"); found {
				t.Error("canonical snapshot should not exist")
			}
		})
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for i := uint64(1); i <= 3; i++ {
				snap := serial.NewSnapshot("app", "seq", i)
				if err := s.Save(snap); err != nil {
					t.Fatal(err)
				}
			}
			got, _, err := s.Load("app")
			if err != nil {
				t.Fatal(err)
			}
			if got.SafePoints != 3 {
				t.Fatalf("latest snapshot has %d safe points, want 3", got.SafePoints)
			}
		})
	}
}

func TestClear(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			snap := serial.NewSnapshot("app", "seq", 1)
			if err := s.Save(snap); err != nil {
				t.Fatal(err)
			}
			if err := s.SaveShard(snap, 0); err != nil {
				t.Fatal(err)
			}
			other := serial.NewSnapshot("other", "seq", 2)
			if err := s.Save(other); err != nil {
				t.Fatal(err)
			}
			if err := s.Clear("app"); err != nil {
				t.Fatal(err)
			}
			if _, found, _ := s.Load("app"); found {
				t.Error("canonical snapshot survived Clear")
			}
			if _, found, _ := s.LoadShard("app", 0); found {
				t.Error("shard survived Clear")
			}
			if _, found, _ := s.Load("other"); !found {
				t.Error("Clear removed another application's snapshot")
			}
		})
	}
}

func TestLedgerLifecycle(t *testing.T) {
	dir := t.TempDir()
	fresh := map[string]func() Store{
		"fs": func() Store {
			s, err := NewFS(dir)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
	// Mem and Gzip keep ledger state inside the instance, so "the next run"
	// shares the same store value.
	mem := NewMem()
	fresh["mem"] = func() Store { return mem }
	gz := NewGzip(NewMem(), 0)
	fresh["gzip"] = func() Store { return gz }

	for name, mk := range fresh {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if crashed, _ := s.Crashed("app"); crashed {
				t.Fatal("fresh ledger reports crash")
			}
			if err := s.LedgerStart("app"); err != nil {
				t.Fatal(err)
			}
			// Simulate a crash: the next run's view sees the marker.
			s2 := mk()
			if crashed, _ := s2.Crashed("app"); !crashed {
				t.Fatal("crash not detected")
			}
			if err := s2.LedgerFinish("app"); err != nil {
				t.Fatal(err)
			}
			if crashed, _ := s2.Crashed("app"); crashed {
				t.Fatal("crash reported after clean finish")
			}
			// Finish is idempotent.
			if err := s2.LedgerFinish("app"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCorruptFileSurfacesError(t *testing.T) {
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := serial.NewSnapshot("app", "seq", 1)
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir, "app.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, found, err := s.Load("app"); err == nil || !found {
		t.Fatalf("corrupt checkpoint: found=%v err=%v, want found=true with error", found, err)
	}
}

func TestMemLoadDoesNotAliasSaver(t *testing.T) {
	s := NewMem()
	data := []float64{1, 2, 3}
	snap := serial.NewSnapshot("app", "seq", 1)
	snap.Fields["x"] = serial.Float64s(data)
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // mutate after save; the store must hold the old value
	got, _, err := s.Load("app")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields["x"].Fs[0] != 1 {
		t.Fatalf("stored snapshot aliased the saver's slice: %v", got.Fields["x"].Fs)
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	inner := NewMem()
	gz := NewGzip(inner, 0)
	snap := serial.NewSnapshot("app", "smp", 7)
	// Highly compressible payload.
	big := make([]float64, 1<<14)
	snap.Fields["G"] = serial.Float64s(big)
	if err := gz.Save(snap); err != nil {
		t.Fatal(err)
	}
	env, found, err := inner.Load("app")
	if err != nil || !found {
		t.Fatalf("envelope: found=%v err=%v", found, err)
	}
	if env.Mode != gzipMode {
		t.Fatalf("envelope mode %q, want %q", env.Mode, gzipMode)
	}
	var rawLen int
	{
		var buf bytes.Buffer
		if err := snap.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		rawLen = buf.Len()
	}
	if got := env.DataBytes(); got >= rawLen/10 {
		t.Fatalf("compressed payload %d bytes, raw %d — no real compression", got, rawLen)
	}
	// And the round trip restores the original.
	back, found, err := gz.Load("app")
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	if back.Mode != "smp" || back.SafePoints != 7 || len(back.Fields["G"].Fs) != 1<<14 {
		t.Fatalf("bad round trip: %+v", back)
	}
}

func TestGzipPassesThroughUncompressed(t *testing.T) {
	inner := NewMem()
	plain := serial.NewSnapshot("app", "seq", 3)
	plain.Fields["x"] = serial.Int64(42)
	if err := inner.Save(plain); err != nil {
		t.Fatal(err)
	}
	// Upgrading a store to compression must not invalidate old snapshots.
	gz := NewGzip(inner, 0)
	got, found, err := gz.Load("app")
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	if got.Fields["x"].I != 42 {
		t.Fatalf("pass-through snapshot mangled: %+v", got)
	}
}

func TestPolicyEvery(t *testing.T) {
	p := &Policy{Every: 10}
	var due []uint64
	for sp := uint64(1); sp <= 35; sp++ {
		if p.Due(sp) {
			due = append(due, sp)
		}
	}
	want := []uint64{10, 20, 30}
	if len(due) != len(want) {
		t.Fatalf("due at %v, want %v", due, want)
	}
	for i := range want {
		if due[i] != want[i] {
			t.Fatalf("due at %v, want %v", due, want)
		}
	}
	if p.Taken() != 3 {
		t.Errorf("taken = %d", p.Taken())
	}
}

func TestPolicyMaxCheckpoints(t *testing.T) {
	p := &Policy{Every: 5, MaxCheckpoints: 1}
	n := 0
	for sp := uint64(1); sp <= 100; sp++ {
		if p.Due(sp) {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d checkpoints taken, want 1", n)
	}
	p.Reset()
	if !p.Due(5) {
		t.Fatal("after Reset the policy should fire again")
	}
}

func TestPolicyDisabled(t *testing.T) {
	var p *Policy
	if p.Due(10) {
		t.Fatal("nil policy fired")
	}
	p2 := &Policy{}
	if p2.Due(10) {
		t.Fatal("zero policy fired")
	}
}

func TestReplayStateMachine(t *testing.T) {
	r := NewReplay(3)
	if !r.Active() {
		t.Fatal("replay should start active")
	}
	if r.Step() {
		t.Fatal("done after 1 step")
	}
	if r.Step() {
		t.Fatal("done after 2 steps")
	}
	if !r.Step() {
		t.Fatal("not done after 3 steps")
	}
	if r.Active() {
		t.Fatal("still active after completion")
	}
	if r.Step() {
		t.Fatal("Step after completion reported done again")
	}
}

func TestReplayInactive(t *testing.T) {
	r := NewReplay(0)
	if r.Active() {
		t.Fatal("zero-target replay is active")
	}
	var nilReplay *Replay
	if nilReplay.Active() {
		t.Fatal("nil replay is active")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Inc() != 1 || c.Inc() != 2 {
		t.Fatal("Inc sequence wrong")
	}
	c.Set(100)
	if c.Load() != 100 {
		t.Fatal("Set/Load wrong")
	}
}

// Clearing one application must not touch another whose name shares the
// prefix: the old glob implementation of FS.Clear turned Clear("sor") into
// rm sor*.ckpt, wiping "sor-large" too.
func TestClearIsolatesPrefixSharingApps(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for _, app := range []string{"sor", "sor-large", "sor.r2x"} {
				snap := serial.NewSnapshot(app, "seq", 1)
				if err := s.Save(snap); err != nil {
					t.Fatal(err)
				}
				if err := s.SaveShard(snap, 1); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Clear("sor"); err != nil {
				t.Fatal(err)
			}
			if _, found, _ := s.Load("sor"); found {
				t.Error(`canonical "sor" snapshot survived Clear`)
			}
			if _, found, _ := s.LoadShard("sor", 1); found {
				t.Error(`"sor" shard survived Clear`)
			}
			for _, app := range []string{"sor-large", "sor.r2x"} {
				if _, found, _ := s.Load(app); !found {
					t.Errorf("Clear(%q) deleted %q's canonical snapshot", "sor", app)
				}
				if _, found, _ := s.LoadShard(app, 1); !found {
					t.Errorf("Clear(%q) deleted %q's shard", "sor", app)
				}
			}
		})
	}
}

// A corrupt compressed snapshot exists — Load must say so (found=true) while
// reporting the error, so callers can distinguish "no restart point" from
// "restart point damaged".
func TestGzipCorruptEnvelopeReportsFound(t *testing.T) {
	inner := NewMem()
	env := serial.NewSnapshot("app", gzipMode, 4)
	env.Fields[gzipField] = serial.Bytes([]byte("this is not gzip data"))
	if err := inner.Save(env); err != nil {
		t.Fatal(err)
	}
	if err := inner.SaveShard(env, 2); err != nil {
		t.Fatal(err)
	}
	gz := NewGzip(inner, 0)
	if _, found, err := gz.Load("app"); !found || err == nil {
		t.Fatalf("Load: found=%v err=%v, want found=true with error", found, err)
	}
	if _, found, err := gz.LoadShard("app", 2); !found || err == nil {
		t.Fatalf("LoadShard: found=%v err=%v, want found=true with error", found, err)
	}
}

// A write killed mid-flight leaves only a temp file; the previous, fully
// persisted checkpoint must remain loadable — no torn state observable
// through Load.
func TestStaleTempFileDoesNotBreakLoad(t *testing.T) {
	s, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := serial.NewSnapshot("app", "seq", 6)
	snap.Fields["x"] = serial.Float64(1)
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash during the next save: a half-written temp file.
	if err := os.WriteFile(filepath.Join(s.Dir, ".ckpt-123456"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.Load("app")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if got.SafePoints != 6 {
		t.Fatalf("loaded snapshot at sp %d, want 6", got.SafePoints)
	}
}
