package ckpt

import (
	"fmt"

	"ppar/internal/serial"
)

// LoadResume materialises the restart point of app from store s: the
// canonical base snapshot with its delta chain replayed on top, in order.
// The result is a plain full snapshot — the state at the last consistent
// link — so every consumer of canonical snapshots (cross-mode restart
// included) works unchanged whether the run that produced it checkpointed
// incrementally or not. found/err follow the Load conventions: found=false
// means no restart point exists, found=true with an error means one exists
// but is damaged.
func LoadResume(s Store, app string) (*serial.Snapshot, bool, error) {
	base, deltas, found, err := s.LoadChain(app)
	if err != nil || !found {
		return nil, found, err
	}
	for _, d := range deltas {
		if err := d.Apply(base); err != nil {
			// LoadChain only returns structurally valid links, so a failed
			// apply means the chain itself is inconsistent — surface it
			// rather than restart from silently half-applied state.
			return nil, true, fmt.Errorf("ckpt: applying delta %d: %w", d.Seq, err)
		}
	}
	return base, true, nil
}
