package ckpt

import (
	"os"
	"path/filepath"
	"testing"

	"ppar/internal/serial"
)

// chainBase saves a base snapshot at sp with one large (chunked) field and
// one scalar, returning the live state for building deltas against.
func chainBase(t *testing.T, s Store, sp uint64) *serial.Snapshot {
	t.Helper()
	snap := serial.NewSnapshot("app", "seq", sp)
	vec := make([]float64, 2*serial.DeltaChunkElems)
	for i := range vec {
		vec[i] = float64(i)
	}
	snap.Fields["vec"] = serial.Float64s(vec)
	snap.Fields["it"] = serial.Int64(int64(sp))
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// chainDelta builds and saves the next delta: it bumps the scalar and one
// slice chunk, mirroring the change into live.
func chainDelta(t *testing.T, s Store, live *serial.Snapshot, baseSP, seq, sp uint64) {
	t.Helper()
	d := serial.NewDelta("app", "seq", sp, baseSP)
	d.Seq = seq
	d.Full["it"] = serial.Int64(int64(sp))
	live.Fields["it"] = serial.Int64(int64(sp))
	chunk := make([]float64, 4)
	for i := range chunk {
		chunk[i] = float64(sp*100 + uint64(i))
		live.Fields["vec"].Fs[serial.DeltaChunkElems+i] = chunk[i]
	}
	d.Slices["vec"] = serial.SliceDelta{Len: len(live.Fields["vec"].Fs), Chunks: []serial.SliceChunk{
		{Off: serial.DeltaChunkElems, Data: chunk},
	}}
	live.SafePoints = sp
	if err := s.SaveDelta(d); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaChainRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			live := chainBase(t, s, 10)
			chainDelta(t, s, live, 10, 1, 12)
			chainDelta(t, s, live, 10, 2, 14)

			base, deltas, found, err := s.LoadChain("app")
			if err != nil || !found {
				t.Fatalf("LoadChain: found=%v err=%v", found, err)
			}
			if base.SafePoints != 10 || len(deltas) != 2 {
				t.Fatalf("base sp=%d deltas=%d, want 10/2", base.SafePoints, len(deltas))
			}
			snap, found, err := LoadResume(s, "app")
			if err != nil || !found {
				t.Fatalf("LoadResume: found=%v err=%v", found, err)
			}
			if snap.SafePoints != 14 {
				t.Fatalf("materialised sp=%d, want 14", snap.SafePoints)
			}
			if got := snap.Fields["it"].I; got != 14 {
				t.Fatalf("it=%d, want 14", got)
			}
			for i := 0; i < 4; i++ {
				if got, want := snap.Fields["vec"].Fs[serial.DeltaChunkElems+i], live.Fields["vec"].Fs[serial.DeltaChunkElems+i]; got != want {
					t.Fatalf("vec[%d]=%v, want %v", serial.DeltaChunkElems+i, got, want)
				}
			}
		})
	}
}

func TestDeltaChainTruncatesAtGap(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			live := chainBase(t, s, 10)
			chainDelta(t, s, live, 10, 1, 12)
			chainDelta(t, s, live, 10, 3, 16) // seq 2 never written

			_, deltas, _, err := s.LoadChain("app")
			if err != nil {
				t.Fatal(err)
			}
			if len(deltas) != 1 || deltas[0].Seq != 1 {
				t.Fatalf("chain past a gap: got %d deltas", len(deltas))
			}
			snap, _, err := LoadResume(s, "app")
			if err != nil {
				t.Fatal(err)
			}
			if snap.SafePoints != 12 {
				t.Fatalf("materialised sp=%d, want the consistent prefix at 12", snap.SafePoints)
			}
		})
	}
}

func TestDeltaChainIgnoresStaleDeltas(t *testing.T) {
	// A compaction that crashed between writing the new base and clearing
	// the old chain leaves deltas whose BaseSP does not match; they must be
	// filtered, not applied.
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			live := chainBase(t, s, 10)
			chainDelta(t, s, live, 10, 1, 12)
			chainBase(t, s, 20) // compaction wrote a new base ...
			// ... and crashed before ClearDeltas.
			snap, found, err := LoadResume(s, "app")
			if err != nil || !found {
				t.Fatalf("found=%v err=%v", found, err)
			}
			if snap.SafePoints != 20 {
				t.Fatalf("materialised sp=%d, want the new base at 20 with the stale delta ignored", snap.SafePoints)
			}
		})
	}
}

func TestClearDeltas(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			live := chainBase(t, s, 10)
			chainDelta(t, s, live, 10, 1, 12)
			if err := s.ClearDeltas("app"); err != nil {
				t.Fatal(err)
			}
			base, deltas, found, err := s.LoadChain("app")
			if err != nil || !found || base == nil {
				t.Fatalf("base must survive ClearDeltas: found=%v err=%v", found, err)
			}
			if len(deltas) != 0 {
				t.Fatalf("%d deltas survived ClearDeltas", len(deltas))
			}
		})
	}
}

func TestClearRemovesDeltas(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			live := chainBase(t, s, 10)
			chainDelta(t, s, live, 10, 1, 12)
			// A sibling app whose name shares the prefix must be untouched.
			other := serial.NewSnapshot("app-large", "seq", 7)
			if err := s.Save(other); err != nil {
				t.Fatal(err)
			}
			if err := s.Clear("app"); err != nil {
				t.Fatal(err)
			}
			if _, _, found, _ := s.LoadChain("app"); found {
				t.Fatal("Clear left the canonical chain behind")
			}
			if _, found, _ := s.Load("app-large"); !found {
				t.Fatal("Clear wiped a prefix-sharing sibling app")
			}
		})
	}
}

func TestFSDeltaTornWriteTruncatesChain(t *testing.T) {
	fsStore, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	live := chainBase(t, fsStore, 10)
	chainDelta(t, fsStore, live, 10, 1, 12)
	chainDelta(t, fsStore, live, 10, 2, 14)
	// Tear the second link on disk: the chain must fall back to seq 1.
	path := filepath.Join(fsStore.Dir, "app.d2.ckpt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	snap, found, err := LoadResume(fsStore, "app")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if snap.SafePoints != 12 {
		t.Fatalf("materialised sp=%d, want the pre-tear prefix at 12", snap.SafePoints)
	}
}

func TestSaveDeltaRequiresSeq(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			d := serial.NewDelta("app", "seq", 12, 10)
			if err := s.SaveDelta(d); err == nil {
				t.Fatal("SaveDelta accepted a delta without a chain position")
			}
		})
	}
}

func TestDeltaChainDropsVanishedFieldAcrossRestart(t *testing.T) {
	// A field the application drops between captures must stay gone after a
	// restart: the delta's Removed record travels through every store
	// (including the gzip envelope) and LoadResume's chain replay honours it
	// instead of resurrecting the field from the base snapshot.
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			live := chainBase(t, s, 10)
			live.Fields["tmp"] = serial.Bytes([]byte("scratch"))
			if err := s.Save(live); err != nil {
				t.Fatal(err)
			}
			h := serial.NewStateHash()
			h.Rehash(live)

			cur := live.Clone()
			delete(cur.Fields, "tmp")
			cur.SafePoints = 12
			d := h.Diff(cur, 10, true)
			d.Seq = 1
			if len(d.Removed) != 1 || d.Removed[0] != "tmp" {
				t.Fatalf("Diff Removed = %v, want [tmp]", d.Removed)
			}
			if err := s.SaveDelta(d); err != nil {
				t.Fatal(err)
			}

			snap, found, err := LoadResume(s, "app")
			if err != nil || !found {
				t.Fatalf("LoadResume: found=%v err=%v", found, err)
			}
			if _, ok := snap.Fields["tmp"]; ok {
				t.Fatal("restart resurrected a field the application had dropped")
			}
			if snap.SafePoints != 12 {
				t.Fatalf("materialised sp=%d, want 12", snap.SafePoints)
			}
		})
	}
}
