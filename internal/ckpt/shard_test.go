package ckpt

import (
	"strings"
	"testing"

	"ppar/internal/partition"
	"ppar/internal/serial"
)

// shardStores builds one of each Store flavour for chain tests.
func shardStores(t *testing.T) map[string]Store {
	fs, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"fs":    fs,
		"mem":   NewMem(),
		"gzip":  NewGzip(NewMem(), 0),
		"fault": NewFault(),
	}
}

// anchorLink builds a self-contained anchor link at the given safe point.
func anchorLink(app string, rank int, sp, seq uint64, data []float64) *serial.Delta {
	snap := serial.NewSnapshot(app, "shard", sp)
	snap.Fields["x"] = serial.Float64s(data)
	snap.Fields["it"] = serial.Int64(int64(sp))
	d := serial.AnchorDelta(snap)
	d.Seq = seq
	return d
}

// deltaLink builds a plain link replacing one field.
func deltaLink(app string, sp, baseSP, seq uint64, it int64) *serial.Delta {
	d := serial.NewDelta(app, "shard", sp, baseSP)
	d.Seq = seq
	d.Full["it"] = serial.Int64(it)
	return d
}

func TestShardChainStoreOps(t *testing.T) {
	for name, s := range shardStores(t) {
		t.Run(name, func(t *testing.T) {
			const app = "chain"
			// Two ranks, two links each; a second app shares the prefix to
			// pin the exact-name matching of Clear.
			for rank := 0; rank < 2; rank++ {
				if err := s.SaveShardDelta(anchorLink(app, rank, 4, 1, []float64{1, 2}), rank); err != nil {
					t.Fatal(err)
				}
				if err := s.SaveShardDelta(deltaLink(app, 6, 4, 2, 6), rank); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.SaveShardDelta(anchorLink(app+"-x", 0, 4, 1, []float64{9}), 0); err != nil {
				t.Fatal(err)
			}
			if err := s.SaveManifest(&serial.Manifest{
				App: app, Mode: "dist", SafePoints: 6,
				Shards: []serial.ManifestShard{{Anchor: 1, Seq: 2}, {Anchor: 1, Seq: 2}},
			}); err != nil {
				t.Fatal(err)
			}

			d, found, err := s.LoadShardDelta(app, 1, 2)
			if err != nil || !found {
				t.Fatalf("load link: found=%v err=%v", found, err)
			}
			if d.Seq != 2 || d.SafePoints != 6 || d.Full["it"].I != 6 {
				t.Fatalf("link round trip: %+v", d)
			}
			m, found, err := s.LoadManifest(app)
			if err != nil || !found {
				t.Fatalf("load manifest: found=%v err=%v", found, err)
			}
			if m.SafePoints != 6 || m.World() != 2 {
				t.Fatalf("manifest round trip: %+v", m)
			}

			// A zero-seq link must be rejected before it can damage a chain.
			if err := s.SaveShardDelta(deltaLink(app, 8, 4, 0, 8), 0); err == nil {
				t.Fatal("zero-seq shard link accepted")
			}

			// GC below the anchor keeps the committed window intact.
			if err := s.ClearShardDeltas(app, 0, 2); err != nil {
				t.Fatal(err)
			}
			if _, found, _ := s.LoadShardDelta(app, 0, 1); found {
				t.Fatal("GC left the link below the bound")
			}
			if _, found, _ := s.LoadShardDelta(app, 0, 2); !found {
				t.Fatal("GC removed a committed link")
			}
			if _, found, _ := s.LoadShardDelta(app, 1, 1); !found {
				t.Fatal("GC of rank 0 touched rank 1's chain")
			}

			// Clear removes chain links and the manifest, but only for the
			// exact app.
			if err := s.Clear(app); err != nil {
				t.Fatal(err)
			}
			if _, found, _ := s.LoadManifest(app); found {
				t.Fatal("Clear left the manifest")
			}
			if _, found, _ := s.LoadShardDelta(app, 1, 2); found {
				t.Fatal("Clear left a chain link")
			}
			if _, found, _ := s.LoadShardDelta(app+"-x", 0, 1); !found {
				t.Fatal("Clear wiped the prefix-sharing app's chain")
			}
		})
	}
}

func TestLoadShardResumeMaterialisesCommittedWindow(t *testing.T) {
	s := NewMem()
	const app = "resume"
	// Rank chains: anchor at sp 2 (seq 1), deltas at sp 4 and 6 (seq 2, 3),
	// plus an UNCOMMITTED link at sp 8 the manifest must never read.
	for rank := 0; rank < 2; rank++ {
		base := []float64{float64(rank), float64(rank + 1)}
		if err := s.SaveShardDelta(anchorLink(app, rank, 2, 1, base), rank); err != nil {
			t.Fatal(err)
		}
		for seq, sp := range map[uint64]uint64{2: 4, 3: 6, 4: 8} {
			if err := s.SaveShardDelta(deltaLink(app, sp, 2, seq, int64(sp)), rank); err != nil {
				t.Fatal(err)
			}
		}
	}
	man := &serial.Manifest{App: app, Mode: "dist", SafePoints: 6,
		Shards: make([]serial.ManifestShard, 2)}
	for r := range man.Shards {
		d, _, err := s.LoadShardDelta(app, r, 3)
		if err != nil {
			t.Fatal(err)
		}
		crc, size, err := d.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		man.Shards[r] = serial.ManifestShard{Anchor: 1, Seq: 3, CRC: crc, Size: size}
	}
	if err := s.SaveManifest(man); err != nil {
		t.Fatal(err)
	}

	shards, m, found, err := LoadShardResume(s, app)
	if err != nil || !found {
		t.Fatalf("resume: found=%v err=%v", found, err)
	}
	if m.SafePoints != 6 || len(shards) != 2 {
		t.Fatalf("resume shape: %+v, %d shards", m, len(shards))
	}
	for r, snap := range shards {
		if snap.SafePoints != 6 || snap.Fields["it"].I != 6 {
			t.Fatalf("shard %d materialised wrong state: %+v", r, snap)
		}
		if got := snap.Fields["x"].Fs; got[0] != float64(r) {
			t.Fatalf("shard %d lost its anchor data: %v", r, got)
		}
	}

	// A link overwritten AFTER the commit (the crashed-later-save signature
	// when sequence numbers were mis-seeded) must fail the fingerprint gate.
	if err := s.SaveShardDelta(deltaLink(app, 99, 2, 3, 99), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, found, err := LoadShardResume(s, app); !found || err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("overwritten committed link accepted: found=%v err=%v", found, err)
	}

	// A rebase moves the window: a new anchor at seq 4 committed at sp 8
	// makes links 1-3 stale, and GC below the new anchor must not disturb
	// the committed state.
	for rank := 0; rank < 2; rank++ {
		if err := s.SaveShardDelta(anchorLink(app, rank, 8, 4, []float64{float64(rank), 8}), rank); err != nil {
			t.Fatal(err)
		}
	}
	man2 := &serial.Manifest{App: app, Mode: "dist", SafePoints: 8,
		Shards: make([]serial.ManifestShard, 2)}
	for r := range man2.Shards {
		d, _, err := s.LoadShardDelta(app, r, 4)
		if err != nil {
			t.Fatal(err)
		}
		crc, size, err := d.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		man2.Shards[r] = serial.ManifestShard{Anchor: 4, Seq: 4, CRC: crc, Size: size}
	}
	if err := s.SaveManifest(man2); err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		if err := s.ClearShardDeltas(app, rank, 4); err != nil {
			t.Fatal(err)
		}
	}
	if shards, m, _, err := LoadShardResume(s, app); err != nil || m.SafePoints != 8 || shards[0].SafePoints != 8 {
		t.Fatalf("resume after rebase+GC: %v (manifest %+v)", err, m)
	}

	// A hole INSIDE the committed window is an error, never a silent older
	// state.
	if err := s.ClearShardDeltas(app, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, found, err := LoadShardResume(s, app); !found || err == nil {
		t.Fatalf("missing committed link accepted: found=%v err=%v", found, err)
	}

	// No manifest at all: no sharded restart point, cleanly.
	if err := s.Clear(app); err != nil {
		t.Fatal(err)
	}
	if _, _, found, err := LoadShardResume(s, app); found || err != nil {
		t.Fatalf("want found=false after Clear, got found=%v err=%v", found, err)
	}
}

func TestReshardReassemblesEveryLayout(t *testing.T) {
	const world = 3
	full := make([]float64, 11)
	for i := range full {
		full[i] = float64(10 + i)
	}
	matrix := make([][]float64, 7)
	for i := range matrix {
		matrix[i] = []float64{float64(i), float64(i) * 2}
	}
	ints := []float64{1, 2, 3, 4, 5, 6, 7, 8}

	layouts := map[string]ShardLayout{
		"vec":  {Elem: ElemFloats, Kind: partition.Block, Chunk: 1, N: len(full)},
		"cyc":  {Elem: ElemFloats, Kind: partition.Cyclic, Chunk: 1, N: len(full)},
		"bc":   {Elem: ElemInts, Kind: partition.BlockCyclic, Chunk: 2, N: len(ints)},
		"grid": {Elem: ElemMatrix, Kind: partition.Block, Chunk: 1, N: len(matrix), Cols: 2},
	}
	shards := make([]*serial.Snapshot, world)
	for r := range shards {
		snap := serial.NewSnapshot("rs", "shard", 5)
		snap.Fields["scalar"] = serial.Float64(3.5)
		for name, l := range layouts {
			lay := l.layout(world)
			var blk []float64
			lay.Indices(r, func(i int) {
				switch name {
				case "grid":
					blk = append(blk, matrix[i]...)
				case "bc":
					blk = append(blk, ints[i])
				default:
					blk = append(blk, full[i])
				}
			})
			snap.Fields[name] = serial.Float64s(blk)
			snap.Fields[LayoutField(name)] = LayoutValue(l)
		}
		shards[r] = snap
	}

	out, err := Reshard(shards, "rs", 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.SafePoints != 5 || out.Mode != "canonical" {
		t.Fatalf("reshard header: %+v", out)
	}
	if out.Fields["scalar"].F != 3.5 {
		t.Fatal("replicated scalar lost")
	}
	for _, name := range []string{"vec", "cyc"} {
		got := out.Fields[name].Fs
		for i, want := range full {
			if got[i] != want {
				t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want)
			}
		}
	}
	for i, want := range ints {
		if out.Fields["bc"].Is[i] != int64(want) {
			t.Fatalf("bc[%d] = %v, want %v", i, out.Fields["bc"].Is[i], want)
		}
	}
	grid := out.Fields["grid"]
	if grid.Rows != len(matrix) || grid.Cols != 2 {
		t.Fatalf("grid shape %dx%d", grid.Rows, grid.Cols)
	}
	for i, row := range matrix {
		for j, want := range row {
			if grid.F2[i][j] != want {
				t.Fatalf("grid[%d][%d] = %v, want %v", i, j, grid.F2[i][j], want)
			}
		}
	}

	// A block whose size disagrees with the layout must fail loudly.
	shards[1].Fields["vec"] = serial.Float64s([]float64{1})
	if _, err := Reshard(shards, "rs", 5); err == nil {
		t.Fatal("short packed block accepted")
	}
}
