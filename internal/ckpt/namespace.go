package ckpt

import (
	"fmt"
	"strings"

	"ppar/internal/serial"
)

// NamespaceSep separates the namespace prefix from the application name in
// the keys a Namespaced store hands its inner store. "~" is legal in file
// names on every supported platform and never appears in the path-free app
// names the engine generates, so prefixed keys stay flat (no directories
// are implied on the filesystem backend) and distinct namespaces can never
// collide as long as prefixes themselves do not contain the separator.
const NamespaceSep = "~"

// Namespaced multiplexes one inner Store between many applications (or
// tenants): every application name is rewritten to "<prefix>~<app>" on the
// way in and the prefix is stripped from loaded artifacts on the way out.
// Because the inner store's exact-name ownership rules apply to the full
// prefixed key, engines running under different prefixes can never see —
// or Clear — each other's checkpoints, even when one prefix is a prefix of
// another ("t1" vs "t10"): the separator makes "t1~app" and "t10~app"
// unrelated names.
//
// The snapshot/delta/manifest App fields are rewritten on shallow copies,
// never in place, so a caller's artifact (possibly shared with an
// asynchronous writer) is not mutated by saving it through the wrapper.
type Namespaced struct {
	inner  Store
	prefix string // includes the trailing separator
}

// NewNamespaced wraps inner so every application name is keyed under
// prefix. The prefix must be non-empty and must not contain the separator.
func NewNamespaced(prefix string, inner Store) (*Namespaced, error) {
	if inner == nil {
		return nil, fmt.Errorf("ckpt: namespaced store needs an inner store")
	}
	if prefix == "" {
		return nil, fmt.Errorf("ckpt: empty namespace prefix")
	}
	if strings.Contains(prefix, NamespaceSep) {
		return nil, fmt.Errorf("ckpt: namespace prefix %q contains the separator %q", prefix, NamespaceSep)
	}
	return &Namespaced{inner: inner, prefix: prefix + NamespaceSep}, nil
}

func (s *Namespaced) key(app string) string { return s.prefix + app }

func (s *Namespaced) wrapSnap(snap *serial.Snapshot) *serial.Snapshot {
	c := *snap
	c.App = s.key(snap.App)
	return &c
}

func (s *Namespaced) unwrapSnap(snap *serial.Snapshot) *serial.Snapshot {
	if snap == nil {
		return nil
	}
	c := *snap
	c.App = strings.TrimPrefix(snap.App, s.prefix)
	return &c
}

func (s *Namespaced) wrapDelta(d *serial.Delta) *serial.Delta {
	c := *d
	c.App = s.key(d.App)
	return &c
}

func (s *Namespaced) unwrapDelta(d *serial.Delta) *serial.Delta {
	if d == nil {
		return nil
	}
	c := *d
	c.App = strings.TrimPrefix(d.App, s.prefix)
	return &c
}

// Save implements Store.
func (s *Namespaced) Save(snap *serial.Snapshot) error {
	return s.inner.Save(s.wrapSnap(snap))
}

// SaveShard implements Store.
func (s *Namespaced) SaveShard(snap *serial.Snapshot, rank int) error {
	return s.inner.SaveShard(s.wrapSnap(snap), rank)
}

// SaveDelta implements Store.
func (s *Namespaced) SaveDelta(d *serial.Delta) error {
	return s.inner.SaveDelta(s.wrapDelta(d))
}

// Load implements Store.
func (s *Namespaced) Load(app string) (*serial.Snapshot, bool, error) {
	snap, found, err := s.inner.Load(s.key(app))
	return s.unwrapSnap(snap), found, err
}

// LoadChain implements Store.
func (s *Namespaced) LoadChain(app string) (*serial.Snapshot, []*serial.Delta, bool, error) {
	base, deltas, found, err := s.inner.LoadChain(s.key(app))
	out := deltas
	if len(deltas) > 0 {
		out = make([]*serial.Delta, len(deltas))
		for i, d := range deltas {
			out[i] = s.unwrapDelta(d)
		}
	}
	return s.unwrapSnap(base), out, found, err
}

// LoadShard implements Store.
func (s *Namespaced) LoadShard(app string, rank int) (*serial.Snapshot, bool, error) {
	snap, found, err := s.inner.LoadShard(s.key(app), rank)
	return s.unwrapSnap(snap), found, err
}

// SaveShardDelta implements Store.
func (s *Namespaced) SaveShardDelta(d *serial.Delta, rank int) error {
	return s.inner.SaveShardDelta(s.wrapDelta(d), rank)
}

// LoadShardDelta implements Store.
func (s *Namespaced) LoadShardDelta(app string, rank int, seq uint64) (*serial.Delta, bool, error) {
	d, found, err := s.inner.LoadShardDelta(s.key(app), rank, seq)
	return s.unwrapDelta(d), found, err
}

// ClearShardDeltas implements Store.
func (s *Namespaced) ClearShardDeltas(app string, rank int, below uint64) error {
	return s.inner.ClearShardDeltas(s.key(app), rank, below)
}

// SaveManifest implements Store.
func (s *Namespaced) SaveManifest(m *serial.Manifest) error {
	c := *m
	c.App = s.key(m.App)
	return s.inner.SaveManifest(&c)
}

// LoadManifest implements Store.
func (s *Namespaced) LoadManifest(app string) (*serial.Manifest, bool, error) {
	m, found, err := s.inner.LoadManifest(s.key(app))
	if m != nil {
		c := *m
		c.App = strings.TrimPrefix(m.App, s.prefix)
		m = &c
	}
	return m, found, err
}

// Clear implements Store.
func (s *Namespaced) Clear(app string) error { return s.inner.Clear(s.key(app)) }

// ClearDeltas implements Store.
func (s *Namespaced) ClearDeltas(app string) error { return s.inner.ClearDeltas(s.key(app)) }

// LedgerStart implements Store.
func (s *Namespaced) LedgerStart(app string) error { return s.inner.LedgerStart(s.key(app)) }

// LedgerFinish implements Store.
func (s *Namespaced) LedgerFinish(app string) error { return s.inner.LedgerFinish(s.key(app)) }

// Crashed implements Store.
func (s *Namespaced) Crashed(app string) (bool, error) { return s.inner.Crashed(s.key(app)) }

// PutChunk implements Store. Chunk keys pass through UNPREFIXED — by
// design: a chunk is immutable content named by its own digest, so two
// tenants checkpointing identical state share one stored copy. Isolation
// is preserved by the reference counts: a tenant's artifacts only ever
// release the references they took, so one tenant clearing its checkpoints
// can never free a chunk another tenant still references. (Clear itself
// never touches chunks; only ReleaseChunks does.)
func (s *Namespaced) PutChunk(key string, payload []byte) (bool, error) {
	return s.inner.PutChunk(key, payload)
}

// GetChunk implements Store (unprefixed; see PutChunk).
func (s *Namespaced) GetChunk(key string) ([]byte, bool, error) { return s.inner.GetChunk(key) }

// ReleaseChunks implements Store (unprefixed; see PutChunk).
func (s *Namespaced) ReleaseChunks(keys []string) error { return s.inner.ReleaseChunks(keys) }
