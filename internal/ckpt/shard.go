package ckpt

import (
	"fmt"
	"strings"

	"ppar/internal/partition"
	"ppar/internal/serial"
)

// Shard snapshots store partitioned fields as packed flat blocks (each rank
// owns only its indices), which is what makes per-rank saves cheap — but it
// means the shards alone cannot be reassembled into a canonical snapshot
// without knowing how the field was partitioned. Each shard therefore
// carries one small metadata field per partitioned field, written by the
// engine at capture time and consumed here at re-sharding restore:
// LayoutField(name) holds {element kind, partition kind, chunk, extent,
// columns} as an int vector. The metadata rides inside the ordinary
// container, so every store backend and the whole chain machinery handle it
// transparently.

// layoutFieldPrefix marks shard-layout metadata fields.
const layoutFieldPrefix = "__layout."

// Element kinds of a partitioned field, as recorded in shard layout
// metadata (packed blocks are always flat float64 vectors on the wire).
const (
	ElemFloats = 1 // []float64
	ElemInts   = 2 // []int
	ElemMatrix = 3 // [][]float64, partitioned by rows
)

// ShardLayout describes how one partitioned field was split across the
// ranks of a shard checkpoint.
type ShardLayout struct {
	Elem   int            // ElemFloats, ElemInts or ElemMatrix
	Kind   partition.Kind // partitioning strategy
	Chunk  int            // block-cyclic chunk size (1 otherwise)
	N      int            // partitionable extent (slice length / matrix rows)
	Cols   int            // matrix columns (0 otherwise)
	Bounds []int          // explicit Block cut points (nil when evenly divided)
}

// LayoutField names the metadata field describing the partitioned field
// name inside a shard snapshot.
func LayoutField(name string) string { return layoutFieldPrefix + name }

// IsLayoutField reports whether a shard-snapshot field is layout metadata
// rather than application data.
func IsLayoutField(name string) bool { return strings.HasPrefix(name, layoutFieldPrefix) }

// LayoutValue encodes a ShardLayout as a snapshot field value. The five
// fixed ints are followed by the explicit Block cut points, when any — older
// decoders that expect exactly five would reject them, but newer decoders
// accept the five-int form unchanged, so evenly-divided snapshots stay
// byte-identical across versions.
func LayoutValue(l ShardLayout) serial.Value {
	is := []int64{int64(l.Elem), int64(l.Kind), int64(l.Chunk), int64(l.N), int64(l.Cols)}
	for _, b := range l.Bounds {
		is = append(is, int64(b))
	}
	return serial.Int64s(is)
}

// ParseLayout decodes a ShardLayout from its metadata value — the engine's
// shard restore consumes it to unpack blocks under the boundaries they were
// packed with (which a rebalanced Task run may have moved off the even
// division).
func ParseLayout(name string, v serial.Value) (ShardLayout, error) {
	return parseLayout(name, v)
}

// parseLayout decodes a ShardLayout from its metadata value.
func parseLayout(name string, v serial.Value) (ShardLayout, error) {
	if v.Tag != serial.TInt64s || len(v.Is) < 5 {
		return ShardLayout{}, fmt.Errorf("ckpt: shard layout metadata for %q is malformed", name)
	}
	l := ShardLayout{
		Elem: int(v.Is[0]), Kind: partition.Kind(v.Is[1]),
		Chunk: int(v.Is[2]), N: int(v.Is[3]), Cols: int(v.Is[4]),
	}
	if l.Elem < ElemFloats || l.Elem > ElemMatrix || l.N < 0 || l.Cols < 0 {
		return ShardLayout{}, fmt.Errorf("ckpt: shard layout metadata for %q is out of range", name)
	}
	if len(v.Is) > 5 {
		if l.Kind != partition.Block {
			return ShardLayout{}, fmt.Errorf("ckpt: shard layout metadata for %q carries bounds on a non-block layout", name)
		}
		l.Bounds = make([]int, len(v.Is)-5)
		for i := range l.Bounds {
			l.Bounds[i] = int(v.Is[5+i])
		}
		if l.Bounds[0] != 0 || l.Bounds[len(l.Bounds)-1] != l.N {
			return ShardLayout{}, fmt.Errorf("ckpt: shard layout bounds for %q do not span [0,%d]", name, l.N)
		}
		for i := 1; i < len(l.Bounds); i++ {
			if l.Bounds[i] < l.Bounds[i-1] {
				return ShardLayout{}, fmt.Errorf("ckpt: shard layout bounds for %q are not monotone", name)
			}
		}
	}
	return l, nil
}

func (l ShardLayout) layout(parts int) partition.Layout {
	if l.Kind == partition.BlockCyclic {
		chunk := l.Chunk
		if chunk < 1 {
			chunk = 1
		}
		return partition.NewBlockCyclic(l.N, parts, chunk)
	}
	lay := partition.New(l.Kind, l.N, parts)
	// Rebalanced cut points only apply when the world they were recorded for
	// matches; a re-shard into a different world size falls back to the even
	// division, exactly as a fresh launch would.
	if l.Kind == partition.Block && len(l.Bounds) == parts+1 {
		lay = lay.WithBounds(l.Bounds)
	}
	return lay
}

// LoadShardResume materialises the sharded restart point of app from store
// s: the newest committed manifest plus, per rank, the chain links it
// references (anchor..seq, the anchor's full state with later deltas
// replayed on top). Restore is manifest-gated: artifacts a crashed save
// left behind without a commit record are never read, so a mid-write kill
// of a multi-shard save always lands on the last COMPLETE save. found/err
// follow the Load conventions; any inconsistency between the manifest and
// the artifacts it references (a missing or torn link, a fingerprint or
// safe-point mismatch) is reported as an error with found=true, never as a
// silently different restart point.
func LoadShardResume(s Store, app string) ([]*serial.Snapshot, *serial.Manifest, bool, error) {
	m, found, err := s.LoadManifest(app)
	if err != nil || !found {
		return nil, nil, found, err
	}
	shards := make([]*serial.Snapshot, m.World())
	for r := range shards {
		snap, err := materialiseShard(s, app, r, m.Shards[r])
		if err != nil {
			return nil, m, true, fmt.Errorf("ckpt: shard %d of manifest at safe point %d: %w", r, m.SafePoints, err)
		}
		if snap.SafePoints != m.SafePoints {
			return nil, m, true, fmt.Errorf("ckpt: shard %d materialises at safe point %d, manifest commits %d",
				r, snap.SafePoints, m.SafePoints)
		}
		shards[r] = snap
	}
	return shards, m, true, nil
}

// materialiseShard replays one rank's committed chain window.
func materialiseShard(s Store, app string, rank int, e serial.ManifestShard) (*serial.Snapshot, error) {
	var snap *serial.Snapshot
	var anchorSP uint64
	for seq := e.Anchor; seq <= e.Seq; seq++ {
		d, found, err := s.LoadShardDelta(app, rank, seq)
		if err != nil {
			return nil, fmt.Errorf("link %d: %w", seq, err)
		}
		if !found {
			return nil, fmt.Errorf("link %d is missing", seq)
		}
		if d.App != app || d.Seq != seq {
			return nil, fmt.Errorf("link %d belongs to app %q seq %d", seq, d.App, d.Seq)
		}
		if seq == e.Seq {
			crc, size, ferr := d.Fingerprint()
			if ferr != nil {
				return nil, fmt.Errorf("link %d fingerprint: %w", seq, ferr)
			}
			if crc != e.CRC || size != e.Size {
				return nil, fmt.Errorf("link %d fingerprint (%08x,%d) does not match the manifest (%08x,%d): "+
					"the artifact was overwritten after the commit", seq, crc, size, e.CRC, e.Size)
			}
		}
		if seq == e.Anchor {
			if !d.IsAnchor() {
				return nil, fmt.Errorf("link %d is not a self-contained anchor", seq)
			}
			anchorSP = d.SafePoints
			snap = serial.NewSnapshot(d.App, d.Mode, 0)
		} else if d.BaseSP != anchorSP {
			return nil, fmt.Errorf("link %d is anchored at safe point %d, not this chain's anchor %d (stale pre-rebase link)",
				seq, d.BaseSP, anchorSP)
		}
		if err := d.Apply(snap); err != nil {
			return nil, fmt.Errorf("applying link %d: %w", seq, err)
		}
	}
	return snap, nil
}

// Reshard reassembles per-rank shard snapshots into one canonical snapshot,
// repartitioning each packed field through its recorded layout — the bridge
// that lets a sharded run restart (or migrate) into a different world size
// or execution mode, and a canonical run restart sharded. Non-partitioned
// fields are taken from rank 0, whose copy is authoritative exactly as in
// the gather-at-master protocol.
func Reshard(shards []*serial.Snapshot, app string, safePoints uint64) (*serial.Snapshot, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("ckpt: reshard of zero shards")
	}
	world := len(shards)
	out := serial.NewSnapshot(app, "canonical", safePoints)
	for name, v := range shards[0].Fields {
		if IsLayoutField(name) {
			continue
		}
		lv, partitioned := shards[0].Fields[LayoutField(name)]
		if !partitioned {
			out.Fields[name] = v
			continue
		}
		l, err := parseLayout(name, lv)
		if err != nil {
			return nil, err
		}
		full, err := reassemble(name, l, shards, world)
		if err != nil {
			return nil, err
		}
		out.Fields[name] = full
	}
	return out, nil
}

// reassemble stitches one partitioned field back together from its packed
// per-rank blocks.
func reassemble(name string, l ShardLayout, shards []*serial.Snapshot, world int) (serial.Value, error) {
	lay := l.layout(world)
	rowElems := 1
	if l.Elem == ElemMatrix {
		if l.Cols == 0 {
			return serial.Value{}, fmt.Errorf("ckpt: partitioned matrix %q has zero columns in its layout", name)
		}
		rowElems = l.Cols
	}
	flat := make([]float64, l.N*rowElems)
	for r := 0; r < world; r++ {
		v, ok := shards[r].Fields[name]
		if !ok || v.Tag != serial.TFloat64s {
			return serial.Value{}, fmt.Errorf("ckpt: shard %d is missing the packed block of %q", r, name)
		}
		if want := lay.Count(r) * rowElems; len(v.Fs) != want {
			return serial.Value{}, fmt.Errorf("ckpt: shard %d block of %q has %d elements, layout owns %d",
				r, name, len(v.Fs), want)
		}
		k := 0
		lay.Indices(r, func(i int) {
			copy(flat[i*rowElems:(i+1)*rowElems], v.Fs[k*rowElems:(k+1)*rowElems])
			k++
		})
	}
	switch l.Elem {
	case ElemFloats:
		return serial.Float64s(flat), nil
	case ElemInts:
		is := make([]int64, len(flat))
		for i, f := range flat {
			is[i] = int64(f)
		}
		return serial.Int64s(is), nil
	case ElemMatrix:
		m := make([][]float64, l.N)
		for i := range m {
			m[i] = flat[i*rowElems : (i+1)*rowElems : (i+1)*rowElems]
		}
		return serial.Float64Matrix(m), nil
	}
	return serial.Value{}, fmt.Errorf("ckpt: partitioned field %q has unknown element kind %d", name, l.Elem)
}
