package ckpt

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ppar/internal/serial"
)

// casFieldPrefix marks an envelope field holding the chunk references that
// replace a whole large float field, and casDeltaPrefix the references that
// replace one chunked delta section. Application field names come from Go
// struct fields and can never contain ':', so the prefixes are unambiguous.
const (
	casFieldPrefix = "__cas:"
	casDeltaPrefix = "__casd:"
)

// Dedup wraps an inner Store with content-addressed deduplication of large
// float state: every artifact saved through it has its big []float64 and
// [][]float64 payloads split on the same fixed grid the delta differ uses
// (serial.DeltaChunkElems elements per chunk, row groups covering about as
// much for matrices) and stored once per distinct content via the inner
// store's PutChunk. The artifact itself becomes a small envelope carrying
// chunk references, with every chain header (App/Mode/SafePoints/BaseSP/
// Seq) intact in cleartext, so the inner store's chain-consistency rules
// keep working unchanged. Because a chunk shipped in a delta and the same
// grid chunk of a full snapshot pack to identical bytes, deduplication
// applies across full and incremental captures, across shard ranks, across
// compaction generations — and across tenants, when the inner store is
// shared through Namespaced wrappers (chunk keys pass through namespaces
// unprefixed by design).
//
// Ordering contract (the chunk analogue of the manifest-then-GC rule the
// shard pipeline follows): chunks are put BEFORE the envelope that
// references them is saved, and references are released only AFTER the
// referencing artifact has been cleared. A crash anywhere in between leaks
// unreferenced chunks — reclaimable by a later put of the same content or
// an offline sweep — but can never persist a dangling reference.
//
// The reference ledger is process-local: a Dedup created in a fresh
// process over an existing store keeps every pre-existing chunk alive
// (leak-safe), and starts tracking from its first save.
//
// Compose Dedup outermost (e.g. Dedup(Gzip(FS))): wrappers that envelope
// the whole artifact would otherwise hide the float payloads from the
// chunker.
type Dedup struct {
	inner Store

	mu          sync.Mutex
	base        map[string][]string              // app -> canonical base chunk keys
	chain       map[string][][]string            // app -> per delta-link chunk keys
	shards      map[shardKey][]string            // rank snapshot chunk keys
	shardChains map[shardKey]map[uint64][]string // per shard-chain link chunk keys
	stats       DedupStats
}

type shardKey struct {
	app  string
	rank int
}

var _ Store = (*Dedup)(nil)

// NewDedup wraps inner with content-addressed deduplication.
func NewDedup(inner Store) *Dedup {
	return &Dedup{
		inner:       inner,
		base:        map[string][]string{},
		chain:       map[string][][]string{},
		shards:      map[shardKey][]string{},
		shardChains: map[shardKey]map[uint64][]string{},
	}
}

// DedupStats describes the cumulative effect of a Dedup wrapper: how many
// payload bytes the saved artifacts carried logically versus how many the
// chunk store actually had to write.
type DedupStats struct {
	// LogicalBytes is the total chunk payload passed through the wrapper.
	LogicalBytes int64
	// PhysicalBytes is the payload actually stored (first copies only).
	PhysicalBytes int64
	// Chunks counts every chunk put; DupChunks the ones already present.
	Chunks, DupChunks int64
}

// Ratio reports logical over physical bytes — 1.0 means no duplication was
// found, higher means the store wrote that factor less data than it was
// handed. A wrapper that has chunked nothing reports 1.0.
func (st DedupStats) Ratio() float64 {
	if st.PhysicalBytes == 0 {
		return 1
	}
	return float64(st.LogicalBytes) / float64(st.PhysicalBytes)
}

// Stats returns a snapshot of the wrapper's cumulative dedup counters.
func (s *Dedup) Stats() DedupStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// chunkable mirrors the differ's grid predicate: only fields big enough to
// span multiple grid chunks are content-addressed; everything else stays
// inline in the envelope.
func chunkable(v serial.Value) bool {
	switch v.Tag {
	case serial.TFloat64s:
		return len(v.Fs) > serial.DeltaChunkElems
	case serial.TFloat64_2:
		if v.Rows*v.Cols <= serial.DeltaChunkElems || v.Cols <= 0 || len(v.F2) != v.Rows {
			return false
		}
		for _, row := range v.F2 {
			if len(row) != v.Cols {
				return false // ragged: keep inline rather than guess a shape
			}
		}
		return true
	}
	return false
}

// gridRows reports how many consecutive matrix rows one chunk covers —
// identical to the StateHash grid, so delta row-chunks and full-field
// row-chunks of the same matrix key identically.
func gridRows(cols int) int {
	n := serial.DeltaChunkElems / cols
	if n < 1 {
		n = 1
	}
	return n
}

// putChunk stores one packed payload and returns its key, accounting it.
func (s *Dedup) putChunk(payload []byte) (string, error) {
	key := serial.ChunkKey(payload)
	dup, err := s.inner.PutChunk(key, payload)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.stats.Chunks++
	s.stats.LogicalBytes += int64(len(payload))
	if dup {
		s.stats.DupChunks++
	} else {
		s.stats.PhysicalBytes += int64(len(payload))
	}
	s.mu.Unlock()
	return key, nil
}

// release drops references, swallowing nothing: the caller decides whether
// a release failure may surface (it never un-persists a saved artifact).
func (s *Dedup) release(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	return s.inner.ReleaseChunks(keys)
}

// dehydrateSnap replaces every chunkable field of snap with a reference
// envelope field, putting the chunks first. It never mutates snap; when
// nothing is chunkable it returns snap itself. The returned keys are every
// reference taken, including on error (so the caller can release them).
func (s *Dedup) dehydrateSnap(snap *serial.Snapshot) (*serial.Snapshot, []string, error) {
	var names []string
	for name, v := range snap.Fields {
		if chunkable(v) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return snap, nil, nil
	}
	sort.Strings(names) // deterministic put order
	env := serial.NewSnapshot(snap.App, snap.Mode, snap.SafePoints)
	for name, v := range snap.Fields {
		env.Fields[name] = v
	}
	var keys []string
	var scratch []byte
	for _, name := range names {
		v := snap.Fields[name]
		var blob strings.Builder
		switch v.Tag {
		case serial.TFloat64s:
			fmt.Fprintf(&blob, "s %d\n", len(v.Fs))
			for off := 0; off < len(v.Fs); off += serial.DeltaChunkElems {
				end := off + serial.DeltaChunkElems
				if end > len(v.Fs) {
					end = len(v.Fs)
				}
				scratch = serial.PackF64s(scratch[:0], v.Fs[off:end])
				key, err := s.putChunk(scratch)
				if err != nil {
					return nil, keys, err
				}
				keys = append(keys, key)
				fmt.Fprintf(&blob, "%s\n", key)
			}
		case serial.TFloat64_2:
			fmt.Fprintf(&blob, "m %d %d\n", v.Rows, v.Cols)
			per := gridRows(v.Cols)
			for r := 0; r < v.Rows; r += per {
				end := r + per
				if end > v.Rows {
					end = v.Rows
				}
				scratch = scratch[:0]
				for _, row := range v.F2[r:end] {
					scratch = serial.PackF64s(scratch, row)
				}
				key, err := s.putChunk(scratch)
				if err != nil {
					return nil, keys, err
				}
				keys = append(keys, key)
				fmt.Fprintf(&blob, "%s\n", key)
			}
		}
		delete(env.Fields, name)
		env.Fields[casFieldPrefix+name] = serial.Bytes([]byte(blob.String()))
	}
	return env, keys, nil
}

// rehydrateSnap resolves an envelope snapshot's chunk references back into
// the real fields; snapshots written without the wrapper pass through.
func (s *Dedup) rehydrateSnap(env *serial.Snapshot) (*serial.Snapshot, error) {
	wrapped := false
	for name := range env.Fields {
		if strings.HasPrefix(name, casFieldPrefix) {
			wrapped = true
			break
		}
	}
	if !wrapped {
		return env, nil
	}
	out := serial.NewSnapshot(env.App, env.Mode, env.SafePoints)
	for name, v := range env.Fields {
		if !strings.HasPrefix(name, casFieldPrefix) {
			out.Fields[name] = v
			continue
		}
		real := strings.TrimPrefix(name, casFieldPrefix)
		rv, err := s.rehydrateField(real, string(v.B))
		if err != nil {
			return nil, err
		}
		out.Fields[real] = rv
	}
	return out, nil
}

// rehydrateField rebuilds one whole field from its reference blob.
func (s *Dedup) rehydrateField(name, blob string) (serial.Value, error) {
	lines := splitRefLines(blob)
	if len(lines) == 0 {
		return serial.Value{}, fmt.Errorf("ckpt: dedup: empty reference for field %q", name)
	}
	switch {
	case strings.HasPrefix(lines[0], "s "):
		var n int
		if _, err := fmt.Sscanf(lines[0], "s %d", &n); err != nil || n < 0 {
			return serial.Value{}, fmt.Errorf("ckpt: dedup: bad slice reference for %q", name)
		}
		full := make([]float64, n)
		for i, key := range lines[1:] {
			off := i * serial.DeltaChunkElems
			data, err := s.chunkF64s(name, key)
			if err != nil {
				return serial.Value{}, err
			}
			if off+len(data) > n {
				return serial.Value{}, fmt.Errorf("ckpt: dedup: chunk %d of %q overruns the field", i, name)
			}
			copy(full[off:], data)
		}
		return serial.Float64s(full), nil
	case strings.HasPrefix(lines[0], "m "):
		var rows, cols int
		if _, err := fmt.Sscanf(lines[0], "m %d %d", &rows, &cols); err != nil || rows < 0 || cols < 1 {
			return serial.Value{}, fmt.Errorf("ckpt: dedup: bad matrix reference for %q", name)
		}
		m := make([][]float64, rows)
		per := gridRows(cols)
		for i, key := range lines[1:] {
			r := i * per
			data, err := s.chunkF64s(name, key)
			if err != nil {
				return serial.Value{}, err
			}
			if len(data)%cols != 0 || r+len(data)/cols > rows {
				return serial.Value{}, fmt.Errorf("ckpt: dedup: row chunk %d of %q does not fit a %dx%d matrix", i, name, rows, cols)
			}
			for j := 0; j < len(data)/cols; j++ {
				m[r+j] = data[j*cols : (j+1)*cols : (j+1)*cols]
			}
		}
		for i, row := range m {
			if row == nil {
				return serial.Value{}, fmt.Errorf("ckpt: dedup: matrix %q is missing row %d", name, i)
			}
		}
		return serial.Float64Matrix(m), nil
	}
	return serial.Value{}, fmt.Errorf("ckpt: dedup: unknown reference kind for field %q", name)
}

func (s *Dedup) chunkF64s(name, key string) ([]float64, error) {
	payload, found, err := s.inner.GetChunk(key)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("ckpt: dedup: field %q references missing chunk %s", name, key)
	}
	if serial.ChunkKey(payload) != key {
		return nil, fmt.Errorf("ckpt: dedup: chunk %s is corrupt", key)
	}
	return serial.UnpackF64s(payload)
}

func splitRefLines(blob string) []string {
	lines := strings.Split(strings.TrimRight(blob, "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		return nil
	}
	return lines
}

// dehydrateDelta replaces a delta's chunkable whole-field replacements and
// its chunked slice/matrix sections with reference fields, putting the
// chunks first. Like dehydrateSnap it never mutates d and passes a delta
// with nothing to chunk through untouched.
func (s *Dedup) dehydrateDelta(d *serial.Delta) (*serial.Delta, []string, error) {
	needs := false
	for _, v := range d.Full {
		if chunkable(v) {
			needs = true
		}
	}
	if len(d.Slices) > 0 || len(d.Matrices) > 0 {
		needs = true
	}
	if !needs {
		return d, nil, nil
	}
	env := serial.NewDelta(d.App, d.Mode, d.SafePoints, d.BaseSP)
	env.Seq = d.Seq
	env.Removed = d.Removed
	var keys []string
	var scratch []byte
	for name, v := range d.Full {
		env.Full[name] = v
	}
	snapPart := serial.NewSnapshot(d.App, d.Mode, d.SafePoints)
	for name, v := range d.Full {
		if chunkable(v) {
			snapPart.Fields[name] = v
		}
	}
	if len(snapPart.Fields) > 0 {
		envPart, partKeys, err := s.dehydrateSnap(snapPart)
		keys = append(keys, partKeys...)
		if err != nil {
			return nil, keys, err
		}
		for name, v := range envPart.Fields {
			if strings.HasPrefix(name, casFieldPrefix) {
				delete(env.Full, strings.TrimPrefix(name, casFieldPrefix))
				env.Full[name] = v
			}
		}
	}
	for _, name := range sortedKeysOf(d.Slices) {
		sd := d.Slices[name]
		var blob strings.Builder
		fmt.Fprintf(&blob, "S %d\n", sd.Len)
		for _, c := range sd.Chunks {
			scratch = serial.PackF64s(scratch[:0], c.Data)
			key, err := s.putChunk(scratch)
			if err != nil {
				return nil, keys, err
			}
			keys = append(keys, key)
			fmt.Fprintf(&blob, "%d %d %s\n", c.Off, len(c.Data), key)
		}
		env.Full[casDeltaPrefix+name] = serial.Bytes([]byte(blob.String()))
	}
	for _, name := range sortedKeysOf(d.Matrices) {
		md := d.Matrices[name]
		var blob strings.Builder
		fmt.Fprintf(&blob, "M %d %d\n", md.Rows, md.Cols)
		for _, c := range md.Chunks {
			scratch = scratch[:0]
			for _, row := range c.Rows {
				scratch = serial.PackF64s(scratch, row)
			}
			key, err := s.putChunk(scratch)
			if err != nil {
				return nil, keys, err
			}
			keys = append(keys, key)
			fmt.Fprintf(&blob, "%d %d %s\n", c.Row, len(c.Rows), key)
		}
		env.Full[casDeltaPrefix+name] = serial.Bytes([]byte(blob.String()))
	}
	return env, keys, nil
}

func sortedKeysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// rehydrateDelta resolves an envelope delta back into the real one; deltas
// written without the wrapper pass through.
func (s *Dedup) rehydrateDelta(env *serial.Delta) (*serial.Delta, error) {
	wrapped := false
	for name := range env.Full {
		if strings.HasPrefix(name, casFieldPrefix) || strings.HasPrefix(name, casDeltaPrefix) {
			wrapped = true
			break
		}
	}
	if !wrapped {
		return env, nil
	}
	d := serial.NewDelta(env.App, env.Mode, env.SafePoints, env.BaseSP)
	d.Seq = env.Seq
	d.Removed = env.Removed
	for name, v := range env.Full {
		switch {
		case strings.HasPrefix(name, casFieldPrefix):
			real := strings.TrimPrefix(name, casFieldPrefix)
			rv, err := s.rehydrateField(real, string(v.B))
			if err != nil {
				return nil, err
			}
			d.Full[real] = rv
		case strings.HasPrefix(name, casDeltaPrefix):
			real := strings.TrimPrefix(name, casDeltaPrefix)
			if err := s.rehydrateSection(d, real, string(v.B)); err != nil {
				return nil, err
			}
		default:
			d.Full[name] = v
		}
	}
	return d, nil
}

// rehydrateSection rebuilds one chunked slice or matrix delta section.
func (s *Dedup) rehydrateSection(d *serial.Delta, name, blob string) error {
	lines := splitRefLines(blob)
	if len(lines) == 0 {
		return fmt.Errorf("ckpt: dedup: empty section reference for %q", name)
	}
	switch {
	case strings.HasPrefix(lines[0], "S "):
		var n int
		if _, err := fmt.Sscanf(lines[0], "S %d", &n); err != nil || n < 0 {
			return fmt.Errorf("ckpt: dedup: bad slice section reference for %q", name)
		}
		sd := serial.SliceDelta{Len: n}
		for _, line := range lines[1:] {
			var off, count int
			var key string
			if _, err := fmt.Sscanf(line, "%d %d %s", &off, &count, &key); err != nil {
				return fmt.Errorf("ckpt: dedup: bad slice chunk reference for %q", name)
			}
			data, err := s.chunkF64s(name, key)
			if err != nil {
				return err
			}
			if len(data) != count || off < 0 || off+count > n {
				return fmt.Errorf("ckpt: dedup: slice chunk [%d,+%d) of %q does not match its payload", off, count, name)
			}
			sd.Chunks = append(sd.Chunks, serial.SliceChunk{Off: off, Data: data})
		}
		d.Slices[name] = sd
	case strings.HasPrefix(lines[0], "M "):
		var rows, cols int
		if _, err := fmt.Sscanf(lines[0], "M %d %d", &rows, &cols); err != nil || rows < 0 || cols < 1 {
			return fmt.Errorf("ckpt: dedup: bad matrix section reference for %q", name)
		}
		md := serial.MatrixDelta{Rows: rows, Cols: cols}
		for _, line := range lines[1:] {
			var row, nrows int
			var key string
			if _, err := fmt.Sscanf(line, "%d %d %s", &row, &nrows, &key); err != nil {
				return fmt.Errorf("ckpt: dedup: bad row chunk reference for %q", name)
			}
			data, err := s.chunkF64s(name, key)
			if err != nil {
				return err
			}
			if nrows < 1 || len(data) != nrows*cols || row < 0 || row+nrows > rows {
				return fmt.Errorf("ckpt: dedup: row chunk [%d,+%d) of %q does not match its payload", row, nrows, name)
			}
			block := make([][]float64, nrows)
			for i := range block {
				block[i] = data[i*cols : (i+1)*cols : (i+1)*cols]
			}
			md.Chunks = append(md.Chunks, serial.MatrixChunk{Row: row, Rows: block})
		}
		d.Matrices[name] = md
	default:
		return fmt.Errorf("ckpt: dedup: unknown section reference kind for %q", name)
	}
	return nil
}

// Save dehydrates and stores the canonical snapshot, then releases the
// references of the base it replaced (put-before-link, clear-before-
// release: a failure leaves at worst leaked chunks, never a dangling
// reference).
func (s *Dedup) Save(snap *serial.Snapshot) error {
	env, keys, err := s.dehydrateSnap(snap)
	if err != nil {
		s.release(keys)
		return err
	}
	if err := s.inner.Save(env); err != nil {
		s.release(keys)
		return err
	}
	s.mu.Lock()
	old := s.base[snap.App]
	s.base[snap.App] = keys
	s.mu.Unlock()
	return s.release(old)
}

// SaveShard dehydrates and stores one rank's snapshot.
func (s *Dedup) SaveShard(snap *serial.Snapshot, rank int) error {
	env, keys, err := s.dehydrateSnap(snap)
	if err != nil {
		s.release(keys)
		return err
	}
	if err := s.inner.SaveShard(env, rank); err != nil {
		s.release(keys)
		return err
	}
	sk := shardKey{app: snap.App, rank: rank}
	s.mu.Lock()
	old := s.shards[sk]
	s.shards[sk] = keys
	s.mu.Unlock()
	return s.release(old)
}

// SaveDelta dehydrates and appends one canonical chain link, recording its
// references for ClearDeltas to release.
func (s *Dedup) SaveDelta(d *serial.Delta) error {
	env, keys, err := s.dehydrateDelta(d)
	if err != nil {
		s.release(keys)
		return err
	}
	if err := s.inner.SaveDelta(env); err != nil {
		s.release(keys)
		return err
	}
	if len(keys) > 0 {
		s.mu.Lock()
		s.chain[d.App] = append(s.chain[d.App], keys)
		s.mu.Unlock()
	}
	return nil
}

// SaveShardDelta dehydrates and appends one shard-chain link, recording its
// references for ClearShardDeltas to release.
func (s *Dedup) SaveShardDelta(d *serial.Delta, rank int) error {
	env, keys, err := s.dehydrateDelta(d)
	if err != nil {
		s.release(keys)
		return err
	}
	if err := s.inner.SaveShardDelta(env, rank); err != nil {
		s.release(keys)
		return err
	}
	sk := shardKey{app: d.App, rank: rank}
	s.mu.Lock()
	m := s.shardChains[sk]
	if m == nil {
		m = map[uint64][]string{}
		s.shardChains[sk] = m
	}
	old := m[d.Seq]
	m[d.Seq] = keys
	s.mu.Unlock()
	return s.release(old)
}

// Load reads and rehydrates the canonical snapshot; a snapshot whose
// chunks cannot be resolved reports found=true with the error, like any
// other corruption.
func (s *Dedup) Load(app string) (*serial.Snapshot, bool, error) {
	env, found, err := s.inner.Load(app)
	if err != nil || !found {
		return nil, found, err
	}
	snap, err := s.rehydrateSnap(env)
	if err != nil {
		return nil, true, err
	}
	return snap, true, nil
}

// LoadChain reads and rehydrates the canonical chain. A link whose chunks
// cannot be resolved truncates the chain there, exactly like a torn write —
// every shorter prefix is still a consistent checkpoint.
func (s *Dedup) LoadChain(app string) (*serial.Snapshot, []*serial.Delta, bool, error) {
	base, envs, found, err := s.inner.LoadChain(app)
	if err != nil || !found {
		return nil, nil, found, err
	}
	snap, err := s.rehydrateSnap(base)
	if err != nil {
		return nil, nil, true, err
	}
	var deltas []*serial.Delta
	for _, env := range envs {
		d, derr := s.rehydrateDelta(env)
		if derr != nil {
			break
		}
		deltas = append(deltas, d)
	}
	return snap, deltas, true, nil
}

// LoadShard reads and rehydrates one rank's snapshot.
func (s *Dedup) LoadShard(app string, rank int) (*serial.Snapshot, bool, error) {
	env, found, err := s.inner.LoadShard(app, rank)
	if err != nil || !found {
		return nil, found, err
	}
	snap, err := s.rehydrateSnap(env)
	if err != nil {
		return nil, true, err
	}
	return snap, true, nil
}

// LoadShardDelta reads and rehydrates one shard-chain link; unresolvable
// chunks report found=true with the error, like a torn link.
func (s *Dedup) LoadShardDelta(app string, rank int, seq uint64) (*serial.Delta, bool, error) {
	env, found, err := s.inner.LoadShardDelta(app, rank, seq)
	if err != nil || !found {
		return nil, found, err
	}
	d, err := s.rehydrateDelta(env)
	if err != nil {
		return nil, true, err
	}
	return d, true, nil
}

// ClearShardDeltas clears the links first, then releases their chunk
// references (clear-before-release).
func (s *Dedup) ClearShardDeltas(app string, rank int, below uint64) error {
	if err := s.inner.ClearShardDeltas(app, rank, below); err != nil {
		return err
	}
	sk := shardKey{app: app, rank: rank}
	var dead []string
	s.mu.Lock()
	for seq, keys := range s.shardChains[sk] {
		if below == 0 || seq < below {
			dead = append(dead, keys...)
			delete(s.shardChains[sk], seq)
		}
	}
	s.mu.Unlock()
	return s.release(dead)
}

// SaveManifest delegates: the commit record is tiny and must stay
// independently decodable.
func (s *Dedup) SaveManifest(m *serial.Manifest) error { return s.inner.SaveManifest(m) }

// LoadManifest delegates to the inner store.
func (s *Dedup) LoadManifest(app string) (*serial.Manifest, bool, error) {
	return s.inner.LoadManifest(app)
}

// Clear removes app's artifacts, then releases every reference the ledger
// holds for them (clear-before-release).
func (s *Dedup) Clear(app string) error {
	if err := s.inner.Clear(app); err != nil {
		return err
	}
	var dead []string
	s.mu.Lock()
	dead = append(dead, s.base[app]...)
	delete(s.base, app)
	for _, keys := range s.chain[app] {
		dead = append(dead, keys...)
	}
	delete(s.chain, app)
	for sk, keys := range s.shards {
		if sk.app == app {
			dead = append(dead, keys...)
			delete(s.shards, sk)
		}
	}
	for sk, m := range s.shardChains {
		if sk.app == app {
			for _, keys := range m {
				dead = append(dead, keys...)
			}
			delete(s.shardChains, sk)
		}
	}
	s.mu.Unlock()
	return s.release(dead)
}

// ClearDeltas clears the canonical chain first, then releases its chunk
// references (clear-before-release).
func (s *Dedup) ClearDeltas(app string) error {
	if err := s.inner.ClearDeltas(app); err != nil {
		return err
	}
	var dead []string
	s.mu.Lock()
	for _, keys := range s.chain[app] {
		dead = append(dead, keys...)
	}
	delete(s.chain, app)
	s.mu.Unlock()
	return s.release(dead)
}

// LedgerStart delegates to the inner store.
func (s *Dedup) LedgerStart(app string) error { return s.inner.LedgerStart(app) }

// LedgerFinish delegates to the inner store.
func (s *Dedup) LedgerFinish(app string) error { return s.inner.LedgerFinish(app) }

// Crashed delegates to the inner store.
func (s *Dedup) Crashed(app string) (bool, error) { return s.inner.Crashed(app) }

// PutChunk delegates to the inner store (for composed chunk users).
func (s *Dedup) PutChunk(key string, payload []byte) (bool, error) {
	return s.inner.PutChunk(key, payload)
}

// GetChunk delegates to the inner store.
func (s *Dedup) GetChunk(key string) ([]byte, bool, error) { return s.inner.GetChunk(key) }

// ReleaseChunks delegates to the inner store.
func (s *Dedup) ReleaseChunks(keys []string) error { return s.inner.ReleaseChunks(keys) }
