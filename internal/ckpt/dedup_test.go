package ckpt

import (
	"testing"

	"ppar/internal/serial"
)

// bigState builds a snapshot whose float fields span several grid chunks,
// so the dedup wrapper actually chunks them. seed shifts every element, so
// different seeds never share chunk content.
func bigState(app string, sp uint64, seed float64) *serial.Snapshot {
	snap := serial.NewSnapshot(app, "seq", sp)
	fs := make([]float64, 3*serial.DeltaChunkElems+17)
	for i := range fs {
		fs[i] = seed + float64(i)
	}
	snap.Fields["Vec"] = serial.Float64s(fs)
	m := make([][]float64, 200)
	for i := range m {
		row := make([]float64, 100)
		for j := range row {
			row[j] = seed*1e6 + float64(i*100+j)
		}
		m[i] = row
	}
	snap.Fields["Mat"] = serial.Float64Matrix(m)
	snap.Fields["Count"] = serial.Int64(7)
	return snap
}

func assertBigState(t *testing.T, got *serial.Snapshot, sp uint64, seed float64) {
	t.Helper()
	if got.SafePoints != sp {
		t.Fatalf("safe points = %d, want %d", got.SafePoints, sp)
	}
	v := got.Fields["Vec"]
	if v.Tag != serial.TFloat64s || len(v.Fs) != 3*serial.DeltaChunkElems+17 {
		t.Fatalf("Vec came back with tag %d len %d", v.Tag, len(v.Fs))
	}
	for _, i := range []int{0, serial.DeltaChunkElems, len(v.Fs) - 1} {
		if v.Fs[i] != seed+float64(i) {
			t.Fatalf("Vec[%d] = %v, want %v", i, v.Fs[i], seed+float64(i))
		}
	}
	mv := got.Fields["Mat"]
	if mv.Tag != serial.TFloat64_2 || mv.Rows != 200 || mv.Cols != 100 {
		t.Fatalf("Mat came back as %dx%d (tag %d)", mv.Rows, mv.Cols, mv.Tag)
	}
	if mv.F2[199][99] != seed*1e6+float64(199*100+99) {
		t.Fatalf("Mat[199][99] = %v", mv.F2[199][99])
	}
	if got.Fields["Count"].I != 7 {
		t.Fatalf("Count = %d", got.Fields["Count"].I)
	}
}

// memChunkCount reports how many distinct chunks the backing Mem holds.
func memChunkCount(m *Mem) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.chunks)
}

func TestDedupRoundTripAndStats(t *testing.T) {
	inner := NewMem()
	s := NewDedup(inner)
	if err := s.Save(bigState("app", 10, 1)); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.Load("app")
	if err != nil || !found {
		t.Fatalf("load: found=%v err=%v", found, err)
	}
	assertBigState(t, got, 10, 1)
	first := s.Stats()
	if first.Chunks == 0 || first.DupChunks != 0 {
		t.Fatalf("first save stats: %+v", first)
	}
	if r := first.Ratio(); r != 1 {
		t.Fatalf("ratio after one unique save = %v, want 1", r)
	}

	// Saving the identical state again re-puts every chunk as a duplicate:
	// the base's reference replacement releases the old references only
	// after the new save landed, so the contents never leave the store.
	if err := s.Save(bigState("app", 20, 1)); err != nil {
		t.Fatal(err)
	}
	second := s.Stats()
	if second.DupChunks != first.Chunks {
		t.Fatalf("second save of identical state deduped %d of %d chunks", second.DupChunks, first.Chunks)
	}
	if r := second.Ratio(); r <= 1.9 {
		t.Fatalf("ratio after a fully duplicated save = %v, want ~2", r)
	}
	if n := memChunkCount(inner); int64(n) != first.Chunks {
		t.Fatalf("store holds %d chunks, want %d", n, first.Chunks)
	}
	got, _, err = s.Load("app")
	if err != nil {
		t.Fatal(err)
	}
	assertBigState(t, got, 20, 1)
}

func TestDedupDeltaChainRoundTrip(t *testing.T) {
	s := NewDedup(NewMem())
	base := bigState("app", 10, 3)
	h := serial.NewStateHash()
	h.Rehash(base)
	if err := s.Save(base); err != nil {
		t.Fatal(err)
	}

	// Touch one chunk of the slice and one row group of the matrix, then
	// drop a field: the delta carries chunked sections plus a removal, all
	// of which must survive the dedup envelope.
	next := base.Clone()
	next.SafePoints = 12
	next.Fields["Vec"].Fs[serial.DeltaChunkElems+5] = -1
	next.Fields["Mat"].F2[50][2] = -2
	delete(next.Fields, "Count")
	d := h.Diff(next, base.SafePoints, false)
	if len(d.Slices) == 0 || len(d.Matrices) == 0 || len(d.Removed) != 1 {
		t.Fatalf("diff shape: slices=%d matrices=%d removed=%v", len(d.Slices), len(d.Matrices), d.Removed)
	}
	d.Seq = 1
	if err := s.SaveDelta(d); err != nil {
		t.Fatal(err)
	}

	snap, found, err := LoadResume(s, "app")
	if err != nil || !found {
		t.Fatalf("resume: found=%v err=%v", found, err)
	}
	if snap.SafePoints != 12 {
		t.Fatalf("resume landed at %d, want 12", snap.SafePoints)
	}
	if got := snap.Fields["Vec"].Fs[serial.DeltaChunkElems+5]; got != -1 {
		t.Fatalf("Vec delta chunk not applied: %v", got)
	}
	if got := snap.Fields["Mat"].F2[50][2]; got != -2 {
		t.Fatalf("Mat delta chunk not applied: %v", got)
	}
	if _, ok := snap.Fields["Count"]; ok {
		t.Fatal("removed field resurrected through the dedup envelope")
	}
	// The delta's unchanged-chunk neighbours were never re-put; its changed
	// chunks are new content. Nothing should have deduped yet except the
	// matrix row group if untouched — assert only that stats moved.
	if s.Stats().Chunks == 0 {
		t.Fatal("no chunks accounted")
	}
}

func TestDedupCrossTenantSharingAndGC(t *testing.T) {
	shared := NewMem()
	ns1, err := NewNamespaced("t1", shared)
	if err != nil {
		t.Fatal(err)
	}
	ns2, err := NewNamespaced("t2", shared)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := NewDedup(ns1), NewDedup(ns2)

	// Two tenants checkpoint identical state through one shared backend:
	// the second tenant's chunks must all hit the first tenant's copies.
	if err := t1.Save(bigState("app", 10, 5)); err != nil {
		t.Fatal(err)
	}
	unique := memChunkCount(shared)
	if unique == 0 {
		t.Fatal("tenant 1 stored no chunks")
	}
	if err := t2.Save(bigState("app", 10, 5)); err != nil {
		t.Fatal(err)
	}
	if st := t2.Stats(); st.DupChunks != st.Chunks {
		t.Fatalf("tenant 2 stored %d new chunks of %d; want full sharing", st.Chunks-st.DupChunks, st.Chunks)
	}
	if n := memChunkCount(shared); n != unique {
		t.Fatalf("shared store grew to %d chunks after an identical tenant save, want %d", n, unique)
	}

	// One tenant clearing its checkpoints must never free chunks the other
	// still references.
	if err := t1.Clear("app"); err != nil {
		t.Fatal(err)
	}
	if _, found, err := t1.Load("app"); err != nil || found {
		t.Fatalf("tenant 1 checkpoint survived its Clear: found=%v err=%v", found, err)
	}
	if n := memChunkCount(shared); n != unique {
		t.Fatalf("tenant 1's Clear freed shared chunks: %d left, want %d", n, unique)
	}
	got, found, err := t2.Load("app")
	if err != nil || !found {
		t.Fatalf("tenant 2 load after tenant 1 clear: found=%v err=%v", found, err)
	}
	assertBigState(t, got, 10, 5)

	// The last reference going away reclaims the chunks.
	if err := t2.Clear("app"); err != nil {
		t.Fatal(err)
	}
	if n := memChunkCount(shared); n != 0 {
		t.Fatalf("%d chunks leaked after the last tenant cleared", n)
	}
}

func TestDedupCompactionReleasesChainChunks(t *testing.T) {
	inner := NewMem()
	s := NewDedup(inner)
	base := bigState("app", 10, 7)
	h := serial.NewStateHash()
	h.Rehash(base)
	if err := s.Save(base); err != nil {
		t.Fatal(err)
	}
	afterBase := memChunkCount(inner)

	next := base.Clone()
	next.SafePoints = 12
	for i := 0; i < serial.DeltaChunkElems; i++ {
		next.Fields["Vec"].Fs[i] = -float64(i)
	}
	d := h.Diff(next, base.SafePoints, false)
	d.Seq = 1
	if err := s.SaveDelta(d); err != nil {
		t.Fatal(err)
	}
	if n := memChunkCount(inner); n != afterBase+1 {
		t.Fatalf("delta added %d chunks, want 1", n-afterBase)
	}

	// Compaction order (new base, then ClearDeltas) releases exactly the
	// chain's chunks. The new base shares every chunk it can with the old
	// one, so after the old base's references are dropped the store holds
	// one unique set plus nothing from the cleared chain.
	if err := s.Save(next); err != nil {
		t.Fatal(err)
	}
	if err := s.ClearDeltas("app"); err != nil {
		t.Fatal(err)
	}
	if n := memChunkCount(inner); n != afterBase {
		t.Fatalf("store holds %d chunks after compaction, want %d", n, afterBase)
	}
	if err := s.Clear("app"); err != nil {
		t.Fatal(err)
	}
	if n := memChunkCount(inner); n != 0 {
		t.Fatalf("%d chunks leaked after Clear", n)
	}
}

func TestDedupShardChainGC(t *testing.T) {
	inner := NewMem()
	s := NewDedup(inner)
	mk := func(seq uint64, seed float64) *serial.Delta {
		d := serial.AnchorDelta(bigState("app", 10*seq, seed))
		d.Seq = seq
		return d
	}
	if err := s.SaveShardDelta(mk(1, 9), 0); err != nil {
		t.Fatal(err)
	}
	one := memChunkCount(inner)
	if err := s.SaveShardDelta(mk(2, 11), 0); err != nil {
		t.Fatal(err)
	}
	if n := memChunkCount(inner); n != 2*one {
		t.Fatalf("two distinct anchors share chunks: %d vs %d", n, 2*one)
	}
	if err := s.ClearShardDeltas("app", 0, 2); err != nil {
		t.Fatal(err)
	}
	if n := memChunkCount(inner); n != one {
		t.Fatalf("GC below seq 2 left %d chunks, want %d", n, one)
	}
	d, found, err := s.LoadShardDelta("app", 0, 2)
	if err != nil || !found {
		t.Fatalf("surviving link: found=%v err=%v", found, err)
	}
	if got := d.Full["Vec"]; len(got.Fs) != 3*serial.DeltaChunkElems+17 {
		t.Fatalf("surviving anchor lost its payload: len %d", len(got.Fs))
	}
	if err := s.ClearShardDeltas("app", 0, 0); err != nil {
		t.Fatal(err)
	}
	if n := memChunkCount(inner); n != 0 {
		t.Fatalf("%d chunks leaked after full shard-chain GC", n)
	}
}

func TestChunkRefcountConformance(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			payload := serial.PackF64s(nil, []float64{1, 2, 3})
			key := serial.ChunkKey(payload)
			if dup, err := s.PutChunk(key, payload); err != nil || dup {
				t.Fatalf("first put: dup=%v err=%v", dup, err)
			}
			if dup, err := s.PutChunk(key, payload); err != nil || !dup {
				t.Fatalf("second put: dup=%v err=%v", dup, err)
			}
			if err := s.ReleaseChunks([]string{key}); err != nil {
				t.Fatal(err)
			}
			got, found, err := s.GetChunk(key)
			if err != nil || !found {
				t.Fatalf("chunk vanished while still referenced: found=%v err=%v", found, err)
			}
			if string(got) != string(payload) {
				t.Fatal("chunk payload corrupted")
			}
			if err := s.ReleaseChunks([]string{key}); err != nil {
				t.Fatal(err)
			}
			if _, found, err := s.GetChunk(key); err != nil || found {
				t.Fatalf("chunk survived its last release: found=%v err=%v", found, err)
			}
			// Releasing an unknown key is not an error.
			if err := s.ReleaseChunks([]string{key}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
