package ckpt

import (
	"errors"
	"testing"

	"ppar/internal/serial"
)

func TestFaultStoreFailsNthOp(t *testing.T) {
	s := NewFault()
	s.Arm(OpSave, 2)
	snap := serial.NewSnapshot("app", "seq", 1)
	if err := s.Save(snap); err != nil {
		t.Fatalf("first save: %v", err)
	}
	snap2 := serial.NewSnapshot("app", "seq", 2)
	err := s.Save(snap2)
	var inj *ErrInjectedFault
	if !errors.As(err, &inj) || inj.Op != OpSave || inj.N != 2 {
		t.Fatalf("second save: %v, want injected fault on Save call 2", err)
	}
	// The failed save must not have replaced the previous snapshot.
	got, found, err := s.Load("app")
	if err != nil || !found {
		t.Fatalf("load after failed save: found=%v err=%v", found, err)
	}
	if got.SafePoints != 1 {
		t.Fatalf("failed save leaked state: sp=%d, want 1", got.SafePoints)
	}
	if err := s.Save(snap2); err != nil {
		t.Fatalf("third save (disarmed count): %v", err)
	}
}

func TestFaultStoreArmCountsFromNow(t *testing.T) {
	s := NewFault()
	if err := s.Save(serial.NewSnapshot("app", "seq", 1)); err != nil {
		t.Fatal(err)
	}
	s.Arm(OpSave, 1) // the NEXT save, not the first ever
	if err := s.Save(serial.NewSnapshot("app", "seq", 2)); err == nil {
		t.Fatal("armed save did not fail")
	}
}

func TestFaultStoreTornFullSnapshot(t *testing.T) {
	s := NewFault()
	if err := s.Save(serial.NewSnapshot("app", "seq", 1)); err != nil {
		t.Fatal(err)
	}
	s.ArmTorn(OpSave, 1)
	if err := s.Save(serial.NewSnapshot("app", "seq", 2)); err != nil {
		t.Fatalf("torn save must report success: %v", err)
	}
	// The torn container must be detected at load: found=true with error.
	_, found, err := s.Load("app")
	if err == nil || !found {
		t.Fatalf("torn snapshot loaded: found=%v err=%v", found, err)
	}
}

func TestFaultStoreTornDeltaTruncatesChain(t *testing.T) {
	s := NewFault()
	live := chainBase(t, s, 10)
	chainDelta(t, s, live, 10, 1, 12)
	s.ArmTorn(OpSaveDelta, 1)
	chainDelta(t, s, live, 10, 2, 14) // torn on the way down
	chainDelta(t, s, live, 10, 3, 16) // complete, but unreachable past the tear

	snap, found, err := LoadResume(s, "app")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if snap.SafePoints != 12 {
		t.Fatalf("materialised sp=%d, want the pre-tear prefix at 12 (never a half-applied chain)", snap.SafePoints)
	}
	if got := snap.Fields["it"].I; got != 12 {
		t.Fatalf("it=%d does not match the materialised safe point 12", got)
	}
}

func TestFaultStoreClearDeltasFault(t *testing.T) {
	// Compaction's crash window: the new base lands, ClearDeltas fails, and
	// the stale chain must be filtered by staleness, not applied.
	s := NewFault()
	live := chainBase(t, s, 10)
	chainDelta(t, s, live, 10, 1, 12)
	s.Arm(OpClearDeltas, 1)
	if err := s.Save(serial.NewSnapshot("app", "seq", 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.ClearDeltas("app"); err == nil {
		t.Fatal("armed ClearDeltas did not fail")
	}
	snap, found, err := LoadResume(s, "app")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if snap.SafePoints != 20 {
		t.Fatalf("materialised sp=%d, want the new base at 20", snap.SafePoints)
	}
}

func TestFaultStoreOpsCounter(t *testing.T) {
	s := NewFault()
	if err := s.Save(serial.NewSnapshot("app", "seq", 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load("app"); err != nil {
		t.Fatal(err)
	}
	if got := s.Ops(OpSave); got != 1 {
		t.Fatalf("Ops(Save)=%d, want 1", got)
	}
	if got := s.Ops(OpLoad); got != 1 {
		t.Fatalf("Ops(Load)=%d, want 1", got)
	}
	if got := s.Ops(OpSaveDelta); got != 0 {
		t.Fatalf("Ops(SaveDelta)=%d, want 0", got)
	}
}
