package jgf

import (
	"math"

	"ppar/internal/core"
	"ppar/internal/team"
)

// LUFact is the JGF LU factorisation benchmark: Gaussian elimination with
// partial pivoting on a dense N×N system, then a solve and residual check.
// The pivot search and row swap are inherently sequential per step; the
// trailing-submatrix update parallelises over rows. The shared-memory
// module work-shares that update; the distributed deployment replicates the
// computation (the classic JGF MPI LUFact broadcasts the pivot row anyway,
// and at our scale replication is the honest baseline — see DESIGN.md).
type LUFact struct {
	// A is the matrix (safe data: a failure resumes mid-factorisation).
	A [][]float64
	// B is the right-hand side.
	B []float64
	// Piv records the pivot rows.
	Piv []int

	N      int
	Result *LUResult
}

// LUResult receives the residual after solve.
type LUResult struct {
	Residual float64
	OK       bool
}

// NewLUFact builds a diagonally dominant deterministic system.
func NewLUFact(n int, res *LUResult) *LUFact {
	l := &LUFact{N: n, Result: res}
	l.A = make([][]float64, n)
	l.B = make([]float64, n)
	l.Piv = make([]int, n)
	r := uint64(13)
	next := func() float64 {
		r = r*6364136223846793005 + 1442695040888963407
		return float64(r>>11)/float64(1<<53) - 0.5
	}
	for i := range l.A {
		l.A[i] = make([]float64, n)
		for j := range l.A[i] {
			l.A[i][j] = next()
		}
		l.A[i][i] += float64(n) // dominance keeps pivots tame
		l.B[i] = next()
	}
	return l
}

// Main factorises, solves and validates.
func (l *LUFact) Main(ctx *core.Ctx) {
	ctx.Call("lu.factor", l.factor)
	ctx.Call("lu.solve", l.solve)
	ctx.Call("lu.finish", l.finish)
}

func (l *LUFact) factor(ctx *core.Ctx) {
	for k := 0; k < l.N-1; k++ {
		// Pivot selection and swap are a single (sequential) step.
		ctx.Call("lu.pivot", func(*core.Ctx) { l.pivot(k) })
		// The trailing update parallelises over rows.
		kk := k
		ctx.Call("lu.update", func(ctx *core.Ctx) {
			core.For(ctx, "lu.rows", kk+1, l.N, func(i int) {
				f := l.A[i][kk] / l.A[kk][kk]
				l.A[i][kk] = f
				rowK := l.A[kk]
				rowI := l.A[i]
				for j := kk + 1; j < l.N; j++ {
					rowI[j] -= f * rowK[j]
				}
			})
		})
		ctx.Call("lu.step", func(*core.Ctx) {})
	}
}

func (l *LUFact) pivot(k int) {
	p := k
	for i := k + 1; i < l.N; i++ {
		if math.Abs(l.A[i][k]) > math.Abs(l.A[p][k]) {
			p = i
		}
	}
	l.Piv[k] = p
	if p != k {
		l.A[p], l.A[k] = l.A[k], l.A[p]
		l.B[p], l.B[k] = l.B[k], l.B[p]
	}
}

func (l *LUFact) solve(ctx *core.Ctx) {
	// Forward elimination of B using the stored multipliers, then back
	// substitution; cheap, kept sequential as in JGF.
	for k := 0; k < l.N-1; k++ {
		for i := k + 1; i < l.N; i++ {
			l.B[i] -= l.A[i][k] * l.B[k]
		}
	}
	for i := l.N - 1; i >= 0; i-- {
		sum := l.B[i]
		for j := i + 1; j < l.N; j++ {
			sum -= l.A[i][j] * l.B[j]
		}
		l.B[i] = sum / l.A[i][i]
	}
}

func (l *LUFact) finish(ctx *core.Ctx) {
	if l.Result == nil {
		return
	}
	// Residual against a freshly built copy of the system.
	ref := NewLUFact(l.N, nil)
	worst := 0.0
	for i := 0; i < l.N; i++ {
		sum := 0.0
		for j := 0; j < l.N; j++ {
			sum += ref.A[i][j] * l.B[j]
		}
		if r := math.Abs(sum - ref.B[i]); r > worst {
			worst = r
		}
	}
	l.Result.Residual = worst
	l.Result.OK = worst < 1e-8
}

// LUSharedModule work-shares the trailing update. Note "lu.pivot" is a
// Single: exactly one thread swaps, the rest wait at the barrier.
func LUSharedModule() *core.Module {
	return core.NewModule("lu/smp").
		ParallelMethod("lu.factor").
		SingleMethod("lu.pivot").
		BarrierAfter("lu.pivot").
		LoopSchedule("lu.rows", team.Static, 1)
}

// LUCheckpointModule plugs checkpointing: a safe point per elimination step.
func LUCheckpointModule() *core.Module {
	return core.NewModule("lu/ckpt").
		SafeData("A", "B").
		SafePointAfter("lu.step").
		Ignorable("lu.update", "lu.pivot")
}

// LUModules assembles the module list for a mode. Distributed deployments
// run replicated (every element computes the full factorisation).
func LUModules(mode core.Mode) []*core.Module {
	switch mode {
	case core.Shared, core.Hybrid:
		return []*core.Module{LUSharedModule(), LUCheckpointModule()}
	default:
		return []*core.Module{LUCheckpointModule()}
	}
}
