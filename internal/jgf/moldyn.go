package jgf

import (
	"math"

	"ppar/internal/core"
	"ppar/internal/partition"
	"ppar/internal/team"
)

// MolDyn is the JGF molecular-dynamics benchmark: N Lennard-Jones particles
// in a periodic box integrated with velocity Verlet. Forces are computed
// per particle by summing over all others (O(N²) but order-independent, so
// every deployment produces bit-identical trajectories). Positions are
// needed by every replica, so the distributed module re-broadcasts them
// after each integration step — the "update" pattern of the paper's MD
// framework [21].
type MolDyn struct {
	// Pos, Vel, Acc are flattened 3N coordinate arrays. Pos and Vel are
	// safe data; Pos is partitioned for ownership but re-broadcast in
	// full each step; Vel and Acc stay with their owner.
	Pos []float64
	Vel []float64
	Acc []float64
	// ParticleIndex drives the particle loop's distribution: its cyclic
	// layout over N particles matches the coordinate arrays'
	// block-cyclic(3) layout over 3N scalars.
	ParticleIndex []int

	N     int
	Steps int
	Dt    float64
	Box   float64

	Result *MolDynResult
}

// MolDynResult receives the master's energy diagnostics.
type MolDynResult struct {
	Kinetic   float64
	Potential float64
}

// NewMolDyn places particles on a perturbed lattice with small random
// velocities (deterministic).
func NewMolDyn(n, steps int, res *MolDynResult) *MolDyn {
	m := &MolDyn{N: n, Steps: steps, Dt: 0.002, Result: res}
	side := int(math.Ceil(math.Cbrt(float64(n))))
	m.Box = float64(side) * 1.3
	m.Pos = make([]float64, 3*n)
	m.Vel = make([]float64, 3*n)
	m.Acc = make([]float64, 3*n)
	m.ParticleIndex = make([]int, n)
	for k := range m.ParticleIndex {
		m.ParticleIndex[k] = k
	}
	r := uint64(99)
	next := func() float64 {
		r = r*6364136223846793005 + 1442695040888963407
		return float64(r>>11) / float64(1<<53)
	}
	i := 0
	for x := 0; x < side && i < n; x++ {
		for y := 0; y < side && i < n; y++ {
			for z := 0; z < side && i < n; z++ {
				m.Pos[3*i] = (float64(x) + 0.3*next()) * 1.3
				m.Pos[3*i+1] = (float64(y) + 0.3*next()) * 1.3
				m.Pos[3*i+2] = (float64(z) + 0.3*next()) * 1.3
				m.Vel[3*i] = 0.1 * (next() - 0.5)
				m.Vel[3*i+1] = 0.1 * (next() - 0.5)
				m.Vel[3*i+2] = 0.1 * (next() - 0.5)
				i++
			}
		}
	}
	return m
}

// Main runs the simulation then reports energies.
func (m *MolDyn) Main(ctx *core.Ctx) {
	ctx.Call("md.run", m.run)
	ctx.Call("md.finish", m.finish)
}

func (m *MolDyn) run(ctx *core.Ctx) {
	ctx.Call("md.forces", m.forces)
	for s := 0; s < m.Steps; s++ {
		ctx.Call("md.integrate", m.integrate)
		ctx.Call("md.forces", m.forces)
		ctx.Call("md.kick", m.kick)
		ctx.Call("md.step", func(*core.Ctx) {})
	}
}

// forces recomputes Acc for the particles this line of execution owns.
func (m *MolDyn) forces(ctx *core.Ctx) {
	core.For(ctx, "md.particles", 0, m.N, func(i int) {
		var ax, ay, az float64
		xi, yi, zi := m.Pos[3*i], m.Pos[3*i+1], m.Pos[3*i+2]
		for j := 0; j < m.N; j++ {
			if j == i {
				continue
			}
			dx := m.minImage(xi - m.Pos[3*j])
			dy := m.minImage(yi - m.Pos[3*j+1])
			dz := m.minImage(zi - m.Pos[3*j+2])
			r2 := dx*dx + dy*dy + dz*dz
			if r2 > 6.25 || r2 == 0 { // cutoff 2.5σ
				continue
			}
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			f := 24 * inv2 * inv6 * (2*inv6 - 1)
			ax += f * dx
			ay += f * dy
			az += f * dz
		}
		m.Acc[3*i], m.Acc[3*i+1], m.Acc[3*i+2] = ax, ay, az
	})
}

func (m *MolDyn) minImage(d float64) float64 {
	if d > m.Box/2 {
		return d - m.Box
	}
	if d < -m.Box/2 {
		return d + m.Box
	}
	return d
}

// integrate advances owned positions a half-kick plus drift.
func (m *MolDyn) integrate(ctx *core.Ctx) {
	dt := m.Dt
	core.For(ctx, "md.particles", 0, m.N, func(i int) {
		for d := 0; d < 3; d++ {
			m.Vel[3*i+d] += 0.5 * dt * m.Acc[3*i+d]
			m.Pos[3*i+d] += dt * m.Vel[3*i+d]
			// periodic wrap
			if m.Pos[3*i+d] >= m.Box {
				m.Pos[3*i+d] -= m.Box
			} else if m.Pos[3*i+d] < 0 {
				m.Pos[3*i+d] += m.Box
			}
		}
	})
}

// kick applies the second half-kick.
func (m *MolDyn) kick(ctx *core.Ctx) {
	dt := m.Dt
	core.For(ctx, "md.particles", 0, m.N, func(i int) {
		for d := 0; d < 3; d++ {
			m.Vel[3*i+d] += 0.5 * dt * m.Acc[3*i+d]
		}
	})
}

func (m *MolDyn) finish(ctx *core.Ctx) {
	if m.Result == nil {
		return
	}
	ke := 0.0
	for _, v := range m.Vel {
		ke += 0.5 * v * v
	}
	pe := 0.0
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			dx := m.minImage(m.Pos[3*i] - m.Pos[3*j])
			dy := m.minImage(m.Pos[3*i+1] - m.Pos[3*j+1])
			dz := m.minImage(m.Pos[3*i+2] - m.Pos[3*j+2])
			r2 := dx*dx + dy*dy + dz*dz
			if r2 > 6.25 || r2 == 0 {
				continue
			}
			inv6 := 1 / (r2 * r2 * r2)
			pe += 4 * (inv6*inv6 - inv6)
		}
	}
	m.Result.Kinetic = ke
	m.Result.Potential = pe
}

// MolDynSharedModule work-shares the particle loops.
func MolDynSharedModule() *core.Module {
	return core.NewModule("md/smp").
		ParallelMethod("md.run").
		LoopSchedule("md.particles", team.Static, 1)
}

// MolDynDistModule partitions particles; positions (and, for the force
// recompute, velocities feeding the energy check) are re-synchronised in
// full after each owner-computed update.
func MolDynDistModule() *core.Module {
	return core.NewModule("md/dist").
		PartitionedBlockCyclic("Pos", 3).
		PartitionedBlockCyclic("Vel", 3).
		PartitionedBlockCyclic("Acc", 3).
		PartitionedField("ParticleIndex", partition.Cyclic).
		LoopPartition("md.particles", "ParticleIndex").
		ScatterBefore("md.run", "Vel").
		AllGatherAfter("md.integrate", "Pos").
		GatherAfter("md.run", "Pos", "Vel").
		OnMaster("md.finish")
}

// MolDynCheckpointModule plugs checkpointing: a safe point per time step.
func MolDynCheckpointModule() *core.Module {
	return core.NewModule("md/ckpt").
		SafeData("Pos", "Vel", "Acc").
		SafePointAfter("md.step").
		Ignorable("md.forces", "md.integrate", "md.kick")
}

// MolDynModules assembles the module list for a mode.
func MolDynModules(mode core.Mode) []*core.Module {
	switch mode {
	case core.Sequential:
		return []*core.Module{MolDynCheckpointModule()}
	case core.Shared:
		return []*core.Module{MolDynSharedModule(), MolDynCheckpointModule()}
	case core.Distributed:
		return []*core.Module{MolDynDistModule(), MolDynCheckpointModule()}
	case core.Hybrid:
		return []*core.Module{MolDynSharedModule(), MolDynDistModule(), MolDynCheckpointModule()}
	}
	return nil
}
