package jgf

import (
	"math"

	"ppar/internal/core"
	"ppar/internal/partition"
	"ppar/internal/team"
)

// MonteCarlo is the JGF Monte Carlo benchmark in spirit: price a derivative
// by simulating geometric-Brownian-motion paths. Every path owns a counter-
// based RNG seeded by its index, so results are identical regardless of
// which line of execution computes which path — the property every
// deployment (and every adaptation) relies on.
type MonteCarlo struct {
	// Payoffs holds one result per path (partitioned, safe data).
	Payoffs []float64

	Paths    int
	StepsPer int
	S0       float64 // initial price
	K        float64 // strike
	Sigma    float64 // volatility
	Rate     float64 // risk-free rate
	Horizon  float64 // years

	Result *MCResult
}

// MCResult receives the master's aggregated price.
type MCResult struct {
	Price  float64
	StdErr float64
}

// NewMonteCarlo builds the benchmark with JGF-flavoured parameters.
func NewMonteCarlo(paths int, res *MCResult) *MonteCarlo {
	return &MonteCarlo{
		Payoffs: make([]float64, paths),
		Paths:   paths, StepsPer: 64,
		S0: 100, K: 105, Sigma: 0.3, Rate: 0.05, Horizon: 1,
		Result: res,
	}
}

// Main simulates all paths then aggregates at the master.
func (mc *MonteCarlo) Main(ctx *core.Ctx) {
	ctx.Call("mc.simulate", mc.simulate)
	ctx.Call("mc.iter", func(*core.Ctx) {})
	ctx.Call("mc.finish", mc.finish)
}

func (mc *MonteCarlo) simulate(ctx *core.Ctx) {
	dt := mc.Horizon / float64(mc.StepsPer)
	drift := (mc.Rate - 0.5*mc.Sigma*mc.Sigma) * dt
	vol := mc.Sigma * math.Sqrt(dt)
	core.For(ctx, "mc.paths", 0, mc.Paths, func(p int) {
		rng := splitmix(uint64(p) + 0x9E3779B97F4A7C15)
		s := mc.S0
		for step := 0; step < mc.StepsPer; step++ {
			s *= math.Exp(drift + vol*gauss(rng))
		}
		pay := s - mc.K
		if pay < 0 {
			pay = 0
		}
		mc.Payoffs[p] = pay * math.Exp(-mc.Rate*mc.Horizon)
	})
}

func (mc *MonteCarlo) finish(ctx *core.Ctx) {
	if mc.Result == nil {
		return
	}
	sum, sq := 0.0, 0.0
	for _, p := range mc.Payoffs {
		sum += p
		sq += p * p
	}
	n := float64(mc.Paths)
	mean := sum / n
	mc.Result.Price = mean
	mc.Result.StdErr = math.Sqrt((sq/n - mean*mean) / n)
}

// splitmix is a counter-based RNG: deterministic per path.
func splitmix(seed uint64) func() uint64 {
	x := seed
	return func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}

// gauss draws a standard normal via Box-Muller from the path's RNG.
func gauss(next func() uint64) float64 {
	u1 := (float64(next()>>11) + 0.5) / float64(1<<53)
	u2 := (float64(next()>>11) + 0.5) / float64(1<<53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// MCSharedModule parallelises the path loop.
func MCSharedModule() *core.Module {
	return core.NewModule("mc/smp").
		ParallelMethod("mc.simulate").
		LoopSchedule("mc.paths", team.Guided, 16)
}

// MCDistModule partitions the paths.
func MCDistModule() *core.Module {
	return core.NewModule("mc/dist").
		PartitionedField("Payoffs", partition.Block).
		LoopPartition("mc.paths", "Payoffs").
		GatherAfter("mc.simulate", "Payoffs").
		OnMaster("mc.finish")
}

// MCCheckpointModule plugs checkpointing.
func MCCheckpointModule() *core.Module {
	return core.NewModule("mc/ckpt").
		SafeData("Payoffs").
		SafePointAfter("mc.iter").
		Ignorable("mc.simulate")
}

// MCModules assembles the module list for a mode.
func MCModules(mode core.Mode) []*core.Module {
	switch mode {
	case core.Sequential:
		return []*core.Module{MCCheckpointModule()}
	case core.Shared:
		return []*core.Module{MCSharedModule(), MCCheckpointModule()}
	case core.Distributed:
		return []*core.Module{MCDistModule(), MCCheckpointModule()}
	case core.Hybrid:
		return []*core.Module{MCSharedModule(), MCDistModule(), MCCheckpointModule()}
	}
	return nil
}
