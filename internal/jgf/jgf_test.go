package jgf

import (
	"errors"
	"testing"

	"ppar/internal/core"
)

// run builds and runs one deployment of a kernel, failing the test on error.
func run(t *testing.T, cfg core.Config, factory core.Factory) core.Report {
	t.Helper()
	eng, err := core.New(cfg, factory)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run(%v/%dT/%dP): %v", cfg.Mode, cfg.Threads, cfg.Procs, err)
	}
	return eng.Report()
}

// deployments is the cross-product every kernel must agree on.
func deployments() []core.Config {
	return []core.Config{
		{Mode: core.Sequential},
		{Mode: core.Shared, Threads: 2},
		{Mode: core.Shared, Threads: 5},
		{Mode: core.Distributed, Procs: 2},
		{Mode: core.Distributed, Procs: 4},
		{Mode: core.Hybrid, Procs: 2, Threads: 2},
	}
}

func TestSORAllModes(t *testing.T) {
	ref := SORReference(40, 8)
	for _, cfg := range deployments() {
		cfg.AppName = "sor"
		cfg.Modules = SORModules(cfg.Mode)
		res := &SORResult{}
		run(t, cfg, func() core.App { return NewSOR(40, 8, res) })
		if res.Gtotal != ref {
			t.Errorf("%v/%dT/%dP: Gtotal=%v want %v", cfg.Mode, cfg.Threads, cfg.Procs, res.Gtotal, ref)
		}
	}
}

func TestSORRestartMatchesReference(t *testing.T) {
	dir := t.TempDir()
	ref := SORReference(32, 10)
	res := &SORResult{}
	factory := func() core.App { return NewSOR(32, 10, res) }
	cfg := core.Config{
		Mode: core.Distributed, Procs: 3, AppName: "sor",
		Modules:       SORModules(core.Distributed),
		CheckpointDir: dir, CheckpointEvery: 4, FailAtSafePoint: 6,
	}
	eng, err := core.New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); !errors.Is(err, core.ErrInjectedFailure) {
		t.Fatalf("want failure, got %v", err)
	}
	cfg.FailAtSafePoint = 0
	eng2, err := core.New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Gtotal != ref {
		t.Fatalf("restarted Gtotal=%v want %v", res.Gtotal, ref)
	}
}

func TestSORAdaptationMatchesReference(t *testing.T) {
	ref := SORReference(32, 10)
	res := &SORResult{}
	cfg := core.Config{
		Mode: core.Shared, Threads: 2, AppName: "sor",
		Modules:          SORModules(core.Shared),
		AdaptAtSafePoint: 5, AdaptTo: core.AdaptTarget{Threads: 4},
	}
	rep := run(t, cfg, func() core.App { return NewSOR(32, 10, res) })
	if !rep.Adapted {
		t.Error("not adapted")
	}
	if res.Gtotal != ref {
		t.Fatalf("adapted Gtotal=%v want %v", res.Gtotal, ref)
	}
}

func TestSeriesAllModes(t *testing.T) {
	// Sequential result is the reference.
	seqRes := &SeriesResult{}
	cfg0 := core.Config{Mode: core.Sequential, AppName: "series", Modules: SeriesModules(core.Sequential)}
	run(t, cfg0, func() core.App { return NewSeries(24, seqRes) })
	if seqRes.Checksum == 0 {
		t.Fatal("sequential series produced zero checksum")
	}
	for _, cfg := range deployments()[1:] {
		cfg.AppName = "series"
		cfg.Modules = SeriesModules(cfg.Mode)
		res := &SeriesResult{}
		run(t, cfg, func() core.App { return NewSeries(24, res) })
		if res.Checksum != seqRes.Checksum {
			t.Errorf("%v/%dT/%dP: checksum=%v want %v", cfg.Mode, cfg.Threads, cfg.Procs, res.Checksum, seqRes.Checksum)
		}
	}
}

func TestSeriesFirstCoefficient(t *testing.T) {
	// The n=0 coefficient of (x+1)^x on [0,2] is ~2.8779 (JGF validates
	// against 2.87...); our trapezoid at 200 intervals should be close.
	res := &SeriesResult{}
	cfg := core.Config{Mode: core.Sequential, AppName: "series"}
	s := NewSeries(4, res)
	run(t, cfg, func() core.App { return s })
	if s.A[0] < 2.8 || s.A[0] > 2.95 {
		t.Errorf("a0 = %v, want ~2.88", s.A[0])
	}
}

func TestCryptAllModes(t *testing.T) {
	var refSum int64
	for i, cfg := range deployments() {
		cfg.AppName = "crypt"
		cfg.Modules = CryptModules(cfg.Mode)
		res := &CryptResult{}
		run(t, cfg, func() core.App { return NewCrypt(1024, res) })
		if !res.OK {
			t.Fatalf("%v/%dT/%dP: IDEA round trip failed", cfg.Mode, cfg.Threads, cfg.Procs)
		}
		if i == 0 {
			refSum = res.Checksum
			if refSum == 0 {
				t.Fatal("zero ciphertext checksum")
			}
		} else if res.Checksum != refSum {
			t.Errorf("%v: ciphertext checksum %d want %d", cfg.Mode, res.Checksum, refSum)
		}
	}
}

func TestSparseAllModes(t *testing.T) {
	var ref float64
	for i, cfg := range deployments() {
		cfg.AppName = "sparse"
		cfg.Modules = SparseModules(cfg.Mode)
		res := &SparseResult{}
		run(t, cfg, func() core.App { return NewSparse(200, 6, 5, res) })
		if i == 0 {
			ref = res.Ytotal
			if ref == 0 {
				t.Fatal("zero Ytotal")
			}
		} else if res.Ytotal != ref {
			t.Errorf("%v/%dT/%dP: Ytotal=%v want %v", cfg.Mode, cfg.Threads, cfg.Procs, res.Ytotal, ref)
		}
	}
}

func TestLUFactSolves(t *testing.T) {
	for _, cfg := range []core.Config{
		{Mode: core.Sequential},
		{Mode: core.Shared, Threads: 3},
	} {
		cfg.AppName = "lu"
		cfg.Modules = LUModules(cfg.Mode)
		res := &LUResult{}
		run(t, cfg, func() core.App { return NewLUFact(48, res) })
		if !res.OK {
			t.Errorf("%v: residual %v too large", cfg.Mode, res.Residual)
		}
	}
}

func TestLUFactRestart(t *testing.T) {
	dir := t.TempDir()
	res := &LUResult{}
	factory := func() core.App { return NewLUFact(48, res) }
	cfg := core.Config{
		Mode: core.Shared, Threads: 2, AppName: "lu",
		Modules:       LUModules(core.Shared),
		CheckpointDir: dir, CheckpointEvery: 10, FailAtSafePoint: 25,
	}
	eng, _ := core.New(cfg, factory)
	if err := eng.Run(); !errors.Is(err, core.ErrInjectedFailure) {
		t.Fatalf("want failure, got %v", err)
	}
	cfg.FailAtSafePoint = 0
	eng2, _ := core.New(cfg, factory)
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("restarted LU residual %v too large", res.Residual)
	}
}

func TestMolDynAllModes(t *testing.T) {
	var refK, refP float64
	for i, cfg := range deployments() {
		cfg.AppName = "md"
		cfg.Modules = MolDynModules(cfg.Mode)
		res := &MolDynResult{}
		run(t, cfg, func() core.App { return NewMolDyn(32, 4, res) })
		if i == 0 {
			refK, refP = res.Kinetic, res.Potential
			if refK == 0 {
				t.Fatal("zero kinetic energy")
			}
		} else if res.Kinetic != refK || res.Potential != refP {
			t.Errorf("%v/%dT/%dP: E=(%v,%v) want (%v,%v)",
				cfg.Mode, cfg.Threads, cfg.Procs, res.Kinetic, res.Potential, refK, refP)
		}
	}
}

func TestMonteCarloAllModes(t *testing.T) {
	var ref float64
	for i, cfg := range deployments() {
		cfg.AppName = "mc"
		cfg.Modules = MCModules(cfg.Mode)
		res := &MCResult{}
		run(t, cfg, func() core.App { return NewMonteCarlo(512, res) })
		if i == 0 {
			ref = res.Price
			if ref <= 0 {
				t.Fatalf("implausible price %v", ref)
			}
		} else if res.Price != ref {
			t.Errorf("%v/%dT/%dP: price=%v want %v", cfg.Mode, cfg.Threads, cfg.Procs, res.Price, ref)
		}
	}
}

func TestMonteCarloPriceSanity(t *testing.T) {
	// Black-Scholes for these parameters gives ~12.35; Monte Carlo with
	// 4096 paths should land within a wide tolerance.
	res := &MCResult{}
	cfg := core.Config{Mode: core.Sequential, AppName: "mc"}
	run(t, cfg, func() core.App { return NewMonteCarlo(4096, res) })
	if res.Price < 10 || res.Price > 15 {
		t.Errorf("price = %v, want ~12.3", res.Price)
	}
}

func TestSORChecksumClose(t *testing.T) {
	if !SORChecksumClose(1.0, 1.0) {
		t.Error("identical values not close")
	}
	if SORChecksumClose(1.0, 1.1) {
		t.Error("distant values close")
	}
}
