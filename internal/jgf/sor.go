// Package jgf ports the Java Grande Forum benchmark kernels the paper's
// evaluation builds on (§V; the pluggable-parallelisation prior work [8]
// re-implemented "all JGF benchmarks" in the model). Every kernel here is
// written as sequential base code with advisable calls/loops; the
// parallelisation, checkpointing and adaptation behaviour lives in the
// separate module constructors — the Go analogue of the paper's aspect
// files.
package jgf

import (
	"math"

	"ppar/internal/core"
	"ppar/internal/metrics"
	"ppar/internal/partition"
	"ppar/internal/team"
)

// SORResult receives the master replica's outputs.
type SORResult struct {
	Gtotal float64
	Iters  *metrics.IterRecorder
}

// SOR is the JGF successive over-relaxation benchmark: a five-point stencil
// repeatedly applied to an N×N grid ("a typical scientific application",
// §V), in the red-black ordering the JGF parallel versions use so that
// results are independent of update order.
type SOR struct {
	// G is the grid (module-classified: partitioned by rows, safe data).
	G [][]float64
	// N and Iters are the grid size and sweep count.
	N     int
	Iters int
	// Omega is the relaxation factor.
	Omega float64

	// Result is local instrumentation (never checkpointed or moved).
	Result *SORResult
}

// NewSOR builds the benchmark with the JGF random-ish deterministic grid.
func NewSOR(n, iters int, res *SORResult) *SOR {
	s := &SOR{N: n, Iters: iters, Omega: 1.25, Result: res}
	s.G = make([][]float64, n)
	r := uint64(101)
	for i := range s.G {
		s.G[i] = make([]float64, n)
		for j := range s.G[i] {
			r = r*6364136223846793005 + 1442695040888963407
			s.G[i][j] = float64(r>>11) / float64(1<<53) * 1e-6
		}
	}
	return s
}

// Main runs the benchmark: the "run" region performs the sweeps, then the
// master reports the JGF validation value Gtotal.
func (s *SOR) Main(ctx *core.Ctx) {
	ctx.Call("sor.run", s.run)
	ctx.Call("sor.finish", s.finish)
}

func (s *SOR) run(ctx *core.Ctx) {
	for it := 0; it < s.Iters; it++ {
		ctx.Call("sor.tick", s.tick)
		ctx.Call("sor.red", s.red)
		ctx.Call("sor.black", s.black)
		ctx.Call("sor.iter", func(*core.Ctx) {})
	}
}

func (s *SOR) tick(ctx *core.Ctx) {
	if s.Result != nil && s.Result.Iters != nil {
		s.Result.Iters.Tick()
	}
}

func (s *SOR) red(ctx *core.Ctx)   { s.sweep(ctx, 0) }
func (s *SOR) black(ctx *core.Ctx) { s.sweep(ctx, 1) }

func (s *SOR) sweep(ctx *core.Ctx, colour int) {
	omega := s.Omega
	oneMinus := 1 - omega
	core.ForSpan(ctx, "sor.rows", 1, s.N-1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := s.G[i]
			up, down := s.G[i-1], s.G[i+1]
			for j := 1 + (i+colour)%2; j < s.N-1; j += 2 {
				row[j] = omega*0.25*(up[j]+down[j]+row[j-1]+row[j+1]) + oneMinus*row[j]
			}
		}
	})
}

func (s *SOR) finish(ctx *core.Ctx) {
	if s.Result == nil {
		return
	}
	total := 0.0
	for i := range s.G {
		for _, v := range s.G[i] {
			total += v
		}
	}
	s.Result.Gtotal = total
}

// SORReference computes Gtotal with a plain nested loop, for validation.
func SORReference(n, iters int) float64 {
	res := &SORResult{}
	s := NewSOR(n, iters, res)
	omega, oneMinus := s.Omega, 1-s.Omega
	for it := 0; it < iters; it++ {
		for colour := 0; colour < 2; colour++ {
			for i := 1; i < n-1; i++ {
				row := s.G[i]
				up, down := s.G[i-1], s.G[i+1]
				for j := 1 + (i+colour)%2; j < n-1; j += 2 {
					row[j] = omega*0.25*(up[j]+down[j]+row[j-1]+row[j+1]) + oneMinus*row[j]
				}
			}
		}
	}
	total := 0.0
	for i := range s.G {
		for _, v := range s.G[i] {
			total += v
		}
	}
	return total
}

// SORSharedModule is the shared-memory parallelisation module.
func SORSharedModule() *core.Module {
	return core.NewModule("sor/smp").
		ParallelMethod("sor.run").
		MasterMethod("sor.tick").
		LoopSchedule("sor.rows", team.Static, 1)
}

// SORSharedDynamicModule is an alternative shared-memory parallelisation
// using dynamic scheduling — the kind of drop-in module swap pluggable
// parallelisation makes possible (used by the schedule ablation bench).
func SORSharedDynamicModule(chunk int) *core.Module {
	return core.NewModule("sor/smp-dynamic").
		ParallelMethod("sor.run").
		MasterMethod("sor.tick").
		LoopSchedule("sor.rows", team.Dynamic, chunk)
}

// SORDistModule is the distributed-memory parallelisation module.
func SORDistModule() *core.Module {
	return core.NewModule("sor/dist").
		PartitionedField("G", partition.Block).
		LoopPartition("sor.rows", "G").
		UpdateBefore("sor.red", "G").
		UpdateBefore("sor.black", "G").
		ScatterBefore("sor.run", "G").
		GatherAfter("sor.run", "G").
		OnMaster("sor.tick").
		OnMaster("sor.finish")
}

// SORCheckpointModule is the fault-tolerance module: the SafeData,
// SafePoints and IgnorableMethods templates of §IV.A.
func SORCheckpointModule() *core.Module {
	return core.NewModule("sor/ckpt").
		SafeData("G").
		SafePointAfter("sor.iter").
		Ignorable("sor.red", "sor.black", "sor.tick")
}

// SORModules assembles the module list for a deployment mode.
func SORModules(mode core.Mode) []*core.Module {
	switch mode {
	case core.Sequential:
		return []*core.Module{SORCheckpointModule()}
	case core.Shared:
		return []*core.Module{SORSharedModule(), SORCheckpointModule()}
	case core.Distributed:
		return []*core.Module{SORDistModule(), SORCheckpointModule()}
	case core.Hybrid, core.Task:
		return []*core.Module{SORSharedModule(), SORDistModule(), SORCheckpointModule()}
	}
	return nil
}

// SORChecksumClose reports whether two Gtotal values agree to within a few
// ulps (runs in different modes are bit-identical; this guard is for
// comparisons against analytically derived references).
func SORChecksumClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}
