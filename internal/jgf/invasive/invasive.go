// Package invasive is the hand-written comparison point of the paper's
// Figure 3: SOR "when checkpointing is introduced using classic 'invasive'
// techniques" — the checkpoint logic written directly inside the domain
// code instead of plugged from a separate module. It exists to demonstrate
// (and measure) that pluggable checkpointing "does not impose any
// additional overhead when compared to traditional invasive programming
// techniques", while costing the base program its purity.
package invasive

import (
	"fmt"
	"os"
	"path/filepath"

	"ppar/internal/ckpt"
	"ppar/internal/serial"
)

// SOR is the red-black SOR kernel with checkpoint code tangled in.
type SOR struct {
	G     [][]float64
	N     int
	Iters int
	Omega float64

	// Checkpoint machinery, living invasively inside the domain type.
	Store *ckpt.FS
	Every uint64
	Max   int

	safePoints uint64
	taken      int
}

// New builds the kernel with the same deterministic grid as the pluggable
// version, so results can be compared across implementations.
func New(n, iters int) *SOR {
	s := &SOR{N: n, Iters: iters, Omega: 1.25}
	s.G = make([][]float64, n)
	r := uint64(101)
	for i := range s.G {
		s.G[i] = make([]float64, n)
		for j := range s.G[i] {
			r = r*6364136223846793005 + 1442695040888963407
			s.G[i][j] = float64(r>>11) / float64(1<<53) * 1e-6
		}
	}
	return s
}

// EnableCheckpoints turns on invasive checkpointing into dir.
func (s *SOR) EnableCheckpoints(dir string, every uint64, max int) error {
	st, err := ckpt.NewFS(dir)
	if err != nil {
		return err
	}
	s.Store = st
	s.Every = every
	s.Max = max
	return nil
}

// Run executes the sweeps; note how the checkpoint concern is interleaved
// with the numeric loop — exactly what pluggable parallelisation avoids.
func (s *SOR) Run() error {
	omega, oneMinus := s.Omega, 1-s.Omega
	for it := 0; it < s.Iters; it++ {
		for colour := 0; colour < 2; colour++ {
			for i := 1; i < s.N-1; i++ {
				row := s.G[i]
				up, down := s.G[i-1], s.G[i+1]
				for j := 1 + (i+colour)%2; j < s.N-1; j += 2 {
					row[j] = omega*0.25*(up[j]+down[j]+row[j-1]+row[j+1]) + oneMinus*row[j]
				}
			}
		}
		// --- checkpoint concern, hand-inlined ---
		s.safePoints++
		if s.Store != nil && s.Every > 0 && s.safePoints%s.Every == 0 &&
			(s.Max <= 0 || s.taken < s.Max) {
			if err := s.save(); err != nil {
				return fmt.Errorf("invasive: checkpoint: %w", err)
			}
			s.taken++
		}
		// ----------------------------------------
	}
	return nil
}

func (s *SOR) save() error {
	snap := serial.NewSnapshot("invasive-sor", "seq", s.safePoints)
	snap.Fields["G"] = serial.Float64Matrix(s.G)
	return s.Store.Save(snap)
}

// Gtotal is the JGF validation value.
func (s *SOR) Gtotal() float64 {
	total := 0.0
	for i := range s.G {
		for _, v := range s.G[i] {
			total += v
		}
	}
	return total
}

// CheckpointPath reports where the snapshot lands (for cleanup in benches).
func (s *SOR) CheckpointPath() string {
	if s.Store == nil {
		return ""
	}
	return filepath.Join(s.Store.Dir, "invasive-sor.ckpt")
}

// RemoveCheckpoint deletes the snapshot file.
func (s *SOR) RemoveCheckpoint() {
	if p := s.CheckpointPath(); p != "" {
		os.Remove(p)
	}
}
