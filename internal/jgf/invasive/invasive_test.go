package invasive

import (
	"testing"

	"ppar/internal/jgf"
)

func TestMatchesPluggableResult(t *testing.T) {
	s := New(36, 7)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Gtotal(), jgf.SORReference(36, 7); got != want {
		t.Fatalf("invasive Gtotal=%v, pluggable reference %v", got, want)
	}
}

func TestCheckpointWritten(t *testing.T) {
	s := New(24, 10)
	if err := s.EnableCheckpoints(t.TempDir(), 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.taken != 1 {
		t.Fatalf("taken = %d, want 1", s.taken)
	}
	snap, found, err := s.Store.Load("invasive-sor")
	if err != nil || !found {
		t.Fatalf("snapshot missing: found=%v err=%v", found, err)
	}
	if snap.SafePoints != 5 {
		t.Errorf("snapshot at safe point %d, want 5", snap.SafePoints)
	}
}
