package jgf

import (
	"ppar/internal/core"
	"ppar/internal/partition"
	"ppar/internal/team"
)

// Sparse is the JGF SparseMatMult benchmark: repeated y += A·x with A in
// compressed-row-storage form. Rows are independent, so the row loop
// partitions freely; x is replicated, y is partitioned.
type Sparse struct {
	// Val, Col, RowPtr are the CRS matrix (replicated).
	Val    []float64
	Col    []int
	RowPtr []int
	// X is the input vector (replicated).
	X []float64
	// Y is the output vector (partitioned by rows, safe data).
	Y []float64

	N     int // rows
	Iters int

	Result *SparseResult
}

// SparseResult receives the master's validation value.
type SparseResult struct{ Ytotal float64 }

// NewSparse builds an n×n matrix with nnzPerRow pseudo-random entries per
// row (deterministic).
func NewSparse(n, nnzPerRow, iters int, res *SparseResult) *Sparse {
	s := &Sparse{N: n, Iters: iters, Result: res}
	s.RowPtr = make([]int, n+1)
	s.Val = make([]float64, 0, n*nnzPerRow)
	s.Col = make([]int, 0, n*nnzPerRow)
	r := uint64(7)
	next := func() uint64 {
		r = r*6364136223846793005 + 1442695040888963407
		return r >> 11
	}
	for i := 0; i < n; i++ {
		s.RowPtr[i] = len(s.Val)
		for k := 0; k < nnzPerRow; k++ {
			s.Col = append(s.Col, int(next())%n)
			s.Val = append(s.Val, float64(next()%1000)/1000)
		}
	}
	s.RowPtr[n] = len(s.Val)
	s.X = make([]float64, n)
	for i := range s.X {
		s.X[i] = float64(next()%1000) / 1000
	}
	s.Y = make([]float64, n)
	return s
}

// NewSparseSkewed builds the power-law-banded variant: row i carries
// nnzPerRow + n·nnzPerRow/(4·(i+1)) entries (capped at n), so the matrix is
// dense in its first rows and thins out Zipf-style — the head rows dominate
// the multiply cost. An even Block split of Y then hands rank 0 (and, inside
// a rank, the first statically scheduled workers) most of the work, which is
// exactly the shape overdecomposition, stealing and the cross-rank
// rebalancer are for. Deterministic, like NewSparse.
func NewSparseSkewed(n, nnzPerRow, iters int, res *SparseResult) *Sparse {
	s := &Sparse{N: n, Iters: iters, Result: res}
	s.RowPtr = make([]int, n+1)
	r := uint64(7)
	next := func() uint64 {
		r = r*6364136223846793005 + 1442695040888963407
		return r >> 11
	}
	for i := 0; i < n; i++ {
		s.RowPtr[i] = len(s.Val)
		nnz := nnzPerRow + n*nnzPerRow/(4*(i+1))
		if nnz > n {
			nnz = n
		}
		for k := 0; k < nnz; k++ {
			s.Col = append(s.Col, int(next())%n)
			s.Val = append(s.Val, float64(next()%1000)/1000)
		}
	}
	s.RowPtr[n] = len(s.Val)
	s.X = make([]float64, n)
	for i := range s.X {
		s.X[i] = float64(next()%1000) / 1000
	}
	s.Y = make([]float64, n)
	return s
}

// SparseSharedStaticModule parallelises the row loop with a static schedule —
// the deliberately skew-blind baseline the work-stealing benchmarks compare
// against.
func SparseSharedStaticModule() *core.Module {
	return core.NewModule("sparse/smp-static").
		ParallelMethod("sparse.run").
		LoopSchedule("sparse.rows", team.Static, 1)
}

// Main performs the iterations, then the master validates.
func (s *Sparse) Main(ctx *core.Ctx) {
	ctx.Call("sparse.run", s.run)
	ctx.Call("sparse.finish", s.finish)
}

func (s *Sparse) run(ctx *core.Ctx) {
	for it := 0; it < s.Iters; it++ {
		ctx.Call("sparse.mult", s.mult)
		ctx.Call("sparse.iter", func(*core.Ctx) {})
	}
}

func (s *Sparse) mult(ctx *core.Ctx) {
	core.ForSpan(ctx, "sparse.rows", 0, s.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum := 0.0
			for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
				sum += s.Val[k] * s.X[s.Col[k]]
			}
			s.Y[i] += sum
		}
	})
}

func (s *Sparse) finish(ctx *core.Ctx) {
	if s.Result == nil {
		return
	}
	total := 0.0
	for _, v := range s.Y {
		total += v
	}
	s.Result.Ytotal = total
}

// SparseSharedModule parallelises the row loop (dynamic: row costs vary
// with the column distribution).
func SparseSharedModule() *core.Module {
	return core.NewModule("sparse/smp").
		ParallelMethod("sparse.run").
		LoopSchedule("sparse.rows", team.Dynamic, 64)
}

// SparseDistModule partitions Y by rows; X and the matrix are replicated.
func SparseDistModule() *core.Module {
	return core.NewModule("sparse/dist").
		PartitionedField("Y", partition.Block).
		ReplicatedField("X").
		LoopPartition("sparse.rows", "Y").
		ScatterBefore("sparse.run", "Y").
		GatherAfter("sparse.run", "Y").
		OnMaster("sparse.finish")
}

// SparseCheckpointModule plugs checkpointing.
func SparseCheckpointModule() *core.Module {
	return core.NewModule("sparse/ckpt").
		SafeData("Y").
		SafePointAfter("sparse.iter").
		Ignorable("sparse.mult")
}

// SparseModules assembles the module list for a mode.
func SparseModules(mode core.Mode) []*core.Module {
	switch mode {
	case core.Sequential:
		return []*core.Module{SparseCheckpointModule()}
	case core.Shared:
		return []*core.Module{SparseSharedModule(), SparseCheckpointModule()}
	case core.Distributed:
		return []*core.Module{SparseDistModule(), SparseCheckpointModule()}
	case core.Hybrid, core.Task:
		return []*core.Module{SparseSharedModule(), SparseDistModule(), SparseCheckpointModule()}
	}
	return nil
}
