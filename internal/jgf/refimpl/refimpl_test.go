package refimpl

import "testing"

func TestAllVariantsAgree(t *testing.T) {
	const n, iters = 36, 7
	ref := Sequential(n, iters)
	if ref == 0 {
		t.Fatal("zero reference")
	}
	for _, nt := range []int{1, 2, 5} {
		if got := Threads(n, iters, nt); got != ref {
			t.Errorf("Threads(%d) = %v, want %v", nt, got, ref)
		}
	}
	for _, np := range []int{1, 2, 4} {
		got, err := MPI(n, iters, np, nil)
		if err != nil {
			t.Fatalf("MPI(%d): %v", np, err)
		}
		if got != ref {
			t.Errorf("MPI(%d) = %v, want %v", np, got, ref)
		}
	}
}

func TestThreadsMoreThreadsThanRows(t *testing.T) {
	ref := Sequential(8, 3)
	if got := Threads(8, 3, 16); got != ref {
		t.Errorf("Threads(16) on tiny grid = %v, want %v", got, ref)
	}
}
