// Package refimpl provides hand-written SOR ports in the style of the three
// stock JGF distributions the paper's Figure 9 compares against:
//
//   - Sequential: a plain nested loop ("does not scale to more than one
//     node ... it always has the same execution time").
//   - Threads: goroutine work-sharing fixed at construction ("can only use
//     [the cores of] a single machine").
//   - MPI: SPMD over the mp substrate with a fixed world ("imposes a fixed
//     parallelism structure, i.e., the structure cannot change during
//     execution", §II).
//
// None of them can change execution mode at run time — that is the paper's
// point, and the Adaptive column of Figure 9 is the pluggable version from
// package jgf.
package refimpl

import (
	"fmt"
	"sync"

	"ppar/internal/mp"
	"ppar/internal/partition"
)

func newGrid(n int) [][]float64 {
	g := make([][]float64, n)
	r := uint64(101)
	for i := range g {
		g[i] = make([]float64, n)
		for j := range g[i] {
			r = r*6364136223846793005 + 1442695040888963407
			g[i][j] = float64(r>>11) / float64(1<<53) * 1e-6
		}
	}
	return g
}

func gtotal(g [][]float64) float64 {
	total := 0.0
	for i := range g {
		for _, v := range g[i] {
			total += v
		}
	}
	return total
}

func sweepRows(g [][]float64, n, lo, hi, colour int, omega float64) {
	oneMinus := 1 - omega
	for i := lo; i < hi; i++ {
		if i < 1 || i >= n-1 {
			continue
		}
		row := g[i]
		up, down := g[i-1], g[i+1]
		for j := 1 + (i+colour)%2; j < n-1; j += 2 {
			row[j] = omega*0.25*(up[j]+down[j]+row[j-1]+row[j+1]) + oneMinus*row[j]
		}
	}
}

// Sequential is the stock single-threaded SOR.
func Sequential(n, iters int) float64 {
	g := newGrid(n)
	for it := 0; it < iters; it++ {
		sweepRows(g, n, 1, n-1, 0, 1.25)
		sweepRows(g, n, 1, n-1, 1, 1.25)
	}
	return gtotal(g)
}

// Threads is the stock thread-parallel SOR: a fixed pool of nthreads
// goroutines with a barrier per colour sweep.
func Threads(n, iters, nthreads int) float64 {
	g := newGrid(n)
	var wg sync.WaitGroup
	barrier := make(chan struct{})
	arrive := make(chan struct{}, nthreads)
	// Simple coordinator-based barrier keeps the port honest to the JGF
	// thread version's structure without importing the team substrate.
	syncAll := func() {
		arrive <- struct{}{}
		<-barrier
	}
	go func() {
		for round := 0; round < iters*2; round++ {
			for k := 0; k < nthreads; k++ {
				<-arrive
			}
			for k := 0; k < nthreads; k++ {
				barrier <- struct{}{}
			}
		}
	}()
	rowsPer := (n + nthreads - 1) / nthreads
	for t := 0; t < nthreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			lo := t * rowsPer
			hi := lo + rowsPer
			if hi > n {
				hi = n
			}
			for it := 0; it < iters; it++ {
				sweepRows(g, n, lo, hi, 0, 1.25)
				syncAll()
				sweepRows(g, n, lo, hi, 1, 1.25)
				syncAll()
			}
		}(t)
	}
	wg.Wait()
	return gtotal(g)
}

// MPI is the stock message-passing SOR: block rows, halo exchange per
// colour, gather at rank 0. The world size is fixed for the whole run.
func MPI(n, iters, nprocs int, delay mp.DelayFunc) (float64, error) {
	tr := mp.NewInProc(nprocs, delay)
	defer tr.Close()
	world := mp.NewWorld(tr, nprocs)
	layout := partition.New(partition.Block, n, nprocs)
	var result float64
	err := world.Run(func(c *mp.Comm) error {
		g := newGrid(n)
		lo, hi := layout.Range(c.Rank())
		below, above := -1, -1
		if lo < hi {
			below, above = layout.Neighbours(c.Rank())
		}
		const tagDown, tagUp, tagGather = 1, 2, 3
		halo := func() error {
			if lo >= hi {
				return nil
			}
			if below >= 0 {
				if err := c.SendF64s(below, tagDown, g[lo]); err != nil {
					return err
				}
			}
			if above >= 0 {
				if err := c.SendF64s(above, tagUp, g[hi-1]); err != nil {
					return err
				}
			}
			if below >= 0 {
				row, err := c.RecvF64s(below, tagUp)
				if err != nil {
					return err
				}
				copy(g[lo-1], row)
			}
			if above >= 0 {
				row, err := c.RecvF64s(above, tagDown)
				if err != nil {
					return err
				}
				copy(g[hi], row)
			}
			return nil
		}
		for it := 0; it < iters; it++ {
			for colour := 0; colour < 2; colour++ {
				if err := halo(); err != nil {
					return err
				}
				sweepRows(g, n, lo, hi, colour, 1.25)
			}
		}
		// Gather owned rows at rank 0.
		flat := make([]float64, 0, (hi-lo)*n)
		for i := lo; i < hi; i++ {
			flat = append(flat, g[i]...)
		}
		parts, err := c.Gather(0, mp.EncodeF64s(flat))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := 0; r < nprocs; r++ {
				rlo, rhi := layout.Range(r)
				vals := mp.DecodeF64s(parts[r])
				for i := rlo; i < rhi; i++ {
					copy(g[i], vals[(i-rlo)*n:(i-rlo+1)*n])
				}
			}
			result = gtotal(g)
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("refimpl: mpi run: %w", err)
	}
	return result, nil
}
