package jgf

import (
	"ppar/internal/core"
	"ppar/internal/partition"
	"ppar/internal/team"
)

// Crypt is the JGF IDEA encryption benchmark: encrypt then decrypt a byte
// array with the International Data Encryption Algorithm; validation checks
// the round trip restores the plaintext. Blocks of 8 bytes are independent,
// so the block loop partitions freely.
type Crypt struct {
	// Plain is the plaintext (block-partitioned; values 0..255 stored as
	// ints so the framework can move them).
	Plain []int
	// Crypt1 and Plain2 are the encrypted and round-tripped buffers.
	Crypt1 []int
	Plain2 []int
	// Z and DK are the encryption and decryption sub-key schedules
	// (replicated on every aggregate element).
	Z  []int
	DK []int
	// BlockIndex has one entry per 8-byte block; its cyclic layout drives
	// the block loop so that block ownership lines up with the byte
	// buffers' block-cyclic(8) layout: block b belongs to rank b mod P,
	// and byte i (in block i/8) belongs to rank (i/8) mod P.
	BlockIndex []int

	N      int
	Result *CryptResult

	// HotBlocks and HotCost shape the skewed (hot-key) variant: the first
	// HotBlocks blocks of the range each re-run the cipher HotCost extra
	// times into a scratch buffer. The output is byte-identical to the
	// uniform kernel — only the cost distribution changes — so validation
	// and cross-variant checksums are preserved. Both zero in the stock
	// benchmark.
	HotBlocks int
	HotCost   int
}

// CryptResult receives the master's validation outcome.
type CryptResult struct {
	OK       bool
	Checksum int64
}

// NewCrypt builds the benchmark with a deterministic plaintext and the JGF
// user key.
func NewCrypt(n int, res *CryptResult) *Crypt {
	n -= n % 8 // whole blocks
	c := &Crypt{N: n, Result: res}
	c.Plain = make([]int, n)
	c.Crypt1 = make([]int, n)
	c.Plain2 = make([]int, n)
	c.BlockIndex = make([]int, n/8)
	for i := range c.BlockIndex {
		c.BlockIndex[i] = i
	}
	r := uint64(42)
	for i := range c.Plain {
		r = r*6364136223846793005 + 1442695040888963407
		c.Plain[i] = int(r>>56) & 0xFF
	}
	userKey := [8]int{0x0001, 0x0002, 0x0003, 0x0004, 0x0005, 0x0006, 0x0007, 0x0008}
	c.Z = calcEncryptKey(userKey)
	c.DK = calcDecryptKey(c.Z)
	return c
}

// NewCryptSkewed builds the hot-key variant: the first eighth of the blocks
// each cost hotCost+1 cipher runs, the rest one. A static schedule lands the
// whole hot band on the first workers; overdecomposition plus stealing
// spreads it. Results are identical to NewCrypt(n, res).
func NewCryptSkewed(n, hotCost int, res *CryptResult) *Crypt {
	c := NewCrypt(n, res)
	c.HotBlocks = len(c.BlockIndex) / 8
	c.HotCost = hotCost
	return c
}

// Main encrypts, checkpoints, decrypts, validates.
func (c *Crypt) Main(ctx *core.Ctx) {
	ctx.Call("crypt.encrypt", func(ctx *core.Ctx) { c.cipher(ctx, c.Plain, c.Crypt1, c.Z) })
	ctx.Call("crypt.iter", func(*core.Ctx) {})
	ctx.Call("crypt.decrypt", func(ctx *core.Ctx) { c.cipher(ctx, c.Crypt1, c.Plain2, c.DK) })
	ctx.Call("crypt.iter", func(*core.Ctx) {})
	ctx.Call("crypt.finish", c.finish)
}

// cipher runs IDEA over 8-byte blocks of src into dst with key schedule key.
// Hot blocks (the skewed variant) burn HotCost extra cipher rounds into a
// per-call scratch, leaving dst untouched.
func (c *Crypt) cipher(ctx *core.Ctx, src, dst, key []int) {
	core.For(ctx, "crypt.blocks", 0, c.N/8, func(b int) {
		ideaBlock(src[b*8:b*8+8], dst[b*8:b*8+8], key)
		if b < c.HotBlocks {
			var scratch [8]int
			for r := 0; r < c.HotCost; r++ {
				ideaBlock(src[b*8:b*8+8], scratch[:], key)
			}
		}
	})
}

func (c *Crypt) finish(ctx *core.Ctx) {
	if c.Result == nil {
		return
	}
	ok := true
	var sum int64
	for i := range c.Plain {
		if c.Plain[i] != c.Plain2[i] {
			ok = false
		}
		sum += int64(c.Crypt1[i]) * int64(i%97+1)
	}
	c.Result.OK = ok
	c.Result.Checksum = sum
}

// ideaBlock transforms one 8-byte block (stored as ints) with the 52-entry
// key schedule — the JGF inner loop.
func ideaBlock(src, dst, key []int) {
	x1 := src[0] | src[1]<<8
	x2 := src[2] | src[3]<<8
	x3 := src[4] | src[5]<<8
	x4 := src[6] | src[7]<<8
	k := 0
	for round := 0; round < 8; round++ {
		x1 = mulMod(x1, key[k])
		x2 = (x2 + key[k+1]) & 0xFFFF
		x3 = (x3 + key[k+2]) & 0xFFFF
		x4 = mulMod(x4, key[k+3])
		t2 := x1 ^ x3
		t2 = mulMod(t2, key[k+4])
		t1 := (t2 + (x2 ^ x4)) & 0xFFFF
		t1 = mulMod(t1, key[k+5])
		t2 = (t1 + t2) & 0xFFFF
		x1 ^= t1
		x4 ^= t2
		t2 ^= x2
		x2 = x3 ^ t1
		x3 = t2
		k += 6
	}
	r0 := mulMod(x1, key[k])
	r1 := (x3 + key[k+1]) & 0xFFFF
	r2 := (x2 + key[k+2]) & 0xFFFF
	r3 := mulMod(x4, key[k+3])
	dst[0], dst[1] = r0&0xFF, r0>>8
	dst[2], dst[3] = r1&0xFF, r1>>8
	dst[4], dst[5] = r2&0xFF, r2>>8
	dst[6], dst[7] = r3&0xFF, r3>>8
}

// mulMod is IDEA multiplication modulo 2^16+1 with 0 meaning 2^16.
func mulMod(a, b int) int {
	if a == 0 {
		return (0x10001 - b) & 0xFFFF
	}
	if b == 0 {
		return (0x10001 - a) & 0xFFFF
	}
	p := a * b
	b = p & 0xFFFF
	a = p >> 16
	r := b - a
	if b < a {
		r++
	}
	return r & 0xFFFF
}

// calcEncryptKey expands the 128-bit user key into 52 sub-keys.
func calcEncryptKey(userKey [8]int) []int {
	z := make([]int, 52)
	for i := 0; i < 8; i++ {
		z[i] = userKey[i] & 0xFFFF
	}
	for i := 8; i < 52; i++ {
		if i&7 < 6 {
			z[i] = ((z[i-7]&0x7F)<<9 | z[i-6]>>7) & 0xFFFF
		} else if i&7 == 6 {
			z[i] = ((z[i-7]&0x7F)<<9 | z[i-14]>>7) & 0xFFFF
		} else {
			z[i] = ((z[i-15]&0x7F)<<9 | z[i-14]>>7) & 0xFFFF
		}
	}
	return z
}

// calcDecryptKey inverts the schedule for decryption (the JGF IDEATest
// construction: additive keys negate, multiplicative keys invert, and the
// middle rounds swap the two additive keys to mirror the x2/x3 swap).
func calcDecryptKey(z []int) []int {
	dk := make([]int, 52)
	dk[51] = mulInv(z[3])
	dk[50] = (-z[2]) & 0xFFFF
	dk[49] = (-z[1]) & 0xFFFF
	dk[48] = mulInv(z[0])
	j, k := 47, 4
	for i := 0; i < 7; i++ {
		t := z[k]
		dk[j] = z[k+1]
		dk[j-1] = t
		t = mulInv(z[k+2])
		u := (-z[k+3]) & 0xFFFF
		v := (-z[k+4]) & 0xFFFF
		dk[j-2] = mulInv(z[k+5])
		dk[j-3] = u
		dk[j-4] = v
		dk[j-5] = t
		k += 6
		j -= 6
	}
	t := z[k]
	dk[j] = z[k+1]
	dk[j-1] = t
	t = mulInv(z[k+2])
	u := (-z[k+3]) & 0xFFFF
	v := (-z[k+4]) & 0xFFFF
	dk[j-2] = mulInv(z[k+5])
	dk[j-3] = v
	dk[j-4] = u
	dk[j-5] = t
	return dk
}

// mulInv computes the multiplicative inverse modulo 2^16+1.
func mulInv(x int) int {
	if x <= 1 {
		return x
	}
	t1 := 0x10001 / x
	y := 0x10001 % x
	if y == 1 {
		return (1 - t1) & 0xFFFF
	}
	t0 := 1
	for y != 1 {
		q := x / y
		x = x % y
		t0 = (t0 + q*t1) & 0xFFFF
		if x == 1 {
			return t0
		}
		q = y / x
		y = y % x
		t1 = (t1 + q*t0) & 0xFFFF
	}
	return (1 - t1) & 0xFFFF
}

// CryptSharedModule parallelises the block loop over threads.
func CryptSharedModule() *core.Module {
	return core.NewModule("crypt/smp").
		ParallelMethod("crypt.encrypt").
		ParallelMethod("crypt.decrypt").
		LoopSchedule("crypt.blocks", team.StaticChunk, 16)
}

// CryptDistModule partitions the buffers across aggregate elements.
func CryptDistModule() *core.Module {
	return core.NewModule("crypt/dist").
		PartitionedBlockCyclic("Plain", 8).
		PartitionedBlockCyclic("Crypt1", 8).
		PartitionedBlockCyclic("Plain2", 8).
		PartitionedField("BlockIndex", partition.Cyclic).
		ReplicatedField("Z").
		ReplicatedField("DK").
		LoopPartition("crypt.blocks", "BlockIndex").
		ScatterBefore("crypt.encrypt", "Plain").
		GatherAfter("crypt.encrypt", "Crypt1").
		ScatterBefore("crypt.decrypt", "Crypt1").
		GatherAfter("crypt.decrypt", "Plain2").
		OnMaster("crypt.finish")
}

// CryptCheckpointModule plugs checkpointing: the encrypted buffer is the
// safe data (a failure between the passes resumes from the ciphertext).
func CryptCheckpointModule() *core.Module {
	return core.NewModule("crypt/ckpt").
		SafeData("Plain", "Crypt1", "Plain2").
		SafePointAfter("crypt.iter").
		Ignorable("crypt.encrypt", "crypt.decrypt")
}

// CryptModules assembles the module list for a mode.
func CryptModules(mode core.Mode) []*core.Module {
	switch mode {
	case core.Sequential:
		return []*core.Module{CryptCheckpointModule()}
	case core.Shared:
		return []*core.Module{CryptSharedModule(), CryptCheckpointModule()}
	case core.Distributed:
		return []*core.Module{CryptDistModule(), CryptCheckpointModule()}
	case core.Hybrid, core.Task:
		return []*core.Module{CryptSharedModule(), CryptDistModule(), CryptCheckpointModule()}
	}
	return nil
}
