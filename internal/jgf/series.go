package jgf

import (
	"math"

	"ppar/internal/core"
	"ppar/internal/partition"
	"ppar/internal/team"
)

// Series is the JGF Series benchmark: the first N Fourier coefficient pairs
// of (x+1)^x on [0,2], each computed by trapezoid integration — the paper's
// illustrative example (Figure 1), whose distributed parallelisation is
// exactly `Partitioned<TestArray,BLOCK>` + `ScatterBefore/GatherAfter<Do>`.
type Series struct {
	// A and B are the two rows of the paper's TestArray (a_n and b_n
	// coefficients), block-partitioned across aggregate elements.
	A []float64
	B []float64
	// N is the number of coefficient pairs.
	N int
	// Intervals is the trapezoid resolution.
	Intervals int

	Result *SeriesResult
}

// SeriesResult receives the master's outputs.
type SeriesResult struct{ Checksum float64 }

// NewSeries builds the benchmark.
func NewSeries(n int, res *SeriesResult) *Series {
	return &Series{A: make([]float64, n), B: make([]float64, n), N: n, Intervals: 200, Result: res}
}

// Main mirrors the paper's Figure 1: Do computes the coefficients; the
// scatter/gather around it comes from the distributed module.
func (s *Series) Main(ctx *core.Ctx) {
	ctx.Call("series.do", s.do)
	ctx.Call("series.iter", func(*core.Ctx) {})
	ctx.Call("series.finish", s.finish)
}

func (s *Series) do(ctx *core.Ctx) {
	core.For(ctx, "series.terms", 0, s.N, func(i int) {
		if i == 0 {
			s.A[0] = s.trapezoid(func(x float64) float64 { return math.Pow(x+1, x) })
			s.B[0] = 0
			return
		}
		w := float64(i) * math.Pi / 2
		s.A[i] = s.trapezoid(func(x float64) float64 { return math.Pow(x+1, x) * math.Cos(w*x) })
		s.B[i] = s.trapezoid(func(x float64) float64 { return math.Pow(x+1, x) * math.Sin(w*x) })
	})
}

// trapezoid integrates f over [0,2].
func (s *Series) trapezoid(f func(float64) float64) float64 {
	h := 2.0 / float64(s.Intervals)
	sum := (f(0) + f(2)) / 2
	for k := 1; k < s.Intervals; k++ {
		sum += f(float64(k) * h)
	}
	return sum * h / 2 // Fourier 1/L factor with L=2 halves again
}

func (s *Series) finish(ctx *core.Ctx) {
	if s.Result == nil {
		return
	}
	total := 0.0
	for i := 0; i < s.N; i++ {
		total += s.A[i] + s.B[i]
	}
	s.Result.Checksum = total
}

// SeriesSharedModule parallelises the term loop over a thread team.
func SeriesSharedModule() *core.Module {
	return core.NewModule("series/smp").
		ParallelMethod("series.do").
		LoopSchedule("series.terms", team.Dynamic, 8)
}

// SeriesDistModule is the module of the paper's Figure 1.
func SeriesDistModule() *core.Module {
	return core.NewModule("series/dist").
		PartitionedField("A", partition.Block).
		PartitionedField("B", partition.Block).
		LoopPartition("series.terms", "A").
		ScatterBefore("series.do", "A", "B").
		GatherAfter("series.do", "A", "B").
		OnMaster("series.finish")
}

// SeriesCheckpointModule plugs checkpointing into the base code.
func SeriesCheckpointModule() *core.Module {
	return core.NewModule("series/ckpt").
		SafeData("A", "B").
		SafePointAfter("series.iter").
		Ignorable("series.do")
}

// SeriesModules assembles the module list for a mode.
func SeriesModules(mode core.Mode) []*core.Module {
	switch mode {
	case core.Sequential:
		return []*core.Module{SeriesCheckpointModule()}
	case core.Shared:
		return []*core.Module{SeriesSharedModule(), SeriesCheckpointModule()}
	case core.Distributed:
		return []*core.Module{SeriesDistModule(), SeriesCheckpointModule()}
	case core.Hybrid:
		return []*core.Module{SeriesSharedModule(), SeriesDistModule(), SeriesCheckpointModule()}
	}
	return nil
}
