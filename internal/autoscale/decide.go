package autoscale

import (
	"fmt"
	"time"

	"ppar/internal/core"
	"ppar/internal/metrics"
	"ppar/internal/perfmodel"
)

// state is one monitor sample — everything a decision is a function of.
// Step is exported on this snapshot form (rather than buried in the Drive
// loop) so tests and benchmarks can drive the decision logic with
// deterministic synthetic traces, no engine or clock involved.
type State struct {
	SP    uint64        // live safe-point counter (Engine.Progress)
	Now   time.Duration // monitor clock: elapsed since Drive
	Shape Shape         // configuration currently executing

	Sched     metrics.SchedStats // Task-mode queue pressure (Report.Sched)
	Moves     int                // Report.Migrations: measured moves so far
	MoveTotal time.Duration      // Report.MigrationTotal

	CapThreads int // live per-machine thread capacity
	CapProcs   int // live world-size capacity
}

// Step folds one sample into the curve table and decides. The returned
// Decision is only meaningful when ok is true; ok is false when the sample
// updated the model but no reconfiguration clears the gates.
func (a *AutoScale) Step(s State) (Decision, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()

	// Regime change: a new shape is executing. Re-prime the rate window so
	// windows never mix configurations, and clear any in-flight marker —
	// the request (or someone else's) has landed.
	if s.Shape != a.last {
		a.last = s.Shape
		a.rate.Reset()
		a.lastWindows = 0
		a.inFlight = false
		a.pendTgt, a.pendRuns = core.AdaptTarget{}, 0
	}
	a.rate.Observe(s.SP, s.Now.Seconds())
	if n := a.rate.Count(); n > a.lastWindows {
		// A new rate window completed: fold its RAW per-safe-point cost
		// into this shape's cell. Raw, not the smoothed PerUnit — the cell
		// keeps its own EWMA, and smoothing twice would hide the
		// measurement spread the noise gate below depends on.
		a.lastWindows = n
		c := a.obs[s.Shape]
		if c == nil {
			c = &obsCell{rate: metrics.NewEWMA(a.cfg.Alpha)}
			a.obs[s.Shape] = c
		}
		c.rate.Observe(a.rate.LastRaw())
		c.windows++
	}

	// Forced shrink: capacity dropped below the running shape. Issued
	// immediately — no evidence, profit or stability gate — because the
	// capacity is gone either way.
	if d, ok := a.forcedShrink(s); ok {
		return a.issue(d)
	}
	if a.inFlight {
		// A request is pending at the engine; deciding again would stack
		// targets and the later one would silently win.
		return Decision{}, false
	}

	cell := a.obs[s.Shape]
	if cell == nil || cell.windows < uint64(a.cfg.MinWindows) {
		return Decision{}, false // cold: no voluntary move without evidence
	}
	tCur := cell.rate.Mean()
	if tCur <= 0 {
		return Decision{}, false
	}

	best, tBest, ok := a.bestCandidate(s, tCur)
	if !ok || tCur-tBest < a.cfg.MinGain*tCur {
		a.pendRuns = 0
		return Decision{}, false
	}

	// Profit gate with hysteresis margin, plus a noise floor: a saving
	// smaller than one standard deviation of the measured per-safe-point
	// time over the same horizon is indistinguishable from measurement
	// jitter and must not trigger a move.
	saving := time.Duration((tCur - tBest) * float64(a.cfg.HorizonSP) * float64(time.Second))
	noise := time.Duration(cell.rate.StdDev() * float64(a.cfg.HorizonSP) * float64(time.Second))
	cost := a.moveCost(s)
	if float64(saving) <= (1+a.cfg.Margin)*float64(cost)+float64(noise) {
		a.pendRuns = 0
		return Decision{}, false
	}

	// Stability gates: confirmation streak, cooldown, move budget.
	if best != a.pendTgt {
		a.pendTgt, a.pendRuns = best, 1
		return Decision{}, false
	}
	a.pendRuns++
	if a.pendRuns < a.cfg.Confirm {
		return Decision{}, false
	}
	if a.moves >= a.cfg.MaxMoves {
		return Decision{}, false
	}
	if a.lastMove > 0 && s.Now-a.lastMove < a.cfg.Cooldown {
		return Decision{}, false
	}

	a.moves++
	return a.issue(Decision{
		SP: s.SP, At: s.Now, From: s.Shape, Target: best,
		Saving: saving, Cost: cost,
		Reason: fmt.Sprintf("predicted %v/sp -> %v/sp over %d sp", time.Duration(tCur*float64(time.Second)).Round(time.Microsecond), time.Duration(tBest*float64(time.Second)).Round(time.Microsecond), a.cfg.HorizonSP),
	})
}

// issue records a decision and marks it in flight. Callers hold a.mu.
func (a *AutoScale) issue(d Decision) (Decision, bool) {
	a.inFlight = true
	a.lastMove = d.At
	a.pendTgt, a.pendRuns = core.AdaptTarget{}, 0
	a.decisions = append(a.decisions, d)
	return d, true
}

// forcedShrink clamps the running shape to the live capacity. When the
// shape cannot shrink in place (a fixed world, Sequential), it requests
// checkpoint-and-stop: the owner relaunches under the new capacity and the
// re-sharding restore repartitions the state — the paper's
// adaptation-by-restart as the capacity-loss escape hatch.
func (a *AutoScale) forcedShrink(s State) (Decision, bool) {
	sh := s.Shape
	overT := threadShrinkable(sh.Mode) && sh.Threads > s.CapThreads
	overP := sh.Procs > s.CapProcs
	if !overT && !overP {
		return Decision{}, false
	}
	d := Decision{SP: s.SP, At: s.Now, From: sh, Forced: true}
	switch {
	case overP && (sh.Mode != core.Distributed || !a.cfg.AllowWorldResize):
		// The world cannot shrink in place: stop, relaunch, re-shard.
		d.Stop = true
		d.Reason = fmt.Sprintf("capacity %d procs < world %d: checkpoint-and-stop for re-sharded relaunch", s.CapProcs, sh.Procs)
	case overP:
		d.Target = core.AdaptTarget{Procs: s.CapProcs}
		d.Reason = fmt.Sprintf("capacity shrink: world %d -> %d", sh.Procs, s.CapProcs)
	default:
		d.Target = core.AdaptTarget{Threads: s.CapThreads}
		d.Reason = fmt.Sprintf("capacity shrink: team %d -> %d", sh.Threads, s.CapThreads)
	}
	return d, true
}

func threadShrinkable(m core.Mode) bool {
	return m == core.Shared || m == core.Task || m == core.Hybrid
}

// exploreCap bounds candidate sizing for mode m while it has fewer than
// two measured PE points: at most a doubling of the current effective
// parallelism. Callers hold a.mu.
func (a *AutoScale) exploreCap(m core.Mode, s State) int {
	if a.distinctPEs(m) >= 2 {
		return int(^uint(0) >> 1)
	}
	return 2 * a.cfg.Model.EffectivePE(peOf(s.Shape), dist(s.Shape.Mode))
}

// distinctPEs counts how many distinct effective PE values of mode m have
// measured evidence — the degraded-basis ladder of perfmodel.Fit makes two
// the threshold for trusting extrapolated growth. Callers hold a.mu.
func (a *AutoScale) distinctPEs(m core.Mode) int {
	seen := map[int]bool{}
	for sh, cell := range a.obs {
		if sh.Mode == m && cell.windows > 0 {
			seen[a.cfg.Model.EffectivePE(peOf(sh), dist(m))] = true
		}
	}
	return len(seen)
}

// moveCost returns the measured mean migration cost, or the configured
// estimate before anything has been measured.
func (a *AutoScale) moveCost(s State) time.Duration {
	if s.Moves > 0 {
		return s.MoveTotal / time.Duration(s.Moves)
	}
	return a.cfg.MoveCost
}

// bestCandidate evaluates every admissible target against the fitted
// curves and returns the cheapest, with its predicted per-safe-point cost
// in seconds. Callers hold a.mu.
func (a *AutoScale) bestCandidate(s State, tCur float64) (core.AdaptTarget, float64, bool) {
	sh := s.Shape
	idleVeto := sh.Mode == core.Task && s.Sched.IdleRatio() > a.cfg.IdleHigh
	skewVeto := sh.Mode == core.Task && s.Sched.StealRatio() > a.cfg.SkewHigh
	peCur := peOf(sh)

	bestT := tCur
	var best core.AdaptTarget
	found := false
	consider := func(t core.AdaptTarget, cand Shape) {
		pe := a.cfg.Model.EffectivePE(peOf(cand), dist(cand.Mode))
		if idleVeto && pe > peCur {
			return // workers already idle: growing buys nothing
		}
		if pe > 2*peCur && a.distinctPEs(cand.Mode) < 2 {
			// Explore before exploiting: a single measured point cannot
			// distinguish a scalable workload from a serial-floor one (both
			// fit t = A/p exactly), so growth is capped at a doubling until
			// the target family has a second point to pin the floor.
			return
		}
		curve := a.familyCurve(cand.Mode, s, tCur)
		pred := curve.Predict(pe)
		if pe > peCur && curve.Efficiency(pe) < a.cfg.MinEff {
			return // Figure 9: past the knee, capacity buys nothing
		}
		if pred < bestT {
			bestT, best, found = pred, t, true
		}
	}

	// In-place resizes of the running shape.
	switch sh.Mode {
	case core.Shared, core.Task, core.Hybrid:
		for th := 1; th <= s.CapThreads; th++ {
			if th == sh.Threads {
				continue
			}
			consider(core.AdaptTarget{Threads: th},
				Shape{Mode: sh.Mode, Threads: th, Procs: sh.Procs})
		}
	case core.Distributed:
		if a.cfg.AllowWorldResize {
			for p := 1; p <= s.CapProcs; p++ {
				if p == sh.Procs {
					continue
				}
				consider(core.AdaptTarget{Procs: p},
					Shape{Mode: sh.Mode, Threads: sh.Threads, Procs: p})
			}
		}
	}

	// Cross-mode migrations to the configured candidate modes, each at its
	// own curve's best admissible size.
	for _, m := range a.cfg.Modes {
		if m == sh.Mode || (skewVeto && sh.Mode == core.Task) {
			continue
		}
		cand, ok := a.bestShapeFor(m, s, tCur)
		if !ok {
			continue
		}
		consider(core.AdaptTarget{Mode: m, Threads: cand.Threads, Procs: cand.Procs}, cand)
	}
	return best, bestT, found
}

// bestShapeFor sizes mode m inside the live capacity using its fitted
// curve. Callers hold a.mu.
func (a *AutoScale) bestShapeFor(m core.Mode, s State, tCur float64) (Shape, bool) {
	switch m {
	case core.Sequential:
		return Shape{Mode: m, Threads: 1, Procs: 1}, true
	case core.Shared, core.Task:
		max := a.cfg.Model.EffectivePE(s.CapThreads, false)
		if cap := a.exploreCap(m, s); cap < max {
			max = cap
		}
		pe, _ := a.familyCurve(m, s, tCur).Best(max)
		return Shape{Mode: m, Threads: pe, Procs: 1}, true
	case core.Distributed:
		max := a.cfg.Model.EffectivePE(s.CapProcs, true)
		if cap := a.exploreCap(m, s); cap < max {
			max = cap
		}
		pe, _ := a.familyCurve(m, s, tCur).Best(max)
		if pe < 2 {
			pe = 2 // a one-rank world is Sequential with extra steps
		}
		if pe > s.CapProcs {
			return Shape{}, false
		}
		return Shape{Mode: m, Threads: 1, Procs: pe}, true
	case core.Hybrid:
		th := a.cfg.Model.EffectivePE(s.CapThreads, false)
		pr := s.CapProcs
		if pr > a.cfg.Model.Top.Machines {
			pr = a.cfg.Model.Top.Machines
		}
		if pr < 1 {
			pr = 1
		}
		return Shape{Mode: m, Threads: th, Procs: pr}, true
	}
	return Shape{}, false
}

// familyCurve returns the iteration-time curve for mode m: the analytic
// prior re-anchored to the live magnitude, blended with a least-squares
// fit over every shape of that mode actually measured. Callers hold a.mu.
func (a *AutoScale) familyCurve(m core.Mode, s State, tCur float64) perfmodel.Curve {
	d := dist(m)
	prior, ok := a.priors[d]
	if !ok {
		prior = a.cfg.Model.PriorCurve(a.cfg.GridN, d)
		a.priors[d] = prior
	}
	// Anchor the prior's magnitude through the current observation: the
	// model knows shapes, the live run knows seconds. The current shape's
	// own family carries the anchor; other families inherit the same
	// magnitude correction (compute cost is mode-independent to first
	// order — the shapes differ, the cell rate does not).
	curFam := a.priors[dist(s.Shape.Mode)]
	if !okCurve(curFam) {
		curFam = a.cfg.Model.PriorCurve(a.cfg.GridN, dist(s.Shape.Mode))
		a.priors[dist(s.Shape.Mode)] = curFam
	}
	peCur := a.cfg.Model.EffectivePE(peOf(s.Shape), dist(s.Shape.Mode))
	if p := curFam.Predict(peCur); p > 0 && tCur > 0 {
		prior = prior.Scale(tCur / p)
	}

	var samples []perfmodel.Sample
	var n float64
	for sh, cell := range a.obs {
		if sh.Mode != m || cell.windows == 0 {
			continue
		}
		samples = append(samples, perfmodel.Sample{
			PE: a.cfg.Model.EffectivePE(peOf(sh), d),
			T:  cell.rate.Mean(),
			W:  float64(cell.windows),
		})
		n += float64(cell.windows)
	}
	fit, ok := perfmodel.Fit(samples)
	if !ok {
		return prior
	}
	return perfmodel.Blend(prior, fit, n/(n+a.cfg.PriorK))
}

func okCurve(c perfmodel.Curve) bool { return c.A != 0 || c.B != 0 || c.C != 0 }
