// Package autoscale closes the loop the source paper left manual: the
// checkpoint/migrate machinery makes reconfiguration cheap, and this
// package decides *when* a reconfiguration pays for itself.
//
// AutoScale is a core.AdaptDriver — the external resource manager of the
// paper's §I — not a core.AdaptPolicy: its decisions depend on wall-clock
// throughput, so they cannot be a pure function of RunStats (the property
// the engine demands of policies, machine-checked by pplint's pppure).
// Instead it runs a monitor goroutine that samples Engine.Progress and
// Engine.Report, fits per-(Mode, Threads, Procs) iteration-time and
// efficiency curves online — perfmodel's analytic shape t(p) = A/p + B + C·p
// as the prior, live measurements taking over as evidence accumulates —
// and feeds Engine.RequestAdapt when a candidate configuration's predicted
// saving over the decision horizon clears the measured migration cost with
// hysteresis.
//
// The decision gates, in order:
//
//   - capacity: when the live capacity (a churn simulator, a fleet budget)
//     drops below the current shape, shrink immediately — or, when the
//     deployment cannot shrink in place, checkpoint-and-stop so the owner
//     relaunches under the new capacity (forced shrink via re-sharding
//     restore). Forced moves bypass the cost gate: the capacity is gone
//     whether or not the move is profitable.
//   - evidence: no voluntary move until the current configuration has been
//     measured for MinWindows sampling windows.
//   - skew: Task-mode queue-pressure counters veto moves the model cannot
//     see. A high idle ratio means workers already outnumber the work, so
//     growth candidates are dropped; a high steal ratio means work stealing
//     is absorbing real imbalance, so migrations away from Task are
//     dropped.
//   - efficiency: growth candidates must clear the fitted efficiency floor
//     (Figure 9's lesson: past the knee, capacity buys nothing).
//   - profit: predicted saving over HorizonSP safe points must exceed the
//     measured per-migration cost (Report.MigrationTotal/Migrations; a
//     configurable estimate before the first move) by the hysteresis
//     margin.
//   - stability: the same target must win Confirm consecutive evaluation
//     rounds, at most one voluntary move per Cooldown, at most MaxMoves
//     voluntary moves per run — the no-flapping bound the churn soak
//     asserts.
package autoscale

import (
	"sync"
	"time"

	"ppar/internal/core"
	"ppar/internal/metrics"
	"ppar/internal/perfmodel"
)

// Config tunes the feedback loop. The zero value is usable: every field
// has a default chosen so a short run is left alone and a long skewed one
// converges in a handful of windows.
type Config struct {
	// Model is the analytic prior (zero Top → perfmodel.Paper()).
	Model perfmodel.Model
	// GridN is the problem scale the prior curve is fitted at (default
	// 2000, the paper's SOR grid). Only the shape matters — magnitudes are
	// re-anchored to live measurements.
	GridN int
	// Interval is the monitor sampling period (default 25ms).
	Interval time.Duration
	// MinWindows is how many completed rate windows the current
	// configuration must accumulate before voluntary moves are considered
	// (default 3).
	MinWindows int
	// PriorK is the blend stiffness: observations get weight n/(n+PriorK)
	// against the analytic prior, n counting measured windows (default 4).
	PriorK float64
	// Alpha is the EWMA weight for per-safe-point time smoothing
	// (default 0.3).
	Alpha float64
	// Margin is the hysteresis: predicted savings must exceed
	// (1+Margin)×cost (default 0.25).
	Margin float64
	// MinGain is the relative-improvement tolerance: a candidate must
	// predict at least this fraction off the current per-safe-point time
	// (default 0.05). It filters the phantom slopes measurement noise
	// paints between configurations — the analogue of a resize tolerance
	// in any production autoscaler.
	MinGain float64
	// HorizonSP is the number of future safe points a saving is amortised
	// over (default 500). Runs shorter than the horizon under-estimate the
	// migration cost share; that errs toward stability.
	HorizonSP uint64
	// Confirm is how many consecutive evaluation rounds must elect the
	// same target before it is issued (default 2).
	Confirm int
	// Cooldown is the minimum time between voluntary moves (default
	// 20×Interval).
	Cooldown time.Duration
	// MaxMoves bounds voluntary moves per AutoScale lifetime (default 8).
	// Forced capacity shrinks are not counted — capacity loss must always
	// be obeyed.
	MaxMoves int
	// MinEff is the efficiency floor for growth candidates (default 0.4).
	MinEff float64
	// IdleHigh is the Task-mode idle-probe ratio above which growth
	// candidates are vetoed (default 0.5).
	IdleHigh float64
	// SkewHigh is the Task-mode steal ratio above which cross-mode
	// migrations away from Task are vetoed (default 0.2).
	SkewHigh float64
	// MoveCost estimates one reconfiguration before any has been measured
	// (default 50ms). After the first migration the measured mean
	// Report.MigrationTotal/Migrations replaces it.
	MoveCost time.Duration
	// Modes lists cross-mode migration candidates. Empty = in-place
	// resizes only.
	Modes []core.Mode
	// AllowWorldResize permits in-place Distributed world resizes. Leave
	// false unless the deployment uses the in-process transport — the TCP
	// transport would abort the run.
	AllowWorldResize bool
	// Capacity, when non-nil, is the live resource ceiling (threads on one
	// machine, world size) — the churn simulator or fleet budget plugs in
	// here. Nil means the model topology is the ceiling.
	Capacity func() (threads, procs int)
	// OnDecision, when non-nil, observes every issued decision (for logs
	// and tests). Called from the monitor goroutine.
	OnDecision func(Decision)
}

func (c Config) withDefaults() Config {
	if c.Model.Top.Cores == 0 {
		c.Model = perfmodel.Paper()
	}
	if c.GridN <= 0 {
		c.GridN = 2000
	}
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.MinWindows <= 0 {
		c.MinWindows = 3
	}
	if c.PriorK <= 0 {
		c.PriorK = 4
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.3
	}
	if c.Margin <= 0 {
		c.Margin = 0.25
	}
	if c.MinGain <= 0 {
		c.MinGain = 0.05
	}
	if c.HorizonSP == 0 {
		c.HorizonSP = 500
	}
	if c.Confirm <= 0 {
		c.Confirm = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 20 * c.Interval
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 8
	}
	if c.MinEff <= 0 {
		c.MinEff = 0.4
	}
	if c.IdleHigh <= 0 {
		c.IdleHigh = 0.5
	}
	if c.SkewHigh <= 0 {
		c.SkewHigh = 0.2
	}
	if c.MoveCost <= 0 {
		c.MoveCost = 50 * time.Millisecond
	}
	return c
}

// Decision records one issued reconfiguration request.
type Decision struct {
	SP     uint64           // safe point observed when the decision fired
	At     time.Duration    // monitor clock (since Drive)
	From   Shape            // configuration measured
	Target core.AdaptTarget // request issued (zero when Stop)
	Stop   bool             // checkpoint-and-stop was requested instead
	Forced bool             // capacity shrink (bypassed the cost gate)
	Saving time.Duration    // predicted saving over the horizon
	Cost   time.Duration    // migration cost charged against it
	Reason string           // one-line explanation
}

// Shape is one observed (Mode, Threads, Procs) configuration.
type Shape struct {
	Mode    core.Mode
	Threads int
	Procs   int
}

func dist(m core.Mode) bool { return m == core.Distributed || m == core.Hybrid }

func peOf(s Shape) int {
	switch s.Mode {
	case core.Sequential:
		return 1
	case core.Distributed:
		return s.Procs
	case core.Hybrid:
		return s.Threads * s.Procs
	default: // Shared, Task
		return s.Threads
	}
}

// obsCell accumulates the measured per-safe-point cost of one shape.
type obsCell struct {
	rate    *metrics.EWMA
	windows uint64
}

// AutoScale is the feedback autoscaler. Create with New, plug in as a
// core.AdaptDriver (pp.WithAutoScale). One AutoScale may drive a sequence
// of engines (run → stop → relaunch): the curve table and move budget
// persist across them, the rate window re-primes per run.
type AutoScale struct {
	cfg Config

	mu          sync.Mutex
	rate        *metrics.RateWindow
	lastWindows uint64 // rate.Count() high-water mark: one cell fold per window
	last        Shape
	obs         map[Shape]*obsCell
	pendTgt     core.AdaptTarget // candidate awaiting confirmation
	pendRuns    int
	inFlight    bool          // a request was issued and has not landed yet
	moves       int           // voluntary moves issued
	lastMove    time.Duration // monitor clock of the last issued move
	decisions   []Decision
	priors      map[bool]perfmodel.Curve // keyed by dist flag
}

// New returns an autoscaler with the given configuration.
func New(cfg Config) *AutoScale {
	cfg = cfg.withDefaults()
	return &AutoScale{
		cfg:    cfg,
		rate:   metrics.NewRateWindow(cfg.Alpha),
		obs:    map[Shape]*obsCell{},
		priors: map[bool]perfmodel.Curve{},
	}
}

var _ core.AdaptDriver = (*AutoScale)(nil)

// Drive starts the monitor loop against eng; the returned stop function
// (idempotent) halts it. Implements core.AdaptDriver.
func (a *AutoScale) Drive(eng *core.Engine) (stop func()) {
	a.mu.Lock()
	a.rate.Reset() // a fresh run: never mix rates across engine launches
	a.lastWindows = 0
	a.pendTgt, a.pendRuns = core.AdaptTarget{}, 0
	a.inFlight = false
	a.mu.Unlock()

	start := time.Now()
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(a.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-tick.C:
			}
			sp, mode, threads, procs := eng.Progress()
			if sp == 0 {
				continue // not at the first safe point yet
			}
			rep := eng.Report()
			st := State{
				SP:        sp,
				Now:       time.Since(start),
				Shape:     Shape{Mode: mode, Threads: threads, Procs: procs},
				Sched:     rep.Sched(),
				Moves:     rep.Migrations,
				MoveTotal: rep.MigrationTotal,
			}
			st.CapThreads, st.CapProcs = a.capacity()
			d, ok := a.Step(st)
			if !ok {
				continue
			}
			if d.Stop {
				eng.RequestStop()
			} else {
				eng.RequestAdapt(d.Target)
			}
			if f := a.cfg.OnDecision; f != nil {
				f(d)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-done
		})
	}
}

func (a *AutoScale) capacity() (threads, procs int) {
	if a.cfg.Capacity != nil {
		threads, procs = a.cfg.Capacity()
	} else {
		threads, procs = a.cfg.Model.Top.Cores, a.cfg.Model.Top.TotalCores()
	}
	if threads < 1 {
		threads = 1
	}
	if procs < 1 {
		procs = 1
	}
	return threads, procs
}

// Decisions returns a copy of every decision issued so far — the soak
// tests assert this stays bounded and free of A→B→A flapping.
func (a *AutoScale) Decisions() []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Decision(nil), a.decisions...)
}
