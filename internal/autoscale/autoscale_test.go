package autoscale

import (
	"testing"
	"time"

	"ppar/internal/cluster"
	"ppar/internal/core"
	"ppar/internal/jgf"
	"ppar/internal/metrics"
)

// sim drives the decision logic with a synthetic run: truth maps a shape to
// its real per-safe-point seconds, tick advances a simulated clock and
// applies issued decisions the way the engine would. Everything is
// deterministic — no goroutines, no wall clock.
type sim struct {
	a     *AutoScale
	truth func(Shape) float64
	shape Shape
	sp    float64
	now   time.Duration
	capT  int
	capP  int
	sched metrics.SchedStats

	moves     int // applied reconfigurations, as Report.Migrations would count
	migTotal  time.Duration
	decisions []Decision
	stopped   bool
}

func newSim(a *AutoScale, start Shape, truth func(Shape) float64) *sim {
	return &sim{a: a, truth: truth, shape: start, capT: 64, capP: 64}
}

func (s *sim) tick(dt time.Duration) {
	if s.stopped {
		return
	}
	s.now += dt
	s.sp += dt.Seconds() / s.truth(s.shape)
	st := State{
		SP: uint64(s.sp), Now: s.now, Shape: s.shape,
		Sched: s.sched, Moves: s.moves, MoveTotal: s.migTotal,
		CapThreads: s.capT, CapProcs: s.capP,
	}
	d, ok := s.a.Step(st)
	if !ok {
		return
	}
	s.decisions = append(s.decisions, d)
	if d.Stop {
		s.stopped = true
		return
	}
	// Apply like the engine: the new shape executes from the next safe
	// point, and the move shows up in the migration measurements.
	if d.Target.Mode != 0 && d.Target.Mode != s.shape.Mode {
		s.shape.Mode = d.Target.Mode
	}
	if d.Target.Threads > 0 {
		s.shape.Threads = d.Target.Threads
	}
	if d.Target.Procs > 0 {
		s.shape.Procs = d.Target.Procs
	}
	s.moves++
	s.migTotal += 20 * time.Millisecond
}

func (s *sim) run(ticks int, dt time.Duration) {
	for i := 0; i < ticks; i++ {
		s.tick(dt)
	}
}

// scalable is a truth with real parallel speedup: 4ms of divisible work
// plus a 0.1ms serial floor per safe point.
func scalable(sh Shape) float64 { return 0.004/float64(peOf(sh)) + 0.0001 }

func TestColdStartMakesNoMove(t *testing.T) {
	a := New(Config{MinWindows: 10})
	s := newSim(a, Shape{Mode: core.Shared, Threads: 1, Procs: 1}, scalable)
	s.run(8, 5*time.Millisecond) // well under 10 windows of evidence
	if len(s.decisions) != 0 {
		t.Fatalf("cold autoscaler moved: %+v", s.decisions)
	}
}

func TestScalesUpAndConverges(t *testing.T) {
	a := New(Config{MoveCost: 10 * time.Millisecond})
	s := newSim(a, Shape{Mode: core.Shared, Threads: 1, Procs: 1}, scalable)
	s.capT = 8
	s.run(600, 5*time.Millisecond)

	if s.shape.Threads < 4 {
		t.Fatalf("never scaled up: final shape %+v, decisions %+v", s.shape, s.decisions)
	}
	if n := len(s.decisions); n == 0 || n > 4 {
		t.Fatalf("expected 1-4 decisions, got %d: %+v", n, s.decisions)
	}
	// Converged: the tail of the run is decision-free.
	tail := len(s.decisions)
	s.run(400, 5*time.Millisecond)
	if len(s.decisions) != tail {
		t.Fatalf("still deciding after convergence: %+v", s.decisions[tail:])
	}
	// No flapping: every decision grows the team; no shape is revisited.
	seen := map[Shape]bool{{Mode: core.Shared, Threads: 1, Procs: 1}: true}
	for _, d := range s.decisions {
		to := Shape{Mode: core.Shared, Threads: d.Target.Threads, Procs: 1}
		if seen[to] {
			t.Fatalf("revisited shape %+v: flapping (%+v)", to, s.decisions)
		}
		seen[to] = true
	}
}

func TestMarginalGainsAreIgnored(t *testing.T) {
	// Parallelism buys almost nothing: 0.02ms divisible vs a 1ms floor.
	// One measured point cannot reveal that, so the controller is allowed
	// a single exploratory doubling; the second point pins the serial
	// floor and every further move is sub-margin — stay put from then on.
	flat := func(sh Shape) float64 {
		return 0.00002/float64(peOf(sh)) + 0.001
	}
	a := New(Config{})
	s := newSim(a, Shape{Mode: core.Shared, Threads: 2, Procs: 1}, flat)
	s.run(800, 5*time.Millisecond)
	if len(s.decisions) > 1 {
		t.Fatalf("kept moving on sub-margin gains: %+v", s.decisions)
	}
	if s.shape.Threads > 4 {
		t.Fatalf("extrapolated growth on a flat workload: %+v", s.shape)
	}
	// Converged: a long tail adds no decisions.
	tail := len(s.decisions)
	s.run(400, 5*time.Millisecond)
	if len(s.decisions) != tail {
		t.Fatalf("still deciding on a flat workload: %+v", s.decisions[tail:])
	}
}

func TestForcedShrinkClampsThreads(t *testing.T) {
	// MinWindows is set high so the only possible decision is the forced
	// one — capacity loss must act without any accumulated evidence.
	a := New(Config{MinWindows: 1000})
	s := newSim(a, Shape{Mode: core.Shared, Threads: 8, Procs: 1}, scalable)
	s.run(5, 5*time.Millisecond)
	s.capT = 3 // a node lost cores
	s.tick(5 * time.Millisecond)
	if len(s.decisions) != 1 {
		t.Fatalf("capacity loss not acted on: %+v", s.decisions)
	}
	d := s.decisions[0]
	if !d.Forced || d.Target.Threads != 3 {
		t.Fatalf("want forced shrink to 3 threads, got %+v", d)
	}
	if s.shape.Threads != 3 {
		t.Fatalf("shrink not applied: %+v", s.shape)
	}
}

func TestForcedShrinkStopsFixedWorld(t *testing.T) {
	// A Distributed world without in-place resizing can only obey a
	// capacity loss by checkpoint-and-stop; the owner relaunches smaller
	// and the re-sharding restore repartitions the state.
	a := New(Config{MinWindows: 1000})
	s := newSim(a, Shape{Mode: core.Distributed, Threads: 1, Procs: 8}, scalable)
	s.run(5, 5*time.Millisecond)
	s.capP = 4
	s.tick(5 * time.Millisecond)
	if len(s.decisions) != 1 || !s.decisions[0].Stop || !s.decisions[0].Forced {
		t.Fatalf("want forced stop, got %+v", s.decisions)
	}
	if !s.stopped {
		t.Fatal("sim did not stop")
	}
}

func TestIdleRatioVetoesGrowth(t *testing.T) {
	// The curve says growth helps, but the scheduler counters say the
	// workers are already starved — scanning five times per useful chunk.
	a := New(Config{MoveCost: time.Millisecond})
	s := newSim(a, Shape{Mode: core.Task, Threads: 2, Procs: 1}, scalable)
	s.capT = 8
	s.sched = metrics.SchedStats{Chunks: 100, Steals: 5, Idle: 500}
	s.run(600, 5*time.Millisecond)
	for _, d := range s.decisions {
		if d.Target.Threads > 2 {
			t.Fatalf("grew an idle pool: %+v", d)
		}
	}
}

func TestStealRatioVetoesLeavingTask(t *testing.T) {
	// Seed evidence that Shared at 4 threads is fast, then run Task at 4
	// threads slower but with a high steal ratio: stealing is absorbing
	// real skew, and a static-schedule mode would regress.
	a := New(Config{MoveCost: time.Millisecond, Modes: []core.Mode{core.Shared}})
	fast := func(sh Shape) float64 {
		if sh.Mode == core.Shared {
			return 0.001
		}
		return 0.002
	}
	s := newSim(a, Shape{Mode: core.Shared, Threads: 4, Procs: 1}, fast)
	s.capT = 4
	s.run(60, 5*time.Millisecond)

	// An external request (not ours) migrates the run to Task.
	s.shape = Shape{Mode: core.Task, Threads: 4, Procs: 1}
	s.sched = metrics.SchedStats{Chunks: 100, Steals: 40, Idle: 2}
	s.run(600, 5*time.Millisecond)
	for _, d := range s.decisions {
		if d.Target.Mode == core.Shared {
			t.Fatalf("left Task despite skew being absorbed: %+v", d)
		}
	}
}

func TestMoveBudgetBoundsFlapping(t *testing.T) {
	// An adversarial workload whose optimum flips every 100 ticks. The
	// move budget keeps the total voluntary move count bounded no matter
	// how long the run.
	phase := 0
	truth := func(sh Shape) float64 {
		if phase == 0 {
			return scalable(sh)
		}
		// Parallelism suddenly hurts: contention dominates.
		return 0.0005 * float64(peOf(sh))
	}
	a := New(Config{MoveCost: time.Millisecond, Cooldown: 10 * time.Millisecond})
	s := newSim(a, Shape{Mode: core.Shared, Threads: 1, Procs: 1}, truth)
	s.capT = 8
	for i := 0; i < 3000; i++ {
		if i%100 == 0 {
			phase = 1 - phase
		}
		s.tick(5 * time.Millisecond)
	}
	voluntary := 0
	for _, d := range s.decisions {
		if !d.Forced {
			voluntary++
		}
	}
	if voluntary > 8 {
		t.Fatalf("move budget exceeded: %d voluntary moves", voluntary)
	}
}

// Live integration: a real Shared-mode SOR run on one thread, with the
// autoscaler driving the real engine through Drive/RequestAdapt. The run
// must end adapted, with a bounded decision count and the exact sequential
// checksum.
func TestDriveGrowsLiveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("live autoscale run")
	}
	const n, iters = 192, 8000
	as := New(Config{
		Interval:   2 * time.Millisecond,
		MinWindows: 2,
		MoveCost:   time.Millisecond,
		HorizonSP:  20000,
		Cooldown:   50 * time.Millisecond,
		Capacity:   func() (int, int) { return 4, 1 },
	})
	res := &jgf.SORResult{}
	eng, err := core.New(core.Config{
		AppName: "autoscale-live",
		Mode:    core.Shared,
		Threads: 1,
		Modules: jgf.SORModules(core.Shared),
		Driver:  as,
	}, func() core.App { return jgf.NewSOR(n, iters, res) })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := jgf.SORReference(n, iters); res.Gtotal != want {
		t.Fatalf("diverged: got %v, want %v", res.Gtotal, want)
	}
	ds := as.Decisions()
	if len(ds) == 0 {
		t.Skip("run finished before the autoscaler warmed up (loaded machine)")
	}
	if len(ds) > 8 {
		t.Fatalf("flapping on a live run: %d decisions: %+v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Target.Threads > 4 {
			t.Fatalf("exceeded capacity: %+v", d)
		}
	}
	if !eng.Report().Adapted {
		t.Fatalf("decisions issued but run never adapted: %+v", ds)
	}
}

// TestChurnCapacityWalkConvergesWithoutOscillation plays the cluster churn
// simulator's deterministic loss/arrival schedule against the controller in
// pure virtual time: every tick reads the scripted capacity for the sim's
// clock, so the whole trajectory is reproducible. The controller must obey
// every capacity loss by the next tick (forced shrink), regrow only
// voluntarily, keep the total move count inside the no-flapping budget, and
// go quiet once the cluster heals.
func TestChurnCapacityWalkConvergesWithoutOscillation(t *testing.T) {
	top := cluster.Topology{Machines: 2, Cores: 8}
	churn := cluster.NewChurnSim(top, cluster.LossArrival(top, 200*time.Millisecond, 3)...)

	a := New(Config{MoveCost: 5 * time.Millisecond, Cooldown: 20 * time.Millisecond})
	s := newSim(a, Shape{Mode: core.Shared, Threads: 8, Procs: 1}, scalable)
	const dt = 5 * time.Millisecond
	tick := func() {
		s.capT, _ = churn.At(s.now)
		s.tick(dt)
		if s.shape.Threads > s.capT {
			t.Fatalf("running over capacity at %v: %d threads on %d cores (%+v)",
				s.now, s.shape.Threads, s.capT, s.decisions)
		}
	}
	for i := 0; i < 400; i++ { // 2s: the full 1.2s schedule plus healing time
		tick()
	}

	forced, voluntary := 0, 0
	for _, d := range s.decisions {
		if d.Forced {
			forced++
		} else {
			voluntary++
		}
	}
	// One forced shrink per scripted loss, no more: arrivals never force.
	if forced == 0 || forced > 3 {
		t.Fatalf("want 1-3 forced shrinks for 3 losses, got %d: %+v", forced, s.decisions)
	}
	if voluntary > 8 {
		t.Fatalf("voluntary move budget exceeded under churn: %d moves: %+v", voluntary, s.decisions)
	}
	// The cluster healed at 1.2s; the controller regrows and then goes
	// quiet — a long settled tail must be decision-free.
	settled := len(s.decisions)
	for i := 0; i < 400; i++ {
		tick()
	}
	if len(s.decisions) != settled {
		t.Fatalf("still deciding on a healed cluster: %+v", s.decisions[settled:])
	}
	if s.shape.Threads < 4 {
		t.Fatalf("never regrew after healing: %+v (decisions %+v)", s.shape, s.decisions)
	}
}
