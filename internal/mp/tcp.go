package mp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP is a loopback-socket transport: every rank owns a listener; links are
// dialed lazily on first send; a reader goroutine per inbound connection
// pumps frames into the rank's mailbox. Frames are length-prefixed:
//
//	u32 from | i64 tag | u32 len | payload
//
// The TCP world has a fixed size (Grow returns an error); run-time world
// resizing is an in-process capability, while TCP worlds adapt via the
// checkpoint/restart protocol — the same split the paper describes between
// run-time adaptation and restart-based adaptation.
type TCP struct {
	boxes []*mailbox
	lns   []net.Listener
	addrs []string
	delay DelayFunc

	mu    sync.Mutex
	conns map[[2]int]net.Conn // (from,to) -> outbound conn
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewTCP creates a TCP transport for n ranks on loopback.
func NewTCP(n int, delay DelayFunc) (*TCP, error) {
	t := &TCP{
		boxes: make([]*mailbox, n),
		lns:   make([]net.Listener, n),
		addrs: make([]string, n),
		delay: delay,
		conns: map[[2]int]net.Conn{},
		done:  make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		t.boxes[i] = newMailbox()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("mp: listen rank %d: %w", i, err)
		}
		t.lns[i] = ln
		t.addrs[i] = ln.Addr().String()
		t.wg.Add(1)
		go t.accept(i, ln)
	}
	return t, nil
}

func (t *TCP) accept(rank int, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.pump(rank, conn)
	}
}

// pump reads frames from one inbound connection into rank's mailbox.
func (t *TCP) pump(rank int, conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	box := t.boxes[rank]
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		from := int(binary.LittleEndian.Uint32(hdr[0:4]))
		tag := int64(binary.LittleEndian.Uint64(hdr[4:12]))
		n := binary.LittleEndian.Uint32(hdr[12:16])
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		select {
		case box.ch <- message{from: from, tag: tag, data: data}:
		case <-box.dead:
			return
		case <-t.done:
			return
		}
	}
}

func (t *TCP) conn(from, to int) (net.Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]int{from, to}
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("mp: dial rank %d->%d: %w", from, to, err)
	}
	t.conns[key] = c
	return c, nil
}

// Send implements Transport.
func (t *TCP) Send(from, to int, tag int64, data []byte) error {
	if from < 0 || from >= len(t.boxes) || to < 0 || to >= len(t.boxes) {
		return fmt.Errorf("mp: rank out of range (%d->%d)", from, to)
	}
	if t.boxes[from].isDead() || t.boxes[to].isDead() {
		return ErrDead
	}
	if t.delay != nil {
		if d := t.delay(from, to, len(data)); d > 0 {
			// Model link cost; the sleep happens on the sender as a
			// simple half-duplex approximation.
			waitFor(d)
		}
	}
	c, err := t.conn(from, to)
	if err != nil {
		return err
	}
	buf := make([]byte, 16+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(from))
	binary.LittleEndian.PutUint64(buf[4:12], uint64(tag))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(data)))
	copy(buf[16:], data)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := c.Write(buf); err != nil {
		delete(t.conns, [2]int{from, to})
		return fmt.Errorf("mp: send %d->%d: %w", from, to, err)
	}
	return nil
}

// Recv implements Transport.
func (t *TCP) Recv(to, from int, tag int64) ([]byte, error) {
	if to < 0 || to >= len(t.boxes) {
		return nil, fmt.Errorf("mp: rank %d out of range", to)
	}
	return t.boxes[to].take(from, tag)
}

// Kill implements Transport.
func (t *TCP) Kill(rank int) {
	if rank >= 0 && rank < len(t.boxes) {
		t.boxes[rank].kill()
		t.lns[rank].Close()
	}
}

// Alive implements Transport.
func (t *TCP) Alive(rank int) bool {
	return rank >= 0 && rank < len(t.boxes) && !t.boxes[rank].isDead()
}

// Grow implements Transport; TCP worlds are fixed-size.
func (t *TCP) Grow(n int) error {
	if n <= len(t.boxes) {
		return nil
	}
	return fmt.Errorf("mp: TCP transport cannot grow (fixed world of %d ranks); use an in-process migration (which rebuilds the transport) or checkpoint/restart adaptation", len(t.boxes))
}

// Close implements Transport.
func (t *TCP) Close() error {
	select {
	case <-t.done:
		return nil
	default:
		close(t.done)
	}
	for i := range t.boxes {
		t.boxes[i].kill()
		if t.lns[i] != nil {
			t.lns[i].Close()
		}
	}
	t.mu.Lock()
	for k, c := range t.conns {
		c.Close()
		delete(t.conns, k)
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
